(* The centralium command-line tool: inspect topologies, print generated
   RPAs, and run the paper's scenario simulations from the shell.

   dune exec bin/centralium_cli.exe -- <command> ... *)

open Cmdliner

let pf = Printf.printf

(* ---------------- topology ---------------- *)

let topology_cmd =
  let run name pods rsws =
    (match name with
     | "fabric" ->
       let f = Topology.Clos.fabric ~pods ~rsws_per_pod:rsws () in
       pf "fabric: %s\n"
         (Format.asprintf "%a" Topology.Graph.pp_stats f.Topology.Clos.graph);
       List.iter
         (fun layer ->
           pf "  %-5s %d switches\n"
             (Topology.Node.layer_to_string layer)
             (List.length (Topology.Graph.by_layer f.Topology.Clos.graph layer)))
         (Topology.Graph.layers f.Topology.Clos.graph)
     | "expansion" ->
       let x = Topology.Clos.expansion () in
       pf "expansion: %s\n"
         (Format.asprintf "%a" Topology.Graph.pp_stats x.Topology.Clos.xgraph)
     | "decommission" ->
       let d = Topology.Clos.decommission () in
       pf "decommission: %s\n"
         (Format.asprintf "%a" Topology.Graph.pp_stats d.Topology.Clos.dgraph)
     | "wcmp" ->
       let w = Topology.Clos.wcmp_convergence () in
       pf "wcmp-convergence: %s\n"
         (Format.asprintf "%a" Topology.Graph.pp_stats w.Topology.Clos.wgraph)
     | "rollout" ->
       let r = Topology.Clos.rollout () in
       pf "rollout: %s\n"
         (Format.asprintf "%a" Topology.Graph.pp_stats r.Topology.Clos.rgraph)
     | "sev" ->
       let s = Topology.Clos.sev () in
       pf "sev: %s\n"
         (Format.asprintf "%a" Topology.Graph.pp_stats s.Topology.Clos.sgraph)
     | other -> pf "unknown topology %S\n" other);
    0
  in
  let name_arg =
    Arg.(
      value
      & pos 0 string "fabric"
      & info [] ~docv:"NAME"
          ~doc:"fabric | expansion | decommission | wcmp | rollout | sev")
  in
  let pods = Arg.(value & opt int 4 & info [ "pods" ] ~doc:"pods (fabric)") in
  let rsws =
    Arg.(value & opt int 4 & info [ "rsws" ] ~doc:"RSWs per pod (fabric)")
  in
  Cmd.v
    (Cmd.info "topology" ~doc:"Build and describe one of the paper's topologies")
    Term.(const run $ name_arg $ pods $ rsws)

(* ---------------- rpa ---------------- *)

let rpa_cmd =
  let run kind =
    let destination = Centralium.Destination.backbone_default in
    let asn = Net.Asn.of_int 65000 in
    let rpa =
      match kind with
      | "equalize" ->
        Some
          (Centralium.Apps.Path_equalize.rpa ~destination ~origin_asn:asn
             ~via:[ Net.Asn.of_int 64513; Net.Asn.of_int 64514 ])
      | "guard" ->
        Some
          (Centralium.Apps.Min_next_hop_guard.rpa ~destination
             ~threshold:(Centralium.Path_selection.Fraction 0.75)
             ~keep_fib_warm:true)
      | "backup" ->
        Some
          (Centralium.Apps.Backup_preference.rpa ~destination
             ~primary:(Centralium.Signature.make ~neighbor_asn:(Net.Asn.of_int 64513) ())
             ~primary_min_next_hop:(Centralium.Path_selection.Count 2)
             ~backup:(Centralium.Signature.make ~neighbor_asn:(Net.Asn.of_int 64514) ())
             ())
      | "filter" ->
        Some
          (Centralium.Apps.Boundary_filter.rpa ~peer_layers:[ Topology.Node.Eb ]
             ~allowed:
               [
                 Centralium.Route_filter.prefix_rule ~max_mask_length:16
                   (Net.Prefix.of_string_exn "10.0.0.0/8");
               ])
      | "freeze" ->
        Some
          (Centralium.Apps.Wcmp_freeze.rpa ~destination ~live_weight:8
             ~drained_signature:
               (Centralium.Signature.make
                  ~communities:[ Net.Community.Well_known.drained ]
                  ())
             ())
      | _ -> None
    in
    match rpa with
    | Some rpa ->
      List.iter print_endline (Centralium.Rpa.config_lines rpa);
      pf "-- %d lines, %d statement(s)\n" (Centralium.Rpa.loc rpa)
        (Centralium.Rpa.statement_count rpa);
      0
    | None ->
      pf "unknown RPA kind; use equalize | guard | backup | filter | freeze\n";
      1
  in
  let kind =
    Arg.(
      value & pos 0 string "equalize"
      & info [] ~docv:"KIND" ~doc:"equalize | guard | backup | filter | freeze")
  in
  Cmd.v
    (Cmd.info "rpa" ~doc:"Print a generated RPA in the paper's Figure 7 syntax")
    Term.(const run $ kind)

(* ---------------- simulate ---------------- *)

let simulate_cmd =
  let run scenario seed =
    (match scenario with
     | "fig2" ->
       let r = Experiments.Scenarios.Fig2.run ~seed () in
       pf "native FAv2 share: %.0f%%; with RPA: %.0f%% (balanced %.0f%%)\n"
         (100.0 *. r.Experiments.Scenarios.Fig2.native_fav2_share)
         (100.0 *. r.rpa_fav2_share) (100.0 *. r.balanced_share)
     | "fig4" ->
       let r = Experiments.Scenarios.Fig4.run ~seed () in
       pf "worst transient funnel: native %.1f%%, with guard %.1f%% (steady %.1f%%)\n"
         (100.0 *. r.Experiments.Scenarios.Fig4.native_worst_funnel)
         (100.0 *. r.rpa_worst_funnel) (100.0 *. r.steady_share)
     | "fig5" ->
       let r = Experiments.Scenarios.Fig5.run ~seed () in
       pf "peak DU next-hop groups: native %d, with RPA %d (bound %d)\n"
         r.Experiments.Scenarios.Fig5.du_nhg_native r.du_nhg_rpa
         r.theoretical_bound
     | "fig9" ->
       let r = Experiments.Scenarios.Fig9.run ~seed () in
       pf "loops: best-path %d, rule %d; circulating volume %.2f vs %.2f\n"
         (List.length r.Experiments.Scenarios.Fig9.loops_with_best_advertised)
         (List.length r.loops_with_rule)
         r.circulating_bad r.circulating_good
     | "fig10" ->
       let r = Experiments.Scenarios.Fig10.run ~seed () in
       pf "worst FA share: uncoordinated %.0f%%, safe order %.0f%%\n"
         (100.0 *. r.Experiments.Scenarios.Fig10.funnel_top_down)
         (100.0 *. r.funnel_bottom_up)
     | "fig13" ->
       let r = Experiments.Scenarios.Fig13.run ~seed () in
       pf "capacity vs ideal: RPA-TE %.1f%%, ECMP %.1f%%; unblocked %.0f%%\n"
         (100.0 *. r.Experiments.Scenarios.Fig13.mean_rpa_over_ideal)
         (100.0 *. r.mean_ecmp_over_ideal)
         (100.0 *. r.unblocked_fraction)
     | "fig14" ->
       let r = Experiments.Scenarios.Fig14.run ~seed () in
       pf "black-holed: knob on %.0f%%, knob off %.0f%%\n"
         (100.0 *. r.Experiments.Scenarios.Fig14.blackholed_with_knob)
         (100.0 *. r.blackholed_without_knob)
     | "faulted" ->
       let r = Experiments.Scenarios.Faulted.run ~seed () in
       pf "fault schedule:\n";
       List.iter
         (fun a ->
           pf "  %s\n" (Format.asprintf "%a" Dsim.Fault.pp_action a))
         r.Experiments.Scenarios.Faulted.schedule;
       pf "events %d, dropped %d, restarts %d\n" r.events_executed
         r.messages_dropped r.speaker_restarts;
       pf "transient violations: %d" (List.length r.transient_violations);
       List.iter (fun (t, kind) -> pf " [%.3fs %s]" t kind)
         r.transient_violations;
       pf "\nfinal violations: %d" (List.length r.final_violations);
       List.iter (fun (_, _, kind) -> pf " [%s]" kind) r.final_violations;
       pf "\n"
     | other ->
       pf "unknown scenario %S (fig2 fig4 fig5 fig9 fig10 fig13 fig14 faulted)\n"
         other);
    0
  in
  let scenario =
    Arg.(
      value & pos 0 string "fig2"
      & info [] ~docv:"SCENARIO"
          ~doc:"fig2 | fig4 | fig5 | fig9 | fig10 | fig13 | fig14 | faulted")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"simulation seed")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one of the paper's scenario simulations")
    Term.(const run $ scenario $ seed)

(* ---------------- table3 ---------------- *)

let table3_cmd =
  let run () =
    pf "%-4s %8s %7s %9s %8s %8s\n" "" "#Steps" "#Steps" "#Days" "#Days" "RPA";
    pf "%-4s %8s %7s %9s %8s %8s\n" "" "w/o RPA" "w RPA" "w/o RPA" "w/ RPA" "LOC";
    List.iter
      (fun row ->
        let days plan =
          let d = Planner.duration_days plan in
          if d < 1.0 then "<1" else Printf.sprintf "%.0f" d
        in
        pf "(%s) %8d %7d %9s %8s %8d\n"
          (Topology.Migration.category_letter row.Planner.category)
          (Planner.step_count row.Planner.without_rpa)
          (Planner.step_count row.Planner.with_rpa)
          (days row.Planner.without_rpa)
          (days row.Planner.with_rpa)
          row.Planner.rpa_loc)
      (Planner.table3 ());
    0
  in
  Cmd.v
    (Cmd.info "table3" ~doc:"Print the operational-efficiency comparison (Table 3)")
    Term.(const run $ const ())

(* ---------------- parse ---------------- *)

let parse_cmd =
  let run file =
    let source =
      if file = "-" then In_channel.input_all stdin
      else In_channel.with_open_text file In_channel.input_all
    in
    match Centralium.Rpa_parser.parse source with
    | Ok rpa ->
      pf "parsed OK: %d statement(s), %d line(s) canonical form\n"
        (Centralium.Rpa.statement_count rpa)
        (Centralium.Rpa.loc rpa);
      List.iter print_endline (Centralium.Rpa.config_lines rpa);
      0
    | Error e ->
      Printf.eprintf "parse error: %s\n" e;
      1
  in
  let file =
    Arg.(
      value & pos 0 string "-"
      & info [] ~docv:"FILE" ~doc:"RPA configuration file ('-' for stdin)")
  in
  Cmd.v
    (Cmd.info "parse"
       ~doc:"Parse and validate an RPA configuration file, printing its \
             canonical form")
    Term.(const run $ file)

(* ---------------- lint ---------------- *)

let lint_cmd =
  let module D = Analysis.Diagnostic in
  let print_human diags =
    List.iter (fun d -> print_endline (D.to_human d)) (D.sort diags)
  in
  let run_file file json =
    let source =
      if file = "-" then In_channel.input_all stdin
      else In_channel.with_open_text file In_channel.input_all
    in
    match Centralium.Rpa_parser.parse_located source with
    | Error e ->
      if json then
        print_endline
          (Obs.Json.to_string
             (Obs.Json.Obj [ ("parse-error", Obs.Json.String e) ]))
      else Printf.eprintf "parse error: %s\n" e;
      1
    | Ok (rpa, positions) ->
      let diags = Analysis.Lint.check_rpa ~positions rpa in
      if json then print_endline (Obs.Json.to_string (D.report_json diags))
      else begin
        print_human diags;
        pf "%d finding(s), %d error(s)\n" (List.length diags)
          (List.length (List.filter (fun d -> d.D.severity = D.Error) diags))
      end;
      if D.has_errors diags then 1 else 0
  in
  let run_suite seed json =
    let specs = Centralium.Verification.standard_suite ~seed () in
    let results =
      List.map
        (fun spec ->
          let net, plan, _ = spec.Centralium.Verification.build () in
          let diags =
            Analysis.Lint.check_plan (Bgp.Network.graph net) plan
          in
          (spec.Centralium.Verification.spec_name, diags))
        specs
    in
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ( "suite",
                  Obs.Json.List
                    (List.map
                       (fun (name, diags) ->
                         Obs.Json.Obj
                           [
                             ("spec", Obs.Json.String name);
                             ("report", D.report_json diags);
                           ])
                       results) );
              ]))
    else
      List.iter
        (fun (name, diags) ->
          pf "%s: %d finding(s)\n" name (List.length diags);
          print_human diags)
        results;
    if List.exists (fun (_, diags) -> D.has_errors diags) results then 1
    else 0
  in
  let run_selftest json =
    let results = Analysis.Corpus.run () in
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ( "selftest",
                  Obs.Json.List
                    (List.map
                       (fun r ->
                         Obs.Json.Obj
                           [
                             ("case", Obs.Json.String r.Analysis.Corpus.r_case);
                             ( "expect",
                               Obs.Json.String
                                 (D.code_to_string r.Analysis.Corpus.r_expect)
                             );
                             ( "detected",
                               Obs.Json.Bool r.Analysis.Corpus.r_detected );
                           ])
                       results) );
              ]))
    else
      List.iter
        (fun r ->
          pf "%-45s %s  [%s]\n" r.Analysis.Corpus.r_case
            (D.code_to_string r.Analysis.Corpus.r_expect)
            (if r.Analysis.Corpus.r_detected then "detected" else "MISSED"))
        results;
    if Analysis.Corpus.all_detected results then 0 else 1
  in
  let run file suite selftest json seed =
    if selftest then run_selftest json
    else if suite then run_suite seed json
    else run_file file json
  in
  let file =
    Arg.(
      value & pos 0 string "-"
      & info [] ~docv:"FILE" ~doc:"RPA configuration file ('-' for stdin)")
  in
  let suite =
    Arg.(
      value & flag
      & info [ "suite" ]
          ~doc:"lint every plan of the standard qualification suite instead \
                of a file")
  in
  let selftest =
    Arg.(
      value & flag
      & info [ "selftest" ]
          ~doc:"run the analyzer over the seeded defect corpus and check \
                every defect class is caught")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"machine-readable output (stable field order)")
  in
  let seed =
    Arg.(
      value & opt int 31
      & info [ "seed" ] ~doc:"base network seed for --suite plan building")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyze RPA configuration or deployment plans \
             without constructing a BGP network; non-zero exit on \
             error-severity findings")
    Term.(const run $ file $ suite $ selftest $ json $ seed)

(* ---------------- verify-plan ---------------- *)

let verify_plan_cmd =
  let module D = Analysis.Diagnostic in
  let module PV = Analysis.Phase_verifier in
  let print_human report =
    List.iter
      (fun d -> print_endline (D.to_human d))
      report.PV.vr_diagnostics;
    pf "%d class(es), %d state(s), %d compiled, %d reused, %d violation(s)\n"
      report.PV.vr_classes report.PV.vr_states report.PV.vr_compiled
      report.PV.vr_reused
      (List.length report.PV.vr_violations)
  in
  let has_errors report =
    List.exists (fun d -> d.D.severity = D.Error) report.PV.vr_diagnostics
  in
  let run_suite seed json no_frontiers =
    let specs = Centralium.Verification.standard_suite ~seed () in
    let results =
      List.map
        (fun spec ->
          let net, plan, _ = spec.Centralium.Verification.build () in
          let report = PV.verify_network ~frontiers:(not no_frontiers) net plan in
          (spec.Centralium.Verification.spec_name, report))
        specs
    in
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ( "suite",
                  Obs.Json.List
                    (List.map
                       (fun (name, report) ->
                         Obs.Json.Obj
                           [
                             ("spec", Obs.Json.String name);
                             ("verify", PV.report_json report);
                           ])
                       results) );
              ]))
    else
      List.iter
        (fun (name, report) ->
          pf "%s:\n" name;
          print_human report)
        results;
    if List.exists (fun (_, r) -> has_errors r) results then 1 else 0
  in
  let run_selftest json =
    let results = Analysis.Corpus.run_verifier () in
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ( "selftest",
                  Obs.Json.List
                    (List.map
                       (fun r ->
                         Obs.Json.Obj
                           [
                             ("case", Obs.Json.String r.Analysis.Corpus.r_case);
                             ( "expect",
                               Obs.Json.String
                                 (D.code_to_string r.Analysis.Corpus.r_expect)
                             );
                             ( "detected",
                               Obs.Json.Bool r.Analysis.Corpus.r_detected );
                           ])
                       results) );
              ]))
    else
      List.iter
        (fun r ->
          pf "%-45s %s  [%s]\n" r.Analysis.Corpus.r_case
            (D.code_to_string r.Analysis.Corpus.r_expect)
            (if r.Analysis.Corpus.r_detected then "detected" else "MISSED"))
        results;
    if Analysis.Corpus.all_detected results then 0 else 1
  in
  let run selftest json seed no_frontiers =
    if selftest then run_selftest json else run_suite seed json no_frontiers
  in
  let selftest =
    Arg.(
      value & flag
      & info [ "selftest" ]
          ~doc:"run the verifier over the planted-defect corpus (forwarding \
                loop, frontier blackhole, reachability loss) and check every \
                plant is caught")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"machine-readable output (stable field order, byte-identical \
                across runs)")
  in
  let seed =
    Arg.(
      value & opt int 31
      & info [ "seed" ] ~doc:"base network seed for suite plan building")
  in
  let no_frontiers =
    Arg.(
      value & flag
      & info [ "no-frontiers" ]
          ~doc:"check phase boundaries only, skipping the per-device mixed \
                frontier states inside each phase")
  in
  Cmd.v
    (Cmd.info "verify-plan"
       ~doc:"Symbolically prove deployment plans loop- and blackhole-free \
             across every phase boundary and mixed frontier, without \
             running the simulator; non-zero exit on violations")
    Term.(const run $ selftest $ json $ seed $ no_frontiers)

(* ---------------- verify ---------------- *)

let verify_cmd =
  let run seed =
    let outcomes =
      Centralium.Verification.qualify_all
        (Centralium.Verification.standard_suite ~seed ())
    in
    List.iter
      (fun o -> Format.printf "%a@." Centralium.Verification.pp_outcome o)
      outcomes;
    if List.for_all Centralium.Verification.passed outcomes then 0 else 1
  in
  let seed =
    Arg.(
      value & opt int 31
      & info [ "seed" ]
          ~doc:"base network seed for the emulations (each spec offsets it)")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Run the pre-deployment qualification suite (Section 7.1) on \
             reduced-scale emulated networks")
    Term.(const run $ seed)

(* ---------------- observe ---------------- *)

let observe_cmd =
  let run scenario seed out =
    let oc = open_out out in
    let result =
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          Experiments.Observe.run ~seed ~scenario
            ~write:(fun line ->
              output_string oc line;
              output_char oc '\n')
            ())
    in
    match result with
    | Error e ->
      Printf.eprintf "observe: %s\n" e;
      1
    | Ok s ->
      pf "wrote %s: %d lines (%d events, %d spans%s)\n" out
        s.Experiments.Observe.lines s.events s.spans
        (if s.dropped_spans > 0 then
           Printf.sprintf ", %d spans dropped" s.dropped_spans
         else "");
      pf "%-28s %s\n" "figure" "value";
      List.iter
        (fun (k, v) -> pf "%-28s %s\n" k (Obs.Json.to_string v))
        s.headline;
      0
  in
  let scenario =
    Arg.(
      value & pos 0 string "faulted"
      & info [] ~docv:"SCENARIO"
          ~doc:
            "fig2 | fig4 | fig5 | fig9 | fig10 | fig13 | fig14 | faulted | \
             faulted_deploy")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"simulation seed")
  in
  let out =
    Arg.(
      value & opt string "run.jsonl"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"output JSONL file")
  in
  Cmd.v
    (Cmd.info "observe"
       ~doc:"Replay a scenario under full instrumentation and export the \
             run (manifest, trace events, spans, metrics) as JSONL")
    Term.(const run $ scenario $ seed $ out)

(* ---------------- chaos ---------------- *)

(* Data-plane chaos sweep: session liveness + graceful restart under the
   severe message-fault profile, with blackhole-seconds accounting
   (ISSUE: `centralium chaos --gr on|off|both`). *)
let chaos_gr_sweep seeds base_seed gr_mode out =
  let mode_line seed (m : Experiments.Scenarios.Chaos.mode_result) ok =
    Obs.Json.Obj
      [
        ("type", Obs.Json.String "chaos_gr_seed");
        ("seed", Obs.Json.Int seed);
        ("gr", Obs.Json.Bool m.gr);
        ("ok", Obs.Json.Bool ok);
        ("blackhole_seconds", Obs.Json.Float m.blackhole_seconds);
        ("loss_seconds", Obs.Json.Float m.loss_seconds);
        ("window", Obs.Json.Float m.window);
        ("messages_dropped", Obs.Json.Int m.messages_dropped);
        ("keepalives_sent", Obs.Json.Int m.keepalives_sent);
        ("hold_expiries", Obs.Json.Int m.hold_expiries);
        ("reconnects", Obs.Json.Int m.reconnects);
        ("stale_sweeps", Obs.Json.Int m.stale_sweeps);
        ("speaker_restarts", Obs.Json.Int m.speaker_restarts);
        ( "transient_violations",
          Obs.Json.Int (List.length m.transient_violations) );
        ("final_violations", Obs.Json.Int (List.length m.final_violations));
        ("fib_digest", Obs.Json.String m.fib_digest);
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let failures = ref 0 in
      let emit line =
        output_string oc (Obs.Json.to_string line);
        output_char oc '\n'
      in
      for k = 0 to seeds - 1 do
        let seed = base_seed + k in
        match gr_mode with
        | `Both ->
          let r = Experiments.Scenarios.Chaos.run ~seed () in
          let on = r.Experiments.Scenarios.Chaos.gr_on
          and off = r.Experiments.Scenarios.Chaos.gr_off in
          let clean (m : Experiments.Scenarios.Chaos.mode_result) =
            m.final_violations = []
          in
          let ok =
            r.Experiments.Scenarios.Chaos.gr_wins && clean on && clean off
          in
          if not ok then incr failures;
          pf
            "seed %d: %s — blackhole-seconds GR on %.6f vs off %.6f \
             (loss %.6f vs %.6f), final violations %d/%d\n"
            seed
            (if ok then "OK" else "FAIL")
            on.blackhole_seconds off.blackhole_seconds on.loss_seconds
            off.loss_seconds
            (List.length on.final_violations)
            (List.length off.final_violations);
          emit (mode_line seed on ok);
          emit (mode_line seed off ok)
        | `One gr ->
          let m = Experiments.Scenarios.Chaos.run_mode ~seed ~gr () in
          let ok = m.Experiments.Scenarios.Chaos.final_violations = [] in
          if not ok then incr failures;
          pf
            "seed %d: %s — gr=%b blackhole-seconds %.6f loss-seconds %.6f \
             (hold expiries %d, stale sweeps %d, final violations %d)\n"
            seed
            (if ok then "OK" else "FAIL")
            gr m.blackhole_seconds m.loss_seconds m.hold_expiries
            m.stale_sweeps
            (List.length m.final_violations)
      done;
      if !failures > 0 then begin
        pf "chaos: %d/%d seeds FAILED (details in %s)\n" !failures seeds out;
        1
      end
      else begin
        (match gr_mode with
         | `Both ->
           pf
             "chaos: all %d seeds quiesced violation-free with graceful \
              restart strictly reducing blackhole-seconds (%s)\n"
             seeds out
         | `One _ ->
           pf "chaos: all %d seeds quiesced violation-free (%s)\n" seeds out);
        0
      end)

(* Controller HA failover sweep: kill the leader mid-rollout at a
   per-seed phase offset, let a standby take over from the journal under
   a higher fencing epoch, and assert bit-identical convergence plus a
   clean dual-leader / stale-epoch-write audit
   (ISSUE: `centralium chaos --ha`). *)
let chaos_ha_sweep seeds base_seed profile_name members crash_at out =
  match
    match profile_name with
    | "none" -> Some Dsim.Mgmt_fault.none
    | "flaky" -> Some Dsim.Mgmt_fault.flaky
    | "hostile" -> Some Dsim.Mgmt_fault.hostile
    | _ -> None
  with
  | None ->
    Printf.eprintf "chaos: unknown profile %S (none | flaky | hostile)\n"
      profile_name;
    1
  | Some profile ->
    let oc = open_out out in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        let failures = ref 0 in
        for k = 0 to seeds - 1 do
          let seed = base_seed + k in
          (* Stagger the kill across seeds so the sweep exercises crashes
             at different phase offsets of the same rollout. *)
          let offset = crash_at +. (0.007 *. float_of_int k) in
          let c =
            Experiments.Scenarios.Failover.crash_vs_uninterrupted ~seed
              ~profile ~members ~leader_crash_offsets:[ offset ] ()
          in
          let i = c.Experiments.Scenarios.Failover.interrupted in
          let u = c.Experiments.Scenarios.Failover.uninterrupted in
          let violations (r : Experiments.Scenarios.Failover.result) =
            List.length r.ha_violations
            + List.length r.phase_violations
            + List.length r.final_violations
          in
          let ok =
            c.Experiments.Scenarios.Failover.digests_match
            && i.outcome = "completed"
            && u.outcome = "completed"
            && i.elections >= 2 (* the kill forced a real takeover *)
            && violations i = 0 && violations u = 0
          in
          if not ok then incr failures;
          pf
            "seed %d: %s — crash@%.0fms: %s by member %s after %d \
             elections (takeover %s ms), uninterrupted %s, violations \
             %d/%d, digests %s\n"
            seed
            (if ok then "OK" else "FAIL")
            (offset *. 1000.) i.outcome
            (match i.completed_by with
             | Some m -> string_of_int m
             | None -> "-")
            i.elections
            (String.concat ","
               (List.map (Printf.sprintf "%.1f") i.takeover_ms))
            u.outcome (violations i) (violations u)
            (if c.Experiments.Scenarios.Failover.digests_match then "match"
             else "DIFFER");
          let line =
            Obs.Json.Obj
              [
                ("type", Obs.Json.String "chaos_ha_seed");
                ("seed", Obs.Json.Int seed);
                ("ok", Obs.Json.Bool ok);
                ("profile", Obs.Json.String profile_name);
                ("members", Obs.Json.Int members);
                ("crash_at_s", Obs.Json.Float offset);
                ("interrupted_outcome", Obs.Json.String i.outcome);
                ("uninterrupted_outcome", Obs.Json.String u.outcome);
                ( "completed_by",
                  match i.completed_by with
                  | Some m -> Obs.Json.Int m
                  | None -> Obs.Json.Null );
                ("elections", Obs.Json.Int i.elections);
                ( "takeover_ms",
                  Obs.Json.List
                    (List.map (fun t -> Obs.Json.Float t) i.takeover_ms) );
                ("fenced_attempts", Obs.Json.Int i.fenced_attempts);
                ("dead_members", Obs.Json.Int i.dead_members);
                ("applied", Obs.Json.Int i.applied);
                ("skipped_in_sync", Obs.Json.Int i.skipped_in_sync);
                ( "journal_status",
                  match i.journal_status with
                  | Some s -> Obs.Json.String s
                  | None -> Obs.Json.Null );
                ("ha_violations", Obs.Json.Int (List.length i.ha_violations));
                ("violations_interrupted", Obs.Json.Int (violations i));
                ("violations_uninterrupted", Obs.Json.Int (violations u));
                ( "digests_match",
                  Obs.Json.Bool c.Experiments.Scenarios.Failover.digests_match
                );
                ("fib_digest", Obs.Json.String i.fib_digest);
              ]
          in
          output_string oc (Obs.Json.to_string line);
          output_char oc '\n'
        done;
        if !failures > 0 then begin
          pf "chaos --ha: %d/%d seeds FAILED (details in %s)\n" !failures
            seeds out;
          1
        end
        else begin
          pf
            "chaos --ha: all %d seeds failed over deterministically — \
             standby takeovers, bit-identical forwarding state, zero \
             dual-leader/stale-epoch violations (%s)\n"
            seeds out;
          0
        end)

let chaos_cmd =
  let run seeds base_seed profile_name crash_after gr ha members crash_at out =
    if ha then chaos_ha_sweep seeds base_seed profile_name members crash_at out
    else
    match gr with
    | Some mode ->
      (match mode with
       | "on" -> chaos_gr_sweep seeds base_seed (`One true) out
       | "off" -> chaos_gr_sweep seeds base_seed (`One false) out
       | "both" -> chaos_gr_sweep seeds base_seed `Both out
       | _ ->
         Printf.eprintf "chaos: unknown --gr mode %S (on | off | both)\n" mode;
         1)
    | None ->
    match
      match profile_name with
      | "none" -> Some Dsim.Mgmt_fault.none
      | "flaky" -> Some Dsim.Mgmt_fault.flaky
      | "hostile" -> Some Dsim.Mgmt_fault.hostile
      | _ -> None
    with
    | None ->
      Printf.eprintf "chaos: unknown profile %S (none | flaky | hostile)\n"
        profile_name;
      1
    | Some profile ->
      let oc = open_out out in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          let failures = ref 0 in
          for k = 0 to seeds - 1 do
            let seed = base_seed + k in
            let c =
              Experiments.Scenarios.Faulted_deploy.crash_vs_uninterrupted ~seed
                ~profile ?crash_after_ops:crash_after ()
            in
            let i = c.Experiments.Scenarios.Faulted_deploy.interrupted in
            let u = c.Experiments.Scenarios.Faulted_deploy.uninterrupted in
            let violations (r : Experiments.Scenarios.Faulted_deploy.result) =
              List.length r.transient_violations
              + List.length r.phase_violations
              + List.length r.final_violations
            in
            let ok =
              c.Experiments.Scenarios.Faulted_deploy.digests_match && i.crashed
              && i.resumed
              && i.outcome = "completed"
              && u.outcome = "completed"
              && violations i = 0 && violations u = 0
            in
            if not ok then incr failures;
            pf
              "seed %d: %s — crash+resume %s (applied %d, retries %d, \
               backoffs %d), uninterrupted %s, violations %d/%d, digests %s\n"
              seed
              (if ok then "OK" else "FAIL")
              i.outcome i.applied i.retries
              (List.length i.backoff_seconds)
              u.outcome (violations i) (violations u)
              (if c.Experiments.Scenarios.Faulted_deploy.digests_match then
                 "match"
               else "DIFFER");
            let line =
              Obs.Json.Obj
                [
                  ("type", Obs.Json.String "chaos_seed");
                  ("seed", Obs.Json.Int seed);
                  ("ok", Obs.Json.Bool ok);
                  ("profile", Obs.Json.String profile_name);
                  ("interrupted_outcome", Obs.Json.String i.outcome);
                  ("uninterrupted_outcome", Obs.Json.String u.outcome);
                  ("crashed", Obs.Json.Bool i.crashed);
                  ("resumed", Obs.Json.Bool i.resumed);
                  ("applied", Obs.Json.Int i.applied);
                  ("retries", Obs.Json.Int i.retries);
                  ("backoffs", Obs.Json.Int (List.length i.backoff_seconds));
                  ("gave_up", Obs.Json.Int (List.length i.gave_up));
                  ("violations_interrupted", Obs.Json.Int (violations i));
                  ("violations_uninterrupted", Obs.Json.Int (violations u));
                  ( "digests_match",
                    Obs.Json.Bool
                      c.Experiments.Scenarios.Faulted_deploy.digests_match );
                  ("fib_digest", Obs.Json.String i.fib_digest);
                ]
            in
            output_string oc (Obs.Json.to_string line);
            output_char oc '\n'
          done;
          if !failures > 0 then begin
            pf "chaos: %d/%d seeds FAILED (details in %s)\n" !failures seeds
              out;
            1
          end
          else begin
            pf
              "chaos: all %d seeds converged bit-identically through \
               crash+resume with zero invariant violations (%s)\n"
              seeds out;
            0
          end)
  in
  let seeds =
    Arg.(value & opt int 3 & info [ "seeds" ] ~doc:"number of seeds to sweep")
  in
  let base_seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"first seed of the sweep")
  in
  let profile =
    Arg.(
      value & opt string "flaky"
      & info [ "profile" ]
          ~doc:"management-plane fault profile: none | flaky | hostile")
  in
  let crash_after =
    Arg.(
      value & opt (some int) None
      & info [ "crash-after" ]
          ~docv:"OPS"
          ~doc:
            "crash the controller after OPS management operations (default: \
             mid-flight of the first phase)")
  in
  let gr =
    Arg.(
      value & opt (some string) None
      & info [ "gr" ] ~docv:"MODE"
          ~doc:
            "switch to the data-plane chaos sweep (session liveness under \
             the severe message-fault profile, blackhole-seconds \
             accounting) with graceful restart $(docv): on | off | both. \
             With 'both' each seed runs both modes and the sweep fails \
             unless graceful restart strictly reduces blackhole-seconds \
             and both modes quiesce violation-free. Ignores --profile and \
             --crash-after.")
  in
  let ha =
    Arg.(
      value & flag
      & info [ "ha" ]
          ~doc:
            "switch to the controller-failover sweep: a $(b,--members)-way \
             lease-elected controller cluster deploys the expansion plan, \
             the leader is killed mid-rollout (at $(b,--crash-at) plus a \
             per-seed stagger), and the sweep fails unless every standby \
             takeover converges bit-identically to the uninterrupted run \
             with zero dual-leader / stale-epoch-write violations. \
             Ignores --gr and --crash-after.")
  in
  let members =
    Arg.(
      value & opt int 3
      & info [ "members" ] ~doc:"controller cluster size for --ha")
  in
  let crash_at =
    Arg.(
      value & opt float 0.02
      & info [ "crash-at" ] ~docv:"SECONDS"
          ~doc:
            "base leader-kill offset for --ha, seconds after cluster \
             start (each seed adds its own stagger)")
  in
  let out =
    Arg.(
      value & opt string "chaos.jsonl"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"output JSONL file")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Sweep seeds of a chaos scenario. Default: the faulted-deploy \
          scenario — deploy under management-plane chaos, crash the \
          controller mid-rollout, resume from the NSDB journal, and assert \
          bit-identical convergence with zero invariant violations. With \
          --gr: the data-plane scenario — converge under severe message \
          faults and speaker restarts with session liveness timers, and \
          account blackhole-seconds with graceful restart on/off. With \
          --ha: the controller-failover scenario — a lease-elected \
          controller cluster loses its leader mid-rollout at a per-seed \
          phase offset; a standby must take over under a higher fencing \
          epoch and converge bit-identically with a clean \
          dual-leader/stale-epoch audit")
    Term.(
      const run $ seeds $ base_seed $ profile $ crash_after $ gr $ ha
      $ members $ crash_at $ out)

(* ---------------- trace ---------------- *)

let trace_cmd =
  let run scenario seed prefix_s gr_s format out =
    match Net.Prefix.of_string prefix_s with
    | Error e ->
      Printf.eprintf "trace: bad --prefix %S: %s\n" prefix_s e;
      1
    | Ok prefix ->
      (match
         match gr_s with
         | "on" -> Some true
         | "off" -> Some false
         | _ -> None
       with
       | None ->
         Printf.eprintf "trace: unknown --gr mode %S (on | off)\n" gr_s;
         1
       | Some gr ->
         let format =
           match format with
           | `Human -> Experiments.Trace_run.Human
           | `Json -> Experiments.Trace_run.Json
           | `Perfetto -> Experiments.Trace_run.Perfetto
         in
         let with_sink k =
           match out with
           | None -> k print_string
           | Some path ->
             let oc = open_out path in
             Fun.protect
               ~finally:(fun () -> close_out_noerr oc)
               (fun () -> k (output_string oc))
         in
         let result =
           with_sink (fun write ->
               Experiments.Trace_run.run ~seed ~gr ~prefix ~scenario ~format
                 ~write ())
         in
         (match result with
          | Error e ->
            Printf.eprintf "trace: %s\n" e;
            1
          | Ok s ->
            (match out with
             | Some path -> pf "wrote %s\n" path
             | None -> ());
            pf
              "trace: scenario=%s seed=%d prefix=%s — %d causal events, \
               critical path %s%s\n"
              s.Experiments.Trace_run.scenario s.seed s.prefix s.causal_events
              (match s.convergence_s with
               | Some t ->
                 Printf.sprintf "%d events / %.6fs" s.critical_events t
               | None -> "(none)")
              (if s.attributed_segments > 0 then
                 Printf.sprintf
                   ", %.6f of %.6f blackhole-seconds attributed over %d \
                    segments"
                   s.attributed_seconds s.blackhole_seconds
                   s.attributed_segments
               else "");
            0))
  in
  let scenario =
    Arg.(
      value & pos 0 string "chaos"
      & info [] ~docv:"SCENARIO"
          ~doc:"converge | chaos (default chaos)")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"simulation seed")
  in
  let prefix =
    Arg.(
      value & opt string "0.0.0.0/0"
      & info [ "prefix" ] ~docv:"PREFIX"
          ~doc:"prefix to trace (default: the default route)")
  in
  let gr =
    Arg.(
      value & opt string "on"
      & info [ "gr" ] ~docv:"MODE"
          ~doc:"graceful-restart mode for the chaos scenario (on | off)")
  in
  let format =
    Arg.(
      value
      & vflag `Human
          [
            ( `Json,
              info [ "json" ]
                ~doc:
                  "emit the full causal DAG, critical path, and blackhole \
                   attribution as one JSON document (deterministic at a \
                   given seed)" );
            ( `Perfetto,
              info [ "perfetto" ]
                ~doc:
                  "emit a Perfetto / Chrome trace-event JSON file of the \
                   span tree and causal DAG (open in ui.perfetto.dev)" );
          ])
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"write the trace to FILE instead of stdout")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Replay a scenario under the causal trace-context layer and print \
          the traced prefix's provenance: the convergence critical path \
          (per-edge delays summing to the convergence time) and, for the \
          chaos scenario, the blackhole attribution joining loss intervals \
          to the FIB events that opened and closed them")
    Term.(const run $ scenario $ seed $ prefix $ gr $ format $ out)

(* ---------------- apps ---------------- *)

let apps_cmd =
  let run () =
    List.iter print_endline Centralium.Apps.all_app_names;
    0
  in
  Cmd.v
    (Cmd.info "apps" ~doc:"List the onboarded controller applications")
    Term.(const run $ const ())

(* ---------------- ops ---------------- *)

(* The 24/7 operations driver: a compressed simulated day of back-to-back
   migrations through the admission queue, with the SLO watchdog armed and
   NSDB replica catch-up running (ISSUE: `centralium ops --seed N --hours H`). *)
let ops_cmd =
  let run seed hours jobs_per_hour members profile_name crash_at out =
    match
      match profile_name with
      | "none" -> Some Dsim.Mgmt_fault.none
      | "flaky" -> Some Dsim.Mgmt_fault.flaky
      | "hostile" -> Some Dsim.Mgmt_fault.hostile
      | _ -> None
    with
    | None ->
      Printf.eprintf "ops: unknown profile %S (none | flaky | hostile)\n"
        profile_name;
      1
    | Some profile ->
      let leader_crash_offsets =
        match crash_at with None -> [] | Some t -> [ t ]
      in
      let r =
        Experiments.Scenarios.Continuous.run ~seed ~hours ~jobs_per_hour
          ~members ~profile ~leader_crash_offsets ()
      in
      let oc = open_out out in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          let opt_str = function
            | Some s -> Obs.Json.String s
            | None -> Obs.Json.Null
          in
          List.iter
            (fun (j : Experiments.Scenarios.Continuous.job) ->
              let line =
                Obs.Json.Obj
                  [
                    ("type", Obs.Json.String "ops_job");
                    ("index", Obs.Json.Int j.job_index);
                    ("name", Obs.Json.String j.job_name);
                    ("tenant", Obs.Json.String j.job_tenant);
                    ("class", Obs.Json.String j.job_class);
                    ("canary", Obs.Json.Bool j.job_canary);
                    ( "seq",
                      match j.job_seq with
                      | Some s -> Obs.Json.Int s
                      | None -> Obs.Json.Null );
                    ("shed_reason", opt_str j.job_shed_reason);
                    ("outcome", opt_str j.job_outcome);
                    ("queue_wait_s", Obs.Json.Float j.job_queue_wait_s);
                    ("convergence_s", Obs.Json.Float j.job_convergence_s);
                    ( "remediated",
                      Obs.Json.Bool (j.job_remediation <> None) );
                  ]
              in
              output_string oc (Obs.Json.to_string line);
              output_char oc '\n')
            r.jobs;
          let report =
            Obs.Json.Obj
              [
                ("type", Obs.Json.String "ops_slo");
                ("seed", Obs.Json.Int seed);
                ("hours", Obs.Json.Int r.hours);
                ("members", Obs.Json.Int members);
                ("profile", Obs.Json.String profile_name);
                ( "crash_at_s",
                  match crash_at with
                  | Some t -> Obs.Json.Float t
                  | None -> Obs.Json.Null );
                ("submitted", Obs.Json.Int r.submitted);
                ("admitted", Obs.Json.Int r.admitted);
                ("shed", Obs.Json.Int r.shed);
                ("completed", Obs.Json.Int r.completed);
                ("rolled_back", Obs.Json.Int r.rolled_back);
                ("shed_rate", Obs.Json.Float r.shed_rate);
                ("rollback_rate", Obs.Json.Float r.rollback_rate);
                ("plans_per_hour", Obs.Json.Float r.plans_per_hour);
                ("convergence_p50_s", Obs.Json.Float r.convergence_p50_s);
                ("convergence_p99_s", Obs.Json.Float r.convergence_p99_s);
                ("queue_wait_p99_s", Obs.Json.Float r.queue_wait_p99_s);
                ( "blackhole_seconds_per_day",
                  Obs.Json.Float r.blackhole_seconds_per_day );
                ("replica_lag_p99", Obs.Json.Float r.replica_lag_p99);
                ("replica_lag_peak", Obs.Json.Int r.replica_lag_peak);
                ("snapshot_ships", Obs.Json.Int r.snapshot_ships);
                ("elections", Obs.Json.Int r.elections);
                ("queue_recoveries", Obs.Json.Int r.queue_recoveries);
                ("remediations", Obs.Json.Int r.remediations);
                ( "unremediated_violations",
                  Obs.Json.Int r.unremediated_violations );
                ( "queue_order",
                  Obs.Json.List
                    (List.map (fun s -> Obs.Json.Int s) r.queue_order) );
                ( "shed_set",
                  Obs.Json.List
                    (List.map (fun s -> Obs.Json.Int s) r.shed_set) );
                ("fib_digest", Obs.Json.String r.fib_digest);
              ]
          in
          output_string oc (Obs.Json.to_string report);
          output_char oc '\n';
          pf
            "ops: %dh simulated day, %d submitted — %d admitted, %d shed \
             (%.1f%%), %d completed, %d rolled back, %d remediations\n"
            r.hours r.submitted r.admitted r.shed (100. *. r.shed_rate)
            r.completed r.rolled_back r.remediations;
          pf
            "ops: convergence p50/p99 %.0f/%.0f ms, queue wait p99 %.0f ms, \
             blackhole %.4f s/day, replica lag p99 %.0f ops (peak %d, %d \
             snapshot ships), %d elections\n"
            (1000. *. r.convergence_p50_s)
            (1000. *. r.convergence_p99_s)
            (1000. *. r.queue_wait_p99_s)
            r.blackhole_seconds_per_day r.replica_lag_p99 r.replica_lag_peak
            r.snapshot_ships r.elections;
          if r.unremediated_violations > 0 then begin
            pf
              "ops: FAILED — %d unremediated invariant violations (SLO \
               report in %s)\n"
              r.unremediated_violations out;
            1
          end
          else begin
            pf
              "ops: every violation absent or auto-remediated; SLO report \
               in %s\n"
              out;
            0
          end)
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"simulation seed")
  in
  let hours =
    Arg.(
      value & opt int 24
      & info [ "hours" ] ~doc:"length of the simulated horizon, in hours")
  in
  let jobs_per_hour =
    Arg.(
      value & opt int 5
      & info [ "jobs-per-hour" ]
          ~doc:
            "migration submissions per hourly burst (the admission queue \
             caps at 4, so bursts above that shed)")
  in
  let members =
    Arg.(
      value & opt int 2
      & info [ "members" ] ~doc:"controller cluster size")
  in
  let profile =
    Arg.(
      value & opt string "flaky"
      & info [ "profile" ]
          ~doc:"management-plane fault profile: none | flaky | hostile")
  in
  let crash_at =
    Arg.(
      value & opt (some float) None
      & info [ "crash-at" ] ~docv:"SECONDS"
          ~doc:
            "kill the controller leader SECONDS (virtual) into the run — \
             the standby takes over and rebuilds the queue from the opsq \
             journal; the report stays bit-identical to the uninterrupted \
             run")
  in
  let out =
    Arg.(
      value & opt string "ops_slo.jsonl"
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"write the per-job and summary SLO JSONL to FILE")
  in
  Cmd.v
    (Cmd.info "ops"
       ~doc:
         "Run the 24/7 continuous-operations driver: hourly bursts of \
          seeded migrations through the bounded admission queue \
          (over-capacity submissions shed with typed reasons), NSDB \
          replica catch-up under the write load, canary regressions that \
          the SLO watchdog must catch and auto-roll-back, and a JSONL SLO \
          report (p99 convergence, blackhole-seconds/day, shed and \
          rollback rates, replica lag). Exits non-zero if any invariant \
          violation was left unremediated.")
    Term.(
      const run $ seed $ hours $ jobs_per_hour $ members $ profile $ crash_at
      $ out)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "centralium" ~version:"1.0.0"
      ~doc:
        "Hybrid route-planning for data center network migrations \
         (SIGCOMM '25 reproduction)"
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [
            topology_cmd; rpa_cmd; parse_cmd; lint_cmd; simulate_cmd;
            observe_cmd; table3_cmd; verify_cmd; verify_plan_cmd; chaos_cmd;
            trace_cmd; ops_cmd; apps_cmd;
          ]))
