type profile = {
  drop_prob : float;
  delay_prob : float;
  delay_mean : float;
  reorder_prob : float;
}

let none =
  { drop_prob = 0.0; delay_prob = 0.0; delay_mean = 0.0; reorder_prob = 0.0 }

let light =
  { drop_prob = 0.01; delay_prob = 0.1; delay_mean = 0.005; reorder_prob = 0.05 }

let heavy =
  { drop_prob = 0.1; delay_prob = 0.3; delay_mean = 0.02; reorder_prob = 0.2 }

let severe =
  { drop_prob = 0.25; delay_prob = 0.4; delay_mean = 0.03; reorder_prob = 0.25 }

type fate = { dropped : bool; extra_delay : float; reorder : bool }

let pass = { dropped = false; extra_delay = 0.0; reorder = false }

type t = { rng : Rng.t; prof : profile }

let create ~seed prof = { rng = Rng.create seed; prof }

let profile t = t.prof

let fate t =
  if Rng.float t.rng 1.0 < t.prof.drop_prob then
    { dropped = true; extra_delay = 0.0; reorder = false }
  else begin
    let extra_delay =
      if Rng.float t.rng 1.0 < t.prof.delay_prob then
        Rng.exponential t.rng ~mean:t.prof.delay_mean
      else 0.0
    in
    let reorder = Rng.float t.rng 1.0 < t.prof.reorder_prob in
    { dropped = false; extra_delay; reorder }
  end

(* ---------------- Schedules ---------------- *)

type action =
  | Flap_link of { a : int; b : int; at : float; duration : float }
  | Restart_speaker of { device : int; at : float; recovery : float }

type schedule = action list

let action_time = function
  | Flap_link { at; _ } | Restart_speaker { at; _ } -> at

let random_schedule ~seed ~links ~devices ~horizon ?(flaps = 4) ?(restarts = 1)
    ?(min_duration = 0.001) ?(max_duration = 0.01) () =
  let rng = Rng.create seed in
  let duration () =
    min_duration +. Rng.float rng (Float.max 0.0 (max_duration -. min_duration))
  in
  let flap_actions =
    if links = [] then []
    else
      List.init flaps (fun _ ->
          let a, b = Rng.pick rng links in
          Flap_link { a; b; at = Rng.float rng horizon; duration = duration () })
  in
  let restart_actions =
    if devices = [] then []
    else
      List.init restarts (fun _ ->
          Restart_speaker
            {
              device = Rng.pick rng devices;
              at = Rng.float rng horizon;
              recovery = duration ();
            })
  in
  List.stable_sort
    (fun x y -> Float.compare (action_time x) (action_time y))
    (flap_actions @ restart_actions)

let pp_action ppf = function
  | Flap_link { a; b; at; duration } ->
    Format.fprintf ppf "flap %d-%d at %.4fs for %.4fs" a b at duration
  | Restart_speaker { device; at; recovery } ->
    Format.fprintf ppf "restart %d at %.4fs, recover after %.4fs" device at
      recovery
