(** Discrete-event simulation core.

    A priority queue of timestamped thunks with a stable tie-break (FIFO
    among events scheduled for the same instant), driving a virtual clock.
    Asynchronous BGP convergence — the root cause of every transient problem
    in Section 3 of the paper — is modeled by scheduling message deliveries
    at randomized future times and running the queue to quiescence. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time (seconds). *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule q ~delay f] runs [f] at [now q +. delay]. Negative delays are
    clamped to 0 (execute at the current instant, after already queued
    events for that instant). *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Absolute-time variant; times before [now] are clamped to [now]. *)

val is_empty : t -> bool

val pending : t -> int
(** Number of queued events. *)

val step : t -> bool
(** Executes the earliest event. Returns [false] if the queue was empty. *)

val set_on_step : t -> (unit -> unit) option -> unit
(** Installs (or clears) a hook run by {!step} after the clock advances and
    before the event thunk executes. Instrumentation only: the hook must not
    schedule events or otherwise affect the simulation. Used by the causal
    tracer to reset its ambient cursor at every event boundary so causality
    never leaks between unrelated queue events. *)

val run : ?max_events:int -> t -> int
(** Runs events until the queue is empty or [max_events] have executed
    (default unlimited). Returns the number executed. *)

val run_until : t -> time:float -> int
(** Runs all events with timestamp [<= time] and advances the clock to
    [time]. Returns the number executed. *)
