type profile = {
  rpc_loss_prob : float;
  rpc_timeout_prob : float;
  rpc_transient_prob : float;
  nsdb_loss_prob : float;
}

let none =
  {
    rpc_loss_prob = 0.0;
    rpc_timeout_prob = 0.0;
    rpc_transient_prob = 0.0;
    nsdb_loss_prob = 0.0;
  }

let flaky =
  {
    rpc_loss_prob = 0.06;
    rpc_timeout_prob = 0.05;
    rpc_transient_prob = 0.05;
    nsdb_loss_prob = 0.03;
  }

let hostile =
  {
    rpc_loss_prob = 0.2;
    rpc_timeout_prob = 0.15;
    rpc_transient_prob = 0.2;
    nsdb_loss_prob = 0.1;
  }

type rpc_fate = Deliver | Lose | Time_out | Transient of string

type ha_profile = {
  leader_crash_times : float list;
  lease_partitions : (float * float) list;
  renewal_delay_prob : float;
  renewal_delay_max_s : float;
}

let ha_none =
  {
    leader_crash_times = [];
    lease_partitions = [];
    renewal_delay_prob = 0.0;
    renewal_delay_max_s = 0.0;
  }

type t = {
  rng : Rng.t;
  prof : profile;
  crash_after_ops : int option;
  mutable op_count : int;
  ha : ha_profile;
  (* Dedicated stream: HA timer jitter must not perturb the per-op fate
     schedule, so turning HA knobs on cannot change which RPCs fail. *)
  ha_rng : Rng.t;
  mutable pending_crashes : float list;
}

let create ?crash_after_ops ?(ha = ha_none) ~seed prof =
  {
    rng = Rng.create seed;
    prof;
    crash_after_ops;
    op_count = 0;
    ha;
    ha_rng = Rng.create (seed lxor 0x5eed_4a);
    pending_crashes = List.sort compare ha.leader_crash_times;
  }

let profile t = t.prof
let ops t = t.op_count

let transient_reasons =
  [| "agent busy"; "agent restarting"; "rpc channel reset" |]

(* One uniform draw partitioned into fate intervals: a single RNG
   consumption per operation keeps the op→draw correspondence trivial to
   reason about when reproducing a schedule. *)
let rpc_fate t =
  t.op_count <- t.op_count + 1;
  let u = Rng.float t.rng 1.0 in
  let p = t.prof in
  if u < p.rpc_loss_prob then Lose
  else if u < p.rpc_loss_prob +. p.rpc_timeout_prob then Time_out
  else if u < p.rpc_loss_prob +. p.rpc_timeout_prob +. p.rpc_transient_prob
  then
    Transient
      transient_reasons.(Rng.int t.rng (Array.length transient_reasons))
  else Deliver

let nsdb_write_ok t =
  t.op_count <- t.op_count + 1;
  Rng.float t.rng 1.0 >= t.prof.nsdb_loss_prob

let crashed t =
  match t.crash_after_ops with
  | None -> false
  | Some n -> t.op_count >= n

let ha_profile t = t.ha

let leader_crash_due t ~now =
  match t.pending_crashes with
  | next :: rest when now >= next ->
    t.pending_crashes <- rest;
    true
  | _ -> false

let lease_reachable t ~now =
  not (List.exists (fun (a, b) -> now >= a && now < b) t.ha.lease_partitions)

let renewal_delay t =
  let p = t.ha in
  if p.renewal_delay_prob <= 0.0 then 0.0
  else if Rng.float t.ha_rng 1.0 < p.renewal_delay_prob then
    Rng.float t.ha_rng p.renewal_delay_max_s
  else 0.0
