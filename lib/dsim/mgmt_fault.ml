type profile = {
  rpc_loss_prob : float;
  rpc_timeout_prob : float;
  rpc_transient_prob : float;
  nsdb_loss_prob : float;
}

let none =
  {
    rpc_loss_prob = 0.0;
    rpc_timeout_prob = 0.0;
    rpc_transient_prob = 0.0;
    nsdb_loss_prob = 0.0;
  }

let flaky =
  {
    rpc_loss_prob = 0.06;
    rpc_timeout_prob = 0.05;
    rpc_transient_prob = 0.05;
    nsdb_loss_prob = 0.03;
  }

let hostile =
  {
    rpc_loss_prob = 0.2;
    rpc_timeout_prob = 0.15;
    rpc_transient_prob = 0.2;
    nsdb_loss_prob = 0.1;
  }

type rpc_fate = Deliver | Lose | Time_out | Transient of string

type t = {
  rng : Rng.t;
  prof : profile;
  crash_after_ops : int option;
  mutable op_count : int;
}

let create ?crash_after_ops ~seed prof =
  { rng = Rng.create seed; prof; crash_after_ops; op_count = 0 }

let profile t = t.prof
let ops t = t.op_count

let transient_reasons =
  [| "agent busy"; "agent restarting"; "rpc channel reset" |]

(* One uniform draw partitioned into fate intervals: a single RNG
   consumption per operation keeps the op→draw correspondence trivial to
   reason about when reproducing a schedule. *)
let rpc_fate t =
  t.op_count <- t.op_count + 1;
  let u = Rng.float t.rng 1.0 in
  let p = t.prof in
  if u < p.rpc_loss_prob then Lose
  else if u < p.rpc_loss_prob +. p.rpc_timeout_prob then Time_out
  else if u < p.rpc_loss_prob +. p.rpc_timeout_prob +. p.rpc_transient_prob
  then
    Transient
      transient_reasons.(Rng.int t.rng (Array.length transient_reasons))
  else Deliver

let nsdb_write_ok t =
  t.op_count <- t.op_count + 1;
  Rng.float t.rng 1.0 >= t.prof.nsdb_loss_prob

let crashed t =
  match t.crash_after_ops with
  | None -> false
  | Some n -> t.op_count >= n
