type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if q <= 0.0 then sorted.(0)
  else if q >= 100.0 then sorted.(n - 1)
  else begin
    let rank = q /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let mean = function
  | [] -> invalid_arg "Stats.mean: empty"
  | samples ->
    List.fold_left ( +. ) 0.0 samples /. float_of_int (List.length samples)

let stddev samples =
  let m = mean samples in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 samples
    /. float_of_int (List.length samples)
  in
  sqrt var

let summarize samples =
  if samples = [] then invalid_arg "Stats.summarize: empty";
  let sorted = Array.of_list samples in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  {
    count = n;
    mean = mean samples;
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = percentile sorted 50.0;
    p90 = percentile sorted 90.0;
    p95 = percentile sorted 95.0;
    p99 = percentile sorted 99.0;
  }

let cdf ?(points = 50) samples =
  if samples = [] then []
  else begin
    let sorted = Array.of_list samples in
    Array.sort Float.compare sorted;
    let n = Array.length sorted in
    let points = min points n in
    List.init points (fun i ->
        let frac = float_of_int (i + 1) /. float_of_int points in
        let idx = min (n - 1) (int_of_float (Float.ceil (frac *. float_of_int n)) - 1) in
        (sorted.(max 0 idx), frac))
  end

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4g min=%.4g p50=%.4g p90=%.4g p95=%.4g p99=%.4g max=%.4g"
    s.count s.mean s.min s.p50 s.p90 s.p95 s.p99 s.max

let pp_cdf_ascii ?(width = 40) ?(unit_label = "") ppf points =
  List.iter
    (fun (value, frac) ->
      let bar = int_of_float (frac *. float_of_int width) in
      Format.fprintf ppf "%10.4g %s |%s %3.0f%%@." value unit_label
        (String.make bar '#') (frac *. 100.0))
    points

let histogram ~buckets samples =
  let bounds = Array.of_list (List.sort_uniq Float.compare buckets) in
  let n = Array.length bounds in
  let counts = Array.make n 0 in
  let overflow = ref 0 in
  (* Binary search for the first bound >= x; [n] means above every bound. *)
  let bucket_of x =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if x <= bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  in
  List.iter
    (fun x ->
      let i = bucket_of x in
      if i >= n then incr overflow else counts.(i) <- counts.(i) + 1)
    samples;
  (List.init n (fun i -> (bounds.(i), counts.(i))), !overflow)
