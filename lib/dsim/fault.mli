(** Deterministic fault injection for the discrete-event simulator.

    The paper's transient problems — blackholes, forwarding loops, capacity
    violations — arise from {e asynchronous} convergence, and asynchrony is
    at its worst when the transport misbehaves: messages delayed past their
    peers, delivered out of order, or lost outright, sessions flapping and
    speakers restarting mid-migration. This module is the adversarial
    substrate: a seeded model of exactly those faults, drawing every
    decision from its own {!Rng} stream so that a faulty run is
    reproducible bit-for-bit from its seed, independent of the simulation's
    other random draws.

    Two layers:
    - a {e message-level} model ({!profile} / {!fate}) sampled once per
      transmitted message by the network layer;
    - a {e control-level} {!schedule} of link flaps and speaker restarts,
      executed through the event queue. *)

(** Per-message fault probabilities. *)
type profile = {
  drop_prob : float;  (** probability the message is lost in transit *)
  delay_prob : float;
      (** probability the message suffers an extra delivery delay *)
  delay_mean : float;
      (** mean of the exponential extra delay, in seconds *)
  reorder_prob : float;
      (** probability the message may overtake earlier in-flight messages
          of its session (the FIFO delivery clamp is bypassed) *)
}

val none : profile
(** All probabilities zero: a model with this profile is transparent. *)

val light : profile
(** Mild degradation: 1% loss, 10% extra delay (5 ms mean), 5% reorder. *)

val heavy : profile
(** Severe degradation: 10% loss, 30% extra delay (20 ms mean), 20%
    reorder. *)

val severe : profile
(** Chaos-grade degradation: 25% loss, 40% extra delay (30 ms mean), 25%
    reorder — enough sustained loss to expire hold timers (see
    {!Bgp.Liveness}) and exercise graceful-restart retention. *)

(** The sampled outcome for one message. *)
type fate = {
  dropped : bool;
  extra_delay : float;  (** seconds added on top of the base latency *)
  reorder : bool;
}

val pass : fate
(** The no-fault outcome (delivered, no extra delay, in order). *)

type t

val create : seed:int -> profile -> t
(** A fault model with its own splitmix64 stream. Two models created with
    the same seed and profile produce identical fate sequences. *)

val profile : t -> profile

val fate : t -> fate
(** Draws the fate of one message. Consumes only the model's own RNG, so
    installing a fault model never perturbs latency or topology draws made
    elsewhere in the simulation. *)

(** {1 Scheduled control-plane faults}

    Times are relative to the moment the schedule is applied (delays into
    the event queue). *)

type action =
  | Flap_link of { a : int; b : int; at : float; duration : float }
      (** take the [a]-[b] link down at [at], back up [duration] later *)
  | Restart_speaker of { device : int; at : float; recovery : float }
      (** crash the device's BGP speaker at [at] — its RIBs are cleared and
          every session drops without a goodbye — then re-establish all
          sessions [recovery] later, replaying session establishment *)

type schedule = action list

val random_schedule :
  seed:int ->
  links:(int * int) list ->
  devices:int list ->
  horizon:float ->
  ?flaps:int ->
  ?restarts:int ->
  ?min_duration:float ->
  ?max_duration:float ->
  unit ->
  schedule
(** A reproducible random schedule: [flaps] link flaps (default 4) drawn
    from [links] and [restarts] speaker restarts (default 1) drawn from
    [devices], with start times uniform in [\[0, horizon)] and durations
    uniform in [\[min_duration, max_duration)] (defaults 1-10 ms). Sorted
    by start time. Empty [links] or [devices] simply yield no actions of
    that kind. *)

val pp_action : Format.formatter -> action -> unit
