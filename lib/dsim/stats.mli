(** Sample statistics: percentiles, CDFs, and summaries.

    Used by the benchmark harness to report distributions the way the paper
    does (Table 2 percentiles; Figure 11/12 CDFs). *)

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on the empty list. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0, 100\]] using linear
    interpolation. [sorted] must be sorted ascending and non-empty. *)

val cdf : ?points:int -> float list -> (float * float) list
(** [cdf samples] is a list of [(value, fraction <= value)] pairs suitable
    for plotting, down-sampled to at most [points] (default 50) evenly
    spaced quantiles. *)

val mean : float list -> float
val stddev : float list -> float

val pp_summary : Format.formatter -> summary -> unit

val pp_cdf_ascii :
  ?width:int -> ?unit_label:string -> Format.formatter -> (float * float) list -> unit
(** Renders a CDF as an ASCII chart, one row per (value, cumfrac) point. *)

val histogram : buckets:float list -> float list -> (float * int) list * int
(** [histogram ~buckets samples] is [(counts, overflow)]: per sorted bucket
    upper bound, the number of samples in ((previous bound, bound]] (found
    by binary search over the sorted bounds), plus an explicit overflow
    count of samples above the largest bound. Overflow used to be silently
    folded into the last in-range bucket, conflating it with real counts. *)
