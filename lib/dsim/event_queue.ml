(* Binary min-heap ordered by (time, seq); seq preserves FIFO order among
   simultaneous events so simulations are fully deterministic. *)

type entry = { time : float; seq : int; thunk : unit -> unit }

type t = {
  mutable heap : entry array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable on_step : (unit -> unit) option;
}

let dummy = { time = 0.0; seq = 0; thunk = ignore }

let create () =
  { heap = Array.make 64 dummy; size = 0; clock = 0.0; next_seq = 0; on_step = None }

let set_on_step t hook = t.on_step <- hook

let now t = t.clock

let entry_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let bigger = Array.make (2 * Array.length t.heap) dummy in
  Array.blit t.heap 0 bigger 0 t.size;
  t.heap <- bigger

let push t entry =
  if t.size = Array.length t.heap then grow t;
  let heap = t.heap in
  let i = ref t.size in
  t.size <- t.size + 1;
  heap.(!i) <- entry;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if entry_lt heap.(!i) heap.(parent) then begin
      let tmp = heap.(parent) in
      heap.(parent) <- heap.(!i);
      heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let heap = t.heap in
    let top = heap.(0) in
    t.size <- t.size - 1;
    heap.(0) <- heap.(t.size);
    heap.(t.size) <- dummy;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && entry_lt heap.(l) heap.(!smallest) then smallest := l;
      if r < t.size && entry_lt heap.(r) heap.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = heap.(!smallest) in
        heap.(!smallest) <- heap.(!i);
        heap.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    Some top
  end

let schedule_at t ~time thunk =
  let time = Float.max time t.clock in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push t { time; seq; thunk }

let schedule t ~delay thunk =
  schedule_at t ~time:(t.clock +. Float.max 0.0 delay) thunk

let is_empty t = t.size = 0

let pending t = t.size

let step t =
  match pop t with
  | None -> false
  | Some { time; thunk; seq = _ } ->
    t.clock <- time;
    (match t.on_step with None -> () | Some hook -> hook ());
    thunk ();
    true

let run ?max_events t =
  let limit = Option.value max_events ~default:max_int in
  let rec go n = if n >= limit then n else if step t then go (n + 1) else n in
  go 0

let run_until t ~time =
  let rec go n =
    match (if t.size > 0 then Some t.heap.(0) else None) with
    | Some head when head.time <= time ->
      ignore (step t);
      go (n + 1)
    | Some _ | None ->
      t.clock <- Float.max t.clock time;
      n
  in
  go 0
