(* splitmix64: fast, well distributed, and trivially splittable. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling: [x mod bound] over the raw 62-bit draw is biased
     whenever 2^62 is not a multiple of [bound], so the tail of the draw
     range is rejected and redrawn. With max_int = 2^62 - 1 the tail size is
     2^62 mod bound = (max_int mod bound + 1) mod bound, i.e. fewer than
     [bound] values — the retry probability is negligible for any realistic
     bound. *)
  let tail = ((max_int mod bound) + 1) mod bound in
  let cutoff = max_int - tail in
  let rec draw () =
    (* Keep 62 bits so the value always fits OCaml's 63-bit int. *)
    let x = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
    if x <= cutoff then x mod bound else draw ()
  in
  draw ()

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  (* 53 random bits scaled into [0, 1). *)
  x /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let log_normal t ~mu ~sigma =
  (* Box-Muller *)
  let u1 = max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  exp (mu +. (sigma *. z))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let sample_without_replacement t k xs =
  let arr = Array.of_list xs in
  shuffle t arr;
  let k = min k (Array.length arr) in
  Array.to_list (Array.sub arr 0 k)
