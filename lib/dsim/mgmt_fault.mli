(** Management-plane fault model (controller-side chaos).

    {!Fault} makes the {e data} plane adversarial (BGP message loss, link
    flaps, speaker restarts). This module does the same for the
    {e management} plane: the controller→agent RPCs and controller→NSDB
    writes that implement RPA deployment, plus scheduled controller
    crashes. Management-network {e partitions} are expressed through the
    Open/R out-of-band network (see
    [Switch_agent.attach_management_network]), not here — reachability is
    topology state, while this module models per-operation fates.

    Every draw comes from a dedicated seeded {!Rng} stream, so a chaos run
    is bit-reproducible: same seed, same fates, same retry schedule.

    Time is counted in {e management operations} (RPCs issued + NSDB
    writes attempted), not in simulated seconds: the deployment loop is
    synchronous from the controller's point of view, so "crash after N
    operations" is the deterministic analogue of "crash at time T". *)

type profile = {
  rpc_loss_prob : float;      (** RPC never reaches the agent. *)
  rpc_timeout_prob : float;
      (** RPC reaches the agent and is {e applied}, but the ack is lost —
          the ambiguous failure that forces idempotent retry. *)
  rpc_transient_prob : float; (** Agent answers with a retryable error. *)
  nsdb_loss_prob : float;     (** NSDB write is dropped before any replica. *)
}

val none : profile
(** The ideal management plane: every operation succeeds. *)

val flaky : profile
(** Mild chaos: a few percent of operations fail, deployments succeed
    after bounded retries. *)

val hostile : profile
(** Heavy chaos: enough failures to exhaust small retry budgets. *)

type rpc_fate =
  | Deliver
  | Lose  (** Request lost; the device applied nothing. *)
  | Time_out
      (** Applied but unacknowledged: the device now runs the new RPA,
          the controller cannot know. *)
  | Transient of string  (** Retryable agent-side error. *)

type t

val create : ?crash_after_ops:int -> seed:int -> profile -> t
(** [crash_after_ops] schedules a controller crash: once that many
    management operations have been issued, {!crashed} turns true and the
    deployment loop must stop mid-flight (to be resumed from the journal
    by a restarted controller). *)

val profile : t -> profile

val ops : t -> int
(** Management operations drawn so far (RPC fates + NSDB write fates). *)

val rpc_fate : t -> rpc_fate
(** Draws the fate of one agent RPC and advances the operation clock. *)

val nsdb_write_ok : t -> bool
(** Draws the fate of one NSDB write and advances the operation clock.
    [false] means the write was lost and should be retried. *)

val crashed : t -> bool
(** True once the scheduled crash point has been reached. *)
