(** Management-plane fault model (controller-side chaos).

    {!Fault} makes the {e data} plane adversarial (BGP message loss, link
    flaps, speaker restarts). This module does the same for the
    {e management} plane: the controller→agent RPCs and controller→NSDB
    writes that implement RPA deployment, plus scheduled controller
    crashes. Management-network {e partitions} are expressed through the
    Open/R out-of-band network (see
    [Switch_agent.attach_management_network]), not here — reachability is
    topology state, while this module models per-operation fates.

    Every draw comes from a dedicated seeded {!Rng} stream, so a chaos run
    is bit-reproducible: same seed, same fates, same retry schedule.

    Time is counted in {e management operations} (RPCs issued + NSDB
    writes attempted), not in simulated seconds: the deployment loop is
    synchronous from the controller's point of view, so "crash after N
    operations" is the deterministic analogue of "crash at time T". *)

type profile = {
  rpc_loss_prob : float;      (** RPC never reaches the agent. *)
  rpc_timeout_prob : float;
      (** RPC reaches the agent and is {e applied}, but the ack is lost —
          the ambiguous failure that forces idempotent retry. *)
  rpc_transient_prob : float; (** Agent answers with a retryable error. *)
  nsdb_loss_prob : float;     (** NSDB write is dropped before any replica. *)
}

val none : profile
(** The ideal management plane: every operation succeeds. *)

val flaky : profile
(** Mild chaos: a few percent of operations fail, deployments succeed
    after bounded retries. *)

val hostile : profile
(** Heavy chaos: enough failures to exhaust small retry budgets. *)

type rpc_fate =
  | Deliver
  | Lose  (** Request lost; the device applied nothing. *)
  | Time_out
      (** Applied but unacknowledged: the device now runs the new RPA,
          the controller cannot know. *)
  | Transient of string  (** Retryable agent-side error. *)

(** {1 High-availability chaos}

    The HA layer is driven by {e simulated time} (lease TTLs, renewal
    timers), so its fault knobs are time-based where the per-op model
    above is count-based. All HA draws come from a dedicated RNG stream:
    enabling them never perturbs the per-operation fate schedule. *)

type ha_profile = {
  leader_crash_times : float list;
      (** Virtual times at which the {e current} leader fail-stops. Each
          entry fires once, in sorted order (see {!leader_crash_due}). *)
  lease_partitions : (float * float) list;
      (** Half-open [\[start, stop)] windows during which the lease store
          is unreachable: acquires and renewals fail, standing leases keep
          expiring. *)
  renewal_delay_prob : float;
      (** Probability that a given lease renewal is delayed. *)
  renewal_delay_max_s : float;
      (** Upper bound of the uniform delay applied to a delayed renewal. *)
}

val ha_none : ha_profile
(** No HA chaos: leaders never crash, the lease store is always
    reachable, renewals are punctual. *)

type t

val create : ?crash_after_ops:int -> ?ha:ha_profile -> seed:int -> profile -> t
(** [crash_after_ops] schedules a controller crash: once that many
    management operations have been issued, {!crashed} turns true and the
    deployment loop must stop mid-flight (to be resumed from the journal
    by a restarted controller). [ha] (default {!ha_none}) adds the
    time-based HA chaos schedule. *)

val profile : t -> profile

val ops : t -> int
(** Management operations drawn so far (RPC fates + NSDB write fates). *)

val rpc_fate : t -> rpc_fate
(** Draws the fate of one agent RPC and advances the operation clock. *)

val nsdb_write_ok : t -> bool
(** Draws the fate of one NSDB write and advances the operation clock.
    [false] means the write was lost and should be retried. *)

val crashed : t -> bool
(** True once the scheduled crash point has been reached. *)

val ha_profile : t -> ha_profile

val leader_crash_due : t -> now:float -> bool
(** [leader_crash_due t ~now] consumes and reports the next scheduled
    leader crash whose time is [<= now]. Each scheduled crash fires
    exactly once; the HA driver polls this from its timer loop and
    fail-stops whichever member currently leads. *)

val lease_reachable : t -> now:float -> bool
(** False while [now] falls inside a configured lease-store partition
    window: the member cannot acquire or renew (its standing lease keeps
    aging toward expiry). *)

val renewal_delay : t -> float
(** Draws the delay (in simulated seconds, often 0) to add to the next
    lease renewal. Consumes the dedicated HA RNG stream only. *)
