let transit_share (result : Traffic.result) ~device ~total =
  if total <= 0.0 then 0.0
  else
    Option.value (Hashtbl.find_opt result.Traffic.transit device) ~default:0.0
    /. total

let funneling result ~members ~total =
  List.fold_left
    (fun acc device -> Float.max acc (transit_share result ~device ~total))
    0.0 members

let loss_fraction (result : Traffic.result) ~total =
  if total <= 0.0 then 0.0
  else (result.Traffic.dropped +. result.Traffic.looped) /. total

let blackholed_fraction (result : Traffic.result) ~total =
  if total <= 0.0 then 0.0 else result.Traffic.dropped /. total

let looped_fraction (result : Traffic.result) ~total =
  if total <= 0.0 then 0.0 else result.Traffic.looped /. total

let find_forwarding_loops ~lookup ~devices =
  (* DFS with colors; 0/absent = white, 1 = on current path, 2 = done.
     [path] holds the devices from the current one's parent back to the
     root, so hitting a gray node yields the cycle as the path segment back
     to that node. *)
  let color = Hashtbl.create 64 in
  let cycles = ref [] in
  let normalize cycle =
    (* Rotate so the smallest id leads: the same cycle found from different
       entry points is reported once. *)
    match cycle with
    | [] -> []
    | _ :: _ ->
      let smallest = List.fold_left min max_int cycle in
      let rec rotate n = function
        | d :: rest when d <> smallest && n < List.length cycle ->
          rotate (n + 1) (rest @ [ d ])
        | rotated -> rotated
      in
      rotate 0 cycle
  in
  let rec visit path device =
    match Hashtbl.find_opt color device with
    | Some 2 -> ()
    | Some 1 ->
      let rec back_to = function
        | [] -> []
        | d :: rest -> if d = device then [] else d :: back_to rest
      in
      let cycle = normalize (device :: List.rev (back_to path)) in
      if cycle <> [] && not (List.mem cycle !cycles) then
        cycles := cycle :: !cycles
    | Some _ | None ->
      Hashtbl.replace color device 1;
      (match lookup device with
       | Some (Bgp.Speaker.Entries entries) ->
         List.iter
           (fun e -> visit (device :: path) e.Bgp.Speaker.next_hop)
           entries
       | Some Bgp.Speaker.Local | None -> ());
      Hashtbl.replace color device 2
  in
  List.iter (fun d -> visit [] d) devices;
  List.rev !cycles

let max_funneling_over_timeline ~timeline ~demands ~members =
  let total = Traffic.total_demand demands in
  List.fold_left
    (fun (worst, at) (time, snapshot) ->
      let result = Traffic.route_snapshot snapshot ~demands in
      let f = funneling result ~members ~total in
      if f > worst then (f, time) else (worst, at))
    (0.0, 0.0) timeline

type loss_integral = {
  blackhole_seconds : float;
  loss_seconds : float;
  duration : float;
}

type loss_segment = {
  seg_from : float;
  seg_until : float;
  seg_blackholed : float;
  seg_lost : float;
}

let loss_segments ~initial ~timeline ~demands ~from_time ~until =
  let total = Traffic.total_demand demands in
  let fractions snapshot =
    let result = Traffic.route_snapshot snapshot ~demands in
    (blackholed_fraction result ~total, loss_fraction result ~total)
  in
  let initial_snapshot = Hashtbl.create 16 in
  List.iter
    (fun (device, state) -> Hashtbl.replace initial_snapshot device state)
    initial;
  (* Piecewise-constant decomposition: each FIB snapshot holds from its
     change instant until the next one (the initial snapshot from
     [from_time]); the last segment extends to [until]. Segments are
     clamped to the [from_time, until) window; empty ones are dropped. *)
  let rec segments snapshot start = function
    | [] -> [ (snapshot, start, until) ]
    | (time, next) :: rest -> (snapshot, start, time) :: segments next time rest
  in
  List.filter_map
    (fun (snapshot, start, stop) ->
      let seg_from = Float.max start from_time in
      let seg_until = Float.min stop until in
      if seg_until -. seg_from <= 0.0 then None
      else
        let blackholed, lost = fractions snapshot in
        Some { seg_from; seg_until; seg_blackholed = blackholed; seg_lost = lost })
    (segments initial_snapshot from_time timeline)

let loss_integrals ~initial ~timeline ~demands ~from_time ~until =
  (* Folding the clamped segments in order reproduces the pre-decomposition
     arithmetic bit for bit, so integral totals and per-segment attribution
     can never disagree. *)
  List.fold_left
    (fun acc seg ->
      let width = seg.seg_until -. seg.seg_from in
      {
        blackhole_seconds = acc.blackhole_seconds +. (seg.seg_blackholed *. width);
        loss_seconds = acc.loss_seconds +. (seg.seg_lost *. width);
        duration = acc.duration +. width;
      })
    { blackhole_seconds = 0.0; loss_seconds = 0.0; duration = 0.0 }
    (loss_segments ~initial ~timeline ~demands ~from_time ~until)

let max_link_utilization (result : Traffic.result) ~capacity =
  Hashtbl.fold
    (fun link load acc ->
      let cap = capacity link in
      if cap <= 0.0 then acc else Float.max acc (load /. cap))
    result.Traffic.link_load 0.0
