type t = (int * int * int) list

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let of_entries entries =
  let divisor =
    List.fold_left (fun acc e -> gcd acc e.Bgp.Speaker.weight) 0 entries
  in
  let divisor = max 1 divisor in
  entries
  |> List.map (fun e ->
         Bgp.Speaker.(e.next_hop, e.session, e.weight / divisor))
  |> List.sort compare

let compare = Stdlib.compare
let equal a b = compare a b = 0

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (nh, s, w) -> Format.fprintf ppf "%d.%d:%d" nh s w))
    t

module Group_set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

let distinct_count fib =
  List.fold_left
    (fun set (_, state) ->
      match state with
      | Bgp.Speaker.Local -> set
      | Bgp.Speaker.Entries entries -> Group_set.add (of_entries entries) set)
    Group_set.empty fib
  |> Group_set.cardinal

let timeline_on_device ?(initial = []) trace ~device =
  let current : (Net.Prefix.t, t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (prefix, state) ->
      match state with
      | Bgp.Speaker.Entries entries ->
        Hashtbl.replace current prefix (of_entries entries)
      | Bgp.Speaker.Local -> ())
    initial;
  let count () =
    let set =
      Hashtbl.fold (fun _ group set -> Group_set.add group set) current
        Group_set.empty
    in
    Group_set.cardinal set
  in
  List.filter_map
    (function
      | Bgp.Trace.Fib_change { time; device = d; prefix; state } when d = device
        ->
        (match state with
         | Some (Bgp.Speaker.Entries entries) ->
           Hashtbl.replace current prefix (of_entries entries)
         | Some Bgp.Speaker.Local | None -> Hashtbl.remove current prefix);
        Some (time, count ())
      | Bgp.Trace.Fib_change _ | Bgp.Trace.Message_sent _
      | Bgp.Trace.Message_dropped _ | Bgp.Trace.Speaker_restarted _
      | Bgp.Trace.Session_event _ | Bgp.Trace.Violation _ ->
        None)
    (Bgp.Trace.events trace)

let max_on_device ?(initial = []) trace ~device =
  let start = distinct_count initial in
  List.fold_left
    (fun acc (_, n) -> max acc n)
    start
    (timeline_on_device ~initial trace ~device)
