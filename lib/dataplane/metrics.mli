(** Forwarding-plane health metrics: funneling, loss, loops, utilization.

    These are the observables the paper's scenarios are judged by: the
    first/last-router problems are "one device carries (nearly) all
    traffic" (Figures 2 and 4), bad dissemination is a persistent loop
    (Figure 9), the SEV is black-holed volume (Figure 14), and TE quality is
    maximum link utilization (Figure 13). *)

val funneling :
  Traffic.result -> members:int list -> total:float -> float
(** The largest share of [total] demand transiting any single device of
    [members] (e.g. all switches of one layer). 1.0 = perfect funnel,
    [1 / length members] = perfectly balanced. 0 if no traffic crossed the
    layer. *)

val transit_share : Traffic.result -> device:int -> total:float -> float

val loss_fraction : Traffic.result -> total:float -> float
(** (dropped + looped) / total. *)

val blackholed_fraction : Traffic.result -> total:float -> float
(** dropped / total. *)

val looped_fraction : Traffic.result -> total:float -> float

val find_forwarding_loops :
  lookup:(int -> Bgp.Speaker.fib_state option) -> devices:int list -> int list list
(** Cycles in the forwarding graph induced by [lookup], each reported once
    as the list of devices on the cycle. Empty = loop-free. *)

val max_funneling_over_timeline :
  timeline:(float * (int, Bgp.Speaker.fib_state) Hashtbl.t) list ->
  demands:(int * float) list ->
  members:int list ->
  float * float
(** Routes the demands over every transient FIB snapshot and returns
    [(worst_funneling, time_of_worst)] — the paper's transient-state
    exposure for Figures 2, 4 and 10. Returns [(0., 0.)] on an empty
    timeline. *)

val max_link_utilization :
  Traffic.result -> capacity:(int * int -> float) -> float
(** Max over directed links of load / capacity. *)

(** Time-integrated data-plane loss over a FIB timeline. *)
type loss_integral = {
  blackhole_seconds : float;
      (** integral of the black-holed demand fraction: "one blackhole-second"
          = all demand black-holed for one simulated second *)
  loss_seconds : float;
      (** same integral for dropped + looped demand (loss_fraction) *)
  duration : float;  (** width of the integration window actually covered *)
}

(** One piecewise-constant piece of the loss integral: the FIB snapshot in
    force over [[seg_from, seg_until)] black-holed / lost these demand
    fractions. *)
type loss_segment = {
  seg_from : float;
  seg_until : float;
  seg_blackholed : float;
  seg_lost : float;
}

val loss_segments :
  initial:(int * Bgp.Speaker.fib_state) list ->
  timeline:(float * (int, Bgp.Speaker.fib_state) Hashtbl.t) list ->
  demands:(int * float) list ->
  from_time:float ->
  until:float ->
  loss_segment list
(** The decomposition {!loss_integrals} integrates: segments clamped to
    [[from_time, until)], zero-width ones dropped, in timeline order.
    Summing [seg_blackholed x width] in order reproduces
    [blackhole_seconds] bit for bit — the causal blackhole attribution
    ({!Obs.Causal.attribute}) relies on this to account for 100% of the
    integral. *)

val loss_integrals :
  initial:(int * Bgp.Speaker.fib_state) list ->
  timeline:(float * (int, Bgp.Speaker.fib_state) Hashtbl.t) list ->
  demands:(int * float) list ->
  from_time:float ->
  until:float ->
  loss_integral
(** Routes [demands] over every piecewise-constant segment of the FIB
    timeline (as produced by {!Bgp.Trace.fib_timeline}, with [initial] the
    snapshot in force at [from_time]) and integrates the black-holed and
    lost fractions over [[from_time, until)]. This is the paper-style
    "data-plane loss during convergence" observable: GR on/off runs at
    identical seeds are compared by their blackhole-seconds. *)
