open Centralium

type case = {
  case_name : string;
  expect : Diagnostic.code;
  findings : unit -> Diagnostic.t list;
}

let asn = Net.Asn.of_int
let community = Net.Community.make
let p4 = Net.Prefix.v4

let ps_rpa statements =
  Rpa.make ~path_selection:[ Path_selection.make statements ] ()

let path_set ?min_next_hop name sg = Path_selection.path_set ?min_next_hop ~name sg

(* A three-layer line topology (EB 0 — FA 1 — FSW 2) for the plan-level
   cases; the Section 5.3.2 install rule requires FSW before FA when
   routes originate at EB. *)
let line_graph () =
  let g = Topology.Graph.create () in
  List.iter
    (fun (id, name, layer) ->
      Topology.Graph.add_node g (Topology.Node.make ~id ~name ~layer ()))
    [
      (0, "eb0", Topology.Node.Eb);
      (1, "fa1", Topology.Node.Fa);
      (2, "fsw2", Topology.Node.Fsw);
    ];
  Topology.Graph.add_link g 0 1;
  Topology.Graph.add_link g 1 2;
  g

let benign_rpa () =
  ps_rpa
    [
      Path_selection.statement ~name:"steer"
        ~path_sets:[ path_set "via-upstream" (Signature.make ~neighbor_asns:[ asn 64512 ] ()) ]
        (Destination.Tagged (community 65000 1));
    ]

let plan ?(name = "corpus") ~rpas ~phases () =
  {
    Controller.plan_name = name;
    rpas;
    phases;
    pre_checks = [];
    post_checks = [];
  }

let check_plan_case ~rpas ~phases () =
  Lint.check_plan (line_graph ()) (plan ~rpas ~phases ())

let cases =
  [
    {
      case_name = "empty-signature-regex-vs-neighbor";
      expect = Diagnostic.Empty_signature;
      findings =
        (fun () ->
          (* regex anchors the first hop at 100; neighbor constraint says
             the first hop is 200 — the conjunction matches nothing *)
          Lint.check_rpa
            (ps_rpa
               [
                 Path_selection.statement ~name:"contradiction"
                   ~path_sets:
                     [
                       path_set "impossible"
                         (Signature.make ~as_path_regex:"^100"
                            ~neighbor_asns:[ asn 200 ] ());
                     ]
                   (Destination.Tagged (community 65000 1));
               ]));
    };
    {
      case_name = "empty-signature-community-contradiction";
      expect = Diagnostic.Empty_signature;
      findings =
        (fun () ->
          Lint.check_rpa
            (ps_rpa
               [
                 Path_selection.statement ~name:"contradiction"
                   ~path_sets:
                     [
                       path_set "impossible"
                         (Signature.make
                            ~communities:[ community 100 1 ]
                            ~none_of:[ community 100 1 ] ());
                     ]
                   (Destination.Tagged (community 65000 1));
               ]));
    };
    {
      case_name = "empty-signature-no-neighbors";
      expect = Diagnostic.Empty_signature;
      findings =
        (fun () ->
          Lint.check_rpa
            (ps_rpa
               [
                 Path_selection.statement ~name:"orphan"
                   ~path_sets:
                     [ path_set "nobody" (Signature.make ~neighbor_asns:[] ()) ]
                   (Destination.Tagged (community 65000 1));
               ]));
    };
    {
      case_name = "signature-overlap-same-destination";
      expect = Diagnostic.Signature_overlap;
      findings =
        (fun () ->
          (* two statements steer the same tagged destination and their
             path sets share paths through ASN 150 *)
          Lint.check_rpa
            (ps_rpa
               [
                 Path_selection.statement ~name:"first"
                   ~path_sets:
                     [ path_set "low" (Signature.make ~as_path_regex:"^[100-200]" ()) ]
                   (Destination.Tagged (community 65000 1));
                 Path_selection.statement ~name:"second"
                   ~path_sets:
                     [ path_set "high" (Signature.make ~as_path_regex:"^[150-300]" ()) ]
                   (Destination.Tagged (community 65000 1));
               ]));
    };
    {
      case_name = "shadowed-path-set";
      expect = Diagnostic.Shadowed_statement;
      findings =
        (fun () ->
          (* the any-path set is first in priority with the same threshold,
             so the specific set below it can never fire *)
          Lint.check_rpa
            (ps_rpa
               [
                 Path_selection.statement ~name:"steer"
                   ~path_sets:
                     [
                       path_set "anything" Signature.any;
                       path_set "specific"
                         (Signature.make ~as_path_regex:"^100" ());
                     ]
                   (Destination.Tagged (community 65000 1));
               ]));
    };
    {
      case_name = "prefix-shadowed-across-statements";
      expect = Diagnostic.Prefix_shadowed;
      findings =
        (fun () ->
          (* 10.1.0.0/16 is inside 10.0.0.0/8: the statements' destination
             domains overlap even though their path sets are disjoint *)
          Lint.check_rpa
            (ps_rpa
               [
                 Path_selection.statement ~name:"aggregate"
                   ~path_sets:
                     [ path_set "via-100" (Signature.make ~neighbor_asns:[ asn 100 ] ()) ]
                   (Destination.Prefixes [ p4 10 0 0 0 8 ]);
                 Path_selection.statement ~name:"specific"
                   ~path_sets:
                     [ path_set "via-200" (Signature.make ~neighbor_asns:[ asn 200 ] ()) ]
                   (Destination.Prefixes [ p4 10 1 0 0 16 ]);
               ]));
    };
    {
      case_name = "filter-blackhole-steered-prefix";
      expect = Diagnostic.Filter_blackhole;
      findings =
        (fun () ->
          (* the allow list admits only 192.168.0.0/16, so the steered
             10.0.0.0/8 can never be exchanged with any peer *)
          Lint.check_rpa
            (Rpa.make
               ~path_selection:
                 [
                   Path_selection.make
                     [
                       Path_selection.statement ~name:"steer"
                         ~path_sets:[ path_set "any" Signature.any ]
                         (Destination.Prefixes [ p4 10 0 0 0 8 ]);
                     ];
                 ]
               ~route_filter:
                 [
                   Route_filter.make
                     [
                       Route_filter.statement ~name:"boundary"
                         ~ingress:
                           (Route_filter.Allow_list
                              [ Route_filter.prefix_rule (p4 192 168 0 0 16) ])
                         Route_filter.any_peer;
                     ];
                 ]
               ()));
    };
    {
      case_name = "unsafe-phase-order";
      expect = Diagnostic.Unsafe_phase_order;
      findings =
        (fun () ->
          (* install must reach FSW (furthest from EB) before FA *)
          check_plan_case
            ~rpas:[ (1, benign_rpa ()); (2, benign_rpa ()) ]
            ~phases:[ [ 1 ]; [ 2 ] ] ());
    };
    {
      case_name = "duplicate-target";
      expect = Diagnostic.Duplicate_target;
      findings =
        (fun () ->
          check_plan_case
            ~rpas:[ (1, benign_rpa ()); (2, benign_rpa ()) ]
            ~phases:[ [ 2 ]; [ 1; 2 ] ] ());
    };
    {
      case_name = "plan-coverage-mismatch";
      expect = Diagnostic.Plan_coverage;
      findings =
        (fun () ->
          check_plan_case
            ~rpas:[ (1, benign_rpa ()); (2, benign_rpa ()) ]
            ~phases:[ [ 2 ] ] ());
    };
    {
      case_name = "least-favorable-off";
      expect = Diagnostic.Least_favorable_off;
      findings =
        (fun () ->
          Lint.check_rpa
            (Rpa.make ~advertise_least_favorable:false
               ~path_selection:
                 [
                   Path_selection.make
                     [
                       Path_selection.statement ~name:"steer"
                         ~path_sets:[ path_set "any" Signature.any ]
                         (Destination.Tagged (community 65000 1));
                     ];
                 ]
               ()));
    };
    {
      case_name = "community-collision";
      expect = Diagnostic.Community_collision;
      findings =
        (fun () ->
          Lint.check_rpa
            (Rpa.make
               ~route_attribute:
                 [
                   Route_attribute.make
                     [
                       Route_attribute.statement ~name:"weights-a"
                         (Destination.Tagged (community 65000 7))
                         [
                           Route_attribute.next_hop_weight Signature.any
                             ~weight:3;
                         ];
                       Route_attribute.statement ~name:"weights-b"
                         (Destination.Tagged (community 65000 7))
                         [
                           Route_attribute.next_hop_weight Signature.any
                             ~weight:1;
                         ];
                     ];
                 ]
               ()));
    };
    {
      case_name = "merge-conflict";
      expect = Diagnostic.Merge_conflict;
      findings =
        (fun () ->
          (* two path-selection blocks with the same name but different
             statements — e.g. two applications generating under one name *)
          Lint.check_rpa
            (Rpa.make
               ~path_selection:
                 [
                   Path_selection.make ~name:"steer"
                     [
                       Path_selection.statement ~name:"a"
                         ~path_sets:[ path_set "any" Signature.any ]
                         (Destination.Tagged (community 65000 1));
                     ];
                   Path_selection.make ~name:"steer"
                     [
                       Path_selection.statement ~name:"b"
                         ~path_sets:[ path_set "any" Signature.any ]
                         (Destination.Tagged (community 65000 2));
                     ];
                 ]
               ()));
    };
  ]

(* ---------------- Symbolic phase-verifier plants ----------------

   Defects no syntactic lint can see: the RPAs are individually
   well-formed, and only the symbolic forwarding model over the planned
   deployment states exposes them. *)

(* Diamond: EB 0 over peered FA 1/2, optionally with FSW 3 fed by both
   FAs. Default origins put the tagged v4 default route at EB 0. *)
let diamond_graph ~feeder () =
  let g = Topology.Graph.create () in
  List.iter
    (fun (id, name, layer) ->
      Topology.Graph.add_node g (Topology.Node.make ~id ~name ~layer ()))
    ([
       (0, "eb0", Topology.Node.Eb);
       (1, "fa1", Topology.Node.Fa);
       (2, "fa2", Topology.Node.Fa);
     ]
    @ if feeder then [ (3, "fsw3", Topology.Node.Fsw) ] else []);
  Topology.Graph.add_link g 0 1;
  Topology.Graph.add_link g 0 2;
  Topology.Graph.add_link g 1 2;
  if feeder then begin
    Topology.Graph.add_link g 1 3;
    Topology.Graph.add_link g 2 3
  end;
  g

(* Clos slice without the FA peering: EB 0 over FA 1/2, FSW 3 dual-homed
   to both FAs. *)
let slice_graph () =
  let g = Topology.Graph.create () in
  List.iter
    (fun (id, name, layer) ->
      Topology.Graph.add_node g (Topology.Node.make ~id ~name ~layer ()))
    [
      (0, "eb0", Topology.Node.Eb);
      (1, "fa1", Topology.Node.Fa);
      (2, "fa2", Topology.Node.Fa);
      (3, "fsw3", Topology.Node.Fsw);
    ];
  Topology.Graph.add_link g 0 1;
  Topology.Graph.add_link g 0 2;
  Topology.Graph.add_link g 1 3;
  Topology.Graph.add_link g 2 3;
  g

(* Each FA steers the default route through the other while advertising
   its most preferred path (the Figure 9 ablation): once both are live
   they chase each other's advertisements forever, and every other
   propagation round is a forwarding loop. *)
let mutual_steer_rpa ~via =
  Rpa.make ~advertise_least_favorable:false
    ~path_selection:
      [
        Path_selection.make
          [
            Path_selection.statement ~name:"steer-via-peer"
              ~path_sets:
                [
                  path_set "peer"
                    (Signature.make ~neighbor_asns:[ asn via ] ());
                ]
              Destination.backbone_default;
          ];
      ]
    ()

let mnh_guard_rpa () =
  ps_rpa
    [
      Path_selection.statement ~name:"native-guard"
        ~bgp_native_min_next_hop:(Path_selection.Count 2)
        Destination.backbone_default;
    ]

let deny_default_egress_rpa () =
  Rpa.make
    ~route_filter:
      [
        Route_filter.make
          [
            Route_filter.statement ~name:"deny-default-egress"
              ~egress:
                (Route_filter.Allow_list
                   [ Route_filter.prefix_rule (p4 192 168 0 0 16) ])
              Route_filter.any_peer;
          ];
      ]
    ()

let verifier_diags graph plan_v =
  (Phase_verifier.verify graph plan_v).Phase_verifier.vr_diagnostics

let verifier_cases =
  [
    {
      case_name = "verifier-forwarding-loop-mutual-steer";
      expect = Diagnostic.Forwarding_loop_static;
      findings =
        (fun () ->
          (* fa1 steers via fa2's ASN and vice versa; the loop only exists
             once both RPAs are live, i.e. at the phase 1 boundary *)
          verifier_diags
            (diamond_graph ~feeder:false ())
            (plan ~name:"loop-plant"
               ~rpas:
                 [ (1, mutual_steer_rpa ~via:64514);
                   (2, mutual_steer_rpa ~via:64513) ]
               ~phases:[ [ 1; 2 ] ] ()));
    };
    {
      case_name = "verifier-blackhole-frontier-mnh";
      expect = Diagnostic.Blackhole_static;
      findings =
        (fun () ->
          (* fsw3 guards native selection with Count 2; fa2's egress filter
             stops advertising the default downward. The moment fa2 deploys
             ahead of its phase peer (the phase 2 frontier), fsw3 drops to
             one candidate, withdraws, and blackholes traffic that still
             has a physical path up through fa1. *)
          verifier_diags (slice_graph ())
            (plan ~name:"blackhole-plant"
               ~rpas:
                 [ (3, mnh_guard_rpa ());
                   (1, benign_rpa ());
                   (2, deny_default_egress_rpa ()) ]
               ~phases:[ [ 3 ]; [ 1; 2 ] ] ()));
    };
    {
      case_name = "verifier-reachability-loss-feeder";
      expect = Diagnostic.Reachability_loss;
      findings =
        (fun () ->
          (* fsw3 keeps a healthy-looking FIB toward both FAs, but its
             packets die in the FAs' mutual-steer loop: reachability it had
             at baseline is gone without any local symptom *)
          verifier_diags
            (diamond_graph ~feeder:true ())
            (plan ~name:"feeder-plant"
               ~rpas:
                 [ (1, mutual_steer_rpa ~via:64514);
                   (2, mutual_steer_rpa ~via:64513) ]
               ~phases:[ [ 1; 2 ] ] ()));
    };
  ]

let cases = cases @ verifier_cases

type result = {
  r_case : string;
  r_expect : Diagnostic.code;
  r_detected : bool;
  r_findings : Diagnostic.t list;
}

let run_cases cs =
  List.map
    (fun c ->
      let findings = c.findings () in
      {
        r_case = c.case_name;
        r_expect = c.expect;
        r_detected =
          List.exists (fun d -> d.Diagnostic.code = c.expect) findings;
        r_findings = findings;
      })
    cs

let run () = run_cases cases
let run_verifier () = run_cases verifier_cases
let all_detected results = List.for_all (fun r -> r.r_detected) results
