(** The static RPA analyzer (pre-deployment lint).

    Checks a deployment plan — or a bare per-device RPA — {e without
    constructing a BGP network}: every check is a decision over the plan's
    own structure, the topology graph, and the language algebra of path
    signatures. Diagnostics come back sorted by {!Diagnostic.sort}, so the
    output (human or JSON) is deterministic for a given input.

    Severity policy: findings that make a plan wrong on any network are
    errors (unmatchable signatures, overlapping steering domains,
    statically black-holed steered prefixes, unsafe phase order, duplicate
    targets, conflicting weight prescriptions); findings that are
    suspicious but can be intentional are warnings (shadowed entries,
    redundant allow rules, merge artifacts, the Figure 9
    [advertise_least_favorable] ablation). All language-level procedures
    resolve conservatively when capped, so the analyzer can miss a finding
    under adversarial state blowup but never fabricates one.

    Loading this module registers the analyzer with
    {!Centralium.Controller.set_linter}, which arms the [?lint] gate of
    [Controller.deploy*] and the lint pass of
    [Verification.standard_suite] in any binary linked against
    [analysis]. *)

val check_rpa :
  ?device:int ->
  ?positions:Centralium.Rpa_parser.located_statement list ->
  Centralium.Rpa.t ->
  Diagnostic.t list
(** Device-local checks: signature emptiness, path-set and weight-entry
    shadowing, overlapping steering domains across statements, redundant
    allow rules, filters black-holing steered prefixes, duplicate blocks
    and statements, the dissemination-rule hazard. [positions] (from
    {!Centralium.Rpa_parser.parse_located}) attaches line/column to
    diagnostics that name a statement. *)

val check_plan :
  ?origination_layer:Topology.Node.layer ->
  Topology.Graph.t ->
  Centralium.Controller.plan ->
  Diagnostic.t list
(** {!check_rpa} for every device, plus plan-level checks: phase/RPA
    coverage, devices targeted twice, and
    {!Centralium.Deployment.is_safe_order} for an [Install] rollout from
    [origination_layer] (default [Eb], the backbone origination of every
    standard-suite plan). *)

val plans_conflict :
  Centralium.Controller.plan -> Centralium.Controller.plan -> bool
(** Cross-plan conflict predicate for the admission queue: two plans
    conflict when they target a common device, steer/weight overlapping
    destination prefixes, or share a tagged destination community.
    Loading this module registers it with
    {!Centralium.Ops.set_conflict_probe}, so queues in any binary linked
    against [analysis] serialize such pairs. *)
