(** The seeded defect corpus: one deliberately broken plan or RPA per
    defect class the analyzer must catch.

    This is the analyzer's acceptance harness — [centralium lint
    --selftest] and the CI lint-smoke job both run it and fail if any
    seeded defect goes undetected. Each case builds its defective input
    from scratch (no shared mutable state), runs the analyzer, and checks
    that a diagnostic with the expected code is present. *)

type case = {
  case_name : string;
  expect : Diagnostic.code;
  findings : unit -> Diagnostic.t list;
      (** runs the analyzer over the seeded input *)
}

val cases : case list
(** Every case: the lint corpus followed by {!verifier_cases}. *)

val verifier_cases : case list
(** The symbolic phase-verifier plants — defects invisible to syntactic
    lint (a mutual-steer forwarding loop, a frontier-transient
    min-next-hop blackhole, a reachability loss behind a loop) that only
    the forwarding model over planned deployment states exposes. *)

type result = {
  r_case : string;
  r_expect : Diagnostic.code;
  r_detected : bool;
  r_findings : Diagnostic.t list;
}

val run : unit -> result list

val run_verifier : unit -> result list
(** {!run} restricted to {!verifier_cases} ([centralium verify-plan
    --selftest]). *)

val all_detected : result list -> bool
