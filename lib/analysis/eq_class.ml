open Centralium
module Prefix = Net.Prefix

type t = {
  cls_prefix : Prefix.t;
  cls_origins : (int * Net.Attr.t) list;
}

let classes origins =
  let by_prefix = Hashtbl.create 16 in
  List.iter
    (fun (device, prefix, attr) ->
      let existing =
        match Hashtbl.find_opt by_prefix prefix with
        | Some os -> os
        | None -> []
      in
      Hashtbl.replace by_prefix prefix ((device, attr) :: existing))
    origins;
  Hashtbl.fold
    (fun prefix os acc ->
      {
        cls_prefix = prefix;
        cls_origins =
          List.sort (fun (a, _) (b, _) -> Int.compare a b) os;
      }
      :: acc)
    by_prefix []
  |> List.sort (fun a b -> Prefix.compare a.cls_prefix b.cls_prefix)

let communities cls =
  List.fold_left
    (fun acc (_, attr) ->
      Net.Community.Set.union acc attr.Net.Attr.communities)
    Net.Community.Set.empty cls.cls_origins

(* Every destination selector of the RPA, split into tagged communities
   and explicit prefixes. *)
let rpa_selectors rpa =
  let fold_dest (prefixes, tags) = function
    | Destination.Prefixes ps -> (List.rev_append ps prefixes, tags)
    | Destination.Tagged c -> (prefixes, c :: tags)
  in
  let acc =
    List.fold_left
      (fun acc block ->
        List.fold_left
          (fun acc st -> fold_dest acc st.Path_selection.destination)
          acc block.Path_selection.statements)
      ([], []) rpa.Rpa.path_selection
  in
  List.fold_left
    (fun acc block ->
      List.fold_left
        (fun acc st -> fold_dest acc st.Route_attribute.destination)
        acc block.Route_attribute.statements)
    acc rpa.Rpa.route_attribute

(* An allow-list filter constrains every prefix its peer signature sees —
   omission blocks, so mere presence touches every class. [Allow_all]
   statements restrict nothing. *)
let has_restrictive_filter rpa =
  List.exists
    (fun rf ->
      List.exists
        (fun st ->
          st.Route_filter.ingress <> Route_filter.Allow_all
          || st.Route_filter.egress <> Route_filter.Allow_all)
        rf.Route_filter.statements)
    rpa.Rpa.route_filter

let rpa_touches rpa cls =
  has_restrictive_filter rpa
  ||
  let prefixes, tags = rpa_selectors rpa in
  let comms = communities cls in
  List.exists (fun c -> Net.Community.Set.mem c comms) tags
  (* Destination.matches tests [contains selector route]: a selector for a
     more specific prefix never matches the broader route, so only
     selectors covering the class touch it. *)
  || List.exists (fun p -> Prefix.contains p cls.cls_prefix) prefixes

let touched_by clss ~rpas =
  (* Delta-net: index the class prefixes in a trie, then map each policy
     selector to the classes it overlaps instead of scanning class-by-rule.
     Tagged selectors and restrictive filters fall back to community /
     all-class marking. *)
  let trie = Prefix_trie.create () in
  List.iteri (fun i cls -> Prefix_trie.add trie cls.cls_prefix i) clss;
  let arr = Array.of_list clss in
  let touched = Array.make (Array.length arr) false in
  let mark i = touched.(i) <- true in
  List.iter
    (fun (_, rpa) ->
      if has_restrictive_filter rpa then
        Array.iteri (fun i _ -> mark i) touched
      else begin
        let prefixes, tags = rpa_selectors rpa in
        List.iter
          (fun p ->
            List.iter (fun (_, i) -> mark i) (Prefix_trie.covered_by trie p))
          prefixes;
        if tags <> [] then
          Array.iteri
            (fun i cls ->
              let comms = communities cls in
              if List.exists (fun c -> Net.Community.Set.mem c comms) tags
              then mark i)
            arr
      end)
    rpas;
  List.filteri (fun i _ -> touched.(i)) clss
