(** Typed, severity-ranked findings emitted by the static RPA analyzer.

    Diagnostics are pure data: a stable machine-readable code, a severity,
    an optional location (device / RPA block / statement / source position),
    and a human message. They carry no closures and no references into the
    analyzed plan, so they serialize deterministically — {!to_json} over a
    {!sort}ed list is byte-identical across runs for the same input. *)

type severity = Error | Warning | Info

type code =
  | Empty_signature  (** a path signature that can match no route *)
  | Signature_overlap
      (** two statements claim overlapping (prefix-set x path-set) domains,
          violating RPA orthogonality *)
  | Shadowed_statement
      (** an earlier entry makes a later one unreachable (priority path-set
          lists, first-match weight lists) *)
  | Prefix_shadowed
      (** a destination prefix or allow rule is subsumed by another *)
  | Filter_blackhole
      (** a route filter statically drops a prefix another statement
          steers *)
  | Unsafe_phase_order  (** violates {!Centralium.Deployment.is_safe_order} *)
  | Duplicate_target  (** a device appears in more than one phase *)
  | Plan_coverage  (** phases and per-device RPAs disagree on the targets *)
  | Merge_conflict
      (** same-name RPA blocks or statements with different content *)
  | Least_favorable_off
      (** [advertise_least_favorable = false]: the Figure 9 loop hazard *)
  | Community_collision
      (** two route-attribute statements claim the same community or
          overlapping prefixes *)
  | Forwarding_loop_static
      (** the symbolic phase verifier found a FIB cycle in a deployment
          state (a phase boundary, a mixed frontier, or a propagation
          round within one) *)
  | Blackhole_static
      (** the verifier found a device with a surviving physical path to an
          origin of a destination class but no forwarding entry for it *)
  | Reachability_loss
      (** a device that delivered a destination class in the baseline
          state no longer does in a later deployment state, although its
          own forwarding entry survives — the walk dies downstream *)
  | Analysis_capped
      (** a language-level decision procedure hit its state budget and
          resolved conservatively, suppressing a potential finding *)

val code_to_string : code -> string
(** Stable kebab-case slug, e.g. ["empty-signature"]. *)

val severity_to_string : severity -> string

type t = {
  code : code;
  severity : severity;
  device : int option;
  rpa : string option;  (** name of the RPA block *)
  statement : string option;
  line : int option;
  col : int option;  (** from {!Centralium.Rpa_parser.parse_located} *)
  message : string;
}

val make :
  ?device:int ->
  ?rpa:string ->
  ?statement:string ->
  ?pos:Centralium.Rpa_parser.pos ->
  severity ->
  code ->
  string ->
  t

val compare : t -> t -> int
(** Total order: severity (errors first), then code, device, rpa,
    statement, message. Used by {!sort} to make output deterministic. *)

val sort : t list -> t list

val has_errors : t list -> bool

val to_human : t -> string
(** One line: ["error[empty-signature] device 3 rpa r st s: message"]. *)

val to_json : t -> Obs.Json.t
(** Object with fields (in this order): [code], [severity], [device],
    [rpa], [statement], [line], [col], [message]. Absent locations render
    as [null] so the shape is fixed. *)

val report_json : t list -> Obs.Json.t
(** [{ "errors": n, "warnings": n, "diagnostics": [...] }] over the sorted
    list. *)
