module Prefix = Net.Prefix

type 'a node = {
  prefix : Prefix.t;
  mutable values : 'a list;  (* insertion order *)
  mutable lo : 'a node option;  (* 0-bit child *)
  mutable hi : 'a node option;  (* 1-bit child *)
}

type 'a t = { mutable v4 : 'a node option; mutable v6 : 'a node option }

let create () = { v4 = None; v6 = None }

let fresh prefix = { prefix; values = []; lo = None; hi = None }

let root t p =
  match Prefix.family p with
  | Prefix.V4 ->
    (match t.v4 with
     | Some r -> r
     | None ->
       let r = fresh Prefix.default_v4 in
       t.v4 <- Some r;
       r)
  | Prefix.V6 ->
    (match t.v6 with
     | Some r -> r
     | None ->
       let r = fresh Prefix.default_v6 in
       t.v6 <- Some r;
       r)

let root_opt t p =
  match Prefix.family p with Prefix.V4 -> t.v4 | Prefix.V6 -> t.v6

(* Descends one bit at a time, materializing the chain of intermediate
   prefixes; every inserted prefix therefore has all its ancestors as
   nodes, which keeps the query walks trivial. *)
let add t p v =
  let rec go node =
    if Prefix.equal node.prefix p then node.values <- node.values @ [ v ]
    else begin
      let zero, one = Prefix.subdivide node.prefix in
      if Prefix.contains zero p then begin
        (match node.lo with None -> node.lo <- Some (fresh zero) | Some _ -> ());
        go (Option.get node.lo)
      end
      else begin
        assert (Prefix.contains one p);
        (match node.hi with None -> node.hi <- Some (fresh one) | Some _ -> ());
        go (Option.get node.hi)
      end
    end
  in
  go (root t p)

let entries node = List.map (fun v -> (node.prefix, v)) node.values

let covering t p =
  match root_opt t p with
  | None -> []
  | Some r ->
    let rec go node acc =
      let acc = acc @ entries node in
      if Prefix.equal node.prefix p then acc
      else
        let zero, _ = Prefix.subdivide node.prefix in
        let child = if Prefix.contains zero p then node.lo else node.hi in
        (match child with
         | Some c when Prefix.contains c.prefix p -> go c acc
         | Some _ | None -> acc)
    in
    go r []

let covered_by t p =
  match root_opt t p with
  | None -> []
  | Some r ->
    (* Walk to the node at exactly [p]; the subtree below it holds every
       contained entry (ancestors are always materialized). *)
    let rec descend node =
      if Prefix.equal node.prefix p then Some node
      else
        let zero, _ = Prefix.subdivide node.prefix in
        let child = if Prefix.contains zero p then node.lo else node.hi in
        match child with
        | Some c when Prefix.contains c.prefix p -> descend c
        | Some _ | None -> None
    in
    let rec collect node acc =
      let acc = acc @ entries node in
      let acc = match node.lo with Some c -> collect c acc | None -> acc in
      match node.hi with Some c -> collect c acc | None -> acc
    in
    (match descend r with None -> [] | Some n -> collect n [])

let longest_match t p =
  match root_opt t p with
  | None -> None
  | Some r ->
    (* Deepest node on the path to [p] holding at least one value; the
       family root (/0 or ::/0) participates like any other node, so a
       default route is matched when nothing more specific covers [p]. *)
    let rec go node best =
      let best = if node.values <> [] then Some node else best in
      if Prefix.equal node.prefix p then best
      else
        let zero, _ = Prefix.subdivide node.prefix in
        let child = if Prefix.contains zero p then node.lo else node.hi in
        (match child with
         | Some c when Prefix.contains c.prefix p -> go c best
         | Some _ | None -> best)
    in
    Option.map (fun n -> (n.prefix, n.values)) (go r None)

let overlapping t p =
  let above =
    List.filter (fun (q, _) -> not (Prefix.equal q p)) (covering t p)
  in
  above @ covered_by t p
