type severity = Error | Warning | Info

type code =
  | Empty_signature
  | Signature_overlap
  | Shadowed_statement
  | Prefix_shadowed
  | Filter_blackhole
  | Unsafe_phase_order
  | Duplicate_target
  | Plan_coverage
  | Merge_conflict
  | Least_favorable_off
  | Community_collision
  | Forwarding_loop_static
  | Blackhole_static
  | Reachability_loss
  | Analysis_capped

let code_to_string = function
  | Empty_signature -> "empty-signature"
  | Signature_overlap -> "signature-overlap"
  | Shadowed_statement -> "shadowed-statement"
  | Prefix_shadowed -> "prefix-shadowed"
  | Filter_blackhole -> "filter-blackhole"
  | Unsafe_phase_order -> "unsafe-phase-order"
  | Duplicate_target -> "duplicate-target"
  | Plan_coverage -> "plan-coverage"
  | Merge_conflict -> "merge-conflict"
  | Least_favorable_off -> "least-favorable-off"
  | Community_collision -> "community-collision"
  | Forwarding_loop_static -> "forwarding-loop"
  | Blackhole_static -> "blackhole"
  | Reachability_loss -> "reachability-loss"
  | Analysis_capped -> "analysis-capped"

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

(* Fixed rank so the sort order is stable even if constructors move. *)
let code_rank = function
  | Empty_signature -> 0
  | Signature_overlap -> 1
  | Shadowed_statement -> 2
  | Prefix_shadowed -> 3
  | Filter_blackhole -> 4
  | Unsafe_phase_order -> 5
  | Duplicate_target -> 6
  | Plan_coverage -> 7
  | Merge_conflict -> 8
  | Least_favorable_off -> 9
  | Community_collision -> 10
  | Forwarding_loop_static -> 11
  | Blackhole_static -> 12
  | Reachability_loss -> 13
  | Analysis_capped -> 14

type t = {
  code : code;
  severity : severity;
  device : int option;
  rpa : string option;
  statement : string option;
  line : int option;
  col : int option;
  message : string;
}

let make ?device ?rpa ?statement ?pos severity code message =
  let line, col =
    match pos with
    | None -> (None, None)
    | Some p -> (Some p.Centralium.Rpa_parser.line, Some p.Centralium.Rpa_parser.col)
  in
  { code; severity; device; rpa; statement; line; col; message }

let opt_compare cmp a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> cmp x y

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = Int.compare (code_rank a.code) (code_rank b.code) in
    if c <> 0 then c
    else
      let c = opt_compare Int.compare a.device b.device in
      if c <> 0 then c
      else
        let c = opt_compare String.compare a.rpa b.rpa in
        if c <> 0 then c
        else
          let c = opt_compare String.compare a.statement b.statement in
          if c <> 0 then c else String.compare a.message b.message

let sort diags = List.sort_uniq compare diags

let has_errors diags = List.exists (fun d -> d.severity = Error) diags

let to_human d =
  let where =
    List.filter_map
      (fun x -> x)
      [
        Option.map (Printf.sprintf "device %d") d.device;
        Option.map (Printf.sprintf "rpa %s") d.rpa;
        Option.map (Printf.sprintf "statement %s") d.statement;
        (match (d.line, d.col) with
         | Some l, Some c -> Some (Printf.sprintf "line %d:%d" l c)
         | _ -> None);
      ]
  in
  let loc = match where with [] -> "" | ws -> " " ^ String.concat " " ws in
  Printf.sprintf "%s[%s]%s: %s"
    (severity_to_string d.severity)
    (code_to_string d.code) loc d.message

let json_opt_int = function None -> Obs.Json.Null | Some n -> Obs.Json.Int n

let json_opt_str = function
  | None -> Obs.Json.Null
  | Some s -> Obs.Json.String s

let to_json d =
  Obs.Json.Obj
    [
      ("code", Obs.Json.String (code_to_string d.code));
      ("severity", Obs.Json.String (severity_to_string d.severity));
      ("device", json_opt_int d.device);
      ("rpa", json_opt_str d.rpa);
      ("statement", json_opt_str d.statement);
      ("line", json_opt_int d.line);
      ("col", json_opt_int d.col);
      ("message", Obs.Json.String d.message);
    ]

let report_json diags =
  let sorted = sort diags in
  let count sev = List.length (List.filter (fun d -> d.severity = sev) sorted) in
  Obs.Json.Obj
    [
      ("errors", Obs.Json.Int (count Error));
      ("warnings", Obs.Json.Int (count Warning));
      ("diagnostics", Obs.Json.List (List.map to_json sorted));
    ]
