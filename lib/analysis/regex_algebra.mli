(** Language algebra over compiled AS-path regexes.

    The analyzer reasons about path signatures as languages of ASN
    sequences: a signature is the {e intersection} of its conjuncts — the
    AS-path regex, a first-token constraint (neighbor ASNs) and a
    last-token constraint (origin ASN). This module provides the machines
    for those conjuncts and the two decision procedures the lint checks
    need: intersection emptiness (is a signature unmatchable? do two
    signatures overlap?) and subsumption (does an earlier path set shadow a
    later one?).

    Machines are the symbolic NFAs of {!Net.Path_regex.symbolic}: labels
    are inclusive ASN ranges, so a finite set of {e representative tokens}
    (one per boundary interval of all ranges involved) suffices to explore
    the product exactly. Both procedures do a subset-construction BFS over
    the product; a state-count cap bounds the work, and hitting it resolves
    {e conservatively} — "cannot prove empty" / "cannot prove subsumed" —
    so a capped run can suppress a finding but never fabricate one. *)

type machine = Net.Path_regex.sym

val of_regex : Net.Path_regex.t -> machine

val universal : machine
(** Accepts every ASN sequence, including the empty one. *)

val never : machine
(** Accepts nothing. *)

val starts_with_any : int list -> machine
(** Sequences of length >= 1 whose first token is one of the given ASNs —
    the [neighbor_asns] conjunct. The empty list gives {!never}. *)

val ends_with : int -> machine
(** Sequences of length >= 1 whose last token is the given ASN — the
    [origin_asn] conjunct. *)

val intersection_nonempty : ?cap:int -> machine list -> bool
(** Is there an ASN sequence accepted by {e every} machine? The empty list
    is universal, hence [true]. [cap] bounds the number of product states
    explored (default 4096); hitting it returns [true] (cannot prove
    empty). *)

val subsumes : ?cap:int -> machine list -> machine list -> bool
(** [subsumes sup sub]: is the intersection language of [sub] contained in
    the intersection language of [sup]? Hitting [cap] returns [false]
    (cannot prove containment). *)

val intersection_nonempty_capped : ?cap:int -> machine list -> bool * bool
(** Like {!intersection_nonempty}, also reporting whether the state budget
    was hit: [(verdict, capped)]. A [capped = true] verdict is the
    conservative answer, so the caller can surface the suppression (an
    [analysis-capped] diagnostic) instead of staying silent. *)

val subsumes_capped : ?cap:int -> machine list -> machine list -> bool * bool
(** Like {!subsumes}, also reporting whether the state budget was hit. *)
