module P = Net.Path_regex
module Int_set = Set.Make (Int)

type machine = P.sym

let of_regex = P.symbolic

let universal =
  {
    P.sym_transitions = [| [ (Some (P.Not_in []), 0) ] |];
    sym_start = 0;
    sym_accept = 0;
  }

let never =
  { P.sym_transitions = [| []; [] |]; sym_start = 0; sym_accept = 1 }

let starts_with_any asns =
  match asns with
  | [] -> never
  | _ ->
    let ranges = List.map (fun a -> (a, a)) asns in
    {
      P.sym_transitions =
        [| [ (Some (P.In ranges), 1) ]; [ (Some (P.Not_in []), 1) ] |];
      sym_start = 0;
      sym_accept = 1;
    }

let ends_with asn =
  {
    P.sym_transitions =
      [| [ (Some (P.Not_in []), 0); (Some (P.In [ (asn, asn) ]), 1) ]; [] |];
    sym_start = 0;
    sym_accept = 1;
  }

(* ---------------- representative tokens ----------------

   Every transition label is a union (or complement of a union) of
   inclusive ranges, so the token space partitions into intervals on which
   every label in play is constant. One probe token per interval explores
   the product exactly: breakpoints are each range's [lo] and [hi + 1],
   plus 0 so the partition covers the whole space. *)

let representatives machines =
  let add acc (lo, hi) = (lo :: (hi + 1) :: acc) in
  let of_label acc = function P.In rs | P.Not_in rs -> List.fold_left add acc rs in
  let breakpoints =
    List.fold_left
      (fun acc (m : machine) ->
        Array.fold_left
          (fun acc edges ->
            List.fold_left
              (fun acc (lbl, _) ->
                match lbl with None -> acc | Some l -> of_label acc l)
              acc edges)
          acc m.P.sym_transitions)
      [ 0 ] machines
  in
  List.sort_uniq Int.compare (List.filter (fun b -> b >= 0) breakpoints)

(* ---------------- subset construction ---------------- *)

let eps_closure (m : machine) set =
  let rec go acc = function
    | [] -> acc
    | s :: rest ->
      let acc, rest =
        List.fold_left
          (fun (acc, rest) (lbl, dst) ->
            match lbl with
            | None when not (Int_set.mem dst acc) ->
              (Int_set.add dst acc, dst :: rest)
            | _ -> (acc, rest))
          (acc, rest) m.P.sym_transitions.(s)
      in
      go acc rest
  in
  go set (Int_set.elements set)

let step (m : machine) set token =
  let moved =
    Int_set.fold
      (fun s acc ->
        List.fold_left
          (fun acc (lbl, dst) ->
            match lbl with
            | Some l when P.label_matches l token -> Int_set.add dst acc
            | Some _ | None -> acc)
          acc m.P.sym_transitions.(s))
      set Int_set.empty
  in
  eps_closure m moved

let key sets = List.map Int_set.elements sets

let accepts (m : machine) set = Int_set.mem m.P.sym_accept set

let default_cap = 4096

(* BFS over the product of [machines]; [good] decides the verdict at each
   reachable state, [keep] prunes dead states, [on_cap] is the conservative
   answer when the visited-state budget runs out. *)
let product_search_capped ~cap ~good ~keep ~on_cap machines =
  let reps = representatives machines in
  let start = List.map (fun m -> eps_closure m (Int_set.singleton m.P.sym_start)) machines in
  let visited = Hashtbl.create 64 in
  Hashtbl.add visited (key start) ();
  let queue = Queue.create () in
  Queue.add start queue;
  let rec loop () =
    if Queue.is_empty queue then None
    else if Hashtbl.length visited >= cap then Some (on_cap, true)
    else begin
      let state = Queue.pop queue in
      if good state then Some (true, false)
      else begin
        List.iter
          (fun token ->
            let next = List.map2 (fun m s -> step m s token) machines state in
            if keep next then begin
              let k = key next in
              if not (Hashtbl.mem visited k) then begin
                Hashtbl.add visited k ();
                Queue.add next queue
              end
            end)
          reps;
        loop ()
      end
    end
  in
  (* [good] may already hold at the start state. *)
  match loop () with Some v -> v | None -> (false, false)

let intersection_nonempty_capped ?(cap = default_cap) machines =
  match machines with
  | [] -> (true, false)
  | _ ->
    product_search_capped ~cap ~on_cap:true machines
      ~good:(fun state -> List.for_all2 accepts machines state)
      ~keep:(fun state -> List.for_all (fun s -> not (Int_set.is_empty s)) state)

let intersection_nonempty ?cap machines =
  fst (intersection_nonempty_capped ?cap machines)

let subsumes_capped ?(cap = default_cap) sup sub =
  match sup with
  | [] -> (true, false) (* universal superset *)
  | _ ->
    let n_sub = List.length sub in
    let machines = sub @ sup in
    let split state =
      let rec go i acc = function
        | rest when i = 0 -> (List.rev acc, rest)
        | x :: rest -> go (i - 1) (x :: acc) rest
        | [] -> (List.rev acc, [])
      in
      go n_sub [] state
    in
    (* A counterexample is a word [sub] accepts but [sup] does not. *)
    let counterexample, capped =
      product_search_capped ~cap ~on_cap:true machines
        ~good:(fun state ->
          let sub_part, sup_part = split state in
          List.for_all2 accepts sub sub_part
          && not (List.for_all2 accepts sup sup_part))
        ~keep:(fun state ->
          let sub_part, _ = split state in
          List.for_all (fun s -> not (Int_set.is_empty s)) sub_part)
    in
    (not counterexample, capped)

let subsumes ?cap sup sub = fst (subsumes_capped ?cap sup sub)
