open Centralium
module Prefix = Net.Prefix
module D = Diagnostic

(* ---------------- signature algebra ----------------

   A signature's path-language is the intersection of machines: the
   AS-path regex, the neighbor-ASN first-token constraint, the origin-ASN
   last-token constraint. Community conjuncts do not constrain the path
   language; they are handled set-wise. *)

let machines sg =
  let regex =
    match Signature.as_path_regex sg with
    | Some r -> [ Regex_algebra.of_regex r ]
    | None -> []
  in
  let neighbor =
    match Signature.neighbor_asns sg with
    | Some asns ->
      [ Regex_algebra.starts_with_any (List.map Net.Asn.to_int asns) ]
    | None -> []
  in
  let origin =
    match Signature.origin_asn sg with
    | Some a -> [ Regex_algebra.ends_with (Net.Asn.to_int a) ]
    | None -> []
  in
  match regex @ neighbor @ origin with
  | [] -> [ Regex_algebra.universal ]
  | ms -> ms

(* [(reason option, capped)]: the emptiness verdict plus whether the
   product BFS hit its state budget — a capped [None] is a conservative
   "cannot prove empty", which the caller surfaces as an Info note. *)
let signature_empty_status sg =
  let contradiction =
    List.find_opt
      (fun c -> List.exists (Net.Community.equal c) (Signature.none_of sg))
      (Signature.communities sg)
  in
  match contradiction with
  | Some c ->
    ( Some
        (Printf.sprintf "community %s is both required and excluded"
           (Net.Community.to_string c)),
      false )
  | None ->
    (match Signature.neighbor_asns sg with
     | Some [] -> (Some "neighbor_asns = [] matches no path", false)
     | _ ->
       let nonempty, capped =
         Regex_algebra.intersection_nonempty_capped (machines sg)
       in
       if nonempty then (None, capped)
       else (Some "no AS-path can satisfy all path conjuncts", false))


let communities_compatible a b =
  let required = Signature.communities a @ Signature.communities b in
  let excluded = Signature.none_of a @ Signature.none_of b in
  not
    (List.exists
       (fun c -> List.exists (Net.Community.equal c) excluded)
       required)

let sig_overlap a b =
  communities_compatible a b
  && Regex_algebra.intersection_nonempty (machines a @ machines b)

(* [sig_subsumes_status a b]: every route matching [b] matches [a], plus
   whether the language procedure was capped (a capped [false] suppresses
   a shadowing finding). Sound but incomplete: community subset tests plus
   language subsumption. *)
let sig_subsumes_status a b =
  let subset eq xs ys = List.for_all (fun x -> List.exists (eq x) ys) xs in
  if
    subset Net.Community.equal (Signature.communities a)
      (Signature.communities b)
    && subset Net.Community.equal (Signature.none_of a) (Signature.none_of b)
  then Regex_algebra.subsumes_capped (machines a) (machines b)
  else (false, false)


(* ---------------- small helpers ---------------- *)

let family_bits p =
  match Prefix.family p with Prefix.V4 -> 32 | Prefix.V6 -> 128

let thr_of = function None -> Path_selection.Count 1 | Some m -> m

(* Comparable only within a unit; mixed Count/Fraction says nothing. *)
let thr_le a b =
  match (a, b) with
  | Path_selection.Count x, Path_selection.Count y -> x <= y
  | Path_selection.Fraction x, Path_selection.Fraction y -> x <= y
  | Path_selection.Count _, Path_selection.Fraction _
  | Path_selection.Fraction _, Path_selection.Count _ -> false

(* All unordered index pairs whose prefix lists overlap, via one trie pass
   over every (index, prefix) entry. *)
let prefix_overlap_pairs entries =
  let trie = Prefix_trie.create () in
  List.iter (fun (i, ps) -> List.iter (fun p -> Prefix_trie.add trie p i) ps)
    entries;
  let pairs = Hashtbl.create 16 in
  List.iter
    (fun (i, ps) ->
      List.iter
        (fun p ->
          List.iter
            (fun (_, j) ->
              if j <> i then
                let a, b = if i < j then (i, j) else (j, i) in
                Hashtbl.replace pairs (a, b) ())
            (Prefix_trie.covering trie p @ Prefix_trie.covered_by trie p))
        ps)
    entries;
  Hashtbl.fold (fun pair () acc -> pair :: acc) pairs []

let dest_prefixes = function
  | Destination.Prefixes ps -> ps
  | Destination.Tagged _ -> []

(* ---------------- check_rpa ---------------- *)

let check_rpa ?device ?(positions = []) rpa =
  let diags = ref [] in
  let pos_of kind statement =
    Option.map
      (fun ls -> ls.Rpa_parser.ls_pos)
      (Rpa_parser.find_statement positions ~kind ~statement)
  in
  let add ?rpa:rname ?kind ?statement sev code fmt =
    Printf.ksprintf
      (fun message ->
        let pos =
          match (kind, statement) with
          | Some k, Some st -> pos_of k st
          | _ -> None
        in
        diags :=
          D.make ?device ?rpa:rname ?statement ?pos sev code message :: !diags)
      fmt
  in

  (* Dissemination rule (Section 5.3.1 / Figure 9). *)
  if not rpa.Rpa.advertise_least_favorable then
    add D.Warning D.Least_favorable_off
      "advertise_least_favorable = false: withdrawing instead of \
       advertising the least favorable path can form transient routing \
       loops (Figure 9)";

  (* Duplicate / conflicting blocks and statement names. *)
  let dup_blocks blocks name_of equal what =
    List.iteri
      (fun i a ->
        List.iteri
          (fun j b ->
            if i < j && String.equal (name_of a) (name_of b) then
              if equal a b then
                add ~rpa:(name_of a) D.Warning D.Merge_conflict
                  "duplicate %s block %S (identical content; merge should \
                   have deduplicated it)"
                  what (name_of a)
              else
                add ~rpa:(name_of a) D.Warning D.Merge_conflict
                  "two %s blocks named %S with different content" what
                  (name_of a))
          blocks)
      blocks
  in
  dup_blocks rpa.Rpa.path_selection
    (fun ps -> ps.Path_selection.name)
    Path_selection.equal "path-selection";
  dup_blocks rpa.Rpa.route_attribute
    (fun ra -> ra.Route_attribute.name)
    Route_attribute.equal "route-attribute";
  dup_blocks rpa.Rpa.route_filter
    (fun rf -> rf.Route_filter.name)
    Route_filter.equal "route-filter";
  let dup_statements block_name kind names =
    List.iteri
      (fun i a ->
        List.iteri
          (fun j b ->
            if i < j && String.equal a b then
              add ~rpa:block_name ~kind ~statement:a D.Warning D.Merge_conflict
                "statement name %S used twice in block %S" a block_name)
          names)
      names
  in
  List.iter
    (fun ps ->
      dup_statements ps.Path_selection.name `Path_selection
        (List.map
           (fun st -> st.Path_selection.st_name)
           ps.Path_selection.statements))
    rpa.Rpa.path_selection;
  List.iter
    (fun ra ->
      dup_statements ra.Route_attribute.name `Route_attribute
        (List.map
           (fun st -> st.Route_attribute.st_name)
           ra.Route_attribute.statements))
    rpa.Rpa.route_attribute;
  List.iter
    (fun rf ->
      dup_statements rf.Route_filter.name `Route_filter
        (List.map (fun st -> st.Route_filter.st_name) rf.Route_filter.statements))
    rpa.Rpa.route_filter;

  (* Path selection: per-signature emptiness and priority-list shadowing. *)
  List.iter
    (fun ps ->
      let block = ps.Path_selection.name in
      List.iter
        (fun st ->
          let name = st.Path_selection.st_name in
          List.iter
            (fun set ->
              match signature_empty_status set.Path_selection.ps_signature with
              | Some reason, _ ->
                add ~rpa:block ~kind:`Path_selection ~statement:name D.Error
                  D.Empty_signature "path set %S can match no route: %s"
                  set.Path_selection.ps_name reason
              | None, true ->
                add ~rpa:block ~kind:`Path_selection ~statement:name D.Info
                  D.Analysis_capped
                  "emptiness check for path set %S hit the state budget; \
                   an empty-signature finding may be suppressed"
                  set.Path_selection.ps_name
              | None, false -> ())
            st.Path_selection.path_sets;
          List.iteri
            (fun i earlier ->
              List.iteri
                (fun j later ->
                  if i < j then
                    let subsumed, capped =
                      sig_subsumes_status earlier.Path_selection.ps_signature
                        later.Path_selection.ps_signature
                    in
                    if
                      subsumed
                      && thr_le
                           (thr_of earlier.Path_selection.ps_min_next_hop)
                           (thr_of later.Path_selection.ps_min_next_hop)
                    then
                      add ~rpa:block ~kind:`Path_selection ~statement:name
                        D.Warning D.Shadowed_statement
                        "path set %S is unreachable: every route it matches \
                         is already claimed by earlier path set %S with an \
                         equal-or-lower threshold"
                        later.Path_selection.ps_name
                        earlier.Path_selection.ps_name
                    else if capped then
                      add ~rpa:block ~kind:`Path_selection ~statement:name
                        D.Info D.Analysis_capped
                        "shadowing check of path set %S against %S hit the \
                         state budget; a shadowed-statement finding may be \
                         suppressed"
                        later.Path_selection.ps_name
                        earlier.Path_selection.ps_name)
                st.Path_selection.path_sets)
            st.Path_selection.path_sets)
        ps.Path_selection.statements)
    rpa.Rpa.path_selection;

  (* Cross-statement orthogonality over path-selection statements: two
     statements whose destination domains overlap. Prefix destinations go
     through the trie; tagged destinations pair on community equality. *)
  let ps_stmts =
    List.concat_map
      (fun ps ->
        List.map
          (fun st -> (ps.Path_selection.name, st))
          ps.Path_selection.statements)
      rpa.Rpa.path_selection
  in
  let indexed = List.mapi (fun i (block, st) -> (i, block, st)) ps_stmts in
  let arr = Array.of_list indexed in
  let sets_overlap a b =
    match (a.Path_selection.path_sets, b.Path_selection.path_sets) with
    | [], _ | _, [] -> true (* no path sets = native fallback over the
                               whole destination *)
    | pa, pb ->
      List.exists
        (fun x ->
          List.exists
            (fun y ->
              sig_overlap x.Path_selection.ps_signature
                y.Path_selection.ps_signature)
            pb)
        pa
  in
  let pair_check (i, j) describe =
    let _, block_i, st_i = arr.(i) in
    let _, block_j, st_j = arr.(j) in
    if sets_overlap st_i st_j then
      add ~rpa:block_j ~kind:`Path_selection
        ~statement:st_j.Path_selection.st_name D.Error D.Signature_overlap
        "statements %s/%s and %s/%s claim %s with overlapping path sets \
         (RPA orthogonality violation)"
        block_i st_i.Path_selection.st_name block_j
        st_j.Path_selection.st_name describe
    else
      add ~rpa:block_j ~kind:`Path_selection
        ~statement:st_j.Path_selection.st_name D.Warning D.Prefix_shadowed
        "statements %s/%s and %s/%s claim %s (path sets are disjoint)"
        block_i st_i.Path_selection.st_name block_j
        st_j.Path_selection.st_name describe
  in
  (* tagged destinations *)
  List.iter
    (fun (i, _, st_i) ->
      List.iter
        (fun (j, _, st_j) ->
          if i < j then
            match
              (st_i.Path_selection.destination, st_j.Path_selection.destination)
            with
            | Destination.Tagged a, Destination.Tagged b
              when Net.Community.equal a b ->
              pair_check (i, j)
                (Printf.sprintf "the same tagged destination %s"
                   (Net.Community.to_string a))
            | _ -> ())
        indexed)
    indexed;
  (* prefix destinations *)
  let prefix_entries =
    List.filter_map
      (fun (i, _, st) ->
        match dest_prefixes st.Path_selection.destination with
        | [] -> None
        | ps -> Some (i, ps))
      indexed
  in
  List.iter
    (fun (i, j) -> pair_check (i, j) "overlapping destination prefixes")
    (List.sort compare (prefix_overlap_pairs prefix_entries));

  (* Route attribute: emptiness, first-match shadowing, collisions. *)
  let ra_stmts =
    List.concat_map
      (fun ra ->
        List.map
          (fun st -> (ra.Route_attribute.name, st))
          ra.Route_attribute.statements)
      rpa.Rpa.route_attribute
  in
  List.iter
    (fun (block, st) ->
      let name = st.Route_attribute.st_name in
      List.iter
        (fun w ->
          match signature_empty_status w.Route_attribute.w_signature with
          | Some reason, _ ->
            add ~rpa:block ~kind:`Route_attribute ~statement:name D.Error
              D.Empty_signature "weight entry %S can match no route: %s"
              w.Route_attribute.w_name reason
          | None, true ->
            add ~rpa:block ~kind:`Route_attribute ~statement:name D.Info
              D.Analysis_capped
              "emptiness check for weight entry %S hit the state budget; \
               an empty-signature finding may be suppressed"
              w.Route_attribute.w_name
          | None, false -> ())
        st.Route_attribute.next_hop_weights;
      List.iteri
        (fun i earlier ->
          List.iteri
            (fun j later ->
              if i < j then
                let subsumed, capped =
                  sig_subsumes_status earlier.Route_attribute.w_signature
                    later.Route_attribute.w_signature
                in
                if
                  subsumed
                  && earlier.Route_attribute.weight
                     <> later.Route_attribute.weight
                then
                  add ~rpa:block ~kind:`Route_attribute ~statement:name
                    D.Warning D.Shadowed_statement
                    "weight entry %S (weight %d) is unreachable: earlier \
                     entry %S (weight %d) matches first"
                    later.Route_attribute.w_name later.Route_attribute.weight
                    earlier.Route_attribute.w_name
                    earlier.Route_attribute.weight
                else if capped then
                  add ~rpa:block ~kind:`Route_attribute ~statement:name
                    D.Info D.Analysis_capped
                    "shadowing check of weight entry %S against %S hit the \
                     state budget; a shadowed-statement finding may be \
                     suppressed"
                    later.Route_attribute.w_name
                    earlier.Route_attribute.w_name)
            st.Route_attribute.next_hop_weights)
        st.Route_attribute.next_hop_weights)
    ra_stmts;
  let ra_indexed = List.mapi (fun i (block, st) -> (i, block, st)) ra_stmts in
  let ra_arr = Array.of_list ra_indexed in
  List.iter
    (fun (i, block_i, st_i) ->
      List.iter
        (fun (j, block_j, st_j) ->
          if i < j then
            match
              ( st_i.Route_attribute.destination,
                st_j.Route_attribute.destination )
            with
            | Destination.Tagged a, Destination.Tagged b
              when Net.Community.equal a b ->
              add ~rpa:block_j ~kind:`Route_attribute
                ~statement:st_j.Route_attribute.st_name D.Error
                D.Community_collision
                "statements %s/%s and %s/%s both prescribe weights for \
                 community %s"
                block_i st_i.Route_attribute.st_name block_j
                st_j.Route_attribute.st_name (Net.Community.to_string a)
            | _ -> ())
        ra_indexed)
    ra_indexed;
  let ra_prefix_entries =
    List.filter_map
      (fun (i, _, st) ->
        match dest_prefixes st.Route_attribute.destination with
        | [] -> None
        | ps -> Some (i, ps))
      ra_indexed
  in
  List.iter
    (fun (i, j) ->
      let _, block_i, st_i = ra_arr.(i) in
      let _, block_j, st_j = ra_arr.(j) in
      add ~rpa:block_j ~kind:`Route_attribute
        ~statement:st_j.Route_attribute.st_name D.Error D.Community_collision
        "statements %s/%s and %s/%s prescribe weights for overlapping \
         destination prefixes"
        block_i st_i.Route_attribute.st_name block_j
        st_j.Route_attribute.st_name)
    (List.sort compare (prefix_overlap_pairs ra_prefix_entries));

  (* Route filter: dead or redundant allow rules, and filters that
     statically black-hole a prefix a path-selection statement steers. *)
  let steered =
    List.concat_map
      (fun (block, st) ->
        List.map
          (fun p -> (p, block, st.Path_selection.st_name))
          (dest_prefixes st.Path_selection.destination))
      ps_stmts
  in
  let window rule =
    (* effective [lo, hi] mask range of prefixes the rule can admit *)
    let bits = family_bits rule.Route_filter.covering in
    let lo =
      max
        (Option.value rule.Route_filter.min_mask_length ~default:0)
        (Prefix.mask_length rule.Route_filter.covering)
    in
    let hi = min (Option.value rule.Route_filter.max_mask_length ~default:bits) bits in
    (lo, hi)
  in
  let rule_admits_related rule p =
    (* can the rule admit p, a sub-prefix of p, or a covering of p? *)
    let lo, hi = window rule in
    if Prefix.contains rule.Route_filter.covering p then
      max lo (Prefix.mask_length p) <= hi
    else if Prefix.contains p rule.Route_filter.covering then lo <= hi
    else false
  in
  List.iter
    (fun rf ->
      let block = rf.Route_filter.name in
      List.iter
        (fun st ->
          let name = st.Route_filter.st_name in
          let restricted =
            not
              (Route_filter.peer_signature_equal st.Route_filter.peer
                 Route_filter.any_peer)
          in
          let check_filter direction filter =
            match filter with
            | Route_filter.Allow_all -> ()
            | Route_filter.Allow_list rules ->
              (* dead and subsumed rules *)
              List.iteri
                (fun j rule ->
                  let lo_j, hi_j = window rule in
                  if lo_j > hi_j then
                    add ~rpa:block ~kind:`Route_filter ~statement:name
                      D.Warning D.Prefix_shadowed
                      "%s allow rule for %s admits nothing (empty mask \
                       window %d..%d)"
                      direction
                      (Prefix.to_string rule.Route_filter.covering)
                      lo_j hi_j
                  else
                    List.iteri
                      (fun i other ->
                        let lo_i, hi_i = window other in
                        if
                          i < j
                          && Prefix.contains other.Route_filter.covering
                               rule.Route_filter.covering
                          && lo_i <= lo_j && hi_j <= hi_i
                        then
                          add ~rpa:block ~kind:`Route_filter ~statement:name
                            D.Warning D.Prefix_shadowed
                            "%s allow rule for %s is subsumed by the \
                             earlier rule for %s"
                            direction
                            (Prefix.to_string rule.Route_filter.covering)
                            (Prefix.to_string other.Route_filter.covering))
                      rules)
                rules;
              (* black-holed steered prefixes *)
              List.iter
                (fun (p, ps_block, ps_name) ->
                  if not (List.exists (fun r -> rule_admits_related r p) rules)
                  then
                    add ~rpa:block ~kind:`Route_filter ~statement:name
                      (if restricted then D.Warning else D.Error)
                      D.Filter_blackhole
                      "%s filter drops prefix %s (and all its \
                       more-specifics) steered by %s/%s%s"
                      direction (Prefix.to_string p) ps_block ps_name
                      (if restricted then " (restricted peer signature)"
                       else ""))
                steered
          in
          check_filter "ingress" st.Route_filter.ingress;
          check_filter "egress" st.Route_filter.egress)
        rf.Route_filter.statements)
    rpa.Rpa.route_filter;

  D.sort !diags

(* ---------------- check_plan ---------------- *)

module Int_set = Set.Make (Int)

let check_plan ?(origination_layer = Topology.Node.Eb) graph plan =
  let diags = ref [] in
  let add ?device sev code fmt =
    Printf.ksprintf
      (fun message -> diags := D.make ?device sev code message :: !diags)
      fmt
  in
  (* per-device checks *)
  List.iter
    (fun (device, rpa) -> diags := check_rpa ~device rpa @ !diags)
    plan.Controller.rpas;
  (* devices targeted twice across (or within) phases *)
  let flat = Deployment.flatten plan.Controller.phases in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun d ->
      if Hashtbl.mem seen d then begin
        if not (Hashtbl.find seen d) then begin
          Hashtbl.replace seen d true;
          add ~device:d D.Error D.Duplicate_target
            "device %d is targeted by more than one phase" d
        end
      end
      else Hashtbl.add seen d false)
    flat;
  (* phases and RPAs must cover the same device set *)
  let phase_set = Int_set.of_list flat in
  let rpa_set = Int_set.of_list (List.map fst plan.Controller.rpas) in
  Int_set.iter
    (fun d ->
      add ~device:d D.Error D.Plan_coverage
        "device %d has a generated RPA but appears in no phase" d)
    (Int_set.diff rpa_set phase_set);
  Int_set.iter
    (fun d ->
      add ~device:d D.Error D.Plan_coverage
        "device %d is phased but has no generated RPA" d)
    (Int_set.diff phase_set rpa_set);
  (* topology membership, then ordering safety *)
  let unknown =
    Int_set.filter
      (fun d -> Option.is_none (Topology.Graph.node_opt graph d))
      phase_set
  in
  Int_set.iter
    (fun d ->
      add ~device:d D.Error D.Plan_coverage "device %d is not in the topology"
        d)
    unknown;
  if
    Int_set.is_empty unknown
    && flat <> []
    && not
         (Deployment.is_safe_order graph ~origination_layer Deployment.Install
            plan.Controller.phases)
  then
    add D.Error D.Unsafe_phase_order
      "phase order violates the Section 5.3.2 install rule (furthest from \
       the %s origination layer first)"
      (Topology.Node.layer_to_string origination_layer);
  D.sort !diags

(* ---------------- cross-plan conflict probe ---------------- *)

let plan_devices plan =
  Int_set.of_list (List.map fst plan.Controller.rpas)

(* Every destination the plan's RPAs steer or weight: explicit prefixes
   and tagged communities, across all path-selection and route-attribute
   blocks of all devices. *)
let plan_destinations plan =
  let fold_dest (prefixes, tags) = function
    | Destination.Prefixes ps -> (List.rev_append ps prefixes, tags)
    | Destination.Tagged c -> (prefixes, c :: tags)
  in
  List.fold_left
    (fun acc (_, rpa) ->
      let acc =
        List.fold_left
          (fun acc block ->
            List.fold_left
              (fun acc st -> fold_dest acc st.Path_selection.destination)
              acc block.Path_selection.statements)
          acc rpa.Rpa.path_selection
      in
      List.fold_left
        (fun acc block ->
          List.fold_left
            (fun acc st -> fold_dest acc st.Route_attribute.destination)
            acc block.Route_attribute.statements)
        acc rpa.Rpa.route_attribute)
    ([], []) plan.Controller.rpas

let plans_conflict a b =
  (not (Int_set.is_empty (Int_set.inter (plan_devices a) (plan_devices b))))
  ||
  let pa, ta = plan_destinations a and pb, tb = plan_destinations b in
  List.exists (fun c -> List.exists (Net.Community.equal c) tb) ta
  || prefix_overlap_pairs [ (0, pa); (1, pb) ] <> []

(* Arm the controller's [?lint] and [?verify] gates and the verification
   suite's analysis passes: any binary linked against this library gets
   the analyzer and the symbolic phase verifier. *)
let () =
  Ops.set_conflict_probe plans_conflict;
  Controller.set_verifier (fun net plan ->
      Phase_verifier.findings (Phase_verifier.verify_network net plan));
  Controller.set_linter (fun graph plan ->
      List.map
        (fun d ->
          {
            Controller.lint_error = d.D.severity = D.Error;
            lint_code = D.code_to_string d.D.code;
            lint_message = D.to_human d;
          })
        (check_plan graph plan))
