open Centralium
module G = Topology.Graph
module D = Diagnostic
module Prefix = Net.Prefix
module Iset = Set.Make (Int)

type origin = {
  org_device : int;
  org_prefix : Prefix.t;
  org_attr : Net.Attr.t;
}

type violation = {
  v_code : D.code;
  v_state : string;
  v_prefix : Prefix.t;
  v_device : int;
  v_path : int list;
  v_message : string;
}

type report = {
  vr_plan : string;
  vr_classes : int;
  vr_states : int;
  vr_compiled : int;
  vr_reused : int;
  vr_rounds : int;
  vr_converged : bool;
  vr_violations : violation list;
  vr_diagnostics : D.t list;
}

let frontier_limit = 8

let default_origins graph =
  match G.layers graph with
  | [] -> []
  | first :: rest ->
    let top =
      List.fold_left
        (fun acc l ->
          if Topology.Node.layer_rank l > Topology.Node.layer_rank acc then l
          else acc)
        first rest
    in
    let attr =
      Net.Attr.make
        ~communities:
          (Net.Community.Set.singleton
             Net.Community.Well_known.backbone_default_route)
        ()
    in
    G.by_layer graph top
    |> List.map (fun n ->
           {
             org_device = n.Topology.Node.id;
             org_prefix = Prefix.default_v4;
             org_attr = attr;
           })
    |> List.sort (fun a b -> Int.compare a.org_device b.org_device)

let origins_of_network net =
  let graph = Bgp.Network.graph net in
  G.nodes graph
  |> List.concat_map (fun n ->
         let id = n.Topology.Node.id in
         Bgp.Speaker.originated (Bgp.Network.speaker net id)
         |> List.map (fun (p, a) ->
                { org_device = id; org_prefix = p; org_attr = a }))

let path_str path = String.concat " -> " (List.map string_of_int path)

(* Rotate a cycle so its smallest device comes first: the canonical form
   used to deduplicate the same loop discovered in several rounds or from
   several DFS roots. *)
let canonical_cycle cyc =
  let arr = Array.of_list cyc in
  let n = Array.length arr in
  let mi = ref 0 in
  Array.iteri (fun i x -> if x < arr.(!mi) then mi := i) arr;
  List.init n (fun i -> arr.((i + !mi) mod n))

(* All back-edge cycles of one FIB snapshot, in deterministic order (DFS
   rooted at each device in snapshot order). *)
let snapshot_cycles edges =
  let adj = Hashtbl.create 32 in
  List.iter (fun (d, nhs) -> Hashtbl.replace adj d nhs) edges;
  let color = Hashtbl.create 32 in
  let cycles = ref [] in
  let rec dfs path d =
    match Hashtbl.find_opt color d with
    | Some 2 -> ()
    | Some _ ->
      (* back edge: the cycle is the suffix of [path] down to [d] *)
      let rec take acc = function
        | [] -> acc
        | x :: rest -> if x = d then x :: acc else take (x :: acc) rest
      in
      cycles := take [] path :: !cycles
    | None ->
      Hashtbl.replace color d 1;
      List.iter
        (fun nh -> dfs (d :: path) nh)
        (Option.value ~default:[] (Hashtbl.find_opt adj d));
      Hashtbl.replace color d 2
  in
  List.iter (fun (d, _) -> dfs [] d) edges;
  List.rev !cycles

let verify ?origins ?(frontiers = true) ?(incremental = true) graph
    (plan : Controller.plan) =
  let origins =
    match origins with Some o -> o | None -> default_origins graph
  in
  let clss =
    Eq_class.classes
      (List.map (fun o -> (o.org_device, o.org_prefix, o.org_attr)) origins)
  in
  let cls_arr = Array.of_list clss in
  let n_classes = Array.length cls_arr in
  let all_devices =
    List.sort Int.compare
      (List.map (fun n -> n.Topology.Node.id) (G.nodes graph))
  in
  let viols = ref [] in
  let diags = ref [] in
  let compiled = ref 0 in
  let reused = ref 0 in
  let rounds = ref 0 in
  let states = ref 0 in
  let all_converged = ref true in
  let add_viol v =
    viols := v :: !viols;
    diags := D.make ~device:v.v_device D.Error v.v_code v.v_message :: !diags
  in
  let add_info msg = diags := D.make D.Info D.Analysis_capped msg :: !diags in
  (* One engine per device RPA, shared across every state and class that
     deploys it. *)
  let engines = Hashtbl.create 16 in
  let engine_for d =
    match Hashtbl.find_opt engines d with
    | Some e -> Some e
    | None ->
      Option.map
        (fun rpa ->
          let e = Engine.create rpa in
          Hashtbl.add engines d e;
          e)
        (List.assoc_opt d plan.Controller.rpas)
  in
  let compile deployed cls =
    let m =
      Fwd_model.compile graph
        ~engine_of:(fun d -> if Iset.mem d deployed then engine_for d else None)
        ~cls
    in
    incr compiled;
    rounds := !rounds + Fwd_model.rounds_run m;
    if not (Fwd_model.converged m) then all_converged := false;
    m
  in
  let origin_sets =
    Array.map
      (fun cls -> Iset.of_list (List.map fst cls.Eq_class.cls_origins))
      cls_arr
  in
  (* delivered(d): every forwarding branch from [d] reaches an origin of
     the class — no branch dies in a blackhole or a cycle. An entry kept
     warm through a minimum-next-hop withdraw is assumed to retain its
     pre-violation (delivering) hops. *)
  let delivered_set m =
    let memo = Hashtbl.create 64 in
    let rec go stack d =
      match Hashtbl.find_opt memo d with
      | Some v -> v
      | None ->
        let v =
          if Iset.mem d stack then false
          else
            match Fwd_model.entry m d with
            | None -> false
            | Some e ->
              if e.Fwd_model.e_origin then true
              else if e.Fwd_model.e_next_hops = [] then e.Fwd_model.e_kept_warm
              else
                let stack = Iset.add d stack in
                List.for_all (go stack) e.Fwd_model.e_next_hops
        in
        Hashtbl.replace memo d v;
        v
    in
    List.fold_left
      (fun acc d -> if go Iset.empty d then Iset.add d acc else acc)
      Iset.empty all_devices
  in
  (* Shortest surviving physical path (over up links) from [d] to any
     origin of the class — the evidence a blackhole diagnosis needs. *)
  let physical_path org_set d =
    if Iset.mem d org_set then Some [ d ]
    else begin
      let parent = Hashtbl.create 32 in
      Hashtbl.replace parent d d;
      let q = Queue.create () in
      Queue.add d q;
      let found = ref None in
      while !found = None && not (Queue.is_empty q) do
        let x = Queue.pop q in
        List.iter
          (fun (n, _) ->
            let nid = n.Topology.Node.id in
            if (not (Hashtbl.mem parent nid)) && !found = None then begin
              Hashtbl.replace parent nid x;
              if Iset.mem nid org_set then found := Some nid
              else Queue.add nid q
            end)
          (G.neighbors graph x)
      done;
      Option.map
        (fun o ->
          let rec build acc x =
            if x = d then d :: acc
            else build (x :: acc) (Hashtbl.find parent x)
          in
          build [] o)
        !found
    end
  in
  (* The concrete walk behind a reachability loss: follow the first
     non-delivering branch from [d] until it closes a loop or dead-ends. *)
  let failing_walk m delivered d =
    let rec go seen acc d =
      if Iset.mem d seen then List.rev (d :: acc)
      else
        match Fwd_model.entry m d with
        | Some e when not e.Fwd_model.e_origin && e.Fwd_model.e_next_hops <> []
          -> (
          match
            List.find_opt
              (fun nh -> not (Iset.mem nh delivered))
              e.Fwd_model.e_next_hops
          with
          | Some nh -> go (Iset.add d seen) (d :: acc) nh
          | None -> List.rev (d :: acc))
        | _ -> List.rev (d :: acc)
    in
    go Iset.empty [] d
  in
  (* Full check battery for one class in one state. Returns nothing; all
     findings go through [add_viol]/[add_info]. [baseline_delivered] is
     [None] for the baseline state itself. *)
  let check_class state_name ci m ~baseline_delivered =
    let cls = cls_arr.(ci) in
    let p = Prefix.to_string cls.Eq_class.cls_prefix in
    let org_set = origin_sets.(ci) in
    (* 1. Loop-freedom, on every propagation round: transient Figure 9
       loops appear in intermediate snapshots even when the final state
       (or the oscillation) hides them. *)
    let seen_cycles = Hashtbl.create 8 in
    let cycle_devices = ref Iset.empty in
    List.iter
      (fun edges ->
        List.iter
          (fun cyc ->
            let cyc = canonical_cycle cyc in
            if not (Hashtbl.mem seen_cycles cyc) then begin
              Hashtbl.add seen_cycles cyc ();
              cycle_devices :=
                List.fold_left (fun s d -> Iset.add d s) !cycle_devices cyc;
              let head = List.hd cyc in
              add_viol
                {
                  v_code = D.Forwarding_loop_static;
                  v_state = state_name;
                  v_prefix = cls.Eq_class.cls_prefix;
                  v_device = head;
                  v_path = cyc @ [ head ];
                  v_message =
                    Printf.sprintf "forwarding loop for %s in %s: %s" p
                      state_name
                      (path_str (cyc @ [ head ]));
                }
            end)
          (snapshot_cycles edges))
      (Fwd_model.round_edges m);
    if not (Fwd_model.converged m) then
      add_info
        (Printf.sprintf
           "propagation fixpoint for %s in %s did not converge within %d \
            rounds (control-plane oscillation); loop checks cover one full \
            period"
           p state_name (Fwd_model.rounds_run m));
    (* 2. Blackholes, on the final state: the static twin of
       Invariant.Blackhole — a surviving physical path to an origin but no
       forwarding entry. *)
    let blackholed = ref Iset.empty in
    List.iter
      (fun d ->
        if (not (Iset.mem d org_set)) && Fwd_model.entry m d = None then
          match physical_path org_set d with
          | Some path when List.length path > 1 ->
            blackholed := Iset.add d !blackholed;
            add_viol
              {
                v_code = D.Blackhole_static;
                v_state = state_name;
                v_prefix = cls.Eq_class.cls_prefix;
                v_device = d;
                v_path = path;
                v_message =
                  Printf.sprintf
                    "blackhole for %s in %s at device %d: no forwarding \
                     entry while physical path %s survives"
                    p state_name d (path_str path);
              }
          | Some _ | None -> ())
      all_devices;
    (* 3. Reachability preservation: anything the baseline delivered must
       still be delivered. Devices already diagnosed above (no entry, or
       sitting on a reported loop) are excluded — the loss there is the
       same root cause, not a second finding. *)
    match baseline_delivered with
    | None -> ()
    | Some base ->
      let now = delivered_set m in
      Iset.iter
        (fun d ->
          if
            (not (Iset.mem d now))
            && (not (Iset.mem d org_set))
            && (not (Iset.mem d !blackholed))
            && (not (Iset.mem d !cycle_devices))
            && Fwd_model.entry m d <> None
          then
            add_viol
              {
                v_code = D.Reachability_loss;
                v_state = state_name;
                v_prefix = cls.Eq_class.cls_prefix;
                v_device = d;
                v_path = failing_walk m now d;
                v_message =
                  Printf.sprintf
                    "device %d delivered %s at baseline but not in %s: \
                     forwarding walk %s dies downstream"
                    d p state_name
                    (path_str (failing_walk m now d));
              })
        base
  in
  (* Baseline: no RPAs deployed. Everything compiles; loop and blackhole
     checks establish the reference verdict and the delivered sets that
     reachability preservation is judged against. *)
  incr states;
  let baseline =
    Array.mapi
      (fun ci cls ->
        let m = compile Iset.empty cls in
        check_class "baseline" ci m ~baseline_delivered:None;
        m)
      cls_arr
  in
  let baseline_delivered = Array.map delivered_set baseline in
  (* A state is checked against the previous phase boundary: only the
     classes the newly deployed RPAs can touch recompile; the rest reuse
     the boundary's forwarding graphs, verdict carried over. *)
  let check_state ~base_models ~base_deployed name deployed =
    incr states;
    let added = Iset.diff deployed base_deployed in
    let delta_rpas =
      List.filter (fun (d, _) -> Iset.mem d added) plan.Controller.rpas
    in
    let touched =
      Eq_class.touched_by clss ~rpas:delta_rpas
      |> List.fold_left
           (fun s c -> Prefix.Set.add c.Eq_class.cls_prefix s)
           Prefix.Set.empty
    in
    Array.mapi
      (fun ci cls ->
        if (not incremental) || Prefix.Set.mem cls.Eq_class.cls_prefix touched
        then begin
          let m = compile deployed cls in
          check_class name ci m
            ~baseline_delivered:(Some baseline_delivered.(ci));
          m
        end
        else begin
          incr reused;
          base_models.(ci)
        end)
      cls_arr
  in
  let rpa_devices = Iset.of_list (List.map fst plan.Controller.rpas) in
  let base_models = ref baseline in
  let base_deployed = ref Iset.empty in
  List.iteri
    (fun i phase ->
      let k = i + 1 in
      let phase = List.sort_uniq Int.compare phase in
      let boundary = List.fold_left (fun s d -> Iset.add d s) !base_deployed phase in
      (* Mixed frontiers: each device deployed alone ahead of its phase
         peers is a legal transient the rollout passes through. *)
      if frontiers then begin
        let with_rpa = List.filter (fun d -> Iset.mem d rpa_devices) phase in
        if List.length with_rpa > 1 then begin
          let modelled, rest =
            if List.length with_rpa <= frontier_limit then (with_rpa, [])
            else begin
              let rec split n = function
                | [] -> ([], [])
                | x :: tl ->
                  if n = 0 then ([], x :: tl)
                  else
                    let a, b = split (n - 1) tl in
                    (x :: a, b)
              in
              split frontier_limit with_rpa
            end
          in
          if rest <> [] then
            add_info
              (Printf.sprintf
                 "phase %d has %d RPA-bearing devices; frontier modelling \
                  capped at the first %d by id (devices %s not modelled \
                  individually)"
                 k (List.length with_rpa) frontier_limit (path_str rest));
          List.iter
            (fun x ->
              ignore
                (check_state ~base_models:!base_models
                   ~base_deployed:!base_deployed
                   (Printf.sprintf "phase %d frontier device %d" k x)
                   (Iset.add x !base_deployed)))
            modelled
        end
      end;
      let models =
        check_state ~base_models:!base_models ~base_deployed:!base_deployed
          (Printf.sprintf "phase %d" k)
          boundary
      in
      base_models := models;
      base_deployed := boundary)
    plan.Controller.phases;
  {
    vr_plan = plan.Controller.plan_name;
    vr_classes = n_classes;
    vr_states = !states;
    vr_compiled = !compiled;
    vr_reused = !reused;
    vr_rounds = !rounds;
    vr_converged = !all_converged;
    vr_violations = List.rev !viols;
    vr_diagnostics = D.sort !diags;
  }

let verify_network ?frontiers net plan =
  let origins =
    match origins_of_network net with
    | [] -> default_origins (Bgp.Network.graph net)
    | os -> os
  in
  verify ~origins ?frontiers (Bgp.Network.graph net) plan

let violation_json v =
  Obs.Json.Obj
    [
      ("code", Obs.Json.String (D.code_to_string v.v_code));
      ("state", Obs.Json.String v.v_state);
      ("prefix", Obs.Json.String (Prefix.to_string v.v_prefix));
      ("device", Obs.Json.Int v.v_device);
      ("path", Obs.Json.List (List.map (fun d -> Obs.Json.Int d) v.v_path));
      ("message", Obs.Json.String v.v_message);
    ]

let report_json r =
  Obs.Json.Obj
    [
      ("plan", Obs.Json.String r.vr_plan);
      ("classes", Obs.Json.Int r.vr_classes);
      ("states", Obs.Json.Int r.vr_states);
      ("compiled", Obs.Json.Int r.vr_compiled);
      ("reused", Obs.Json.Int r.vr_reused);
      ("rounds", Obs.Json.Int r.vr_rounds);
      ("converged", Obs.Json.Bool r.vr_converged);
      ("violations", Obs.Json.List (List.map violation_json r.vr_violations));
      ("report", D.report_json r.vr_diagnostics);
    ]

let findings r =
  List.map
    (fun (d : D.t) ->
      {
        Controller.lint_error = d.D.severity = D.Error;
        lint_code = D.code_to_string d.D.code;
        lint_message = D.to_human d;
      })
    r.vr_diagnostics
