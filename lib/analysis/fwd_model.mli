(** Symbolic per-class forwarding model: what the fleet's FIBs look like
    for one destination class under one policy state, without running
    Dsim.

    The model is a synchronous-rounds fixpoint of BGP route propagation
    with the {e real} selection semantics plugged in: candidates are built
    from neighbours' round [r-1] advertisements (AS-path loop prevention
    and route-filter gates included), native selection is
    {!Bgp.Decision.select}, and a device carrying an RPA evaluates it
    through {!Centralium.Engine.evaluate_selection} — the same code path
    the simulated speakers run. Each round is therefore a legal transient
    snapshot of an asynchronous convergence, and the final round (if the
    iteration converges) is the steady state.

    The verifier checks loop-freedom on {e every} round — transient
    forwarding loops (the Figure 9 hazard) appear as FIB cycles in
    intermediate rounds even when the iteration oscillates — and
    blackholes / reachability on the final state. *)

type entry = {
  e_next_hops : int list;
      (** forwarding next-hop device ids, sorted, deduplicated over
          parallel sessions; empty = no forwarding state *)
  e_origin : bool;  (** the device originates the class (walk terminates) *)
  e_kept_warm : bool;
      (** entries surviving a minimum-next-hop withdraw
          ([KeepFibWarmIfMnhViolated]) *)
}

type t

val compile :
  Topology.Graph.t ->
  engine_of:(int -> Centralium.Engine.t option) ->
  cls:Eq_class.t ->
  t
(** Runs the fixpoint for one class. [engine_of] returns the RPA engine a
    device runs in the modelled policy state ([None] = native BGP); the
    caller owns engine creation so it can share engines across classes. *)

val entry : t -> int -> entry option
(** Final-state forwarding entry; [None] when the device never obtained
    one (equivalent to [e_next_hops = []] for the checks). *)

val final : t -> (int * entry) list
(** Final state, sorted by device id. *)

val round_edges : t -> (int * int list) list list
(** Per-round FIB edge snapshots — [(device, next_hops)] sorted by device,
    origins and empty entries omitted — with consecutive duplicates
    collapsed. The final state is the last element. *)

val converged : t -> bool
(** Whether a fixpoint was reached within the round budget. [false] means
    the control plane oscillates for this class (a dispute wheel); the
    snapshots then cover one full period of the oscillation. *)

val rounds_run : t -> int

val equal : t -> t -> bool
(** Structural equality of the final states (used by tests to confirm
    incremental reuse is sound). *)
