(** A binary trie over {!Net.Prefix.t} for containment queries.

    The analyzer needs "which destination prefixes cover / are covered by
    this one" across the statements of a plan; a trie answers that without
    the quadratic prefix-by-prefix scan. Keys are canonical prefixes; one
    trie holds both address families (separate roots). Values accumulate —
    adding the same prefix twice keeps both values. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> Net.Prefix.t -> 'a -> unit

val covering : 'a t -> Net.Prefix.t -> (Net.Prefix.t * 'a) list
(** Entries whose prefix contains the query (the query itself included),
    shortest mask first; insertion order within a node. *)

val covered_by : 'a t -> Net.Prefix.t -> (Net.Prefix.t * 'a) list
(** Entries contained in the query (the query itself included). *)

val overlapping : 'a t -> Net.Prefix.t -> (Net.Prefix.t * 'a) list
(** Union of {!covering} and {!covered_by}; entries equal to the query
    appear once. Two prefixes overlap iff one contains the other. *)

val longest_match : 'a t -> Net.Prefix.t -> (Net.Prefix.t * 'a list) option
(** The longest-prefix-match entry for the query: the most specific stored
    prefix containing it (the query itself included), with every value
    added under that prefix in insertion order. A stored default route
    (/0 or ::/0) matches any query of its family unless shadowed by a
    more specific entry; families never cross-match. [None] when nothing
    of the query's family covers it. *)
