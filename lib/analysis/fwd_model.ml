open Centralium
module G = Topology.Graph
module Imap = Map.Make (Int)

type entry = { e_next_hops : int list; e_origin : bool; e_kept_warm : bool }

type t = {
  f_final : entry Imap.t;
  f_snapshots : (int * int list) list list;
  f_converged : bool;
  f_rounds : int;
}

let entry t d = Imap.find_opt d t.f_final
let final t = Imap.bindings t.f_final
let round_edges t = t.f_snapshots
let converged t = t.f_converged
let rounds_run t = t.f_rounds

let entry_equal a b =
  a.e_origin = b.e_origin
  && a.e_kept_warm = b.e_kept_warm
  && List.equal Int.equal a.e_next_hops b.e_next_hops

let equal a b = Imap.equal entry_equal a.f_final b.f_final

let compile graph ~engine_of ~cls =
  let prefix = cls.Eq_class.cls_prefix in
  let devices =
    List.sort Int.compare
      (List.map (fun n -> n.Topology.Node.id) (G.nodes graph))
  in
  let origin_attr =
    List.fold_left
      (fun acc (d, attr) -> Imap.add d attr acc)
      Imap.empty cls.Eq_class.cls_origins
  in
  let asn d = (G.node graph d).Topology.Node.asn in
  let layer_of d =
    Option.map (fun n -> n.Topology.Node.layer) (G.node_opt graph d)
  in
  let rpa_of d = Option.map Engine.rpa (engine_of d) in
  let filters_allow d direction ~peer =
    match rpa_of d with
    | None -> true
    | Some rpa ->
      let layer = layer_of peer in
      List.for_all
        (fun rf -> Route_filter.allows rf direction ~peer ~layer prefix)
        rpa.Rpa.route_filter
  in
  let ctx_of d : Bgp.Rib_policy.ctx =
    {
      Bgp.Rib_policy.device = d;
      prefix;
      now = 0.0;
      peer_layer = layer_of;
      live_peers_in_layer =
        (fun layer ->
          List.length
            (List.filter
               (fun (n, _) ->
                 Topology.Node.layer_equal n.Topology.Node.layer layer)
               (G.neighbors graph d)));
    }
  in
  (* Per-device state: what the device offers peers (its advertised
     attributes, pre-prepend) and its forwarding entry. Origins are
     terminal: constant advertisement, no next hops. *)
  let adv = ref Imap.empty in
  let ent = ref Imap.empty in
  Imap.iter
    (fun d attr ->
      if Option.is_some (G.node_opt graph d) then begin
        adv := Imap.add d attr !adv;
        ent :=
          Imap.add d
            { e_next_hops = []; e_origin = true; e_kept_warm = false }
            !ent
      end)
    origin_attr;
  let snapshot () =
    List.rev
      (Imap.fold
         (fun d e acc ->
           if e.e_origin || e.e_next_hops = [] then acc
           else (d, e.e_next_hops) :: acc)
         !ent [])
  in
  let step () =
    (* Synchronous round: every device re-decides from the neighbours'
       previous-round advertisements, through the same decision code the
       simulated speakers run. *)
    let prev_adv = !adv in
    let next_adv = ref Imap.empty in
    let next_ent = ref Imap.empty in
    List.iter
      (fun d ->
        match Imap.find_opt d origin_attr with
        | Some attr ->
          next_adv := Imap.add d attr !next_adv;
          next_ent :=
            Imap.add d
              { e_next_hops = []; e_origin = true; e_kept_warm = false }
              !next_ent
        | None ->
          let d_asn = asn d in
          let candidates =
            List.concat_map
              (fun (n, (link : G.link)) ->
                let nid = n.Topology.Node.id in
                match Imap.find_opt nid prev_adv with
                | None -> []
                | Some a ->
                  let a' = Net.Attr.with_prepended (asn nid) a in
                  if Net.As_path.mem d_asn a'.Net.Attr.as_path then []
                  else if
                    filters_allow nid Route_filter.Egress ~peer:d
                    && filters_allow d Route_filter.Ingress ~peer:nid
                  then
                    List.init (max 1 link.G.sessions) (fun s ->
                        Bgp.Path.make ~peer:nid ~session:s ~attr:a')
                  else [])
              (G.neighbors graph d)
          in
          let native = Bgp.Decision.select ~multipath:true candidates in
          let selection =
            match engine_of d with
            | Some eng ->
              Engine.evaluate_selection eng ~ctx:(ctx_of d) ~candidates
                ~native
            | None ->
              let selected, advertise = native in
              { Bgp.Rib_policy.selected; advertise; keep_fib_warm = false }
          in
          (match selection.Bgp.Rib_policy.advertise with
           | Some p ->
             next_adv := Imap.add d p.Bgp.Path.attr !next_adv
           | None -> ());
          let next_hops =
            List.sort_uniq Int.compare
              (List.map
                 (fun p -> p.Bgp.Path.peer)
                 selection.Bgp.Rib_policy.selected)
          in
          if next_hops <> [] || selection.Bgp.Rib_policy.keep_fib_warm then
            next_ent :=
              Imap.add d
                {
                  e_next_hops = next_hops;
                  e_origin = false;
                  e_kept_warm = selection.Bgp.Rib_policy.keep_fib_warm;
                }
                !next_ent)
      devices;
    let changed =
      not
        (Imap.equal Net.Attr.equal prev_adv !next_adv
        && Imap.equal entry_equal !ent !next_ent)
    in
    adv := !next_adv;
    ent := !next_ent;
    changed
  in
  let max_rounds = (2 * List.length devices) + 8 in
  let rec run rounds snaps =
    if rounds >= max_rounds then (rounds, List.rev snaps, false)
    else if step () then begin
      let s = snapshot () in
      let snaps =
        match snaps with last :: _ when last = s -> snaps | _ -> s :: snaps
      in
      run (rounds + 1) snaps
    end
    else (rounds + 1, List.rev snaps, true)
  in
  let rounds, snaps, converged = run 0 [] in
  let snaps =
    let final_snap = snapshot () in
    match List.rev snaps with
    | last :: _ when last = final_snap -> snaps
    | _ -> snaps @ [ final_snap ]
  in
  { f_final = !ent; f_snapshots = snaps; f_converged = converged;
    f_rounds = rounds }
