(** The symbolic phase verifier: proves a migration plan loop- and
    blackhole-free before deployment.

    Runtime {!Centralium.Invariant} sweeps catch violations after they
    happen; the lint pass ({!Lint}) catches syntactic defects. This module
    closes the gap between them: it compiles the {e planned} state of
    every deployment phase — and every mixed old/new device frontier
    within a phase — into per-device symbolic forwarding functions
    ({!Fwd_model}, running the real {!Centralium.Engine} selection code)
    over destination equivalence classes ({!Eq_class}), then walks each
    class's forwarding graph to prove:

    - {b loop-freedom}: no FIB cycle in any propagation round of any
      checked state (transient Figure 9 loops included);
    - {b no blackholes}: no device with a surviving physical path to an
      origin but no forwarding entry — the static twin of
      {!Centralium.Invariant.Blackhole};
    - {b reachability preservation}: every device that delivered a class
      in the baseline state still delivers it in every later state.

    Every violation carries a concrete counterexample path. Verification
    is incremental delta-net style: a state only re-verifies the classes
    its policy delta can influence ({!Eq_class.touched_by}); everything
    else reuses the previous state's forwarding graphs. Output is
    deterministic — {!report_json} is byte-identical across runs for the
    same input.

    Loading the [analysis] library registers {!verify_network} with
    {!Centralium.Controller.set_verifier}, arming the [?verify] gate of
    [Controller.deploy*] and the verification pass of
    [Verification.qualify]. The {!Centralium.Ops.set_admission_verifier}
    probe is bound by the queue's owner instead — admission needs the
    verifier closed over the target network, which only the owner has. *)

type origin = {
  org_device : int;
  org_prefix : Net.Prefix.t;
  org_attr : Net.Attr.t;
}

type violation = {
  v_code : Diagnostic.code;
      (** [Forwarding_loop_static], [Blackhole_static] or
          [Reachability_loss] *)
  v_state : string;
      (** the deployment state, e.g. ["baseline"], ["phase 2"],
          ["phase 2 frontier device 7"] *)
  v_prefix : Net.Prefix.t;  (** the destination class *)
  v_device : int;  (** where the violation anchors *)
  v_path : int list;
      (** concrete counterexample: the device walk exhibiting the cycle,
          the surviving physical path to an origin, or the forwarding walk
          to the failure point *)
  v_message : string;
}

type report = {
  vr_plan : string;
  vr_classes : int;
  vr_states : int;  (** baseline + phase boundaries + frontiers checked *)
  vr_compiled : int;  (** (class, state) forwarding graphs computed *)
  vr_reused : int;
      (** (class, state) pairs reused unchanged from the previous state —
          the delta-net savings *)
  vr_rounds : int;  (** total propagation rounds across compilations *)
  vr_converged : bool;  (** every compiled fixpoint converged *)
  vr_violations : violation list;
  vr_diagnostics : Diagnostic.t list;  (** sorted; one per violation, plus
                                           Info notes *)
}

val frontier_limit : int
(** Mixed-frontier states modelled per phase: each of the first
    [frontier_limit] devices of a phase (in id order) is checked deployed
    alone ahead of its peers. Larger phases get an Info diagnostic naming
    the unmodelled devices rather than a silent cap. *)

val default_origins : Topology.Graph.t -> origin list
(** When no origins are supplied: every device of the topmost populated
    layer originates the v4 default route tagged
    [backbone_default_route] — the standard-suite convention. *)

val origins_of_network : Bgp.Network.t -> origin list
(** The routes actually originated by the network's speakers. *)

val verify :
  ?origins:origin list ->
  ?frontiers:bool ->
  ?incremental:bool ->
  Topology.Graph.t ->
  Centralium.Controller.plan ->
  report
(** Verifies the plan against the topology. [frontiers] (default [true])
    also checks single-device frontier states inside multi-device
    phases. [incremental] (default [true]) enables the delta-net reuse
    of untouched classes across states; [false] recompiles every class
    in every state — same verdicts, strictly more work (the bench's
    full-verification reference point). *)

val verify_network :
  ?frontiers:bool -> Bgp.Network.t -> Centralium.Controller.plan -> report
(** {!verify} with {!origins_of_network} (falling back to
    {!default_origins} for a network that originates nothing yet). *)

val report_json : report -> Obs.Json.t
(** Fixed field order, no wall-clock content: byte-identical across runs
    for the same input. *)

val findings : report -> Centralium.Controller.lint_finding list
(** The report's diagnostics in the controller's hook currency. *)
