(** Destination equivalence classes for the symbolic phase verifier.

    Veriflow partitions the destination space into equivalence classes so
    that one forwarding-graph check covers every address with identical
    behaviour. In this codebase routes exist only for originated prefixes
    (no aggregation), and every RPA construct — path-selection and
    route-attribute destinations, route-filter allow rules — matches a
    route's prefix {e wholly}: behaviour is therefore uniform per
    originated prefix, and the classes are exactly the distinct originated
    prefixes, each carrying its origin devices and origination
    attributes.

    The delta-net style incrementality lives in {!touched_by}: a
    deployment phase only re-verifies the classes its delta's RPAs can
    influence, found through a {!Prefix_trie} over the class prefixes
    rather than a class-by-rule scan. *)

type t = {
  cls_prefix : Net.Prefix.t;
  cls_origins : (int * Net.Attr.t) list;
      (** (device, origination attributes), sorted by device; several
          devices originating the same prefix (anycast) share a class *)
}

val classes : (int * Net.Prefix.t * Net.Attr.t) list -> t list
(** Groups origins by prefix. Classes come back sorted by
    {!Net.Prefix.compare}; origins within a class sorted by device. *)

val communities : t -> Net.Community.Set.t
(** Union of the origination communities across the class's origins — the
    set a [Tagged] destination is matched against. *)

val rpa_touches : Centralium.Rpa.t -> t -> bool
(** Can this RPA influence forwarding for the class? True when any
    path-selection or route-attribute destination names the class (tagged
    community present in {!communities}, or a destination prefix
    {e covering} the class prefix — [Destination.matches] never lets a
    more specific selector match a broader route), or any route-filter
    statement is present (filters constrain every prefix a peer signature
    matches, so an [Allow_list] that merely {e omits} the class still
    blocks it). *)

val touched_by : t list -> rpas:(int * Centralium.Rpa.t) list -> t list
(** The classes any of the given per-device RPAs can influence — the
    delta-net re-verification set for a phase delta. Result preserves the
    input class order. *)
