(* The `centralium trace` runner: executes a scenario under a causal
   recorder (and span recorder, for the Perfetto export), then renders the
   provenance DAG, the convergence critical path for the traced prefix,
   and — for the chaos scenario — the blackhole attribution joining the
   loss integral's segments to the FIB events that opened/closed them.

   The human and --json outputs contain only virtual-time data, so they
   are byte-identical across runs at the same seed; --perfetto adds the
   span tree, whose wall-clock fallbacks are not deterministic. *)

type format = Human | Json | Perfetto

type summary = {
  scenario : string;
  seed : int;
  prefix : string;
  causal_events : int;
  critical_events : int;
  convergence_s : float option;
  blackhole_seconds : float;
  attributed_seconds : float;
  attributed_segments : int;
}

let scenarios = [ "converge"; "chaos" ]

let prefix_name id =
  if id < 0 then "-" else Net.Prefix.to_string (Net.Intern.Prefix_id.value id)

let origin_attr () =
  Net.Attr.make
    ~communities:
      (Net.Community.Set.singleton
         Net.Community.Well_known.backbone_default_route)
    ()

(* Hand-checkable convergence: a small Clos slice (2 pods, 2 of everything),
   constant 1 ms link latency, one origin announce from the first EB. The
   critical path is then literally the hop chain EB -> FAUU -> FADU -> SSW
   -> FSW -> RSW with 1 ms wire edges, and its per-edge delays sum to the
   observed convergence time. *)
let run_converge ~seed ~prefix () =
  let f =
    Topology.Clos.fabric ~pods:2 ~rsws_per_pod:2 ~fsws_per_pod:2
      ~ssws_per_plane:2 ~grids:2 ~fauus_per_grid:2 ~ebs:2 ()
  in
  let net =
    Bgp.Network.create ~seed ~latency:(fun _ -> 0.001) f.Topology.Clos.graph
  in
  let origin = List.hd f.Topology.Clos.ebs in
  Bgp.Network.originate net origin prefix (origin_attr ());
  ignore (Bgp.Network.converge net);
  ([], 0.0)

let run_chaos ~seed ~gr () =
  let m = Scenarios.Chaos.run_mode ~seed ~gr () in
  let segments =
    List.map
      (fun (s : Dataplane.Metrics.loss_segment) ->
        (s.seg_from, s.seg_until, s.seg_blackholed))
      m.Scenarios.Chaos.loss_segments
  in
  (segments, m.Scenarios.Chaos.blackhole_seconds)

let human_lines ~scenario ~seed ~gr ~prefix ~causal ~chain ~attribution
    ~blackhole_seconds =
  let pfx = Net.Prefix.to_string prefix in
  let buf = ref [] in
  let line fmt = Printf.ksprintf (fun s -> buf := s :: !buf) fmt in
  line "trace: scenario=%s seed=%d gr=%b prefix=%s causal-events=%d" scenario
    seed gr pfx (Obs.Causal.length causal);
  (match chain with
   | None -> line "no FIB change recorded for %s" pfx
   | Some chain ->
     List.iter (fun l -> buf := l :: !buf)
       (Obs.Causal.chain_lines ~prefix_name chain));
  if attribution <> [] || blackhole_seconds > 0.0 then begin
    line "blackhole attribution for %s (total %.6f blackhole-seconds):" pfx
      blackhole_seconds;
    let describe ids =
      match ids with
      | [] -> "(pre-existing state)"
      | ids ->
        String.concat "; "
          (List.map
             (fun id ->
               match Obs.Causal.event causal id with
               | Some ev ->
                 Printf.sprintf "#%d %s t=%.6f" id
                   (Obs.Causal.kind_label ev.Obs.Causal.kind)
                   ev.Obs.Causal.time
               | None -> Printf.sprintf "#%d" id)
             ids)
    in
    List.iter
      (fun (a : Obs.Causal.attributed) ->
        line "  [%.6f, %.6f) fraction %.4f = %.6fs  opened by %s  closed by %s"
          a.a_from a.a_until a.a_fraction a.a_seconds
          (describe a.a_opened_by) (describe a.a_closed_by))
      attribution
  end;
  List.rev !buf

let json_doc ~scenario ~seed ~gr ~prefix ~causal ~chain ~attribution
    ~blackhole_seconds ~attributed_seconds =
  Obs.Json.Obj
    [
      ("scenario", Obs.Json.String scenario);
      ("seed", Obs.Json.Int seed);
      ("gr", Obs.Json.Bool gr);
      ("prefix", Obs.Json.String (Net.Prefix.to_string prefix));
      ("causal_events", Obs.Json.Int (Obs.Causal.length causal));
      ("critical_path",
       match chain with
       | Some chain -> Obs.Causal.chain_to_json ~prefix_name chain
       | None -> Obs.Json.Null);
      ("blackhole_seconds", Obs.Json.Float blackhole_seconds);
      ("attributed_seconds", Obs.Json.Float attributed_seconds);
      ("blackhole_attribution",
       Obs.Json.List (List.map Obs.Causal.attributed_to_json attribution));
      ("events", Obs.Causal.to_json ~prefix_name causal);
    ]

let run ?(seed = 42) ?(gr = true) ?(prefix = Net.Prefix.default_v4) ~scenario
    ~format ~write () =
  let causal = Obs.Causal.create () in
  let spans = Obs.Span.create () in
  let execute () =
    Obs.Span.with_recorder spans @@ fun () ->
    Obs.Causal.with_recorder causal @@ fun () ->
    match scenario with
    | "converge" -> Ok (run_converge ~seed ~prefix ())
    | "chaos" -> Ok (run_chaos ~seed ~gr ())
    | other ->
      Error
        (Printf.sprintf "unknown trace scenario %S (available: %s)" other
           (String.concat ", " scenarios))
  in
  match execute () with
  | Error _ as e -> e
  | Ok (segments, blackhole_seconds) ->
    (* Chaos schedules can leave scopes open at the export point. *)
    Obs.Span.close_open spans;
    let pid = Net.Intern.Prefix_id.id prefix in
    let chain = Obs.Causal.critical_path causal ~prefix:pid in
    let attribution = Obs.Causal.attribute causal ~prefix:pid ~segments in
    let attributed_seconds =
      List.fold_left
        (fun acc (a : Obs.Causal.attributed) -> acc +. a.a_seconds)
        0.0 attribution
    in
    (match format with
     | Human ->
       List.iter
         (fun l -> write (l ^ "\n"))
         (human_lines ~scenario ~seed ~gr ~prefix ~causal ~chain ~attribution
            ~blackhole_seconds)
     | Json ->
       write
         (Obs.Json.to_string
            (json_doc ~scenario ~seed ~gr ~prefix ~causal ~chain ~attribution
               ~blackhole_seconds ~attributed_seconds));
       write "\n"
     | Perfetto ->
       write
         (Obs.Json.to_string (Obs.Export.perfetto ~spans ~causal ~prefix_name ()));
       write "\n");
    Ok
      {
        scenario;
        seed;
        prefix = Net.Prefix.to_string prefix;
        causal_events = Obs.Causal.length causal;
        critical_events =
          (match chain with
           | Some c -> List.length c.Obs.Causal.c_events
           | None -> 0);
        convergence_s =
          (match chain with Some c -> Some c.Obs.Causal.c_total | None -> None);
        blackhole_seconds;
        attributed_seconds;
        attributed_segments = List.length attribution;
      }
