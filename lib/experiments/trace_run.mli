(** The [centralium trace] runner: causal route-propagation tracing.

    Executes a scenario under an {!Obs.Causal} recorder (and an
    {!Obs.Span} recorder, consumed by the Perfetto export), then renders
    the provenance DAG, the traced prefix's convergence critical path
    ({!Obs.Causal.critical_path}), and — for the chaos scenario — the
    blackhole attribution joining {!Dataplane.Metrics.loss_segments}
    intervals to the causal FIB events that opened and closed them.

    Scenarios:
    - ["converge"]: a small Clos slice with constant 1 ms link latency and
      a single origin announce — hand-checkable: the critical path is the
      literal hop chain and its per-edge delays sum to the convergence
      time.
    - ["chaos"]: {!Scenarios.Chaos.run_mode} (severe faults, liveness
      timers, mid-window restarts) — the attributed blackhole-seconds
      account for exactly the run's [loss_integrals] total.

    [Human] and [Json] outputs carry only virtual-time data and are
    byte-identical across runs at the same seed; [Perfetto] adds the span
    tree (wall-clock fallbacks, not deterministic). *)

type format = Human | Json | Perfetto

type summary = {
  scenario : string;
  seed : int;
  prefix : string;
  causal_events : int;
  critical_events : int;  (** events on the critical path; 0 = none found *)
  convergence_s : float option;  (** critical-path total, virtual seconds *)
  blackhole_seconds : float;
  attributed_seconds : float;
      (** sums bit-exactly to [blackhole_seconds] *)
  attributed_segments : int;
}

val scenarios : string list

val run :
  ?seed:int ->
  ?gr:bool ->
  ?prefix:Net.Prefix.t ->
  scenario:string ->
  format:format ->
  write:(string -> unit) ->
  unit ->
  (summary, string) result
(** [gr] selects the chaos run's graceful-restart mode (default on);
    ignored by ["converge"]. [prefix] defaults to the default route.
    [Error] reports an unknown scenario name. *)
