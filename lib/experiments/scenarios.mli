(** Executable reproductions of the paper's scenario figures.

    Each [run] builds the figure's topology, drives the migration through
    the event-simulated BGP network twice — native BGP versus
    RPA-protected — and returns the observable the paper argues about
    (funneling share, next-hop-group count, loop presence, black-holed
    fraction). Both the integration tests and the benchmark harness consume
    these. All runs are deterministic given [seed]. *)

(** Section 3.2 / Figure 2: first-router problem in topology expansion. *)
module Fig2 : sig
  type result = {
    baseline_funnel : float;
        (** steady-state max FA share before FAv2 exists *)
    native_fav2_share : float;
        (** share of traffic through the first FAv2, native BGP (the
            first-router collapse: expect 1.0) *)
    rpa_fav2_share : float;  (** same with path-equalize RPAs (expect 1/n) *)
    balanced_share : float;  (** 1 / (#FAv1 + 1), the ideal *)
    rpa_loss : float;        (** loss fraction under RPA (expect 0) *)
  }

  val run : ?seed:int -> ?faults:Dsim.Fault.profile -> unit -> result
  (** [faults] installs a message-level fault model (own RNG stream, seed
      derived from [seed]) on every network the scenario builds. *)
end

(** Section 3.3 / Figure 4: last-router problem in decommission. *)
module Fig4 : sig
  type result = {
    steady_share : float;
        (** per-FADU-1 share before any drain (1 / (#planes x per)) *)
    native_worst_funnel : float;
        (** worst transient share of any FADU-1 while FADU-1s drain
            asynchronously under native BGP (expect ~#grids x steady) *)
    rpa_worst_funnel : float;
        (** same with the BgpNativeMinNextHop guard on SSW-1s *)
  }

  val run : ?seed:int -> ?faults:Dsim.Fault.profile -> unit -> result

  val sweep :
    ?seed:int -> thresholds:float option list -> unit -> (float option * float) list
  (** Ablation of the guard threshold: for each entry ([None] = no guard,
      [Some f] = [BgpNativeMinNextHop] fraction [f]) the worst transient
      funnel over the drain. Shows where the design choice of Section 4.4.2
      sits: too low a threshold behaves like native BGP, 1.0 withdraws on
      the first drain. *)
end

(** Section 3.4 / Figure 5: transient next-hop-group explosion during
    distributed WCMP convergence. *)
module Fig5 : sig
  type result = {
    prefixes : int;
    du_nhg_native : int;
        (** peak distinct NHG objects on the DU during EB[1:2] maintenance
            under distributed WCMP *)
    du_nhg_rpa : int;
        (** same with weights prescribed a priori by Route Attribute RPA *)
    theoretical_bound : int;  (** s^m per-UU states to the #sessions: 4^8 *)
  }

  val run : ?seed:int -> ?prefixes:int -> unit -> result
end

(** Section 5.3.1 / Figure 9: dissemination rule and routing loops. *)
module Fig9 : sig
  type result = {
    loops_with_best_advertised : int list list;
        (** forwarding cycles when the RPA speaker advertises its best
            selected path (expect the persistent R5-R6 loop) *)
    circulating_bad : float;
        (** traffic crossing the R5-R6 link in {e both} directions — the
            signature of a forwarding loop: min(load R5->R6, load R6->R5) *)
    ttl_loss_bad : float;
        (** fraction of discrete flows (hash-forwarded, TTL 64) that die in
            the loop — the paper's "packets dropped during this time" *)
    loops_with_rule : int list list;  (** expect none *)
    circulating_good : float;  (** expect 0 *)
    ttl_loss_good : float;  (** expect 0 *)
  }

  val run : ?seed:int -> unit -> result
end

(** Section 5.3.2 / Figure 10: RPA deployment sequencing. *)
module Fig10 : sig
  type result = {
    funnel_top_down : float;
        (** worst transient FA share when the RPA lands on FA1 first
            (uncoordinated; expect ~1.0 through FA2) *)
    funnel_bottom_up : float;
        (** worst transient FA share under the safe order (expect ~0.5) *)
    balanced : float;  (** 1 / #FAs *)
  }

  val run : ?seed:int -> unit -> result
end

(** Section 7.2 / Figure 14: the KeepFibWarmIfMnhViolated SEV. *)
module Fig14 : sig
  type result = {
    blackholed_with_knob : float;
        (** fraction of host-bound traffic terminating at the
            not-production-ready FA when KeepFibWarm was (incorrectly) set *)
    blackholed_without_knob : float;  (** expect 0 *)
    propagated_past_ssw : bool;
        (** whether the new route leaked below SSWs (expect false — the
            guard withheld advertisement either way) *)
  }

  val run : ?seed:int -> unit -> result
end

(** Fault-injection scenario: a Clos fabric converging while the transport
    misbehaves (message loss / delay / reorder per {!Dsim.Fault.profile})
    and a seeded schedule of link flaps and speaker restarts executes, with
    the {!Centralium.Invariant} checker sampling the network throughout.
    Everything — fates, schedule, latencies — derives from [seed], so the
    entire run (including the recorded trace) is reproducible bit for
    bit. *)
module Faulted : sig
  type result = {
    schedule : Dsim.Fault.schedule;  (** the control faults that executed *)
    events_executed : int;
    messages_dropped : int;
    speaker_restarts : int;
    transient_violations : (float * string) list;
        (** (time, kind) of every violation the periodic monitor observed
            while the network was converging — the paper's transient
            phenomena, now machine-checked *)
    final_violations : (int option * Net.Prefix.t option * string) list;
        (** invariant violations persisting at quiescence; loss of BGP
            messages can legitimately strand state (no retransmission is
            modeled), so this reports rather than asserts emptiness *)
    trace : Bgp.Trace.event list;
        (** full event trace, for bit-determinism comparisons *)
  }

  val run :
    ?seed:int ->
    ?profile:Dsim.Fault.profile ->
    ?flaps:int ->
    ?restarts:int ->
    unit ->
    result
end

(** Management-plane chaos around a phased RPA rollout: the expansion
    equalizer deployed through a {!Dsim.Mgmt_fault} fate model (lossy RPCs,
    lost NSDB writes, a scheduled controller crash) with the resilient
    controller loop — retries, backoff, journaled resume — while
    {!Centralium.Invariant} sweeps verify the network stays loop- and
    blackhole-free whenever the controller is degraded (the paper's
    fail-static claim, machine-checked). *)
module Faulted_deploy : sig
  type result = {
    outcome : string;  (** completed | rolled-back | crashed | aborted *)
    applied : int;
    skipped_in_sync : int;
    retries : int;
    backoff_seconds : float list;
        (** the retry schedule; deterministic per seed *)
    gave_up : int list;  (** devices whose RPCs never went through *)
    unreachable : int list;
    crashed : bool;  (** the initial deploy hit the scheduled crash *)
    resumed : bool;  (** a replacement controller resumed from the journal *)
    journal_status : string option;
    stragglers_during_outage : int list;
        (** agent's intended≠current view before any healing *)
    unexpected_unreachable : int list;
    phase_violations : (int * string) list;
        (** invariant violations at phase boundaries (should be empty) *)
    transient_violations : (float * string) list;
        (** violations the periodic monitor saw during the outage window *)
    final_violations : string list;
    fib_digest : string;
        (** digest over every device's FIB for every known prefix —
            bit-identity of forwarding state *)
  }

  val run :
    ?seed:int ->
    ?profile:Dsim.Mgmt_fault.profile ->
    ?crash_after_ops:int ->
    ?resume:bool ->
    ?partition_devices:int ->
    unit ->
    result
  (** [partition_devices] cuts the first N plan devices off the out-of-band
      management star for the duration of the deploy (healed afterwards):
      they fail static and surface as stragglers. *)

  type comparison = {
    interrupted : result;
    uninterrupted : result;
    digests_match : bool;
  }

  val crash_vs_uninterrupted :
    ?seed:int ->
    ?profile:Dsim.Mgmt_fault.profile ->
    ?crash_after_ops:int ->
    unit ->
    comparison
  (** The acceptance experiment: the same seeded deployment run twice —
      once interrupted by a scheduled controller crash and resumed from the
      NSDB journal, once uninterrupted — and their final forwarding state
      compared bit for bit. [crash_after_ops] defaults to mid-flight of the
      first phase. *)
end

(** Controller HA failover: the {!Faulted_deploy} fixture driven by an
    {!Centralium.Ha} cluster instead of a lone controller. The fault
    model's {!Dsim.Mgmt_fault.ha_profile} kills the leader at seeded
    offsets mid-rollout; the standbys race for the lease, the winner
    resumes from the shared NSDB journal under a higher fencing epoch,
    and the scenario audits the grant/commit trails with
    {!Centralium.Invariant.check_ha}. *)
module Failover : sig
  type result = {
    outcome : string;
        (** terminal outcome of the rollout: completed | rolled-back |
            aborted | none (leadership never re-established) *)
    attempts : (int * string) list;
        (** every (member id, outcome) deployment attempt, in order —
            crashed/fenced entries are the interrupted leaders *)
    completed_by : int option;  (** member that landed the final phase *)
    elections : int;  (** successful lease acquisitions *)
    takeover_ms : float list;
        (** simulated ms from each leader loss to the next acquisition *)
    fenced_attempts : int;
        (** attempts that fail-stopped on a lost lease (vs crashing) *)
    dead_members : int;
    grants : (int * int * float * float) list;
        (** lease-grant audit: (holder, epoch, start, expiry) *)
    applied : int;  (** RPA applies summed over every attempt *)
    skipped_in_sync : int;
    journal_status : string option;
    ha_violations : string list;
        (** {!Centralium.Invariant.check_ha} over grants and epoch-stamped
            commits — dual-leader / stale-epoch-write; must be empty *)
    phase_violations : (int * string) list;
    final_violations : string list;
    fib_digest : string;
  }

  val run :
    ?seed:int ->
    ?profile:Dsim.Mgmt_fault.profile ->
    ?members:int ->
    ?lease_ttl:float ->
    ?tick_every:float ->
    ?leader_crash_offsets:float list ->
    ?lease_partition_offsets:(float * float) list ->
    ?renewal_delay_prob:float ->
    unit ->
    result
  (** [leader_crash_offsets] (seconds after cluster start — relative, so
      the caller need not know the virtual clock) schedules leader
      fail-stops; [lease_partition_offsets] are half-open windows during
      which the lease store is unreachable; [renewal_delay_prob] makes
      renewals tardy (up to half a tick). Defaults: 3 members, 50 ms
      lease TTL, 10 ms ticks, no chaos — the degenerate single-leader
      run every comparison baselines against. *)

  type comparison = {
    interrupted : result;
    uninterrupted : result;
    digests_match : bool;
  }

  val crash_vs_uninterrupted :
    ?seed:int ->
    ?profile:Dsim.Mgmt_fault.profile ->
    ?members:int ->
    ?leader_crash_offsets:float list ->
    unit ->
    comparison
  (** The HA acceptance experiment: the same seeded rollout run twice —
      once with the leader killed mid-deployment (default: one crash
      20 ms in) and completed by a standby, once untouched — and the
      final forwarding state compared bit for bit. *)
end

(** Data-plane chaos with and without graceful restart: the expansion Clos
    under the {!Dsim.Fault.severe} message-fault profile plus mid-window
    speaker restarts (the route origin itself, then an FA), with session
    liveness timers running ({!Bgp.Network.enable_liveness}) and the
    {!Centralium.Invariant} monitor sampling throughout. Traffic loss is
    integrated over the FIB timeline into blackhole-seconds / loss-seconds
    ({!Dataplane.Metrics.loss_integrals}). Running both modes at identical
    seeds isolates the effect of RFC 4724 stale retention: the GR run's
    blackhole-seconds must be strictly lower (fail-static, quantified).
    After the chaos window the transport is healed and all sessions
    re-established, so both modes must reach a violation-free quiescent
    state. *)
module Chaos : sig
  type mode_result = {
    gr : bool;
    blackhole_seconds : float;
        (** integral of the black-holed demand fraction over the window *)
    loss_seconds : float;  (** same, for dropped + looped demand *)
    window : float;  (** width of the integration window, seconds *)
    messages_dropped : int;
    keepalives_sent : int;
    hold_expiries : int;  (** sessions torn down by the hold timer *)
    reconnects : int;
    stale_sweeps : int;  (** stale-path timer sweeps that removed routes *)
    speaker_restarts : int;
    transient_violations : (float * string) list;
    final_violations : (int option * Net.Prefix.t option * string) list;
        (** must be empty: the healed network has no excuse *)
    trace_events : int;
    fib_digest : string;
    loss_segments : Dataplane.Metrics.loss_segment list;
        (** the piecewise decomposition the integrals summed (default
            route), for joining loss intervals to causal events *)
  }

  type result = {
    gr_on : mode_result;
    gr_off : mode_result;
    gr_wins : bool;
        (** gr_on.blackhole_seconds < gr_off.blackhole_seconds — the
            acceptance criterion *)
  }

  val horizon : float

  val run_mode :
    ?seed:int ->
    ?profile:Dsim.Fault.profile ->
    ?eval_mode:Bgp.Speaker.eval_mode ->
    gr:bool ->
    unit ->
    mode_result
  (** [eval_mode] selects the speakers' decision pipeline (default
      {!Bgp.Speaker.Incremental}); results are bit-identical across modes
      at the same seed — the oracle-parity tests rely on this. *)

  val run :
    ?seed:int ->
    ?profile:Dsim.Fault.profile ->
    ?eval_mode:Bgp.Speaker.eval_mode ->
    unit ->
    result
  (** Both GR modes at the same seed. *)
end

(** Section 6.4 / Figure 13: effective capacity of ECMP vs RPA-TE vs ideal
    WCMP across maintenance events. *)
module Fig13 : sig
  type event = {
    event_id : int;
    drained_links : int;
    ecmp_capacity : float;
    rpa_capacity : float;
    ideal_capacity : float;
  }

  type result = {
    events : event list;
    mean_rpa_over_ideal : float;   (** expect close to 1.0 *)
    mean_ecmp_over_ideal : float;  (** expect well below 1.0 *)
    unblocked_fraction : float;
        (** fraction of events where the demand fits under RPA-TE but not
            under ECMP — maintenance that TE unblocks (Section 6.4 reports
            up to 45%) *)
  }

  val run : ?seed:int -> ?events:int -> ?levels:int -> unit -> result
  (** [levels] is the link-bandwidth quantization granularity used for the
      RPA-TE comparator (default 64). Sweeping it shows how much expressive
      precision the RPA weight encoding needs to track the ideal. *)
end

(** The 24/7 fleet: back-to-back seeded migrations with admission control,
    queueing, replica catch-up and the SLO watchdog, over a compressed
    simulated day ([hour_s] virtual seconds per represented hour). Every
    [canary_every]-th job (default 3 — deliberately coprime with
    [jobs_per_hour], so canaries cycle through burst positions instead of
    always landing on the shed slot) is a deliberately unsatisfiable
    min-next-hop
    guard whose blackhole the watchdog must catch and auto-roll-back.
    Deterministic: the same seed yields a bit-identical report — queue
    order, shed set and final FIB digest — with or without a leader crash
    from [leader_crash_offsets]. *)
module Continuous : sig
  type job = {
    job_index : int;  (** submission index, in submission order *)
    job_name : string;
    job_tenant : string;
    job_class : string;
    job_canary : bool;
    job_seq : int option;  (** queue ticket; [None] when shed *)
    job_shed_reason : string option;
    job_outcome : string option;  (** terminal outcome of executed jobs *)
    job_queue_wait_s : float;  (** virtual submit-to-start wait *)
    job_convergence_s : float;  (** virtual start-to-converged duration *)
    job_remediation : string option;
        (** the journal's remediation record when the watchdog rolled the
            job back *)
  }

  type report = {
    hours : int;
    hour_s : float;
    submitted : int;
    admitted : int;
    shed : int;
    completed : int;
    rolled_back : int;
    shed_rate : float;
    rollback_rate : float;
    plans_per_hour : float;
    convergence_p50_s : float;
    convergence_p99_s : float;
    queue_wait_p99_s : float;
    blackhole_seconds_per_day : float;
        (** normalized to a represented 24h day *)
    replica_lag_p99 : float;  (** ops behind, sampled before every flush *)
    replica_lag_peak : int;
    snapshot_ships : int;
    elections : int;
    queue_recoveries : int;
        (** queue rebuilds from the opsq journal after a takeover *)
    remediations : int;
    unremediated_violations : int;
        (** invariant violations left standing by a job that was not
            rolled back, plus any at the end of the horizon — the
            acceptance gate is zero *)
    queue_order : int list;  (** queue seq of every started job, in order *)
    shed_set : int list;  (** submission indices shed, in order *)
    fib_digest : string;
    jobs : job list;
  }

  val default_queue_config : Centralium.Ops.config
  (** Deliberately small ([max_queue = 4], [per_tenant = 2],
      [per_class = 3]) so hourly bursts exercise real backpressure. *)

  val run :
    ?seed:int ->
    ?hours:int ->
    ?jobs_per_hour:int ->
    ?hour_s:float ->
    ?members:int ->
    ?profile:Dsim.Mgmt_fault.profile ->
    ?leader_crash_offsets:float list ->
    ?canary_every:int ->
    ?queue_config:Centralium.Ops.config ->
    unit ->
    report
  (** Defaults: seed 42, 24 hours, 5 jobs/hour, 0.5 s/hour, 2 members,
      flaky management profile, no crashes, canary every 3rd job. *)
end
