type run_summary = {
  scenario : string;
  seed : int;
  lines : int;
  events : int;
  spans : int;
  dropped_spans : int;
  headline : (string * Obs.Json.t) list;
}

(* ---------------- Git revision ---------------- *)

let read_first_line path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> None
        | line -> Some (String.trim line))

let packed_ref refname =
  match open_in ".git/packed-refs" with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let found = ref None in
        (try
           while !found = None do
             let line = input_line ic in
             match String.index_opt line ' ' with
             | Some i
               when String.sub line (i + 1) (String.length line - i - 1)
                    = refname ->
               found := Some (String.sub line 0 i)
             | Some _ | None -> ()
           done
         with End_of_file -> ());
        !found)

let git_rev () =
  match read_first_line ".git/HEAD" with
  | None -> "unknown"
  | Some head ->
    if String.length head > 5 && String.sub head 0 5 = "ref: " then begin
      let refname = String.sub head 5 (String.length head - 5) in
      match read_first_line (Filename.concat ".git" refname) with
      | Some sha -> sha
      | None -> Option.value (packed_ref refname) ~default:"unknown"
    end
    else head (* detached HEAD: the line is the sha itself *)

(* ---------------- Scenario table ---------------- *)

let f x = Obs.Json.Float x
let i x = Obs.Json.Int x
let b x = Obs.Json.Bool x

(* Each entry: (name, topology description, runner). The runner returns the
   headline figures plus whatever trace events the scenario retained. *)
let specs :
    (string * string * (seed:int -> (string * Obs.Json.t) list * Bgp.Trace.event list))
    list =
  [
    ( "fig2",
      "expansion Clos: FAv1 planes plus the first FAv2",
      fun ~seed ->
        let r = Scenarios.Fig2.run ~seed () in
        ( [
            ("baseline_funnel", f r.Scenarios.Fig2.baseline_funnel);
            ("native_fav2_share", f r.native_fav2_share);
            ("rpa_fav2_share", f r.rpa_fav2_share);
            ("balanced_share", f r.balanced_share);
            ("rpa_loss", f r.rpa_loss);
          ],
          [] ) );
    ( "fig4",
      "decommission mesh: 4 planes x 8 grids x 4 FADUs",
      fun ~seed ->
        let r = Scenarios.Fig4.run ~seed () in
        ( [
            ("steady_share", f r.Scenarios.Fig4.steady_share);
            ("native_worst_funnel", f r.native_worst_funnel);
            ("rpa_worst_funnel", f r.rpa_worst_funnel);
          ],
          [] ) );
    ( "fig5",
      "WCMP convergence pod: DU under EB maintenance",
      fun ~seed ->
        let r = Scenarios.Fig5.run ~seed () in
        ( [
            ("prefixes", i r.Scenarios.Fig5.prefixes);
            ("du_nhg_native", i r.du_nhg_native);
            ("du_nhg_rpa", i r.du_nhg_rpa);
            ("theoretical_bound", i r.theoretical_bound);
          ],
          [] ) );
    ( "fig9",
      "mixed-dissemination ring (R0..R6)",
      fun ~seed ->
        let r = Scenarios.Fig9.run ~seed () in
        ( [
            ( "loops_with_best_advertised",
              i (List.length r.Scenarios.Fig9.loops_with_best_advertised) );
            ("circulating_bad", f r.circulating_bad);
            ("ttl_loss_bad", f r.ttl_loss_bad);
            ("loops_with_rule", i (List.length r.loops_with_rule));
            ("circulating_good", f r.circulating_good);
            ("ttl_loss_good", f r.ttl_loss_good);
          ],
          [] ) );
    ( "fig10",
      "rollout FA/DMAG fabric",
      fun ~seed ->
        let r = Scenarios.Fig10.run ~seed () in
        ( [
            ("funnel_top_down", f r.Scenarios.Fig10.funnel_top_down);
            ("funnel_bottom_up", f r.funnel_bottom_up);
            ("balanced", f r.balanced);
          ],
          [] ) );
    ( "fig13",
      "TE instance: 4 FAUUs x 4 EBs, heterogeneous uplinks",
      fun ~seed ->
        let r = Scenarios.Fig13.run ~seed () in
        ( [
            ("events", i (List.length r.Scenarios.Fig13.events));
            ("mean_rpa_over_ideal", f r.mean_rpa_over_ideal);
            ("mean_ecmp_over_ideal", f r.mean_ecmp_over_ideal);
            ("unblocked_fraction", f r.unblocked_fraction);
          ],
          [] ) );
    ( "fig14",
      "SEV topology: SSW guard vs a bad FA origination",
      fun ~seed ->
        let r = Scenarios.Fig14.run ~seed () in
        ( [
            ("blackholed_with_knob", f r.Scenarios.Fig14.blackholed_with_knob);
            ("blackholed_without_knob", f r.blackholed_without_knob);
            ("propagated_past_ssw", b r.propagated_past_ssw);
          ],
          [] ) );
    ( "faulted",
      "expansion Clos under a seeded fault schedule",
      fun ~seed ->
        let r = Scenarios.Faulted.run ~seed () in
        ( [
            ("events_executed", i r.Scenarios.Faulted.events_executed);
            ("messages_dropped", i r.messages_dropped);
            ("speaker_restarts", i r.speaker_restarts);
            ( "transient_violations",
              i (List.length r.transient_violations) );
            ("final_violations", i (List.length r.final_violations));
            ( "schedule_actions",
              i (List.length r.schedule) );
          ],
          r.trace ) );
    ( "faulted_deploy",
      "expansion equalizer rollout under management-plane chaos",
      fun ~seed ->
        let r =
          Scenarios.Faulted_deploy.run ~seed
            ~crash_after_ops:(12 + (seed mod 7)) ()
        in
        ( [
            ("outcome", Obs.Json.String r.Scenarios.Faulted_deploy.outcome);
            ("applied", i r.applied);
            ("skipped_in_sync", i r.skipped_in_sync);
            ("retries", i r.retries);
            ("backoffs", i (List.length r.backoff_seconds));
            ("crashed", b r.crashed);
            ("resumed", b r.resumed);
            ("gave_up", i (List.length r.gave_up));
            ("unreachable", i (List.length r.unreachable));
            ( "transient_violations",
              i (List.length r.transient_violations) );
            ("phase_violations", i (List.length r.phase_violations));
            ("final_violations", i (List.length r.final_violations));
            ("fib_digest", Obs.Json.String r.fib_digest);
          ],
          [] ) );
    ( "chaos_gr",
      "expansion Clos under severe message faults and speaker restarts, \
       session liveness on, graceful restart on vs off",
      fun ~seed ->
        let r = Scenarios.Chaos.run ~seed () in
        let mode prefix (m : Scenarios.Chaos.mode_result) =
          [
            (prefix ^ "blackhole_seconds", f m.blackhole_seconds);
            (prefix ^ "loss_seconds", f m.loss_seconds);
            (prefix ^ "messages_dropped", i m.messages_dropped);
            (prefix ^ "hold_expiries", i m.hold_expiries);
            (prefix ^ "reconnects", i m.reconnects);
            (prefix ^ "stale_sweeps", i m.stale_sweeps);
            ( prefix ^ "transient_violations",
              i (List.length m.transient_violations) );
            (prefix ^ "final_violations", i (List.length m.final_violations));
            (prefix ^ "fib_digest", Obs.Json.String m.fib_digest);
          ]
        in
        ( mode "gr_on_" r.Scenarios.Chaos.gr_on
          @ mode "gr_off_" r.gr_off
          @ [
              ("window", f r.gr_on.window);
              ("keepalives_sent", i r.gr_on.keepalives_sent);
              ("gr_wins", b r.gr_wins);
            ],
          [] ) );
  ]

let scenario_names = List.map (fun (n, _, _) -> n) specs

(* ---------------- Export ---------------- *)

let tagged tag = function
  | Obs.Json.Obj fields -> Obs.Json.Obj (("type", Obs.Json.String tag) :: fields)
  | j -> Obs.Json.Obj [ ("type", Obs.Json.String tag); ("value", j) ]

let run ?(seed = 42) ~scenario ~write () =
  match List.find_opt (fun (n, _, _) -> n = scenario) specs with
  | None ->
    Error
      (Printf.sprintf "unknown scenario %S (valid: %s)" scenario
         (String.concat ", " scenario_names))
  | Some (name, topology, exec) ->
    let registry = Obs.Metrics.default in
    let was_enabled = Obs.Metrics.is_enabled registry in
    Obs.Metrics.reset registry;
    Obs.Metrics.set_enabled registry true;
    Fun.protect
      ~finally:(fun () -> Obs.Metrics.set_enabled registry was_enabled)
      (fun () ->
        let recorder = Obs.Span.create () in
        let headline, events =
          Obs.Span.with_recorder recorder (fun () -> exec ~seed)
        in
        let lines = ref 0 in
        let emit j =
          incr lines;
          write (Obs.Json.to_string j)
        in
        emit
          (Obs.Json.Obj
             [
               ("type", Obs.Json.String "manifest");
               ("schema_version", Obs.Json.Int 1);
               ("scenario", Obs.Json.String name);
               ("seed", Obs.Json.Int seed);
               ("topology", Obs.Json.String topology);
               ("git_rev", Obs.Json.String (git_rev ()));
             ]);
        List.iter (fun e -> emit (Bgp.Trace.event_to_json e)) events;
        (* Chaos schedules or caught exceptions can leave scopes open at the
           export point; force-close them so the span tree is well-formed. *)
        Obs.Span.close_open recorder;
        let spans = Obs.Span.spans recorder in
        List.iter (fun s -> emit (tagged "span" (Obs.Span.span_to_json s))) spans;
        emit
          (Obs.Json.Obj
             [
               ("type", Obs.Json.String "metrics");
               ("snapshot", Obs.Metrics.snapshot registry);
             ]);
        emit
          (Obs.Json.Obj
             [
               ("type", Obs.Json.String "summary");
               ("scenario", Obs.Json.String name);
               ("seed", Obs.Json.Int seed);
               ("events", Obs.Json.Int (List.length events));
               ("spans", Obs.Json.Int (List.length spans));
               ("dropped_spans", Obs.Json.Int (Obs.Span.dropped recorder));
               ("headline", Obs.Json.Obj headline);
             ]);
        Ok
          {
            scenario = name;
            seed;
            lines = !lines;
            events = List.length events;
            spans = List.length spans;
            dropped_spans = Obs.Span.dropped recorder;
            headline;
          })
