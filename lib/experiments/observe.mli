(** Structured run export: replay a scenario under full instrumentation and
    stream the run as JSONL.

    One call to {!run} enables the shared {!Obs.Metrics.default} registry,
    installs a fresh span recorder, executes the named scenario, and emits
    one JSON object per line in this order:

    - a [manifest] line: [schema_version], [scenario], [seed], [topology]
      (human description), [git_rev] (read from [.git/HEAD], ["unknown"]
      outside a checkout);
    - zero or more trace-event lines ({!Bgp.Trace.event_to_json}: type tags
      [fib_change], [message_sent], [message_dropped], [speaker_restarted],
      [violation]) — currently only the [faulted] scenario retains its full
      trace;
    - one [span] line per completed span ({!Obs.Span.span_to_json} plus the
      type tag), in start order;
    - one [metrics] line carrying {!Obs.Metrics.snapshot};
    - one final [summary] line with the scenario's headline figures.

    Every line is self-describing via its ["type"] field, so consumers can
    filter with nothing but a JSON parser. *)

type run_summary = {
  scenario : string;
  seed : int;
  lines : int;  (** total JSONL lines emitted *)
  events : int;  (** trace-event lines *)
  spans : int;  (** completed spans recorded *)
  dropped_spans : int;  (** spans beyond the recorder cap *)
  headline : (string * Obs.Json.t) list;
      (** the scenario's key figures (same content as the summary line) *)
}

val scenario_names : string list
(** Every name {!run} accepts: the figure reproductions ([fig2], [fig4],
    [fig5], [fig9], [fig10], [fig13], [fig14]) and [faulted]. *)

val git_rev : unit -> string
(** The commit the working directory is on, resolved by reading
    [.git/HEAD] (and the ref file or [.git/packed-refs] it points to);
    ["unknown"] when not run from a checkout root. *)

val run :
  ?seed:int ->
  scenario:string ->
  write:(string -> unit) ->
  unit ->
  (run_summary, string) result
(** [run ~scenario ~write ()] replays [scenario] (default [seed] 42) and
    calls [write] once per JSONL line (line content only, no newline).
    [Error] names the unknown scenario and lists the valid ones. The shared
    metrics registry is reset, enabled for the duration, and restored to
    its previous enablement afterwards. *)
