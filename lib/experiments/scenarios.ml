let backbone_community = Net.Community.Well_known.backbone_default_route

let tagged_attr () =
  Net.Attr.make ~communities:(Net.Community.Set.singleton backbone_community) ()

let deploy_rpa net device rpa =
  let engine = Centralium.Engine.create rpa in
  (* Guard firings are part of the run's observable history: record each
     MNH-forced withdrawal in the trace alongside invariant violations. *)
  Centralium.Engine.set_on_withdraw engine
    (Some
       (fun ~prefix ~statement ->
         Bgp.Trace.record (Bgp.Network.trace net)
           (Bgp.Trace.Violation
              {
                time = Bgp.Network.now net;
                device = Some device;
                prefix = Some prefix;
                kind = "mnh-withdraw";
                detail =
                  Printf.sprintf
                    "BgpNativeMinNextHop guard of statement %S forced a \
                     withdrawal"
                    statement;
              })));
  Bgp.Network.set_hooks net device (Centralium.Engine.hooks engine)

let deploy_plan net (plan : Centralium.Controller.plan) =
  List.iter
    (fun (device, rpa) -> deploy_rpa net device rpa)
    plan.Centralium.Controller.rpas

let funnel_of net prefix ~demands ~members =
  let result = Dataplane.Traffic.route_prefix net prefix ~demands in
  let total = Dataplane.Traffic.total_demand demands in
  Dataplane.Metrics.funneling result ~members ~total

(* ------------------------------------------------------------------ *)

module Fig2 = struct
  type result = {
    baseline_funnel : float;
    native_fav2_share : float;
    rpa_fav2_share : float;
    balanced_share : float;
    rpa_loss : float;
  }

  let run ?(seed = 42) ?faults () =
    Obs.Span.with_span "scenario.fig2"
      ~attrs:(fun () -> [ ("seed", string_of_int seed) ])
    @@ fun () ->
    let default = Net.Prefix.default_v4 in
    let with_faults net =
      Option.iter
        (fun prof ->
          Bgp.Network.set_fault net
            (Some (Dsim.Fault.create ~seed:(seed + 100) prof)))
        faults
    in
    (* Initial state: FAv1 + Edge only. *)
    let x0 = Topology.Clos.expansion () in
    let demands_of x = List.map (fun f -> (f, 1.0)) x.Topology.Clos.xfsws in
    let net0 = Bgp.Network.create ~seed x0.Topology.Clos.xgraph in
    with_faults net0;
    Bgp.Network.originate net0 x0.backbone default (tagged_attr ());
    ignore (Bgp.Network.converge net0);
    let baseline_funnel =
      funnel_of net0 default ~demands:(demands_of x0) ~members:x0.fav1
    in
    (* Transitory state A: the first FAv2 is activated. *)
    let x = Topology.Clos.expansion () in
    let fav2 = Topology.Clos.add_fav2 x in
    let fa_members = x.fav1 @ [ fav2 ] in
    let run_case ~with_rpa =
      let net = Bgp.Network.create ~seed:(seed + 1) x.xgraph in
      with_faults net;
      if with_rpa then deploy_plan net (Centralium.Apps.Expansion_equalizer.plan x);
      Bgp.Network.originate net x.backbone default (tagged_attr ());
      ignore (Bgp.Network.converge net);
      let result = Dataplane.Traffic.route_prefix net default ~demands:(demands_of x) in
      let total = Dataplane.Traffic.total_demand (demands_of x) in
      ( Dataplane.Metrics.transit_share result ~device:fav2 ~total,
        Dataplane.Metrics.loss_fraction result ~total )
    in
    let native_fav2_share, _ = run_case ~with_rpa:false in
    let rpa_fav2_share, rpa_loss = run_case ~with_rpa:true in
    {
      baseline_funnel;
      native_fav2_share;
      rpa_fav2_share;
      balanced_share = 1.0 /. float_of_int (List.length fa_members);
      rpa_loss;
    }
end

(* ------------------------------------------------------------------ *)

module Fig4 = struct
  type result = {
    steady_share : float;
    native_worst_funnel : float;
    rpa_worst_funnel : float;
  }

  let decommissioned_number = 1

  let run_case ?faults ~seed ~guard () =
    let default = Net.Prefix.default_v4 in
    let run_case' () =
      let d = Topology.Clos.decommission ~planes:4 ~grids:8 ~per:4 () in
      let net = Bgp.Network.create ~seed d.Topology.Clos.dgraph in
      Option.iter
        (fun prof ->
          Bgp.Network.set_fault net
            (Some (Dsim.Fault.create ~seed:(seed + 100) prof)))
        faults;
      let ssw1s = Topology.Clos.ssws_numbered d decommissioned_number in
      let fadu1s = Topology.Clos.fadus_numbered d decommissioned_number in
      (match guard with
       | None -> ()
       | Some fraction ->
         let plan =
           Centralium.Apps.Decommission_guard.plan d.dgraph
             ~destination:Centralium.Destination.backbone_default
             ~threshold:(Centralium.Path_selection.Fraction fraction)
             ~decommissioned:ssw1s ~origination_layer:Topology.Node.Eb
         in
         deploy_plan net plan);
      Bgp.Network.originate net d.north_origin default (tagged_attr ());
      ignore (Bgp.Network.converge net);
      let demands = [ (d.south_origin, 16.0) ] in
      let total = Dataplane.Traffic.total_demand demands in
      let steady =
        let result = Dataplane.Traffic.route_prefix net default ~demands in
        Dataplane.Metrics.funneling result ~members:fadu1s ~total
      in
      (* Drain the FADU-1s asynchronously and watch the transient FIBs. *)
      let initial = Bgp.Network.fib_snapshot net default in
      Bgp.Trace.clear (Bgp.Network.trace net);
      List.iteri
        (fun i fadu ->
          Bgp.Network.drain_device ~delay:(float_of_int i *. 0.002) net fadu)
        fadu1s;
      ignore (Bgp.Network.converge net);
      let timeline =
        Bgp.Trace.fib_timeline (Bgp.Network.trace net) ~prefix:default ~initial
      in
      let worst, _ =
        Dataplane.Metrics.max_funneling_over_timeline ~timeline ~demands
          ~members:fadu1s
      in
      (steady, worst)
    in
    run_case' ()

  let run ?(seed = 42) ?faults () =
    Obs.Span.with_span "scenario.fig4"
      ~attrs:(fun () -> [ ("seed", string_of_int seed) ])
    @@ fun () ->
    let steady_share, native_worst_funnel = run_case ?faults ~seed ~guard:None () in
    let _, rpa_worst_funnel = run_case ?faults ~seed ~guard:(Some 0.75) () in
    { steady_share; native_worst_funnel; rpa_worst_funnel }

  let sweep ?(seed = 42) ~thresholds () =
    List.map
      (fun guard ->
        let _, worst = run_case ~seed ~guard () in
        (guard, worst))
      thresholds
end

(* ------------------------------------------------------------------ *)

module Fig5 = struct
  type result = {
    prefixes : int;
    du_nhg_native : int;
    du_nhg_rpa : int;
    theoretical_bound : int;
  }

  let prefix_of i = Net.Prefix.v4 10 (i / 256) (i mod 256) 0 24

  let run ?(seed = 42) ?(prefixes = 48) () =
    Obs.Span.with_span "scenario.fig5"
      ~attrs:(fun () -> [ ("seed", string_of_int seed) ])
    @@ fun () ->
    let run_case ~with_rpa =
      let w = Topology.Clos.wcmp_convergence () in
      let du = List.nth w.Topology.Clos.dus 0 in
      let config = { Bgp.Speaker.default_config with wcmp = true } in
      let net = Bgp.Network.create ~seed ~config w.wgraph in
      if with_rpa then begin
        (* Prescribe the traffic distribution a priori: every UU path
           carries weight 1 regardless of what capacity the distributed
           control plane would derive. *)
        let rpa =
          Centralium.Rpa.make
            ~route_attribute:
              [
                Centralium.Route_attribute.make ~name:"freeze"
                  [
                    Centralium.Route_attribute.statement ~default_weight:1
                      (Centralium.Destination.Prefixes
                         [ Net.Prefix.of_string_exn "10.0.0.0/8" ])
                      [];
                  ];
              ]
            ()
        in
        deploy_rpa net du rpa
      end;
      (* All EBs originate the same N prefixes. *)
      for i = 0 to prefixes - 1 do
        List.iter
          (fun eb -> Bgp.Network.originate net eb (prefix_of i) (Net.Attr.make ()))
          w.ebs
      done;
      ignore (Bgp.Network.converge net);
      (* Snapshot the steady FIB so the replay counts unchanged prefixes'
         groups too. *)
      let initial = Bgp.Speaker.fib (Bgp.Network.speaker net du) in
      Bgp.Trace.clear (Bgp.Network.trace net);
      (* EB1 and EB2 transition from LIVE to MAINTENANCE asynchronously. *)
      (match w.ebs with
       | eb1 :: eb2 :: _ ->
         Bgp.Network.drain_device ~delay:0.0 net eb1;
         Bgp.Network.drain_device ~delay:0.003 net eb2
       | _ -> invalid_arg "Fig5: need at least two EBs");
      ignore (Bgp.Network.converge net);
      Dataplane.Nhg.max_on_device ~initial (Bgp.Network.trace net) ~device:du
    in
    let du_nhg_native = run_case ~with_rpa:false in
    let du_nhg_rpa = run_case ~with_rpa:true in
    {
      prefixes;
      du_nhg_native;
      du_nhg_rpa;
      (* Up to 4 transitory per-UU states, seen independently over the
         DU's 8 sessions. *)
      theoretical_bound = 4 * 4 * 4 * 4 * 4 * 4 * 4 * 4;
    }
end

(* ------------------------------------------------------------------ *)

module Fig9 = struct
  type result = {
    loops_with_best_advertised : int list list;
    circulating_bad : float;
    ttl_loss_bad : float;
    loops_with_rule : int list list;
    circulating_good : float;
    ttl_loss_good : float;
  }

  let prefix_d = Net.Prefix.of_string_exn "203.0.113.0/24"

  let run ?(seed = 42) () =
    Obs.Span.with_span "scenario.fig9"
      ~attrs:(fun () -> [ ("seed", string_of_int seed) ])
    @@ fun () ->
    let run_case ~advertise_least_favorable =
      let m = Topology.Clos.mixed_dissemination () in
      let net = Bgp.Network.create ~seed m.mgraph in
      let r = m.Topology.Clos.r in
      let asn_of d = (Topology.Graph.node m.mgraph d).Topology.Node.asn in
      (* R6 load-balances prefix D over R2 and R5 (Figure 9). *)
      let rpa =
        Centralium.Rpa.make ~advertise_least_favorable
          ~path_selection:
            [
              Centralium.Path_selection.make
                [
                  Centralium.Path_selection.statement
                    ~path_sets:
                      [
                        Centralium.Path_selection.path_set ~name:"r2-r5"
                          (Centralium.Signature.make
                             ~neighbor_asns:[ asn_of r.(2); asn_of r.(5) ]
                             ());
                      ]
                    (Centralium.Destination.Prefixes [ prefix_d ]);
                ];
            ]
          ()
      in
      deploy_rpa net r.(6) rpa;
      Bgp.Network.originate net m.origin prefix_d (Net.Attr.make ());
      ignore (Bgp.Network.converge net);
      let devices =
        List.map (fun n -> n.Topology.Node.id) (Topology.Graph.nodes m.mgraph)
      in
      let loops =
        Dataplane.Metrics.find_forwarding_loops
          ~lookup:(fun d -> Bgp.Network.fib net d prefix_d)
          ~devices
      in
      let demands = [ (r.(6), 1.0); (r.(3), 1.0) ] in
      let result = Dataplane.Traffic.route_prefix net prefix_d ~demands in
      let load a b =
        Option.value
          (Hashtbl.find_opt result.Dataplane.Traffic.link_load (a, b))
          ~default:0.0
      in
      (* Traffic on the R5-R6 link in both directions at once = packets
         circulating between the two. *)
      let circulating = Float.min (load r.(5) r.(6)) (load r.(6) r.(5)) in
      (* Discrete flows with a TTL: bouncers between R5 and R6 expire. *)
      let flows =
        List.concat_map
          (fun src -> List.init 100 (fun i -> (src, (src * 1000) + i)))
          [ r.(6); r.(3) ]
      in
      let flow_result =
        Dataplane.Flowsim.run
          ~lookup:(fun d -> Bgp.Network.fib net d prefix_d)
          ~flows ()
      in
      (loops, circulating, Dataplane.Flowsim.loss_fraction flow_result)
    in
    let loops_with_best_advertised, circulating_bad, ttl_loss_bad =
      run_case ~advertise_least_favorable:false
    in
    let loops_with_rule, circulating_good, ttl_loss_good =
      run_case ~advertise_least_favorable:true
    in
    { loops_with_best_advertised; circulating_bad; ttl_loss_bad;
      loops_with_rule; circulating_good; ttl_loss_good }
end

(* ------------------------------------------------------------------ *)

module Fig10 = struct
  type result = {
    funnel_top_down : float;
    funnel_bottom_up : float;
    balanced : float;
  }

  let run ?(seed = 42) () =
    Obs.Span.with_span "scenario.fig10"
      ~attrs:(fun () -> [ ("seed", string_of_int seed) ])
    @@ fun () ->
    let default = Net.Prefix.default_v4 in
    let fresh () =
      let r = Topology.Clos.rollout () in
      let net = Bgp.Network.create ~seed r.rgraph in
      Bgp.Network.originate net r.rbackbone default (tagged_attr ());
      ignore (Bgp.Network.converge net);
      (r, net)
    in
    let plan_for (r : Topology.Clos.rollout) =
      Centralium.Apps.Path_equalize.plan r.rgraph
        ~destination:Centralium.Destination.backbone_default
        ~origin_asn:(Topology.Graph.node r.rgraph r.rbackbone).Topology.Node.asn
        ~targets:(r.rfsws @ r.rssws @ r.rfas)
        ~origination_layer:Topology.Node.Eb
    in
    let rpa_of plan device = List.assoc device plan.Centralium.Controller.rpas in
    let measure (r : Topology.Clos.rollout) net =
      let demands = List.map (fun f -> (f, 1.0)) r.rfsws in
      funnel_of net default ~demands ~members:r.rfas
    in
    (* Uncoordinated: the RPA takes effect on FA1 first. *)
    let funnel_top_down =
      let r, net = fresh () in
      let plan = plan_for r in
      (match r.rfas with
       | fa1 :: _ -> deploy_rpa net fa1 (rpa_of plan fa1)
       | [] -> invalid_arg "Fig10: no FAs");
      ignore (Bgp.Network.converge net);
      let worst = measure r net in
      (* Finish the rollout; the funnel persists only until then. *)
      List.iter
        (fun (d, rpa) -> deploy_rpa net d rpa)
        plan.Centralium.Controller.rpas;
      ignore (Bgp.Network.converge net);
      worst
    in
    (* Safe order: bottom-up phases, converging between phases, watching
       the funnel at every checkpoint (including mid-FA-phase). *)
    let funnel_bottom_up =
      let r, net = fresh () in
      let plan = plan_for r in
      let worst = ref (measure r net) in
      let checkpoint () = worst := Float.max !worst (measure r net) in
      List.iter
        (fun phase ->
          List.iter
            (fun device ->
              deploy_rpa net device (rpa_of plan device);
              ignore (Bgp.Network.converge net);
              checkpoint ())
            phase)
        plan.Centralium.Controller.phases;
      !worst
    in
    let r = Topology.Clos.rollout () in
    {
      funnel_top_down;
      funnel_bottom_up;
      balanced = 1.0 /. float_of_int (List.length r.rfas);
    }
end

(* ------------------------------------------------------------------ *)

module Fig14 = struct
  type result = {
    blackholed_with_knob : float;
    blackholed_without_knob : float;
    propagated_past_ssw : bool;
  }

  let specific = Net.Prefix.of_string_exn "10.0.0.0/8"
  let host = Net.Prefix.v4 10 1 2 3 32

  let run ?(seed = 42) () =
    Obs.Span.with_span "scenario.fig14"
      ~attrs:(fun () -> [ ("seed", string_of_int seed) ])
    @@ fun () ->
    let run_case ~keep_fib_warm =
      let s = Topology.Clos.sev () in
      let net = Bgp.Network.create ~seed s.sgraph in
      Bgp.Network.originate net s.sbackbone Net.Prefix.default_v4 (tagged_attr ());
      ignore (Bgp.Network.converge net);
      (* The protective RPA was pre-deployed on SSWs and FSWs: only
         advertise routes of this destination group when >= 75% of the FA
         uplinks provide them. *)
      let guard =
        Centralium.Apps.Min_next_hop_guard.rpa
          ~destination:Centralium.Destination.backbone_default
          ~threshold:(Centralium.Path_selection.Fraction 0.75) ~keep_fib_warm
      in
      List.iter (fun d -> deploy_rpa net d guard) (s.sssws @ s.sfsws);
      ignore (Bgp.Network.converge net);
      (* The not-production-ready FA unexpectedly originates the new, more
         specific route. *)
      Bgp.Network.originate net s.bad_fa specific (tagged_attr ());
      ignore (Bgp.Network.converge net);
      let demands = List.map (fun f -> (f, 1.0)) s.sfsws in
      let result = Dataplane.Traffic.route_destination net host ~demands in
      let total = Dataplane.Traffic.total_demand demands in
      let blackholed =
        Option.value
          (Hashtbl.find_opt result.Dataplane.Traffic.delivered_at s.bad_fa)
          ~default:0.0
        /. total
      in
      let propagated =
        List.exists (fun f -> Bgp.Network.fib net f specific <> None) s.sfsws
      in
      (blackholed, propagated)
    in
    let blackholed_with_knob, leaked1 = run_case ~keep_fib_warm:true in
    let blackholed_without_knob, leaked2 = run_case ~keep_fib_warm:false in
    {
      blackholed_with_knob;
      blackholed_without_knob;
      propagated_past_ssw = leaked1 || leaked2;
    }
end

(* ------------------------------------------------------------------ *)

module Faulted = struct
  type result = {
    schedule : Dsim.Fault.schedule;
    events_executed : int;
    messages_dropped : int;
    speaker_restarts : int;
    transient_violations : (float * string) list;
    final_violations : (int option * Net.Prefix.t option * string) list;
    trace : Bgp.Trace.event list;
  }

  let horizon = 0.05

  let run ?(seed = 42) ?(profile = Dsim.Fault.light) ?(flaps = 4)
      ?(restarts = 1) () =
    Obs.Span.with_span "scenario.faulted"
      ~attrs:(fun () -> [ ("seed", string_of_int seed) ])
    @@ fun () ->
    let default = Net.Prefix.default_v4 in
    let x = Topology.Clos.expansion () in
    let net = Bgp.Network.create ~seed x.Topology.Clos.xgraph in
    (* Independent seeds: the message-fate stream, the control-fault
       schedule, and the latency stream never share an RNG, so any one can
       be changed without perturbing the others. *)
    Bgp.Network.set_fault net
      (Some (Dsim.Fault.create ~seed:(seed + 1) profile));
    let links =
      List.map
        (fun (l : Topology.Graph.link) -> (l.Topology.Graph.a, l.Topology.Graph.b))
        (Topology.Graph.links x.xgraph)
    in
    let devices =
      List.map (fun n -> n.Topology.Node.id) (Topology.Graph.nodes x.xgraph)
    in
    let schedule =
      Dsim.Fault.random_schedule ~seed:(seed + 2) ~links ~devices ~horizon
        ~flaps ~restarts ()
    in
    Bgp.Network.originate net x.backbone default (tagged_attr ());
    Bgp.Network.apply_schedule net schedule;
    (* Sample the invariants through the whole fault window (plus slack for
       the last recoveries to land). *)
    Centralium.Invariant.monitor ~period:0.005 ~until:(horizon +. 0.03) net;
    let events_executed = Bgp.Network.converge net in
    let trace_log = Bgp.Network.trace net in
    let transient_violations =
      List.map
        (fun (time, _, _, kind, _) -> (time, kind))
        (Bgp.Trace.violations trace_log)
    in
    let final_violations =
      List.map
        (fun (v : Centralium.Invariant.violation) ->
          (v.device, v.prefix, Centralium.Invariant.kind_name v.kind))
        (Centralium.Invariant.check net)
    in
    {
      schedule;
      events_executed;
      messages_dropped = Bgp.Trace.messages_dropped trace_log;
      speaker_restarts =
        List.length
          (List.filter
             (function Bgp.Trace.Speaker_restarted _ -> true | _ -> false)
             (Bgp.Trace.events trace_log));
      transient_violations;
      final_violations;
      trace = Bgp.Trace.events trace_log;
    }
end

(* ------------------------------------------------------------------ *)

module Faulted_deploy = struct
  type result = {
    outcome : string;
    applied : int;
    skipped_in_sync : int;
    retries : int;
    backoff_seconds : float list;
    gave_up : int list;
    unreachable : int list;
    crashed : bool;
    resumed : bool;
    journal_status : string option;
    stragglers_during_outage : int list;
    unexpected_unreachable : int list;
    phase_violations : (int * string) list;
    transient_violations : (float * string) list;
    final_violations : string list;
    fib_digest : string;
  }

  (* One digest over every speaker's installed FIB for every known prefix:
     two runs converged to bit-identical forwarding state iff the digests
     match. *)
  let fib_digest net =
    let prefixes =
      List.sort Net.Prefix.compare (Bgp.Network.known_prefixes net)
    in
    let snapshot =
      List.map (fun p -> (p, Bgp.Network.fib_snapshot net p)) prefixes
    in
    Digest.to_hex (Digest.string (Marshal.to_string snapshot []))

  (* Out-of-band management star: the controller host reaches every device
     over a link-state network on its own graph, so partitioning the
     management plane never touches the BGP data plane (Appendix A.2). *)
  let management_star graph ~hub =
    let g = Topology.Graph.create () in
    List.iter
      (fun (n : Topology.Node.t) -> Topology.Graph.add_node g n)
      (Topology.Graph.nodes graph);
    List.iter
      (fun (n : Topology.Node.t) ->
        if n.Topology.Node.id <> hub then
          Topology.Graph.add_link g hub n.Topology.Node.id)
      (Topology.Graph.nodes graph);
    g

  let run ?(seed = 42) ?(profile = Dsim.Mgmt_fault.flaky) ?crash_after_ops
      ?(resume = true) ?(partition_devices = 0) () =
    Obs.Span.with_span "scenario.faulted_deploy"
      ~attrs:(fun () -> [ ("seed", string_of_int seed) ])
    @@ fun () ->
    let default = Net.Prefix.default_v4 in
    let x = Topology.Clos.expansion () in
    let net = Bgp.Network.create ~seed x.Topology.Clos.xgraph in
    Bgp.Network.originate net x.backbone default (tagged_attr ());
    ignore (Bgp.Network.converge net);
    let controller = Centralium.Controller.create ~seed:(seed + 7) net in
    let agent = Centralium.Controller.agent controller in
    let hub = x.backbone in
    let mgmt_graph = management_star x.xgraph ~hub in
    let openr = Openr.Network.create ~seed:(seed + 11) mgmt_graph in
    ignore (Openr.Network.converge openr);
    Centralium.Switch_agent.attach_management_network agent openr
      ~controller_host:hub;
    (* Independent seeds: the RPC-fate stream, the backoff-jitter stream
       and the agent's latency stream never share an RNG. *)
    let fault = Dsim.Mgmt_fault.create ?crash_after_ops ~seed:(seed + 13) profile in
    Centralium.Switch_agent.set_mgmt_fault agent (Some fault);
    let plan = Centralium.Apps.Expansion_equalizer.plan x in
    let plan_devices = List.map fst plan.Centralium.Controller.rpas in
    let partitioned =
      List.filteri (fun i _ -> i < partition_devices) plan_devices
    in
    let set_partition up =
      List.iter
        (fun device ->
          Topology.Graph.set_link_up mgmt_graph hub device up;
          Openr.Network.link_event openr hub device ~up)
        partitioned;
      ignore (Openr.Network.converge openr)
    in
    if partitioned <> [] then set_partition false;
    (* Sample the invariants continuously through the deployment (and any
       controller outage inside it): backoff waits and phase convergences
       advance virtual time, which executes these sweeps. *)
    Centralium.Invariant.monitor ~period:0.01
      ~until:(Bgp.Network.now net +. 0.5)
      net;
    let phase_violations = ref [] in
    let between_phases idx =
      List.iter
        (fun (v : Centralium.Invariant.violation) ->
          phase_violations :=
            (idx, Centralium.Invariant.kind_name v.kind) :: !phase_violations)
        (Centralium.Invariant.check net)
    in
    let policy =
      { Centralium.Controller.default_retry_policy with jitter_seed = seed + 17 }
    in
    let outcome =
      Centralium.Controller.deploy_resilient ~policy ~fault ~between_phases
        controller plan
    in
    let report_of = function
      | Centralium.Controller.Completed r
      | Rolled_back { partial = r; _ }
      | Crashed { partial = r; _ }
      | Fenced { partial = r; _ } ->
        Some r
      | Aborted _ -> None
    in
    let crashed =
      match outcome with Centralium.Controller.Crashed _ -> true | _ -> false
    in
    (* Degraded-state views, captured before any healing: what the fleet
       looks like while the controller is down or devices are cut off. *)
    let stragglers_during_outage = Centralium.Switch_agent.stragglers agent in
    let unexpected_unreachable =
      Centralium.Switch_agent.unexpected_unreachable agent
    in
    let final_outcome, resumed =
      if crashed && resume then begin
        (* The replacement controller process: same NSDB (the journal
           survives), same devices, a fresh fault model with the crash
           schedule cleared. *)
        let fault' = Dsim.Mgmt_fault.create ~seed:(seed + 14) profile in
        Centralium.Switch_agent.set_mgmt_fault agent (Some fault');
        ( Centralium.Controller.resume ~policy ~fault:fault' ~between_phases
            controller plan,
          true )
      end
      else (outcome, false)
    in
    if partitioned <> [] then begin
      (* Heal the management partition; the level-triggered agent sweep
         clears the stragglers the outage left behind. *)
      set_partition true;
      ignore (Centralium.Switch_agent.reconcile agent ~devices:plan_devices);
      ignore (Bgp.Network.converge net)
    end;
    let outcome_name =
      match final_outcome with
      | Centralium.Controller.Completed _ -> "completed"
      | Rolled_back _ -> "rolled-back"
      | Crashed _ -> "crashed"
      | Fenced _ -> "fenced"
      | Aborted _ -> "aborted"
    in
    let initial_report = report_of outcome in
    let resume_report = if resumed then report_of final_outcome else None in
    let sum f = function
      | None -> 0
      | Some (r : Centralium.Controller.report) -> f r
    in
    let cat f = function
      | None -> []
      | Some (r : Centralium.Controller.report) -> f r
    in
    let reports = [ initial_report; resume_report ] in
    let trace_log = Bgp.Network.trace net in
    let transient_violations =
      List.map
        (fun (time, _, _, kind, _) -> (time, kind))
        (Bgp.Trace.violations trace_log)
    in
    let final_violations =
      List.map
        (fun (v : Centralium.Invariant.violation) ->
          Centralium.Invariant.kind_name v.kind)
        (Centralium.Invariant.check net)
    in
    {
      outcome = outcome_name;
      applied = List.fold_left (fun a r -> a + sum (fun r -> r.Centralium.Controller.applied) r) 0 reports;
      skipped_in_sync =
        List.fold_left (fun a r -> a + sum (fun r -> r.Centralium.Controller.skipped_in_sync) r) 0 reports;
      retries = List.fold_left (fun a r -> a + sum (fun r -> r.Centralium.Controller.retries) r) 0 reports;
      backoff_seconds =
        List.concat_map (cat (fun r -> r.Centralium.Controller.backoff_seconds)) reports;
      gave_up =
        List.concat_map
          (cat (fun r ->
               List.map
                 (fun (f : Centralium.Controller.device_failure) ->
                   f.failed_device)
                 r.Centralium.Controller.gave_up))
          reports;
      unreachable =
        List.sort_uniq Int.compare
          (List.concat_map (cat (fun r -> r.Centralium.Controller.unreachable)) reports);
      crashed;
      resumed;
      journal_status = Centralium.Controller.journal_status controller plan;
      stragglers_during_outage;
      unexpected_unreachable;
      phase_violations = List.rev !phase_violations;
      transient_violations;
      final_violations;
      fib_digest = fib_digest net;
    }

  type comparison = {
    interrupted : result;
    uninterrupted : result;
    digests_match : bool;
  }

  let crash_vs_uninterrupted ?(seed = 42) ?(profile = Dsim.Mgmt_fault.flaky)
      ?crash_after_ops () =
    let crash_after_ops =
      match crash_after_ops with
      | Some n -> n
      | None ->
        (* Default to mid-flight: past the plan-record writes, inside the
           first phase's reconciles. *)
        let x = Topology.Clos.expansion () in
        let plan = Centralium.Apps.Expansion_equalizer.plan x in
        List.length plan.Centralium.Controller.rpas + 6
    in
    let interrupted =
      run ~seed ~profile ~crash_after_ops ~resume:true ()
    in
    let uninterrupted = run ~seed ~profile ~resume:false () in
    {
      interrupted;
      uninterrupted;
      digests_match = interrupted.fib_digest = uninterrupted.fib_digest;
    }
end

(* ------------------------------------------------------------------ *)

module Failover = struct
  type result = {
    outcome : string;
    attempts : (int * string) list;
    completed_by : int option;
    elections : int;
    takeover_ms : float list;
    fenced_attempts : int;
    dead_members : int;
    grants : (int * int * float * float) list;
    applied : int;
    skipped_in_sync : int;
    journal_status : string option;
    ha_violations : string list;
    phase_violations : (int * string) list;
    final_violations : string list;
    fib_digest : string;
  }

  let outcome_name = function
    | Centralium.Controller.Completed _ -> "completed"
    | Rolled_back _ -> "rolled-back"
    | Crashed _ -> "crashed"
    | Fenced _ -> "fenced"
    | Aborted _ -> "aborted"

  let report_of = function
    | Centralium.Controller.Completed r
    | Rolled_back { partial = r; _ }
    | Crashed { partial = r; _ }
    | Fenced { partial = r; _ } ->
      Some r
    | Aborted _ -> None

  let run ?(seed = 42) ?(profile = Dsim.Mgmt_fault.none) ?(members = 3)
      ?(lease_ttl = 0.05) ?(tick_every = 0.01)
      ?(leader_crash_offsets = []) ?(lease_partition_offsets = [])
      ?(renewal_delay_prob = 0.0) () =
    Obs.Span.with_span "scenario.failover"
      ~attrs:(fun () ->
        [
          ("seed", string_of_int seed);
          ("members", string_of_int members);
          ("crashes", string_of_int (List.length leader_crash_offsets));
        ])
    @@ fun () ->
    (* Same fixture as Faulted_deploy — expansion Clos plus the
       out-of-band management star — but the controller is a cluster:
       every member shares the one agent, NSDB and network, and only the
       lease holder may drive the rollout. *)
    let default = Net.Prefix.default_v4 in
    let x = Topology.Clos.expansion () in
    let net = Bgp.Network.create ~seed x.Topology.Clos.xgraph in
    Bgp.Network.originate net x.backbone default (tagged_attr ());
    ignore (Bgp.Network.converge net);
    let agent = Centralium.Switch_agent.create ~seed:(seed + 7) net in
    let nsdb = Centralium.Nsdb.Replicated.create ~replicas:3 in
    let hub = x.backbone in
    let mgmt_graph = Faulted_deploy.management_star x.xgraph ~hub in
    let openr = Openr.Network.create ~seed:(seed + 11) mgmt_graph in
    ignore (Openr.Network.converge openr);
    Centralium.Switch_agent.attach_management_network agent openr
      ~controller_host:hub;
    (* The chaos schedule is anchored to the instant the cluster starts:
       offsets are relative so callers need not know the virtual clock. *)
    let t0 = Bgp.Network.now net in
    let ha =
      {
        Dsim.Mgmt_fault.leader_crash_times =
          List.map (fun o -> t0 +. o) leader_crash_offsets;
        lease_partitions =
          List.map (fun (a, b) -> (t0 +. a, t0 +. b)) lease_partition_offsets;
        renewal_delay_prob;
        renewal_delay_max_s = tick_every /. 2.;
      }
    in
    let fault = Dsim.Mgmt_fault.create ~ha ~seed:(seed + 13) profile in
    let cluster =
      Centralium.Ha.create ~lease_ttl ~tick_every ~fault ~members net agent
        nsdb
    in
    Centralium.Ha.start cluster;
    Centralium.Invariant.monitor ~period:0.01
      ~until:(Bgp.Network.now net +. 0.5)
      net;
    let phase_violations = ref [] in
    let between_phases idx =
      List.iter
        (fun (v : Centralium.Invariant.violation) ->
          phase_violations :=
            (idx, Centralium.Invariant.kind_name v.kind) :: !phase_violations)
        (Centralium.Invariant.check net)
    in
    let policy =
      { Centralium.Controller.default_retry_policy with jitter_seed = seed + 17 }
    in
    let plan = Centralium.Apps.Expansion_equalizer.plan x in
    let attempts, terminal =
      Centralium.Ha.run_plan ~policy ~between_phases cluster plan
    in
    ignore (Bgp.Network.converge net);
    Centralium.Ha.stop cluster;
    let attempt_names =
      List.map (fun (m, o) -> (m, outcome_name o)) attempts
    in
    let completed_by =
      match terminal with
      | Some (Centralium.Controller.Completed _) ->
        (match List.rev attempts with (m, _) :: _ -> Some m | [] -> None)
      | _ -> None
    in
    let reports = List.filter_map (fun (_, o) -> report_of o) attempts in
    let sum f = List.fold_left (fun a r -> a + f r) 0 reports in
    let dead_members =
      let n = ref 0 in
      for i = 0 to Centralium.Ha.members cluster - 1 do
        if not (Centralium.Ha.member_alive cluster i) then incr n
      done;
      !n
    in
    let ha_violations =
      List.map
        (fun (v : Centralium.Invariant.violation) ->
          Centralium.Invariant.kind_name v.kind)
        (Centralium.Invariant.check_ha
           ~grants:(Centralium.Ha.grants cluster)
           ~commits:(Centralium.Ha.epoch_commits cluster))
    in
    let final_violations =
      List.map
        (fun (v : Centralium.Invariant.violation) ->
          Centralium.Invariant.kind_name v.kind)
        (Centralium.Invariant.check net)
    in
    let journal_status =
      (* Any member's controller sees the shared journal; ask the last
         attempt's (or member 0 when no attempt ever ran). *)
      let m = match List.rev attempts with (m, _) :: _ -> m | [] -> 0 in
      Centralium.Controller.journal_status
        (Centralium.Ha.controller cluster m)
        plan
    in
    {
      outcome =
        (match terminal with Some o -> outcome_name o | None -> "none");
      attempts = attempt_names;
      completed_by;
      elections = Centralium.Ha.elections cluster;
      takeover_ms = Centralium.Ha.takeover_ms cluster;
      fenced_attempts =
        List.length (List.filter (fun (_, n) -> n = "fenced") attempt_names);
      dead_members;
      grants = Centralium.Ha.grants cluster;
      applied = sum (fun (r : Centralium.Controller.report) -> r.applied);
      skipped_in_sync =
        sum (fun (r : Centralium.Controller.report) -> r.skipped_in_sync);
      journal_status;
      ha_violations;
      phase_violations = List.rev !phase_violations;
      final_violations;
      fib_digest = Faulted_deploy.fib_digest net;
    }

  type comparison = {
    interrupted : result;
    uninterrupted : result;
    digests_match : bool;
  }

  let crash_vs_uninterrupted ?(seed = 42) ?(profile = Dsim.Mgmt_fault.none)
      ?(members = 3) ?(leader_crash_offsets = [ 0.02 ]) () =
    let interrupted = run ~seed ~profile ~members ~leader_crash_offsets () in
    let uninterrupted = run ~seed ~profile ~members () in
    {
      interrupted;
      uninterrupted;
      digests_match = interrupted.fib_digest = uninterrupted.fib_digest;
    }
end

(* ------------------------------------------------------------------ *)

module Chaos = struct
  type mode_result = {
    gr : bool;
    blackhole_seconds : float;
    loss_seconds : float;
    window : float;
    messages_dropped : int;
    keepalives_sent : int;
    hold_expiries : int;
    reconnects : int;
    stale_sweeps : int;
    speaker_restarts : int;
    transient_violations : (float * string) list;
    final_violations : (int option * Net.Prefix.t option * string) list;
    trace_events : int;
    fib_digest : string;
    loss_segments : Dataplane.Metrics.loss_segment list;
  }

  type result = { gr_on : mode_result; gr_off : mode_result; gr_wins : bool }

  let horizon = 0.12

  let count_session_events trace event =
    List.length
      (List.filter
         (function
           | Bgp.Trace.Session_event { event = e; _ } -> e = event
           | _ -> false)
         (Bgp.Trace.events trace))

  let fib_digest net =
    let prefixes =
      List.sort Net.Prefix.compare (Bgp.Network.known_prefixes net)
    in
    let snapshot =
      List.map (fun p -> (p, Bgp.Network.fib_snapshot net p)) prefixes
    in
    Digest.to_hex (Digest.string (Marshal.to_string snapshot []))

  let run_mode ?(seed = 42) ?(profile = Dsim.Fault.severe) ?eval_mode ~gr () =
    Obs.Span.with_span "scenario.chaos"
      ~attrs:(fun () ->
        [ ("seed", string_of_int seed); ("gr", string_of_bool gr) ])
    @@ fun () ->
    let default = Net.Prefix.default_v4 in
    let x = Topology.Clos.expansion () in
    let net = Bgp.Network.create ~seed x.Topology.Clos.xgraph in
    Option.iter (Bgp.Network.set_eval_mode net) eval_mode;
    Bgp.Network.originate net x.backbone default (tagged_attr ());
    (* Each FSW also originates its rack prefix: the fabric carries a
       realistic multi-prefix table, so the chaos window exercises the
       decision pipeline across prefixes (the loss accounting below still
       follows the default route only). *)
    List.iteri
      (fun i fsw ->
        let rack =
          Net.Prefix.of_string_exn (Printf.sprintf "10.%d.0.0/24" (i land 0xff))
        in
        Bgp.Network.originate net fsw rack (tagged_attr ()))
      x.Topology.Clos.xfsws;
    ignore (Bgp.Network.converge net);
    let t0 = Bgp.Network.now net in
    let initial = Bgp.Network.fib_snapshot net default in
    Bgp.Trace.clear (Bgp.Network.trace net);
    (* Identical seeds across both modes: the latency stream belongs to the
       network, message fates to their own stream. GR is the only
       difference between the two runs. *)
    Bgp.Network.set_fault net
      (Some (Dsim.Fault.create ~seed:(seed + 1) profile));
    let config =
      if gr then Bgp.Liveness.with_gr Bgp.Liveness.default
      else Bgp.Liveness.default
    in
    Bgp.Network.enable_liveness ~config ~until:(t0 +. horizon) net;
    (* Control-plane chaos on top of the message-level faults: the origin
       itself restarts mid-window — the worst case for blackholes, since in
       legacy mode every peer flushes the default route and the withdrawal
       cascades fabric-wide — and one FA restarts later. *)
    Bgp.Network.restart_device ~delay:0.01 net x.backbone ~recovery:0.02;
    (match x.Topology.Clos.fav1 with
     | fa :: _ -> Bgp.Network.restart_device ~delay:0.05 net fa ~recovery:0.015
     | [] -> ());
    Centralium.Invariant.monitor ~period:0.01 ~until:(t0 +. horizon) net;
    ignore (Bgp.Network.run_until net ~time:(t0 +. horizon));
    (* End of the chaos window: heal the transport, re-establish every
       torn-down session, and let the remaining timers (stale sweeps,
       recoveries) drain to quiescence. *)
    Bgp.Network.set_fault net None;
    Bgp.Network.reestablish_sessions ~all:true net;
    ignore (Bgp.Network.converge net);
    let trace_log = Bgp.Network.trace net in
    let demands = List.map (fun f -> (f, 1.0)) x.Topology.Clos.xfsws in
    let timeline = Bgp.Trace.fib_timeline trace_log ~prefix:default ~initial in
    (* A fixed integration window covering the chaos plus the longest
       possible sweep tail, identical in both modes so the integrals are
       directly comparable. The healed network contributes zero loss. *)
    let until = t0 +. horizon +. config.Bgp.Liveness.stale_path_time in
    let integral =
      Dataplane.Metrics.loss_integrals ~initial ~timeline ~demands
        ~from_time:t0 ~until
    in
    let loss_segments =
      Dataplane.Metrics.loss_segments ~initial ~timeline ~demands
        ~from_time:t0 ~until
    in
    let transient_violations =
      List.map
        (fun (time, _, _, kind, _) -> (time, kind))
        (Bgp.Trace.violations trace_log)
    in
    let final_violations =
      List.map
        (fun (v : Centralium.Invariant.violation) ->
          (v.device, v.prefix, Centralium.Invariant.kind_name v.kind))
        (Centralium.Invariant.check net)
    in
    {
      gr;
      blackhole_seconds = integral.Dataplane.Metrics.blackhole_seconds;
      loss_seconds = integral.Dataplane.Metrics.loss_seconds;
      window = integral.Dataplane.Metrics.duration;
      messages_dropped = Bgp.Trace.messages_dropped trace_log;
      keepalives_sent =
        Bgp.Trace.count
          (function
            | Bgp.Trace.Message_sent { msg = Bgp.Msg.Keepalive; _ } -> true
            | _ -> false)
          trace_log;
      hold_expiries = count_session_events trace_log "hold-expired";
      reconnects = count_session_events trace_log "reconnected";
      stale_sweeps =
        count_session_events trace_log "stale-swept"
        + count_session_events trace_log "fib-stale-swept";
      speaker_restarts =
        Bgp.Trace.count
          (function Bgp.Trace.Speaker_restarted _ -> true | _ -> false)
          trace_log;
      transient_violations;
      final_violations;
      trace_events = Bgp.Trace.length trace_log;
      fib_digest = fib_digest net;
      loss_segments;
    }

  let run ?seed ?profile ?eval_mode () =
    let gr_on = run_mode ?seed ?profile ?eval_mode ~gr:true () in
    let gr_off = run_mode ?seed ?profile ?eval_mode ~gr:false () in
    {
      gr_on;
      gr_off;
      gr_wins = gr_on.blackhole_seconds < gr_off.blackhole_seconds;
    }
end

(* ------------------------------------------------------------------ *)

module Fig13 = struct
  type event = {
    event_id : int;
    drained_links : int;
    ecmp_capacity : float;
    rpa_capacity : float;
    ideal_capacity : float;
  }

  type result = {
    events : event list;
    mean_rpa_over_ideal : float;
    mean_ecmp_over_ideal : float;
    unblocked_fraction : float;
  }

  let fauus = 4
  let ebs = 4

  (* FAUU i is node i; EB j is node fauus + j; the backbone sink is the
     last node. Uplink capacities are deliberately heterogeneous: that is
     what separates WCMP from ECMP. *)
  let base_edges () =
    let sink = fauus + ebs in
    let uplinks =
      List.concat_map
        (fun i ->
          List.map
            (fun j ->
              (* Heterogeneous uplink speeds (1/3/5), varying per (i, j). *)
              let capacity = float_of_int (1 + (((i + j) mod 3) * 2)) in
              (i, fauus + j, capacity))
            (List.init ebs Fun.id))
        (List.init fauus Fun.id)
    in
    let egress = List.init ebs (fun j -> (fauus + j, sink, 8.0)) in
    (uplinks, egress, sink)

  let run ?(seed = 42) ?(events = 40) ?(levels = 64) () =
    Obs.Span.with_span "scenario.fig13"
      ~attrs:(fun () -> [ ("seed", string_of_int seed) ])
    @@ fun () ->
    let rng = Dsim.Rng.create seed in
    let uplinks, egress, sink = base_edges () in
    let demand_per_fauu = 6.0 in
    let demands = List.init fauus (fun i -> (i, demand_per_fauu)) in
    let total = demand_per_fauu *. float_of_int fauus in
    let make_event event_id =
      (* Drain 0-4 uplinks, never isolating a FAUU. *)
      let to_drain =
        if event_id = 0 then []
        else begin
          let k = 1 + Dsim.Rng.int rng 4 in
          let candidates = Dsim.Rng.sample_without_replacement rng k uplinks in
          (* Greedily accept drains that leave every FAUU >= 1 live uplink. *)
          List.fold_left
            (fun accepted ((i, _, _) as edge) ->
              let live_after =
                List.length
                  (List.filter
                     (fun ((i', _, _) as e) ->
                       i' = i && e <> edge && not (List.mem e accepted))
                     uplinks)
              in
              if live_after >= 1 then edge :: accepted else accepted)
            [] candidates
        end
      in
      let live =
        List.filter (fun edge -> not (List.mem edge to_drain)) uplinks
      in
      let instance =
        {
          Te.Solver.node_count = sink + 1;
          edges = live @ egress;
          demands;
          destination = sink;
        }
      in
      let u_ideal, w_ideal = Te.Solver.optimal instance in
      let u_rpa =
        Te.Solver.max_utilization instance (Te.Solver.quantize ~levels w_ideal)
      in
      let u_ecmp =
        Te.Solver.max_utilization instance (Te.Solver.ecmp_weights instance)
      in
      {
        event_id;
        drained_links = List.length to_drain;
        ecmp_capacity = Te.Solver.effective_capacity instance ~max_util:u_ecmp;
        rpa_capacity = Te.Solver.effective_capacity instance ~max_util:u_rpa;
        ideal_capacity = Te.Solver.effective_capacity instance ~max_util:u_ideal;
      }
    in
    let event_list = List.init events make_event in
    let mean f =
      List.fold_left (fun acc e -> acc +. f e) 0.0 event_list
      /. float_of_int (List.length event_list)
    in
    let unblocked =
      List.filter
        (fun e -> e.ecmp_capacity < total && e.rpa_capacity >= total)
        event_list
    in
    {
      events = event_list;
      mean_rpa_over_ideal = mean (fun e -> e.rpa_capacity /. e.ideal_capacity);
      mean_ecmp_over_ideal = mean (fun e -> e.ecmp_capacity /. e.ideal_capacity);
      unblocked_fraction =
        float_of_int (List.length unblocked)
        /. float_of_int (List.length event_list);
    }
end

(* ------------------------------------------------------------------ *)

module Continuous = struct
  type job = {
    job_index : int;
    job_name : string;
    job_tenant : string;
    job_class : string;
    job_canary : bool;
    job_seq : int option;
    job_shed_reason : string option;
    job_outcome : string option;
    job_queue_wait_s : float;
    job_convergence_s : float;
    job_remediation : string option;
  }

  type report = {
    hours : int;
    hour_s : float;
    submitted : int;
    admitted : int;
    shed : int;
    completed : int;
    rolled_back : int;
    shed_rate : float;
    rollback_rate : float;
    plans_per_hour : float;
    convergence_p50_s : float;
    convergence_p99_s : float;
    queue_wait_p99_s : float;
    blackhole_seconds_per_day : float;
    replica_lag_p99 : float;
    replica_lag_peak : int;
    snapshot_ships : int;
    elections : int;
    queue_recoveries : int;
    remediations : int;
    unremediated_violations : int;
    queue_order : int list;
    shed_set : int list;
    fib_digest : string;
    jobs : job list;
  }

  (* Nearest-rank percentile; 0.0 on an empty sample set. *)
  let percentile p xs =
    match List.sort compare xs with
    | [] -> 0.0
    | sorted ->
      let n = List.length sorted in
      let k = int_of_float (ceil (p *. float_of_int n)) - 1 in
      List.nth sorted (min (n - 1) (max 0 k))

  let default_queue_config =
    { Centralium.Ops.max_queue = 4; per_tenant = 2; per_class = 3 }

  let run ?(seed = 42) ?(hours = 24) ?(jobs_per_hour = 5) ?(hour_s = 0.5)
      ?(members = 2) ?(profile = Dsim.Mgmt_fault.flaky)
      ?(leader_crash_offsets = []) ?(canary_every = 3)
      ?(queue_config = default_queue_config) () =
    Obs.Span.with_span "scenario.continuous"
      ~attrs:(fun () ->
        [
          ("seed", string_of_int seed);
          ("hours", string_of_int hours);
          ("crashes", string_of_int (List.length leader_crash_offsets));
        ])
    @@ fun () ->
    (* The Failover fixture, run as a 24/7 fleet: expansion Clos, shared
       agent, an async 3-replica NSDB, and an HA controller cluster.
       [hour_s] virtual seconds stand in for one wall-clock hour — the
       simulated day is compressed, and per-day SLO figures are
       normalized by that compression below. *)
    let default = Net.Prefix.default_v4 in
    let x = Topology.Clos.expansion () in
    let net = Bgp.Network.create ~seed x.Topology.Clos.xgraph in
    Bgp.Network.originate net x.backbone default (tagged_attr ());
    ignore (Bgp.Network.converge net);
    let agent = Centralium.Switch_agent.create ~seed:(seed + 7) net in
    let nsdb = Centralium.Nsdb.Replicated.create ~replicas:3 in
    Centralium.Nsdb.Replicated.enable_async ~lag_threshold:48
      ~batch_budget:24 nsdb;
    let hub = x.backbone in
    let mgmt_graph = Faulted_deploy.management_star x.xgraph ~hub in
    let openr = Openr.Network.create ~seed:(seed + 11) mgmt_graph in
    ignore (Openr.Network.converge openr);
    Centralium.Switch_agent.attach_management_network agent openr
      ~controller_host:hub;
    let t0 = Bgp.Network.now net in
    let ha =
      {
        Dsim.Mgmt_fault.leader_crash_times =
          List.map (fun o -> t0 +. o) leader_crash_offsets;
        lease_partitions = [];
        renewal_delay_prob = 0.0;
        renewal_delay_max_s = 0.005;
      }
    in
    let fault = Dsim.Mgmt_fault.create ~ha ~seed:(seed + 13) profile in
    let cluster =
      Centralium.Ha.create ~lease_ttl:0.05 ~tick_every:0.01 ~fault ~members
        net agent nsdb
    in
    Centralium.Ha.start cluster;
    (* Churn stream: tenants, classes and plan kinds are drawn from a
       dedicated RNG so the submission schedule is a pure function of the
       seed. *)
    let rng = Dsim.Rng.create (seed + 19) in
    let catalog : (string, Centralium.Controller.plan) Hashtbl.t =
      Hashtbl.create 64
    in
    let lookup name = Hashtbl.find_opt catalog name in
    let ops = ref (Centralium.Ops.create ~config:queue_config nsdb) in
    let base = Centralium.Apps.Expansion_equalizer.plan x in
    let install_of name =
      { base with Centralium.Controller.plan_name = name }
    in
    let clear_of name =
      {
        base with
        Centralium.Controller.plan_name = name;
        rpas =
          List.map
            (fun (d, _) -> (d, Centralium.Rpa.empty))
            base.Centralium.Controller.rpas;
      }
    in
    (* The canary: a min-next-hop guard whose [Fraction 1.1] threshold can
       never be met, so its SSW targets withdraw the default and the FSWs
       below black-hole — exactly the regression the watchdog's SLO budget
       exists to catch and roll back. *)
    let canary_of name =
      let p =
        Centralium.Apps.Min_next_hop_guard.plan x.xgraph
          ~destination:(Centralium.Destination.Tagged backbone_community)
          ~threshold:(Centralium.Path_selection.Fraction 1.1)
          ~keep_fib_warm:false ~targets:x.xssws
          ~origination_layer:Topology.Node.Eb
      in
      { p with Centralium.Controller.plan_name = name }
    in
    let demands = List.map (fun f -> (f, 1.0)) x.xfsws in
    let wd =
      Centralium.Ops.Watchdog.create ~net ~nsdb ~demands ~prefix:default ()
    in
    let total_jobs = hours * jobs_per_hour in
    let tenants = [| "ops"; "te"; "ml"; "edge" |] in
    let j_name = Array.make total_jobs "" in
    let j_tenant = Array.make total_jobs "" in
    let j_class = Array.make total_jobs "" in
    let j_canary = Array.make total_jobs false in
    let j_seq = Array.make total_jobs None in
    let j_shed = Array.make total_jobs None in
    let j_outcome = Array.make total_jobs None in
    let j_wait = Array.make total_jobs 0.0 in
    let j_conv = Array.make total_jobs 0.0 in
    let j_remediation = Array.make total_jobs None in
    let submit_times = Hashtbl.create 64 in
    let job_of_seq = Hashtbl.create 64 in
    let queue_order = ref [] in
    let lag_samples = ref [] in
    let completed = ref 0 in
    let rolled_back = ref 0 in
    let unremediated = ref 0 in
    let queue_recoveries = ref 0 in
    let last_leader = ref (Centralium.Ha.wait_for_leader cluster) in
    let policy =
      { Centralium.Controller.default_retry_policy with jitter_seed = seed + 17 }
    in
    let submit_job i =
      let name = Printf.sprintf "job-%04d" i in
      let canary = canary_every > 0 && (i + 1) mod canary_every = 0 in
      let plan =
        if canary then canary_of name
        else if i mod 2 = 0 then install_of name
        else clear_of name
      in
      Hashtbl.replace catalog name plan;
      let tenant = tenants.(Dsim.Rng.int rng (Array.length tenants)) in
      let cls =
        match Dsim.Rng.int rng 3 with
        | 0 -> Centralium.Ops.Interactive
        | 1 -> Centralium.Ops.Standard
        | _ -> Centralium.Ops.Bulk
      in
      j_name.(i) <- name;
      j_tenant.(i) <- tenant;
      j_class.(i) <- Centralium.Ops.class_name cls;
      j_canary.(i) <- canary;
      match Centralium.Ops.submit !ops ~tenant ~cls plan with
      | Centralium.Ops.Admitted seq ->
        j_seq.(i) <- Some seq;
        Hashtbl.replace submit_times seq (Bgp.Network.now net);
        Hashtbl.replace job_of_seq seq i
      | Centralium.Ops.Overloaded reason ->
        j_shed.(i) <-
          Some (Centralium.Ops.overload_reason_to_string reason)
    in
    (* An election means a takeover: the new leader rebuilds its queue
       view from the opsq journal, exactly as a real standby would. *)
    let maybe_recover () =
      let l =
        match Centralium.Ha.leader_id cluster with
        | Some _ as l -> l
        | None -> Centralium.Ha.wait_for_leader cluster
      in
      if l <> !last_leader then begin
        last_leader := l;
        incr queue_recoveries;
        ops := Centralium.Ops.recover ~config:queue_config ~lookup nsdb
      end
    in
    let run_one seq plan =
      let start = Bgp.Network.now net in
      Centralium.Ops.mark_started !ops seq;
      let wait =
        start
        -.
        match Hashtbl.find_opt submit_times seq with
        | Some t -> t
        | None -> start
      in
      Centralium.Ops.Watchdog.arm wd
        ~plan_name:plan.Centralium.Controller.plan_name;
      let _, terminal =
        Centralium.Ha.run_plan ~policy
          ~watchdog:(Centralium.Ops.Watchdog.probe wd) cluster plan
      in
      ignore (Bgp.Network.converge net);
      let dur = Bgp.Network.now net -. start in
      Centralium.Ops.mark_done !ops seq;
      ignore (Centralium.Ops.gc !ops);
      lag_samples :=
        float_of_int (Centralium.Nsdb.Replicated.max_lag nsdb)
        :: !lag_samples;
      Centralium.Nsdb.Replicated.flush nsdb;
      let remediation =
        let m = match !last_leader with Some m -> m | None -> 0 in
        Centralium.Controller.journal_remediation
          (Centralium.Ha.controller cluster m)
          plan
      in
      Centralium.Ops.Watchdog.disarm wd;
      queue_order := seq :: !queue_order;
      (match terminal with
       | Some (Centralium.Controller.Completed _) -> incr completed
       | Some (Centralium.Controller.Rolled_back _) -> incr rolled_back
       | _ -> ());
      let post = Centralium.Invariant.check net in
      if post <> [] && remediation = None then
        unremediated := !unremediated + List.length post;
      (match Hashtbl.find_opt job_of_seq seq with
       | Some i ->
         j_wait.(i) <- wait;
         j_conv.(i) <- dur;
         j_outcome.(i) <-
           Some
             (match terminal with
              | Some o -> Failover.outcome_name o
              | None -> "none");
         j_remediation.(i) <- remediation
       | None -> ())
    in
    let drain () =
      let continue = ref true in
      while !continue do
        maybe_recover ();
        match Centralium.Ops.next_ready !ops with
        | None -> continue := false
        | Some (seq, plan) -> run_one seq plan
      done
    in
    let next = ref 0 in
    for h = 0 to hours - 1 do
      for _ = 1 to jobs_per_hour do
        submit_job !next;
        incr next
      done;
      drain ();
      ignore
        (Bgp.Network.run_until net
           ~time:(t0 +. (hour_s *. float_of_int (h + 1))));
      lag_samples :=
        float_of_int (Centralium.Nsdb.Replicated.max_lag nsdb)
        :: !lag_samples;
      Centralium.Nsdb.Replicated.flush nsdb
    done;
    drain ();
    ignore (Bgp.Network.converge net);
    Centralium.Nsdb.Replicated.flush nsdb;
    Centralium.Ha.stop cluster;
    unremediated :=
      !unremediated + List.length (Centralium.Invariant.check net);
    let submitted = Centralium.Ops.submissions !ops in
    let sheds = Centralium.Ops.shed_log !ops in
    let shed = List.length sheds in
    let admitted = submitted - shed in
    let waits = Array.to_list (Array.sub j_wait 0 !next) in
    let waits =
      List.filteri (fun i _ -> j_seq.(i) <> None) waits
    in
    let convs =
      List.filteri
        (fun i _ -> j_seq.(i) <> None)
        (Array.to_list (Array.sub j_conv 0 !next))
    in
    let jobs =
      List.init !next (fun i ->
          {
            job_index = i;
            job_name = j_name.(i);
            job_tenant = j_tenant.(i);
            job_class = j_class.(i);
            job_canary = j_canary.(i);
            job_seq = j_seq.(i);
            job_shed_reason = j_shed.(i);
            job_outcome = j_outcome.(i);
            job_queue_wait_s = j_wait.(i);
            job_convergence_s = j_conv.(i);
            job_remediation = j_remediation.(i);
          })
    in
    let fi = float_of_int in
    {
      hours;
      hour_s;
      submitted;
      admitted;
      shed;
      completed = !completed;
      rolled_back = !rolled_back;
      shed_rate = (if submitted = 0 then 0.0 else fi shed /. fi submitted);
      rollback_rate =
        (if admitted = 0 then 0.0 else fi !rolled_back /. fi admitted);
      plans_per_hour = fi !completed /. fi (max 1 hours);
      convergence_p50_s = percentile 0.50 convs;
      convergence_p99_s = percentile 0.99 convs;
      queue_wait_p99_s = percentile 0.99 waits;
      (* Blackhole-seconds accrue on the virtual clock; one simulated day
         is [hours] windows, so normalize to a represented 24h. *)
      blackhole_seconds_per_day =
        Centralium.Ops.Watchdog.blackhole_seconds wd *. 24.
        /. fi (max 1 hours);
      replica_lag_p99 = percentile 0.99 !lag_samples;
      replica_lag_peak = Centralium.Nsdb.Replicated.lag_peak nsdb;
      snapshot_ships = Centralium.Nsdb.Replicated.snapshot_ships nsdb;
      elections = Centralium.Ha.elections cluster;
      queue_recoveries = !queue_recoveries;
      remediations =
        List.length (Centralium.Ops.Watchdog.remediations wd);
      unremediated_violations = !unremediated;
      queue_order = List.rev !queue_order;
      shed_set = List.map (fun (i, _, _, _) -> i) sheds;
      fib_digest = Faulted_deploy.fib_digest net;
      jobs;
    }
end
