(** Metrics registry: named, labelled counters, gauges and histograms.

    Instrumentation sites across the stack hold an instrument obtained once
    (usually at module initialization) from the shared {!default} registry
    and bump it on the hot path. A disabled registry (the initial state)
    makes every bump a single boolean test — near-zero cost — and no
    instrument ever draws from {!Dsim.Rng} or perturbs the event queue, so
    enabling metrics cannot change a simulation's outcome (a property the
    test suite asserts bit-for-bit).

    Instruments are identified by [(name, labels)]: asking for the same
    pair twice returns the same instrument. Histogram summaries reuse
    {!Dsim.Stats.summarize} so exported percentiles match the benchmark
    harness exactly. *)

type t
(** A registry. *)

val create : ?enabled:bool -> unit -> t
(** A fresh registry, disabled unless [enabled] says otherwise. *)

val default : t
(** The shared ambient registry every built-in instrumentation site uses.
    Starts disabled. *)

val set_enabled : t -> bool -> unit
val is_enabled : t -> bool

val reset : t -> unit
(** Zeroes every counter and gauge and clears every histogram, {e keeping}
    the instrument objects alive (sites hold them by reference). *)

(** {1 Counters} *)

type counter

val counter : ?registry:t -> ?labels:(string * string) list -> string -> counter
(** [registry] defaults to {!default}; [labels] to []. *)

val incr : ?by:int -> counter -> unit
(** No-op when the owning registry is disabled. [by] defaults to 1. *)

val value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : ?registry:t -> ?labels:(string * string) list -> string -> gauge
val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram : ?registry:t -> ?labels:(string * string) list -> string -> histogram

val observe : histogram -> float -> unit
(** Appends a sample (amortized O(1), growable array). No-op when the
    owning registry is disabled. *)

val samples : histogram -> float list

val summary : histogram -> Dsim.Stats.summary option
(** [None] when no samples were recorded. *)

(** {1 Export} *)

val snapshot : t -> Json.t
(** [{"counters": [...], "gauges": [...], "histograms": [...]}], each
    instrument as an object with [name], [labels], and its value(s) —
    histograms export count/mean/min/max and the p50/p90/p95/p99
    percentiles. Instruments are sorted by (name, labels) so snapshots are
    stable across runs. *)
