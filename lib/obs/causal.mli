(** Causal provenance DAG for route propagation.

    Records, per run, the causal chain behind every routing state change:
    origin announce/withdraw -> per-hop message send/receive (through the
    fault and batching layers) -> decision -> Adj-RIB-Out flush -> FIB
    install. Each event carries the id of the event that caused it, so the
    log is a forest of DAG paths rooted at origin/config/restart events.

    On top of the DAG sit two analyses: {!critical_path}, the longest
    causal chain ending at a prefix's final FIB change with per-edge delay
    attribution (link propagation, fault delay, FIFO queue wait, decision
    and flush time), and {!attribute}, which joins blackhole intervals
    from {!Dataplane.Metrics.loss_integrals} to the FIB events that opened
    and closed them.

    Like {!Span}, recording is ambient: sites guard with {!on} — a single
    bool read — and pay nothing when no recorder is installed. Recording
    never draws from any RNG or schedules events, so instrumented and
    uninstrumented runs are bit-identical, and at a fixed seed the event
    log itself is bit-reproducible (ids are assigned in deterministic
    simulation order; only virtual time is stamped).

    The obs library sits below net, so devices and prefixes are plain
    ints; callers pass [Net.Intern.Prefix_id.id] values and provide a
    [prefix_name] rendering callback at export time. *)

type kind =
  | Origin
  | Origin_withdraw
  | Recv
  | Decide
  | Send
  | Drop
  | Fib
  | Restart
  | Session
  | Sweep
  | Config

val kind_label : kind -> string

type event = {
  id : int;       (** position in the log; assigned in simulation order *)
  parent : int;   (** causing event id, [-1] for roots *)
  kind : kind;
  time : float;   (** virtual seconds *)
  device : int;
  peer : int;     (** [-1] when not applicable *)
  session : int;  (** [-1] when not applicable *)
  prefix : int;   (** interned prefix id, [-1] when not prefix-scoped *)
  note : string;
  d_prop : float;   (** Send only: drawn propagation latency *)
  d_queue : float;  (** Send only: FIFO head-of-line wait *)
  d_fault : float;  (** Send only: extra delay from the fault model *)
}

type t
(** A recorder: an append-only event log plus the ambient cursor. *)

val create : unit -> t

val with_recorder : t -> (unit -> 'a) -> 'a
(** Installs [t] as the ambient recorder for the duration of the call
    (restoring the previous state after, exceptions included). *)

val on : unit -> bool
(** Whether a recorder is installed — the one-bool-test guard for every
    instrumentation site. *)

val installed : unit -> t option

(** {1 Context threading}

    The cursor is the "current cause": the event that synchronous code is
    running on behalf of. {!Bgp.Network} installs {!new_turn} as its event
    queue's on-step hook so the cursor resets at every event boundary. *)

val new_turn : unit -> unit
(** Clears the cursor (no-op without a recorder). *)

val cause : unit -> int
(** Current cursor, [-1] when unset or no recorder. *)

val set_cause : int -> unit

(** {1 Recording sites}

    All return the new event id, or [-1] when no recorder is installed.
    Events that start a new causal context (origin, recv, restart,
    session, sweep, config) also set the cursor to themselves. *)

val origin : time:float -> device:int -> prefix:int -> withdraw:bool -> int

val recv :
  time:float ->
  device:int ->
  peer:int ->
  session:int ->
  prefix:int ->
  note:string ->
  parent:int ->
  int
(** [parent] is the Send event id carried with the message ([-1] when the
    message predates the recorder). *)

val decide : time:float -> device:int -> prefix:int -> int
(** Parented to the cursor. Registered as the device's latest decision for
    [prefix], so same-instant Send/Fib events parent to it. *)

val send :
  time:float ->
  src:int ->
  dst:int ->
  session:int ->
  prefix:int ->
  note:string ->
  parent_hint:int ->
  d_prop:float ->
  d_queue:float ->
  d_fault:float ->
  int
(** Parent resolution: the sender's same-instant decision for [prefix] if
    one exists, else [parent_hint] (the cause carried through the batching
    queue, or the cursor). *)

val drop_at_send :
  time:float ->
  src:int ->
  dst:int ->
  session:int ->
  prefix:int ->
  note:string ->
  parent_hint:int ->
  int
(** A message the fault model dropped at the send site. *)

val drop_in_flight :
  time:float ->
  device:int ->
  peer:int ->
  session:int ->
  prefix:int ->
  note:string ->
  parent:int ->
  int
(** A message that died in flight (connection epoch bumped, session or
    link down at delivery time). [parent] is its Send event. *)

val fib : time:float -> device:int -> prefix:int -> note:string -> int
(** A FIB change; parent is the same-instant decision else the cursor. *)

val restart : time:float -> device:int -> int
(** A speaker crash/restart. Forgets the device's decision registry (its
    RIBs are gone) and becomes the cursor. *)

val session_event :
  time:float -> device:int -> peer:int -> session:int -> note:string ->
  parent:int -> int

val sweep :
  time:float -> device:int -> peer:int -> session:int -> note:string ->
  parent:int -> int
(** A stale-path or GR sweep firing; [parent] is the session/restart event
    that armed the timer. *)

val config : time:float -> device:int -> peer:int -> note:string -> int
(** An external management action (link up/down, policy change, drain) —
    always a root. *)

(** {1 Inspection & export} *)

val length : t -> int
val events : t -> event list
val event : t -> int -> event option

val default_prefix_name : int -> string
(** ["pfx#<id>"], or ["-"] for [-1] — the fallback when no resolver is
    supplied. *)

val event_to_json : ?prefix_name:(int -> string) -> event -> Json.t
val to_json : ?prefix_name:(int -> string) -> t -> Json.t
(** The full log as a JSON array, in id order. Deterministic at a fixed
    seed. *)

(** {1 Critical path} *)

type edge = {
  e_from : int;
  e_to : int;
  e_label : string;  (** wire | decision | emit | install | ... *)
  e_delay : float;   (** child time - parent time, virtual seconds *)
  e_parts : (string * float) list;
      (** wire edges: prop / fault / queue components *)
}

type chain = {
  c_prefix : int;
  c_events : event list;  (** root first *)
  c_edges : edge list;    (** between consecutive events; length-1 of events *)
  c_total : float;        (** terminal time - root time; the per-edge
                              delays telescope to exactly this *)
}

val critical_path : ?device:int -> t -> prefix:int -> chain option
(** The causal chain ending at the last FIB change for [prefix] (at
    [device], when given) — the convergence critical path to quiescence.
    [None] when the prefix never changed any FIB. *)

val chain_lines : ?prefix_name:(int -> string) -> chain -> string list
(** Human rendering: one line per event with relative time and the delay
    of the edge that led to it. *)

val chain_to_json : ?prefix_name:(int -> string) -> chain -> Json.t

(** {1 Blackhole attribution} *)

type attributed = {
  a_from : float;
  a_until : float;
  a_fraction : float;  (** blackholed demand fraction over the interval *)
  a_seconds : float;   (** fraction x width — sums to exactly the
                           [loss_integrals] blackhole-seconds *)
  a_opened_by : int list;
      (** FIB event ids at the interval's opening instant (or the latest
          FIB event before it; empty for pre-existing state) *)
  a_closed_by : int list;  (** FIB event ids at the closing instant *)
}

val attribute :
  t -> prefix:int -> segments:(float * float * float) list -> attributed list
(** [segments] are [(from, until, blackholed_fraction)] pieces of the loss
    integral (see {!Dataplane.Metrics.loss_segments}). Zero-width and
    zero-fraction segments are dropped; the remaining [a_seconds] sum
    bit-exactly to the integral's blackhole-seconds. *)

val attributed_to_json : attributed -> Json.t
