type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------------- Emitter ---------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to buf f =
  if Float.is_finite f then begin
    (* Shortest-first rendering that still round-trips: %.12g covers every
       float produced by the simulators' arithmetic in practice, but when
       re-parsing it would lose bits fall back to %.17g, which is always
       exact for a double. Keeps exports both compact and bit-faithful. *)
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    Buffer.add_string buf s
  end
  else Buffer.add_string buf "null"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_to buf f
  | String s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf key;
        Buffer.add_char buf ':';
        to_buffer buf value)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ---------------- Parser ---------------- *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st; go ()
    | Some _ | None -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> error st (Printf.sprintf "expected %C, found %C" c d)
  | None -> error st (Printf.sprintf "expected %C, found end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected %s" word)

(* UTF-8 encode a BMP code point from a \uXXXX escape. *)
let add_code_point buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st; Buffer.contents buf
    | Some '\\' ->
      advance st;
      (match peek st with
       | Some '"' -> Buffer.add_char buf '"'; advance st
       | Some '\\' -> Buffer.add_char buf '\\'; advance st
       | Some '/' -> Buffer.add_char buf '/'; advance st
       | Some 'n' -> Buffer.add_char buf '\n'; advance st
       | Some 'r' -> Buffer.add_char buf '\r'; advance st
       | Some 't' -> Buffer.add_char buf '\t'; advance st
       | Some 'b' -> Buffer.add_char buf '\b'; advance st
       | Some 'f' -> Buffer.add_char buf '\012'; advance st
       | Some 'u' ->
         advance st;
         if st.pos + 4 > String.length st.src then error st "truncated \\u escape";
         let hex = String.sub st.src st.pos 4 in
         (match int_of_string_opt ("0x" ^ hex) with
          | Some cp -> add_code_point buf cp; st.pos <- st.pos + 4
          | None -> error st "invalid \\u escape")
       | Some c -> error st (Printf.sprintf "invalid escape \\%C" c)
       | None -> error st "unterminated escape");
      go ()
    | Some c -> Buffer.add_char buf c; advance st; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  let is_float = String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error st (Printf.sprintf "invalid number %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None ->
      (match float_of_string_opt text with
       | Some f -> Float f
       | None -> error st (Printf.sprintf "invalid number %S" text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin advance st; List [] end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' -> advance st; items (v :: acc)
        | Some ']' -> advance st; List (List.rev (v :: acc))
        | Some c -> error st (Printf.sprintf "expected ',' or ']', found %C" c)
        | None -> error st "unterminated array"
      in
      items []
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin advance st; Obj [] end
    else begin
      let field () =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        (key, parse_value st)
      in
      let rec fields acc =
        let f = field () in
        skip_ws st;
        match peek st with
        | Some ',' -> advance st; fields (f :: acc)
        | Some '}' -> advance st; Obj (List.rev (f :: acc))
        | Some c -> error st (Printf.sprintf "expected ',' or '}', found %C" c)
        | None -> error st "unterminated object"
      in
      fields []
    end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected character %C" c)

let of_string src =
  let st = { src; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos = String.length src then Ok v
    else Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
  | exception Parse_error msg -> Error msg

(* ---------------- Accessors ---------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
