(* Per-prefix provenance DAG for route propagation.

   Every causally relevant act in the BGP layer — an origin announce, a
   message send, its delivery, the decision it triggers, the FIB change
   that decision commits — appends one immutable event whose [parent]
   points at the event that caused it. Event ids are assigned in log
   order, and since the simulation clock is monotone the log is sorted by
   time: analysis never needs to sort.

   Recording is ambient, like [Span]: sites test [on ()] (one bool read)
   and do nothing when no recorder is installed, so disabled tracing is
   free on the hot path. The "current cause" cursor threads causality
   through synchronous call chains (deliver -> receive -> decide -> fib)
   without changing any simulation signature; [new_turn] — installed as
   the event queue's on-step hook — clears it at every event boundary so
   causality never leaks between unrelated queue events.

   Devices and prefixes are plain ints: the obs library sits below net,
   so callers pass [Net.Intern.Prefix_id.id] values and supply a
   [prefix_name] callback at export time. *)

type kind =
  | Origin
  | Origin_withdraw
  | Recv
  | Decide
  | Send
  | Drop
  | Fib
  | Restart
  | Session
  | Sweep
  | Config

let kind_label = function
  | Origin -> "origin"
  | Origin_withdraw -> "origin-withdraw"
  | Recv -> "recv"
  | Decide -> "decide"
  | Send -> "send"
  | Drop -> "drop"
  | Fib -> "fib"
  | Restart -> "restart"
  | Session -> "session"
  | Sweep -> "sweep"
  | Config -> "config"

type event = {
  id : int;
  parent : int;  (* -1 = root *)
  kind : kind;
  time : float;  (* sim seconds *)
  device : int;
  peer : int;     (* -1 when not applicable *)
  session : int;  (* -1 when not applicable *)
  prefix : int;   (* interned prefix id; -1 when not prefix-scoped *)
  note : string;
  (* Wire-trip attribution, set on [Send] events only: drawn propagation
     latency, extra fault-model delay, and FIFO queue wait at the head of
     the channel. Their sum is the edge delay to the matching [Recv]. *)
  d_prop : float;
  d_queue : float;
  d_fault : float;
}

type t = {
  mutable events : event array;
  mutable len : int;
  (* (device, prefix id) -> id of that device's latest Decide event, used
     to parent same-instant Send/Fib events to the decision that caused
     them even when the cursor has moved on. *)
  last_decision : (int * int, int) Hashtbl.t;
  mutable cursor : int;
}

let dummy =
  {
    id = -1;
    parent = -1;
    kind = Config;
    time = 0.0;
    device = -1;
    peer = -1;
    session = -1;
    prefix = -1;
    note = "";
    d_prop = 0.0;
    d_queue = 0.0;
    d_fault = 0.0;
  }

let create () =
  {
    events = Array.make 1024 dummy;
    len = 0;
    last_decision = Hashtbl.create 512;
    cursor = -1;
  }

(* [enabled] mirrors [ambient <> None] so hot-path guards cost one bool
   read instead of an option match. *)
let enabled = ref false
let ambient : t option ref = ref None

let on () = !enabled
let installed () = !ambient

let with_recorder t f =
  let previous = !ambient in
  ambient := Some t;
  enabled := true;
  Fun.protect
    ~finally:(fun () ->
      ambient := previous;
      enabled := Option.is_some previous)
    f

let new_turn () = match !ambient with Some t -> t.cursor <- -1 | None -> ()
let cause () = match !ambient with Some t -> t.cursor | None -> -1
let set_cause id = match !ambient with Some t -> t.cursor <- id | None -> ()

let append t ev =
  if t.len = Array.length t.events then begin
    let bigger = Array.make (2 * t.len) dummy in
    Array.blit t.events 0 bigger 0 t.len;
    t.events <- bigger
  end;
  t.events.(t.len) <- ev;
  t.len <- t.len + 1

let record t ~parent ~kind ~time ~device ~peer ~session ~prefix ~note ~d_prop
    ~d_queue ~d_fault =
  let id = t.len in
  append t
    { id; parent; kind; time; device; peer; session; prefix; note; d_prop;
      d_queue; d_fault };
  id

let record0 t ~parent ~kind ~time ~device ~peer ~session ~prefix ~note =
  record t ~parent ~kind ~time ~device ~peer ~session ~prefix ~note
    ~d_prop:0.0 ~d_queue:0.0 ~d_fault:0.0

let with_t f = match !ambient with None -> -1 | Some t -> f t

(* The decision made by [device] for [prefix] at exactly this instant, if
   any — the correct parent for a Send/Fib the decision just caused. An
   older decision (different timestamp) is stale state, e.g. a session
   resend replaying Adj-RIB-Out: fall through to [fallback]. *)
let instant_decision t ~device ~prefix ~time ~fallback =
  match Hashtbl.find_opt t.last_decision (device, prefix) with
  | Some id when t.events.(id).time = time -> id
  | Some _ | None -> fallback

(* ---------------- Recording sites ---------------- *)

let origin ~time ~device ~prefix ~withdraw =
  with_t @@ fun t ->
  let kind = if withdraw then Origin_withdraw else Origin in
  let id =
    record0 t ~parent:(-1) ~kind ~time ~device ~peer:(-1) ~session:(-1)
      ~prefix ~note:""
  in
  t.cursor <- id;
  id

let recv ~time ~device ~peer ~session ~prefix ~note ~parent =
  with_t @@ fun t ->
  let id =
    record0 t ~parent ~kind:Recv ~time ~device ~peer ~session ~prefix ~note
  in
  t.cursor <- id;
  id

let decide ~time ~device ~prefix =
  with_t @@ fun t ->
  let id =
    record0 t ~parent:t.cursor ~kind:Decide ~time ~device ~peer:(-1)
      ~session:(-1) ~prefix ~note:""
  in
  Hashtbl.replace t.last_decision (device, prefix) id;
  id

let send ~time ~src ~dst ~session ~prefix ~note ~parent_hint ~d_prop ~d_queue
    ~d_fault =
  with_t @@ fun t ->
  let parent = instant_decision t ~device:src ~prefix ~time ~fallback:parent_hint in
  record t ~parent ~kind:Send ~time ~device:src ~peer:dst ~session ~prefix
    ~note ~d_prop ~d_queue ~d_fault

let drop_at_send ~time ~src ~dst ~session ~prefix ~note ~parent_hint =
  with_t @@ fun t ->
  let parent = instant_decision t ~device:src ~prefix ~time ~fallback:parent_hint in
  record0 t ~parent ~kind:Drop ~time ~device:src ~peer:dst ~session ~prefix
    ~note

let drop_in_flight ~time ~device ~peer ~session ~prefix ~note ~parent =
  with_t @@ fun t ->
  record0 t ~parent ~kind:Drop ~time ~device ~peer ~session ~prefix ~note

let fib ~time ~device ~prefix ~note =
  with_t @@ fun t ->
  let parent = instant_decision t ~device ~prefix ~time ~fallback:t.cursor in
  record0 t ~parent ~kind:Fib ~time ~device ~peer:(-1) ~session:(-1) ~prefix
    ~note

let restart ~time ~device =
  with_t @@ fun t ->
  (* The crash wipes the device's RIBs: its old decisions can no longer
     cause anything, so forget them. Peers' decisions stay valid. *)
  let stale =
    Hashtbl.fold
      (fun ((d, _) as key) _ acc -> if d = device then key :: acc else acc)
      t.last_decision []
  in
  List.iter (Hashtbl.remove t.last_decision) stale;
  let id =
    record0 t ~parent:t.cursor ~kind:Restart ~time ~device ~peer:(-1)
      ~session:(-1) ~prefix:(-1) ~note:""
  in
  t.cursor <- id;
  id

let session_event ~time ~device ~peer ~session ~note ~parent =
  with_t @@ fun t ->
  let id =
    record0 t ~parent ~kind:Session ~time ~device ~peer ~session ~prefix:(-1)
      ~note
  in
  t.cursor <- id;
  id

let sweep ~time ~device ~peer ~session ~note ~parent =
  with_t @@ fun t ->
  let id =
    record0 t ~parent ~kind:Sweep ~time ~device ~peer ~session ~prefix:(-1)
      ~note
  in
  t.cursor <- id;
  id

let config ~time ~device ~peer ~note =
  with_t @@ fun t ->
  let id =
    record0 t ~parent:(-1) ~kind:Config ~time ~device ~peer ~session:(-1)
      ~prefix:(-1) ~note
  in
  t.cursor <- id;
  id

(* ---------------- Inspection ---------------- *)

let length t = t.len
let events t = List.init t.len (fun i -> t.events.(i))
let event t id = if id >= 0 && id < t.len then Some t.events.(id) else None

let default_prefix_name p = if p < 0 then "-" else Printf.sprintf "pfx#%d" p

let event_to_json ?(prefix_name = default_prefix_name) ev =
  let base =
    [
      ("id", Json.Int ev.id);
      ("parent", if ev.parent < 0 then Json.Null else Json.Int ev.parent);
      ("kind", Json.String (kind_label ev.kind));
      ("t", Json.Float ev.time);
      ("device", Json.Int ev.device);
      ("peer", if ev.peer < 0 then Json.Null else Json.Int ev.peer);
      ("session", if ev.session < 0 then Json.Null else Json.Int ev.session);
      ("prefix",
       if ev.prefix < 0 then Json.Null else Json.String (prefix_name ev.prefix));
      ("note", Json.String ev.note);
    ]
  in
  let wire =
    if ev.kind = Send then
      [
        ("d_prop", Json.Float ev.d_prop);
        ("d_queue", Json.Float ev.d_queue);
        ("d_fault", Json.Float ev.d_fault);
      ]
    else []
  in
  Json.Obj (base @ wire)

let to_json ?prefix_name t =
  Json.List (List.map (event_to_json ?prefix_name) (events t))

(* ---------------- Critical path ---------------- *)

type edge = {
  e_from : int;
  e_to : int;
  e_label : string;
  e_delay : float;
  e_parts : (string * float) list;
}

type chain = {
  c_prefix : int;
  c_events : event list;  (* root first *)
  c_edges : edge list;    (* between consecutive [c_events] *)
  c_total : float;        (* terminal time - root time *)
}

(* Last FIB change for [prefix] (optionally at [device]) — the log is
   time-sorted, so scanning backwards finds the quiescence point: the
   latest install/remove, ties broken by highest id. *)
let terminal_fib ?device t ~prefix =
  let rec scan i =
    if i < 0 then None
    else
      let ev = t.events.(i) in
      if
        ev.kind = Fib && ev.prefix = prefix
        && (match device with None -> true | Some d -> ev.device = d)
      then Some ev
      else scan (i - 1)
  in
  scan (t.len - 1)

let edge_between a b =
  let delay = b.time -. a.time in
  let plain label =
    { e_from = a.id; e_to = b.id; e_label = label; e_delay = delay; e_parts = [] }
  in
  match (a.kind, b.kind) with
  | Send, (Recv | Drop) ->
    {
      e_from = a.id;
      e_to = b.id;
      e_label = "wire";
      e_delay = delay;
      e_parts =
        [ ("prop", a.d_prop); ("fault", a.d_fault); ("queue", a.d_queue) ];
    }
  | _, Decide -> plain "decision"
  | _, Send -> plain "emit"
  | _, Drop -> plain "drop"
  | _, Fib -> plain "install"
  | _, Sweep -> plain "sweep-timer"
  | _, Session -> plain "session"
  | _, _ -> plain "causes"

let critical_path ?device t ~prefix =
  match terminal_fib ?device t ~prefix with
  | None -> None
  | Some terminal ->
    let rec ancestors ev acc =
      if ev.parent < 0 then ev :: acc
      else ancestors t.events.(ev.parent) (ev :: acc)
    in
    let evs = ancestors terminal [] in
    let rec edges = function
      | a :: (b :: _ as rest) -> edge_between a b :: edges rest
      | [ _ ] | [] -> []
    in
    let root = List.hd evs in
    Some
      {
        c_prefix = prefix;
        c_events = evs;
        c_edges = edges evs;
        c_total = terminal.time -. root.time;
      }

let event_descr ev =
  match ev.kind with
  | Origin -> Printf.sprintf "origin announce at device %d" ev.device
  | Origin_withdraw -> Printf.sprintf "origin withdraw at device %d" ev.device
  | Recv ->
    Printf.sprintf "recv %s at device %d from %d (session %d)" ev.note
      ev.device ev.peer ev.session
  | Decide -> Printf.sprintf "decision at device %d" ev.device
  | Send ->
    Printf.sprintf "send %s from device %d to %d (session %d)" ev.note
      ev.device ev.peer ev.session
  | Drop ->
    Printf.sprintf "drop (%s) %d -> %d" ev.note ev.device ev.peer
  | Fib -> Printf.sprintf "fib %s at device %d" ev.note ev.device
  | Restart -> Printf.sprintf "speaker restart at device %d" ev.device
  | Session ->
    Printf.sprintf "session %s at device %d (peer %d)" ev.note ev.device
      ev.peer
  | Sweep -> Printf.sprintf "sweep (%s) at device %d" ev.note ev.device
  | Config -> Printf.sprintf "config %s at device %d" ev.note ev.device

let chain_lines ?(prefix_name = default_prefix_name) chain =
  match chain.c_events with
  | [] -> []
  | root :: _ ->
    let header =
      Printf.sprintf "critical path for %s: %d events, %.6fs total"
        (prefix_name chain.c_prefix)
        (List.length chain.c_events)
        chain.c_total
    in
    let rec go evs edges acc =
      match (evs, edges) with
      | [], _ -> List.rev acc
      | ev :: evs', edges ->
        let edge_txt, edges' =
          match edges with
          | [] -> ("", [])
          | e :: rest ->
            let parts =
              if e.e_parts = [] then ""
              else
                " ("
                ^ String.concat ", "
                    (List.map
                       (fun (k, v) -> Printf.sprintf "%s %.6f" k v)
                       e.e_parts)
                ^ ")"
            in
            (Printf.sprintf "  [+%.6f %s%s]" e.e_delay e.e_label parts, rest)
        in
        let line =
          Printf.sprintf "  t=+%.6f  %s%s" (ev.time -. root.time)
            (event_descr ev) edge_txt
        in
        go evs' edges' (line :: acc)
    in
    (* Edge i sits between event i and event i+1; print it on event i+1's
       line (the edge that led here). *)
    let first_line = Printf.sprintf "  t=+%.6f  %s" 0.0 (event_descr root) in
    header :: first_line :: go (List.tl chain.c_events) chain.c_edges []

let chain_to_json ?(prefix_name = default_prefix_name) chain =
  Json.Obj
    [
      ("prefix", Json.String (prefix_name chain.c_prefix));
      ("total_s", Json.Float chain.c_total);
      ("events",
       Json.List (List.map (event_to_json ~prefix_name) chain.c_events));
      ("edges",
       Json.List
         (List.map
            (fun e ->
              Json.Obj
                [
                  ("from", Json.Int e.e_from);
                  ("to", Json.Int e.e_to);
                  ("label", Json.String e.e_label);
                  ("delay_s", Json.Float e.e_delay);
                  ("parts",
                   Json.Obj
                     (List.map (fun (k, v) -> (k, Json.Float v)) e.e_parts));
                ])
            chain.c_edges));
    ]

(* ---------------- Blackhole attribution ---------------- *)

type attributed = {
  a_from : float;
  a_until : float;
  a_fraction : float;
  a_seconds : float;
  a_opened_by : int list;
  a_closed_by : int list;
}

let fib_ids_at t ~prefix time =
  let rec go i acc =
    if i < 0 then acc
    else
      let ev = t.events.(i) in
      let acc =
        if ev.kind = Fib && ev.prefix = prefix && ev.time = time then
          ev.id :: acc
        else acc
      in
      (* Log is time-sorted: once past events strictly before [time], stop. *)
      if ev.time < time then acc else go (i - 1) acc
  in
  go (t.len - 1) []

let last_fib_before t ~prefix time =
  let rec scan i =
    if i < 0 then []
    else
      let ev = t.events.(i) in
      if ev.kind = Fib && ev.prefix = prefix && ev.time < time then [ ev.id ]
      else scan (i - 1)
  in
  scan (t.len - 1)

let attribute t ~prefix ~segments =
  List.filter_map
    (fun (sfrom, suntil, fraction) ->
      let width = suntil -. sfrom in
      if width <= 0.0 || fraction = 0.0 then None
      else
        let opened =
          match fib_ids_at t ~prefix sfrom with
          | [] -> last_fib_before t ~prefix sfrom
          | ids -> ids
        in
        let closed = fib_ids_at t ~prefix suntil in
        Some
          {
            a_from = sfrom;
            a_until = suntil;
            a_fraction = fraction;
            a_seconds = fraction *. width;
            a_opened_by = opened;
            a_closed_by = closed;
          })
    segments

let attributed_to_json a =
  Json.Obj
    [
      ("from_s", Json.Float a.a_from);
      ("until_s", Json.Float a.a_until);
      ("fraction", Json.Float a.a_fraction);
      ("seconds", Json.Float a.a_seconds);
      ("opened_by", Json.List (List.map (fun i -> Json.Int i) a.a_opened_by));
      ("closed_by", Json.List (List.map (fun i -> Json.Int i) a.a_closed_by));
    ]
