(** Convergence spans: timed, nested scopes around the hot phases of a run.

    A {!recorder} collects a span tree for one run: each {!with_span}
    scope becomes a span carrying a wall-clock interval (via [Sys.time])
    and, when a simulation clock has been registered, the event-queue
    (virtual) time interval too. Spans nest: a scope opened inside another
    records the outer span as its parent, which is how a run decomposes
    into phases (scenario -> converge -> speaker decision -> RPA
    evaluation).

    Recording is ambient: instrumentation sites call {!with_span}
    unconditionally, and when no recorder is installed the call reduces to
    one ref read plus the function application — near-zero cost, and no
    {!Dsim.Rng} draws either way. Install a recorder around the code under
    observation with {!with_recorder}. *)

type t
(** A recorder. *)

type span = {
  id : int;  (** unique within the recorder, in start order *)
  parent : int option;
  name : string;
  attrs : (string * string) list;
  wall_start_s : float;
  wall_stop_s : float;
  sim_start : float option;  (** virtual seconds, when a sim clock is set *)
  sim_stop : float option;
}

val create : ?max_spans:int -> unit -> t
(** [max_spans] (default 100_000) bounds memory: further spans are counted
    in {!dropped} instead of recorded (their scopes still run). *)

val with_recorder : t -> (unit -> 'a) -> 'a
(** Installs [t] as the ambient recorder for the duration of the call
    (restoring the previous one after, exceptions included). *)

val installed : unit -> t option

val set_sim_clock : (unit -> float) -> unit
(** Registers the virtual-time source on the ambient recorder (no-op when
    none is installed). {!Bgp.Network.create} calls this with its event
    queue's clock, so the most recently created network stamps spans. *)

val with_span :
  ?attrs:(unit -> (string * string) list) -> string -> (unit -> 'a) -> 'a
(** Times [f] as a span on the ambient recorder; just runs [f] when none
    is installed. [attrs] is a thunk so sites pay nothing to build labels
    when not recording. *)

(** {1 Inspection & export} *)

val spans : t -> span list
(** Completed spans in start order. Scopes still open are not included —
    call {!close_open} first when exporting a run that may have been cut
    short. *)

val open_scopes : t -> int
(** Number of scopes currently open (not yet recorded). *)

val close_open : t -> unit
(** Force-closes every scope still open, innermost first, stamping each
    with the current clocks and a [("truncated", "true")] attribute. The
    exporters call this before reading {!spans} so span trees stay
    well-formed when a run is interrupted (chaos schedules, exceptions
    caught above the recorder). A scope force-closed here is not recorded
    a second time when its own [with_span] unwind later runs. *)

val dropped : t -> int

val durations_s : t -> name:string -> float list
(** Wall-clock durations (seconds) of every completed span named [name]. *)

val span_to_json : span -> Json.t
(** Flat object with [id]/[parent]/[name]/[attrs], [wall_ms], and
    [sim_start]/[sim_stop] (null without a sim clock) — one JSONL line per
    span. *)
