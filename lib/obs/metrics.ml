type key = string * (string * string) list

type t = {
  mutable on : bool;
  counters : (key, counter) Hashtbl.t;
  gauges : (key, gauge) Hashtbl.t;
  histograms : (key, histogram) Hashtbl.t;
}

and counter = {
  c_owner : t;
  c_name : string;
  c_labels : (string * string) list;
  mutable c_value : int;
}

and gauge = {
  g_owner : t;
  g_name : string;
  g_labels : (string * string) list;
  mutable g_value : float;
}

and histogram = {
  h_owner : t;
  h_name : string;
  h_labels : (string * string) list;
  mutable h_data : float array;
  mutable h_len : int;
}

let create ?(enabled = false) () =
  {
    on = enabled;
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let default = create ()

let set_enabled t on = t.on <- on
let is_enabled t = t.on

let reset t =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) t.counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.0) t.gauges;
  Hashtbl.iter (fun _ h -> h.h_len <- 0) t.histograms

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let intern table key make =
  match Hashtbl.find_opt table key with
  | Some v -> v
  | None ->
    let v = make () in
    Hashtbl.replace table key v;
    v

(* ---------------- Counters ---------------- *)

let counter ?(registry = default) ?(labels = []) name =
  let labels = normalize_labels labels in
  intern registry.counters (name, labels) (fun () ->
      { c_owner = registry; c_name = name; c_labels = labels; c_value = 0 })

let incr ?(by = 1) c =
  if c.c_owner.on then c.c_value <- c.c_value + by

let value c = c.c_value

(* ---------------- Gauges ---------------- *)

let gauge ?(registry = default) ?(labels = []) name =
  let labels = normalize_labels labels in
  intern registry.gauges (name, labels) (fun () ->
      { g_owner = registry; g_name = name; g_labels = labels; g_value = 0.0 })

let set_gauge g v = if g.g_owner.on then g.g_value <- v
let add_gauge g v = if g.g_owner.on then g.g_value <- g.g_value +. v
let gauge_value g = g.g_value

(* ---------------- Histograms ---------------- *)

let histogram ?(registry = default) ?(labels = []) name =
  let labels = normalize_labels labels in
  intern registry.histograms (name, labels) (fun () ->
      { h_owner = registry; h_name = name; h_labels = labels;
        h_data = [||]; h_len = 0 })

let observe h x =
  if h.h_owner.on then begin
    if h.h_len = Array.length h.h_data then begin
      let grown = Array.make (max 64 (2 * Array.length h.h_data)) 0.0 in
      Array.blit h.h_data 0 grown 0 h.h_len;
      h.h_data <- grown
    end;
    h.h_data.(h.h_len) <- x;
    h.h_len <- h.h_len + 1
  end

let samples h = Array.to_list (Array.sub h.h_data 0 h.h_len)

let summary h = if h.h_len = 0 then None else Some (Dsim.Stats.summarize (samples h))

(* ---------------- Export ---------------- *)

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let sorted_fold table extract =
  Hashtbl.fold (fun key v acc -> (key, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (_, v) -> extract v)

let snapshot t =
  let counters =
    sorted_fold t.counters (fun c ->
        Json.Obj
          [
            ("name", Json.String c.c_name);
            ("labels", labels_json c.c_labels);
            ("value", Json.Int c.c_value);
          ])
  in
  let gauges =
    sorted_fold t.gauges (fun g ->
        Json.Obj
          [
            ("name", Json.String g.g_name);
            ("labels", labels_json g.g_labels);
            ("value", Json.Float g.g_value);
          ])
  in
  let histograms =
    sorted_fold t.histograms (fun h ->
        let stats =
          match summary h with
          | None -> [ ("count", Json.Int 0) ]
          | Some s ->
            [
              ("count", Json.Int s.Dsim.Stats.count);
              ("mean", Json.Float s.Dsim.Stats.mean);
              ("min", Json.Float s.Dsim.Stats.min);
              ("max", Json.Float s.Dsim.Stats.max);
              ("p50", Json.Float s.Dsim.Stats.p50);
              ("p90", Json.Float s.Dsim.Stats.p90);
              ("p95", Json.Float s.Dsim.Stats.p95);
              ("p99", Json.Float s.Dsim.Stats.p99);
            ]
        in
        Json.Obj
          (("name", Json.String h.h_name)
           :: ("labels", labels_json h.h_labels)
           :: stats))
  in
  Json.Obj
    [
      ("counters", Json.List counters);
      ("gauges", Json.List gauges);
      ("histograms", Json.List histograms);
    ]
