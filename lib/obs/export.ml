(* Perfetto / Chrome trace-event exporter.

   Renders the span tree and the causal DAG into the trace-event JSON
   format (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
   spans as complete ("X") slices, causal events as thread instants ("i"),
   and causal parent links as flow arrows ("s"/"f"). Open the result at
   https://ui.perfetto.dev or chrome://tracing.

   Timestamps are microseconds. Spans prefer virtual (simulation) time so
   slices line up with the causal events; spans recorded without a sim
   clock fall back to wall time relative to the earliest span. *)

let us s = s *. 1e6

let span_events spans =
  let wall0 =
    List.fold_left
      (fun acc (s : Span.span) -> Float.min acc s.wall_start_s)
      Float.infinity spans
  in
  List.concat_map
    (fun (s : Span.span) ->
      let ts, dur =
        match (s.sim_start, s.sim_stop) with
        | Some a, Some b -> (us a, us (b -. a))
        | _ ->
          ( us (s.wall_start_s -. wall0),
            us (s.wall_stop_s -. s.wall_start_s) )
      in
      [
        Json.Obj
          [
            ("name", Json.String s.name);
            ("cat", Json.String "span");
            ("ph", Json.String "X");
            ("pid", Json.Int 0);
            ("tid", Json.Int 0);
            ("ts", Json.Float ts);
            ("dur", Json.Float dur);
            ("args",
             Json.Obj
               (("span_id", Json.Int s.id)
                :: ("parent",
                    match s.parent with
                    | Some p -> Json.Int p
                    | None -> Json.Null)
                :: List.map (fun (k, v) -> (k, Json.String v)) s.attrs));
          ];
      ])
    spans

let causal_events ?(prefix_name = Causal.default_prefix_name) causal =
  let evs = Causal.events causal in
  let tid ev = if ev.Causal.device < 0 then 0 else ev.Causal.device in
  let instant (ev : Causal.event) =
    Json.Obj
      [
        ("name",
         Json.String
           (Causal.kind_label ev.kind
           ^ if ev.note = "" then "" else ":" ^ ev.note));
        ("cat", Json.String "causal");
        ("ph", Json.String "i");
        ("s", Json.String "t");
        ("pid", Json.Int 1);
        ("tid", Json.Int (tid ev));
        ("ts", Json.Float (us ev.time));
        ("args",
         Json.Obj
           [
             ("id", Json.Int ev.id);
             ("parent",
              if ev.parent < 0 then Json.Null else Json.Int ev.parent);
             ("prefix",
              if ev.prefix < 0 then Json.Null
              else Json.String (prefix_name ev.prefix));
             ("peer", if ev.peer < 0 then Json.Null else Json.Int ev.peer);
             ("session",
              if ev.session < 0 then Json.Null else Json.Int ev.session);
           ]);
      ]
  in
  let flows (ev : Causal.event) =
    if ev.parent < 0 then []
    else
      match Causal.event causal ev.parent with
      | None -> []
      | Some parent ->
        [
          Json.Obj
            [
              ("name", Json.String "cause");
              ("cat", Json.String "causal-flow");
              ("ph", Json.String "s");
              ("id", Json.Int ev.id);
              ("pid", Json.Int 1);
              ("tid", Json.Int (tid parent));
              ("ts", Json.Float (us parent.time));
            ];
          Json.Obj
            [
              ("name", Json.String "cause");
              ("cat", Json.String "causal-flow");
              ("ph", Json.String "f");
              ("bp", Json.String "e");
              ("id", Json.Int ev.id);
              ("pid", Json.Int 1);
              ("tid", Json.Int (tid ev));
              ("ts", Json.Float (us ev.time));
            ];
        ]
  in
  List.concat_map (fun ev -> instant ev :: flows ev) evs

let metadata ?causal () =
  let process pid name =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
  in
  let threads =
    match causal with
    | None -> []
    | Some c ->
      let devices =
        List.sort_uniq compare
          (List.filter_map
             (fun (ev : Causal.event) ->
               if ev.device >= 0 then Some ev.device else None)
             (Causal.events c))
      in
      List.map
        (fun d ->
          Json.Obj
            [
              ("name", Json.String "thread_name");
              ("ph", Json.String "M");
              ("pid", Json.Int 1);
              ("tid", Json.Int d);
              ("args",
               Json.Obj
                 [ ("name", Json.String (Printf.sprintf "device %d" d)) ]);
            ])
        devices
  in
  process 0 "spans" :: process 1 "simulation" :: threads

let perfetto ?spans ?causal ?prefix_name () =
  let events =
    metadata ?causal ()
    @ (match spans with
      | Some recorder -> span_events (Span.spans recorder)
      | None -> [])
    @
    match causal with
    | Some c -> causal_events ?prefix_name c
    | None -> []
  in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms");
    ]
