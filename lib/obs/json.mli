(** A minimal JSON value type with a hand-rolled emitter and parser.

    The observability layer exports run logs as JSONL (one JSON value per
    line); this repository deliberately takes no JSON library dependency,
    so the emitter and the (strict, recursive-descent) parser live here.
    The parser exists mostly so tests can assert that everything the
    emitter writes round-trips. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Non-finite floats render as [null] —
    JSON has no representation for them. Finite floats render with the
    shortest of [%.12g] / [%.17g] that parses back to the identical bit
    pattern, so numeric exports round-trip exactly. Control characters in
    strings are escaped ([\uXXXX] or the named escapes), so every emitted
    line is valid JSON. *)

val to_buffer : Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** Strict parse of a single JSON value (surrounding whitespace allowed).
    Numbers without [.], [e] or [E] that fit in an OCaml [int] parse as
    [Int], everything else as [Float]. *)

(** {1 Accessors}

    Shallow helpers for tests and consumers; all return [None] on a type
    mismatch or missing key. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
(** [to_float] accepts both [Int] and [Float]. *)

val to_str : t -> string option
