(** Perfetto / Chrome trace-event exporter.

    Renders a {!Span} tree and/or a {!Causal} DAG as one trace-event JSON
    document ([{"traceEvents": [...]}]) loadable in https://ui.perfetto.dev
    or chrome://tracing: spans become complete ("X") slices on pid 0,
    causal events become per-device thread instants on pid 1, and causal
    parent links become flow arrows.

    Timestamps are microseconds of virtual (simulation) time; spans
    recorded without a sim clock fall back to wall time relative to the
    earliest span. With only causal input (no spans), the document is
    deterministic at a fixed seed. *)

val perfetto :
  ?spans:Span.t ->
  ?causal:Causal.t ->
  ?prefix_name:(int -> string) ->
  unit ->
  Json.t
