type span = {
  id : int;
  parent : int option;
  name : string;
  attrs : (string * string) list;
  wall_start_s : float;
  wall_stop_s : float;
  sim_start : float option;
  sim_stop : float option;
}

(* An open scope; becomes a [span] when it closes. [o_closed] guards
   against double-recording when a scope is force-closed by [close_open]
   and its own [Fun.protect] unwind runs afterwards. *)
type open_span = {
  o_id : int;
  o_parent : int option;
  o_name : string;
  o_attrs : (string * string) list;
  o_wall_start : float;
  o_sim_start : float option;
  mutable o_closed : bool;
}

type t = {
  max_spans : int;
  mutable next_id : int;
  mutable stack : open_span list;
  mutable rev_spans : span list;
  mutable completed : int;
  mutable dropped_count : int;
  mutable sim_clock : (unit -> float) option;
}

let create ?(max_spans = 100_000) () =
  {
    max_spans;
    next_id = 0;
    stack = [];
    rev_spans = [];
    completed = 0;
    dropped_count = 0;
    sim_clock = None;
  }

let ambient : t option ref = ref None

let installed () = !ambient

let with_recorder t f =
  let previous = !ambient in
  ambient := Some t;
  Fun.protect ~finally:(fun () -> ambient := previous) f

let set_sim_clock clock =
  match !ambient with
  | Some t -> t.sim_clock <- Some clock
  | None -> ()

let sim_now t =
  match t.sim_clock with Some clock -> Some (clock ()) | None -> None

let with_span ?attrs name f =
  match !ambient with
  | None -> f ()
  | Some t ->
    if t.completed + List.length t.stack >= t.max_spans then begin
      t.dropped_count <- t.dropped_count + 1;
      f ()
    end
    else begin
      let o =
        {
          o_id = t.next_id;
          o_parent = (match t.stack with [] -> None | p :: _ -> Some p.o_id);
          o_name = name;
          o_attrs = (match attrs with Some a -> a () | None -> []);
          o_wall_start = Sys.time ();
          o_sim_start = sim_now t;
          o_closed = false;
        }
      in
      t.next_id <- t.next_id + 1;
      t.stack <- o :: t.stack;
      let close () =
        if not o.o_closed then begin
          o.o_closed <- true;
          (match t.stack with
           | top :: rest when top.o_id = o.o_id -> t.stack <- rest
           | _ ->
             (* An inner scope escaped without closing (exception in a
                nested Fun.protect) — drop back to this span's frame. *)
             let rec unwind = function
               | top :: rest when top.o_id <> o.o_id -> unwind rest
               | _ :: rest -> rest
               | [] -> []
             in
             t.stack <- unwind t.stack);
          t.rev_spans <-
            {
              id = o.o_id;
              parent = o.o_parent;
              name = o.o_name;
              attrs = o.o_attrs;
              wall_start_s = o.o_wall_start;
              wall_stop_s = Sys.time ();
              sim_start = o.o_sim_start;
              sim_stop = sim_now t;
            }
            :: t.rev_spans;
          t.completed <- t.completed + 1
        end
      in
      Fun.protect ~finally:close f
    end

let open_scopes t = List.length t.stack

let close_open t =
  (* Innermost first, so parents always close at or after their children
     and the exported tree stays well-formed. *)
  List.iter
    (fun o ->
      if not o.o_closed then begin
        o.o_closed <- true;
        t.rev_spans <-
          {
            id = o.o_id;
            parent = o.o_parent;
            name = o.o_name;
            attrs = o.o_attrs @ [ ("truncated", "true") ];
            wall_start_s = o.o_wall_start;
            wall_stop_s = Sys.time ();
            sim_start = o.o_sim_start;
            sim_stop = sim_now t;
          }
          :: t.rev_spans;
        t.completed <- t.completed + 1
      end)
    t.stack;
  t.stack <- []

let spans t = List.sort (fun a b -> compare a.id b.id) t.rev_spans

let dropped t = t.dropped_count

let durations_s t ~name =
  List.filter_map
    (fun s -> if s.name = name then Some (s.wall_stop_s -. s.wall_start_s) else None)
    (spans t)

let span_to_json s =
  Json.Obj
    [
      ("id", Json.Int s.id);
      ("parent", (match s.parent with Some p -> Json.Int p | None -> Json.Null));
      ("name", Json.String s.name);
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.attrs));
      ("wall_ms", Json.Float ((s.wall_stop_s -. s.wall_start_s) *. 1000.0));
      ("sim_start",
       (match s.sim_start with Some x -> Json.Float x | None -> Json.Null));
      ("sim_stop",
       (match s.sim_stop with Some x -> Json.Float x | None -> Json.Null));
    ]
