module type VALUE = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module Make (V : VALUE) = struct
  module Tbl = Hashtbl.Make (V)

  let ids : int Tbl.t = Tbl.create 256
  let values : V.t array ref = ref [||]
  let next = ref 0

  let grow filler =
    let cap = Array.length !values in
    if cap = 0 then values := Array.make 64 filler
    else if !next >= cap then begin
      let bigger = Array.make (2 * cap) filler in
      Array.blit !values 0 bigger 0 cap;
      values := bigger
    end

  let id v =
    match Tbl.find_opt ids v with
    | Some i -> i
    | None ->
      let i = !next in
      grow v;
      !values.(i) <- v;
      incr next;
      Tbl.replace ids v i;
      i

  let canonical v = !values.(id v)

  let value i =
    if i < 0 || i >= !next then
      invalid_arg (Printf.sprintf "Intern.value: unknown id %d" i)
    else !values.(i)

  let count () = !next
end

module Prefix_id = Make (struct
  type t = Prefix.t

  let equal = Prefix.equal
  let hash = Prefix.hash
end)

module As_path_id = Make (struct
  type t = As_path.t

  let equal = As_path.equal
  let hash p = Hashtbl.hash (As_path.segments p)
end)

module Community_set_id = Make (struct
  type t = Community.Set.t

  let equal = Community.Set.equal
  let hash s = Hashtbl.hash (Community.Set.elements s)
end)
