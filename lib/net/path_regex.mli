(** Regular expressions over AS-paths.

    RPA path signatures identify path sets with expressions such as
    ["as_path_regex=^12345"] (Section 4.3): match AS-paths starting with ASN
    12345 regardless of length. This module implements a small, dependency
    free regex engine that operates on the *token* level — each token is an
    ASN — mirroring how router vendors match AS-path regular expressions.

    Supported syntax:
    - an integer literal matches that ASN;
    - ['.'] matches any single ASN;
    - ['_'] is a token separator and matches nothing (accepted for
      familiarity with string-based AS-path regexes);
    - [( … | … )] grouping and alternation;
    - postfix ['*'], ['+'], ['?'], and bounded repetition [{m}], [{m,}],
      [{m,n}] — bounds above 1024 are rejected at compile time because the
      automaton grows linearly with the bound;
    - [\[100-200\]] an inclusive ASN range, [\[100,200,300\]] an ASN set
      (ranges and single ASNs can be mixed, comma separated); [\[^ … \]]
      negates the class (matches any ASN outside it);
    - a leading ['^'] anchors at the beginning of the path, a trailing ['$']
      anchors at the end. Without anchors the pattern matches any
      contiguous sub-path. ["^$"] matches only the empty path.

    Tokens may be separated by spaces or ['_']. *)

type t
(** A compiled pattern. *)

val compile : string -> (t, string) result

val compile_exn : string -> t
(** Raises [Invalid_argument] with the parse error. *)

val source : t -> string
(** The original pattern string. *)

val matches : t -> As_path.t -> bool
(** [matches re path] tests [re] against the flattened ASN sequence of
    [path]. *)

val matches_asns : t -> Asn.t list -> bool

val pp : Format.formatter -> t -> unit
(** Prints {!source}. *)

val equal : t -> t -> bool
(** Source-string equality (used for RPA signature caching). *)

(** {1 Symbolic automaton view}

    The static analyzer (lib/analysis) runs product, emptiness and
    subsumption constructions over compiled patterns. Those algorithms need
    transition labels they can inspect — not predicates — so the NFA is
    exposed with symbolic labels over inclusive ASN ranges. *)

type label =
  | In of (int * int) list  (** token inside one of the inclusive ranges *)
  | Not_in of (int * int) list
      (** token outside all ranges; [Not_in \[\]] matches any token *)

val label_matches : label -> int -> bool

type sym = {
  sym_transitions : (label option * int) list array;
      (** per-state edge list; [None] labels are epsilon transitions *)
  sym_start : int;
  sym_accept : int;
}

val symbolic : t -> sym
(** A fully-anchored view of the compiled automaton: unanchored pattern
    sides are closed with any-token self-loops (a leading/trailing [.*]),
    so the language of [symbolic t] over complete ASN sequences is exactly
    the set of paths accepted by {!matches_asns}. *)
