(** Regular expressions over AS-paths.

    RPA path signatures identify path sets with expressions such as
    ["as_path_regex=^12345"] (Section 4.3): match AS-paths starting with ASN
    12345 regardless of length. This module implements a small, dependency
    free regex engine that operates on the *token* level — each token is an
    ASN — mirroring how router vendors match AS-path regular expressions.

    Supported syntax:
    - an integer literal matches that ASN;
    - ['.'] matches any single ASN;
    - ['_'] is a token separator and matches nothing (accepted for
      familiarity with string-based AS-path regexes);
    - [( … | … )] grouping and alternation;
    - postfix ['*'], ['+'], ['?'], and bounded repetition [{m}], [{m,}],
      [{m,n}] — bounds above 1024 are rejected at compile time because the
      automaton grows linearly with the bound;
    - [\[100-200\]] an inclusive ASN range, [\[100,200,300\]] an ASN set
      (ranges and single ASNs can be mixed, comma separated); [\[^ … \]]
      negates the class (matches any ASN outside it);
    - a leading ['^'] anchors at the beginning of the path, a trailing ['$']
      anchors at the end. Without anchors the pattern matches any
      contiguous sub-path. ["^$"] matches only the empty path.

    Tokens may be separated by spaces or ['_']. *)

type t
(** A compiled pattern. *)

val compile : string -> (t, string) result

val compile_exn : string -> t
(** Raises [Invalid_argument] with the parse error. *)

val source : t -> string
(** The original pattern string. *)

val matches : t -> As_path.t -> bool
(** [matches re path] tests [re] against the flattened ASN sequence of
    [path]. *)

val matches_asns : t -> Asn.t list -> bool

val pp : Format.formatter -> t -> unit
(** Prints {!source}. *)

val equal : t -> t -> bool
(** Source-string equality (used for RPA signature caching). *)
