(* A Thompson-construction NFA over ASN tokens.

   The only subtlety versus a textbook engine is anchoring: we keep explicit
   [anchored_start]/[anchored_end] flags instead of embedding position
   assertions in the automaton, which keeps simulation a plain set-of-states
   walk. Unanchored search is simulated by re-injecting the start state at
   every input position and accepting as soon as an accept state is seen
   (with a trailing [.*] implied by not requiring end-of-input). *)

type ast =
  | Lit of int
  | Any
  | Klass of (int * int) list (* inclusive ranges *)
  | Neg_klass of (int * int) list
  | Cat of ast list
  | Alt of ast * ast
  | Star of ast
  | Plus of ast
  | Opt of ast

type parsed = { anchored_start : bool; anchored_end : bool; body : ast }

exception Parse_error of string

(* ---------------- Parser ---------------- *)

type lexer = { src : string; mutable pos : int }

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx = lx.pos <- lx.pos + 1

let fail msg = raise (Parse_error msg)

(* Largest admitted {m,n} repetition bound (the NFA grows linearly with
   it). *)
let max_repetition = 1024

let skip_separators lx =
  let rec go () =
    match peek lx with
    | Some (' ' | '_') ->
      advance lx;
      go ()
    | Some _ | None -> ()
  in
  go ()

let lex_int lx =
  let start = lx.pos in
  let rec go () =
    match peek lx with
    | Some ('0' .. '9') ->
      advance lx;
      go ()
    | Some _ | None -> ()
  in
  go ();
  if lx.pos = start then fail "expected an ASN"
  else int_of_string (String.sub lx.src start (lx.pos - start))

let rec parse_alt lx =
  let left = parse_cat lx in
  skip_separators lx;
  match peek lx with
  | Some '|' ->
    advance lx;
    Alt (left, parse_alt lx)
  | Some _ | None -> left

and parse_cat lx =
  let rec go acc =
    skip_separators lx;
    match peek lx with
    | None | Some (')' | '|' | '$') -> List.rev acc
    | Some _ -> go (parse_rep lx :: acc)
  in
  match go [] with [ one ] -> one | items -> Cat items

and parse_rep lx =
  let atom = parse_atom lx in
  (* Separators between an atom and its quantifier are insignificant, so
     "123 *" parses like "123*". *)
  skip_separators lx;
  match peek lx with
  | Some '*' ->
    advance lx;
    Star atom
  | Some '+' ->
    advance lx;
    Plus atom
  | Some '?' ->
    advance lx;
    Opt atom
  | Some '{' ->
    advance lx;
    parse_bounds lx atom
  | Some _ | None -> atom

(* {m}, {m,} and {m,n} expand structurally: m mandatory copies followed by
   optional ones (or a star for an open bound). Because the expansion
   allocates NFA states proportional to the bound, bounds are capped at
   [max_repetition]: without it ".{1000000}" would build a million-state
   automaton from 12 bytes of input. *)
and parse_bounds lx atom =
  skip_separators lx;
  let low = lex_int lx in
  skip_separators lx;
  let high =
    match peek lx with
    | Some ',' ->
      advance lx;
      skip_separators lx;
      (match peek lx with
       | Some '}' -> None (* {m,} *)
       | Some _ | None -> Some (lex_int lx))
    | Some _ | None -> Some low (* {m} *)
  in
  skip_separators lx;
  (match peek lx with
   | Some '}' -> advance lx
   | Some c -> fail (Printf.sprintf "expected '}', found %c" c)
   | None -> fail "unterminated '{'");
  if low > max_repetition
     || (match high with Some h -> h > max_repetition | None -> false)
  then
    fail
      (Printf.sprintf "repetition bound exceeds the maximum of %d"
         max_repetition);
  let mandatory = List.init low (fun _ -> atom) in
  match high with
  | None -> Cat (mandatory @ [ Star atom ])
  | Some high ->
    if high < low then fail "descending bound in {m,n}"
    else Cat (mandatory @ List.init (high - low) (fun _ -> Opt atom))

and parse_atom lx =
  skip_separators lx;
  match peek lx with
  | Some '.' ->
    advance lx;
    Any
  | Some '(' ->
    advance lx;
    let inner = parse_alt lx in
    (match peek lx with
     | Some ')' ->
       advance lx;
       inner
     | Some c -> fail (Printf.sprintf "expected ')', found %c" c)
     | None -> fail "unterminated '('")
  | Some '[' ->
    advance lx;
    parse_class lx
  | Some ('0' .. '9') -> Lit (lex_int lx)
  | Some '^' -> fail "'^' is only allowed at the start of the pattern"
  | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  | None -> fail "unexpected end of pattern"

and parse_class lx =
  let negated =
    match peek lx with
    | Some '^' ->
      advance lx;
      true
    | Some _ | None -> false
  in
  let rec items acc =
    skip_separators lx;
    let lo = lex_int lx in
    let range =
      match peek lx with
      | Some '-' ->
        advance lx;
        let hi = lex_int lx in
        if hi < lo then fail "descending range in class" else (lo, hi)
      | Some _ | None -> (lo, lo)
    in
    skip_separators lx;
    match peek lx with
    | Some ',' ->
      advance lx;
      items (range :: acc)
    | Some ']' ->
      advance lx;
      List.rev (range :: acc)
    | Some c -> fail (Printf.sprintf "expected ',' or ']', found %c" c)
    | None -> fail "unterminated '['"
  in
  let ranges = items [] in
  if negated then Neg_klass ranges else Klass ranges

let parse src =
  let lx = { src; pos = 0 } in
  skip_separators lx;
  let anchored_start =
    match peek lx with
    | Some '^' ->
      advance lx;
      true
    | Some _ | None -> false
  in
  let body = parse_alt lx in
  skip_separators lx;
  let anchored_end =
    match peek lx with
    | Some '$' ->
      advance lx;
      true
    | Some _ | None -> false
  in
  skip_separators lx;
  (match peek lx with
   | None -> ()
   | Some c -> fail (Printf.sprintf "trailing input at %c" c));
  { anchored_start; anchored_end; body }

(* ---------------- NFA ---------------- *)

(* Transition labels are kept symbolic (range sets, possibly complemented)
   rather than compiled to closures: the static analyzer's product and
   subsumption constructions need to inspect them to partition the ASN
   alphabet into equivalence classes. *)
type label =
  | In of (int * int) list
  | Not_in of (int * int) list

let label_matches lbl token =
  match lbl with
  | In ranges -> List.exists (fun (lo, hi) -> lo <= token && token <= hi) ranges
  | Not_in ranges ->
    not (List.exists (fun (lo, hi) -> lo <= token && token <= hi) ranges)

type transition =
  | Eps of int
  | Tok of label * int

type nfa = {
  transitions : transition list array;
  start : int;
  accept : int;
}

type builder = { mutable table : transition list array; mutable next : int }

let new_state b =
  let id = b.next in
  b.next <- id + 1;
  if id >= Array.length b.table then begin
    let bigger = Array.make (max 8 (2 * Array.length b.table)) [] in
    Array.blit b.table 0 bigger 0 (Array.length b.table);
    b.table <- bigger
  end;
  id

let add_edge b from edge = b.table.(from) <- edge :: b.table.(from)

(* Returns (entry, exit) fragment for [ast]. *)
let rec build b ast =
  match ast with
  | Lit asn ->
    let s = new_state b and e = new_state b in
    add_edge b s (Tok (In [ (asn, asn) ], e));
    (s, e)
  | Any ->
    let s = new_state b and e = new_state b in
    add_edge b s (Tok (Not_in [], e));
    (s, e)
  | Klass ranges ->
    let s = new_state b and e = new_state b in
    add_edge b s (Tok (In ranges, e));
    (s, e)
  | Neg_klass ranges ->
    let s = new_state b and e = new_state b in
    add_edge b s (Tok (Not_in ranges, e));
    (s, e)
  | Cat items ->
    let s = new_state b in
    let last =
      List.fold_left
        (fun prev item ->
          let s_i, e_i = build b item in
          add_edge b prev (Eps s_i);
          e_i)
        s items
    in
    (s, last)
  | Alt (l, r) ->
    let s = new_state b and e = new_state b in
    let s_l, e_l = build b l in
    let s_r, e_r = build b r in
    add_edge b s (Eps s_l);
    add_edge b s (Eps s_r);
    add_edge b e_l (Eps e);
    add_edge b e_r (Eps e);
    (s, e)
  | Star inner ->
    let s = new_state b and e = new_state b in
    let s_i, e_i = build b inner in
    add_edge b s (Eps s_i);
    add_edge b s (Eps e);
    add_edge b e_i (Eps s_i);
    add_edge b e_i (Eps e);
    (s, e)
  | Plus inner ->
    let s_i, e_i = build b inner in
    let e = new_state b in
    add_edge b e_i (Eps s_i);
    add_edge b e_i (Eps e);
    (s_i, e)
  | Opt inner ->
    let s = new_state b and e = new_state b in
    let s_i, e_i = build b inner in
    add_edge b s (Eps s_i);
    add_edge b s (Eps e);
    add_edge b e_i (Eps e);
    (s, e)

let compile_parsed p =
  let b = { table = Array.make 16 []; next = 0 } in
  let s, e = build b p.body in
  {
    transitions = Array.sub b.table 0 b.next;
    start = s;
    accept = e;
  }

type t = {
  src : string;
  nfa : nfa;
  anchored_start : bool;
  anchored_end : bool;
}

let compile src =
  match parse src with
  | exception Parse_error msg -> Error msg
  | exception Failure msg -> Error msg
  | parsed ->
    Ok
      {
        src;
        nfa = compile_parsed parsed;
        anchored_start = parsed.anchored_start;
        anchored_end = parsed.anchored_end;
      }

let compile_exn src =
  match compile src with
  | Ok t -> t
  | Error msg -> invalid_arg (Printf.sprintf "Path_regex %S: %s" src msg)

let source t = t.src
let pp ppf t = Format.pp_print_string ppf t.src
let equal a b = String.equal a.src b.src

(* ---------------- Simulation ---------------- *)

module Int_set = Set.Make (Int)

let eps_closure nfa states =
  let rec go frontier closure =
    match frontier with
    | [] -> closure
    | s :: rest ->
      let frontier, closure =
        List.fold_left
          (fun (frontier, closure) edge ->
            match edge with
            | Eps target when not (Int_set.mem target closure) ->
              (target :: frontier, Int_set.add target closure)
            | Eps _ | Tok _ -> (frontier, closure))
          (rest, closure) nfa.transitions.(s)
      in
      go frontier closure
  in
  go (Int_set.elements states) states

let step nfa states token =
  Int_set.fold
    (fun s acc ->
      List.fold_left
        (fun acc edge ->
          match edge with
          | Tok (lbl, target) when label_matches lbl token ->
            Int_set.add target acc
          | Tok _ | Eps _ -> acc)
        acc nfa.transitions.(s))
    states Int_set.empty

let matches_asns t asn_list =
  let tokens = List.map Asn.to_int asn_list in
  let nfa = t.nfa in
  let inject states =
    if t.anchored_start then states else Int_set.add nfa.start states
  in
  let initial = eps_closure nfa (Int_set.singleton nfa.start) in
  let accepts states = Int_set.mem nfa.accept states in
  let rec walk states tokens =
    (* Accept mid-input only when the end is not anchored. *)
    if (not t.anchored_end) && accepts states then true
    else
      match tokens with
      | [] -> accepts states
      | token :: rest ->
        let states = eps_closure nfa (inject states) in
        let after = eps_closure nfa (step nfa states token) in
        walk after rest
  in
  walk initial tokens

let matches t path = matches_asns t (As_path.asns path)

(* ---------------- Symbolic view ---------------- *)

type sym = {
  sym_transitions : (label option * int) list array;
  sym_start : int;
  sym_accept : int;
}

(* Close the unanchored sides with explicit any-token self-loops so the
   automaton's language over complete ASN sequences coincides with
   {!matches_asns}: an unanchored start behaves as a leading [.*], an
   unanchored end as a trailing [.*]. Product constructions then never need
   to know about anchoring. *)
let symbolic t =
  let n = Array.length t.nfa.transitions in
  let extra =
    (if t.anchored_start then 0 else 1) + if t.anchored_end then 0 else 1
  in
  let table = Array.make (n + extra) [] in
  Array.iteri
    (fun i edges ->
      table.(i) <-
        List.map
          (function Eps j -> (None, j) | Tok (lbl, j) -> (Some lbl, j))
          edges)
    t.nfa.transitions;
  let next = ref n in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  let start =
    if t.anchored_start then t.nfa.start
    else begin
      let s = fresh () in
      table.(s) <- [ (Some (Not_in []), s); (None, t.nfa.start) ];
      s
    end
  in
  let accept =
    if t.anchored_end then t.nfa.accept
    else begin
      let e = fresh () in
      table.(t.nfa.accept) <- (None, e) :: table.(t.nfa.accept);
      table.(e) <- [ (Some (Not_in []), e) ];
      e
    end
  in
  { sym_transitions = table; sym_start = start; sym_accept = accept }
