type segment =
  | Seq of Asn.t list
  | Set of Asn.t list

(* RFC 4271 path length is consulted on every decision-process comparison
   (the hottest compare in the simulator), so it is computed once at
   construction and carried alongside the segments. *)
type t = { segs : segment list; len : int }

let seg_len = function Seq asns -> List.length asns | Set _ -> 1

let of_segs segs =
  { segs; len = List.fold_left (fun acc s -> acc + seg_len s) 0 segs }

let empty = { segs = []; len = 0 }

let of_asns = function
  | [] -> empty
  | asns -> { segs = [ Seq asns ]; len = List.length asns }

let of_segments segs =
  of_segs
    (List.filter (function Seq [] | Set [] -> false | Seq _ | Set _ -> true) segs)

let segments t = t.segs

let prepend asn t =
  match t.segs with
  | Seq asns :: rest -> { segs = Seq (asn :: asns) :: rest; len = t.len + 1 }
  | [] | Set _ :: _ -> { segs = Seq [ asn ] :: t.segs; len = t.len + 1 }

let rec prepend_n n asn t =
  if n <= 0 then t else prepend_n (n - 1) asn (prepend asn t)

let length t = t.len

let mem asn t =
  List.exists
    (function Seq asns | Set asns -> List.exists (Asn.equal asn) asns)
    t.segs

let asns t =
  List.concat_map (function Seq asns | Set asns -> asns) t.segs

let origin_asn t =
  match List.rev (asns t) with [] -> None | last :: _ -> Some last

let first_asn t = match asns t with [] -> None | first :: _ -> Some first

let to_string t =
  let seg_to_string = function
    | Seq asns -> String.concat " " (List.map Asn.to_string asns)
    | Set asns ->
      "{" ^ String.concat " " (List.map Asn.to_string asns) ^ "}"
  in
  String.concat " " (List.map seg_to_string t.segs)

let pp ppf t = Format.pp_print_string ppf (to_string t)

let compare_segment a b =
  match (a, b) with
  | Seq x, Seq y | Set x, Set y ->
    List.compare Asn.compare x y
  | Seq _, Set _ -> -1
  | Set _, Seq _ -> 1

let compare a b =
  if a == b then 0 else List.compare compare_segment a.segs b.segs

let equal a b = a == b || (a.len = b.len && compare a b = 0)
