(** BGP AS-paths.

    An AS-path is a list of segments; we model [AS_SEQUENCE] and [AS_SET]
    (the latter contributes 1 to path length per RFC 4271 9.1.2.2). In the
    data center all paths are plain sequences, but AS_SET support keeps the
    decision process faithful. *)

type segment =
  | Seq of Asn.t list  (** ordered ASNs, most recent first *)
  | Set of Asn.t list  (** unordered aggregate *)

type t

val empty : t
(** The empty path (locally originated route). *)

val of_asns : Asn.t list -> t
(** A single [Seq] segment. [of_asns []] is {!empty}. *)

val of_segments : segment list -> t

val segments : t -> segment list

val prepend : Asn.t -> t -> t
(** [prepend asn p] adds [asn] at the front, merging into a leading [Seq]. *)

val prepend_n : int -> Asn.t -> t -> t
(** AS-path padding: prepend the same ASN [n] times (the "naive approach" of
    Section 3.2). *)

val length : t -> int
(** RFC 4271 path length: each ASN in a [Seq] counts 1, each [Set] counts 1.
    O(1) — the length is cached in the representation because the decision
    process consults it on every preference comparison. *)

val mem : Asn.t -> t -> bool
(** Loop detection: is the ASN anywhere in the path? *)

val origin_asn : t -> Asn.t option
(** The last ASN of the path: the originating AS. *)

val first_asn : t -> Asn.t option
(** The first ASN: the neighbor the route was learned from. *)

val asns : t -> Asn.t list
(** All ASNs in order (sets flattened in their given order). *)

val to_string : t -> string
(** Space separated, e.g. ["65001 65002 {65003 65004}"]. *)

val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
val equal : t -> t -> bool
