(** BGP path attributes.

    The subset of attributes the paper's decision process and RPA signatures
    operate on: ORIGIN, AS_PATH, LOCAL_PREF, MED, standard communities, and
    the link-bandwidth extended community used for distributed WCMP
    (Section 2, Traffic Distribution). *)

type origin = Igp | Egp | Incomplete

val origin_to_string : origin -> string

val origin_rank : origin -> int
(** Lower is preferred: IGP < EGP < INCOMPLETE. *)

type t = {
  origin : origin;
  as_path : As_path.t;
  local_pref : int;
  med : int;
  communities : Community.Set.t;
  link_bandwidth : int option;
      (** Relative WCMP weight carried by the link-bandwidth extended
          community; [None] means no weight advertised (pure ECMP). *)
}

val make :
  ?origin:origin ->
  ?as_path:As_path.t ->
  ?local_pref:int ->
  ?med:int ->
  ?communities:Community.Set.t ->
  ?link_bandwidth:int ->
  unit ->
  t
(** Defaults: [Igp], empty path, local-pref 100, MED 0, no communities, no
    link bandwidth. *)

val with_prepended : Asn.t -> t -> t
(** Attributes after crossing an eBGP hop: the sender's ASN is prepended. *)

val add_community : Community.t -> t -> t
val has_community : Community.t -> t -> bool
val set_local_pref : int -> t -> t
val set_link_bandwidth : int option -> t -> t

val intern : t -> t
(** The hash-consed canonical representative: structurally equal to the
    argument, with canonical (shared) AS-path and community-set fields.
    Two interned equal attributes are physically identical, so {!equal}
    on them is a pointer check. Speakers intern every attribute they
    store; interning is idempotent and never changes semantics. *)

val compare : t -> t -> int
val equal : t -> t -> bool
(** Structural equality with a physical-equality fast path (which interned
    attributes hit). *)

val pp : Format.formatter -> t -> unit
