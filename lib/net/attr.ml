type origin = Igp | Egp | Incomplete

let origin_to_string = function
  | Igp -> "IGP"
  | Egp -> "EGP"
  | Incomplete -> "INCOMPLETE"

let origin_rank = function Igp -> 0 | Egp -> 1 | Incomplete -> 2

type t = {
  origin : origin;
  as_path : As_path.t;
  local_pref : int;
  med : int;
  communities : Community.Set.t;
  link_bandwidth : int option;
}

let make ?(origin = Igp) ?(as_path = As_path.empty) ?(local_pref = 100)
    ?(med = 0) ?(communities = Community.Set.empty) ?link_bandwidth () =
  { origin; as_path; local_pref; med; communities; link_bandwidth }

let with_prepended asn t = { t with as_path = As_path.prepend asn t.as_path }

let add_community c t = { t with communities = Community.Set.add c t.communities }

let has_community c t = Community.Set.mem c t.communities

let set_local_pref local_pref t = { t with local_pref }

let set_link_bandwidth link_bandwidth t = { t with link_bandwidth }

let compare a b =
  if a == b then 0
  else
    let c = Int.compare (origin_rank a.origin) (origin_rank b.origin) in
    if c <> 0 then c
    else
      let c = As_path.compare a.as_path b.as_path in
      if c <> 0 then c
      else
        let c = Int.compare a.local_pref b.local_pref in
        if c <> 0 then c
        else
          let c = Int.compare a.med b.med in
          if c <> 0 then c
          else
            let c = Community.Set.compare a.communities b.communities in
            if c <> 0 then c
            else Option.compare Int.compare a.link_bandwidth b.link_bandwidth

let equal a b = a == b || compare a b = 0

(* Hash-consing: RIB slots across the fleet hold a handful of distinct
   attribute values, so interning makes storage shared and turns the
   hot-path [equal] (Adj-RIB-Out change detection runs it once per peer per
   decision) into a pointer check. Hashing goes through the interned ids of
   the two structured fields — flat integer hashing instead of a structural
   walk. *)
module Hc = Hashtbl.Make (struct
  type nonrec t = t

  let equal a b = compare a b = 0

  let hash t =
    Hashtbl.hash
      ( origin_rank t.origin,
        Intern.As_path_id.id t.as_path,
        t.local_pref,
        t.med,
        Intern.Community_set_id.id t.communities,
        t.link_bandwidth )
end)

let hc : t Hc.t = Hc.create 1024

let intern t =
  match Hc.find_opt hc t with
  | Some c -> c
  | None ->
    let c =
      {
        t with
        as_path = Intern.As_path_id.canonical t.as_path;
        communities = Intern.Community_set_id.canonical t.communities;
      }
    in
    Hc.replace hc c c;
    c

let pp ppf t =
  Format.fprintf ppf "@[<h>lp=%d med=%d origin=%s path=[%a] comms=%a%a@]"
    t.local_pref t.med
    (origin_to_string t.origin)
    As_path.pp t.as_path Community.Set.pp t.communities
    (fun ppf -> function
      | None -> ()
      | Some bw -> Format.fprintf ppf " lbw=%d" bw)
    t.link_bandwidth
