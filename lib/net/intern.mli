(** Hash-consing interners for the route-state hot path.

    A fleet-scale simulation holds the same prefix, AS-path, and community
    set in thousands of RIB slots. Interning maps each distinct value to a
    small integer id and a canonical (physically shared) representative, so
    hot-path hashing is integer hashing and equality checks hit the
    pointer-equality fast path.

    {b Ids are valid for equality and hashing only.} Id assignment order
    depends on which values a run encounters first, which differs across
    scenarios and evaluation modes — any {e ordering} of interned values
    must go through the value's own structural [compare], never through id
    comparison, or determinism across modes breaks. *)

module type VALUE = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module Make (V : VALUE) : sig
  val id : V.t -> int
  (** The value's interned id, allocating one on first sight. Equal values
      always yield the same id within a process. *)

  val canonical : V.t -> V.t
  (** The canonical representative: structurally equal to the argument, and
      physically identical for every equal value interned after it. *)

  val value : int -> V.t
  (** The value behind an id. Raises [Invalid_argument] on an id never
      returned by {!id}. *)

  val count : unit -> int
  (** Number of distinct values interned so far. *)
end

(** Interned IP prefixes. *)
module Prefix_id : sig
  val id : Prefix.t -> int
  val canonical : Prefix.t -> Prefix.t
  val value : int -> Prefix.t
  val count : unit -> int
end

(** Interned AS-paths. *)
module As_path_id : sig
  val id : As_path.t -> int
  val canonical : As_path.t -> As_path.t
  val value : int -> As_path.t
  val count : unit -> int
end

(** Interned community sets. *)
module Community_set_id : sig
  val id : Community.Set.t -> int
  val canonical : Community.Set.t -> Community.Set.t
  val value : int -> Community.Set.t
  val count : unit -> int
end
