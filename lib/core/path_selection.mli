(** Path Selection RPA (Figure 7a).

    Overrides standard BGP path selection with a priority-based algorithm:
    an ordered list of path sets. For every prefix matching the statement's
    destination, the algorithm walks the list in order and picks the first
    path set with enough matching active routes; all its matching routes
    are selected for forwarding, while the {e least preferred} of them is
    advertised to peers (the Section 5.3.1 dissemination rule). If no path
    set matches, BGP falls back to native selection, optionally constrained
    by [BgpNativeMinNextHop]. *)

type min_next_hop =
  | Count of int        (** at least this many matching routes *)
  | Fraction of float
      (** at least this fraction of the device's live peers in the layer
          the candidate routes come from (e.g. the "75%" of
          Section 4.4.2) *)

type path_set = {
  ps_name : string;
  ps_signature : Signature.t;
  ps_min_next_hop : min_next_hop option;
}

type statement = {
  st_name : string;
  destination : Destination.t;
  path_sets : path_set list;  (** priority order; may be empty *)
  bgp_native_min_next_hop : min_next_hop option;
      (** applies when falling back to native selection; a violation forces
          a withdraw (there is nothing to fall back to) *)
  keep_fib_warm_if_mnh_violated : bool;
      (** keep forwarding entries installed while withdrawn, so in-flight
          packets are not dropped — the knob at the center of the
          Figure 14 SEV *)
}

type t = { name : string; statements : statement list }

val path_set :
  ?min_next_hop:min_next_hop -> name:string -> Signature.t -> path_set

val statement :
  ?name:string ->
  ?path_sets:path_set list ->
  ?bgp_native_min_next_hop:min_next_hop ->
  ?keep_fib_warm_if_mnh_violated:bool ->
  Destination.t ->
  statement

val make : ?name:string -> statement list -> t

val required_count : min_next_hop -> denominator:int -> int
(** Resolves a threshold to an absolute count ([Fraction] rounds up). *)

val min_next_hop_equal : min_next_hop -> min_next_hop -> bool
val path_set_equal : path_set -> path_set -> bool
val statement_equal : statement -> statement -> bool

val equal : t -> t -> bool
(** Structural equality ({!Signature.equal} on signatures); used by
    {!Rpa.merge} to drop duplicate blocks and by the static analyzer. *)

val config_lines : t -> string list
val pp : Format.formatter -> t -> unit
