(** PathSignature — the attribute-match criteria that identify a path set
    (Section 4.3).

    A signature is "a unique combination of standard BGP transitive
    attributes": an AS-path regular expression, required communities, an
    origin or neighbor ASN. BGP attributes of member paths need not overlap
    completely, only share the signature. *)

type t

val make :
  ?as_path_regex:string ->
  ?communities:Net.Community.t list ->
  ?none_of:Net.Community.t list ->
  ?origin_asn:Net.Asn.t ->
  ?neighbor_asn:Net.Asn.t ->
  ?neighbor_asns:Net.Asn.t list ->
  unit ->
  t
(** All criteria are conjunctive; an empty signature matches every path.
    [neighbor_asns] restricts the path's first ASN to a set — the way
    per-switch generated RPAs scope a path set to "paths via my
    upstream-layer neighbors" so that paths re-learned sideways from
    downstream peers never match ([neighbor_asn] is the singleton
    shorthand). [none_of] is a negative community match: a path carrying
    any listed community does not match — e.g. excluding maintenance-
    drained routes from an equalized path set, so drains keep working on
    switches whose RPA ignores AS-path padding. Raises [Invalid_argument]
    if the regex does not compile. *)

val any : t

val matches : t -> Net.Attr.t -> bool

val equal : t -> t -> bool

(** {1 Accessors}

    The static analyzer decomposes a signature into its criteria to run
    language-level emptiness/overlap/subsumption checks; these expose the
    conjuncts without breaking abstraction elsewhere. *)

val as_path_regex : t -> Net.Path_regex.t option
val communities : t -> Net.Community.t list
val none_of : t -> Net.Community.t list
val origin_asn : t -> Net.Asn.t option

val neighbor_asns : t -> Net.Asn.t list option
(** [None] = unconstrained; [Some \[\]] matches no path (an any-of over the
    empty set), which the analyzer reports as an unmatchable signature. *)

val pp : Format.formatter -> t -> unit

val config_lines : t -> string list
(** Rendering in the paper's Figure 7 configuration style; used both for
    operator display and for the Table 3 RPA-LOC measurement. *)
