type path_set_trial = {
  set_name : string;
  matched_candidates : int;
  required : int;
  chosen : bool;
}

type verdict =
  | No_matching_statement
  | Path_set_chosen of { statement : string; trials : path_set_trial list }
  | Native_fallback of { statement : string; trials : path_set_trial list }
  | Withdrawn_min_next_hop of {
      statement : string;
      available : int;
      required : int;
      fib_kept_warm : bool;
    }

type explanation = {
  verdict : verdict;
  selected_count : int;
  advertised : string option;
  weights_prescribed : bool;
  critical_path : string list;
}

let statements_of engine =
  List.concat_map
    (fun (ps : Path_selection.t) -> ps.Path_selection.statements)
    (Engine.rpa engine).Rpa.path_selection

let denominator (ctx : Bgp.Rib_policy.ctx) (paths : Bgp.Path.t list) =
  match paths with
  | [] -> 0
  | first :: _ ->
    (match ctx.Bgp.Rib_policy.peer_layer first.Bgp.Path.peer with
     | None -> List.length paths
     | Some layer -> ctx.Bgp.Rib_policy.live_peers_in_layer layer)

let required_of ctx mnh ~reference =
  match mnh with
  | None -> 1
  | Some (Path_selection.Count n) -> max 1 n
  | Some (Path_selection.Fraction _ as f) ->
    max 1
      (Path_selection.required_count f ~denominator:(denominator ctx reference))

let trials_of ctx (st : Path_selection.statement) candidates =
  let rec walk chosen_already acc = function
    | [] -> List.rev acc
    | (set : Path_selection.path_set) :: rest ->
      let matching =
        List.filter
          (fun (p : Bgp.Path.t) ->
            Signature.matches set.Path_selection.ps_signature p.Bgp.Path.attr)
          candidates
      in
      let required =
        required_of ctx set.Path_selection.ps_min_next_hop ~reference:matching
      in
      let chosen =
        (not chosen_already)
        && matching <> []
        && List.length matching >= required
      in
      walk (chosen_already || chosen)
        ({
           set_name = set.Path_selection.ps_name;
           matched_candidates = List.length matching;
           required;
           chosen;
         }
         :: acc)
        rest
  in
  walk false [] st.Path_selection.path_sets

let explain engine ~(ctx : Bgp.Rib_policy.ctx) ~candidates =
  let native = Bgp.Decision.select ~multipath:true candidates in
  let selection = Engine.evaluate_selection engine ~ctx ~candidates ~native in
  let attrs = List.map (fun (p : Bgp.Path.t) -> p.Bgp.Path.attr) candidates in
  let statement =
    List.find_opt
      (fun (st : Path_selection.statement) ->
        Destination.matches st.Path_selection.destination
          ctx.Bgp.Rib_policy.prefix ~route_attrs:attrs)
      (statements_of engine)
  in
  let verdict =
    match statement with
    | None -> No_matching_statement
    | Some st ->
      let trials = trials_of ctx st candidates in
      if List.exists (fun t -> t.chosen) trials then
        Path_set_chosen { statement = st.Path_selection.st_name; trials }
      else if
        selection.Bgp.Rib_policy.advertise = None
        && st.Path_selection.bgp_native_min_next_hop <> None
      then begin
        let nat_selected, _ = native in
        Withdrawn_min_next_hop
          {
            statement = st.Path_selection.st_name;
            available = List.length nat_selected;
            required =
              required_of ctx st.Path_selection.bgp_native_min_next_hop
                ~reference:nat_selected;
            fib_kept_warm = selection.Bgp.Rib_policy.keep_fib_warm;
          }
      end
      else Native_fallback { statement = st.Path_selection.st_name; trials }
  in
  let weights_prescribed =
    Engine.evaluate_weights engine ~ctx
      ~selected:selection.Bgp.Rib_policy.selected
    <> None
  in
  {
    verdict;
    selected_count = List.length selection.Bgp.Rib_policy.selected;
    advertised =
      Option.map
        (fun (p : Bgp.Path.t) ->
          Format.asprintf "via %d [%a]" p.Bgp.Path.peer Net.As_path.pp
            p.Bgp.Path.attr.Net.Attr.as_path)
        selection.Bgp.Rib_policy.advertise;
    weights_prescribed;
    critical_path = [];
  }

let pp_trial ppf t =
  Format.fprintf ppf "  path set %-12s matched %d (required %d)%s@."
    t.set_name t.matched_candidates t.required
    (if t.chosen then "  <- CHOSEN" else "")

let pp_explanation ppf e =
  (match e.verdict with
   | No_matching_statement ->
     Format.fprintf ppf "no RPA statement covers this destination: native BGP@."
   | Path_set_chosen { statement; trials } ->
     Format.fprintf ppf "statement %S, priority walk:@." statement;
     List.iter (pp_trial ppf) trials
   | Native_fallback { statement; trials } ->
     Format.fprintf ppf "statement %S: no path set matched, native fallback@."
       statement;
     List.iter (pp_trial ppf) trials
   | Withdrawn_min_next_hop { statement; available; required; fib_kept_warm } ->
     Format.fprintf ppf
       "statement %S: BgpNativeMinNextHop violated (%d < %d): WITHDRAWN%s@."
       statement available required
       (if fib_kept_warm then " (FIB kept warm)" else ""));
  Format.fprintf ppf "selected %d path(s); advertised: %s; weights: %s@."
    e.selected_count
    (Option.value e.advertised ~default:"(withdrawn)")
    (if e.weights_prescribed then "prescribed by Route Attribute RPA"
     else "native");
  if e.critical_path <> [] then begin
    Format.fprintf ppf "how this route got here (convergence %s):@."
      "critical path";
    List.iter (fun line -> Format.fprintf ppf "%s@." line) e.critical_path
  end

let active_rpas net agent ~device =
  let native = Bgp.Rib_policy.is_native (Bgp.Speaker.hooks (Bgp.Network.speaker net device)) in
  match Switch_agent.current_rpa agent ~device with
  | Some rpa when not (Rpa.is_empty rpa) ->
    if native then [ "WARNING: agent view has RPAs but speaker runs native hooks" ]
    else Rpa.config_lines rpa
  | Some _ | None ->
    if native then [ "(native BGP, no RPAs)" ]
    else [ "WARNING: speaker runs RPA hooks unknown to the agent" ]

(* The causal citation: the chain of events that put the current FIB entry
   for [prefix] on [device], rendered for the operator. *)
let causal_citation causal ~device prefix =
  match causal with
  | None -> []
  | Some log ->
    let prefix_name id =
      if id < 0 then "-" else Net.Prefix.to_string (Net.Intern.Prefix_id.value id)
    in
    (match
       Obs.Causal.critical_path ~device log
         ~prefix:(Net.Intern.Prefix_id.id prefix)
     with
     | Some chain -> Obs.Causal.chain_lines ~prefix_name chain
     | None -> [])

let explain_route ?causal net agent ~device prefix =
  let speaker = Bgp.Network.speaker net device in
  match Switch_agent.current_rpa agent ~device with
  | Some rpa when not (Rpa.is_empty rpa) ->
    let engine = Engine.create rpa in
    let env = Bgp.Network.env net in
    let ctx =
      {
        Bgp.Rib_policy.device;
        prefix;
        now = env.Bgp.Speaker.now;
        peer_layer = env.Bgp.Speaker.peer_layer;
        live_peers_in_layer =
          (fun layer ->
            List.length
              (List.filter
                 (fun (peer, _) ->
                   match env.Bgp.Speaker.peer_layer peer with
                   | Some l -> Topology.Node.layer_equal l layer
                   | None -> false)
                 (Bgp.Speaker.peers speaker)));
      }
    in
    (* Candidates gathered under the live environment, so session-dependent
       filtering reflects the network's current simulated time. *)
    let e =
      explain engine ~ctx
        ~candidates:(Bgp.Speaker.candidates ~env speaker prefix)
    in
    Some { e with critical_path = causal_citation causal ~device prefix }
  | Some _ | None -> None
