(** Parser for the Figure 7 RPA configuration syntax.

    Operators author RPAs as configuration (the paper reports 150+ RPA
    commits per year); this module parses the same syntax that
    {!Rpa.config_lines} renders, giving a round trip

    {[ Rpa_parser.parse (String.concat "\n" (Rpa.config_lines rpa)) ]}

    that reconstructs an equivalent RPA. Whitespace and newlines are not
    significant. The [advertise_least_favorable] dissemination flag is not
    part of the surface syntax (it is a protocol invariant, not operator
    intent) and always parses as [true]. *)

type pos = { line : int; col : int }
(** 1-based source position of a token's first character. *)

type located_statement = {
  ls_kind : [ `Path_selection | `Route_attribute | `Route_filter ];
  ls_rpa : string;  (** name of the enclosing RPA block *)
  ls_statement : string;  (** statement name *)
  ls_pos : pos;  (** position of the statement's name token *)
}
(** One entry of the statement index built by {!parse_located}: where each
    [Statement] block starts in the source text. The static analyzer uses
    this to attach line/column information to diagnostics on parsed RPA
    configuration. *)

val parse : string -> (Rpa.t, string) result
(** Parses zero or more [PathSelectionRpa], [RouteAttributeRpa] and
    [RouteFilterRpa] blocks and merges them. Error messages carry a
    ["line L, column C: "] prefix pointing at the offending token. *)

val parse_located : string -> (Rpa.t * located_statement list, string) result
(** Like {!parse}, but also returns the statement index, in source order. *)

val parse_exn : string -> Rpa.t
(** Raises [Invalid_argument] with the parse error. *)

val find_statement :
  located_statement list ->
  kind:[ `Path_selection | `Route_attribute | `Route_filter ] ->
  statement:string ->
  located_statement option
(** First index entry for a statement of the given kind and name. *)
