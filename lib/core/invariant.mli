(** Runtime invariant checker for simulated networks.

    The paper's safety argument rests on properties that must hold of the
    {e programmed} forwarding state — no loops, no blackholes where a
    physical path survives, FIBs consistent with the RIBs that justify
    them. This module checks those properties against a live
    {!Bgp.Network.t}, either once (e.g. after convergence) or periodically
    through the event queue while faults and migrations are in flight.

    Violations observed {e during} convergence are expected — they are the
    transient phenomena the paper quantifies. Violations that persist at
    quiescence are bugs, either in the route plan or in the
    implementation. Callers distinguish the two by when they run
    {!check}: {!monitor} samples the transient window, a final {!check}
    after {!Bgp.Network.converge} judges the steady state. *)

type kind =
  | Forwarding_loop
      (** following FIB next hops for a prefix revisits a device *)
  | Blackhole
      (** a device has a surviving physical path (over up links) to an
          origin of the prefix but no FIB entry for it *)
  | Rib_inconsistency
      (** a FIB entry references a (next hop, session) with no
          corresponding route in the Adj-RIB-In — the Loc-RIB is not a
          subset of what was learned *)
  | Dead_next_hop
      (** a FIB entry's next hop is unusable: the session is down or the
          underlying link is down or gone — an ECMP group referencing a
          dead member *)
  | Unstable
      (** re-running the decision process (through whatever hooks — native
          or RPA — the speaker currently has) yields a different FIB or
          advertisement than what is installed; at quiescence the two must
          agree *)
  | Compiled_mismatch
      (** an ingress policy produced by {!Fallback_compiler} is not (or no
          longer) installed on its device *)
  | Session_stale
      (** both ends consider the session established, yet what the sender's
          Adj-RIB-Out holds differs from what the receiver heard — the
          transport silently ate messages (e.g. a 100% drop fault with no
          liveness timers). Each end is internally converged, so only this
          cross-end comparison can see it. Routes marked stale by graceful
          restart are exempt (they are {e known} to be old). *)
  | Stale_route
      (** graceful-restart stale state — a stale-marked Adj-RIB-In route or
          a FIB entry preserved across a restart — still present. Expected
          mid-restart; at quiescence it means the End-of-RIB / stale-path
          sweep machinery leaked. *)
  | Dual_leader
      (** two controller lease grants with different epochs have
          overlapping validity windows (or one epoch was granted to two
          holders) — at some instant two leaders both held the fleet *)
  | Stale_epoch_write
      (** a device or NSDB mutation was committed under a fencing epoch
          after a higher epoch had already been granted — the fence let a
          deposed leader's write through *)

val kind_name : kind -> string
(** Stable machine-readable tag, e.g. ["forwarding-loop"]. *)

type violation = {
  device : int option;  (** the device at fault, when attributable *)
  prefix : Net.Prefix.t option;
  kind : kind;
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

(** {1 Checking} *)

val check : ?prefixes:Net.Prefix.t list -> Bgp.Network.t -> violation list
(** Runs every network-level check ({!Forwarding_loop}, {!Blackhole},
    {!Rib_inconsistency}, {!Dead_next_hop}, {!Unstable}, {!Session_stale},
    {!Stale_route}) over the given prefixes (default: every prefix any
    speaker knows; the session and stale checks are prefix-independent and
    always run). Empty list = all invariants hold right now. *)

val check_session_staleness : Bgp.Network.t -> violation list
(** The cross-end session check alone: for every session both ends consider
    up, the receiver's raw Adj-RIB-In must mirror the sender's Adj-RIB-Out
    (stale-marked routes exempt). Works with liveness timers disabled —
    this is the only detector for silently blinded sessions in legacy
    mode. *)

val check_stale : Bgp.Network.t -> int list -> violation list
(** The graceful-restart leak check alone, over the given device ids. *)

val check_forwarding :
  ?prefix:Net.Prefix.t ->
  lookup:(int -> Bgp.Speaker.fib_state option) ->
  devices:int list ->
  unit ->
  violation list
(** The loop check alone, over an arbitrary forwarding function — no
    network required. Lets tests seed a known-bad FIB directly and assert
    the checker flags it. *)

val check_ha :
  grants:(int * int * float * float) list ->
  commits:(float * int) list ->
  violation list
(** The control-plane HA invariants, over audit trails rather than the
    network: [grants] is the lease-grant history ((holder, epoch, start,
    expiry) — {!Ha.grants}) and [commits] the epoch-stamped committed
    mutations ((time, epoch) — {!Ha.epoch_commits}). Reports
    {!Dual_leader} for any overlap between different epochs' validity
    windows (or one epoch with two holders) and {!Stale_epoch_write} for
    any commit made under an epoch after a higher one was granted.
    Commits with epoch 0 (unfenced single-controller operation) are
    exempt. *)

val check_compiled :
  Bgp.Network.t -> Fallback_compiler.compiled -> violation list
(** Verifies every ingress policy the fallback compiler produced is
    installed verbatim on its device ({!Compiled_mismatch} otherwise) —
    the drift check for the paper's "transitory configuration" liability. *)

(** {1 Recording} *)

val record : Bgp.Network.t -> violation list -> unit
(** Appends each violation to the network's trace as
    {!Bgp.Trace.Violation}, stamped with the current event-queue time. *)

val monitor : ?period:float -> until:float -> Bgp.Network.t -> unit
(** Schedules a repeating check every [period] seconds (default 5 ms) of
    virtual time until [until], recording whatever it finds into the
    trace. Install before running the event queue; the sampled violations
    are the transient ones. *)
