(** Runtime invariant checker for simulated networks.

    The paper's safety argument rests on properties that must hold of the
    {e programmed} forwarding state — no loops, no blackholes where a
    physical path survives, FIBs consistent with the RIBs that justify
    them. This module checks those properties against a live
    {!Bgp.Network.t}, either once (e.g. after convergence) or periodically
    through the event queue while faults and migrations are in flight.

    Violations observed {e during} convergence are expected — they are the
    transient phenomena the paper quantifies. Violations that persist at
    quiescence are bugs, either in the route plan or in the
    implementation. Callers distinguish the two by when they run
    {!check}: {!monitor} samples the transient window, a final {!check}
    after {!Bgp.Network.converge} judges the steady state. *)

type kind =
  | Forwarding_loop
      (** following FIB next hops for a prefix revisits a device *)
  | Blackhole
      (** a device has a surviving physical path (over up links) to an
          origin of the prefix but no FIB entry for it *)
  | Rib_inconsistency
      (** a FIB entry references a (next hop, session) with no
          corresponding route in the Adj-RIB-In — the Loc-RIB is not a
          subset of what was learned *)
  | Dead_next_hop
      (** a FIB entry's next hop is unusable: the session is down or the
          underlying link is down or gone — an ECMP group referencing a
          dead member *)
  | Unstable
      (** re-running the decision process (through whatever hooks — native
          or RPA — the speaker currently has) yields a different FIB or
          advertisement than what is installed; at quiescence the two must
          agree *)
  | Compiled_mismatch
      (** an ingress policy produced by {!Fallback_compiler} is not (or no
          longer) installed on its device *)

val kind_name : kind -> string
(** Stable machine-readable tag, e.g. ["forwarding-loop"]. *)

type violation = {
  device : int option;  (** the device at fault, when attributable *)
  prefix : Net.Prefix.t option;
  kind : kind;
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

(** {1 Checking} *)

val check : ?prefixes:Net.Prefix.t list -> Bgp.Network.t -> violation list
(** Runs every network-level check ({!Forwarding_loop}, {!Blackhole},
    {!Rib_inconsistency}, {!Dead_next_hop}, {!Unstable}) over the given
    prefixes (default: every prefix any speaker knows). Empty list = all
    invariants hold right now. *)

val check_forwarding :
  ?prefix:Net.Prefix.t ->
  lookup:(int -> Bgp.Speaker.fib_state option) ->
  devices:int list ->
  unit ->
  violation list
(** The loop check alone, over an arbitrary forwarding function — no
    network required. Lets tests seed a known-bad FIB directly and assert
    the checker flags it. *)

val check_compiled :
  Bgp.Network.t -> Fallback_compiler.compiled -> violation list
(** Verifies every ingress policy the fallback compiler produced is
    installed verbatim on its device ({!Compiled_mismatch} otherwise) —
    the drift check for the paper's "transitory configuration" liability. *)

(** {1 Recording} *)

val record : Bgp.Network.t -> violation list -> unit
(** Appends each violation to the network's trace as
    {!Bgp.Trace.Violation}, stamped with the current event-queue time. *)

val monitor : ?period:float -> until:float -> Bgp.Network.t -> unit
(** Schedules a repeating check every [period] seconds (default 5 ms) of
    virtual time until [until], recording whatever it finds into the
    trace. Install before running the event queue; the sampled violations
    are the transient ones. *)
