(** Route Filter RPA (Figure 7c).

    Dynamically sets which prefixes may be exchanged between BGP peers,
    without touching routing policy or path selection. Typically enacted at
    network-domain boundaries (data center / backbone). Filters are allow
    lists (the paper: "since our origination and propagation policies are
    deterministic, we choose to apply an allow list"), with optional mask
    length bounds to stop more-specific leaks from overloading switch
    forwarding resources. *)

type peer_signature = {
  peer_layers : Topology.Node.layer list;  (** [[]] = any layer *)
  peer_devices : int list;                 (** [[]] = any device *)
}

val any_peer : peer_signature

type prefix_rule = {
  covering : Net.Prefix.t;
  min_mask_length : int option;
  max_mask_length : int option;
}

type filter =
  | Allow_all
  | Allow_list of prefix_rule list

type statement = {
  st_name : string;
  peer : peer_signature;
  ingress : filter;
  egress : filter;
}

type t = { name : string; statements : statement list }

val prefix_rule :
  ?min_mask_length:int -> ?max_mask_length:int -> Net.Prefix.t -> prefix_rule

val statement :
  ?name:string -> ?ingress:filter -> ?egress:filter -> peer_signature -> statement

val make : ?name:string -> statement list -> t

val peer_matches :
  peer_signature -> peer:int -> layer:Topology.Node.layer option -> bool

val filter_allows : filter -> Net.Prefix.t -> bool

type direction = Ingress | Egress

val peer_signature_equal : peer_signature -> peer_signature -> bool
val prefix_rule_equal : prefix_rule -> prefix_rule -> bool
val filter_equal : filter -> filter -> bool
val statement_equal : statement -> statement -> bool

val equal : t -> t -> bool
(** Structural equality; used by {!Rpa.merge} deduplication and the static
    analyzer. *)

val allows :
  t -> direction -> peer:int -> layer:Topology.Node.layer option ->
  Net.Prefix.t -> bool
(** The first statement whose peer signature matches decides; a peer
    matching no statement is unrestricted. *)

val config_lines : t -> string list
val pp : Format.formatter -> t -> unit
