(* Observability instruments (shared registry; no-ops until enabled). *)
let m_deploys = Obs.Metrics.counter "agent.deploys"
let h_deploy_ms = Obs.Metrics.histogram "agent.deploy_ms"
let m_rpc_lost = Obs.Metrics.counter "agent.rpc_lost"
let m_rpc_timeout = Obs.Metrics.counter "agent.rpc_timeout"
let m_rpc_transient = Obs.Metrics.counter "agent.rpc_transient"
let m_fenced_rpcs = Obs.Metrics.counter "ha.fenced_rpcs"

type t = {
  agent_service : Service.t;
  net : Bgp.Network.t;
  rng : Dsim.Rng.t;
  measure_apply : bool;
  reachable : (int, bool) Hashtbl.t;
  (* the actual RPA values live here; the NSDB views hold their rendered
     form for comparison and display *)
  intended_rpas : (int, Rpa.t) Hashtbl.t;
  current_rpas : (int, Rpa.t) Hashtbl.t;
  mutable deploy_times : float list;  (* reverse order *)
  mutable management : (Openr.Network.t * int) option;
  mutable mgmt_fault : Dsim.Mgmt_fault.t option;
  mutable rpc_deadline : float option;
  (* Fencing: highest controller epoch this agent has accepted an RPC
     from. RPCs stamped with a lower epoch come from a deposed leader and
     are rejected without touching the device. *)
  mutable accepted_epoch : int;
  (* Audit trail for Invariant.Stale_epoch_write: (virtual time, epoch)
     of every committed RPA apply, most recent first. *)
  mutable epoch_commits : (float * int) list;
}

let rpa_path device = Printf.sprintf "devices/%d/rpa" device
let maint_path device = Printf.sprintf "devices/%d/maintenance" device

let create ?(seed = 7) ?(measure_apply = false) net =
  {
    agent_service = Service.create ~name:"switch-agent" ~role:Service.Io;
    net;
    rng = Dsim.Rng.create seed;
    measure_apply;
    reachable = Hashtbl.create 64;
    intended_rpas = Hashtbl.create 64;
    current_rpas = Hashtbl.create 64;
    deploy_times = [];
    management = None;
    mgmt_fault = None;
    rpc_deadline = None;
    accepted_epoch = 0;
    epoch_commits = [];
  }

let service t = t.agent_service
let network t = t.net

let set_mgmt_fault t fault = t.mgmt_fault <- fault
let mgmt_fault t = t.mgmt_fault
let set_rpc_deadline t deadline = t.rpc_deadline <- deadline

let set_intended t ~device rpa =
  Hashtbl.replace t.intended_rpas device rpa;
  Nsdb.set (Service.intended t.agent_service) ~path:(rpa_path device)
    (Nsdb.Rpa rpa)

let clear_intended t ~device =
  Hashtbl.replace t.intended_rpas device Rpa.empty;
  Nsdb.set (Service.intended t.agent_service) ~path:(rpa_path device)
    (Nsdb.Rpa Rpa.empty)

let intended_rpa t ~device = Hashtbl.find_opt t.intended_rpas device
let current_rpa t ~device = Hashtbl.find_opt t.current_rpas device

let set_maintenance t ~device down =
  Nsdb.set (Service.intended t.agent_service) ~path:(maint_path device)
    (Nsdb.Bool down)

let in_maintenance t device =
  match
    Nsdb.get_one (Service.intended t.agent_service) ~path:(maint_path device)
  with
  | Some (Nsdb.Bool b) -> b
  | Some (Nsdb.String _ | Nsdb.Int _ | Nsdb.Float _ | Nsdb.Rpa _) | None -> false

let is_reachable t device =
  Option.value (Hashtbl.find_opt t.reachable device) ~default:true
  &&
  match t.management with
  | None -> true
  | Some (openr, host) ->
    device = host || Openr.Network.reachable openr ~src:host ~dst:device

let set_reachable t ~device up = Hashtbl.replace t.reachable device up

let attach_management_network t openr ~controller_host =
  t.management <- Some (openr, controller_host)

let unexpected_unreachable t =
  Topology.Graph.nodes (Bgp.Network.graph t.net)
  |> List.filter_map (fun (n : Topology.Node.t) ->
         let device = n.Topology.Node.id in
         if (not (is_reachable t device)) && not (in_maintenance t device) then
           Some device
         else None)
  |> List.sort Int.compare

let rpa_equal a b = Rpa.config_lines a = Rpa.config_lines b

type rpc_failure = [ `Rpc_lost | `Rpc_timeout | `Transient of string ]
type outcome = [ `Applied | `In_sync | `Unreachable | `Fenced | rpc_failure ]

let accepted_epoch t = t.accepted_epoch
let epoch_commits t = List.rev t.epoch_commits

(* Install the intended RPA into the device and update the current view.
   Returns the total simulated deploy latency. The apply cost is sampled
   from the seeded RNG by default so observe/bench output is
   bit-reproducible across hosts; [measure_apply] opts back into real
   wall-clock measurement. *)
let apply_rpa t device intended ~rpc_latency =
  let install () =
    let hooks =
      if Rpa.is_empty intended then Bgp.Rib_policy.native
      else Engine.hooks (Engine.create intended)
    in
    Bgp.Network.set_hooks t.net device hooks
  in
  let apply_cost =
    if t.measure_apply then begin
      let apply_start = Sys.time () in
      install ();
      Sys.time () -. apply_start
    end
    else begin
      install ();
      Dsim.Rng.log_normal t.rng ~mu:(log 0.00005) ~sigma:0.5
    end
  in
  t.deploy_times <- (rpc_latency +. apply_cost) :: t.deploy_times;
  Obs.Metrics.incr m_deploys;
  Obs.Metrics.observe h_deploy_ms ((rpc_latency +. apply_cost) *. 1000.0);
  Hashtbl.replace t.current_rpas device intended;
  Nsdb.set (Service.current t.agent_service) ~path:(rpa_path device)
    (Nsdb.Rpa intended)

let reconcile_device ?deadline ?epoch t device =
  let deadline =
    match deadline with Some _ as d -> d | None -> t.rpc_deadline
  in
  (* Fencing happens at the door, before the agent even looks at device
     state: a deposed leader's RPC must not learn anything, let alone
     mutate. An equal-or-newer epoch ratchets the acceptance floor up. *)
  match epoch with
  | Some e when e < t.accepted_epoch ->
    Obs.Metrics.incr m_fenced_rpcs;
    `Fenced
  | _ ->
  (match epoch with
   | Some e -> t.accepted_epoch <- max t.accepted_epoch e
   | None -> ());
  let intended = Option.value (intended_rpa t ~device) ~default:Rpa.empty in
  let current = Option.value (current_rpa t ~device) ~default:Rpa.empty in
  if rpa_equal intended current then `In_sync
  else if not (is_reachable t device) then `Unreachable
  else begin
    let fate =
      match t.mgmt_fault with
      | None -> Dsim.Mgmt_fault.Deliver
      | Some f -> Dsim.Mgmt_fault.rpc_fate f
    in
    match fate with
    | Dsim.Mgmt_fault.Lose ->
      Obs.Metrics.incr m_rpc_lost;
      `Rpc_lost
    | Dsim.Mgmt_fault.Transient reason ->
      Obs.Metrics.incr m_rpc_transient;
      `Transient reason
    | Dsim.Mgmt_fault.Deliver | Dsim.Mgmt_fault.Time_out ->
      Obs.Span.with_span "agent.reconcile"
        ~attrs:(fun () -> [ ("device", string_of_int device) ])
      @@ fun () ->
      let rpc_latency = ref 0.0 in
      Service.with_work t.agent_service (fun () ->
          (* RPC round trip to the BGP daemon, then building and installing
             the evaluation engine. *)
          rpc_latency := Dsim.Rng.log_normal t.rng ~mu:(log 0.0003) ~sigma:0.8;
          apply_rpa t device intended ~rpc_latency:!rpc_latency);
      t.epoch_commits <-
        (Bgp.Network.now t.net, Option.value epoch ~default:t.accepted_epoch)
        :: t.epoch_commits;
      (* A Time_out fate — and an RPC slower than the caller's deadline —
         both mean the device applied the RPA but the controller never saw
         the ack. The current view still advances (the agent keeps polling
         device state), so a retry finds the device `In_sync`: the
         ambiguity is resolved by idempotence, not by guessing. *)
      let timed_out =
        fate = Dsim.Mgmt_fault.Time_out
        || match deadline with Some d -> !rpc_latency > d | None -> false
      in
      if timed_out then begin
        Obs.Metrics.incr m_rpc_timeout;
        `Rpc_timeout
      end
      else `Applied
  end

let reconcile t ~devices =
  List.fold_left
    (fun applied device ->
      match reconcile_device t device with
      | `Applied -> applied + 1
      | `In_sync | `Unreachable | `Fenced | `Rpc_lost | `Rpc_timeout
      | `Transient _ ->
        applied)
    0 devices

let stragglers t =
  Hashtbl.fold
    (fun device intended acc ->
      let current = Option.value (current_rpa t ~device) ~default:Rpa.empty in
      if rpa_equal intended current then acc else device :: acc)
    t.intended_rpas []
  |> List.sort Int.compare

let deploy_time_samples t = List.rev t.deploy_times

let clear_deploy_times t = t.deploy_times <- []
