(** Debuggability tooling (Section 7.2).

    Reasoning about an RPA-switch's behavior is non-trivial: RPAs are
    deployed ad-hoc, their intent known to few operators. The paper's
    mitigation is tooling that (1) shows all active RPAs on a switch and
    (2) highlights the active RPA given a particular route. This module is
    that tooling: {!explain} traces one evaluation end-to-end and renders
    why each candidate was admitted/selected/advertised. *)

type path_set_trial = {
  set_name : string;
  matched_candidates : int;
  required : int;
  chosen : bool;
}

type verdict =
  | No_matching_statement
      (** no Path Selection statement covers this destination: native BGP *)
  | Path_set_chosen of { statement : string; trials : path_set_trial list }
      (** the priority walk, ending at the chosen set *)
  | Native_fallback of { statement : string; trials : path_set_trial list }
      (** all path sets failed; native selection applies *)
  | Withdrawn_min_next_hop of {
      statement : string;
      available : int;
      required : int;
      fib_kept_warm : bool;
    }

type explanation = {
  verdict : verdict;
  selected_count : int;
  advertised : string option;  (** rendered path, [None] = withdrawn *)
  weights_prescribed : bool;  (** a Route Attribute statement applied *)
  critical_path : string list;
      (** when a causal log was supplied to {!explain_route}: the rendered
          convergence critical path of the device's FIB entry — how the
          route got here, hop by hop with per-edge delays. Empty
          otherwise. *)
}

val explain :
  Engine.t ->
  ctx:Bgp.Rib_policy.ctx ->
  candidates:Bgp.Path.t list ->
  explanation
(** Re-runs the evaluation with tracing; does not perturb the engine's
    cache statistics semantics (it uses the same cache). *)

val pp_explanation : Format.formatter -> explanation -> unit

val active_rpas : Bgp.Network.t -> Switch_agent.t -> device:int -> string list
(** Tool (1): the rendered RPAs currently installed on a switch, according
    to the agent's current view, cross-checked against whether the
    speaker's hooks are native. *)

val explain_route :
  ?causal:Obs.Causal.t ->
  Bgp.Network.t -> Switch_agent.t -> device:int -> Net.Prefix.t ->
  explanation option
(** Tool (2): explains the device's live evaluation for a prefix using its
    actual candidates; [None] if no RPA is installed (native BGP). When
    [causal] is the run's causal log, the explanation also cites the
    convergence critical path of the device's FIB entry
    ({!Obs.Causal.critical_path}). *)
