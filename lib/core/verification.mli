(** Pre-deployment verification (Section 7.1).

    Centralium is a hybrid system with functional and configuration
    dependencies between its centralized and distributed halves; the paper
    prevents incompatible changes from reaching production with an
    emulation suite that validates end-to-end routing intent on a
    reduced-scale network incorporating both BGP and the controller. This
    module is that suite: a {!spec} builds a small emulated network and a
    plan, {!qualify} deploys through the real controller and validates the
    intent checks, and {!standard_suite} bundles the qualification runs
    that gate every change to this codebase's RPA feature. *)

type spec = {
  spec_name : string;
  build : unit -> Bgp.Network.t * Controller.plan * Health.check list;
      (** Returns the converged reduced-scale network, the plan compiled
          against it, and the end-to-end intent checks to hold after
          deployment (the plan's own pre/post checks also apply). *)
}

type outcome = {
  outcome_name : string;
  deployed : bool;
  intent_failures : (string * string) list;  (** (check, reason) *)
  errors : string list;  (** controller-level failures *)
}

val passed : outcome -> bool

val qualify : spec -> outcome
(** Builds the spec, runs the registered static analyzer (see
    {!Controller.set_linter}) and the registered symbolic phase verifier
    (see {!Controller.set_verifier}) over its plan — error-severity
    findings from either fail qualification before anything is deployed —
    then deploys through the real controller and evaluates the intent
    checks. *)

val qualify_all : spec list -> outcome list

val pp_outcome : Format.formatter -> outcome -> unit

val standard_suite : ?seed:int -> unit -> spec list
(** Emulations of the three core intents: path equalization on the
    expansion topology (no funneling with the new layer live), the
    min-next-hop guard on the decommission mesh (route present, withdrawn
    below threshold), and safe rollout ordering on the Figure 10 topology
    (loop- and funnel-free at the end state).

    [seed] (default 31) seeds the first emulation's network; the other two
    use [seed + 1] and [seed + 2], preserving the historical 31/32/33
    assignment at the default. *)
