type t = {
  as_path_regex : Net.Path_regex.t option;
  communities : Net.Community.t list;
  none_of : Net.Community.t list;
  origin_asn : Net.Asn.t option;
  neighbor_asns : Net.Asn.t list option;  (* any-of; [None] = unconstrained *)
}

let make ?as_path_regex ?(communities = []) ?(none_of = []) ?origin_asn
    ?neighbor_asn ?neighbor_asns () =
  let neighbor_asns =
    match (neighbor_asn, neighbor_asns) with
    | Some single, Some many -> Some (single :: many)
    | Some single, None -> Some [ single ]
    | None, (Some _ as many) -> many
    | None, None -> None
  in
  {
    as_path_regex = Option.map Net.Path_regex.compile_exn as_path_regex;
    communities;
    none_of;
    origin_asn;
    neighbor_asns;
  }

let any = make ()

let matches t (attr : Net.Attr.t) =
  let regex_ok =
    match t.as_path_regex with
    | None -> true
    | Some re -> Net.Path_regex.matches re attr.Net.Attr.as_path
  in
  let communities_ok =
    List.for_all (fun c -> Net.Attr.has_community c attr) t.communities
    && not (List.exists (fun c -> Net.Attr.has_community c attr) t.none_of)
  in
  let origin_ok =
    match t.origin_asn with
    | None -> true
    | Some asn ->
      (match Net.As_path.origin_asn attr.Net.Attr.as_path with
       | Some o -> Net.Asn.equal o asn
       | None -> false)
  in
  let neighbor_ok =
    match t.neighbor_asns with
    | None -> true
    | Some asns ->
      (match Net.As_path.first_asn attr.Net.Attr.as_path with
       | Some f -> List.exists (Net.Asn.equal f) asns
       | None -> false)
  in
  regex_ok && communities_ok && origin_ok && neighbor_ok

let as_path_regex t = t.as_path_regex
let communities t = t.communities
let none_of t = t.none_of
let origin_asn t = t.origin_asn
let neighbor_asns t = t.neighbor_asns

let equal a b =
  Option.equal Net.Path_regex.equal a.as_path_regex b.as_path_regex
  && List.equal Net.Community.equal a.communities b.communities
  && List.equal Net.Community.equal a.none_of b.none_of
  && Option.equal Net.Asn.equal a.origin_asn b.origin_asn
  && Option.equal (List.equal Net.Asn.equal) a.neighbor_asns b.neighbor_asns

let config_lines t =
  let lines = [] in
  let lines =
    match t.as_path_regex with
    | None -> lines
    | Some re ->
      Printf.sprintf "as_path_regex = \"%s\"" (Net.Path_regex.source re) :: lines
  in
  let lines =
    match t.communities with
    | [] -> lines
    | cs ->
      Printf.sprintf "communities = [%s]"
        (String.concat ", " (List.map Net.Community.to_string cs))
      :: lines
  in
  let lines =
    match t.none_of with
    | [] -> lines
    | cs ->
      Printf.sprintf "communities_none = [%s]"
        (String.concat ", " (List.map Net.Community.to_string cs))
      :: lines
  in
  let lines =
    match t.origin_asn with
    | None -> lines
    | Some asn -> Printf.sprintf "origin_asn = %s" (Net.Asn.to_string asn) :: lines
  in
  let lines =
    match t.neighbor_asns with
    | None -> lines
    | Some asns ->
      Printf.sprintf "neighbor_asns = [%s]"
        (String.concat ", " (List.map Net.Asn.to_string asns))
      :: lines
  in
  match lines with [] -> [ "any" ] | _ :: _ -> List.rev lines

let pp ppf t =
  Format.fprintf ppf "@[<h>%s@]" (String.concat "; " (config_lines t))
