(** Safe RPA deployment sequencing (Section 5.3.2).

    Because RPAs influence path selection and hence dissemination, rollout
    order matters: "a new RPA must be deployed starting from the layer
    furthest from the source of the route origination; removal of an
    existing RPA must start from the layer closest to the source". For
    northbound intents originated at the backbone this means bottom-up
    installs (FSW before SSW before FA) and top-down removals. *)

type direction = Install | Remove

val distance_from_origination :
  Topology.Graph.t -> origination_layer:Topology.Node.layer -> int -> int
(** Layer-rank distance between the device's layer and the origination
    layer. *)

val phases :
  Topology.Graph.t ->
  targets:int list ->
  origination_layer:Topology.Node.layer ->
  direction ->
  int list list
(** Groups the targets into deployment phases. Devices within a phase are
    equidistant from the origination layer and may deploy concurrently;
    phases must complete in order. [Install] orders furthest-first,
    [Remove] closest-first. *)

val is_safe_order :
  Topology.Graph.t ->
  origination_layer:Topology.Node.layer ->
  direction ->
  int list list ->
  bool
(** Checks the invariant: for [Install], every device must be deployed no
    earlier than all targets strictly further from the origination layer;
    for [Remove], the reverse. *)

val flatten : int list list -> int list

val rollback_order : int list list -> int list list
(** Undo order for a (possibly partial) list of already-applied install
    phases: the Section 5.3.2 removal rule applied to exactly what was
    installed — last phase first, and within each phase last device
    first. *)
