(** Control-plane high availability: lease-based leader election with
    fencing epochs and deterministic takeover.

    Centralium's centralized authority is its single point of failure; the
    deployment journal (see {!Controller.resume}) made one controller
    crash-{e resumable}, and this module makes the controller {e replicated}:
    a cluster of controller members shares one {!Switch_agent}, one
    {!Nsdb.Replicated} and one network, and elects a leader through a
    lease key in the NSDB.

    {2 Lease protocol}

    The lease lives at [ha/lease] as ["holder:epoch:expiry"] and is only
    ever written through {!Nsdb.Replicated.compare_and_set} — acquisition
    CASes from the observed (absent or expired) value, renewal CASes from
    the exact current value. The epoch is a monotonic counter: each
    successful acquisition takes [max granted epoch + 1] and publishes the
    new floor at [ha/epoch]. On contention the CAS linearizes: members
    tick at staggered times, so the first to observe the expiry wins and
    the rest see their expected value superseded — deterministic
    tie-break, no randomness.

    {2 Fencing}

    A leader runs deployments with a {!fence} evaluated before {e every}
    agent RPC, intent update and NSDB write: while the lease is valid the
    fence stamps the member's epoch onto the operation; once it is lost
    the deployment fail-stops with {!Controller.Fenced} (abandoning its
    phase). Independently, agents reject RPCs below their accepted epoch
    ([ha.fenced_rpcs]) and the NSDB write path rejects writes below
    [ha/epoch] ([ha.fenced_writes]) — a deposed leader whose local check
    is stale is still stopped at the receivers.

    {2 Timers and determinism}

    All timers (member ticks, lease renewals, chaos schedules from
    {!Dsim.Mgmt_fault.ha_profile}) live on the Dsim virtual clock as a
    lazily-pumped agenda rather than event-queue events —
    {!Bgp.Network.converge} runs the queue to quiescence, so timer events
    there would never let it terminate. The agenda is replayed up to the
    current instant at every fence evaluation and from the takeover wait
    loop; each firing depends only on HA-owned state and its own logical
    time, so the replay is bit-identical however coarsely it is pumped.
    Killing the leader at a seeded point mid-deployment therefore yields a
    standby takeover whose final forwarding state is bit-identical to the
    uninterrupted run. *)

type t

val create :
  ?lease_ttl:float ->
  ?tick_every:float ->
  ?stagger:float ->
  ?fault:Dsim.Mgmt_fault.t ->
  members:int ->
  Bgp.Network.t ->
  Switch_agent.t ->
  Nsdb.Replicated.t ->
  t
(** A cluster of [members] controller replicas sharing the given network,
    switch agent and NSDB. [lease_ttl] (default 50 ms) is how long a
    lease lives without renewal; [tick_every] (default 10 ms) the member
    timer period (acquire attempts and renewals); [stagger] (default
    0.5 ms) the per-member timer offset that makes contention resolve in
    member-id order. [fault] supplies the HA chaos schedule
    ({!Dsim.Mgmt_fault.ha_profile}: leader crashes, lease-store
    partitions, renewal delays) and is the default per-op fate model for
    {!run_plan}. Requires [tick_every < lease_ttl] in practice — a leader
    must get a renewal tick in before its lease runs out. *)

val start : t -> unit
(** Starts the member timers at the current virtual instant. *)

val stop : t -> unit
(** Stops all timers; pending agenda entries are dropped. *)

val advance : t -> unit
(** Replays every timer firing up to the current virtual instant. Called
    internally by {!fence}, {!current_leader} and {!run_plan}; exposed for
    tests that drive time by hand. *)

(** {1 Leadership} *)

val fence_for : t -> int -> unit -> Controller.fence_status
(** The fence closure of member [i] — what {!run_plan} passes to
    {!Controller.deploy_resilient}. Exposed so tests can run a controller
    under a specific member's fence by hand. Each evaluation pumps the
    timer agenda first. *)

val current_leader_epoch : t -> (int * int) option
(** [(member id, epoch)] of the currently valid lease holder, if any. *)

val leader_id : t -> int option
(** Member id of the currently valid lease holder, if any. *)

val kill : t -> int -> unit
(** Fail-stops member [i] immediately (test hook — scheduled crashes
    normally come from the fault model). If it was leading, the takeover
    clock starts now. *)

val wait_for_leader : ?max_wait:float -> t -> int option
(** Advances virtual time in tick-sized steps (in-flight BGP events keep
    draining — the fleet fails static) until some member holds a valid
    lease; returns its id, or [None] after [max_wait] simulated seconds
    (default 60) or once every member is dead. *)

(** {1 Running plans} *)

val run_plan :
  ?policy:Controller.retry_policy ->
  ?between_phases:(int -> unit) ->
  ?watchdog:(int -> [ `Ok | `Breach of string list ]) ->
  ?lint:Controller.lint_mode ->
  ?op_fault:(attempt:int -> member:int -> Dsim.Mgmt_fault.t option) ->
  ?max_attempts:int ->
  t ->
  Controller.plan ->
  (int * Controller.outcome) list * Controller.outcome option
(** The HA deployment driver: wait for a leader, have it deploy (fresh
    plan) or resume (journal present) under its fence, and on a [Crashed]
    or [Fenced] outcome loop — the next leader picks the rollout up from
    the journal. Returns every (member id, outcome) attempt in order plus
    the terminal outcome ([None] if leadership was never re-established
    or [max_attempts] (default 64) was exhausted).

    [op_fault] chooses the per-operation fate model for each attempt
    (default: the cluster's [fault] for every attempt); it is also
    attached to the shared agent for the attempt's duration.

    [watchdog] is forwarded to every deploy/resume attempt as the runtime
    SLO hook (see {!Ops.Watchdog}). *)

(** {1 Introspection} *)

val members : t -> int
val controller : t -> int -> Controller.t
val member_alive : t -> int -> bool

val elections : t -> int
(** Successful lease acquisitions so far. *)

val takeover_ms : t -> float list
(** Simulated milliseconds from each leader loss to the next successful
    acquisition, in order. *)

val grants : t -> (int * int * float * float) list
(** The lease-grant audit: (holder, epoch, start, expiry) per granted
    epoch, chronological, renewals folded into the epoch's expiry — the
    [grants] input of {!Invariant.check_ha}. *)

val epoch_commits : t -> (float * int) list
(** Every epoch-stamped committed mutation — agent RPA applies plus the
    member controllers' fenced NSDB writes — sorted by time: the
    [commits] input of {!Invariant.check_ha}. *)
