(* Observability instruments (shared registry; no-ops until enabled). *)
let m_cache_hits = Obs.Metrics.counter "engine.cache.hits"
let m_cache_misses = Obs.Metrics.counter "engine.cache.misses"
let m_selections = Obs.Metrics.counter "engine.selections"

type mutable_stats = {
  mutable hit_count : int;
  mutable miss_count : int;
  mutable selection_count : int;
}

type t = {
  rpa : Rpa.t;
  cache_enabled : bool;
  (* (signature id, attributes) -> did the signature match *)
  sig_cache : (int * Net.Attr.t, bool) Hashtbl.t;
  (* signatures indexed by physical identity *)
  signatures : Signature.t array;
  m_stats : mutable_stats;
  mutable on_withdraw : (prefix:Net.Prefix.t -> statement:string -> unit) option;
}

(* Collect every signature mentioned by the RPA set, in a stable order, so
   each gets a cache id. *)
let collect_signatures (rpa : Rpa.t) =
  let path_selection_sigs =
    List.concat_map
      (fun (ps : Path_selection.t) ->
        List.concat_map
          (fun st ->
            List.map
              (fun set -> set.Path_selection.ps_signature)
              st.Path_selection.path_sets)
          ps.Path_selection.statements)
      rpa.Rpa.path_selection
  in
  let route_attribute_sigs =
    List.concat_map
      (fun (ra : Route_attribute.t) ->
        List.concat_map
          (fun st ->
            List.map
              (fun w -> w.Route_attribute.w_signature)
              st.Route_attribute.next_hop_weights)
          ra.Route_attribute.statements)
      rpa.Rpa.route_attribute
  in
  Array.of_list (path_selection_sigs @ route_attribute_sigs)

let create ?(cache = true) rpa =
  {
    rpa;
    cache_enabled = cache;
    sig_cache = Hashtbl.create 256;
    signatures = collect_signatures rpa;
    m_stats = { hit_count = 0; miss_count = 0; selection_count = 0 };
    on_withdraw = None;
  }

let rpa t = t.rpa

let set_on_withdraw t f = t.on_withdraw <- f

type stats = { hits : int; misses : int; selections : int }

let stats t =
  {
    hits = t.m_stats.hit_count;
    misses = t.m_stats.miss_count;
    selections = t.m_stats.selection_count;
  }

let reset_stats t =
  t.m_stats.hit_count <- 0;
  t.m_stats.miss_count <- 0;
  t.m_stats.selection_count <- 0

let clear_cache t = Hashtbl.reset t.sig_cache

(* Physical-identity lookup: RPA structures are immutable, so the same
   signature value keeps its index for the engine's lifetime. *)
let sig_id t s =
  let n = Array.length t.signatures in
  let rec find i = if i >= n then -1 else if t.signatures.(i) == s then i else find (i + 1) in
  find 0

let sig_matches t s attr =
  if not t.cache_enabled then begin
    t.m_stats.miss_count <- t.m_stats.miss_count + 1;
    Obs.Metrics.incr m_cache_misses;
    Signature.matches s attr
  end
  else begin
    let id = sig_id t s in
    if id < 0 then Signature.matches s attr
    else
      let key = (id, attr) in
      match Hashtbl.find_opt t.sig_cache key with
      | Some result ->
        t.m_stats.hit_count <- t.m_stats.hit_count + 1;
        Obs.Metrics.incr m_cache_hits;
        result
      | None ->
        t.m_stats.miss_count <- t.m_stats.miss_count + 1;
        Obs.Metrics.incr m_cache_misses;
        let result = Signature.matches s attr in
        Hashtbl.replace t.sig_cache key result;
        result
  end

(* ---------------- Selection ---------------- *)

let candidate_attrs candidates = List.map (fun p -> p.Bgp.Path.attr) candidates

(* The denominator for fractional thresholds: how many of the device's live
   peers sit in the layer the candidate paths come from. *)
let fraction_denominator (ctx : Bgp.Rib_policy.ctx) (paths : Bgp.Path.t list) =
  match paths with
  | [] -> 0
  | first :: _ ->
    (match ctx.Bgp.Rib_policy.peer_layer first.Bgp.Path.peer with
     | None -> List.length paths
     | Some layer -> ctx.Bgp.Rib_policy.live_peers_in_layer layer)

let threshold_met ctx mnh ~matching ~reference =
  let required =
    match mnh with
    | Path_selection.Count n -> n
    | Path_selection.Fraction _ ->
      Path_selection.required_count mnh
        ~denominator:(fraction_denominator ctx reference)
  in
  List.length matching >= max 1 required

let find_statement (type a) (statements : a list) ~destination_of ctx candidates =
  let attrs = candidate_attrs candidates in
  List.find_opt
    (fun st ->
      Destination.matches (destination_of st) ctx.Bgp.Rib_policy.prefix
        ~route_attrs:attrs)
    statements

let all_path_selection_statements (rpa : Rpa.t) =
  List.concat_map
    (fun (ps : Path_selection.t) -> ps.Path_selection.statements)
    rpa.Rpa.path_selection

let native_fallback t ctx (st : Path_selection.statement)
    ~native:(nat_selected, nat_best) : Bgp.Rib_policy.selection =
  match st.Path_selection.bgp_native_min_next_hop with
  | None ->
    { Bgp.Rib_policy.selected = nat_selected; advertise = nat_best;
      keep_fib_warm = false }
  | Some mnh ->
    if threshold_met ctx mnh ~matching:nat_selected ~reference:nat_selected then
      { Bgp.Rib_policy.selected = nat_selected; advertise = nat_best;
        keep_fib_warm = false }
    else begin
      (* Violated with nothing to fall back to: withdraw; optionally keep
         the forwarding entries warm (Figure 14's knob). *)
      (match t.on_withdraw with
       | Some f ->
         f ~prefix:ctx.Bgp.Rib_policy.prefix
           ~statement:st.Path_selection.st_name
       | None -> ());
      {
        Bgp.Rib_policy.selected =
          (if st.Path_selection.keep_fib_warm_if_mnh_violated then nat_selected
           else []);
        advertise = None;
        keep_fib_warm = st.Path_selection.keep_fib_warm_if_mnh_violated;
      }
    end

let evaluate_selection t ~(ctx : Bgp.Rib_policy.ctx) ~candidates ~native :
    Bgp.Rib_policy.selection =
  t.m_stats.selection_count <- t.m_stats.selection_count + 1;
  Obs.Metrics.incr m_selections;
  Obs.Span.with_span "engine.select"
    ~attrs:(fun () ->
      [
        ("prefix", Net.Prefix.to_string ctx.Bgp.Rib_policy.prefix);
        ("candidates", string_of_int (List.length candidates));
      ])
  @@ fun () ->
  match
    find_statement
      (all_path_selection_statements t.rpa)
      ~destination_of:(fun st -> st.Path_selection.destination)
      ctx candidates
  with
  | None ->
    let selected, advertise = native in
    { Bgp.Rib_policy.selected; advertise; keep_fib_warm = false }
  | Some st ->
    let rec walk = function
      | [] -> native_fallback t ctx st ~native
      | set :: rest ->
        let matching =
          List.filter
            (fun p ->
              sig_matches t set.Path_selection.ps_signature p.Bgp.Path.attr)
            candidates
        in
        let enough =
          matching <> []
          &&
          match set.Path_selection.ps_min_next_hop with
          | None -> true
          | Some mnh -> threshold_met ctx mnh ~matching ~reference:matching
        in
        if enough then begin
          let advertise =
            if t.rpa.Rpa.advertise_least_favorable then
              Bgp.Decision.least_favorable matching
            else
              (* Ablation of the Section 5.3.1 rule: advertise the most
                 preferred path instead (causes the Figure 9 loop). *)
              (match List.sort Bgp.Decision.preference_compare matching with
               | best :: _ -> Some best
               | [] -> None)
          in
          { Bgp.Rib_policy.selected = matching; advertise; keep_fib_warm = false }
        end
        else walk rest
    in
    walk st.Path_selection.path_sets

(* ---------------- Weights ---------------- *)

let all_route_attribute_statements (rpa : Rpa.t) =
  List.concat_map
    (fun (ra : Route_attribute.t) -> ra.Route_attribute.statements)
    rpa.Rpa.route_attribute

let evaluate_weights t ~(ctx : Bgp.Rib_policy.ctx) ~selected =
  let live =
    List.filter
      (fun st -> not (Route_attribute.expired st ~now:ctx.Bgp.Rib_policy.now))
      (all_route_attribute_statements t.rpa)
  in
  match
    find_statement live
      ~destination_of:(fun st -> st.Route_attribute.destination)
      ctx selected
  with
  | None -> None
  | Some st ->
    let weight_of (p : Bgp.Path.t) =
      match
        List.find_opt
          (fun w -> sig_matches t w.Route_attribute.w_signature p.Bgp.Path.attr)
          st.Route_attribute.next_hop_weights
      with
      | Some w -> w.Route_attribute.weight
      | None -> st.Route_attribute.default_weight
    in
    Some (List.map (fun p -> (p, weight_of p)) selected)

(* ---------------- Filters ---------------- *)

let filter_accepts t direction (ctx : Bgp.Rib_policy.ctx) ~peer =
  let layer = ctx.Bgp.Rib_policy.peer_layer peer in
  List.for_all
    (fun rf ->
      Route_filter.allows rf direction ~peer ~layer ctx.Bgp.Rib_policy.prefix)
    t.rpa.Rpa.route_filter

(* ---------------- Hooks ---------------- *)

let hooks t : Bgp.Rib_policy.hooks =
  {
    Bgp.Rib_policy.name = "rpa";
    ingress_accept =
      (fun ctx ~peer _attr -> filter_accepts t Route_filter.Ingress ctx ~peer);
    select =
      (fun ctx ~candidates ~native -> evaluate_selection t ~ctx ~candidates ~native);
    weights = (fun ctx ~selected -> evaluate_weights t ~ctx ~selected);
    egress_accept =
      (fun ctx ~peer _attr -> filter_accepts t Route_filter.Egress ctx ~peer);
  }
