type direction = Install | Remove

let distance_from_origination graph ~origination_layer device =
  let node = Topology.Graph.node graph device in
  abs
    (Topology.Node.layer_rank node.Topology.Node.layer
     - Topology.Node.layer_rank origination_layer)

let phases graph ~targets ~origination_layer direction =
  let annotated =
    List.map
      (fun device ->
        (distance_from_origination graph ~origination_layer device, device))
      targets
  in
  let distances =
    List.sort_uniq Int.compare (List.map fst annotated)
  in
  let ordered_distances =
    match direction with
    | Install -> List.rev distances (* furthest first *)
    | Remove -> distances (* closest first *)
  in
  List.map
    (fun d ->
      List.filter_map
        (fun (d', device) -> if d = d' then Some device else None)
        annotated)
    ordered_distances

let is_safe_order graph ~origination_layer direction phase_list =
  let position = Hashtbl.create 16 in
  List.iteri
    (fun i phase -> List.iter (fun d -> Hashtbl.replace position d i) phase)
    phase_list;
  let devices = List.concat phase_list in
  List.for_all
    (fun a ->
      List.for_all
        (fun b ->
          let da = distance_from_origination graph ~origination_layer a in
          let db = distance_from_origination graph ~origination_layer b in
          let pa = Hashtbl.find position a and pb = Hashtbl.find position b in
          match direction with
          | Install -> (not (da > db)) || pa <= pb
          | Remove -> (not (da < db)) || pa <= pb)
        devices)
    devices

let flatten = List.concat

let rollback_order phase_list = List.rev_map List.rev phase_list
