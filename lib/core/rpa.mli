(** A device's full set of Route Planning Abstractions.

    In practice a switch carries multiple orthogonal RPAs (footnote of
    Section 5.3): several path-selection statements over disjoint prefix
    groups, traffic-engineering weights, boundary filters. This module
    bundles them, renders them in the paper's configuration syntax, and
    measures their size (Table 3 reports "RPA LOC" per migration). *)

type t = {
  path_selection : Path_selection.t list;
  route_attribute : Route_attribute.t list;
  route_filter : Route_filter.t list;
  advertise_least_favorable : bool;
      (** the Section 5.3.1 dissemination rule. Always [true] in
          production; exposed so the Figure 9 ablation can show the routing
          loop it prevents *)
}

val empty : t

val is_empty : t -> bool

val make :
  ?path_selection:Path_selection.t list ->
  ?route_attribute:Route_attribute.t list ->
  ?route_filter:Route_filter.t list ->
  ?advertise_least_favorable:bool ->
  unit ->
  t

val merge : t -> t -> t
(** Concatenates the statement lists (orthogonal RPAs co-exist on a
    switch), dropping blocks of [b] that are structurally equal to one
    already present — merging the same RPA twice is idempotent, so the
    Table 3 RPA-LOC metric is not inflated by duplicates.
    [advertise_least_favorable] is and-ed. *)

val config_lines : t -> string list

val loc : t -> int
(** Lines of rendered configuration — the Table 3 "RPA LOC" metric. *)

val pp : Format.formatter -> t -> unit

val statement_count : t -> int
