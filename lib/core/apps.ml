let all_app_names =
  [
    "path-equalize";
    "min-next-hop-guard";
    "anycast-stability";
    "backup-preference";
    "te-weights";
    "wcmp-freeze";
    "boundary-filter";
    "prefix-limit-guard";
    "expansion-equalizer";
    "decommission-guard";
    "maintenance-drain";
    "policy-rollout";
    "slow-roll";
    "job-placement";
  ]

let upstream_asns graph ~origination_layer device =
  let own_rank =
    Topology.Node.layer_rank (Topology.Graph.node graph device).Topology.Node.layer
  in
  let origin_rank = Topology.Node.layer_rank origination_layer in
  let toward_origin neighbor_rank =
    if origin_rank >= own_rank then neighbor_rank > own_rank
    else neighbor_rank < own_rank
  in
  (* Physical neighbors, not just live ones: the controller compiles intent
     from its topology view, which includes devices that are cabled but not
     yet activated (exactly the expansion case of Figure 2). *)
  Topology.Graph.all_neighbors graph device
  |> List.filter_map (fun ((n : Topology.Node.t), _link) ->
         if toward_origin (Topology.Node.layer_rank n.Topology.Node.layer) then
           Some n.Topology.Node.asn
         else None)

let make_plan ?(pre_checks = []) ?(post_checks = []) graph ~name ~targets
    ~origination_layer rpa_of =
  {
    Controller.plan_name = name;
    rpas = List.map (fun device -> (device, rpa_of device)) targets;
    phases = Deployment.phases graph ~targets ~origination_layer Deployment.Install;
    pre_checks;
    post_checks;
  }

module Path_equalize = struct
  let rpa ~destination ~origin_asn ~via =
    (* Drained routes are excluded: the path set deliberately ignores
       AS-path length, so without the negative match, maintenance drains
       (which pad the path) would stop steering traffic away. *)
    let signature =
      Signature.make ~origin_asn ~neighbor_asns:via
        ~none_of:[ Net.Community.Well_known.drained ]
        ()
    in
    Rpa.make
      ~path_selection:
        [
          Path_selection.make ~name:"path-equalize"
            [
              Path_selection.statement ~name:"equalize"
                ~path_sets:
                  [ Path_selection.path_set ~name:"same-origin" signature ]
                destination;
            ];
        ]
      ()

  let plan graph ~destination ~origin_asn ~targets ~origination_layer =
    make_plan graph ~name:"path-equalize" ~targets ~origination_layer
      (fun device ->
        rpa ~destination ~origin_asn
          ~via:(upstream_asns graph ~origination_layer device))
end

module Min_next_hop_guard = struct
  let rpa ~destination ~threshold ~keep_fib_warm =
    Rpa.make
      ~path_selection:
        [
          Path_selection.make ~name:"min-next-hop-guard"
            [
              Path_selection.statement ~name:"guard" ~path_sets:[]
                ~bgp_native_min_next_hop:threshold
                ~keep_fib_warm_if_mnh_violated:keep_fib_warm destination;
            ];
        ]
      ()

  let plan graph ~destination ~threshold ~keep_fib_warm ~targets
      ~origination_layer =
    let rpa = rpa ~destination ~threshold ~keep_fib_warm in
    make_plan graph ~name:"min-next-hop-guard" ~targets ~origination_layer
      (fun _ -> rpa)
end

module Anycast_stability = struct
  let rpa ~origin_asn ~via =
    let destination =
      Destination.Tagged Net.Community.Well_known.anycast_load_bearing
    in
    (* Anycast prefixes stick to any upstream path from their anycast
       origin, regardless of length changes caused by maintenance
       asymmetry. *)
    let signature = Signature.make ~origin_asn ~neighbor_asns:via () in
    Rpa.make
      ~path_selection:
        [
          Path_selection.make ~name:"anycast-stability"
            [
              Path_selection.statement ~name:"pin-anycast"
                ~path_sets:[ Path_selection.path_set ~name:"anycast" signature ]
                destination;
            ];
        ]
      ()

  let plan graph ~origin_asn ~targets ~origination_layer =
    make_plan graph ~name:"anycast-stability" ~targets ~origination_layer
      (fun device ->
        rpa ~origin_asn ~via:(upstream_asns graph ~origination_layer device))
end

module Backup_preference = struct
  let rpa ~destination ~primary ?primary_min_next_hop ~backup () =
    Rpa.make
      ~path_selection:
        [
          Path_selection.make ~name:"backup-preference"
            [
              Path_selection.statement ~name:"primary-else-backup"
                ~path_sets:
                  [
                    Path_selection.path_set ~name:"primary"
                      ?min_next_hop:primary_min_next_hop primary;
                    Path_selection.path_set ~name:"backup" backup;
                  ]
                destination;
            ];
        ]
      ()

  let plan graph ~destination ~primary ?primary_min_next_hop ~backup ~targets
      ~origination_layer () =
    let rpa = rpa ~destination ~primary ?primary_min_next_hop ~backup () in
    make_plan graph ~name:"backup-preference" ~targets ~origination_layer
      (fun _ -> rpa)
end

module Te_weights = struct
  let rpa_for_device graph ~destination ~device ~weights ?expires_at () =
    ignore device;
    let entries =
      List.map
        (fun (next_hop, weight) ->
          let neighbor = Topology.Graph.node graph next_hop in
          Route_attribute.next_hop_weight
            ~name:(Printf.sprintf "via-%s" neighbor.Topology.Node.name)
            (Signature.make ~neighbor_asn:neighbor.Topology.Node.asn ())
            ~weight)
        weights
    in
    Rpa.make
      ~route_attribute:
        [
          Route_attribute.make ~name:"te-weights"
            [ Route_attribute.statement ~name:"te" ?expires_at destination entries ];
        ]
      ()

  let plan graph ~destination ~weights ~origination_layer ?expires_at () =
    {
      Controller.plan_name = "te-weights";
      rpas =
        List.map
          (fun (device, device_weights) ->
            ( device,
              rpa_for_device graph ~destination ~device ~weights:device_weights
                ?expires_at () ))
          weights;
      phases =
        Deployment.phases graph ~targets:(List.map fst weights)
          ~origination_layer Deployment.Install;
      pre_checks = [];
      post_checks = [];
    }
end

module Wcmp_freeze = struct
  let rpa ~destination ~live_weight ~drained_signature ?expires_at () =
    Rpa.make
      ~route_attribute:
        [
          Route_attribute.make ~name:"wcmp-freeze"
            [
              Route_attribute.statement ~name:"freeze" ?expires_at
                ~default_weight:live_weight destination
                [
                  Route_attribute.next_hop_weight ~name:"drained"
                    drained_signature ~weight:1;
                ];
            ];
        ]
      ()

  let plan graph ~destination ~live_weight ~drained_signature ~targets
      ~origination_layer ?expires_at () =
    let rpa = rpa ~destination ~live_weight ~drained_signature ?expires_at () in
    make_plan graph ~name:"wcmp-freeze" ~targets ~origination_layer (fun _ -> rpa)
end

module Boundary_filter = struct
  let rpa ~peer_layers ~allowed =
    Rpa.make
      ~route_filter:
        [
          Route_filter.make ~name:"boundary-filter"
            [
              Route_filter.statement ~name:"boundary"
                ~ingress:(Route_filter.Allow_list allowed)
                ~egress:(Route_filter.Allow_list allowed)
                { Route_filter.peer_layers; peer_devices = [] };
            ];
        ]
      ()

  let plan graph ~peer_layers ~allowed ~targets ~origination_layer =
    let rpa = rpa ~peer_layers ~allowed in
    make_plan graph ~name:"boundary-filter" ~targets ~origination_layer
      (fun _ -> rpa)
end

module Prefix_limit_guard = struct
  let rpa ~covering ~max_mask_length =
    Rpa.make
      ~route_filter:
        [
          Route_filter.make ~name:"prefix-limit"
            [
              Route_filter.statement ~name:"limit"
                ~ingress:
                  (Route_filter.Allow_list
                     [ Route_filter.prefix_rule ~max_mask_length covering ])
                Route_filter.any_peer;
            ];
        ]
      ()

  let plan graph ~covering ~max_mask_length ~targets ~origination_layer =
    let rpa = rpa ~covering ~max_mask_length in
    make_plan graph ~name:"prefix-limit-guard" ~targets ~origination_layer
      (fun _ -> rpa)
end

module Expansion_equalizer = struct
  let plan (x : Topology.Clos.expansion) =
    let backbone_node = Topology.Graph.node x.Topology.Clos.xgraph x.backbone in
    Path_equalize.plan x.xgraph ~destination:Destination.backbone_default
      ~origin_asn:backbone_node.Topology.Node.asn
      ~targets:(x.xfsws @ x.xssws)
      ~origination_layer:Topology.Node.Eb
end

module Decommission_guard = struct
  let plan graph ~destination ~threshold ~decommissioned ~origination_layer =
    Min_next_hop_guard.plan graph ~destination ~threshold ~keep_fib_warm:true
      ~targets:decommissioned ~origination_layer
end

module Maintenance_drain = struct
  let execute controller ~devices ?guard () =
    let deploy_guard =
      match guard with
      | None -> Ok ()
      | Some plan ->
        (match Controller.deploy controller plan with
         | Ok _ -> Ok ()
         | Error es -> Error es)
    in
    match deploy_guard with
    | Error es -> Error es
    | Ok () ->
      let net = Controller.network controller in
      List.iter
        (fun device ->
          Switch_agent.set_maintenance (Controller.agent controller) ~device true;
          Bgp.Network.drain_device net device)
        devices;
      ignore (Bgp.Network.converge net);
      Ok ()

  let undo controller ~devices ?guard () =
    let net = Controller.network controller in
    List.iter
      (fun device ->
        Switch_agent.set_maintenance (Controller.agent controller) ~device false;
        Bgp.Network.undrain_device net device)
      devices;
    ignore (Bgp.Network.converge net);
    match guard with
    | None -> Ok ()
    | Some plan ->
      (match Controller.remove controller plan with
       | Ok _ -> Ok ()
       | Error es -> Error es)
end

module Job_placement = struct
  let rpa ~job_tag ~preferred_plane ?plane_min_next_hop () =
    Rpa.make
      ~path_selection:
        [
          Path_selection.make ~name:"job-placement"
            [
              Path_selection.statement ~name:"pin-to-plane"
                ~path_sets:
                  [
                    Path_selection.path_set ~name:"preferred-plane"
                      ?min_next_hop:plane_min_next_hop
                      (Signature.make ~neighbor_asns:preferred_plane ());
                    Path_selection.path_set ~name:"any-plane" Signature.any;
                  ]
                (Destination.Tagged job_tag);
            ];
        ]
      ()

  let plan graph ~job_tag ~preferred_plane ?plane_min_next_hop ~targets
      ~origination_layer () =
    let plane_asns =
      List.map
        (fun device -> (Topology.Graph.node graph device).Topology.Node.asn)
        preferred_plane
    in
    make_plan graph ~name:"job-placement" ~targets ~origination_layer
      (fun _ -> rpa ~job_tag ~preferred_plane:plane_asns ?plane_min_next_hop ())
end

module Slow_roll = struct
  type progress = {
    applied : int;
    halted : bool;
    out_of_sync : int list;
  }

  let chunks n list =
    let rec go acc current count = function
      | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
      | x :: rest ->
        if count = n then go (List.rev current :: acc) [ x ] 1 rest
        else go acc (x :: current) (count + 1) rest
    in
    go [] [] 0 list

  let execute controller ~plan ~chunk ~max_out_of_sync =
    let agent = Controller.agent controller in
    let net = Controller.network controller in
    let applied = ref 0 in
    let halted = ref false in
    List.iter
      (fun phase ->
        List.iter
          (fun devices ->
            if not !halted then begin
              List.iter
                (fun device ->
                  match List.assoc_opt device plan.Controller.rpas with
                  | Some rpa ->
                    Switch_agent.set_intended agent ~device rpa;
                    (match Switch_agent.reconcile_device agent device with
                     | `Applied -> incr applied
                     | `In_sync | `Unreachable | `Fenced | `Rpc_lost
                     | `Rpc_timeout | `Transient _ -> ())
                  | None -> ())
                devices;
              ignore (Bgp.Network.converge net);
              if List.length (Switch_agent.stragglers agent) > max_out_of_sync
              then halted := true
            end)
          (chunks (max 1 chunk) phase))
      plan.Controller.phases;
    {
      applied = !applied;
      halted = !halted;
      out_of_sync = Switch_agent.stragglers agent;
    }
end

module Policy_rollout = struct
  let execute controller ~base_policies ~rpa_plan =
    let net = Controller.network controller in
    List.iter
      (fun (device, policy) -> Bgp.Network.set_egress_policy_all net device policy)
      base_policies;
    ignore (Bgp.Network.converge net);
    match Controller.deploy controller rpa_plan with
    | Ok _ -> Ok ()
    | Error es -> Error es
end
