(** Network State Database: the storage layer of the Centralium controller
    (Section 5.1).

    Current and intended network state share one tree representation rooted
    at a device map, so any node is addressable by a path string like
    ["devices/ssw-1/rpa/path-selection"]. All services use the same generic
    get/set/publish/subscribe API; paths may contain ['*'] wildcard
    segments (Appendix A.3).

    A {!Replicated} wrapper provides the eventual-consistency deployment
    model of Section 5.2: writes fan out to all replicas, reads go to the
    elected leader, and leader failure transparently re-routes reads. *)

type value =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool
  | Rpa of Rpa.t

val value_equal : value -> value -> bool
val pp_value : Format.formatter -> value -> unit

type t

val create : unit -> t

val set : t -> path:string -> value -> unit
(** Creates intermediate nodes as needed. Raises [Invalid_argument] on an
    empty path or a path containing ['*']. *)

val get_one : t -> path:string -> value option
(** Exact path, no wildcards. *)

val get : t -> path:string -> (string * value) list
(** [path] may contain ['*'] segments (each matching exactly one concrete
    segment) and ["**"] segments (matching any number, including zero).
    Returns (concrete path, value) pairs, sorted by path. *)

val get_subtree : t -> path:string -> (string * value) list
(** Every value at or under [path] (no wildcards). *)

val delete : t -> path:string -> unit
(** Deletes the node and its subtree; notifies subscribers of every removed
    value. *)

val paths : t -> string list
(** All paths holding a value. *)

val size : t -> int
(** Number of values stored. *)

val memory_estimate_bytes : t -> int
(** A structural estimate of the store's resident size (tree nodes and
    values), used by the Figure 11 memory CDF. *)

val snapshot : t -> (string * value) list
(** Every (path, value) pair, sorted — the serialization used when a
    service restarts or a replica re-syncs. *)

val restore : t -> (string * value) list -> unit
(** Clears the store and loads the snapshot. Subscribers are notified of
    the restored values (not of the clearing). *)

val subscribe : t -> path:string -> (string -> value option -> unit) -> int
(** [subscribe t ~path f] calls [f concrete_path value] on every
    set/delete whose path matches [path] (['*'] and ["**"] wildcards
    allowed). [None] signals deletion. Returns a subscription id. *)

val unsubscribe : t -> int -> unit

(** {1 Replication} *)

module Replicated : sig
  type store = t

  type t

  val create : replicas:int -> t
  (** Raises [Invalid_argument] if [replicas < 1]. *)

  val set : t -> path:string -> value -> unit
  (** Fans out to every live replica (publish path of Section 5.2). In
      async mode ({!enable_async}) the write applies to the leader
      immediately and is appended to the replication log; followers catch
      up at the next {!flush}. *)

  (** {2 Asynchronous replication with bounded catch-up}

      [enable_async] switches the wrapper from synchronous fan-out to a
      leader + replication-log model: every write applies to the leader at
      once and followers consume the log in batches of at most
      [batch_budget] entries per {!flush} (one flush per simulation
      instant, driven by the caller on the Dsim virtual clock). Each
      follower's lag watermark is [head - applied]; a follower beyond
      [lag_threshold] — or whose backlog was truncated — abandons replay
      and catches up via snapshot shipping from the leader. Reads and
      compare-and-set are always served by the leader, which is current by
      construction; a follower promoted on leader failure first drains its
      backlog, so leader-visible semantics are unchanged. *)

  val enable_async : ?lag_threshold:int -> ?batch_budget:int -> t -> unit
  (** Defaults: [lag_threshold = 64], [batch_budget = 32]. Idempotent;
      raises [Invalid_argument] if either bound is < 1. *)

  val flush : t -> unit
  (** One replication + notification round: followers apply up to
      [batch_budget] log entries (or snapshot-ship beyond the threshold),
      the log is truncated below the slowest live replica, and every
      batched subscriber notification is delivered. A no-op source of
      writes in sync mode, but still flushes subscribers. Deterministic —
      purely a function of store state. *)

  val lag : t -> int -> int
  (** Replica [i]'s lag watermark: log entries appended but not yet
      applied there. 0 in sync mode and for the leader. *)

  val max_lag : t -> int
  (** Worst lag over the live replicas. *)

  val lag_peak : t -> int
  (** High-water mark of any follower's lag observed at {!flush} time. *)

  val snapshot_ships : t -> int
  (** How many catch-ups abandoned replay for snapshot shipping. *)

  (** {2 Fleet-level pub/sub}

      Unlike the per-store {!Nsdb.subscribe}, these subscriptions observe
      the replicated write path itself and deliver {e batched}:
      notifications coalesce keep-last per path in first-touch order and
      are handed over as one batch per {!flush}. Each subscriber's pending
      queue is bounded by [limit] distinct paths; on overflow the delta
      stream is dropped and the next flush delivers a [`Resync] snapshot
      of the watched paths instead — shed loudly, never silently. *)

  type batch =
    [ `Changes of (string * value option) list
      (** coalesced deltas since the last flush; [None] = deleted *)
    | `Resync of (string * value) list
      (** full snapshot of the watched paths, after a queue overflow *) ]

  val subscribe : ?limit:int -> t -> path:string -> (batch -> unit) -> int
  (** Returns a token for {!unsubscribe}. [path] may contain ['*'] and
      ["**"] wildcards. [limit] (default 256) bounds the pending queue. *)

  val unsubscribe : t -> int -> unit
  (** Tokens are single-use; unsubscribing twice is a no-op. Long-horizon
      loops must pair every {!subscribe} with this — the watchdog and
      replica catch-up paths do. *)

  val subscriber_count : t -> int

  val overflow_resyncs : t -> int
  (** How many flushes downgraded a subscriber to [`Resync]. *)

  val get : t -> path:string -> (string * value) list
  (** Served by the elected leader. Raises [Failure] if no replica is
      alive. *)

  val get_one : t -> path:string -> value option
  (** Exact-path read served by the elected leader. Raises [Failure] if no
      replica is alive. *)

  val delete : t -> path:string -> unit
  (** Removes the subtree rooted at [path] from every live replica. *)

  val compare_and_set : t -> path:string -> expected:value option -> value -> bool
  (** [compare_and_set t ~path ~expected v] atomically writes [v] at [path]
      iff the leader's current value equals [expected] ([None] = the path
      must be absent). Returns whether the write happened. On success the
      write fans out to every live replica like {!set}. This is the
      linearization point for the HA lease protocol and for journal status
      transitions — it closes the read-modify-write race a separate
      get/set pair leaves open. Raises [Failure] if no replica is alive. *)

  val leader : t -> int option
  (** Index of the current leader (lowest-index live replica). *)

  val fail_replica : t -> int -> unit
  (** Marks a replica dead; reads re-route to the next elected leader. In
      async mode the promoted follower first drains its backlog, so the
      new leader serves current state. *)

  val recover_replica : t -> int -> unit
  (** Brings a replica back and re-synchronizes it from the leader
      (eventual consistency: it may have missed writes while down). The
      resync restores {e in place}, preserving the replica store's own
      subscriptions. *)

  val replica : t -> int -> store
  (** Direct access for tests. *)

  val alive : t -> int list
end
