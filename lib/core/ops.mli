(** Overload robustness for continuous operations: admission control with
    a bounded priority plan queue, and the runtime SLO watchdog.

    The paper's controller serves a fleet that never stops churning.
    Under overload the centralized component must degrade gracefully:
    submissions beyond capacity are {e shed} with a typed {!Overloaded}
    verdict (never silently dropped), admitted plans wait in a bounded
    priority queue whose state is journaled to the replicated NSDB — so
    an HA takeover (PR 8) rebuilds exactly the same queue — and plans
    whose targets conflict are serialized rather than interleaved.

    {2 Queue journal schema}

    Everything needed to rebuild the queue lives under
    {!Controller.ops_queue_root} in the replicated NSDB:

    {v
      opsq/<seq>/plan     String  plan name
      opsq/<seq>/tenant   String
      opsq/<seq>/class    String  interactive | standard | bulk
      opsq/<seq>/state    String  queued | started | done
      opsq_meta/subs      Int     submissions so far (admitted + shed)
      opsq_meta/shed/<n>  String  "<tenant>:<plan>:<reason>" audit records
    v}

    Plan {e bodies} are not serialized (health checks are code): recovery
    takes a [lookup] from plan name to plan, which a deterministic driver
    regenerates from its seed. *)

type plan_class = Interactive | Standard | Bulk

val class_name : plan_class -> string
val class_of_string : string -> plan_class option

val class_rank : plan_class -> int
(** Dispatch priority: [Interactive] (0) before [Standard] (1) before
    [Bulk] (2). Ties dispatch in submission order. *)

type overload_reason =
  | Queue_full of { limit : int }
  | Tenant_limit of { tenant : string; limit : int }
  | Class_limit of { cls : plan_class; limit : int }
  | Unsafe_plan of { errors : string list }
      (** the registered admission verifier proved the plan unsafe
          (forwarding loop, blackhole or reachability loss in some
          deployment state); rejected before consuming any queue slot *)

val overload_reason_to_string : overload_reason -> string

type admit_result =
  | Admitted of int  (** the queue sequence number (the ticket) *)
  | Overloaded of overload_reason
      (** shed at admission: nothing was enqueued or journaled except the
          shed audit record *)

type config = {
  max_queue : int;  (** queued + started entries, fleet-wide *)
  per_tenant : int;  (** queued + started entries per tenant *)
  per_class : int;  (** queued + started entries per plan class *)
}

val default_config : config
(** [max_queue = 8], [per_tenant = 4], [per_class = 6]. *)

type t

val create : ?config:config -> Nsdb.Replicated.t -> t
(** A fresh, empty queue over (and journaled to) this NSDB. *)

val recover :
  ?config:config ->
  lookup:(string -> Controller.plan option) ->
  Nsdb.Replicated.t ->
  t
(** Rebuilds the queue a predecessor journaled: every [opsq/<seq>] entry
    that is not [done], in seq order, bound to its plan via [lookup]
    (entries whose plan the lookup no longer knows are dropped with a
    warning). Deterministic: two recoveries from the same NSDB state
    yield the same queue. *)

val submit :
  t -> tenant:string -> cls:plan_class -> Controller.plan -> admit_result
(** Admission control. Checked in order: the admission verifier (an
    unsafe plan is shed with {!Unsafe_plan} whatever the queue looks
    like), then {!config.max_queue}, {!config.per_tenant},
    {!config.per_class}; the first exceeded limit sheds the submission
    with its typed reason and an [opsq_meta/shed] audit record. Admission
    journals the entry before returning, so a takeover between submit and
    start loses nothing. *)

val next_ready : t -> (int * Controller.plan) option
(** The entry to run next: a [started] entry left behind by a crashed
    predecessor first (resume before new work); otherwise the queued
    entry with the best (class rank, seq) among those no {e earlier}
    submission conflicts with — a conflicting pair executes in submission
    order regardless of priority (serialized, not interleaved), while
    non-conflicting plans may overtake. *)

val mark_started : t -> int -> unit
val mark_done : t -> int -> unit
(** State transitions, mirrored to the journal. [mark_done] lifts the
    plan's GC protection ({!Controller.queued_in_ops}). *)

val depth : t -> int
(** Queued + started entries. *)

val queued_names : t -> string list
(** Plan names with state [queued], in seq order. *)

val shed_log : t -> (int * string * string * string) list
(** Every shed submission: (submission index, tenant, plan name, reason),
    in submission order — rebuilt from the journal on {!recover}. *)

val submissions : t -> int
(** Total submit calls observed (admitted + shed), surviving recovery. *)

val gc : ?retain:int -> t -> int
(** Prunes [done] queue entries beyond the [retain] (default 16) most
    recent, returning how many were pruned. Queued/started entries are
    never pruned. *)

val set_conflict_probe :
  (Controller.plan -> Controller.plan -> bool) -> unit
(** Registers the cross-plan conflict predicate. The analysis library's
    initializer installs a destination-prefix/target-overlap probe built
    on its merge/overlap machinery; without it (binary not linked against
    lib/analysis) the queue falls back to {!plans_conflict}'s structural
    device-overlap check. *)

val plans_conflict : Controller.plan -> Controller.plan -> bool
(** The conflict predicate in force: the registered probe, or the
    built-in check (plans sharing a target device conflict). *)

val set_admission_verifier : (Controller.plan -> string list) -> unit
(** Registers the admission safety probe: given a plan, return the
    error-severity verification findings (empty = safe to queue).
    Typically bound by the queue's owner as
    [fun plan -> errors of (Controller.verifier ()) net plan] against the
    network the queue deploys to; unregistered, admission stays purely
    capacity-based. *)

val clear_admission_verifier : unit -> unit
(** Removes the admission safety probe (tests; queue re-targeting). *)

(** {1 The runtime watchdog}

    Samples {!Invariant} sweeps and
    {!Dataplane.Metrics.loss_integrals} between the phases of an
    in-flight plan, against a declared SLO budget. Pass {!probe} as the
    [?watchdog] of {!Controller.deploy_resilient} (or {!Ha.run_plan}):
    a breach triggers the controller's reverse-order rollback and records
    a remediation event in the journal. *)
module Watchdog : sig
  type budget = {
    max_blackhole_seconds : float;
        (** integral of black-holed demand since {!arm}, in virtual
            seconds, tolerated before remediation *)
    max_violations : int;
        (** invariant violations (cumulative over the {e armed window}'s
            phase boundaries — the counter resets at {!arm}) tolerated
            before remediation *)
  }

  val default_budget : budget
  (** Zero tolerance: [max_blackhole_seconds = 0.], [max_violations = 0]. *)

  type t

  val create :
    ?budget:budget ->
    net:Bgp.Network.t ->
    nsdb:Nsdb.Replicated.t ->
    demands:(int * float) list ->
    prefix:Net.Prefix.t ->
    unit ->
    t

  val arm : t -> plan_name:string -> unit
  (** Start a health window for this plan: snapshot the FIB baseline,
      clear the trace (bounding its growth over a long-horizon run), and
      subscribe to the plan's journal subtree so remediation events are
      observed. Re-arming first disarms. *)

  val probe : t -> int -> [ `Ok | `Breach of string list ]
  (** The [?watchdog] callback: integrates blackhole-seconds from arm
      time to now over the FIB timeline and sweeps the invariants;
      returns [`Breach] with human-readable reasons when the budget is
      exhausted. *)

  val disarm : t -> unit
  (** Ends the window and {e unsubscribes} the journal watch — the leak
      fix: long-horizon loops arm/disarm per plan without accumulating
      dead callbacks. *)

  val remediations : t -> (string * string) list
  (** (plan, remediation detail) events observed via the journal
      subscription, in order. *)

  val violations_seen : t -> int
  (** Cumulative invariant violations across all probes since creation. *)

  val blackhole_seconds : t -> float
  (** Blackhole-seconds accumulated over the armed windows so far. *)
end
