type value =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool
  | Rpa of Rpa.t

let value_equal a b =
  match (a, b) with
  | String x, String y -> String.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Rpa x, Rpa y -> Rpa.config_lines x = Rpa.config_lines y
  | (String _ | Int _ | Float _ | Bool _ | Rpa _), _ -> false

let pp_value ppf = function
  | String s -> Format.fprintf ppf "%S" s
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.pp_print_float ppf f
  | Bool b -> Format.pp_print_bool ppf b
  | Rpa r -> Rpa.pp ppf r

type node = {
  mutable node_value : value option;
  children : (string, node) Hashtbl.t;
}

let new_node () = { node_value = None; children = Hashtbl.create 4 }

type subscription = { pattern : string list; callback : string -> value option -> unit }

type t = {
  root : node;
  subscriptions : (int, subscription) Hashtbl.t;
  mutable next_sub : int;
}

let create () =
  { root = new_node (); subscriptions = Hashtbl.create 8; next_sub = 0 }

let split path =
  match String.split_on_char '/' path with
  | [] | [ "" ] -> invalid_arg "Nsdb: empty path"
  | segments ->
    if List.exists (fun s -> s = "") segments then
      invalid_arg (Printf.sprintf "Nsdb: empty segment in path %S" path);
    segments

let join segments = String.concat "/" segments

let rec pattern_matches pattern concrete =
  match (pattern, concrete) with
  | [], [] -> true
  | "**" :: ps, cs ->
    pattern_matches ps cs
    || (match cs with
        | [] -> false
        | _ :: rest -> pattern_matches pattern rest)
  | p :: ps, c :: cs -> (p = "*" || p = c) && pattern_matches ps cs
  | [], _ :: _ | _ :: _, [] -> false

let notify t concrete_segments value =
  let concrete = join concrete_segments in
  Hashtbl.iter
    (fun _ sub ->
      if pattern_matches sub.pattern concrete_segments then
        sub.callback concrete value)
    t.subscriptions

let set t ~path value =
  let segments = split path in
  if List.exists (fun s -> String.contains s '*') segments then
    invalid_arg "Nsdb.set: wildcard in path";
  let rec go node = function
    | [] -> node.node_value <- Some value
    | seg :: rest ->
      let child =
        match Hashtbl.find_opt node.children seg with
        | Some c -> c
        | None ->
          let c = new_node () in
          Hashtbl.replace node.children seg c;
          c
      in
      go child rest
  in
  go t.root segments;
  notify t segments (Some value)

let find_node t segments =
  let rec go node = function
    | [] -> Some node
    | seg :: rest ->
      (match Hashtbl.find_opt node.children seg with
       | Some child -> go child rest
       | None -> None)
  in
  go t.root segments

let get_one t ~path =
  match find_node t (split path) with
  | Some node -> node.node_value
  | None -> None

let get t ~path =
  let segments = split path in
  let results = ref [] in
  let rec go node prefix = function
    | [] ->
      (match node.node_value with
       | Some v -> results := (join (List.rev prefix), v) :: !results
       | None -> ())
    | "**" :: rest as pattern ->
      (* Zero segments... *)
      go node prefix rest;
      (* ...or descend one level, keeping the pattern. *)
      Hashtbl.iter
        (fun seg child -> go child (seg :: prefix) pattern)
        node.children
    | "*" :: rest ->
      Hashtbl.iter (fun seg child -> go child (seg :: prefix) rest) node.children
    | seg :: rest ->
      (match Hashtbl.find_opt node.children seg with
       | Some child -> go child (seg :: prefix) rest
       | None -> ())
  in
  go t.root [] segments;
  (* Patterns with several ** can derive the same concrete path twice. *)
  List.sort_uniq compare !results

let rec collect_values node prefix acc =
  let acc =
    match node.node_value with
    | Some v -> (join (List.rev prefix), v) :: acc
    | None -> acc
  in
  Hashtbl.fold
    (fun seg child acc -> collect_values child (seg :: prefix) acc)
    node.children acc

let get_subtree t ~path =
  let segments = split path in
  match find_node t segments with
  | None -> []
  | Some node -> List.sort compare (collect_values node (List.rev segments) [])

let delete t ~path =
  let segments = split path in
  match segments with
  | [] -> ()
  | _ :: _ ->
    let rec parent_of node = function
      | [ last ] -> Some (node, last)
      | seg :: rest ->
        (match Hashtbl.find_opt node.children seg with
         | Some child -> parent_of child rest
         | None -> None)
      | [] -> None
    in
    (match parent_of t.root segments with
     | None -> ()
     | Some (parent, last) ->
       (match Hashtbl.find_opt parent.children last with
        | None -> ()
        | Some victim ->
          let removed = collect_values victim (List.rev segments) [] in
          Hashtbl.remove parent.children last;
          List.iter
            (fun (concrete, _) ->
              notify t (String.split_on_char '/' concrete) None)
            removed))

let paths t = List.map fst (collect_values t.root [] []) |> List.sort compare

let size t = List.length (collect_values t.root [] [])

let memory_estimate_bytes t =
  (* Structural model: a tree node costs ~128 bytes of bookkeeping; values
     cost their rendered size. *)
  let rec count node =
    let own =
      128
      +
      match node.node_value with
      | None -> 0
      | Some (String s) -> String.length s + 24
      | Some (Int _ | Float _ | Bool _) -> 24
      | Some (Rpa r) -> 64 * Rpa.loc r
    in
    Hashtbl.fold (fun _ child acc -> acc + count child) node.children own
  in
  count t.root

let snapshot t = List.sort compare (collect_values t.root [] [])

let restore t entries =
  Hashtbl.reset t.root.children;
  t.root.node_value <- None;
  List.iter (fun (path, v) -> set t ~path v) entries

let subscribe t ~path callback =
  let id = t.next_sub in
  t.next_sub <- id + 1;
  Hashtbl.replace t.subscriptions id { pattern = split path; callback };
  id

let unsubscribe t id = Hashtbl.remove t.subscriptions id

module Replicated = struct
  type store = t

  let store_set = set
  let store_get_one = get_one
  let store_delete = delete
  let store_create = create

  type nonrec t = {
    stores : store array;
    mutable dead : bool array;
  }

  let create ~replicas =
    if replicas < 1 then invalid_arg "Nsdb.Replicated.create: need >= 1";
    {
      stores = Array.init replicas (fun _ -> create ());
      dead = Array.make replicas false;
    }

  let alive t =
    List.filter
      (fun i -> not t.dead.(i))
      (List.init (Array.length t.stores) Fun.id)

  let leader t = match alive t with [] -> None | first :: _ -> Some first

  let set t ~path value =
    List.iter (fun i -> store_set t.stores.(i) ~path value) (alive t)

  let get t ~path =
    match leader t with
    | None -> failwith "Nsdb.Replicated.get: no live replica"
    | Some i -> get t.stores.(i) ~path

  let get_one t ~path =
    match leader t with
    | None -> failwith "Nsdb.Replicated.get_one: no live replica"
    | Some i -> store_get_one t.stores.(i) ~path

  let delete t ~path =
    List.iter (fun i -> store_delete t.stores.(i) ~path) (alive t)

  let compare_and_set t ~path ~expected value =
    match leader t with
    | None -> failwith "Nsdb.Replicated.compare_and_set: no live replica"
    | Some i ->
      let current = store_get_one t.stores.(i) ~path in
      let matches =
        match (current, expected) with
        | None, None -> true
        | Some cur, Some exp -> value_equal cur exp
        | None, Some _ | Some _, None -> false
      in
      if matches then set t ~path value;
      matches

  let fail_replica t i = t.dead.(i) <- true

  let recover_replica t i =
    (* Re-sync from the pre-recovery leader: the recovering replica may have
       missed writes while it was down (eventual consistency). *)
    let source = leader t in
    t.dead.(i) <- false;
    match source with
    | Some l when l <> i ->
      let fresh = store_create () in
      List.iter
        (fun (path, v) -> store_set fresh ~path v)
        (collect_values t.stores.(l).root [] []);
      t.stores.(i) <- fresh
    | Some _ | None -> ()

  let replica t i = t.stores.(i)
end
