type value =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool
  | Rpa of Rpa.t

let value_equal a b =
  match (a, b) with
  | String x, String y -> String.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Rpa x, Rpa y -> Rpa.config_lines x = Rpa.config_lines y
  | (String _ | Int _ | Float _ | Bool _ | Rpa _), _ -> false

let pp_value ppf = function
  | String s -> Format.fprintf ppf "%S" s
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.pp_print_float ppf f
  | Bool b -> Format.pp_print_bool ppf b
  | Rpa r -> Rpa.pp ppf r

type node = {
  mutable node_value : value option;
  children : (string, node) Hashtbl.t;
}

let new_node () = { node_value = None; children = Hashtbl.create 4 }

type subscription = { pattern : string list; callback : string -> value option -> unit }

type t = {
  root : node;
  subscriptions : (int, subscription) Hashtbl.t;
  mutable next_sub : int;
}

let create () =
  { root = new_node (); subscriptions = Hashtbl.create 8; next_sub = 0 }

let split path =
  match String.split_on_char '/' path with
  | [] | [ "" ] -> invalid_arg "Nsdb: empty path"
  | segments ->
    if List.exists (fun s -> s = "") segments then
      invalid_arg (Printf.sprintf "Nsdb: empty segment in path %S" path);
    segments

let join segments = String.concat "/" segments

let rec pattern_matches pattern concrete =
  match (pattern, concrete) with
  | [], [] -> true
  | "**" :: ps, cs ->
    pattern_matches ps cs
    || (match cs with
        | [] -> false
        | _ :: rest -> pattern_matches pattern rest)
  | p :: ps, c :: cs -> (p = "*" || p = c) && pattern_matches ps cs
  | [], _ :: _ | _ :: _, [] -> false

let notify t concrete_segments value =
  let concrete = join concrete_segments in
  Hashtbl.iter
    (fun _ sub ->
      if pattern_matches sub.pattern concrete_segments then
        sub.callback concrete value)
    t.subscriptions

let set t ~path value =
  let segments = split path in
  if List.exists (fun s -> String.contains s '*') segments then
    invalid_arg "Nsdb.set: wildcard in path";
  let rec go node = function
    | [] -> node.node_value <- Some value
    | seg :: rest ->
      let child =
        match Hashtbl.find_opt node.children seg with
        | Some c -> c
        | None ->
          let c = new_node () in
          Hashtbl.replace node.children seg c;
          c
      in
      go child rest
  in
  go t.root segments;
  notify t segments (Some value)

let find_node t segments =
  let rec go node = function
    | [] -> Some node
    | seg :: rest ->
      (match Hashtbl.find_opt node.children seg with
       | Some child -> go child rest
       | None -> None)
  in
  go t.root segments

let get_one t ~path =
  match find_node t (split path) with
  | Some node -> node.node_value
  | None -> None

let get t ~path =
  let segments = split path in
  let results = ref [] in
  let rec go node prefix = function
    | [] ->
      (match node.node_value with
       | Some v -> results := (join (List.rev prefix), v) :: !results
       | None -> ())
    | "**" :: rest as pattern ->
      (* Zero segments... *)
      go node prefix rest;
      (* ...or descend one level, keeping the pattern. *)
      Hashtbl.iter
        (fun seg child -> go child (seg :: prefix) pattern)
        node.children
    | "*" :: rest ->
      Hashtbl.iter (fun seg child -> go child (seg :: prefix) rest) node.children
    | seg :: rest ->
      (match Hashtbl.find_opt node.children seg with
       | Some child -> go child (seg :: prefix) rest
       | None -> ())
  in
  go t.root [] segments;
  (* Patterns with several ** can derive the same concrete path twice. *)
  List.sort_uniq compare !results

let rec collect_values node prefix acc =
  let acc =
    match node.node_value with
    | Some v -> (join (List.rev prefix), v) :: acc
    | None -> acc
  in
  Hashtbl.fold
    (fun seg child acc -> collect_values child (seg :: prefix) acc)
    node.children acc

let get_subtree t ~path =
  let segments = split path in
  match find_node t segments with
  | None -> []
  | Some node -> List.sort compare (collect_values node (List.rev segments) [])

let delete t ~path =
  let segments = split path in
  match segments with
  | [] -> ()
  | _ :: _ ->
    let rec parent_of node = function
      | [ last ] -> Some (node, last)
      | seg :: rest ->
        (match Hashtbl.find_opt node.children seg with
         | Some child -> parent_of child rest
         | None -> None)
      | [] -> None
    in
    (match parent_of t.root segments with
     | None -> ()
     | Some (parent, last) ->
       (match Hashtbl.find_opt parent.children last with
        | None -> ()
        | Some victim ->
          let removed = collect_values victim (List.rev segments) [] in
          Hashtbl.remove parent.children last;
          List.iter
            (fun (concrete, _) ->
              notify t (String.split_on_char '/' concrete) None)
            removed))

let paths t = List.map fst (collect_values t.root [] []) |> List.sort compare

let size t = List.length (collect_values t.root [] [])

let memory_estimate_bytes t =
  (* Structural model: a tree node costs ~128 bytes of bookkeeping; values
     cost their rendered size. *)
  let rec count node =
    let own =
      128
      +
      match node.node_value with
      | None -> 0
      | Some (String s) -> String.length s + 24
      | Some (Int _ | Float _ | Bool _) -> 24
      | Some (Rpa r) -> 64 * Rpa.loc r
    in
    Hashtbl.fold (fun _ child acc -> acc + count child) node.children own
  in
  count t.root

let snapshot t = List.sort compare (collect_values t.root [] [])

let restore t entries =
  Hashtbl.reset t.root.children;
  t.root.node_value <- None;
  List.iter (fun (path, v) -> set t ~path v) entries

let subscribe t ~path callback =
  let id = t.next_sub in
  t.next_sub <- id + 1;
  Hashtbl.replace t.subscriptions id { pattern = split path; callback };
  id

let unsubscribe t id = Hashtbl.remove t.subscriptions id

module Replicated = struct
  type store = t

  let store_set = set
  let store_get = get
  let store_get_one = get_one
  let store_delete = delete
  let store_restore = restore
  let store_snapshot = snapshot

  (* One entry of the replication log (async mode): exactly what the
     leader applied, replayed verbatim on the followers. *)
  type op = Op_set of string * value | Op_delete of string

  type batch =
    [ `Changes of (string * value option) list
    | `Resync of (string * value) list ]

  (* A fleet-level subscriber. Notifications are not delivered at write
     time: they coalesce (keep-last per path, first-touch order) into a
     bounded pending queue and are handed over as one batch per
     {!flush} — the "per simulation instant" batching of the pub/sub
     path. A subscriber whose queue overflows its limit is switched to
     resync mode: at the next flush it receives a full snapshot of the
     paths it watches instead of an (incomplete) delta stream. *)
  type sub = {
    sub_pattern : string list;
    sub_callback : batch -> unit;
    sub_limit : int;
    sub_order : string Queue.t;  (* first-touch order of pending paths *)
    sub_latest : (string, value option) Hashtbl.t;
    mutable sub_overflowed : bool;
  }

  (* Async-replication state: the leader applies writes immediately and
     appends them to the log; followers consume the log in bounded batches
     at each {!flush}, or — beyond [lag_threshold] — discard their backlog
     and take a full snapshot from the leader (snapshot shipping). *)
  type async = {
    lag_threshold : int;
    batch_budget : int;
    log : (int, op) Hashtbl.t;  (* index -> op, truncated below min applied *)
    mutable head : int;  (* next log index to assign *)
    applied : int array;  (* per replica: next log index to apply *)
    mutable base : int;  (* lowest retained log index *)
    mutable ships : int;
    mutable lag_peak : int;
  }

  type nonrec t = {
    stores : store array;
    mutable dead : bool array;
    subs : (int, sub) Hashtbl.t;
    mutable next_token : int;
    mutable overflow_resyncs : int;
    mutable async : async option;
  }

  let create ~replicas =
    if replicas < 1 then invalid_arg "Nsdb.Replicated.create: need >= 1";
    {
      stores = Array.init replicas (fun _ -> create ());
      dead = Array.make replicas false;
      subs = Hashtbl.create 4;
      next_token = 0;
      overflow_resyncs = 0;
      async = None;
    }

  let alive t =
    List.filter
      (fun i -> not t.dead.(i))
      (List.init (Array.length t.stores) Fun.id)

  let leader t = match alive t with [] -> None | first :: _ -> Some first

  let enable_async ?(lag_threshold = 64) ?(batch_budget = 32) t =
    if lag_threshold < 1 || batch_budget < 1 then
      invalid_arg "Nsdb.Replicated.enable_async: bounds must be >= 1";
    if t.async = None then
      t.async <-
        Some
          {
            lag_threshold;
            batch_budget;
            log = Hashtbl.create 64;
            head = 0;
            applied = Array.make (Array.length t.stores) 0;
            base = 0;
            ships = 0;
            lag_peak = 0;
          }

  (* {2 Fleet-level pub/sub} *)

  let subscribe ?(limit = 256) t ~path callback =
    if limit < 1 then invalid_arg "Nsdb.Replicated.subscribe: limit >= 1";
    let token = t.next_token in
    t.next_token <- token + 1;
    Hashtbl.replace t.subs token
      {
        sub_pattern = split path;
        sub_callback = callback;
        sub_limit = limit;
        sub_order = Queue.create ();
        sub_latest = Hashtbl.create 8;
        sub_overflowed = false;
      };
    token

  let unsubscribe t token = Hashtbl.remove t.subs token

  let subscriber_count t = Hashtbl.length t.subs

  let publish t concrete_segments vopt =
    let concrete = join concrete_segments in
    Hashtbl.iter
      (fun _ sub ->
        if
          (not sub.sub_overflowed)
          && pattern_matches sub.sub_pattern concrete_segments
        then
          if Hashtbl.mem sub.sub_latest concrete then
            (* Keep-last coalescing: the batch delivers only the value in
               force at flush time. *)
            Hashtbl.replace sub.sub_latest concrete vopt
          else if Queue.length sub.sub_order >= sub.sub_limit then begin
            (* Bounded queue: drop the partial delta stream and mark the
               subscriber for a full resync — shed loudly, never silently. *)
            Queue.clear sub.sub_order;
            Hashtbl.reset sub.sub_latest;
            sub.sub_overflowed <- true
          end
          else begin
            Queue.push concrete sub.sub_order;
            Hashtbl.replace sub.sub_latest concrete vopt
          end)
      t.subs

  let flush_subscribers t =
    let tokens =
      Hashtbl.fold (fun k _ acc -> k :: acc) t.subs [] |> List.sort compare
    in
    List.iter
      (fun token ->
        match Hashtbl.find_opt t.subs token with
        | None -> ()
        | Some sub ->
          if sub.sub_overflowed then begin
            sub.sub_overflowed <- false;
            t.overflow_resyncs <- t.overflow_resyncs + 1;
            let snapshot =
              match leader t with
              | None -> []
              | Some l -> store_get t.stores.(l) ~path:(join sub.sub_pattern)
            in
            sub.sub_callback (`Resync snapshot)
          end
          else if not (Queue.is_empty sub.sub_order) then begin
            let changes =
              Queue.fold
                (fun acc path -> (path, Hashtbl.find sub.sub_latest path) :: acc)
                [] sub.sub_order
              |> List.rev
            in
            Queue.clear sub.sub_order;
            Hashtbl.reset sub.sub_latest;
            sub.sub_callback (`Changes changes)
          end)
      tokens

  let overflow_resyncs t = t.overflow_resyncs

  (* {2 The write path} *)

  let append_op a op =
    Hashtbl.replace a.log a.head op;
    a.head <- a.head + 1

  let apply_op store = function
    | Op_set (path, v) -> store_set store ~path v
    | Op_delete path -> store_delete store ~path

  (* Paths that [delete path] would remove from the leader — the concrete
     notifications a subtree delete expands to. *)
  let doomed_paths t ~path =
    match leader t with
    | None -> []
    | Some l ->
      (match find_node t.stores.(l) (split path) with
       | None -> []
       | Some node ->
         List.map fst (collect_values node (List.rev (split path)) []))

  let set t ~path value =
    (match t.async with
     | None -> List.iter (fun i -> store_set t.stores.(i) ~path value) (alive t)
     | Some a ->
       append_op a (Op_set (path, value));
       (match leader t with
        | Some l ->
          store_set t.stores.(l) ~path value;
          a.applied.(l) <- a.head
        | None -> ()));
    publish t (split path) (Some value)

  let get t ~path =
    match leader t with
    | None -> failwith "Nsdb.Replicated.get: no live replica"
    | Some i -> store_get t.stores.(i) ~path

  let get_one t ~path =
    match leader t with
    | None -> failwith "Nsdb.Replicated.get_one: no live replica"
    | Some i -> store_get_one t.stores.(i) ~path

  let delete t ~path =
    let removed = doomed_paths t ~path in
    (match t.async with
     | None -> List.iter (fun i -> store_delete t.stores.(i) ~path) (alive t)
     | Some a ->
       append_op a (Op_delete path);
       (match leader t with
        | Some l ->
          store_delete t.stores.(l) ~path;
          a.applied.(l) <- a.head
        | None -> ()));
    List.iter
      (fun concrete -> publish t (String.split_on_char '/' concrete) None)
      removed

  let compare_and_set t ~path ~expected value =
    match leader t with
    | None -> failwith "Nsdb.Replicated.compare_and_set: no live replica"
    | Some i ->
      let current = store_get_one t.stores.(i) ~path in
      let matches =
        match (current, expected) with
        | None, None -> true
        | Some cur, Some exp -> value_equal cur exp
        | None, Some _ | Some _, None -> false
      in
      if matches then set t ~path value;
      matches

  (* {2 Replica catch-up} *)

  let lag t i =
    match t.async with None -> 0 | Some a -> a.head - a.applied.(i)

  let max_lag t =
    List.fold_left (fun acc i -> max acc (lag t i)) 0 (alive t)

  let snapshot_ships t = match t.async with None -> 0 | Some a -> a.ships

  let lag_peak t = match t.async with None -> 0 | Some a -> a.lag_peak

  (* Ship a full leader snapshot into replica [i]. [restore] on the
     existing store (rather than swapping in a fresh one) keeps the
     replica's own base-level subscriptions alive across the resync —
     replacing the store used to leak them as dead callbacks. *)
  let ship_snapshot t a ~from:l i =
    store_restore t.stores.(i) (store_snapshot t.stores.(l));
    a.applied.(i) <- a.head;
    a.ships <- a.ships + 1

  (* Drain replica [i]'s whole backlog from the log. Only called on a
     replica that was alive all along (leader promotion), so its cursor is
     at or above the truncation floor and every entry is still retained. *)
  let catch_up_fully t a i =
    for idx = a.applied.(i) to a.head - 1 do
      apply_op t.stores.(i) (Hashtbl.find a.log idx)
    done;
    a.applied.(i) <- a.head

  (* One replication round, called once per simulation instant by the
     churn driver: every alive follower applies at most [batch_budget]
     log entries; one beyond [lag_threshold] (or whose backlog was
     truncated away) catches up via snapshot shipping instead. Then the
     log is truncated below the slowest alive replica and the batched
     subscriber notifications are delivered. Purely a function of store
     state — bit-reproducible however coarsely it is called. *)
  let flush t =
    (match t.async with
     | None -> ()
     | Some a ->
       (match leader t with
        | None -> ()
        | Some l ->
          List.iter
            (fun i ->
              if i <> l then begin
                let lag = a.head - a.applied.(i) in
                a.lag_peak <- max a.lag_peak lag;
                if lag > a.lag_threshold || a.applied.(i) < a.base then
                  ship_snapshot t a ~from:l i
                else
                  let upto = min a.head (a.applied.(i) + a.batch_budget) in
                  for idx = a.applied.(i) to upto - 1 do
                    apply_op t.stores.(i) (Hashtbl.find a.log idx)
                  done;
                  a.applied.(i) <- upto
              end)
            (alive t);
          let floor =
            List.fold_left
              (fun acc i -> min acc a.applied.(i))
              a.head (alive t)
          in
          for idx = a.base to floor - 1 do
            Hashtbl.remove a.log idx
          done;
          a.base <- max a.base floor));
    flush_subscribers t

  let fail_replica t i =
    let old_leader = leader t in
    t.dead.(i) <- true;
    (* A follower promoted to leader first drains its backlog: reads and
       CAS are served by the leader, which must therefore be current. *)
    match (t.async, leader t) with
    | Some a, Some l when old_leader <> Some l -> catch_up_fully t a l
    | _ -> ()

  let recover_replica t i =
    (* Re-sync from the pre-recovery leader: the recovering replica may have
       missed writes while it was down (eventual consistency). Restoring in
       place preserves the replica's base-level subscriptions. *)
    let source = leader t in
    t.dead.(i) <- false;
    (match source with
     | Some l when l <> i ->
       store_restore t.stores.(i) (store_snapshot t.stores.(l))
     | Some _ | None -> ());
    match t.async with
    | Some a -> a.applied.(i) <- a.head
    | None -> ()

  let replica t i = t.stores.(i)
end
