type spec = {
  spec_name : string;
  build : unit -> Bgp.Network.t * Controller.plan * Health.check list;
}

type outcome = {
  outcome_name : string;
  deployed : bool;
  intent_failures : (string * string) list;
  errors : string list;
}

let passed o = o.deployed && o.intent_failures = [] && o.errors = []

let qualify spec =
  match spec.build () with
  | exception e ->
    {
      outcome_name = spec.spec_name;
      deployed = false;
      intent_failures = [];
      errors = [ Printexc.to_string e ];
    }
  | net, plan, intent_checks ->
    (* Static analysis first: a plan with error-severity lint findings
       fails qualification without touching the emulated network. *)
    let lint_errors =
      match Controller.linter () with
      | None -> []
      | Some engine ->
        List.filter_map
          (fun f ->
            if f.Controller.lint_error then
              Some
                (Printf.sprintf "lint %s: %s" f.Controller.lint_code
                   f.Controller.lint_message)
            else None)
          (engine (Bgp.Network.graph net) plan)
    in
    if lint_errors <> [] then
      { outcome_name = spec.spec_name; deployed = false;
        intent_failures = []; errors = lint_errors }
    else
    (* Then the symbolic phase verifier: a plan with a provable forwarding
       loop, blackhole or reachability loss in any deployment state fails
       qualification before anything is deployed. *)
    let verify_errors =
      match Controller.verifier () with
      | None -> []
      | Some engine ->
        List.filter_map
          (fun f ->
            if f.Controller.lint_error then
              Some
                (Printf.sprintf "verify %s: %s" f.Controller.lint_code
                   f.Controller.lint_message)
            else None)
          (engine net plan)
    in
    if verify_errors <> [] then
      { outcome_name = spec.spec_name; deployed = false;
        intent_failures = []; errors = verify_errors }
    else
    let controller = Controller.create net in
    (match Controller.deploy controller plan with
     | Error errors ->
       { outcome_name = spec.spec_name; deployed = false;
         intent_failures = []; errors }
     | Ok _report ->
       ignore (Bgp.Network.converge net);
       {
         outcome_name = spec.spec_name;
         deployed = true;
         intent_failures = Health.failures intent_checks;
         errors = [];
       })

let qualify_all specs = List.map qualify specs

let pp_outcome ppf o =
  if passed o then Format.fprintf ppf "[PASS] %s" o.outcome_name
  else begin
    Format.fprintf ppf "[FAIL] %s" o.outcome_name;
    List.iter (fun e -> Format.fprintf ppf "@.       error: %s" e) o.errors;
    List.iter
      (fun (check, reason) ->
        Format.fprintf ppf "@.       intent %s: %s" check reason)
      o.intent_failures
  end

(* ---------------- Standard qualification runs ---------------- *)

let tagged_attr () =
  Net.Attr.make
    ~communities:
      (Net.Community.Set.singleton Net.Community.Well_known.backbone_default_route)
    ()

let equalization_spec ~seed =
  {
    spec_name = "path-equalization on expansion topology";
    build =
      (fun () ->
        let x = Topology.Clos.expansion () in
        let fav2 = Topology.Clos.add_fav2 x in
        let net = Bgp.Network.create ~seed x.Topology.Clos.xgraph in
        Bgp.Network.originate net x.backbone Net.Prefix.default_v4 (tagged_attr ());
        ignore (Bgp.Network.converge net);
        let plan = Apps.Expansion_equalizer.plan x in
        let demands = List.map (fun f -> (f, 1.0)) x.xfsws in
        let intent =
          [
            (* With the RPA live, no FA — including the new one — may
               attract more than a balanced share (plus slack). *)
            Health.congestion_free net Net.Prefix.default_v4 ~demands
              ~members:(x.fav1 @ [ fav2 ])
              ~max_share:(1.2 /. float_of_int (List.length x.fav1 + 1));
            Health.no_loss net Net.Prefix.default_v4 ~demands;
            (* SSWs must now hold both short and long paths. *)
            (match x.xssws with
             | ssw :: _ ->
               Health.path_count_at_least net ~device:ssw Net.Prefix.default_v4
                 ~count:(List.length x.fav1 + 1)
             | [] -> failwith "no SSWs");
          ]
        in
        (net, plan, intent));
  }

let guard_spec ~seed =
  {
    spec_name = "min-next-hop guard on decommission mesh";
    build =
      (fun () ->
        let d = Topology.Clos.decommission ~planes:2 ~grids:4 ~per:2 () in
        let net = Bgp.Network.create ~seed d.Topology.Clos.dgraph in
        Bgp.Network.originate net d.north_origin Net.Prefix.default_v4
          (tagged_attr ());
        ignore (Bgp.Network.converge net);
        let ssw1s = Topology.Clos.ssws_numbered d 1 in
        let plan =
          Apps.Decommission_guard.plan d.dgraph
            ~destination:Destination.backbone_default
            ~threshold:(Path_selection.Fraction 0.75) ~decommissioned:ssw1s
            ~origination_layer:Topology.Node.Eb
        in
        let intent =
          List.map
            (fun ssw -> Health.route_present net ~device:ssw Net.Prefix.default_v4)
            ssw1s
        in
        (net, plan, intent));
  }

let rollout_spec ~seed =
  {
    spec_name = "safe rollout ordering on FA/DMAG topology";
    build =
      (fun () ->
        let r = Topology.Clos.rollout () in
        let net = Bgp.Network.create ~seed r.Topology.Clos.rgraph in
        Bgp.Network.originate net r.rbackbone Net.Prefix.default_v4 (tagged_attr ());
        ignore (Bgp.Network.converge net);
        let origin_asn =
          (Topology.Graph.node r.rgraph r.rbackbone).Topology.Node.asn
        in
        let plan =
          Apps.Path_equalize.plan r.rgraph
            ~destination:Destination.backbone_default ~origin_asn
            ~targets:(r.rfsws @ r.rssws @ r.rfas)
            ~origination_layer:Topology.Node.Eb
        in
        let demands = List.map (fun f -> (f, 1.0)) r.rfsws in
        let devices =
          List.map (fun n -> n.Topology.Node.id) (Topology.Graph.nodes r.rgraph)
        in
        let intent =
          [
            Health.loop_free net Net.Prefix.default_v4 ~devices;
            Health.no_loss net Net.Prefix.default_v4 ~demands;
            Health.congestion_free net Net.Prefix.default_v4 ~demands
              ~members:r.rfas ~max_share:0.6;
          ]
        in
        (net, plan, intent));
  }

let standard_suite ?(seed = 31) () =
  [
    equalization_spec ~seed;
    guard_spec ~seed:(seed + 1);
    rollout_spec ~seed:(seed + 2);
  ]
