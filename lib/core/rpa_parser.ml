(* Recursive-descent parser over a flat token stream; the surface syntax is
   exactly what the [config_lines] renderers emit (whitespace-insensitive).

   Every token carries the line/column of its first character so that parse
   errors — and the statement index consumed by the static analyzer — point
   at the offending spot in the operator's configuration text. *)

exception Error of string

type pos = { line : int; col : int }

type located_statement = {
  ls_kind : [ `Path_selection | `Route_attribute | `Route_filter ];
  ls_rpa : string;
  ls_statement : string;
  ls_pos : pos;
}

let fail_at pos fmt =
  Printf.ksprintf
    (fun s ->
      raise (Error (Printf.sprintf "line %d, column %d: %s" pos.line pos.col s)))
    fmt

(* ---------------- lexer ---------------- *)

type token =
  | Word of string
  | Quoted of string
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Lparen
  | Rparen
  | Equals
  | Comma
  | Semicolon
  | Percent

let token_to_string = function
  | Word w -> w
  | Quoted s -> Printf.sprintf "%S" s
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Lparen -> "("
  | Rparen -> ")"
  | Equals -> "="
  | Comma -> ","
  | Semicolon -> ";"
  | Percent -> "%"

let is_word_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | ':' | '/' | '-' -> true
  | _ -> false

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 and bol = ref 0 in
  let i = ref 0 in
  let here () = { line = !line; col = !i - !bol + 1 } in
  let push t pos = tokens := (t, pos) :: !tokens in
  while !i < n do
    let c = src.[!i] in
    let pos = here () in
    (match c with
     | '\n' ->
       incr i;
       incr line;
       bol := !i
     | ' ' | '\t' | '\r' -> incr i
     | '{' -> push Lbrace pos; incr i
     | '}' -> push Rbrace pos; incr i
     | '[' -> push Lbracket pos; incr i
     | ']' -> push Rbracket pos; incr i
     | '(' -> push Lparen pos; incr i
     | ')' -> push Rparen pos; incr i
     | '=' -> push Equals pos; incr i
     | ',' -> push Comma pos; incr i
     | ';' -> push Semicolon pos; incr i
     | '%' -> push Percent pos; incr i
     | '"' ->
       let start = !i + 1 in
       let rec find j =
         if j >= n then fail_at pos "unterminated string"
         else if src.[j] = '"' then j
         else if src.[j] = '\n' then fail_at pos "unterminated string"
         else find (j + 1)
       in
       let close = find start in
       push (Quoted (String.sub src start (close - start))) pos;
       i := close + 1
     | _ when is_word_char c ->
       let start = !i in
       while !i < n && is_word_char src.[!i] do
         incr i
       done;
       push (Word (String.sub src start (!i - start))) pos
     | _ -> fail_at pos "unexpected character %C" c);
  done;
  (List.rev !tokens, { line = !line; col = n - !bol + 1 })

(* ---------------- token stream ---------------- *)

type stream = {
  mutable tokens : (token * pos) list;
  mutable last : pos;  (** position of the most recently examined token *)
  eof : pos;
  mutable index : located_statement list;  (** reverse order *)
}

let fail s fmt = fail_at s.last fmt

let peek s =
  match s.tokens with
  | [] -> None
  | (t, p) :: _ ->
    s.last <- p;
    Some t

let next s =
  match s.tokens with
  | [] ->
    s.last <- s.eof;
    fail s "unexpected end of input"
  | (t, p) :: rest ->
    s.tokens <- rest;
    s.last <- p;
    t

let expect s want =
  let got = next s in
  if got <> want then
    fail s "expected %s, found %s" (token_to_string want) (token_to_string got)

let word s =
  match next s with
  | Word w -> w
  | t -> fail s "expected a word, found %s" (token_to_string t)

let int_word s =
  let w = word s in
  match int_of_string_opt w with
  | Some n -> n
  | None -> fail s "expected an integer, found %s" w

let accept s want =
  match peek s with
  | Some t when t = want ->
    ignore (next s);
    true
  | Some _ | None -> false

(* Reads a statement's name and records its position in the index. *)
let statement_name s ~kind ~rpa =
  let name = word s in
  s.index <-
    { ls_kind = kind; ls_rpa = rpa; ls_statement = name; ls_pos = s.last }
    :: s.index;
  name

(* ---------------- shared pieces ---------------- *)

let comma_words s =
  (* [w1, w2, ...] with the '[' already consumed; empty allowed. *)
  if accept s Rbracket then []
  else begin
    let rec go acc =
      let w = word s in
      if accept s Comma then go (w :: acc)
      else begin
        expect s Rbracket;
        List.rev (w :: acc)
      end
    in
    go []
  end

let community_of_word s w =
  match Net.Community.of_string w with
  | Ok c -> c
  | Error e -> fail s "bad community %s: %s" w e

let prefix_of_word s w =
  match Net.Prefix.of_string w with
  | Ok p -> p
  | Error e -> fail s "bad prefix %s: %s" w e

let parse_destination s =
  (* after "destination =": tagged(a:b) or [p1, p2] *)
  match next s with
  | Word "tagged" ->
    expect s Lparen;
    let c = community_of_word s (word s) in
    expect s Rparen;
    Destination.Tagged c
  | Lbracket ->
    Destination.Prefixes (List.map (prefix_of_word s) (comma_words s))
  | t -> fail s "expected destination, found %s" (token_to_string t)

(* Signature key-value lines, ending before a terminator keyword. *)
let parse_signature s ~stop =
  let as_path_regex = ref None in
  let communities = ref [] in
  let none_of = ref [] in
  let origin_asn = ref None in
  let neighbor_asns = ref None in
  let rec go () =
    match peek s with
    | Some Rbrace -> ()
    | Some (Word w) when List.mem w stop -> ()
    | Some (Word "any") -> ignore (next s); go ()
    | Some (Word key) ->
      ignore (next s);
      expect s Equals;
      (match key with
       | "as_path_regex" ->
         (match next s with
          | Quoted src -> as_path_regex := Some src
          | t -> fail s "expected quoted regex, found %s" (token_to_string t))
       | "communities" ->
         expect s Lbracket;
         communities := List.map (community_of_word s) (comma_words s)
       | "communities_none" ->
         expect s Lbracket;
         none_of := List.map (community_of_word s) (comma_words s)
       | "origin_asn" -> origin_asn := Some (Net.Asn.of_int (int_word s))
       | "neighbor_asns" ->
         expect s Lbracket;
         neighbor_asns :=
           Some (List.map (fun w ->
               match int_of_string_opt w with
               | Some n -> Net.Asn.of_int n
               | None -> fail s "bad ASN %s" w)
               (comma_words s))
       | other -> fail s "unknown signature field %s" other);
      go ()
    | Some t -> fail s "unexpected %s in signature" (token_to_string t)
    | None -> fail s "unexpected end of signature"
  in
  go ();
  Signature.make ?as_path_regex:!as_path_regex ~communities:!communities
    ~none_of:!none_of ?origin_asn:!origin_asn ?neighbor_asns:!neighbor_asns ()

let parse_min_next_hop s =
  (* after "= ": int, optionally followed by % *)
  let n = int_word s in
  if accept s Percent then Path_selection.Fraction (float_of_int n /. 100.0)
  else Path_selection.Count n

(* ---------------- PathSelectionRpa ---------------- *)

let parse_path_set s =
  (* "PathSet" already consumed *)
  let name = word s in
  expect s Lbrace;
  let signature = parse_signature s ~stop:[ "MinNextHop" ] in
  let min_next_hop =
    match peek s with
    | Some (Word "MinNextHop") ->
      ignore (next s);
      expect s Equals;
      Some (parse_min_next_hop s)
    | Some _ | None -> None
  in
  expect s Rbrace;
  Path_selection.path_set ~name ?min_next_hop signature

let parse_ps_statement ~rpa s =
  (* "Statement" already consumed *)
  let name = statement_name s ~kind:`Path_selection ~rpa in
  expect s Lbrace;
  expect s (Word "destination");
  expect s Equals;
  let destination = parse_destination s in
  expect s (Word "PathSetList");
  expect s Equals;
  expect s Lbracket;
  let rec sets acc =
    match peek s with
    | Some (Word "PathSet") ->
      ignore (next s);
      sets (parse_path_set s :: acc)
    | Some Rbracket ->
      ignore (next s);
      List.rev acc
    | Some t -> fail s "expected PathSet or ], found %s" (token_to_string t)
    | None -> fail s "unterminated PathSetList"
  in
  let path_sets = sets [] in
  let bgp_native_min_next_hop =
    if accept s (Word "BgpNativeMinNextHop") then begin
      expect s Equals;
      Some (parse_min_next_hop s)
    end
    else None
  in
  let keep_fib_warm_if_mnh_violated =
    if accept s (Word "KeepFibWarmIfMnhViolated") then begin
      expect s Equals;
      match word s with
      | "true" -> true
      | "false" -> false
      | other -> fail s "expected true/false, found %s" other
    end
    else false
  in
  expect s Rbrace;
  Path_selection.statement ~name ~path_sets ?bgp_native_min_next_hop
    ~keep_fib_warm_if_mnh_violated destination

let parse_statements s parse_one =
  let rec go acc =
    if accept s (Word "Statement") then go (parse_one s :: acc)
    else begin
      expect s Rbrace;
      List.rev acc
    end
  in
  go []

let parse_path_selection s =
  (* "PathSelectionRpa" already consumed *)
  let name = word s in
  expect s Lbrace;
  Path_selection.make ~name (parse_statements s (parse_ps_statement ~rpa:name))

(* ---------------- RouteAttributeRpa ---------------- *)

let parse_next_hop_weight s =
  let name = word s in
  expect s Lbrace;
  let signature = parse_signature s ~stop:[ "Weight" ] in
  expect s (Word "Weight");
  expect s Equals;
  let weight = int_word s in
  expect s Rbrace;
  Route_attribute.next_hop_weight ~name signature ~weight

let parse_ra_statement ~rpa s =
  let name = statement_name s ~kind:`Route_attribute ~rpa in
  expect s Lbrace;
  expect s (Word "destination");
  expect s Equals;
  let destination = parse_destination s in
  expect s (Word "NextHopWeightList");
  expect s Equals;
  expect s Lbracket;
  let rec weights acc =
    match peek s with
    | Some (Word "NextHopWeight") ->
      ignore (next s);
      weights (parse_next_hop_weight s :: acc)
    | Some Rbracket ->
      ignore (next s);
      List.rev acc
    | Some t -> fail s "expected NextHopWeight or ], found %s" (token_to_string t)
    | None -> fail s "unterminated NextHopWeightList"
  in
  let next_hop_weights = weights [] in
  let default_weight =
    if accept s (Word "DefaultWeight") then begin
      expect s Equals;
      int_word s
    end
    else 1
  in
  let expires_at =
    if accept s (Word "ExpirationTime") then begin
      expect s Equals;
      let w = word s in
      match float_of_string_opt w with
      | Some f -> Some f
      | None -> fail s "bad expiration time %s" w
    end
    else None
  in
  expect s Rbrace;
  Route_attribute.statement ~name ~default_weight ?expires_at destination
    next_hop_weights

let parse_route_attribute s =
  let name = word s in
  expect s Lbrace;
  Route_attribute.make ~name (parse_statements s (parse_ra_statement ~rpa:name))

(* ---------------- RouteFilterRpa ---------------- *)

let layer_of_string = function
  | "RSW" -> Topology.Node.Rsw
  | "FSW" -> Topology.Node.Fsw
  | "SSW" -> Topology.Node.Ssw
  | "FADU" -> Topology.Node.Fadu
  | "FAUU" -> Topology.Node.Fauu
  | "FA" -> Topology.Node.Fa
  | "EDGE" -> Topology.Node.Edge
  | "DMAG" -> Topology.Node.Dmag
  | "EB" -> Topology.Node.Eb
  | other -> Topology.Node.Other other

let parse_peer_signature s =
  expect s Lbrace;
  expect s (Word "layers");
  expect s Equals;
  let rec words_until_semicolon acc =
    let w = word s in
    if accept s Comma then words_until_semicolon (w :: acc)
    else begin
      expect s Semicolon;
      List.rev (w :: acc)
    end
  in
  let layers =
    match words_until_semicolon [] with
    | [ "any" ] -> []
    | ls -> List.map layer_of_string ls
  in
  expect s (Word "devices");
  expect s Equals;
  let rec device_words acc =
    let w = word s in
    if accept s Comma then device_words (w :: acc) else List.rev (w :: acc)
  in
  let devices =
    match device_words [] with
    | [ "any" ] -> []
    | ds ->
      List.map (fun w ->
          match int_of_string_opt w with
          | Some d -> d
          | None -> fail s "bad device id %s" w)
        ds
  in
  expect s Rbrace;
  { Route_filter.peer_layers = layers; peer_devices = devices }

let parse_prefix_set s =
  (* "PrefixSet" consumed *)
  expect s Lbrace;
  expect s (Word "prefix");
  expect s Equals;
  let covering = prefix_of_word s (word s) in
  let min_mask_length = ref None in
  let max_mask_length = ref None in
  while accept s Semicolon do
    match word s with
    | "min_mask" ->
      expect s Equals;
      min_mask_length := Some (int_word s)
    | "max_mask" ->
      expect s Equals;
      max_mask_length := Some (int_word s)
    | other -> fail s "unknown prefix-set field %s" other
  done;
  expect s Rbrace;
  Route_filter.prefix_rule ?min_mask_length:!min_mask_length
    ?max_mask_length:!max_mask_length covering

let parse_filter s =
  (* after "XFilter =" *)
  match next s with
  | Word "allow-all" -> Route_filter.Allow_all
  | Lbracket ->
    let rec rules acc =
      match peek s with
      | Some (Word "PrefixSet") ->
        ignore (next s);
        rules (parse_prefix_set s :: acc)
      | Some Rbracket ->
        ignore (next s);
        List.rev acc
      | Some t -> fail s "expected PrefixSet or ], found %s" (token_to_string t)
      | None -> fail s "unterminated filter"
    in
    Route_filter.Allow_list (rules [])
  | t -> fail s "expected filter, found %s" (token_to_string t)

let parse_rf_statement ~rpa s =
  let name = statement_name s ~kind:`Route_filter ~rpa in
  expect s Lbrace;
  expect s (Word "PeerSignature");
  let peer = parse_peer_signature s in
  expect s (Word "IngressFilter");
  expect s Equals;
  let ingress = parse_filter s in
  expect s (Word "EgressFilter");
  expect s Equals;
  let egress = parse_filter s in
  expect s Rbrace;
  Route_filter.statement ~name ~ingress ~egress peer

let parse_route_filter s =
  let name = word s in
  expect s Lbrace;
  Route_filter.make ~name (parse_statements s (parse_rf_statement ~rpa:name))

(* ---------------- top level ---------------- *)

let parse_located src =
  match tokenize src with
  | exception Error e -> Result.Error e
  | tokens, eof ->
    let s = { tokens; last = { line = 1; col = 1 }; eof; index = [] } in
    let rec go acc =
      match peek s with
      | None -> Ok (acc, List.rev s.index)
      | Some (Word "PathSelectionRpa") ->
        ignore (next s);
        let ps = parse_path_selection s in
        go { acc with Rpa.path_selection = acc.Rpa.path_selection @ [ ps ] }
      | Some (Word "RouteAttributeRpa") ->
        ignore (next s);
        let ra = parse_route_attribute s in
        go { acc with Rpa.route_attribute = acc.Rpa.route_attribute @ [ ra ] }
      | Some (Word "RouteFilterRpa") ->
        ignore (next s);
        let rf = parse_route_filter s in
        go { acc with Rpa.route_filter = acc.Rpa.route_filter @ [ rf ] }
      | Some t ->
        fail s "expected an RPA block, found %s" (token_to_string t)
    in
    (try go Rpa.empty with Error e -> Result.Error e)

let parse src = Result.map fst (parse_located src)

let parse_exn src =
  match parse src with
  | Ok rpa -> rpa
  | Error e -> invalid_arg (Printf.sprintf "Rpa_parser: %s" e)

let find_statement index ~kind ~statement =
  List.find_opt
    (fun ls -> ls.ls_kind = kind && String.equal ls.ls_statement statement)
    index
