(** The Switch Agent: Centralium's I/O layer (Section 5.1).

    Continuously reconciles intended state with current state by writing
    RPAs into the distributed control plane (here: installing
    {!Engine}-backed hooks into the {!Bgp.Network} speakers) and by
    polling device state back into the current view.

    Intended RPAs live in the agent's service views under
    ["devices/<id>/rpa"]. Reconciliation applies the diff; each application
    is timed (simulated RPC latency + apply cost), producing the Figure 12
    deployment-time distribution. Unreachable devices become stragglers
    unless their intended operational state says they are down for
    maintenance (Section 5.2, Device Failures).

    The agent RPC path can be made adversarial with
    {!set_mgmt_fault}: RPCs then draw a per-call fate (loss / timeout /
    transient error) from a seeded {!Dsim.Mgmt_fault} model, and
    {!reconcile_device} reports those fates as typed failures for the
    controller's retry loop. *)

type t

val create : ?seed:int -> ?measure_apply:bool -> Bgp.Network.t -> t
(** [measure_apply] opts into measuring the real wall-clock cost of
    building and installing the evaluation engine (the pre-existing
    behaviour). The default samples the apply cost from the seeded RNG so
    that deploy-time reports are bit-reproducible across hosts. *)

val service : t -> Service.t
val network : t -> Bgp.Network.t

(** {1 Intended state} *)

val set_intended : t -> device:int -> Rpa.t -> unit
val clear_intended : t -> device:int -> unit
val intended_rpa : t -> device:int -> Rpa.t option
val current_rpa : t -> device:int -> Rpa.t option

val set_maintenance : t -> device:int -> bool -> unit
(** Marks the device's intended operational state as down-for-maintenance. *)

(** {1 Reachability} *)

val set_reachable : t -> device:int -> bool -> unit

val attach_management_network :
  t -> Openr.Network.t -> controller_host:int -> unit
(** After this, a device also counts as reachable only while the Open/R
    management plane has a route from [controller_host] to it — the
    production design where Centralium accesses devices via routes provided
    by Open/R, avoiding circular dependency on the BGP state it manipulates
    (Appendix A.2). *)

val unexpected_unreachable : t -> int list
(** Unreachable devices that are {e not} intended to be in maintenance —
    the ones operators must be alerted about. *)

(** {1 Management-plane faults} *)

val set_mgmt_fault : t -> Dsim.Mgmt_fault.t option -> unit
(** Attaches (or clears) a management-plane fault model. While attached,
    every reconcile RPC draws a fate from it. *)

val mgmt_fault : t -> Dsim.Mgmt_fault.t option

val set_rpc_deadline : t -> float option -> unit
(** Default per-attempt RPC deadline in seconds for {!reconcile_device}
    (default: none). An RPC whose sampled latency exceeds the deadline was
    applied by the device but reports [`Rpc_timeout] to the caller. *)

(** {1 Reconciliation} *)

type rpc_failure = [ `Rpc_lost | `Rpc_timeout | `Transient of string ]
(** Typed RPC failures, reported instead of silent success so the
    controller can retry with backoff:
    - [`Rpc_lost]: the request never reached the device — nothing applied.
    - [`Rpc_timeout]: the device {e applied} the RPA but the ack was lost
      (or arrived past the deadline); a retry observes [`In_sync].
    - [`Transient reason]: the agent answered with a retryable error. *)

type outcome = [ `Applied | `In_sync | `Unreachable | `Fenced | rpc_failure ]
(** [`Fenced]: the RPC was stamped with an epoch older than one this agent
    has already accepted — it came from a deposed leader and was rejected
    without touching the device. Not retryable under the same epoch. *)

val reconcile_device : ?deadline:float -> ?epoch:int -> t -> int -> outcome
(** Applies the intended RPA of one device to its BGP speaker (via the
    network's event queue at the current virtual instant) and updates the
    current view. The simulated deployment time is recorded. [deadline]
    overrides the agent-wide {!set_rpc_deadline} for this attempt.

    [epoch] stamps the RPC with the caller's fencing epoch: a value below
    the highest epoch this agent has accepted yields [`Fenced] (and bumps
    the [ha.fenced_rpcs] counter); an equal-or-higher value ratchets the
    acceptance floor before the RPC proceeds. Unstamped RPCs (single-
    controller operation) bypass the fence. *)

val accepted_epoch : t -> int
(** Highest fencing epoch this agent has accepted (0 until any stamped
    RPC arrives). *)

val epoch_commits : t -> (float * int) list
(** Audit trail for {!Invariant.check_ha}: (virtual time, epoch) of every
    committed RPA apply, in commit order. Unstamped applies record the
    acceptance floor at commit time. *)

val reconcile : t -> devices:int list -> int
(** Reconciles the given devices (in the given order); returns how many
    changed. RPC failures are left for the next sweep (the agent loop is a
    level-triggered reconciler). Does not run the network — callers decide
    when to let BGP converge (e.g. between deployment phases). *)

val stragglers : t -> int list
(** Devices whose intended and current RPA differ. *)

val deploy_time_samples : t -> float list
(** Seconds per applied RPA update, most recent last (Figure 12 data). *)

val clear_deploy_times : t -> unit
