(* Observability instruments (shared registry; no-ops until enabled). *)
let m_admitted = Obs.Metrics.counter "ops.admitted"
let m_shed = Obs.Metrics.counter "ops.shed"
let m_queue_recoveries = Obs.Metrics.counter "ops.queue_recoveries"
let g_queue_depth = Obs.Metrics.gauge "ops.queue_depth"
let m_wd_breaches = Obs.Metrics.counter "ops.watchdog_breaches"

type plan_class = Interactive | Standard | Bulk

let class_name = function
  | Interactive -> "interactive"
  | Standard -> "standard"
  | Bulk -> "bulk"

let class_of_string = function
  | "interactive" -> Some Interactive
  | "standard" -> Some Standard
  | "bulk" -> Some Bulk
  | _ -> None

let class_rank = function Interactive -> 0 | Standard -> 1 | Bulk -> 2

type overload_reason =
  | Queue_full of { limit : int }
  | Tenant_limit of { tenant : string; limit : int }
  | Class_limit of { cls : plan_class; limit : int }
  | Unsafe_plan of { errors : string list }

let overload_reason_to_string = function
  | Queue_full { limit } -> Printf.sprintf "queue-full(%d)" limit
  | Tenant_limit { tenant; limit } ->
    Printf.sprintf "tenant-limit(%s,%d)" tenant limit
  | Class_limit { cls; limit } ->
    Printf.sprintf "class-limit(%s,%d)" (class_name cls) limit
  | Unsafe_plan { errors } ->
    Printf.sprintf "unsafe-plan(%d:%s)" (List.length errors)
      (match errors with e :: _ -> e | [] -> "")

type admit_result = Admitted of int | Overloaded of overload_reason

type config = { max_queue : int; per_tenant : int; per_class : int }

let default_config = { max_queue = 8; per_tenant = 4; per_class = 6 }

type state = Queued | Started | Done

let state_name = function
  | Queued -> "queued"
  | Started -> "started"
  | Done -> "done"

type entry = {
  e_seq : int;
  e_plan : Controller.plan;
  e_tenant : string;
  e_class : plan_class;
  mutable e_state : state;
}

type t = {
  nsdb : Nsdb.Replicated.t;
  config : config;
  mutable entries : entry list;  (* ascending seq *)
  mutable next_seq : int;
  mutable sub_count : int;  (* submissions incl. shed; journaled *)
  mutable sheds : (int * string * string * string) list;  (* reverse *)
}

let root = Controller.ops_queue_root

let entry_path seq what = Printf.sprintf "%s/%08d/%s" root seq what

let journal_entry t e =
  Nsdb.Replicated.set t.nsdb ~path:(entry_path e.e_seq "plan")
    (Nsdb.String e.e_plan.Controller.plan_name);
  Nsdb.Replicated.set t.nsdb ~path:(entry_path e.e_seq "tenant")
    (Nsdb.String e.e_tenant);
  Nsdb.Replicated.set t.nsdb ~path:(entry_path e.e_seq "class")
    (Nsdb.String (class_name e.e_class));
  Nsdb.Replicated.set t.nsdb ~path:(entry_path e.e_seq "state")
    (Nsdb.String (state_name e.e_state))

let journal_sub_count t =
  Nsdb.Replicated.set t.nsdb ~path:"opsq_meta/subs" (Nsdb.Int t.sub_count)

let create ?(config = default_config) nsdb =
  { nsdb; config; entries = []; next_seq = 0; sub_count = 0; sheds = [] }

(* {1 Conflict detection} *)

let conflict_probe_ref :
    (Controller.plan -> Controller.plan -> bool) option ref =
  ref None

let set_conflict_probe f = conflict_probe_ref := Some f

(* Structural fallback: two plans touching a common device must not be
   reordered around each other. The analysis library registers a sharper
   probe (destination-prefix overlap via its trie) on top of this. *)
let device_overlap (a : Controller.plan) (b : Controller.plan) =
  let da = List.sort_uniq Int.compare (List.map fst a.Controller.rpas) in
  let db = List.sort_uniq Int.compare (List.map fst b.Controller.rpas) in
  List.exists (fun d -> List.mem d db) da

let plans_conflict a b =
  match !conflict_probe_ref with
  | Some probe -> probe a b
  | None -> device_overlap a b

(* {1 Admission verification}

   The admission probe rejects provably-unsafe plans before they consume
   a queue slot: whoever owns the target network binds the symbolic phase
   verifier ({!Controller.verifier}) to it and registers the closure
   here. No registration means no safety screening (admission control
   stays purely capacity-based). *)

let admission_verifier_ref : (Controller.plan -> string list) option ref =
  ref None

let set_admission_verifier f = admission_verifier_ref := Some f
let clear_admission_verifier () = admission_verifier_ref := None

let admission_errors plan =
  match !admission_verifier_ref with None -> [] | Some probe -> probe plan

(* {1 Admission} *)

let active t = List.filter (fun e -> e.e_state <> Done) t.entries

let depth t = List.length (active t)

let record_shed t ~tenant ~plan_name reason =
  let idx = t.sub_count - 1 in
  let detail =
    Printf.sprintf "%s:%s:%s" tenant plan_name
      (overload_reason_to_string reason)
  in
  t.sheds <- (idx, tenant, plan_name, detail) :: t.sheds;
  Nsdb.Replicated.set t.nsdb
    ~path:(Printf.sprintf "opsq_meta/shed/%08d" idx)
    (Nsdb.String detail);
  Obs.Metrics.incr m_shed

let submit t ~tenant ~cls plan =
  t.sub_count <- t.sub_count + 1;
  journal_sub_count t;
  let live = active t in
  let plan_name = plan.Controller.plan_name in
  let shed reason =
    record_shed t ~tenant ~plan_name reason;
    Overloaded reason
  in
  (* Safety first: an unsafe plan is rejected whatever the queue looks
     like, so the shed audit names the plan's defects, not the load. *)
  match admission_errors plan with
  | _ :: _ as errors -> shed (Unsafe_plan { errors })
  | [] ->
  if List.length live >= t.config.max_queue then
    shed (Queue_full { limit = t.config.max_queue })
  else if
    List.length (List.filter (fun e -> e.e_tenant = tenant) live)
    >= t.config.per_tenant
  then shed (Tenant_limit { tenant; limit = t.config.per_tenant })
  else if
    List.length (List.filter (fun e -> e.e_class = cls) live)
    >= t.config.per_class
  then shed (Class_limit { cls; limit = t.config.per_class })
  else begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let e =
      { e_seq = seq; e_plan = plan; e_tenant = tenant; e_class = cls;
        e_state = Queued }
    in
    journal_entry t e;
    t.entries <- t.entries @ [ e ];
    Obs.Metrics.incr m_admitted;
    Obs.Metrics.set_gauge g_queue_depth (float_of_int (depth t));
    Admitted seq
  end

(* {1 Dispatch} *)

let next_ready t =
  (* A started entry is a rollout a crashed predecessor left in flight:
     resume it before dispatching anything new. *)
  match List.find_opt (fun e -> e.e_state = Started) t.entries with
  | Some e -> Some (e.e_seq, e.e_plan)
  | None ->
    let queued = List.filter (fun e -> e.e_state = Queued) t.entries in
    let eligible =
      List.filter
        (fun e ->
          not
            (List.exists
               (fun e' ->
                 e'.e_seq < e.e_seq
                 && e'.e_state <> Done
                 && plans_conflict e'.e_plan e.e_plan)
               t.entries))
        queued
    in
    let best =
      List.fold_left
        (fun acc e ->
          match acc with
          | None -> Some e
          | Some b ->
            if (class_rank e.e_class, e.e_seq) < (class_rank b.e_class, b.e_seq)
            then Some e
            else acc)
        None eligible
    in
    Option.map (fun e -> (e.e_seq, e.e_plan)) best

let find_entry t seq = List.find_opt (fun e -> e.e_seq = seq) t.entries

let set_state t seq state =
  match find_entry t seq with
  | None -> invalid_arg (Printf.sprintf "Ops: unknown queue entry %d" seq)
  | Some e ->
    e.e_state <- state;
    Nsdb.Replicated.set t.nsdb ~path:(entry_path seq "state")
      (Nsdb.String (state_name state));
    Obs.Metrics.set_gauge g_queue_depth (float_of_int (depth t))

let mark_started t seq = set_state t seq Started
let mark_done t seq = set_state t seq Done

let queued_names t =
  List.filter_map
    (fun e ->
      if e.e_state = Queued then Some e.e_plan.Controller.plan_name else None)
    t.entries

let shed_log t = List.rev t.sheds

let submissions t = t.sub_count

let gc ?(retain = 16) t =
  let done_entries = List.filter (fun e -> e.e_state = Done) t.entries in
  let excess = List.length done_entries - max 0 retain in
  if excess <= 0 then 0
  else begin
    let victims = List.filteri (fun i _ -> i < excess) done_entries in
    List.iter
      (fun e ->
        Nsdb.Replicated.delete t.nsdb
          ~path:(Printf.sprintf "%s/%08d" root e.e_seq))
      victims;
    t.entries <-
      List.filter (fun e -> not (List.memq e victims)) t.entries;
    excess
  end

(* {1 Recovery} *)

let recover ?(config = default_config) ~lookup nsdb =
  Obs.Metrics.incr m_queue_recoveries;
  let states = Nsdb.Replicated.get nsdb ~path:(root ^ "/*/state") in
  let entries =
    List.filter_map
      (fun (path, v) ->
        match (v, String.split_on_char '/' path) with
        | Nsdb.String state, [ _; seq_s; _ ] -> (
          match (int_of_string_opt seq_s, state) with
          | Some seq, ("queued" | "started") -> Some (seq, state)
          | Some _, _ | None, _ -> None)
        | _ -> None)
      states
    |> List.sort compare
  in
  let read what seq =
    match
      Nsdb.Replicated.get_one nsdb ~path:(entry_path seq what)
    with
    | Some (Nsdb.String s) -> Some s
    | Some _ | None -> None
  in
  let rebuilt =
    List.filter_map
      (fun (seq, state) ->
        match read "plan" seq with
        | None -> None
        | Some name ->
          (match lookup name with
           | None ->
             Logs.warn (fun m ->
                 m "ops recovery: queued plan %s has no body in the catalog;\
                    dropping entry %d" name seq);
             None
           | Some plan ->
             Some
               {
                 e_seq = seq;
                 e_plan = plan;
                 e_tenant = Option.value (read "tenant" seq) ~default:"?";
                 e_class =
                   Option.value ~default:Standard
                     (Option.bind (read "class" seq) class_of_string);
                 e_state = (if state = "started" then Started else Queued);
               }))
      entries
  in
  let next_seq =
    (* Above every journaled entry, including done ones not rebuilt. *)
    Nsdb.Replicated.get nsdb ~path:(root ^ "/*/plan")
    |> List.fold_left
         (fun acc (path, _) ->
           match String.split_on_char '/' path with
           | [ _; seq_s; _ ] ->
             (match int_of_string_opt seq_s with
              | Some s -> max acc (s + 1)
              | None -> acc)
           | _ -> acc)
         0
  in
  let sub_count =
    match Nsdb.Replicated.get_one nsdb ~path:"opsq_meta/subs" with
    | Some (Nsdb.Int n) -> n
    | Some _ | None -> 0
  in
  let sheds =
    Nsdb.Replicated.get nsdb ~path:"opsq_meta/shed/*"
    |> List.filter_map (fun (path, v) ->
           match (v, String.split_on_char '/' path) with
           | Nsdb.String detail, [ _; _; idx_s ] -> (
             match
               (int_of_string_opt idx_s, String.split_on_char ':' detail)
             with
             | Some idx, [ tenant; plan; _reason ] ->
               Some (idx, tenant, plan, detail)
             | _ -> None)
           | _ -> None)
    |> List.sort compare
    |> List.rev
  in
  { nsdb; config; entries = rebuilt; next_seq; sub_count; sheds }

(* {1 The runtime watchdog} *)

module Watchdog = struct
  type budget = { max_blackhole_seconds : float; max_violations : int }

  let default_budget = { max_blackhole_seconds = 0.0; max_violations = 0 }

  type t = {
    budget : budget;
    net : Bgp.Network.t;
    nsdb : Nsdb.Replicated.t;
    demands : (int * float) list;
    prefix : Net.Prefix.t;
    mutable armed : (string * float * (int * Bgp.Speaker.fib_state) list) option;
        (* plan, arm time, FIB baseline *)
    mutable sub_token : int option;
    mutable violations : int;  (* lifetime, for reporting *)
    mutable v_window : int;  (* the armed window, judged against the budget *)
    mutable bh_prior : float;  (* windows already closed *)
    mutable bh_current : float;  (* the armed window, as of the last probe *)
    mutable remediations : (string * string) list;  (* reverse *)
  }

  let create ?(budget = default_budget) ~net ~nsdb ~demands ~prefix () =
    {
      budget;
      net;
      nsdb;
      demands;
      prefix;
      armed = None;
      sub_token = None;
      violations = 0;
      v_window = 0;
      bh_prior = 0.0;
      bh_current = 0.0;
      remediations = [];
    }

  let disarm t =
    (match t.sub_token with
     | Some token ->
       Nsdb.Replicated.unsubscribe t.nsdb token;
       t.sub_token <- None
     | None -> ());
    t.bh_prior <- t.bh_prior +. t.bh_current;
    t.bh_current <- 0.0;
    t.armed <- None

  let watch_journal t plan_name =
    let record (path, v) =
      match v with
      | Some (Nsdb.String detail)
        when String.length path >= 12
             && String.sub path (String.length path - 12) 12 = "/remediation"
        ->
        t.remediations <- (plan_name, detail) :: t.remediations
      | _ -> ()
    in
    Nsdb.Replicated.subscribe t.nsdb
      ~path:(Printf.sprintf "journal/%s/**" plan_name)
      (function
        | `Changes changes -> List.iter record changes
        | `Resync snapshot ->
          List.iter (fun (p, v) -> record (p, Some v)) snapshot)

  let arm t ~plan_name =
    if t.armed <> None then disarm t;
    (* Clearing the trace per window bounds its growth over a simulated
       day and anchors the FIB timeline at the baseline snapshot. *)
    Bgp.Trace.clear (Bgp.Network.trace t.net);
    t.v_window <- 0;
    t.armed <-
      Some
        ( plan_name,
          Bgp.Network.now t.net,
          Bgp.Network.fib_snapshot t.net t.prefix );
    t.sub_token <- Some (watch_journal t plan_name)

  let probe t _phase =
    match t.armed with
    | None -> `Ok
    | Some (_, t0, initial) ->
      let timeline =
        Bgp.Trace.fib_timeline (Bgp.Network.trace t.net) ~prefix:t.prefix
          ~initial
      in
      let integral =
        Dataplane.Metrics.loss_integrals ~initial ~timeline ~demands:t.demands
          ~from_time:t0
          ~until:(Bgp.Network.now t.net)
      in
      t.bh_current <- integral.Dataplane.Metrics.blackhole_seconds;
      let sweep = Invariant.check t.net in
      t.violations <- t.violations + List.length sweep;
      t.v_window <- t.v_window + List.length sweep;
      let reasons = ref [] in
      if t.v_window > t.budget.max_violations then begin
        let kinds =
          List.sort_uniq compare
            (List.map
               (fun (v : Invariant.violation) -> Invariant.kind_name v.kind)
               sweep)
        in
        reasons :=
          Printf.sprintf "%d invariant violations exceed budget %d (%s)"
            t.v_window t.budget.max_violations
            (String.concat ", " kinds)
          :: !reasons
      end;
      if t.bh_current > t.budget.max_blackhole_seconds then
        reasons :=
          Printf.sprintf "%.6f blackhole-seconds exceed budget %.6f"
            t.bh_current t.budget.max_blackhole_seconds
          :: !reasons;
      if !reasons = [] then `Ok
      else begin
        Obs.Metrics.incr m_wd_breaches;
        `Breach (List.rev !reasons)
      end

  let remediations t = List.rev t.remediations
  let violations_seen t = t.violations
  let blackhole_seconds t = t.bh_prior +. t.bh_current
end
