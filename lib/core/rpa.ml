type t = {
  path_selection : Path_selection.t list;
  route_attribute : Route_attribute.t list;
  route_filter : Route_filter.t list;
  advertise_least_favorable : bool;
}

let empty =
  {
    path_selection = [];
    route_attribute = [];
    route_filter = [];
    advertise_least_favorable = true;
  }

let is_empty t =
  t.path_selection = [] && t.route_attribute = [] && t.route_filter = []

let make ?(path_selection = []) ?(route_attribute = []) ?(route_filter = [])
    ?(advertise_least_favorable = true) () =
  { path_selection; route_attribute; route_filter; advertise_least_favorable }

(* Appends [ys] to [xs], dropping entries structurally equal to one already
   present. Merging the same RPA twice used to concatenate its statements
   verbatim, inflating the Table 3 RPA-LOC metric; duplicates carry no
   semantic weight (orthogonal RPAs co-exist, identical ones are one RPA). *)
let dedup_append eq xs ys =
  List.fold_left
    (fun acc y -> if List.exists (eq y) acc then acc else acc @ [ y ])
    xs ys

let merge a b =
  {
    path_selection =
      dedup_append Path_selection.equal a.path_selection b.path_selection;
    route_attribute =
      dedup_append Route_attribute.equal a.route_attribute b.route_attribute;
    route_filter = dedup_append Route_filter.equal a.route_filter b.route_filter;
    advertise_least_favorable =
      a.advertise_least_favorable && b.advertise_least_favorable;
  }

let config_lines t =
  List.concat_map Path_selection.config_lines t.path_selection
  @ List.concat_map Route_attribute.config_lines t.route_attribute
  @ List.concat_map Route_filter.config_lines t.route_filter

let loc t = List.length (config_lines t)

let pp ppf t =
  if is_empty t then Format.pp_print_string ppf "(no RPAs)"
  else
    Format.fprintf ppf "@[<v>%a@]"
      (Format.pp_print_list Format.pp_print_string)
      (config_lines t)

let statement_count t =
  List.fold_left (fun acc ps -> acc + List.length ps.Path_selection.statements)
    0 t.path_selection
  + List.fold_left
      (fun acc ra -> acc + List.length ra.Route_attribute.statements)
      0 t.route_attribute
  + List.fold_left
      (fun acc rf -> acc + List.length rf.Route_filter.statements)
      0 t.route_filter
