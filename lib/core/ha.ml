(* Observability instruments (shared registry; no-ops until enabled). *)
let m_elections = Obs.Metrics.counter "ha.elections"
let h_takeover_ms = Obs.Metrics.histogram "ha.takeover_ms"
let m_renewals = Obs.Metrics.counter "ha.renewals"
let m_demotions = Obs.Metrics.counter "ha.demotions"
let m_leader_crashes = Obs.Metrics.counter "ha.leader_crashes"

type member = {
  id : int;
  controller : Controller.t;
  mutable alive : bool;
  mutable held_epoch : int;  (* 0 = holds no lease *)
  mutable held_expiry : float;
}

(* Audit trail for Invariant.check_ha: every lease grant with its validity
   window (renewals extend the window of the grant's epoch). *)
type grant = {
  g_holder : int;
  g_epoch : int;
  g_start : float;
  mutable g_expiry : float;
}

(* The timer timeline. HA timers live on the Dsim virtual clock but are
   deliberately NOT event-queue events: Bgp.Network.converge runs the
   queue to quiescence, so a self-rescheduling timer event would either
   never let it terminate or drag virtual time to an arbitrary horizon
   mid-deployment. Instead the agenda holds the logical firing times and
   {!advance} replays every firing [<= now] in (time, member, action)
   order whenever the clock has moved — at every fence evaluation (i.e.
   every management operation) and from the takeover wait loop. Because a
   firing's effect depends only on HA-owned state (lease keys, member
   flags, the dedicated chaos stream) and its own logical time, the replay
   is bit-identical however coarsely the pump is called. *)
type action = Tick | Renew

type t = {
  net : Bgp.Network.t;
  nsdb : Nsdb.Replicated.t;
  agent : Switch_agent.t;
  members : member array;
  lease_ttl : float;
  tick_every : float;
  stagger : float;
  fault : Dsim.Mgmt_fault.t option;
  mutable agenda : (float * int * action) list;  (* sorted *)
  mutable grants : grant list;  (* reverse chronological *)
  mutable elections : int;
  mutable takeovers_ms : float list;  (* reverse chronological *)
  mutable leader_down_at : float option;
  mutable running : bool;
}

let lease_path = "ha/lease"
let epoch_path = "ha/epoch"

let encode_lease ~holder ~epoch ~expiry =
  (* %.17g round-trips the float bit-exactly: re-encoding a decoded lease
     yields the same string, which compare_and_set relies on. *)
  Printf.sprintf "%d:%d:%.17g" holder epoch expiry

let decode_lease s =
  match String.split_on_char ':' s with
  | [ h; e; x ] -> (
    try Some (int_of_string h, int_of_string e, float_of_string x)
    with Failure _ -> None)
  | _ -> None

let create ?(lease_ttl = 0.05) ?(tick_every = 0.01) ?(stagger = 0.0005)
    ?fault ~members net agent nsdb =
  if members < 1 then invalid_arg "Ha.create: need >= 1 member";
  if lease_ttl <= 0.0 || tick_every <= 0.0 || stagger <= 0.0 then
    invalid_arg "Ha.create: timers must be positive";
  {
    net;
    nsdb;
    agent;
    members =
      Array.init members (fun id ->
          {
            id;
            controller = Controller.create ~agent ~nsdb net;
            alive = true;
            held_epoch = 0;
            held_expiry = neg_infinity;
          });
    lease_ttl;
    tick_every;
    stagger;
    fault;
    agenda = [];
    grants = [];
    elections = 0;
    takeovers_ms = [];
    leader_down_at = None;
    running = false;
  }

let now t = Bgp.Network.now t.net

let schedule t ~time ~member action =
  let rec insert = function
    | [] -> [ (time, member, action) ]
    | ((t', m', _) as hd) :: tl when (t', m') <= (time, member) ->
      hd :: insert tl
    | tl -> (time, member, action) :: tl
  in
  t.agenda <- insert t.agenda

let store_lease t =
  match Nsdb.Replicated.get_one t.nsdb ~path:lease_path with
  | Some (Nsdb.String s) -> decode_lease s
  | Some _ | None -> None

let max_epoch t =
  match Nsdb.Replicated.get_one t.nsdb ~path:epoch_path with
  | Some (Nsdb.Int e) -> e
  | Some _ | None -> 0

let lease_reachable t ~at =
  match t.fault with
  | None -> true
  | Some f -> Dsim.Mgmt_fault.lease_reachable f ~now:at

(* Kill whichever member holds a currently-valid lease, once per
   scheduled crash time that has passed. A crash scheduled for an instant
   with no valid leader is consumed without effect. *)
let apply_chaos t ~at =
  match t.fault with
  | None -> ()
  | Some f ->
    while Dsim.Mgmt_fault.leader_crash_due f ~now:at do
      Array.iter
        (fun m ->
          if m.alive && m.held_epoch > 0 && at < m.held_expiry then begin
            m.alive <- false;
            Obs.Metrics.incr m_leader_crashes;
            if t.leader_down_at = None then t.leader_down_at <- Some at
          end)
        t.members
    done

let try_acquire t m ~at =
  if lease_reachable t ~at then begin
    let current = Nsdb.Replicated.get_one t.nsdb ~path:lease_path in
    let holder_valid =
      match current with
      | Some (Nsdb.String s) -> (
        match decode_lease s with
        | Some (_, _, expiry) -> expiry > at
        | None -> false)
      | Some _ | None -> false
    in
    if not holder_valid then begin
      (* Expired or absent: claim it under the next epoch. The CAS is the
         linearization point — on contention at one instant the member
         ticking first (deterministic: staggered timers) wins and the
         loser's expected value no longer matches. *)
      let epoch = max_epoch t + 1 in
      let expiry = at +. t.lease_ttl in
      if
        Nsdb.Replicated.compare_and_set t.nsdb ~path:lease_path
          ~expected:current
          (Nsdb.String (encode_lease ~holder:m.id ~epoch ~expiry))
      then begin
        (* Publish the fencing floor before acting under the lease: from
           here on, agents and the NSDB reject anything older. *)
        Nsdb.Replicated.set t.nsdb ~path:epoch_path (Nsdb.Int epoch);
        m.held_epoch <- epoch;
        m.held_expiry <- expiry;
        t.elections <- t.elections + 1;
        Obs.Metrics.incr m_elections;
        t.grants <-
          { g_holder = m.id; g_epoch = epoch; g_start = at; g_expiry = expiry }
          :: t.grants;
        match t.leader_down_at with
        | Some down ->
          let ms = (at -. down) *. 1000.0 in
          t.takeovers_ms <- ms :: t.takeovers_ms;
          Obs.Metrics.observe h_takeover_ms ms;
          t.leader_down_at <- None
        | None -> ()
      end
    end
  end

let do_renew t m ~at =
  if m.alive && m.held_epoch > 0 && at < m.held_expiry then begin
    if lease_reachable t ~at then begin
      match store_lease t with
      | Some (h, e, expiry) when h = m.id && e = m.held_epoch ->
        let expected =
          Some (Nsdb.String (encode_lease ~holder:h ~epoch:e ~expiry))
        in
        let expiry' = at +. t.lease_ttl in
        if
          Nsdb.Replicated.compare_and_set t.nsdb ~path:lease_path ~expected
            (Nsdb.String (encode_lease ~holder:h ~epoch:e ~expiry:expiry'))
        then begin
          m.held_expiry <- expiry';
          Obs.Metrics.incr m_renewals;
          match List.find_opt (fun g -> g.g_epoch = e) t.grants with
          | Some g -> g.g_expiry <- expiry'
          | None -> ()
        end
      | Some _ | None ->
        (* Superseded or gone from under us: fail-stop as a leader. *)
        m.held_epoch <- 0;
        Obs.Metrics.incr m_demotions
    end
  end

let tick t m ~at =
  apply_chaos t ~at;
  if m.alive then begin
    if m.held_epoch > 0 && at >= m.held_expiry then begin
      (* The lease ran out before we renewed (partition, delayed renewal):
         demote. The epoch we held is dead; re-election starts fresh. *)
      m.held_epoch <- 0;
      Obs.Metrics.incr m_demotions
    end;
    if m.held_epoch > 0 then begin
      let delay =
        match t.fault with
        | None -> 0.0
        | Some f -> Dsim.Mgmt_fault.renewal_delay f
      in
      if delay > 0.0 then schedule t ~time:(at +. delay) ~member:m.id Renew
      else do_renew t m ~at
    end
    else try_acquire t m ~at
  end;
  schedule t ~time:(at +. t.tick_every) ~member:m.id Tick

let advance t =
  if t.running then begin
    let tnow = now t in
    let rec pump () =
      match t.agenda with
      | (time, mid, act) :: rest when time <= tnow ->
        t.agenda <- rest;
        let m = t.members.(mid) in
        (match act with Tick -> tick t m ~at:time | Renew -> do_renew t m ~at:time);
        pump ()
      | _ -> ()
    in
    pump ()
  end

let start t =
  if not t.running then begin
    t.running <- true;
    let base = now t in
    Array.iter
      (fun m ->
        schedule t
          ~time:(base +. (t.stagger *. float_of_int (m.id + 1)))
          ~member:m.id Tick)
      t.members
  end

let stop t =
  t.running <- false;
  t.agenda <- []

(* The controller-side fence: evaluated before every agent RPC, intent
   update and NSDB write of a fenced deployment. *)
let fence t m () =
  advance t;
  if not m.alive then Controller.Fence_crashed
  else if m.held_epoch > 0 && now t < m.held_expiry then
    Controller.Fence_held m.held_epoch
  else Controller.Fence_lost

let current_leader t =
  advance t;
  let tnow = now t in
  match store_lease t with
  | Some (h, e, expiry)
    when expiry > tnow
         && h >= 0
         && h < Array.length t.members
         && t.members.(h).alive
         && t.members.(h).held_epoch = e ->
    Some t.members.(h)
  | Some _ | None -> None

let leader_id t = Option.map (fun m -> m.id) (current_leader t)

let current_leader_epoch t =
  Option.map (fun m -> (m.id, m.held_epoch)) (current_leader t)

let fence_for t i = fence t t.members.(i)

let kill t i =
  let m = t.members.(i) in
  if m.alive then begin
    let was_leading = m.held_epoch > 0 && now t < m.held_expiry in
    m.alive <- false;
    if was_leading then begin
      Obs.Metrics.incr m_leader_crashes;
      if t.leader_down_at = None then t.leader_down_at <- Some (now t)
    end
  end

(* Advance virtual time in tick-sized steps until a member holds a valid
   lease (in-flight BGP events keep draining meanwhile — the fleet fails
   static during the controller outage). *)
let wait_member ?(max_wait = 60.0) t =
  let deadline = now t +. max_wait in
  let rec go () =
    match current_leader t with
    | Some m -> Some m
    | None ->
      if
        now t >= deadline
        || Array.for_all (fun m -> not m.alive) t.members
        || not t.running
      then None
      else begin
        ignore (Bgp.Network.run_until t.net ~time:(now t +. t.tick_every));
        go ()
      end
  in
  go ()

let wait_for_leader ?max_wait t =
  Option.map (fun m -> m.id) (wait_member ?max_wait t)

let run_plan ?policy ?between_phases ?watchdog ?lint ?op_fault
    ?(max_attempts = 64) t plan =
  let op_fault =
    match op_fault with
    | Some f -> f
    | None -> fun ~attempt:_ ~member:_ -> t.fault
  in
  let attempts = ref [] in
  let finished = ref None in
  let attempt = ref 0 in
  let give_up = ref false in
  while !finished = None && not !give_up do
    if !attempt >= max_attempts then give_up := true
    else
      match wait_member t with
      | None -> give_up := true
      | Some m ->
        let fault = op_fault ~attempt:!attempt ~member:m.id in
        Switch_agent.set_mgmt_fault t.agent fault;
        let fence = fence t m in
        let outcome =
          (* A journal means a predecessor got at least as far as writing
             "in-progress": take the resume path (idempotent; also handles
             the already-completed case). No journal means a fresh start. *)
          match Controller.journal_status m.controller plan with
          | None ->
            Controller.deploy_resilient ?policy ?fault ~fence ?between_phases
              ?watchdog ?lint m.controller plan
          | Some _ ->
            Controller.resume ?policy ?fault ~fence ?between_phases ?watchdog
              ?lint m.controller plan
        in
        incr attempt;
        attempts := (m.id, outcome) :: !attempts;
        (match outcome with
         | Controller.Crashed _ ->
           (* Crashed means the controller process died (op-count schedule
              from the fate model, or an HA leader-crash that the fence
              surfaced). Either way this member is gone. *)
           if m.alive then begin
             m.alive <- false;
             Obs.Metrics.incr m_leader_crashes;
             if t.leader_down_at = None then t.leader_down_at <- Some (now t)
           end
         | Controller.Fenced _ ->
           (* Deposed, not dead: the member fail-stopped its rollout and
              goes back to standby; it may lead again later. *)
           ()
         | (Controller.Completed _ | Controller.Rolled_back _
           | Controller.Aborted _) as terminal ->
           finished := Some terminal)
  done;
  (List.rev !attempts, !finished)

(* {1 Introspection} *)

let members t = Array.length t.members
let controller t i = t.members.(i).controller
let member_alive t i = t.members.(i).alive
let elections t = t.elections
let takeover_ms t = List.rev t.takeovers_ms

let grants t =
  List.rev_map
    (fun g -> (g.g_holder, g.g_epoch, g.g_start, g.g_expiry))
    t.grants

(* One flat audit of epoch-stamped mutations: agent RPA applies plus every
   member controller's fenced NSDB writes — the [commits] input of
   {!Invariant.check_ha}. *)
let epoch_commits t =
  let writes =
    Array.fold_left
      (fun acc m -> acc @ Controller.epoch_writes m.controller)
      [] t.members
  in
  List.sort compare (Switch_agent.epoch_commits t.agent @ writes)
