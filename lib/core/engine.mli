(** The RPA evaluation engine: turns a device's {!Rpa.t} into the
    {!Bgp.Rib_policy.hooks} that plug into the BGP workflow of Figure 6.

    Evaluation walks the priority list of path sets and picks the first one
    with enough matching active routes; all its routes are selected for
    forwarding while the least favorable one is advertised (Section 5.3.1).
    If no path set matches, selection falls back to native BGP, optionally
    guarded by [BgpNativeMinNextHop].

    Matched signatures are cached per (signature, attributes) pair, so
    re-evaluating a route after the first time is much faster — the
    cache-hit/cache-miss split of Table 2. *)

type t

val create : ?cache:bool -> Rpa.t -> t
(** [cache] defaults to [true]. *)

val rpa : t -> Rpa.t

val set_on_withdraw :
  t -> (prefix:Net.Prefix.t -> statement:string -> unit) option -> unit
(** Callback fired whenever a [BgpNativeMinNextHop] guard forces a
    withdrawal (the MNH-violated branch of the native fallback). The
    scenario layer uses it to surface guard firings as trace violations;
    [None] (the default) disables it. *)

val hooks : t -> Bgp.Rib_policy.hooks
(** The hooks are backed by this engine's mutable cache; one engine should
    serve one device. *)

type stats = { hits : int; misses : int; selections : int }

val stats : t -> stats

val reset_stats : t -> unit

val clear_cache : t -> unit

(** {1 Direct evaluation}

    Used by tests and by the Table 2 benchmark to time evaluation without a
    full network around it. *)

val evaluate_selection :
  t ->
  ctx:Bgp.Rib_policy.ctx ->
  candidates:Bgp.Path.t list ->
  native:(Bgp.Path.t list * Bgp.Path.t option) ->
  Bgp.Rib_policy.selection

val evaluate_weights :
  t ->
  ctx:Bgp.Rib_policy.ctx ->
  selected:Bgp.Path.t list ->
  (Bgp.Path.t * int) list option
