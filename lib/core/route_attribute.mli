(** Route Attribute RPA (Figure 7b).

    Prescribes the desired traffic-distribution ratio across paths toward a
    destination, a priori and asynchronously: when BGP observes and selects
    paths, the prescribed weights are applied instead of the distributed
    link-bandwidth derivation — fundamentally eliminating the transient
    next-hop-group explosion of Section 3.4. *)

type next_hop_weight = {
  w_name : string;
  w_signature : Signature.t;
  weight : int;  (** relative WCMP weight of paths matching the signature *)
}

type statement = {
  st_name : string;
  destination : Destination.t;
  next_hop_weights : next_hop_weight list;
      (** first matching entry wins per path *)
  default_weight : int;
      (** weight of selected paths matching no entry (default 1) *)
  expires_at : float option;
      (** virtual time after which the statement is invalid and BGP falls
          back to native distribution (the [ExpirationTime] operation
          parameter) *)
}

type t = { name : string; statements : statement list }

val next_hop_weight : ?name:string -> Signature.t -> weight:int -> next_hop_weight

val statement :
  ?name:string ->
  ?default_weight:int ->
  ?expires_at:float ->
  Destination.t ->
  next_hop_weight list ->
  statement

val make : ?name:string -> statement list -> t

val weight_of : statement -> Net.Attr.t -> int
(** The prescribed weight for a path with these attributes. *)

val expired : statement -> now:float -> bool

val next_hop_weight_equal : next_hop_weight -> next_hop_weight -> bool
val statement_equal : statement -> statement -> bool

val equal : t -> t -> bool
(** Structural equality; used by {!Rpa.merge} deduplication and the static
    analyzer. *)

val config_lines : t -> string list
val pp : Format.formatter -> t -> unit
