(* Observability instruments (shared registry; no-ops until enabled). *)
let m_checks = Obs.Metrics.counter "invariant.checks"
let m_violations = Obs.Metrics.counter "invariant.violations"

type kind =
  | Forwarding_loop
  | Blackhole
  | Rib_inconsistency
  | Dead_next_hop
  | Unstable
  | Compiled_mismatch
  | Session_stale
  | Stale_route
  | Dual_leader
  | Stale_epoch_write

let kind_name = function
  | Forwarding_loop -> "forwarding-loop"
  | Blackhole -> "blackhole"
  | Rib_inconsistency -> "rib-inconsistency"
  | Dead_next_hop -> "dead-next-hop"
  | Unstable -> "unstable"
  | Compiled_mismatch -> "compiled-mismatch"
  | Session_stale -> "session-stale"
  | Stale_route -> "stale-route"
  | Dual_leader -> "dual-leader"
  | Stale_epoch_write -> "stale-epoch-write"

type violation = {
  device : int option;
  prefix : Net.Prefix.t option;
  kind : kind;
  detail : string;
}

let pp_violation ppf v =
  Format.fprintf ppf "[%s]" (kind_name v.kind);
  Option.iter (fun d -> Format.fprintf ppf " device %d" d) v.device;
  Option.iter (fun p -> Format.fprintf ppf " %a" Net.Prefix.pp p) v.prefix;
  Format.fprintf ppf ": %s" v.detail

(* ---------------- Forwarding loops ---------------- *)

let check_forwarding ?prefix ~lookup ~devices () =
  List.map
    (fun cycle ->
      {
        device = (match cycle with d :: _ -> Some d | [] -> None);
        prefix;
        kind = Forwarding_loop;
        detail =
          "cycle " ^ String.concat " -> " (List.map string_of_int cycle);
      })
    (Dataplane.Metrics.find_forwarding_loops ~lookup ~devices)

(* ---------------- Blackholes ---------------- *)

(* Devices physically connected to any of [origins] over up links. *)
let reachable_from graph origins =
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter
    (fun d ->
      Hashtbl.replace seen d ();
      Queue.push d queue)
    origins;
  while not (Queue.is_empty queue) do
    let d = Queue.pop queue in
    List.iter
      (fun ((n : Topology.Node.t), _link) ->
        if not (Hashtbl.mem seen n.Topology.Node.id) then begin
          Hashtbl.replace seen n.Topology.Node.id ();
          Queue.push n.Topology.Node.id queue
        end)
      (Topology.Graph.neighbors graph d)
  done;
  seen

let check_blackholes net graph devices prefix =
  let lookup d = Bgp.Network.fib net d prefix in
  let origins =
    List.filter
      (fun d -> match lookup d with Some Bgp.Speaker.Local -> true | _ -> false)
      devices
  in
  if origins = [] then []
  else begin
    let reachable = reachable_from graph origins in
    List.filter_map
      (fun d ->
        if
          Hashtbl.mem reachable d
          && (not (List.mem d origins))
          && lookup d = None
        then
          Some
            {
              device = Some d;
              prefix = Some prefix;
              kind = Blackhole;
              detail =
                "no route although a physical path to an origin survives";
            }
        else None)
      devices
  end

(* ---------------- Per-entry RIB / liveness checks ---------------- *)

let check_entries net graph devices prefix =
  List.concat_map
    (fun d ->
      let sp = Bgp.Network.speaker net d in
      match Bgp.Speaker.fib_lookup sp prefix with
      | Some Bgp.Speaker.Local | None -> []
      | Some (Bgp.Speaker.Entries _)
        when List.exists (Net.Prefix.equal prefix)
               (Bgp.Speaker.fib_stale_prefixes sp) ->
        (* The whole entry set is preserved from before the device's own
           graceful restart; its justifying RIBs are deliberately gone.
           [check_stale] reports it instead (a leak only at quiescence). *)
        []
      | Some (Bgp.Speaker.Entries entries) ->
        let rib = Bgp.Speaker.adj_rib_in sp prefix in
        List.concat_map
          (fun (e : Bgp.Speaker.entry) ->
            let justified =
              List.exists
                (fun (peer, session, _) ->
                  peer = e.Bgp.Speaker.next_hop
                  && session = e.Bgp.Speaker.session)
                rib
            in
            let rib_v =
              if justified then []
              else
                [ {
                    device = Some d;
                    prefix = Some prefix;
                    kind = Rib_inconsistency;
                    detail =
                      Printf.sprintf
                        "FIB entry via %d session %d has no Adj-RIB-In route"
                        e.Bgp.Speaker.next_hop e.Bgp.Speaker.session;
                  } ]
            in
            let link_up =
              match Topology.Graph.find_link graph d e.Bgp.Speaker.next_hop with
              | Some link -> link.Topology.Graph.up
              | None -> false
            in
            let alive =
              link_up
              && Bgp.Speaker.session_up sp ~peer:e.Bgp.Speaker.next_hop
                   ~session:e.Bgp.Speaker.session
            in
            (* Forwarding on a stale route over an up link is the sanctioned
               graceful-restart state (reported by [check_stale] if it
               persists), not a dead next hop. *)
            let stale_sanctioned =
              link_up
              && Bgp.Speaker.is_stale sp prefix ~peer:e.Bgp.Speaker.next_hop
                   ~session:e.Bgp.Speaker.session
            in
            let dead_v =
              if alive || stale_sanctioned then []
              else
                [ {
                    device = Some d;
                    prefix = Some prefix;
                    kind = Dead_next_hop;
                    detail =
                      Printf.sprintf
                        "FIB entry via %d session %d references a dead next \
                         hop"
                        e.Bgp.Speaker.next_hop e.Bgp.Speaker.session;
                  } ]
            in
            rib_v @ dead_v)
          entries)
    devices

(* ---------------- Graceful-restart stale state ---------------- *)

(* Stale marks are legitimate only while a restart/resync is in progress; a
   mark that survives to quiescence means the sweep machinery leaked. *)
let check_stale net devices =
  List.concat_map
    (fun d ->
      let sp = Bgp.Network.speaker net d in
      let route_leaks =
        List.map
          (fun (prefix, peer, session, marked_at) ->
            {
              device = Some d;
              prefix = Some prefix;
              kind = Stale_route;
              detail =
                Printf.sprintf
                  "route from peer %d session %d still stale (marked at %.4fs)"
                  peer session marked_at;
            })
          (Bgp.Speaker.stale_routes sp)
      in
      let fib_leaks =
        List.map
          (fun prefix ->
            {
              device = Some d;
              prefix = Some prefix;
              kind = Stale_route;
              detail = "FIB entry preserved across restart was never re-learned";
            })
          (Bgp.Speaker.fib_stale_prefixes sp)
      in
      route_leaks @ fib_leaks)
    devices

(* ---------------- Session staleness ---------------- *)

(* For every session both ends consider established, what the sender's
   Adj-RIB-Out holds must match what the receiver's Adj-RIB-In heard. A
   divergence at quiescence means the transport silently ate messages — the
   blinded-session failure mode that, without liveness timers, no other
   check can see (each end is internally converged on its own inputs). *)
let check_session_staleness net =
  let graph = Bgp.Network.graph net in
  let direction src dst session =
    let sender = Bgp.Network.speaker net src in
    let receiver = Bgp.Network.speaker net dst in
    if
      not
        (Bgp.Speaker.session_up sender ~peer:dst ~session
        && Bgp.Speaker.session_up receiver ~peer:src ~session)
    then []
    else begin
      let sent = Bgp.Speaker.advertised_to sender ~peer:dst in
      let heard = Bgp.Speaker.routes_from receiver ~peer:src ~session in
      let stale prefix =
        Bgp.Speaker.is_stale receiver prefix ~peer:src ~session
      in
      let missing =
        List.filter_map
          (fun (prefix, attr) ->
            if stale prefix then None
            else
              match List.assoc_opt prefix heard with
              | Some got when Net.Attr.equal got attr -> None
              | Some _ ->
                Some
                  {
                    device = Some dst;
                    prefix = Some prefix;
                    kind = Session_stale;
                    detail =
                      Printf.sprintf
                        "route from %d session %d differs from what the peer \
                         advertised"
                        src session;
                  }
              | None ->
                Some
                  {
                    device = Some dst;
                    prefix = Some prefix;
                    kind = Session_stale;
                    detail =
                      Printf.sprintf
                        "peer %d advertised this prefix on session %d but it \
                         was never received"
                        src session;
                  })
          sent
      in
      let ghost =
        List.filter_map
          (fun (prefix, _) ->
            if stale prefix || List.mem_assoc prefix sent then None
            else
              Some
                {
                  device = Some dst;
                  prefix = Some prefix;
                  kind = Session_stale;
                  detail =
                    Printf.sprintf
                      "route held from %d session %d is no longer in the \
                       peer's Adj-RIB-Out"
                      src session;
                })
          heard
      in
      missing @ ghost
    end
  in
  List.concat_map
    (fun (link : Topology.Graph.link) ->
      if not link.Topology.Graph.up then []
      else
        List.concat_map
          (fun session ->
            direction link.a link.b session @ direction link.b link.a session)
          (List.init link.Topology.Graph.sessions Fun.id))
    (Topology.Graph.links graph)

(* ---------------- Stability ---------------- *)

let check_stability net devices =
  let env = Bgp.Network.env net in
  List.concat_map
    (fun d ->
      let sp = Bgp.Network.speaker net d in
      List.map
        (function
          | Bgp.Speaker.Stale_fib { prefix } ->
            {
              device = Some d;
              prefix = Some prefix;
              kind = Unstable;
              detail = "installed FIB differs from decision-process output";
            }
          | Bgp.Speaker.Stale_advert { prefix; peer } ->
            {
              device = Some d;
              prefix = Some prefix;
              kind = Unstable;
              detail =
                Printf.sprintf
                  "advertisement to peer %d differs from decision-process \
                   output"
                  peer;
            })
        (Bgp.Speaker.divergences sp env))
    devices

(* ---------------- Entry points ---------------- *)

let check ?prefixes net =
  Obs.Metrics.incr m_checks;
  Obs.Span.with_span "invariant.sweep" @@ fun () ->
  let graph = Bgp.Network.graph net in
  let devices =
    List.map (fun n -> n.Topology.Node.id) (Topology.Graph.nodes graph)
  in
  let prefixes =
    match prefixes with
    | Some ps -> ps
    | None -> Bgp.Network.known_prefixes net
  in
  let per_prefix =
    List.concat_map
      (fun prefix ->
        check_forwarding ~prefix
          ~lookup:(fun d -> Bgp.Network.fib net d prefix)
          ~devices ()
        @ check_blackholes net graph devices prefix
        @ check_entries net graph devices prefix)
      prefixes
  in
  let found =
    per_prefix @ check_stability net devices @ check_stale net devices
    @ check_session_staleness net
  in
  Obs.Metrics.incr ~by:(List.length found) m_violations;
  found

let check_compiled net (compiled : Fallback_compiler.compiled) =
  List.filter_map
    (fun (device, peer, policy) ->
      let sp = Bgp.Network.speaker net device in
      match Bgp.Speaker.ingress_policy sp ~peer with
      | Some installed when installed = policy -> None
      | Some _ | None ->
        Some
          {
            device = Some device;
            prefix = None;
            kind = Compiled_mismatch;
            detail =
              Printf.sprintf
                "compiled ingress policy for peer %d is not installed" peer;
          })
    compiled.Fallback_compiler.ingress_policies

let record net violations =
  let time = Bgp.Network.now net in
  let trace = Bgp.Network.trace net in
  List.iter
    (fun v ->
      Bgp.Trace.record trace
        (Bgp.Trace.Violation
           {
             time;
             device = v.device;
             prefix = v.prefix;
             kind = kind_name v.kind;
             detail = v.detail;
           }))
    violations

let monitor ?(period = 0.005) ~until net =
  if period <= 0.0 then invalid_arg "Invariant.monitor: period must be positive";
  let queue = Bgp.Network.queue net in
  let rec tick () =
    record net (check net);
    if Bgp.Network.now net +. period <= until then
      Dsim.Event_queue.schedule queue ~delay:period tick
  in
  if period <= until then Dsim.Event_queue.schedule queue ~delay:period tick

(* ---------------- Control-plane HA ---------------- *)

let check_ha ~grants ~commits =
  (* Dual leader: two different epochs' lease validity windows overlap —
     at some instant two holders both believed they led. CAS-linearized
     acquisition only claims expired leases, so any overlap means the
     renewal/TTL arithmetic (or a partition workaround) is broken. The
     same epoch granted to two holders is the same disease through a
     different failure. *)
  let dual =
    let rec pairs = function
      | [] -> []
      | g :: rest -> List.map (fun g' -> (g, g')) rest @ pairs rest
    in
    List.filter_map
      (fun ((h1, e1, s1, x1), (h2, e2, s2, x2)) ->
        let overlap = Float.max s1 s2 < Float.min x1 x2 in
        if (e1 <> e2 && overlap) || (e1 = e2 && h1 <> h2) then
          Some
            {
              device = Some h2;
              prefix = None;
              kind = Dual_leader;
              detail =
                Printf.sprintf
                  "leases overlap: holder %d epoch %d [%.6f, %.6f) vs holder \
                   %d epoch %d [%.6f, %.6f)"
                  h1 e1 s1 x1 h2 e2 s2 x2;
            }
        else None)
      (pairs grants)
  in
  (* Stale-epoch write: a mutation committed under epoch e after some
     epoch e' > e had already been granted — the fence (agent- or
     NSDB-side) let a deposed leader's write through. Epoch 0 marks
     unfenced single-controller operation and is exempt. *)
  let stale =
    List.filter_map
      (fun (time, e) ->
        if e = 0 then None
        else
          match
            List.find_opt
              (fun (_, e', s', _) -> e' > e && s' <= time)
              grants
          with
          | Some (h', e', s', _) ->
            Some
              {
                device = Some h';
                prefix = None;
                kind = Stale_epoch_write;
                detail =
                  Printf.sprintf
                    "write committed at %.6f under epoch %d after epoch %d \
                     was granted at %.6f"
                    time e e' s';
              }
          | None -> None)
      commits
  in
  dual @ stale
