type min_next_hop =
  | Count of int
  | Fraction of float

type path_set = {
  ps_name : string;
  ps_signature : Signature.t;
  ps_min_next_hop : min_next_hop option;
}

type statement = {
  st_name : string;
  destination : Destination.t;
  path_sets : path_set list;
  bgp_native_min_next_hop : min_next_hop option;
  keep_fib_warm_if_mnh_violated : bool;
}

type t = { name : string; statements : statement list }

let path_set ?min_next_hop ~name signature =
  { ps_name = name; ps_signature = signature; ps_min_next_hop = min_next_hop }

let statement ?(name = "statement") ?(path_sets = [])
    ?bgp_native_min_next_hop ?(keep_fib_warm_if_mnh_violated = false)
    destination =
  {
    st_name = name;
    destination;
    path_sets;
    bgp_native_min_next_hop;
    keep_fib_warm_if_mnh_violated;
  }

let make ?(name = "path-selection") statements = { name; statements }

let required_count mnh ~denominator =
  match mnh with
  | Count n -> n
  | Fraction f -> int_of_float (Float.ceil (f *. float_of_int denominator))

let mnh_to_string = function
  | Count n -> string_of_int n
  | Fraction f -> Printf.sprintf "%.0f%%" (100.0 *. f)

let min_next_hop_equal a b =
  match (a, b) with
  | Count x, Count y -> Int.equal x y
  | Fraction x, Fraction y -> Float.equal x y
  | Count _, Fraction _ | Fraction _, Count _ -> false

let path_set_equal a b =
  String.equal a.ps_name b.ps_name
  && Signature.equal a.ps_signature b.ps_signature
  && Option.equal min_next_hop_equal a.ps_min_next_hop b.ps_min_next_hop

let statement_equal a b =
  String.equal a.st_name b.st_name
  && Destination.equal a.destination b.destination
  && List.equal path_set_equal a.path_sets b.path_sets
  && Option.equal min_next_hop_equal a.bgp_native_min_next_hop
       b.bgp_native_min_next_hop
  && Bool.equal a.keep_fib_warm_if_mnh_violated b.keep_fib_warm_if_mnh_violated

let equal a b =
  String.equal a.name b.name && List.equal statement_equal a.statements b.statements

let config_lines t =
  let statement_lines st =
    let path_set_lines ps =
      [ Printf.sprintf "  PathSet %s {" ps.ps_name ]
      @ List.map (fun l -> "    " ^ l) (Signature.config_lines ps.ps_signature)
      @ (match ps.ps_min_next_hop with
         | None -> []
         | Some mnh -> [ "    MinNextHop = " ^ mnh_to_string mnh ])
      @ [ "  }" ]
    in
    [ Printf.sprintf "Statement %s {" st.st_name;
      " " ^ Destination.config_line st.destination ]
    @ (match st.path_sets with
       | [] -> [ " PathSetList = []" ]
       | sets -> (" PathSetList = [" :: List.concat_map path_set_lines sets) @ [ " ]" ])
    @ (match st.bgp_native_min_next_hop with
       | None -> []
       | Some mnh -> [ " BgpNativeMinNextHop = " ^ mnh_to_string mnh ])
    @ (if st.keep_fib_warm_if_mnh_violated then
         [ " KeepFibWarmIfMnhViolated = true" ]
       else [])
    @ [ "}" ]
  in
  (Printf.sprintf "PathSelectionRpa %s {" t.name
   :: List.concat_map statement_lines t.statements)
  @ [ "}" ]

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list Format.pp_print_string)
    (config_lines t)
