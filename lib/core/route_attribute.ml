type next_hop_weight = {
  w_name : string;
  w_signature : Signature.t;
  weight : int;
}

type statement = {
  st_name : string;
  destination : Destination.t;
  next_hop_weights : next_hop_weight list;
  default_weight : int;
  expires_at : float option;
}

type t = { name : string; statements : statement list }

let next_hop_weight ?(name = "weight") signature ~weight =
  if weight < 0 then invalid_arg "Route_attribute.next_hop_weight: negative";
  { w_name = name; w_signature = signature; weight }

let statement ?(name = "statement") ?(default_weight = 1) ?expires_at
    destination next_hop_weights =
  { st_name = name; destination; next_hop_weights; default_weight; expires_at }

let make ?(name = "route-attribute") statements = { name; statements }

let weight_of st attr =
  match
    List.find_opt (fun w -> Signature.matches w.w_signature attr)
      st.next_hop_weights
  with
  | Some w -> w.weight
  | None -> st.default_weight

let expired st ~now =
  match st.expires_at with None -> false | Some t -> now >= t

let next_hop_weight_equal a b =
  String.equal a.w_name b.w_name
  && Signature.equal a.w_signature b.w_signature
  && Int.equal a.weight b.weight

let statement_equal a b =
  String.equal a.st_name b.st_name
  && Destination.equal a.destination b.destination
  && List.equal next_hop_weight_equal a.next_hop_weights b.next_hop_weights
  && Int.equal a.default_weight b.default_weight
  && Option.equal Float.equal a.expires_at b.expires_at

let equal a b =
  String.equal a.name b.name && List.equal statement_equal a.statements b.statements

let config_lines t =
  let statement_lines st =
    let weight_lines w =
      [ Printf.sprintf "  NextHopWeight %s {" w.w_name ]
      @ List.map (fun l -> "    " ^ l) (Signature.config_lines w.w_signature)
      @ [ Printf.sprintf "    Weight = %d" w.weight; "  }" ]
    in
    [ Printf.sprintf "Statement %s {" st.st_name;
      " " ^ Destination.config_line st.destination;
      " NextHopWeightList = [" ]
    @ List.concat_map weight_lines st.next_hop_weights
    @ [ " ]" ]
    @ (if st.default_weight <> 1 then
         [ Printf.sprintf " DefaultWeight = %d" st.default_weight ]
       else [])
    @ (match st.expires_at with
       | None -> []
       | Some time -> [ Printf.sprintf " ExpirationTime = %.3f" time ])
    @ [ "}" ]
  in
  (Printf.sprintf "RouteAttributeRpa %s {" t.name
   :: List.concat_map statement_lines t.statements)
  @ [ "}" ]

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list Format.pp_print_string)
    (config_lines t)
