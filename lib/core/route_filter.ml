type peer_signature = {
  peer_layers : Topology.Node.layer list;
  peer_devices : int list;
}

let any_peer = { peer_layers = []; peer_devices = [] }

type prefix_rule = {
  covering : Net.Prefix.t;
  min_mask_length : int option;
  max_mask_length : int option;
}

type filter =
  | Allow_all
  | Allow_list of prefix_rule list

type statement = {
  st_name : string;
  peer : peer_signature;
  ingress : filter;
  egress : filter;
}

type t = { name : string; statements : statement list }

let prefix_rule ?min_mask_length ?max_mask_length covering =
  { covering; min_mask_length; max_mask_length }

let statement ?(name = "statement") ?(ingress = Allow_all) ?(egress = Allow_all)
    peer =
  { st_name = name; peer; ingress; egress }

let make ?(name = "route-filter") statements = { name; statements }

let peer_matches signature ~peer ~layer =
  let layer_ok =
    signature.peer_layers = []
    ||
    match layer with
    | None -> false
    | Some l -> List.exists (Topology.Node.layer_equal l) signature.peer_layers
  in
  let device_ok =
    signature.peer_devices = [] || List.mem peer signature.peer_devices
  in
  layer_ok && device_ok

let rule_allows rule prefix =
  Net.Prefix.contains rule.covering prefix
  && (match rule.min_mask_length with
      | None -> true
      | Some m -> Net.Prefix.mask_length prefix >= m)
  && (match rule.max_mask_length with
      | None -> true
      | Some m -> Net.Prefix.mask_length prefix <= m)

let filter_allows filter prefix =
  match filter with
  | Allow_all -> true
  | Allow_list rules -> List.exists (fun r -> rule_allows r prefix) rules

type direction = Ingress | Egress

let peer_signature_equal a b =
  List.equal Topology.Node.layer_equal a.peer_layers b.peer_layers
  && List.equal Int.equal a.peer_devices b.peer_devices

let prefix_rule_equal a b =
  Net.Prefix.equal a.covering b.covering
  && Option.equal Int.equal a.min_mask_length b.min_mask_length
  && Option.equal Int.equal a.max_mask_length b.max_mask_length

let filter_equal a b =
  match (a, b) with
  | Allow_all, Allow_all -> true
  | Allow_list x, Allow_list y -> List.equal prefix_rule_equal x y
  | Allow_all, Allow_list _ | Allow_list _, Allow_all -> false

let statement_equal a b =
  String.equal a.st_name b.st_name
  && peer_signature_equal a.peer b.peer
  && filter_equal a.ingress b.ingress
  && filter_equal a.egress b.egress

let equal a b =
  String.equal a.name b.name && List.equal statement_equal a.statements b.statements

let allows t direction ~peer ~layer prefix =
  match
    List.find_opt (fun st -> peer_matches st.peer ~peer ~layer) t.statements
  with
  | None -> true
  | Some st ->
    let filter = match direction with Ingress -> st.ingress | Egress -> st.egress in
    filter_allows filter prefix

let config_lines t =
  let filter_lines label = function
    | Allow_all -> [ Printf.sprintf " %s = allow-all" label ]
    | Allow_list rules ->
      [ Printf.sprintf " %s = [" label ]
      @ List.map
          (fun r ->
            Printf.sprintf "  PrefixSet { prefix = %s%s%s }"
              (Net.Prefix.to_string r.covering)
              (match r.min_mask_length with
               | None -> ""
               | Some m -> Printf.sprintf "; min_mask = %d" m)
              (match r.max_mask_length with
               | None -> ""
               | Some m -> Printf.sprintf "; max_mask = %d" m))
          rules
      @ [ " ]" ]
  in
  let peer_line sg =
    let layers =
      match sg.peer_layers with
      | [] -> "any"
      | ls -> String.concat "," (List.map Topology.Node.layer_to_string ls)
    in
    let devices =
      match sg.peer_devices with
      | [] -> "any"
      | ds -> String.concat "," (List.map string_of_int ds)
    in
    Printf.sprintf " PeerSignature { layers = %s; devices = %s }" layers devices
  in
  let statement_lines st =
    [ Printf.sprintf "Statement %s {" st.st_name; peer_line st.peer ]
    @ filter_lines "IngressFilter" st.ingress
    @ filter_lines "EgressFilter" st.egress
    @ [ "}" ]
  in
  (Printf.sprintf "RouteFilterRpa %s {" t.name
   :: List.concat_map statement_lines t.statements)
  @ [ "}" ]

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list Format.pp_print_string)
    (config_lines t)
