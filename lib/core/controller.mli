(** The Centralium controller: applications over NSDB over Switch Agent
    (Figure 8), providing the five critical functions of Section 5:
    pre-deployment health checks, per-switch RPA generation, coordinated
    phased deployment, post-deployment checks, and fleet consistency.

    Applications compile an operator intent into a {!plan}; {!deploy}
    executes it safely: pre-checks, write intended state, reconcile phase
    by phase with BGP convergence in between, post-checks.

    {!deploy_resilient} is the fault-tolerant deployment loop: bounded
    retries with exponential backoff + jitter, a per-phase failure budget
    that triggers reverse-order rollback, and a journal persisted to the
    replicated NSDB so a controller crashed mid-deploy can be replaced and
    {!resume} the rollout idempotently. Unreachable devices fail static:
    their installed RPA engines keep running and distributed BGP keeps
    routing while the controller is degraded. *)

type plan = {
  plan_name : string;
  rpas : (int * Rpa.t) list;  (** per-device generated RPAs *)
  phases : int list list;
      (** deployment order, from {!Deployment.phases}; every device in
          [rpas] must appear in exactly one phase *)
  pre_checks : Health.check list;
  post_checks : Health.check list;
}

val plan_loc : plan -> int
(** Total rendered LOC of the distinct RPAs in the plan (Table 3's
    "RPA LOC"). Identical per-device RPAs are counted once, matching how
    operators author one RPA template per layer. *)

(** {1 Lint hook}

    The static analyzer (lib/analysis) depends on this library, so the
    controller cannot call it directly; instead the analysis library
    registers its engine here at link time. Deployments then run a
    pre-flight lint pass controlled by the [?lint] mode: [`Off] skips it,
    [`Warn] (the default) logs findings, [`Enforce] aborts the deployment
    when any error-severity finding is present. *)

type lint_finding = {
  lint_error : bool;  (** error severity (vs warning/info) *)
  lint_code : string;  (** stable diagnostic slug *)
  lint_message : string;
}

type lint_mode = [ `Off | `Warn | `Enforce ]

val set_linter : (Topology.Graph.t -> plan -> lint_finding list) -> unit
(** Registers the lint engine. Called by the analysis library's
    initializer; the last registration wins. *)

val linter : unit -> (Topology.Graph.t -> plan -> lint_finding list) option
(** The registered engine, if any — e.g. for {!Verification} to run the
    analyzer over every spec's plan. *)

(** {1 Verifier hook}

    The symbolic phase verifier (lib/analysis) registers here the same
    way. Unlike the linter it takes the network, not just the graph: the
    destination classes it proves loop- and blackhole-freedom for come
    from what the speakers actually originate. Deployments run it as a
    second pre-flight gate controlled by [?verify] (same modes and
    default as [?lint]). *)

val set_verifier : (Bgp.Network.t -> plan -> lint_finding list) -> unit
(** Registers the phase-verifier engine. Called by the analysis library's
    initializer; the last registration wins. *)

val verifier : unit -> (Bgp.Network.t -> plan -> lint_finding list) option
(** The registered verifier, if any — e.g. for {!Verification} and
    {!Ops} admission control. *)

type device_failure = {
  failed_device : int;
  attempts : int;
  last_error : string;
}
(** A device whose RPC kept failing after every allowed attempt. *)

type report = {
  applied : int;
  skipped_in_sync : int;
  unreachable : int list;
      (** Devices that stayed management-unreachable through all attempts.
          They fail static — whatever RPA they run keeps running — and are
          {e not} counted against the failure budget. *)
  deploy_seconds : float list;  (** per applied device (Figure 12 samples) *)
  retries : int;
  backoff_seconds : float list;
      (** Every backoff wait, in order — the retry schedule. Deterministic
          for a given [jitter_seed]. *)
  gave_up : device_failure list;
  resumed_from_phase : int option;
      (** [Some n] when this report comes from {!resume} restarting at
          phase [n]. *)
}

type outcome =
  | Completed of report
  | Rolled_back of { partial : report; reasons : string list }
      (** The failure budget was exceeded (or post-checks failed); the
          phases applied so far were undone in reverse order and the NSDB
          plan record cleared. *)
  | Crashed of { partial : report; completed_phases : int }
      (** A scheduled controller crash stopped the rollout. The journal
          still says in-progress; call {!resume}. *)
  | Fenced of { partial : report; completed_phases : int }
      (** The controller was deposed mid-rollout: its [?fence] reported the
          lease lost, or an agent/NSDB rejected a stale-epoch write. It
          fail-stopped (abandoned the phase, touched nothing further); the
          journal still says in-progress and the {e new} leader resumes. *)
  | Aborted of string list
      (** Validation or pre-checks failed; nothing was touched. *)

type fence_status =
  | Fence_held of int
      (** The caller holds a valid lease; the int is its fencing epoch,
          stamped onto every agent RPC and NSDB write. *)
  | Fence_lost  (** Lease lost or superseded: fail-stop ([Fenced]). *)
  | Fence_crashed  (** The HA layer scheduled this member's crash. *)

type retry_policy = {
  max_attempts : int;  (** per device, >= 1 *)
  base_backoff_s : float;
  backoff_multiplier : float;
  max_backoff_s : float;
  jitter : float;
      (** Extra wait as a fraction of the capped backoff, drawn uniformly
          from a dedicated RNG stream seeded with [jitter_seed]. *)
  jitter_seed : int;
  failure_budget : int;
      (** Hard failures (exhausted RPC retries) tolerated per phase before
          the deployment rolls itself back. *)
}

val default_retry_policy : retry_policy
(** 4 attempts, 2 ms base backoff doubling to a 50 ms cap, 50% jitter,
    zero failure budget. *)

type t

val create :
  ?seed:int -> ?agent:Switch_agent.t -> ?nsdb:Nsdb.Replicated.t ->
  Bgp.Network.t -> t
(** [agent] and [nsdb] let several controller replicas share one switch
    agent and one replicated NSDB — the HA deployment shape, where the
    fleet's device state and the journal are common infrastructure and
    only the controller process is replicated. By default each controller
    gets a private agent and a fresh 2-replica NSDB (single-controller
    operation, unchanged). *)

val network : t -> Bgp.Network.t
val agent : t -> Switch_agent.t
val nsdb : t -> Nsdb.Replicated.t

val epoch_writes : t -> (float * int) list
(** Audit trail for {!Invariant.check_ha}: (virtual time, epoch) of every
    committed NSDB write made under a fence, in commit order. *)

val services : t -> Service.t list
(** All service tasks of this controller deployment (for Figure 11). *)

val deploy :
  ?lint:lint_mode -> ?verify:lint_mode -> t -> plan ->
  (report, string list) result
(** Single-shot deployment (one attempt per device, no failure budget):
    pre-checks (failures abort with their messages), write intended state,
    reconcile phase by phase letting the network converge after each
    phase, post-checks. Post-check failures now roll the deployment back
    (reverse phase order) and clear the recorded intent, so the NSDB and
    the devices agree the plan is not live. *)

val deploy_resilient :
  ?policy:retry_policy ->
  ?fault:Dsim.Mgmt_fault.t ->
  ?fence:(unit -> fence_status) ->
  ?between_phases:(int -> unit) ->
  ?watchdog:(int -> [ `Ok | `Breach of string list ]) ->
  ?lint:lint_mode ->
  ?verify:lint_mode ->
  t ->
  plan ->
  outcome
(** The fault-tolerant deployment loop. [fault] injects per-RPC and
    per-NSDB-write fates and scheduled controller crashes (attach the same
    model to the agent with {!Switch_agent.set_mgmt_fault}).
    [between_phases] runs after each phase has converged — the hook for
    {!Invariant} sweeps while the controller is degraded. Backoff waits
    advance {e virtual} time, so BGP keeps converging while the controller
    sleeps.

    [fence] is the HA hook (see {!Ha.fence}): it is evaluated before every
    agent RPC, intent update and NSDB write. While it returns
    [Fence_held epoch], that epoch stamps the operation; [Fence_lost]
    makes the deployment fail-stop with the [Fenced] outcome, and
    [Fence_crashed] with [Crashed]. Unfenced deployments (the default)
    behave exactly as before.

    [watchdog] is the runtime SLO hook (see {!Ops.Watchdog}): evaluated
    after [between_phases] at every phase boundary, on the converged
    network. [`Breach reasons] records a remediation event at
    [journal/<plan>/remediation] and triggers the same reverse-order
    rollback as a blown failure budget; the outcome is [Rolled_back] with
    the breach reasons. The default never breaches. *)

val resume :
  ?policy:retry_policy ->
  ?fault:Dsim.Mgmt_fault.t ->
  ?fence:(unit -> fence_status) ->
  ?between_phases:(int -> unit) ->
  ?watchdog:(int -> [ `Ok | `Breach of string list ]) ->
  ?lint:lint_mode ->
  ?verify:lint_mode ->
  t ->
  plan ->
  outcome
(** Picks a crashed deployment up from the NSDB journal: re-records the
    intent and re-runs phases from the journalled cursor. Idempotent —
    devices already in sync are no-ops, so resuming converges to the same
    state as an uninterrupted deploy. *)

val journal_status : t -> plan -> string option
(** ["in-progress"], ["completed"] or ["rolled-back"], if a journal
    exists for this plan. *)

val journal_next_phase : t -> plan -> int option
(** The journalled phase cursor: first phase not yet fully applied. *)

val journal_remediation : t -> plan -> string option
(** The remediation event a watchdog breach recorded for this plan, if
    any — kept with the (never-pruned) rolled-back journal as audit. *)

val ops_queue_root : string
(** Root of the admission-queue journal ({!Ops} schema: [opsq/<seq>/plan],
    [opsq/<seq>/state], ...). The journal GC consults it so that a plan
    with a queued-but-not-started submission keeps its journal. *)

val queued_in_ops : t -> string -> bool
(** Whether the admission queue currently holds a [queued] (not yet
    started) entry for this plan name. Such plans are protected from
    {!journal_gc} and defer their [completed_seq] stamp on completion. *)

val set_journal_retention : t -> int -> unit
(** How many completed [journal/<plan>/] subtrees to keep (default 8).
    Older completed journals are pruned by the GC pass that runs after
    every successful deployment. In-progress and rolled-back journals are
    never pruned. *)

val journal_gc : ?retain:int -> t -> int
(** Prunes completed journals beyond the [retain] most recent (default:
    the controller's retention setting), ordered by their completion
    sequence numbers. Returns how many subtrees were pruned. Also runs
    automatically after each successful deployment. *)

val remove : t -> plan -> (report, string list) result
(** Removes the plan's RPAs in the {e reverse} phase order (the
    Section 5.3.2 removal rule), restoring native BGP. Honors the plan's
    health checks like {!deploy}: pre-check failures abort the removal;
    post-check failures are returned as [Error] but the removal is kept
    (re-installing a possibly-broken RPA is worse than paging). *)

val validate_plan : t -> plan -> (unit, string) result
(** Structural validation: phases cover exactly the plan's devices, and
    every device exists in the network. *)
