(* Observability instruments (shared registry; no-ops until enabled). *)
let m_retries = Obs.Metrics.counter "controller.retries"
let h_backoff_ms = Obs.Metrics.histogram "controller.backoff_ms"
let m_rollbacks = Obs.Metrics.counter "controller.rollbacks"
let m_rollback_devices = Obs.Metrics.counter "controller.rollback_devices"
let m_resumes = Obs.Metrics.counter "controller.resumes"
let g_resume_phase = Obs.Metrics.gauge "controller.resume_phase"
let m_journal_writes = Obs.Metrics.counter "controller.journal_writes"
let m_nsdb_write_failures = Obs.Metrics.counter "controller.nsdb_write_failures"
let m_gave_up = Obs.Metrics.counter "controller.gave_up"
let m_fenced_writes = Obs.Metrics.counter "ha.fenced_writes"
let m_status_conflicts = Obs.Metrics.counter "controller.status_conflicts"
let m_journal_pruned = Obs.Metrics.counter "controller.journal_pruned"
let m_watchdog_rollbacks = Obs.Metrics.counter "controller.watchdog_rollbacks"

type plan = {
  plan_name : string;
  rpas : (int * Rpa.t) list;
  phases : int list list;
  pre_checks : Health.check list;
  post_checks : Health.check list;
}

let plan_loc plan =
  plan.rpas
  |> List.map (fun (_, rpa) -> Rpa.config_lines rpa)
  |> List.sort_uniq compare
  |> List.fold_left (fun acc lines -> acc + List.length lines) 0

(* {1 Lint hook}

   The static analyzer lives in lib/analysis, which depends on this
   library; the dependency cycle is broken with a registration hook. When
   the analysis library is linked, its initializer installs the engine
   here and every deployment gets a pre-flight lint pass. *)

type lint_finding = {
  lint_error : bool;
  lint_code : string;
  lint_message : string;
}

type lint_mode = [ `Off | `Warn | `Enforce ]

let linter_ref : (Topology.Graph.t -> plan -> lint_finding list) option ref =
  ref None

let set_linter f = linter_ref := Some f
let linter () = !linter_ref

(* The symbolic phase verifier registers here the same way. It needs the
   network (not just the graph): the destination classes it proves things
   about come from what the speakers actually originate. *)
let verifier_ref : (Bgp.Network.t -> plan -> lint_finding list) option ref =
  ref None

let set_verifier f = verifier_ref := Some f
let verifier () = !verifier_ref

type device_failure = { failed_device : int; attempts : int; last_error : string }

type report = {
  applied : int;
  skipped_in_sync : int;
  unreachable : int list;
  deploy_seconds : float list;
  retries : int;
  backoff_seconds : float list;
  gave_up : device_failure list;
  resumed_from_phase : int option;
}

type outcome =
  | Completed of report
  | Rolled_back of { partial : report; reasons : string list }
  | Crashed of { partial : report; completed_phases : int }
  | Fenced of { partial : report; completed_phases : int }
  | Aborted of string list

type fence_status = Fence_held of int | Fence_lost | Fence_crashed

type retry_policy = {
  max_attempts : int;
  base_backoff_s : float;
  backoff_multiplier : float;
  max_backoff_s : float;
  jitter : float;
  jitter_seed : int;
  failure_budget : int;
}

let default_retry_policy =
  {
    max_attempts = 4;
    base_backoff_s = 0.002;
    backoff_multiplier = 2.0;
    max_backoff_s = 0.05;
    jitter = 0.5;
    jitter_seed = 97;
    failure_budget = 0;
  }

(* The pre-existing single-shot semantics: one attempt per device, no
   failure budget (unreachable devices are reported, not rolled back). *)
let single_shot_policy =
  { default_retry_policy with max_attempts = 1; failure_budget = max_int }

type t = {
  net : Bgp.Network.t;
  switch_agent : Switch_agent.t;
  state_db : Nsdb.Replicated.t;
  nsdb_service : Service.t;
  mutable journal_retain : int;
  (* Audit trail for Invariant.Stale_epoch_write: (virtual time, epoch) of
     every committed fenced NSDB write, most recent first. *)
  mutable epoch_writes : (float * int) list;
}

let create ?seed ?agent ?nsdb net =
  {
    net;
    switch_agent =
      (match agent with
       | Some a -> a
       | None -> Switch_agent.create ?seed net);
    state_db =
      (match nsdb with Some db -> db | None -> Nsdb.Replicated.create ~replicas:2);
    nsdb_service = Service.create ~name:"nsdb" ~role:Service.Storage;
    journal_retain = 8;
    epoch_writes = [];
  }

let set_journal_retention t n = t.journal_retain <- max 0 n
let epoch_writes t = List.rev t.epoch_writes

let network t = t.net
let agent t = t.switch_agent
let nsdb t = t.state_db

let services t = [ t.nsdb_service; Switch_agent.service t.switch_agent ]

let validate_plan t plan =
  let plan_devices = List.sort Int.compare (List.map fst plan.rpas) in
  let phase_devices =
    List.sort Int.compare (Deployment.flatten plan.phases)
  in
  if plan_devices <> phase_devices then
    Error
      (Printf.sprintf "plan %s: phases do not cover exactly the plan devices"
         plan.plan_name)
  else
    match
      List.find_opt
        (fun d -> Topology.Graph.node_opt (Bgp.Network.graph t.net) d = None)
        plan_devices
    with
    | Some d -> Error (Printf.sprintf "plan %s: unknown device %d" plan.plan_name d)
    | None ->
      (match
         List.find_opt
           (fun d -> List.length (List.filter (Int.equal d) plan_devices) > 1)
           plan_devices
       with
       | Some d ->
         Error (Printf.sprintf "plan %s: device %d has multiple RPAs (merge them)"
                  plan.plan_name d)
       | None -> Ok ())

(* Pre-flight lint pass. [`Warn] logs findings; [`Enforce] refuses plans
   with error-severity findings. With no engine registered (binary not
   linked against lib/analysis) the gate is a no-op. *)
let lint_gate ~lint t plan =
  match (lint, !linter_ref) with
  | `Off, _ | _, None -> Ok ()
  | ((`Warn | `Enforce) as mode), Some engine ->
    let findings = engine (Bgp.Network.graph t.net) plan in
    let errors = List.filter (fun f -> f.lint_error) findings in
    (match mode with
     | `Enforce when errors <> [] ->
       Error
         (List.map
            (fun f -> Printf.sprintf "lint %s: %s" f.lint_code f.lint_message)
            errors)
     | _ ->
       List.iter
         (fun f ->
           if f.lint_error then
             Logs.warn (fun m ->
                 m "plan %s: lint %s: %s" plan.plan_name f.lint_code
                   f.lint_message)
           else
             Logs.info (fun m ->
                 m "plan %s: lint %s: %s" plan.plan_name f.lint_code
                   f.lint_message))
         findings;
       Ok ())

(* Pre-flight symbolic verification pass: the phase verifier proves the
   plan loop- and blackhole-free across every phase boundary and mixed
   frontier before anything touches a device. Same contract as the lint
   gate — [`Warn] logs findings, [`Enforce] refuses plans with
   error-severity findings, no registered engine means no-op. *)
let verify_gate ~verify t plan =
  match (verify, !verifier_ref) with
  | `Off, _ | _, None -> Ok ()
  | ((`Warn | `Enforce) as mode), Some engine ->
    let findings = engine t.net plan in
    let errors = List.filter (fun f -> f.lint_error) findings in
    (match mode with
     | `Enforce when errors <> [] ->
       Error
         (List.map
            (fun f -> Printf.sprintf "verify %s: %s" f.lint_code f.lint_message)
            errors)
     | _ ->
       List.iter
         (fun f ->
           if f.lint_error then
             Logs.warn (fun m ->
                 m "plan %s: verify %s: %s" plan.plan_name f.lint_code
                   f.lint_message)
           else
             Logs.info (fun m ->
                 m "plan %s: verify %s: %s" plan.plan_name f.lint_code
                   f.lint_message))
         findings;
       Ok ())

(* {1 Retry machinery} *)

exception Crash_signal
exception Budget_exceeded of int
exception Fenced_signal
exception Watchdog_breach of int * string list

(* Evaluate the fence before every externally-visible mutation. A leader
   that has lost its lease fail-stops right here: no RPC, no NSDB write,
   no intent update gets out under a superseded epoch. *)
let fence_epoch fence =
  match fence with
  | None -> None
  | Some f -> (
    match f () with
    | Fence_held epoch -> Some epoch
    | Fence_lost -> raise Fenced_signal
    | Fence_crashed -> raise Crash_signal)

(* Mutable accumulation across phases, rollback and resume. *)
type progress = {
  mutable p_applied : int;
  mutable p_in_sync : int;
  mutable p_unreachable : int list;  (* reverse *)
  mutable p_retries : int;
  mutable p_backoffs : float list;  (* reverse *)
  mutable p_gave_up : device_failure list;  (* reverse *)
}

let fresh_progress () =
  {
    p_applied = 0;
    p_in_sync = 0;
    p_unreachable = [];
    p_retries = 0;
    p_backoffs = [];
    p_gave_up = [];
  }

let report_of_progress t prog ~resumed_from_phase =
  {
    applied = prog.p_applied;
    skipped_in_sync = prog.p_in_sync;
    unreachable = List.rev prog.p_unreachable;
    deploy_seconds = Switch_agent.deploy_time_samples t.switch_agent;
    retries = prog.p_retries;
    backoff_seconds = List.rev prog.p_backoffs;
    gave_up = List.rev prog.p_gave_up;
    resumed_from_phase;
  }

let check_crash fault =
  match fault with
  | Some f when Dsim.Mgmt_fault.crashed f -> raise Crash_signal
  | Some _ | None -> ()

(* Exponential backoff, capped, with jitter from a dedicated seeded RNG
   stream: identical seeds yield identical retry schedules. The wait is
   spent in {e virtual} time — BGP keeps converging while the controller
   sleeps, which is exactly the fail-static story. *)
let backoff t ~policy ~jrng ~prog ~attempt =
  let base =
    policy.base_backoff_s
    *. (policy.backoff_multiplier ** float_of_int (attempt - 1))
  in
  let capped = Float.min base policy.max_backoff_s in
  let wait = capped +. (capped *. policy.jitter *. Dsim.Rng.float jrng 1.0) in
  prog.p_retries <- prog.p_retries + 1;
  prog.p_backoffs <- wait :: prog.p_backoffs;
  Obs.Metrics.incr m_retries;
  Obs.Metrics.observe h_backoff_ms (wait *. 1000.0);
  ignore (Bgp.Network.run_until t.net ~time:(Bgp.Network.now t.net +. wait))

(* The NSDB side of fencing: the HA layer records the maximum granted
   epoch at ha/epoch; a write stamped below it comes from a deposed leader
   and is rejected before touching any replica. *)
let nsdb_fence_guard t ~epoch =
  match epoch with
  | None -> ()
  | Some e -> (
    match Nsdb.Replicated.get_one t.state_db ~path:"ha/epoch" with
    | Some (Nsdb.Int granted) when e < granted ->
      Obs.Metrics.incr m_fenced_writes;
      raise Fenced_signal
    | Some _ | None -> ())

let record_epoch_write t ~epoch =
  match epoch with
  | None -> ()
  | Some e -> t.epoch_writes <- (Bgp.Network.now t.net, e) :: t.epoch_writes

(* NSDB writes go through the same fate model and retry loop as agent
   RPCs. A write that exhausts its attempts is dropped (and counted): the
   journal may then lag reality, which resume tolerates because re-running
   a phase is a no-op for in-sync devices. *)
let nsdb_set t ~policy ~fault ~fence ~jrng ~prog ~path value =
  let rec attempt n =
    let epoch = fence_epoch fence in
    nsdb_fence_guard t ~epoch;
    let ok =
      match fault with
      | None -> true
      | Some f -> Dsim.Mgmt_fault.nsdb_write_ok f
    in
    if ok then begin
      Service.with_work t.nsdb_service (fun () ->
          Nsdb.Replicated.set t.state_db ~path value);
      record_epoch_write t ~epoch
    end
    else if n >= policy.max_attempts then
      Obs.Metrics.incr m_nsdb_write_failures
    else begin
      backoff t ~policy ~jrng ~prog ~attempt:n;
      attempt (n + 1)
    end
  in
  attempt 1

let record_plan t ~policy ~fault ~fence ~jrng ~prog plan =
  (* The replicated NSDB keeps the fleet-wide intent for audit/consistency. *)
  List.iter
    (fun (device, rpa) ->
      nsdb_set t ~policy ~fault ~fence ~jrng ~prog
        ~path:(Printf.sprintf "plans/%s/devices/%d" plan.plan_name device)
        (Nsdb.Rpa rpa))
    plan.rpas

let clear_plan_record t ~policy ~fault ~fence ~jrng ~prog plan =
  List.iter
    (fun (device, _) ->
      nsdb_set t ~policy ~fault ~fence ~jrng ~prog
        ~path:(Printf.sprintf "plans/%s/devices/%d" plan.plan_name device)
        (Nsdb.Rpa Rpa.empty))
    plan.rpas

(* {1 Deployment journal}

   Persisted to the replicated NSDB so that a controller crashed
   mid-deploy can be replaced by a fresh process that picks the rollout up
   where it stopped. Layout, per plan:

     journal/<plan>/status       String: in-progress | completed | rolled-back
     journal/<plan>/next_phase   Int: first phase not yet fully applied
     journal/<plan>/total_phases Int

   [next_phase] is a phase-granularity cursor: resuming re-runs the phase
   that was in flight, which is safe because reconciliation is
   level-triggered — devices already in sync are no-ops. *)

let journal_path plan what =
  Printf.sprintf "journal/%s/%s" plan.plan_name what

let journal_write t ~policy ~fault ~fence ~jrng ~prog plan what value =
  Obs.Metrics.incr m_journal_writes;
  nsdb_set t ~policy ~fault ~fence ~jrng ~prog ~path:(journal_path plan what)
    value

(* Status transitions go through compare-and-set: the terminal states
   (completed / rolled-back) are only reachable from "in-progress", so two
   controllers racing the same plan cannot both claim the transition — the
   loser observes the conflict instead of silently overwriting. *)
let journal_transition t ~policy ~fault ~fence ~jrng ~prog plan ~expected
    status =
  Obs.Metrics.incr m_journal_writes;
  let rec attempt n =
    let epoch = fence_epoch fence in
    nsdb_fence_guard t ~epoch;
    let ok =
      match fault with
      | None -> true
      | Some f -> Dsim.Mgmt_fault.nsdb_write_ok f
    in
    if ok then begin
      let won =
        Service.with_work t.nsdb_service (fun () ->
            Nsdb.Replicated.compare_and_set t.state_db
              ~path:(journal_path plan "status")
              ~expected:(Some (Nsdb.String expected))
              (Nsdb.String status))
      in
      if won then record_epoch_write t ~epoch
      else Obs.Metrics.incr m_status_conflicts;
      won
    end
    else if n >= policy.max_attempts then begin
      Obs.Metrics.incr m_nsdb_write_failures;
      false
    end
    else begin
      backoff t ~policy ~jrng ~prog ~attempt:n;
      attempt (n + 1)
    end
  in
  attempt 1

let journal_status t plan =
  match Nsdb.Replicated.get_one t.state_db ~path:(journal_path plan "status") with
  | Some (Nsdb.String s) -> Some s
  | Some _ | None -> None

let journal_next_phase t plan =
  match
    Nsdb.Replicated.get_one t.state_db ~path:(journal_path plan "next_phase")
  with
  | Some (Nsdb.Int n) -> Some n
  | Some _ | None -> None

let journal_remediation t plan =
  match
    Nsdb.Replicated.get_one t.state_db ~path:(journal_path plan "remediation")
  with
  | Some (Nsdb.String s) -> Some s
  | Some _ | None -> None

let clear_journal t plan =
  Nsdb.Replicated.delete t.state_db
    ~path:(Printf.sprintf "journal/%s" plan.plan_name)

(* {1 Journal garbage collection}

   Completed journals used to accumulate forever in the replicated NSDB.
   Each completion now stamps a monotonic sequence number (allocated with
   compare-and-set on journal_meta/seq, so concurrent controllers get
   distinct numbers) and GC prunes completed journal/<plan>/ subtrees
   beyond the [retain] most recent — keeping enough history for failover
   tests to inspect while bounding NSDB growth. In-progress and
   rolled-back journals are never pruned: the former is a rollout to
   resume, the latter an audit trail operators asked to keep. *)

(* {2 Admission-queue protection}

   The admission layer (Ops) journals its queue under opsq/<seq>/
   (see ops.mli for the schema). A plan that is queued but not yet
   started must keep whatever journal it already has: pruning it would
   make a post-takeover controller mistake a resumable rollout for a
   fresh one. The GC therefore skips such plans, and completion defers
   the completed_seq stamp (the GC eligibility mark) while a queued
   resubmission exists. *)

let ops_queue_root = "opsq"

let queued_in_ops t name =
  Nsdb.Replicated.get t.state_db ~path:(ops_queue_root ^ "/*/state")
  |> List.exists (fun (path, v) ->
         match (v, String.split_on_char '/' path) with
         | Nsdb.String "queued", [ _; seq; _ ] -> (
           match
             Nsdb.Replicated.get_one t.state_db
               ~path:(Printf.sprintf "%s/%s/plan" ops_queue_root seq)
           with
           | Some (Nsdb.String n) -> String.equal n name
           | Some _ | None -> false)
         | _ -> false)

let next_journal_seq t =
  let path = "journal_meta/seq" in
  let rec claim () =
    let current = Nsdb.Replicated.get_one t.state_db ~path in
    let n = match current with Some (Nsdb.Int n) -> n | Some _ | None -> 0 in
    if
      Nsdb.Replicated.compare_and_set t.state_db ~path ~expected:current
        (Nsdb.Int (n + 1))
    then n + 1
    else claim ()
  in
  claim ()

let journal_gc ?retain t =
  let retain =
    max 0 (match retain with Some r -> r | None -> t.journal_retain)
  in
  let completed =
    Nsdb.Replicated.get t.state_db ~path:"journal/*/status"
    |> List.filter_map (fun (path, v) ->
           match (v, String.split_on_char '/' path) with
           | Nsdb.String "completed", [ "journal"; name; "status" ]
             when not (queued_in_ops t name) ->
             let seq =
               match
                 Nsdb.Replicated.get_one t.state_db
                   ~path:(Printf.sprintf "journal/%s/completed_seq" name)
               with
               | Some (Nsdb.Int n) -> n
               | Some _ | None -> 0
             in
             Some (seq, name)
           | _ -> None)
    |> List.sort compare
  in
  let excess = List.length completed - retain in
  if excess > 0 then
    List.iteri
      (fun i (_, name) ->
        if i < excess then begin
          Nsdb.Replicated.delete t.state_db ~path:("journal/" ^ name);
          Obs.Metrics.incr m_journal_pruned
        end)
      completed;
  max 0 excess

(* {1 The resilient phase runner} *)

(* Reconcile one device, retrying retryable fates with backoff. A device
   that exhausts its attempts while unreachable fails static (recorded,
   not budgeted — its installed RPA keeps running and distributed BGP
   keeps routing); exhausted RPC failures count against the phase's
   failure budget. *)
let reconcile_with_retries t ~policy ~fault ~fence ~jrng ~prog device =
  let give_up ~attempts ~last_error =
    Obs.Metrics.incr m_gave_up;
    prog.p_gave_up <-
      { failed_device = device; attempts; last_error } :: prog.p_gave_up
  in
  let rec go attempt =
    check_crash fault;
    let epoch = fence_epoch fence in
    match Switch_agent.reconcile_device ?epoch t.switch_agent device with
    | `Applied -> prog.p_applied <- prog.p_applied + 1
    | `In_sync -> prog.p_in_sync <- prog.p_in_sync + 1
    | `Unreachable ->
      if attempt < policy.max_attempts then retry attempt
      else prog.p_unreachable <- device :: prog.p_unreachable
    | `Fenced ->
      (* The agent has already accepted a newer epoch: this controller is
         deposed even if its own lease check has not noticed yet. *)
      raise Fenced_signal
    | `Rpc_lost -> retry_or_give_up attempt "rpc lost"
    | `Rpc_timeout -> retry_or_give_up attempt "rpc timeout"
    | `Transient reason -> retry_or_give_up attempt reason
  and retry attempt =
    backoff t ~policy ~jrng ~prog ~attempt;
    go (attempt + 1)
  and retry_or_give_up attempt last_error =
    if attempt < policy.max_attempts then retry attempt
    else give_up ~attempts:attempt ~last_error
  in
  go 1

(* Run phases [from_phase ..]; raises [Crash_signal] on a scheduled
   controller crash and [Budget_exceeded phase] when a phase accumulates
   more hard failures than the budget. [journal_cursor] persists the
   phase cursor after each completed phase. *)
let run_phases_resilient t ~policy ~fault ~fence ~jrng ~prog ~intent_of
    ~phases ~from_phase ~between_phases ~watchdog ~journal_cursor =
  List.iteri
    (fun idx phase ->
      if idx >= from_phase then begin
        let gave_up_before = List.length prog.p_gave_up in
        List.iter
          (fun device ->
            check_crash fault;
            ignore (fence_epoch fence);
            (match intent_of device with
             | Some rpa -> Switch_agent.set_intended t.switch_agent ~device rpa
             | None -> Switch_agent.clear_intended t.switch_agent ~device);
            reconcile_with_retries t ~policy ~fault ~fence ~jrng ~prog device)
          phase;
        (* Let BGP converge before the next phase picks up the RPA
           (Section 5.3.2: every layer must receive the new RPA after all
           their downstream peers have). *)
        ignore (Bgp.Network.converge t.net);
        let phase_failures = List.length prog.p_gave_up - gave_up_before in
        if phase_failures > policy.failure_budget then
          raise (Budget_exceeded idx);
        between_phases idx;
        (* The runtime watchdog samples the converged network against its
           SLO budget at every phase boundary; a breach aborts the rollout
           into the same reverse-order rollback as a blown failure budget. *)
        (match watchdog idx with
         | `Ok -> ()
         | `Breach reasons -> raise (Watchdog_breach (idx, reasons)));
        journal_cursor (idx + 1)
      end)
    phases

(* Reverse-order rollback of the install phases applied so far (last
   phase first, last device first — {!Deployment.rollback_order}), then
   clear the recorded intent so NSDB matches device state. Uses a scratch
   progress: the caller's report describes the deployment, not its
   undoing. *)
let rollback t plan ~policy ~fault ~fence ~jrng ~through_phase =
  Obs.Metrics.incr m_rollbacks;
  let scratch = fresh_progress () in
  let touched =
    List.filteri (fun idx _ -> idx <= through_phase) plan.phases
  in
  List.iter
    (fun phase ->
      List.iter
        (fun device ->
          Switch_agent.clear_intended t.switch_agent ~device;
          reconcile_with_retries t ~policy ~fault ~fence ~jrng ~prog:scratch
            device;
          Obs.Metrics.incr m_rollback_devices)
        phase;
      ignore (Bgp.Network.converge t.net))
    (Deployment.rollback_order touched);
  clear_plan_record t ~policy ~fault ~fence ~jrng ~prog:scratch plan;
  ignore
    (journal_transition t ~policy ~fault ~fence ~jrng ~prog:scratch plan
       ~expected:"in-progress" "rolled-back")

let fmt_failures kind failures =
  List.map (fun (name, e) -> Printf.sprintf "%s %s: %s" kind name e) failures

(* Shared tail of deploy and resume: run phases from [from_phase], handle
   crash/budget/fencing, post-check, roll back on failure. *)
let execute_deploy t plan ~policy ~fault ~fence ~jrng ~prog ~between_phases
    ~watchdog ~from_phase ~resumed_from_phase =
  let intent_of device = List.assoc_opt device plan.rpas in
  let journal_cursor n =
    journal_write t ~policy ~fault ~fence ~jrng ~prog plan "next_phase"
      (Nsdb.Int n)
  in
  let total = List.length plan.phases in
  let interrupted kind =
    (* The controller stops here — crashed, or deposed mid-phase. Devices
       keep whatever RPA they already run (fail static); the journal still
       says "in-progress", so the next leader can {!resume}. *)
    let completed_phases =
      Option.value (journal_next_phase t plan) ~default:from_phase
    in
    let partial = report_of_progress t prog ~resumed_from_phase in
    match kind with
    | `Crash -> Crashed { partial; completed_phases }
    | `Fence -> Fenced { partial; completed_phases }
  in
  try
    match
      run_phases_resilient t ~policy ~fault ~fence ~jrng ~prog ~intent_of
        ~phases:plan.phases ~from_phase ~between_phases ~watchdog
        ~journal_cursor
    with
    | () -> (
      match Health.failures plan.post_checks with
      | [] ->
        if
          journal_transition t ~policy ~fault ~fence ~jrng ~prog plan
            ~expected:"in-progress" "completed"
        then begin
          (* completed_seq is the GC-eligibility stamp. While a queued
             resubmission of this plan exists, defer it: the journal must
             outlive the queue entry so a takeover still sees history. *)
          if not (queued_in_ops t plan.plan_name) then
            journal_write t ~policy ~fault ~fence ~jrng ~prog plan
              "completed_seq"
              (Nsdb.Int (next_journal_seq t));
          ignore (journal_gc t)
        end;
        Completed (report_of_progress t prog ~resumed_from_phase)
      | failures ->
        (* Post-checks failed: undo everything so the recorded intent and
           the device state agree that this plan is not deployed. *)
        rollback t plan ~policy ~fault ~fence ~jrng
          ~through_phase:(total - 1);
        Rolled_back
          {
            partial = report_of_progress t prog ~resumed_from_phase;
            reasons = fmt_failures "post-check" failures;
          })
    | exception Budget_exceeded idx ->
      let reasons =
        Printf.sprintf
          "phase %d exceeded its failure budget (%d failures > budget %d)" idx
          (List.length prog.p_gave_up) policy.failure_budget
        :: List.rev_map
             (fun f ->
               Printf.sprintf "device %d: gave up after %d attempts (%s)"
                 f.failed_device f.attempts f.last_error)
             prog.p_gave_up
      in
      rollback t plan ~policy ~fault ~fence ~jrng ~through_phase:idx;
      Rolled_back
        { partial = report_of_progress t prog ~resumed_from_phase; reasons }
    | exception Watchdog_breach (idx, breach_reasons) ->
      (* Automatic remediation: record the event in the journal first —
         rolled-back journals are never pruned, so the remediation trail
         survives as audit — then run the same reverse-order rollback a
         blown failure budget triggers. *)
      Obs.Metrics.incr m_watchdog_rollbacks;
      journal_write t ~policy ~fault ~fence ~jrng ~prog plan "remediation"
        (Nsdb.String
           (Printf.sprintf "watchdog phase %d: %s" idx
              (String.concat "; " breach_reasons)));
      rollback t plan ~policy ~fault ~fence ~jrng ~through_phase:idx;
      Rolled_back
        {
          partial = report_of_progress t prog ~resumed_from_phase;
          reasons =
            List.map (fun r -> "watchdog: " ^ r) breach_reasons
            @ [ Printf.sprintf "SLO breach at phase %d; auto-rolled-back" idx ];
        }
  with
  | Crash_signal -> interrupted `Crash
  | Fenced_signal -> interrupted `Fence

let deploy_resilient ?(policy = default_retry_policy) ?fault ?fence
    ?(between_phases = fun _ -> ()) ?(watchdog = fun _ -> `Ok) ?(lint = `Warn)
    ?(verify = `Warn) t plan =
  Obs.Span.with_span "controller.deploy"
    ~attrs:(fun () -> [ ("plan", plan.plan_name) ])
  @@ fun () ->
  match validate_plan t plan with
  | Error e -> Aborted [ e ]
  | Ok () ->
    (match lint_gate ~lint t plan with
     | Error reasons -> Aborted reasons
     | Ok () ->
    match verify_gate ~verify t plan with
    | Error reasons -> Aborted reasons
    | Ok () ->
    match Health.failures plan.pre_checks with
     | _ :: _ as failures -> Aborted (fmt_failures "pre-check" failures)
     | [] ->
       let jrng = Dsim.Rng.create policy.jitter_seed in
       let prog = fresh_progress () in
       Switch_agent.clear_deploy_times t.switch_agent;
       match
         record_plan t ~policy ~fault ~fence ~jrng ~prog plan;
         journal_write t ~policy ~fault ~fence ~jrng ~prog plan "status"
           (Nsdb.String "in-progress");
         journal_write t ~policy ~fault ~fence ~jrng ~prog plan
           "total_phases"
           (Nsdb.Int (List.length plan.phases));
         journal_write t ~policy ~fault ~fence ~jrng ~prog plan "next_phase"
           (Nsdb.Int 0)
       with
       | () ->
         execute_deploy t plan ~policy ~fault ~fence ~jrng ~prog
           ~between_phases ~watchdog ~from_phase:0 ~resumed_from_phase:None
       | exception Crash_signal ->
         Crashed
           {
             partial = report_of_progress t prog ~resumed_from_phase:None;
             completed_phases = 0;
           }
       | exception Fenced_signal ->
         Fenced
           {
             partial = report_of_progress t prog ~resumed_from_phase:None;
             completed_phases = 0;
           })

let resume ?(policy = default_retry_policy) ?fault ?fence
    ?(between_phases = fun _ -> ()) ?(watchdog = fun _ -> `Ok) ?(lint = `Warn)
    ?(verify = `Warn) t plan =
  Obs.Span.with_span "controller.resume"
    ~attrs:(fun () -> [ ("plan", plan.plan_name) ])
  @@ fun () ->
  match journal_status t plan with
  | None ->
    Aborted
      [ Printf.sprintf "plan %s: no deployment journal to resume from"
          plan.plan_name ]
  | Some "completed" ->
    (* Nothing in flight; report an empty, already-converged deployment. *)
    Switch_agent.clear_deploy_times t.switch_agent;
    Completed
      (report_of_progress t (fresh_progress ())
         ~resumed_from_phase:(Some (List.length plan.phases)))
  | Some "rolled-back" ->
    Aborted
      [ Printf.sprintf "plan %s: journal says rolled-back; redeploy instead"
          plan.plan_name ]
  | Some _ ->
    (match validate_plan t plan with
     | Error e -> Aborted [ e ]
     | Ok () ->
     match lint_gate ~lint t plan with
     | Error reasons -> Aborted reasons
     | Ok () ->
     match verify_gate ~verify t plan with
     | Error reasons -> Aborted reasons
     | Ok () ->
       let from_phase = Option.value (journal_next_phase t plan) ~default:0 in
       Obs.Metrics.incr m_resumes;
       Obs.Metrics.set_gauge g_resume_phase (float_of_int from_phase);
       let jrng = Dsim.Rng.create policy.jitter_seed in
       let prog = fresh_progress () in
       Switch_agent.clear_deploy_times t.switch_agent;
       (* Re-record the intent: a crashed predecessor may have lost some
          plan-record writes. Idempotent for the ones that landed. *)
       match record_plan t ~policy ~fault ~fence ~jrng ~prog plan with
       | () ->
         execute_deploy t plan ~policy ~fault ~fence ~jrng ~prog
           ~between_phases ~watchdog ~from_phase
           ~resumed_from_phase:(Some from_phase)
       | exception Crash_signal ->
         Crashed
           {
             partial =
               report_of_progress t prog
                 ~resumed_from_phase:(Some from_phase);
             completed_phases = from_phase;
           }
       | exception Fenced_signal ->
         Fenced
           {
             partial =
               report_of_progress t prog
                 ~resumed_from_phase:(Some from_phase);
             completed_phases = from_phase;
           })

let deploy ?(lint = `Warn) ?(verify = `Warn) t plan =
  match deploy_resilient ~policy:single_shot_policy ~lint ~verify t plan with
  | Completed report -> Ok report
  | Rolled_back { reasons; _ } -> Error reasons
  | Aborted reasons -> Error reasons
  | Crashed _ ->
    (* Unreachable without a fault model; kept for exhaustiveness. *)
    Error [ "controller crashed mid-deploy" ]
  | Fenced _ ->
    (* Unreachable without a fence; kept for exhaustiveness. *)
    Error [ "controller fenced mid-deploy" ]

let remove t plan =
  match validate_plan t plan with
  | Error e -> Error [ e ]
  | Ok () ->
    (match Health.failures plan.pre_checks with
     | _ :: _ as failures -> Error (fmt_failures "pre-check" failures)
     | [] ->
       let policy = single_shot_policy in
       let jrng = Dsim.Rng.create policy.jitter_seed in
       let prog = fresh_progress () in
       Switch_agent.clear_deploy_times t.switch_agent;
       (match
          run_phases_resilient t ~policy ~fault:None ~fence:None ~jrng ~prog
            ~intent_of:(fun _ -> None)
            ~phases:(Deployment.rollback_order plan.phases) ~from_phase:0
            ~between_phases:(fun _ -> ())
            ~watchdog:(fun _ -> `Ok)
            ~journal_cursor:(fun _ -> ())
        with
        | () ->
          clear_plan_record t ~policy ~fault:None ~fence:None ~jrng ~prog plan;
          clear_journal t plan;
          let report = report_of_progress t prog ~resumed_from_phase:None in
          (match Health.failures plan.post_checks with
           | [] -> Ok report
           | failures ->
             (* The removal is kept — re-installing a possibly-broken RPA
                is worse than paging; the errors tell operators what to
                look at. *)
             Error (fmt_failures "post-check" failures))
        | exception (Budget_exceeded _ | Crash_signal) ->
          (* Unreachable with the single-shot policy and no fault model;
             kept for exhaustiveness. *)
          Error [ "removal aborted" ]))
