type event =
  | Fib_change of {
      time : float;
      device : int;
      prefix : Net.Prefix.t;
      state : Speaker.fib_state option;
    }
  | Message_sent of {
      time : float;
      src : int;
      dst : int;
      session : int;
      msg : Msg.t;
    }
  | Message_dropped of {
      time : float;
      src : int;
      dst : int;
      session : int;
      msg : Msg.t;
    }
  | Speaker_restarted of { time : float; device : int }
  | Session_event of {
      time : float;
      device : int;
      peer : int;
      session : int;
      event : string;
    }
  | Violation of {
      time : float;
      device : int option;
      prefix : Net.Prefix.t option;
      kind : string;
      detail : string;
    }

(* Events live in an append-friendly growable array; the forward list the
   public API exposes is memoized against the current length so repeated
   [events] calls on an unchanged trace (fib_timeline, the invariant
   monitor, exporters) cost nothing after the first. *)
type t = {
  mutable arr : event array;
  mutable count : int;
  mutable memo : event list;
  mutable memo_count : int;
}

let create () = { arr = [||]; count = 0; memo = []; memo_count = 0 }

let record t event =
  if t.count = Array.length t.arr then begin
    let grown = Array.make (max 64 (2 * Array.length t.arr)) event in
    Array.blit t.arr 0 grown 0 t.count;
    t.arr <- grown
  end;
  t.arr.(t.count) <- event;
  t.count <- t.count + 1

let length t = t.count

let iter t f =
  for i = 0 to t.count - 1 do
    f t.arr.(i)
  done

let events t =
  if t.memo_count <> t.count then begin
    let rec build i acc = if i < 0 then acc else build (i - 1) (t.arr.(i) :: acc) in
    t.memo <- build (t.count - 1) [];
    t.memo_count <- t.count
  end;
  t.memo

let rev_filter_map f t =
  let acc = ref [] in
  iter t (fun e -> match f e with Some x -> acc := x :: !acc | None -> ());
  List.rev !acc

let fib_changes t =
  rev_filter_map
    (function
      | Fib_change { time; device; prefix; state } ->
        Some (time, device, prefix, state)
      | Message_sent _ | Message_dropped _ | Speaker_restarted _
      | Session_event _ | Violation _ ->
        None)
    t

let count p t =
  let n = ref 0 in
  iter t (fun e -> if p e then incr n);
  !n

let messages_sent t =
  count (function Message_sent _ -> true | _ -> false) t

let messages_dropped t =
  count (function Message_dropped _ -> true | _ -> false) t

let fib_change_count t =
  count (function Fib_change _ -> true | _ -> false) t

let violations t =
  rev_filter_map
    (function
      | Violation { time; device; prefix; kind; detail } ->
        Some (time, device, prefix, kind, detail)
      | Fib_change _ | Message_sent _ | Message_dropped _ | Speaker_restarted _
      | Session_event _ ->
        None)
    t

let violation_count t = count (function Violation _ -> true | _ -> false) t

let clear t =
  t.arr <- [||];
  t.count <- 0;
  t.memo <- [];
  t.memo_count <- 0

let fib_timeline t ~prefix ~initial =
  let current = Hashtbl.create 16 in
  List.iter (fun (device, state) -> Hashtbl.replace current device state) initial;
  let snapshot () = Hashtbl.copy current in
  let relevant =
    rev_filter_map
      (function
        | Fib_change { time; device; prefix = p; state }
          when Net.Prefix.equal p prefix ->
          Some (time, device, state)
        | Fib_change _ | Message_sent _ | Message_dropped _
        | Speaker_restarted _ | Session_event _ | Violation _ ->
          None)
      t
  in
  (* Group consecutive changes at the same instant into one snapshot. *)
  let rec go acc = function
    | [] -> List.rev acc
    | (time, device, state) :: rest ->
      (match state with
       | Some s -> Hashtbl.replace current device s
       | None -> Hashtbl.remove current device);
      (match rest with
       | (t2, _, _) :: _ when t2 = time -> go acc rest
       | _ :: _ | [] -> go ((time, snapshot ()) :: acc) rest)
  in
  go [] relevant

(* ---------------- JSON export ---------------- *)

let attr_to_json (attr : Net.Attr.t) =
  let base =
    [
      ("origin", Obs.Json.String (Net.Attr.origin_to_string attr.Net.Attr.origin));
      ("as_path", Obs.Json.String (Net.As_path.to_string attr.Net.Attr.as_path));
      ("local_pref", Obs.Json.Int attr.Net.Attr.local_pref);
      ("med", Obs.Json.Int attr.Net.Attr.med);
      ("communities",
       Obs.Json.List
         (List.map
            (fun c -> Obs.Json.String (Net.Community.to_string c))
            (Net.Community.Set.elements attr.Net.Attr.communities)));
    ]
  in
  let lb =
    match attr.Net.Attr.link_bandwidth with
    | Some w -> [ ("link_bandwidth", Obs.Json.Int w) ]
    | None -> []
  in
  Obs.Json.Obj (base @ lb)

let msg_to_json = function
  | Msg.Update { prefix; attr } ->
    Obs.Json.Obj
      [
        ("kind", Obs.Json.String "update");
        ("prefix", Obs.Json.String (Net.Prefix.to_string prefix));
        ("attr", attr_to_json attr);
      ]
  | Msg.Withdraw { prefix } ->
    Obs.Json.Obj
      [
        ("kind", Obs.Json.String "withdraw");
        ("prefix", Obs.Json.String (Net.Prefix.to_string prefix));
      ]
  | Msg.Keepalive -> Obs.Json.Obj [ ("kind", Obs.Json.String "keepalive") ]
  | Msg.Eor -> Obs.Json.Obj [ ("kind", Obs.Json.String "eor") ]

let fib_state_to_json = function
  | None -> Obs.Json.Null
  | Some Speaker.Local -> Obs.Json.String "local"
  | Some (Speaker.Entries entries) ->
    Obs.Json.List
      (List.map
         (fun (e : Speaker.entry) ->
           Obs.Json.Obj
             [
               ("next_hop", Obs.Json.Int e.Speaker.next_hop);
               ("session", Obs.Json.Int e.Speaker.session);
               ("weight", Obs.Json.Int e.Speaker.weight);
             ])
         entries)

let opt_int = function Some i -> Obs.Json.Int i | None -> Obs.Json.Null

let opt_prefix = function
  | Some p -> Obs.Json.String (Net.Prefix.to_string p)
  | None -> Obs.Json.Null

let event_to_json = function
  | Fib_change { time; device; prefix; state } ->
    Obs.Json.Obj
      [
        ("type", Obs.Json.String "fib_change");
        ("time", Obs.Json.Float time);
        ("device", Obs.Json.Int device);
        ("prefix", Obs.Json.String (Net.Prefix.to_string prefix));
        ("state", fib_state_to_json state);
      ]
  | Message_sent { time; src; dst; session; msg } ->
    Obs.Json.Obj
      [
        ("type", Obs.Json.String "message_sent");
        ("time", Obs.Json.Float time);
        ("src", Obs.Json.Int src);
        ("dst", Obs.Json.Int dst);
        ("session", Obs.Json.Int session);
        ("msg", msg_to_json msg);
      ]
  | Message_dropped { time; src; dst; session; msg } ->
    Obs.Json.Obj
      [
        ("type", Obs.Json.String "message_dropped");
        ("time", Obs.Json.Float time);
        ("src", Obs.Json.Int src);
        ("dst", Obs.Json.Int dst);
        ("session", Obs.Json.Int session);
        ("msg", msg_to_json msg);
      ]
  | Speaker_restarted { time; device } ->
    Obs.Json.Obj
      [
        ("type", Obs.Json.String "speaker_restarted");
        ("time", Obs.Json.Float time);
        ("device", Obs.Json.Int device);
      ]
  | Session_event { time; device; peer; session; event } ->
    Obs.Json.Obj
      [
        ("type", Obs.Json.String "session_event");
        ("time", Obs.Json.Float time);
        ("device", Obs.Json.Int device);
        ("peer", Obs.Json.Int peer);
        ("session", Obs.Json.Int session);
        ("event", Obs.Json.String event);
      ]
  | Violation { time; device; prefix; kind; detail } ->
    Obs.Json.Obj
      [
        ("type", Obs.Json.String "violation");
        ("time", Obs.Json.Float time);
        ("device", opt_int device);
        ("prefix", opt_prefix prefix);
        ("kind", Obs.Json.String kind);
        ("detail", Obs.Json.String detail);
      ]
