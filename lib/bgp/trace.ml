type event =
  | Fib_change of {
      time : float;
      device : int;
      prefix : Net.Prefix.t;
      state : Speaker.fib_state option;
    }
  | Message_sent of {
      time : float;
      src : int;
      dst : int;
      session : int;
      msg : Msg.t;
    }
  | Message_dropped of {
      time : float;
      src : int;
      dst : int;
      session : int;
      msg : Msg.t;
    }
  | Speaker_restarted of { time : float; device : int }
  | Violation of {
      time : float;
      device : int option;
      prefix : Net.Prefix.t option;
      kind : string;
      detail : string;
    }

type t = { mutable rev_events : event list; mutable count : int }

let create () = { rev_events = []; count = 0 }

let record t event =
  t.rev_events <- event :: t.rev_events;
  t.count <- t.count + 1

let events t = List.rev t.rev_events

let fib_changes t =
  List.filter_map
    (function
      | Fib_change { time; device; prefix; state } ->
        Some (time, device, prefix, state)
      | Message_sent _ | Message_dropped _ | Speaker_restarted _ | Violation _
        ->
        None)
    (events t)

let count p t = List.length (List.filter p t.rev_events)

let messages_sent t =
  count (function Message_sent _ -> true | _ -> false) t

let messages_dropped t =
  count (function Message_dropped _ -> true | _ -> false) t

let fib_change_count t =
  count (function Fib_change _ -> true | _ -> false) t

let violations t =
  List.filter_map
    (function
      | Violation { time; device; prefix; kind; detail } ->
        Some (time, device, prefix, kind, detail)
      | Fib_change _ | Message_sent _ | Message_dropped _ | Speaker_restarted _
        ->
        None)
    (events t)

let violation_count t = count (function Violation _ -> true | _ -> false) t

let clear t =
  t.rev_events <- [];
  t.count <- 0

let fib_timeline t ~prefix ~initial =
  let current = Hashtbl.create 16 in
  List.iter (fun (device, state) -> Hashtbl.replace current device state) initial;
  let snapshot () = Hashtbl.copy current in
  let relevant =
    List.filter_map
      (function
        | Fib_change { time; device; prefix = p; state }
          when Net.Prefix.equal p prefix ->
          Some (time, device, state)
        | Fib_change _ | Message_sent _ | Message_dropped _
        | Speaker_restarted _ | Violation _ ->
          None)
      (events t)
  in
  (* Group consecutive changes at the same instant into one snapshot. *)
  let rec go acc = function
    | [] -> List.rev acc
    | (time, device, state) :: rest ->
      (match state with
       | Some s -> Hashtbl.replace current device s
       | None -> Hashtbl.remove current device);
      (match rest with
       | (t2, _, _) :: _ when t2 = time -> go acc rest
       | _ :: _ | [] -> go ((time, snapshot ()) :: acc) rest)
  in
  go [] relevant
