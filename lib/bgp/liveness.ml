type config = {
  keepalive_interval : float;
  hold_time : float;
  reconnect_interval : float;
  graceful_restart : bool;
  stale_path_time : float;
}

let default =
  {
    keepalive_interval = 0.002;
    hold_time = 0.006;
    reconnect_interval = 0.008;
    graceful_restart = false;
    stale_path_time = 0.05;
  }

let with_gr ?stale_path_time config =
  let stale_path_time =
    match stale_path_time with Some t -> t | None -> config.stale_path_time
  in
  { config with graceful_restart = true; stale_path_time }

let pp ppf c =
  Format.fprintf ppf
    "keepalive=%.4fs hold=%.4fs reconnect=%.4fs gr=%b stale-path=%.4fs"
    c.keepalive_interval c.hold_time c.reconnect_interval c.graceful_restart
    c.stale_path_time
