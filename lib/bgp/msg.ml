type t =
  | Update of { prefix : Net.Prefix.t; attr : Net.Attr.t }
  | Withdraw of { prefix : Net.Prefix.t }
  | Keepalive
  | Eor

let prefix = function
  | Update { prefix; _ } | Withdraw { prefix } -> Some prefix
  | Keepalive | Eor -> None

let kind_label = function
  | Update _ -> "update"
  | Withdraw _ -> "withdraw"
  | Keepalive -> "keepalive"
  | Eor -> "eor"

let pp ppf = function
  | Update { prefix; attr } ->
    Format.fprintf ppf "UPDATE %a %a" Net.Prefix.pp prefix Net.Attr.pp attr
  | Withdraw { prefix } -> Format.fprintf ppf "WITHDRAW %a" Net.Prefix.pp prefix
  | Keepalive -> Format.fprintf ppf "KEEPALIVE"
  | Eor -> Format.fprintf ppf "EOR"
