(* Observability instruments (shared registry; no-ops until enabled). *)
let m_messages_sent = Obs.Metrics.counter "bgp.messages.sent"
let m_messages_dropped = Obs.Metrics.counter "bgp.messages.dropped"
let m_fib_changes = Obs.Metrics.counter "bgp.fib.changes"
let m_restarts = Obs.Metrics.counter "bgp.speaker.restarts"
let m_converge_events = Obs.Metrics.counter "bgp.converge.events"
let m_keepalives = Obs.Metrics.counter "bgp.keepalives.sent"
let m_hold_expiries = Obs.Metrics.counter "bgp.session.hold_expiries"
let m_reconnects = Obs.Metrics.counter "bgp.session.reconnects"

type latency_model = Dsim.Rng.t -> float

let default_latency rng = 0.0001 +. Dsim.Rng.exponential rng ~mean:0.001

(* Causal-trace helpers. Keepalives prove liveness but never carry routes,
   so they are not causally recorded (hold expiry shows up as its own
   Session root event instead). *)
let causal_msg = function
  | Msg.Keepalive -> false
  | Msg.Update _ | Msg.Withdraw _ | Msg.Eor -> true

let msg_pid msg =
  match Msg.prefix msg with
  | Some p -> Net.Intern.Prefix_id.id p
  | None -> -1

type t = {
  topo : Topology.Graph.t;
  event_queue : Dsim.Event_queue.t;
  rng : Dsim.Rng.t;
  latency : latency_model;
  speakers : (int, Speaker.t) Hashtbl.t;
  (* (src, dst, session) -> last scheduled delivery time, for FIFO order *)
  channels : (int * int * int, float ref) Hashtbl.t;
  (* (min end, max end, session) -> incarnation of the underlying transport
     connection. A session going down at either end kills the connection,
     and with it every message still in flight — in both directions. *)
  epochs : (int * int * int, int) Hashtbl.t;
  trace_log : Trace.t;
  mutable fault : Dsim.Fault.t option;
  (* Session liveness (keepalive/hold/reconnect timers), opt-in via
     [enable_liveness]. [None] preserves the legacy behaviour exactly:
     sessions have no liveness detection and silent transport loss goes
     unnoticed. *)
  mutable liveness : Liveness.config option;
  mutable liveness_until : float;
  (* (device, peer, session) -> last time the device heard anything —
     keepalive or routing message — from the peer over the session. *)
  last_heard : (int * int * int, float) Hashtbl.t;
  (* Per-instant advertisement batching, opt-in via [set_advert_batching]:
     outboxes produced at one simulation instant are coalesced — last
     message wins per (src, dst, session, prefix) — and sent in one flush
     at the end of the instant, instead of one wire message per transition.
     Changes message count (and hence the fault model's draw stream), never
     converged state: the survivor of each coalesced chain is exactly the
     message whose content the receiver would have ended the instant with. *)
  mutable batching : bool;
  (* (src, dst, session, msg, causal cause id) — the cause is captured at
     enqueue time so causality survives the end-of-instant flush. *)
  pending : (int * int * int * Msg.t * int) Queue.t;
  mutable flush_scheduled : bool;
}

let graph t = t.topo
let queue t = t.event_queue
let trace t = t.trace_log
let now t = Dsim.Event_queue.now t.event_queue

let speaker t device =
  match Hashtbl.find_opt t.speakers device with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Network.speaker: unknown device %d" device)

let env t : Speaker.env =
  {
    Speaker.now = now t;
    peer_layer =
      (fun peer ->
        Option.map
          (fun n -> n.Topology.Node.layer)
          (Topology.Graph.node_opt t.topo peer));
  }

let create ?(seed = 42) ?(config = Speaker.default_config)
    ?(latency = default_latency) topo =
  let t =
    {
      topo;
      event_queue = Dsim.Event_queue.create ();
      rng = Dsim.Rng.create seed;
      latency;
      speakers = Hashtbl.create 64;
      channels = Hashtbl.create 256;
      epochs = Hashtbl.create 256;
      trace_log = Trace.create ();
      fault = None;
      liveness = None;
      liveness_until = 0.0;
      last_heard = Hashtbl.create 256;
      batching = false;
      pending = Queue.create ();
      flush_scheduled = false;
    }
  in
  List.iter
    (fun node ->
      Hashtbl.replace t.speakers node.Topology.Node.id
        (Speaker.create ~config node))
    (Topology.Graph.nodes topo);
  List.iter
    (fun (link : Topology.Graph.link) ->
      let sa = speaker t link.a and sb = speaker t link.b in
      Speaker.add_peer sa ~peer:link.b ~sessions:link.sessions;
      Speaker.add_peer sb ~peer:link.a ~sessions:link.sessions)
    (Topology.Graph.links topo);
  (* Spans recorded while this network runs are stamped with its virtual
     clock (a no-op unless a span recorder is installed). *)
  Obs.Span.set_sim_clock (fun () -> Dsim.Event_queue.now t.event_queue);
  (* The causal cursor must not leak across queue events: a hold-timer
     firing right after a delivery is not caused by that delivery. The
     hook is one option match per event when tracing is off. *)
  Dsim.Event_queue.set_on_step t.event_queue (Some Obs.Causal.new_turn);
  t

(* ---------------- FIB tracking ---------------- *)

let fib_assoc speaker = Speaker.fib speaker

let record_fib_diff t device before after =
  let time = now t in
  let find prefix l =
    Option.map snd (List.find_opt (fun (p, _) -> Net.Prefix.equal p prefix) l)
  in
  let change prefix state =
    Obs.Metrics.incr m_fib_changes;
    if Obs.Causal.on () then
      ignore
        (Obs.Causal.fib ~time ~device
           ~prefix:(Net.Intern.Prefix_id.id prefix)
           ~note:(match state with None -> "remove" | Some _ -> "install"));
    Trace.record t.trace_log (Trace.Fib_change { time; device; prefix; state })
  in
  (* Removed or changed entries. Typed comparison: polymorphic [<>] on
     attribute-bearing state would walk (or miscompare) interned values. *)
  List.iter
    (fun (prefix, state_before) ->
      match find prefix after with
      | None -> change prefix None
      | Some state_after ->
        if not (Speaker.fib_state_equal state_after state_before) then
          change prefix (Some state_after))
    before;
  (* New entries. *)
  List.iter
    (fun (prefix, state_after) ->
      if Option.is_none (find prefix before) then change prefix (Some state_after))
    after

(* ---------------- Message dispatch ---------------- *)

let channel t key =
  match Hashtbl.find_opt t.channels key with
  | Some r -> r
  | None ->
    let r = ref 0.0 in
    Hashtbl.replace t.channels key r;
    r

let session_alive t src dst =
  match Topology.Graph.find_link t.topo src dst with
  | Some link -> link.Topology.Graph.up
  | None -> false

(* The transport connection is shared by both directions of a session. *)
let conn_key a b session = if a < b then (a, b, session) else (b, a, session)

let connection_epoch t a b session =
  Option.value (Hashtbl.find_opt t.epochs (conn_key a b session)) ~default:0

(* Invalidates every message currently in flight on the session, both
   directions: the TCP connection died with the session. A delayed message
   dispatched into the old connection must not be delivered into a
   re-established one — it would resurrect state the sender has since
   withdrawn, with no correction ever coming. *)
let close_connection t a b session =
  Hashtbl.replace t.epochs (conn_key a b session)
    (connection_epoch t a b session + 1)

let rec send_one ?(cause = -1) t src (dst, session, msg) =
  Obs.Metrics.incr m_messages_sent;
      Trace.record t.trace_log
        (Trace.Message_sent { time = now t; src; dst; session; msg });
      (* The base latency is drawn before consulting the fault model so the
         latency stream is identical with and without faults installed —
         only the fault model's own RNG differs between the two runs. *)
      let delay = t.latency t.rng in
      let fate =
        match t.fault with
        | None -> Dsim.Fault.pass
        | Some f -> Dsim.Fault.fate f
      in
      (* [cause] is the causal context carried through the batching queue;
         outside batching the ambient cursor is the context. *)
      let parent_hint = if cause >= 0 then cause else Obs.Causal.cause () in
      if fate.Dsim.Fault.dropped then begin
        Obs.Metrics.incr m_messages_dropped;
        (if Obs.Causal.on () && causal_msg msg then
           ignore
             (Obs.Causal.drop_at_send ~time:(now t) ~src ~dst ~session
                ~prefix:(msg_pid msg) ~note:(Msg.kind_label msg) ~parent_hint));
        Trace.record t.trace_log
          (Trace.Message_dropped { time = now t; src; dst; session; msg })
      end
      else begin
        let arrival = now t +. delay +. fate.Dsim.Fault.extra_delay in
        let chan = channel t (src, dst, session) in
        let delivery =
          if fate.Dsim.Fault.reorder then
            (* Allowed to overtake earlier in-flight messages. *)
            arrival
          else Float.max arrival (!chan +. 1e-9) (* FIFO within a session *)
        in
        chan := Float.max !chan delivery;
        let cid =
          if Obs.Causal.on () && causal_msg msg then
            Obs.Causal.send ~time:(now t) ~src ~dst ~session
              ~prefix:(msg_pid msg) ~note:(Msg.kind_label msg) ~parent_hint
              ~d_prop:delay ~d_fault:fate.Dsim.Fault.extra_delay
              ~d_queue:(delivery -. arrival)
          else -1
        in
        let epoch = connection_epoch t src dst session in
        Dsim.Event_queue.schedule_at t.event_queue ~time:delivery (fun () ->
            (* Lost with its connection if the session dropped in between —
               even if it has since been re-established. *)
            if connection_epoch t src dst session = epoch then
              deliver t ~src ~dst ~session ~cause:cid msg
            else if cid >= 0 then
              ignore
                (Obs.Causal.drop_in_flight ~time:(now t) ~device:dst ~peer:src
                   ~session ~prefix:(msg_pid msg) ~note:"conn-closed"
                   ~parent:cid))
      end

(* End-of-instant flush: coalesce the instant's pending messages so each
   (src, dst, session, prefix) carries only its final content — earlier
   same-instant messages were already superseded before they could be sent.
   Keepalive and End-of-RIB markers are never coalesced. The survivor keeps
   its position (that of the last occurrence), so ordering relative to Eor
   markers is preserved. *)
and flush_pending t () =
  t.flush_scheduled <- false;
  let msgs = List.rev (Queue.fold (fun acc m -> m :: acc) [] t.pending) in
  Queue.clear t.pending;
  let seen = Hashtbl.create 16 in
  let coalesced =
    List.rev msgs
    |> List.filter (fun (src, dst, session, msg, _cause) ->
           match msg with
           | Msg.Keepalive | Msg.Eor -> true
           | Msg.Update { prefix; _ } | Msg.Withdraw { prefix } ->
             let key = (src, dst, session, Net.Intern.Prefix_id.id prefix) in
             if Hashtbl.mem seen key then false
             else begin
               Hashtbl.replace seen key ();
               true
             end)
    |> List.rev
  in
  List.iter
    (fun (src, dst, session, msg, cause) ->
      send_one ~cause t src (dst, session, msg))
    coalesced

and dispatch t src (outbox : Speaker.outbox) =
  if t.batching then
    List.iter
      (fun (dst, session, msg) ->
        let cause = if Obs.Causal.on () then Obs.Causal.cause () else -1 in
        Queue.add (src, dst, session, msg, cause) t.pending;
        if not t.flush_scheduled then begin
          t.flush_scheduled <- true;
          (* A zero-delay event runs after everything already queued at this
             instant — i.e. at the end of the instant's causal cascade. *)
          Dsim.Event_queue.schedule t.event_queue ~delay:0.0 (flush_pending t)
        end)
      outbox
  else List.iter (send_one t src) outbox

and deliver t ~src ~dst ~session ~cause msg =
  let causal_drop note =
    if Obs.Causal.on () && causal_msg msg then
      ignore
        (Obs.Causal.drop_in_flight ~time:(now t) ~device:dst ~peer:src
           ~session ~prefix:(msg_pid msg) ~note ~parent:cause)
  in
  (* A message in flight when the session goes down is lost. *)
  if session_alive t src dst then begin
    let sp = speaker t dst in
    if Speaker.session_up sp ~peer:src ~session then begin
      (* Anything heard from the peer proves the transport alive. *)
      if t.liveness <> None then
        Hashtbl.replace t.last_heard (dst, src, session) (now t);
      match msg with
      | Msg.Keepalive -> () (* liveness proof only; no RIB work *)
      | Msg.Update _ | Msg.Withdraw _ | Msg.Eor ->
        (if Obs.Causal.on () then
           ignore
             (Obs.Causal.recv ~time:(now t) ~device:dst ~peer:src ~session
                ~prefix:(msg_pid msg) ~note:(Msg.kind_label msg) ~parent:cause));
        let before = fib_assoc sp in
        let outbox = Speaker.receive sp (env t) ~peer:src ~session msg in
        record_fib_diff t dst before (fib_assoc sp);
        dispatch t dst outbox
    end
    else causal_drop "session-down"
  end
  else causal_drop "link-down"

(* Runs [f] on the speaker, records FIB changes, dispatches messages. *)
let transition t device f =
  let sp = speaker t device in
  let before = fib_assoc sp in
  let outbox = f sp (env t) in
  record_fib_diff t device before (fib_assoc sp);
  dispatch t device outbox

let schedule ?(delay = 0.0) t f =
  Dsim.Event_queue.schedule t.event_queue ~delay f

let set_advert_batching t enabled =
  t.batching <- enabled;
  (* Disabling must not strand queued messages: flush them synchronously. *)
  if (not enabled) && not (Queue.is_empty t.pending) then flush_pending t ()

let advert_batching t = t.batching

let set_eval_mode t mode =
  Hashtbl.iter (fun _ sp -> Speaker.set_eval_mode sp mode) t.speakers

(* ---------------- Session liveness ---------------- *)

let liveness t = t.liveness

let heard t device ~peer ~session =
  Hashtbl.replace t.last_heard (device, peer, session) (now t)

let record_session_event t device ~peer ~session event =
  Trace.record t.trace_log
    (Trace.Session_event { time = now t; device; peer; session; event })

(* Takes the session down at [device] with graceful-restart semantics when
   enabled (routes marked stale, sweep bounded by the stale-path timer)
   and a hard flush otherwise. *)
let session_loss t device ~peer ~session ~reason =
  close_connection t device peer session;
  (* The Session event parents whatever context caused the loss (restart,
     bounce, hold expiry = root) and becomes the cause of the flush /
     stale marks — and, under GR, of the sweep its timer fires later. *)
  let sev =
    if Obs.Causal.on () then
      Obs.Causal.session_event ~time:(now t) ~device ~peer ~session
        ~note:reason ~parent:(Obs.Causal.cause ())
    else -1
  in
  (match t.liveness with
   | Some c when c.Liveness.graceful_restart ->
     record_session_event t device ~peer ~session reason;
     let marked_at = now t in
     transition t device (fun sp env ->
         Speaker.set_session ~stale:true sp env ~peer ~session ~up:false);
     (* Stale-path timer: bound retention of exactly the marks made now —
        routes re-marked by a later loss get their own timer. *)
     Dsim.Event_queue.schedule t.event_queue
       ~delay:c.Liveness.stale_path_time (fun () ->
         let sp = speaker t device in
         let pending =
           List.exists
             (fun (_, p, s, m) -> p = peer && s = session && m <= marked_at)
             (Speaker.stale_routes sp)
         in
         if pending then begin
           record_session_event t device ~peer ~session "stale-swept";
           (if Obs.Causal.on () then
              ignore
                (Obs.Causal.sweep ~time:(now t) ~device ~peer ~session
                   ~note:"stale-swept" ~parent:sev));
           transition t device (fun sp env ->
               Speaker.sweep_stale sp env ~peer ~session ~before:marked_at)
         end)
   | Some _ ->
     record_session_event t device ~peer ~session reason;
     transition t device (fun sp env ->
         Speaker.set_session sp env ~peer ~session ~up:false)
   | None ->
     transition t device (fun sp env ->
         Speaker.set_session sp env ~peer ~session ~up:false))

(* Re-establishes one session from scratch on both ends: any end still up is
   bounced down first (marking stale under graceful restart) so that both
   directions replay the full-table resend (+ End-of-RIB under GR). A
   one-sided re-up would leave the fresh end believing its Adj-RIB-Out is
   current while the other end holds nothing. *)
let bounce_session t a b session =
  Obs.Metrics.incr m_reconnects;
  record_session_event t a ~peer:b ~session "reconnected";
  (* A root event: bounces come from timers or heal actions, not from
     route propagation. Re-set as the cause before each per-end step so
     sibling session_loss calls don't chain to each other. *)
  let bev =
    if Obs.Causal.on () then
      Obs.Causal.session_event ~time:(now t) ~device:a ~peer:b ~session
        ~note:"reconnected" ~parent:(-1)
    else -1
  in
  List.iter
    (fun (d, p) ->
      if Speaker.session_up (speaker t d) ~peer:p ~session then begin
        Obs.Causal.set_cause bev;
        session_loss t d ~peer:p ~session ~reason:"bounced"
      end)
    [ (a, b); (b, a) ];
  List.iter
    (fun (d, p) ->
      Obs.Causal.set_cause bev;
      transition t d (fun sp env -> Speaker.set_session sp env ~peer:p ~session ~up:true);
      if t.liveness <> None then heard t d ~peer:p ~session)
    [ (a, b); (b, a) ]

let reestablish_sessions ?(all = false) ?delay t =
  schedule ?delay t (fun () ->
      List.iter
        (fun (link : Topology.Graph.link) ->
          if link.Topology.Graph.up then
            for session = 0 to link.Topology.Graph.sessions - 1 do
              let a_up =
                Speaker.session_up (speaker t link.a) ~peer:link.b ~session
              and b_up =
                Speaker.session_up (speaker t link.b) ~peer:link.a ~session
              in
              (* [all] also bounces sessions that are nominally up: a session
                 blinded by message loss (divergent RIBs, hold timer never
                 fired) can only be repaired by a full resync. *)
              if all || not (a_up && b_up) then
                bounce_session t link.a link.b session
            done)
        (Topology.Graph.links t.topo))

let enable_liveness ?(config = Liveness.default) ~until t =
  t.liveness <- Some config;
  t.liveness_until <- until;
  if config.Liveness.graceful_restart then
    Hashtbl.iter (fun _ sp -> Speaker.set_graceful_restart sp true) t.speakers;
  let start = now t in
  let links = Topology.Graph.links t.topo in
  (* Everyone has just been heard: the hold clock starts now. *)
  List.iter
    (fun (link : Topology.Graph.link) ->
      for session = 0 to link.Topology.Graph.sessions - 1 do
        Hashtbl.replace t.last_heard (link.a, link.b, session) start;
        Hashtbl.replace t.last_heard (link.b, link.a, session) start
      done)
    links;
  let reschedule time f =
    if time <= t.liveness_until then
      Dsim.Event_queue.schedule_at t.event_queue ~time f
  in
  (* One keepalive loop per session direction. Keepalives are ordinary
     messages: they share the session's FIFO channel and are subject to the
     installed fault model, which is precisely what lets hold timers detect
     silent transport loss. *)
  let rec keepalive_loop src dst session () =
    (if session_alive t src dst
     && Speaker.session_up (speaker t src) ~peer:dst ~session
    then begin
      Obs.Metrics.incr m_keepalives;
      dispatch t src [ (dst, session, Msg.Keepalive) ]
    end);
    reschedule (now t +. config.Liveness.keepalive_interval)
      (keepalive_loop src dst session)
  in
  (* One hold-check loop per session direction (receiver side). *)
  let rec hold_loop device peer session () =
    (if session_alive t device peer
     && Speaker.session_up (speaker t device) ~peer ~session
    then
      let last =
        Option.value
          (Hashtbl.find_opt t.last_heard (device, peer, session))
          ~default:start
      in
      if now t -. last > config.Liveness.hold_time then begin
        Obs.Metrics.incr m_hold_expiries;
        session_loss t device ~peer ~session ~reason:"hold-expired"
      end);
    reschedule (now t +. config.Liveness.keepalive_interval)
      (hold_loop device peer session)
  in
  (* One reconnect loop per link and session: torn-down sessions over a
     healthy link are periodically re-established. *)
  let rec reconnect_loop a b session () =
    (if session_alive t a b then
       let a_up = Speaker.session_up (speaker t a) ~peer:b ~session
       and b_up = Speaker.session_up (speaker t b) ~peer:a ~session in
       if not (a_up && b_up) then bounce_session t a b session);
    reschedule (now t +. config.Liveness.reconnect_interval)
      (reconnect_loop a b session)
  in
  List.iter
    (fun (link : Topology.Graph.link) ->
      for session = 0 to link.Topology.Graph.sessions - 1 do
        reschedule
          (start +. config.Liveness.keepalive_interval)
          (keepalive_loop link.a link.b session);
        reschedule
          (start +. config.Liveness.keepalive_interval)
          (keepalive_loop link.b link.a session);
        reschedule
          (start +. config.Liveness.keepalive_interval)
          (hold_loop link.a link.b session);
        reschedule
          (start +. config.Liveness.keepalive_interval)
          (hold_loop link.b link.a session);
        reschedule
          (start +. config.Liveness.reconnect_interval)
          (reconnect_loop link.a link.b session)
      done)
    links

(* ---------------- Scheduled operations ---------------- *)

let originate ?delay t device prefix attr =
  schedule ?delay t (fun () ->
      (if Obs.Causal.on () then
         ignore
           (Obs.Causal.origin ~time:(now t) ~device
              ~prefix:(Net.Intern.Prefix_id.id prefix) ~withdraw:false));
      transition t device (fun sp env -> Speaker.originate sp env prefix attr))

let withdraw_origin ?delay t device prefix =
  schedule ?delay t (fun () ->
      (if Obs.Causal.on () then
         ignore
           (Obs.Causal.origin ~time:(now t) ~device
              ~prefix:(Net.Intern.Prefix_id.id prefix) ~withdraw:true));
      transition t device (fun sp env -> Speaker.withdraw_origin sp env prefix))

let set_link ?delay t a b ~up =
  schedule ?delay t (fun () ->
      match Topology.Graph.find_link t.topo a b with
      | None -> invalid_arg (Printf.sprintf "Network.set_link: no link %d-%d" a b)
      | Some link ->
        if link.Topology.Graph.up <> up then begin
          (if Obs.Causal.on () then
             ignore
               (Obs.Causal.config ~time:(now t) ~device:a ~peer:b
                  ~note:(if up then "link-up" else "link-down")));
          Topology.Graph.set_link_up t.topo a b up;
          for session = 0 to link.Topology.Graph.sessions - 1 do
            if not up then close_connection t a b session;
            transition t a (fun sp env ->
                Speaker.set_session sp env ~peer:b ~session ~up);
            transition t b (fun sp env ->
                Speaker.set_session sp env ~peer:a ~session ~up);
            if up && t.liveness <> None then begin
              heard t a ~peer:b ~session;
              heard t b ~peer:a ~session
            end
          done
        end)

let causal_config t device peer note =
  if Obs.Causal.on () then
    ignore (Obs.Causal.config ~time:(now t) ~device ~peer ~note)

let set_hooks ?delay t device hooks =
  schedule ?delay t (fun () ->
      causal_config t device (-1) "set-hooks";
      transition t device (fun sp env -> Speaker.set_hooks sp env hooks))

let set_egress_policy_all ?delay t device policy =
  schedule ?delay t (fun () ->
      causal_config t device (-1) "egress-policy";
      transition t device (fun sp env ->
          Speaker.set_egress_policy_all sp env policy))

let set_ingress_policy ?delay t ~node ~peer policy =
  schedule ?delay t (fun () ->
      causal_config t node peer "ingress-policy";
      transition t node (fun sp env ->
          Speaker.set_ingress_policy sp env ~peer policy))

let drain_device ?delay t device = set_egress_policy_all ?delay t device Policy.drain

let undrain_device ?delay t device =
  set_egress_policy_all ?delay t device Policy.empty

(* ---------------- Fault injection ---------------- *)

let set_fault t fault = t.fault <- fault
let fault t = t.fault

let restart_device ?(delay = 0.0) t device ~recovery =
  schedule ~delay t (fun () ->
      let sp = speaker t device in
      let before = fib_assoc sp in
      (* The crash is a causal root: everything that follows — peer session
         losses, stale marks and sweeps, the eventual recovery resync —
         parents to this event. *)
      let rev =
        if Obs.Causal.on () then Obs.Causal.restart ~time:(now t) ~device
        else -1
      in
      (* The crash itself: no goodbye messages, state just vanishes.
         In-flight messages addressed to the device are discarded on
         arrival because its sessions are marked down. *)
      Speaker.reset sp;
      Obs.Metrics.incr m_restarts;
      Trace.record t.trace_log
        (Trace.Speaker_restarted { time = now t; device });
      record_fib_diff t device before (fib_assoc sp);
      let incident = Topology.Graph.all_neighbors t.topo device in
      (* Peers detect the dead sessions (holdtime expiry, modeled as
         immediate). Legacy: they flush routes learned from the device.
         Graceful restart: they mark them stale and keep forwarding,
         bounded by the stale-path timer (inside [session_loss]). *)
      List.iter
        (fun ((peer : Topology.Node.t), (link : Topology.Graph.link)) ->
          for session = 0 to link.Topology.Graph.sessions - 1 do
            (* Each peer's loss chains to the restart, not to whatever the
               previous peer's loss left as the cursor. *)
            Obs.Causal.set_cause rev;
            session_loss t peer.Topology.Node.id ~peer:device ~session
              ~reason:"peer-restarted"
          done)
        incident;
      (* Restarting-speaker side: FIB entries preserved by [Speaker.reset]
         (graceful restart) that are never re-learned expire on the same
         stale-path bound. *)
      (match t.liveness with
       | Some c when c.Liveness.graceful_restart ->
         Dsim.Event_queue.schedule t.event_queue
           ~delay:c.Liveness.stale_path_time (fun () ->
             let sp = speaker t device in
             if Speaker.fib_stale_prefixes sp <> [] then begin
               record_session_event t device ~peer:device ~session:(-1)
                 "fib-stale-swept";
               (if Obs.Causal.on () then
                  ignore
                    (Obs.Causal.sweep ~time:(now t) ~device ~peer:device
                       ~session:(-1) ~note:"fib-stale-swept" ~parent:rev));
               transition t device Speaker.sweep_own_stale
             end)
       | Some _ | None -> ());
      (* Recovery: re-establish every session whose link is up, both ends,
         which triggers a full-table resend from the peers and
         re-origination by the restarted device (followed by End-of-RIB
         markers under graceful restart, sweeping surviving stale marks). *)
      Dsim.Event_queue.schedule t.event_queue ~delay:recovery (fun () ->
          (* The recovery resync (full-table resends, re-origination, EoR
             markers) chains to the restart via this event. *)
          let recov =
            if Obs.Causal.on () then
              Obs.Causal.session_event ~time:(now t) ~device ~peer:(-1)
                ~session:(-1) ~note:"recovered" ~parent:rev
            else -1
          in
          List.iter
            (fun ((peer : Topology.Node.t), (link : Topology.Graph.link)) ->
              if link.Topology.Graph.up then
                for session = 0 to link.Topology.Graph.sessions - 1 do
                  Obs.Causal.set_cause recov;
                  transition t device (fun sp env ->
                      Speaker.set_session sp env ~peer:peer.Topology.Node.id
                        ~session ~up:true);
                  Obs.Causal.set_cause recov;
                  transition t peer.Topology.Node.id (fun sp env ->
                      Speaker.set_session sp env ~peer:device ~session ~up:true);
                  if t.liveness <> None then begin
                    heard t device ~peer:peer.Topology.Node.id ~session;
                    heard t peer.Topology.Node.id ~peer:device ~session
                  end
                done)
            incident))

let apply_schedule t (sched : Dsim.Fault.schedule) =
  Obs.Span.with_span "fault.apply_schedule"
    ~attrs:(fun () -> [ ("actions", string_of_int (List.length sched)) ])
  @@ fun () ->
  List.iter
    (function
      | Dsim.Fault.Flap_link { a; b; at; duration } ->
        set_link ~delay:at t a b ~up:false;
        set_link ~delay:(at +. duration) t a b ~up:true
      | Dsim.Fault.Restart_speaker { device; at; recovery } ->
        restart_device ~delay:at t device ~recovery)
    sched

(* ---------------- Running ---------------- *)

let converge ?(max_events = 2_000_000) t =
  Obs.Span.with_span "network.converge" @@ fun () ->
  let executed = Dsim.Event_queue.run ~max_events t.event_queue in
  Obs.Metrics.incr ~by:executed m_converge_events;
  if not (Dsim.Event_queue.is_empty t.event_queue) then
    failwith
      (Printf.sprintf
         "Network.converge: %d events executed without quiescence (persistent \
          oscillation?)"
         executed);
  executed

let run_until t ~time = Dsim.Event_queue.run_until t.event_queue ~time

(* ---------------- Inspection ---------------- *)

let fib t device prefix = Speaker.fib_lookup (speaker t device) prefix

let fib_snapshot t prefix =
  Hashtbl.fold
    (fun device sp acc ->
      match Speaker.fib_lookup sp prefix with
      | Some state -> (device, state) :: acc
      | None -> acc)
    t.speakers []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let known_prefixes t =
  let set = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ sp ->
      List.iter (fun p -> Hashtbl.replace set p ()) (Speaker.known_prefixes sp))
    t.speakers;
  Hashtbl.fold (fun p () acc -> p :: acc) set []
  |> List.sort Net.Prefix.compare
