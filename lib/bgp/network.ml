(* Observability instruments (shared registry; no-ops until enabled). *)
let m_messages_sent = Obs.Metrics.counter "bgp.messages.sent"
let m_messages_dropped = Obs.Metrics.counter "bgp.messages.dropped"
let m_fib_changes = Obs.Metrics.counter "bgp.fib.changes"
let m_restarts = Obs.Metrics.counter "bgp.speaker.restarts"
let m_converge_events = Obs.Metrics.counter "bgp.converge.events"

type latency_model = Dsim.Rng.t -> float

let default_latency rng = 0.0001 +. Dsim.Rng.exponential rng ~mean:0.001

type t = {
  topo : Topology.Graph.t;
  event_queue : Dsim.Event_queue.t;
  rng : Dsim.Rng.t;
  latency : latency_model;
  speakers : (int, Speaker.t) Hashtbl.t;
  (* (src, dst, session) -> last scheduled delivery time, for FIFO order *)
  channels : (int * int * int, float ref) Hashtbl.t;
  trace_log : Trace.t;
  mutable fault : Dsim.Fault.t option;
}

let graph t = t.topo
let queue t = t.event_queue
let trace t = t.trace_log
let now t = Dsim.Event_queue.now t.event_queue

let speaker t device =
  match Hashtbl.find_opt t.speakers device with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Network.speaker: unknown device %d" device)

let env t : Speaker.env =
  {
    Speaker.now = now t;
    peer_layer =
      (fun peer ->
        Option.map
          (fun n -> n.Topology.Node.layer)
          (Topology.Graph.node_opt t.topo peer));
  }

let create ?(seed = 42) ?(config = Speaker.default_config)
    ?(latency = default_latency) topo =
  let t =
    {
      topo;
      event_queue = Dsim.Event_queue.create ();
      rng = Dsim.Rng.create seed;
      latency;
      speakers = Hashtbl.create 64;
      channels = Hashtbl.create 256;
      trace_log = Trace.create ();
      fault = None;
    }
  in
  List.iter
    (fun node ->
      Hashtbl.replace t.speakers node.Topology.Node.id
        (Speaker.create ~config node))
    (Topology.Graph.nodes topo);
  List.iter
    (fun (link : Topology.Graph.link) ->
      let sa = speaker t link.a and sb = speaker t link.b in
      Speaker.add_peer sa ~peer:link.b ~sessions:link.sessions;
      Speaker.add_peer sb ~peer:link.a ~sessions:link.sessions)
    (Topology.Graph.links topo);
  (* Spans recorded while this network runs are stamped with its virtual
     clock (a no-op unless a span recorder is installed). *)
  Obs.Span.set_sim_clock (fun () -> Dsim.Event_queue.now t.event_queue);
  t

(* ---------------- FIB tracking ---------------- *)

let fib_assoc speaker = Speaker.fib speaker

let record_fib_diff t device before after =
  let time = now t in
  let find prefix l =
    Option.map snd (List.find_opt (fun (p, _) -> Net.Prefix.equal p prefix) l)
  in
  let change prefix state =
    Obs.Metrics.incr m_fib_changes;
    Trace.record t.trace_log (Trace.Fib_change { time; device; prefix; state })
  in
  (* Removed or changed entries. *)
  List.iter
    (fun (prefix, state_before) ->
      match find prefix after with
      | None -> change prefix None
      | Some state_after ->
        if state_after <> state_before then change prefix (Some state_after))
    before;
  (* New entries. *)
  List.iter
    (fun (prefix, state_after) ->
      if find prefix before = None then change prefix (Some state_after))
    after

(* ---------------- Message dispatch ---------------- *)

let channel t key =
  match Hashtbl.find_opt t.channels key with
  | Some r -> r
  | None ->
    let r = ref 0.0 in
    Hashtbl.replace t.channels key r;
    r

let session_alive t src dst =
  match Topology.Graph.find_link t.topo src dst with
  | Some link -> link.Topology.Graph.up
  | None -> false

let rec dispatch t src (outbox : Speaker.outbox) =
  List.iter
    (fun (dst, session, msg) ->
      Obs.Metrics.incr m_messages_sent;
      Trace.record t.trace_log
        (Trace.Message_sent { time = now t; src; dst; session; msg });
      (* The base latency is drawn before consulting the fault model so the
         latency stream is identical with and without faults installed —
         only the fault model's own RNG differs between the two runs. *)
      let delay = t.latency t.rng in
      let fate =
        match t.fault with
        | None -> Dsim.Fault.pass
        | Some f -> Dsim.Fault.fate f
      in
      if fate.Dsim.Fault.dropped then begin
        Obs.Metrics.incr m_messages_dropped;
        Trace.record t.trace_log
          (Trace.Message_dropped { time = now t; src; dst; session; msg })
      end
      else begin
        let arrival = now t +. delay +. fate.Dsim.Fault.extra_delay in
        let chan = channel t (src, dst, session) in
        let delivery =
          if fate.Dsim.Fault.reorder then
            (* Allowed to overtake earlier in-flight messages. *)
            arrival
          else Float.max arrival (!chan +. 1e-9) (* FIFO within a session *)
        in
        chan := Float.max !chan delivery;
        Dsim.Event_queue.schedule_at t.event_queue ~time:delivery (fun () ->
            deliver t ~src ~dst ~session msg)
      end)
    outbox

and deliver t ~src ~dst ~session msg =
  (* A message in flight when the session goes down is lost. *)
  if session_alive t src dst then begin
    let sp = speaker t dst in
    if Speaker.session_up sp ~peer:src ~session then begin
      let before = fib_assoc sp in
      let outbox = Speaker.receive sp (env t) ~peer:src ~session msg in
      record_fib_diff t dst before (fib_assoc sp);
      dispatch t dst outbox
    end
  end

(* Runs [f] on the speaker, records FIB changes, dispatches messages. *)
let transition t device f =
  let sp = speaker t device in
  let before = fib_assoc sp in
  let outbox = f sp (env t) in
  record_fib_diff t device before (fib_assoc sp);
  dispatch t device outbox

let schedule ?(delay = 0.0) t f =
  Dsim.Event_queue.schedule t.event_queue ~delay f

(* ---------------- Scheduled operations ---------------- *)

let originate ?delay t device prefix attr =
  schedule ?delay t (fun () ->
      transition t device (fun sp env -> Speaker.originate sp env prefix attr))

let withdraw_origin ?delay t device prefix =
  schedule ?delay t (fun () ->
      transition t device (fun sp env -> Speaker.withdraw_origin sp env prefix))

let set_link ?delay t a b ~up =
  schedule ?delay t (fun () ->
      match Topology.Graph.find_link t.topo a b with
      | None -> invalid_arg (Printf.sprintf "Network.set_link: no link %d-%d" a b)
      | Some link ->
        if link.Topology.Graph.up <> up then begin
          Topology.Graph.set_link_up t.topo a b up;
          for session = 0 to link.Topology.Graph.sessions - 1 do
            transition t a (fun sp env ->
                Speaker.set_session sp env ~peer:b ~session ~up);
            transition t b (fun sp env ->
                Speaker.set_session sp env ~peer:a ~session ~up)
          done
        end)

let set_hooks ?delay t device hooks =
  schedule ?delay t (fun () ->
      transition t device (fun sp env -> Speaker.set_hooks sp env hooks))

let set_egress_policy_all ?delay t device policy =
  schedule ?delay t (fun () ->
      transition t device (fun sp env ->
          Speaker.set_egress_policy_all sp env policy))

let set_ingress_policy ?delay t ~node ~peer policy =
  schedule ?delay t (fun () ->
      transition t node (fun sp env ->
          Speaker.set_ingress_policy sp env ~peer policy))

let drain_device ?delay t device = set_egress_policy_all ?delay t device Policy.drain

let undrain_device ?delay t device =
  set_egress_policy_all ?delay t device Policy.empty

(* ---------------- Fault injection ---------------- *)

let set_fault t fault = t.fault <- fault
let fault t = t.fault

let restart_device ?(delay = 0.0) t device ~recovery =
  schedule ~delay t (fun () ->
      let sp = speaker t device in
      let before = fib_assoc sp in
      (* The crash itself: no goodbye messages, state just vanishes.
         In-flight messages addressed to the device are discarded on
         arrival because its sessions are marked down. *)
      Speaker.reset sp;
      Obs.Metrics.incr m_restarts;
      Trace.record t.trace_log
        (Trace.Speaker_restarted { time = now t; device });
      record_fib_diff t device before (fib_assoc sp);
      let incident = Topology.Graph.all_neighbors t.topo device in
      (* Peers detect the dead sessions (holdtime expiry, modeled as
         immediate) and flush routes learned from the device. *)
      List.iter
        (fun ((peer : Topology.Node.t), (link : Topology.Graph.link)) ->
          for session = 0 to link.Topology.Graph.sessions - 1 do
            transition t peer.Topology.Node.id (fun sp env ->
                Speaker.set_session sp env ~peer:device ~session ~up:false)
          done)
        incident;
      (* Recovery: re-establish every session whose link is up, both ends,
         which triggers a full-table resend from the peers and
         re-origination by the restarted device. *)
      Dsim.Event_queue.schedule t.event_queue ~delay:recovery (fun () ->
          List.iter
            (fun ((peer : Topology.Node.t), (link : Topology.Graph.link)) ->
              if link.Topology.Graph.up then
                for session = 0 to link.Topology.Graph.sessions - 1 do
                  transition t device (fun sp env ->
                      Speaker.set_session sp env ~peer:peer.Topology.Node.id
                        ~session ~up:true);
                  transition t peer.Topology.Node.id (fun sp env ->
                      Speaker.set_session sp env ~peer:device ~session ~up:true)
                done)
            incident))

let apply_schedule t (sched : Dsim.Fault.schedule) =
  Obs.Span.with_span "fault.apply_schedule"
    ~attrs:(fun () -> [ ("actions", string_of_int (List.length sched)) ])
  @@ fun () ->
  List.iter
    (function
      | Dsim.Fault.Flap_link { a; b; at; duration } ->
        set_link ~delay:at t a b ~up:false;
        set_link ~delay:(at +. duration) t a b ~up:true
      | Dsim.Fault.Restart_speaker { device; at; recovery } ->
        restart_device ~delay:at t device ~recovery)
    sched

(* ---------------- Running ---------------- *)

let converge ?(max_events = 2_000_000) t =
  Obs.Span.with_span "network.converge" @@ fun () ->
  let executed = Dsim.Event_queue.run ~max_events t.event_queue in
  Obs.Metrics.incr ~by:executed m_converge_events;
  if not (Dsim.Event_queue.is_empty t.event_queue) then
    failwith
      (Printf.sprintf
         "Network.converge: %d events executed without quiescence (persistent \
          oscillation?)"
         executed);
  executed

let run_until t ~time = Dsim.Event_queue.run_until t.event_queue ~time

(* ---------------- Inspection ---------------- *)

let fib t device prefix = Speaker.fib_lookup (speaker t device) prefix

let fib_snapshot t prefix =
  Hashtbl.fold
    (fun device sp acc ->
      match Speaker.fib_lookup sp prefix with
      | Some state -> (device, state) :: acc
      | None -> acc)
    t.speakers []
  |> List.sort compare

let known_prefixes t =
  let set = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ sp ->
      List.iter (fun p -> Hashtbl.replace set p ()) (Speaker.known_prefixes sp))
    t.speakers;
  Hashtbl.fold (fun p () acc -> p :: acc) set []
  |> List.sort Net.Prefix.compare
