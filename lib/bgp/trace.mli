(** Recording of control-plane and forwarding-state history.

    Transient phenomena — first/last-router funneling, next-hop-group
    explosion, momentary loops and black-holes — only exist {e during}
    convergence, so experiments need the full time series of FIB states, not
    just the converged snapshot. The network layer appends an event here on
    every FIB change and message transmission. *)

type event =
  | Fib_change of {
      time : float;
      device : int;
      prefix : Net.Prefix.t;
      state : Speaker.fib_state option;  (** [None] = route removed *)
    }
  | Message_sent of {
      time : float;
      src : int;
      dst : int;
      session : int;
      msg : Msg.t;
    }
  | Message_dropped of {
      time : float;
      src : int;
      dst : int;
      session : int;
      msg : Msg.t;
    }  (** the fault model lost the message in transit *)
  | Speaker_restarted of { time : float; device : int }
      (** the device's speaker crashed: RIBs cleared, sessions dropped *)
  | Session_event of {
      time : float;
      device : int;
      peer : int;
      session : int;
      event : string;
    }
      (** session liveness machinery: [event] is a stable tag such as
          ["hold-expired"], ["reconnected"], ["stale-swept"], or
          ["fib-stale-swept"] *)
  | Violation of {
      time : float;
      device : int option;
      prefix : Net.Prefix.t option;
      kind : string;
      detail : string;
    }
      (** a runtime invariant violation (or an RPA guard firing), stamped
          with the event-queue time at which it was observed. [kind] is a
          stable machine-readable tag; [detail] is for humans. *)

type t

val create : unit -> t

val record : t -> event -> unit

val events : t -> event list
(** In recording order. Memoized: repeated calls on an unchanged trace
    return the same (physically equal) list — events are stored in an
    append-friendly array, never re-reversed per call. *)

val length : t -> int

val iter : t -> (event -> unit) -> unit
(** In recording order, without materializing a list. *)

val fib_changes : t -> (float * int * Net.Prefix.t * Speaker.fib_state option) list

val messages_sent : t -> int

val messages_dropped : t -> int

val count : (event -> bool) -> t -> int
(** Number of recorded events satisfying the predicate, without
    materializing the event list. *)

val fib_change_count : t -> int

val violations :
  t -> (float * int option * Net.Prefix.t option * string * string) list
(** All recorded violations as (time, device, prefix, kind, detail), in
    recording order. *)

val violation_count : t -> int

val clear : t -> unit

(** Replays the FIB time series for one prefix: for each instant at which
    any device's FIB changed, the map of device -> entries. Used by the
    data plane to evaluate transient forwarding. *)
val fib_timeline :
  t -> prefix:Net.Prefix.t ->
  initial:(int * Speaker.fib_state) list ->
  (float * (int, Speaker.fib_state) Hashtbl.t) list

val event_to_json : event -> Obs.Json.t
(** One self-describing object per event (a ["type"] tag plus the event's
    fields; attributes and FIB states rendered structurally) — the JSONL
    line format of [centralium observe]. *)
