(** Session liveness and graceful-restart timer configuration.

    All durations are in simulated seconds ({!Dsim.Event_queue} time). The
    defaults are scaled to the simulator's millisecond-order link latencies
    rather than the wall-clock seconds of production BGP: a keepalive every
    2 ms with a 6 ms hold time plays the role of the classic 60 s / 180 s
    pair. Keepalives are real {!Msg.t} values dispatched through
    {!Network.t}, so they share FIFO channels with updates and are subject
    to {!Dsim.Fault} drop/delay/reorder like any other message. *)

type config = {
  keepalive_interval : float;
      (** Period between keepalives on each session direction, and also the
          granularity of the receiver-side hold check. *)
  hold_time : float;
      (** A session is torn down when nothing (keepalive or update) has been
          heard from the peer for this long. Conventionally 3x the keepalive
          interval. *)
  reconnect_interval : float;
      (** How often a torn-down session over a healthy link attempts
          re-establishment. *)
  graceful_restart : bool;
      (** When true, session loss (hold expiry or peer crash) marks learned
          routes stale and keeps forwarding on them (RFC 4724) instead of
          flushing; a full resync ending in {!Msg.Eor} sweeps the marks. *)
  stale_path_time : float;
      (** Upper bound on how long a stale route may be retained after the
          session loss that marked it, if no End-of-RIB arrives first. *)
}

val default : config
(** [{ keepalive_interval = 0.002; hold_time = 0.006;
      reconnect_interval = 0.008; graceful_restart = false;
      stale_path_time = 0.05 }] *)

val with_gr : ?stale_path_time:float -> config -> config
(** Enable graceful restart on a config, optionally overriding the
    stale-path bound. *)

val pp : Format.formatter -> config -> unit
