type t = {
  peer : int;
  session : int;
  attr : Net.Attr.t;
}

(* Every candidate path is built here, so interning at the constructor
   guarantees the decision process and the RIB tables only ever see
   canonical attributes (pointer-equality fast path everywhere). *)
let make ~peer ~session ~attr = { peer; session; attr = Net.Attr.intern attr }

let as_path_length t = Net.As_path.length t.attr.Net.Attr.as_path

let compare a b =
  let c = Int.compare a.peer b.peer in
  if c <> 0 then c
  else
    let c = Int.compare a.session b.session in
    if c <> 0 then c else Net.Attr.compare a.attr b.attr

let equal a b = compare a b = 0

let pp ppf t =
  Format.fprintf ppf "@[<h>via %d.%d %a@]" t.peer t.session Net.Attr.pp t.attr
