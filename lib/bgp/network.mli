(** An event-driven network of BGP speakers over a topology.

    Every device of the graph gets a speaker; every graph link becomes one
    or more eBGP sessions. Messages are delivered through the discrete-event
    queue with randomized per-message latency but FIFO order within a
    session (BGP runs over TCP), which is exactly the asynchrony that
    produces the paper's transient states. All operations below merely
    {e schedule} work; call {!converge} (or {!run_until}) to let the
    network react. *)

type latency_model = Dsim.Rng.t -> float
(** Samples a one-way message latency in seconds. *)

val default_latency : latency_model
(** 100 µs base + exponential with 1 ms mean. *)

type t

val create :
  ?seed:int ->
  ?config:Speaker.config ->
  ?latency:latency_model ->
  Topology.Graph.t ->
  t
(** Builds a speaker per node and sessions per link (respecting the link's
    [sessions] count). [config] applies to every speaker. *)

val graph : t -> Topology.Graph.t
val queue : t -> Dsim.Event_queue.t
val trace : t -> Trace.t
val now : t -> float
val speaker : t -> int -> Speaker.t

(** {1 Scheduled operations} *)

val originate : ?delay:float -> t -> int -> Net.Prefix.t -> Net.Attr.t -> unit
val withdraw_origin : ?delay:float -> t -> int -> Net.Prefix.t -> unit

val set_link : ?delay:float -> t -> int -> int -> up:bool -> unit
(** Brings all sessions of the link up or down (and updates the graph). *)

val set_hooks : ?delay:float -> t -> int -> Rib_policy.hooks -> unit
(** Deploys an RPA (or restores native behaviour) on one device. *)

val set_egress_policy_all : ?delay:float -> t -> int -> Policy.t -> unit
(** E.g. applies a maintenance drain export policy on a device. *)

val set_ingress_policy : ?delay:float -> t -> node:int -> peer:int -> Policy.t -> unit

val drain_device : ?delay:float -> t -> int -> unit
(** Shorthand: applies {!Policy.drain} as the device's global export
    policy. *)

val undrain_device : ?delay:float -> t -> int -> unit

(** {1 Evaluation mode & batching} *)

val set_eval_mode : t -> Speaker.eval_mode -> unit
(** Switches every speaker between the incremental dirty-set decision
    pipeline (the default) and the full-table-per-transition oracle. Both
    modes converge to bit-identical FIBs, Adj-RIB-Outs, traces, and message
    sequences at every quiescent point (enforced by the test suite); only
    the decision count differs. Switch before scheduling work — an
    in-flight dirty set is not migrated. *)

val set_advert_batching : t -> bool -> unit
(** Opt-in per-instant advertisement coalescing: messages produced at one
    simulation instant are queued and flushed at the end of the instant,
    keeping only the final message per (src, dst, session, prefix) — a
    transient advert superseded within the same instant is never sent.
    Converged state is unchanged; the message count (and therefore the
    per-message latency/fault draw streams, i.e. the exact trace) differs
    from the unbatched run. Off by default. Disabling flushes any queued
    messages synchronously. *)

val advert_batching : t -> bool

(** {1 Session liveness & graceful restart}

    Entirely opt-in: without {!enable_liveness} the network behaves exactly
    as before — no keepalives, no hold timers, and silent transport loss
    (e.g. a 100% drop fault) leaves sessions nominally up with divergent
    RIBs forever (detectable only by {!Centralium.Invariant}'s
    session-staleness check). *)

val enable_liveness : ?config:Liveness.config -> until:float -> t -> unit
(** Starts per-session keepalive, hold-check, and reconnect timer loops on
    the event queue. Keepalives are real {!Msg.t}s: they share FIFO
    channels with updates and are subject to the installed fault model, so
    enough consecutive drops expire the hold timer and tear the session
    down ({!Trace.Session_event} ["hold-expired"]). Torn-down sessions over
    healthy links are periodically re-established. When
    [config.graceful_restart] is set, every speaker switches to RFC 4724
    semantics (stale retention on session loss, End-of-RIB resync, bounded
    by [config.stale_path_time]). All loops stop at [until] (simulated
    time) so {!converge} still quiesces; sweeps scheduled before [until]
    may fire up to one stale-path time after it. *)

val liveness : t -> Liveness.config option

val reestablish_sessions : ?all:bool -> ?delay:float -> t -> unit
(** Bounces every session over an up link where either end is down —
    down (stale under graceful restart) then up on both ends, replaying the
    full-table resync. [~all:true] bounces every session regardless of
    state, which also repairs sessions blinded by message loss (divergent
    RIBs with both ends nominally up). Used to heal a network after a
    chaos window so it can reach a violation-free quiescent state. *)

(** {1 Fault injection}

    Entirely opt-in: a network without a fault model installed behaves
    exactly as before (and draws the same latency sequence as a faulty run
    with the same seed — the fault model uses its own RNG stream). *)

val set_fault : t -> Dsim.Fault.t option -> unit
(** Installs (or removes) a message-level fault model. Once installed,
    every transmitted message's fate — dropped, extra-delayed, or allowed
    to overtake earlier messages of its session — is drawn from the model.
    Drops are recorded in the trace as {!Trace.Message_dropped}. *)

val fault : t -> Dsim.Fault.t option

val restart_device : ?delay:float -> t -> int -> recovery:float -> unit
(** Crashes the device's speaker at [delay] from now: its RIBs are cleared
    ({!Speaker.reset}), peers flush the routes they learned from it, and
    in-flight messages addressed to it are lost. [recovery] seconds later
    every session over an up link is re-established on both ends,
    replaying session establishment (full-table resend, re-origination).
    Recorded in the trace as {!Trace.Speaker_restarted}. *)

val apply_schedule : t -> Dsim.Fault.schedule -> unit
(** Schedules every action of a fault schedule: link flaps via {!set_link}
    down/up pairs, speaker restarts via {!restart_device}. *)

(** {1 Running} *)

val converge : ?max_events:int -> t -> int
(** Runs the event queue to quiescence; returns the number of events
    executed. Raises [Failure] if [max_events] (default 2_000_000) is
    reached, which indicates a persistent control-plane oscillation. *)

val run_until : t -> time:float -> int

(** {1 Inspection} *)

val fib : t -> int -> Net.Prefix.t -> Speaker.fib_state option
val fib_snapshot : t -> Net.Prefix.t -> (int * Speaker.fib_state) list
(** FIB state of every device for the prefix (devices without a route are
    omitted). *)

val known_prefixes : t -> Net.Prefix.t list
(** Union of every speaker's known prefixes, sorted. *)

val env : t -> Speaker.env
(** The environment handed to speakers (for direct speaker manipulation in
    tests). *)
