(* Typed field-by-field comparison, no tuple allocation and no polymorphic
   compare: this runs once per candidate pair on every decision, and
   polymorphic compare would silently walk (or crash on) abstract interned
   state. [As_path.length] is O(1) (cached in the representation). *)
let preference_compare (a : Path.t) (b : Path.t) =
  let aa = a.Path.attr and ba = b.Path.attr in
  (* Higher local-pref preferred. *)
  let c = Int.compare ba.Net.Attr.local_pref aa.Net.Attr.local_pref in
  if c <> 0 then c
  else
    let c =
      Int.compare
        (Net.As_path.length aa.Net.Attr.as_path)
        (Net.As_path.length ba.Net.Attr.as_path)
    in
    if c <> 0 then c
    else
      let c =
        Int.compare
          (Net.Attr.origin_rank aa.Net.Attr.origin)
          (Net.Attr.origin_rank ba.Net.Attr.origin)
      in
      if c <> 0 then c
      else
        let c = Int.compare aa.Net.Attr.med ba.Net.Attr.med in
        if c <> 0 then c
        else
          let c = Int.compare a.Path.peer b.Path.peer in
          if c <> 0 then c else Int.compare a.Path.session b.Path.session

let equal_cost (a : Path.t) (b : Path.t) =
  let aa = a.Path.attr and ba = b.Path.attr in
  aa.Net.Attr.local_pref = ba.Net.Attr.local_pref
  && Net.As_path.length aa.Net.Attr.as_path
     = Net.As_path.length ba.Net.Attr.as_path
  && Net.Attr.origin_rank aa.Net.Attr.origin
     = Net.Attr.origin_rank ba.Net.Attr.origin
  && aa.Net.Attr.med = ba.Net.Attr.med

(* Single pass: find the minimum under the (total) preference order, then
   gather its equal-cost set. Candidates arrive sorted by (peer, session)
   from the Adj-RIB-In, and the equal-cost filter preserves that order, so
   the result is identical to the former sort-then-filter — without the
   O(n log n) sort on every decision. *)
let select ~multipath candidates =
  match candidates with
  | [] -> ([], None)
  | first :: rest ->
    let best =
      List.fold_left
        (fun best p -> if preference_compare p best < 0 then p else best)
        first rest
    in
    let set =
      if multipath then List.filter (equal_cost best) candidates else [ best ]
    in
    (set, Some best)

let least_favorable = function
  | [] -> None
  | first :: rest ->
    (* Maximal under the preference order = least favorable. *)
    Some
      (List.fold_left
         (fun worst p -> if preference_compare p worst > 0 then p else worst)
         first rest)
