(** BGP messages exchanged between speakers.

    [Keepalive] carries no routes: it only proves the session transport is
    alive (see {!Liveness}). [Eor] is the RFC 4724 End-of-RIB marker sent
    after a full-table resync; receivers use it to sweep routes still marked
    stale from a graceful restart. *)

type t =
  | Update of { prefix : Net.Prefix.t; attr : Net.Attr.t }
  | Withdraw of { prefix : Net.Prefix.t }
  | Keepalive
  | Eor

val prefix : t -> Net.Prefix.t option
(** The prefix a routing message is about; [None] for session-level
    messages ([Keepalive], [Eor]). *)

val kind_label : t -> string
(** ["update" | "withdraw" | "keepalive" | "eor"] — stable labels for
    traces and causal events. *)

val pp : Format.formatter -> t -> unit
