(* Observability instruments (shared registry; no-ops until enabled). *)
let m_decisions = Obs.Metrics.counter "bgp.speaker.decisions"
let m_adverts = Obs.Metrics.counter "bgp.speaker.advertisements"
let m_withdraws = Obs.Metrics.counter "bgp.speaker.withdrawals"
let m_stale_marked = Obs.Metrics.counter "bgp.gr.routes_marked_stale"
let m_stale_swept = Obs.Metrics.counter "bgp.gr.routes_swept"
let m_eor_received = Obs.Metrics.counter "bgp.gr.eor_received"

type config = {
  multipath : bool;
  wcmp : bool;
  default_local_pref : int;
}

let default_config = { multipath = true; wcmp = false; default_local_pref = 100 }

type fib_state =
  | Local
  | Entries of entry list

and entry = { next_hop : int; session : int; weight : int }

let entry_equal a b =
  a.next_hop = b.next_hop && a.session = b.session && a.weight = b.weight

let fib_state_equal a b =
  match (a, b) with
  | Local, Local -> true
  | Entries xs, Entries ys -> List.equal entry_equal xs ys
  | Local, Entries _ | Entries _, Local -> false

type env = { now : float; peer_layer : int -> Topology.Node.layer option }

type eval_mode = Incremental | Full_table

(* Prefixes are interned: every RIB table below is keyed by the prefix's
   integer id (flat hashing, no structural walks on the hot path). Ids are
   only ever used for hashing and equality; any ordering goes through the
   canonical structural compare so that id assignment order — which differs
   across runs and evaluation modes — can never leak into behavior. *)
let pid = Net.Intern.Prefix_id.id
let prefix_of = Net.Intern.Prefix_id.value
let pid_compare a b = Net.Prefix.compare (prefix_of a) (prefix_of b)
let sort_pids pids = List.sort pid_compare pids

type t = {
  node : Topology.Node.t;
  config : config;
  mutable hooks : Rib_policy.hooks;
  (* prefix id -> (peer, session) -> raw received attributes *)
  rib_in : (int, (int * int, Net.Attr.t) Hashtbl.t) Hashtbl.t;
  origin_table : (int, Net.Attr.t) Hashtbl.t;
  ingress : (int, Policy.t) Hashtbl.t;
  egress : (int, Policy.t) Hashtbl.t;
  mutable egress_all : Policy.t;
  fib_table : (int, fib_state) Hashtbl.t;
  (* peer -> prefix id -> last advertised attributes. Maintained as a
     mirror of the desired advertisement state for every peer, up or down:
     every decision-input change re-derives the affected entries, so the
     table is always current and a session (re-)establishment can resend it
     directly. *)
  rib_out : (int, (int, Net.Attr.t) Hashtbl.t) Hashtbl.t;
  session_count : (int, int) Hashtbl.t;
  session_state : (int * int, bool) Hashtbl.t;
  mutable graceful_restart : bool;
  (* (prefix id, peer, session) -> time the route was marked stale. A stale
     route stays a forwarding candidate (RFC 4724 receiver side) until it is
     refreshed by an Update, swept by an End-of-RIB, or expired by the
     stale-path timer. *)
  stale : (int * int * int, float) Hashtbl.t;
  (* Learned FIB prefixes preserved across our own restart (restarting
     speaker side of graceful restart): forwarding state survives the crash
     even though the RIBs that justified it are gone, until re-learned or
     swept. *)
  fib_stale : (int, unit) Hashtbl.t;
  mutable mode : eval_mode;
  (* Prefix ids whose decision inputs changed since the last drain. Batch
     transitions drain this set instead of re-deciding the whole table;
     Full_table mode ignores it and re-decides everything (the debug
     oracle both modes must agree with bit-for-bit). *)
  dirty : (int, unit) Hashtbl.t;
}

type outbox = (int * int * Msg.t) list

let create ?(config = default_config) ?(hooks = Rib_policy.native) node =
  {
    node;
    config;
    hooks;
    rib_in = Hashtbl.create 64;
    origin_table = Hashtbl.create 8;
    ingress = Hashtbl.create 8;
    egress = Hashtbl.create 8;
    egress_all = Policy.empty;
    fib_table = Hashtbl.create 64;
    rib_out = Hashtbl.create 8;
    session_count = Hashtbl.create 8;
    session_state = Hashtbl.create 16;
    graceful_restart = false;
    stale = Hashtbl.create 16;
    fib_stale = Hashtbl.create 8;
    mode = Incremental;
    dirty = Hashtbl.create 16;
  }

let set_graceful_restart t enabled = t.graceful_restart <- enabled
let graceful_restart t = t.graceful_restart

let set_eval_mode t mode = t.mode <- mode
let eval_mode t = t.mode

let node t = t.node
let id t = t.node.Topology.Node.id
let asn t = t.node.Topology.Node.asn
let hooks t = t.hooks

(* ---------------- Peering ---------------- *)

let add_peer t ~peer ~sessions =
  Hashtbl.replace t.session_count peer sessions;
  for s = 0 to sessions - 1 do
    Hashtbl.replace t.session_state (peer, s) true
  done

let session_up t ~peer ~session =
  match Hashtbl.find_opt t.session_state (peer, session) with
  | Some up -> up
  | None -> false

let up_sessions t peer =
  match Hashtbl.find_opt t.session_count peer with
  | None -> []
  | Some n ->
    List.filter (fun s -> session_up t ~peer ~session:s) (List.init n Fun.id)

let peers t =
  Hashtbl.fold
    (fun peer _count acc ->
      match up_sessions t peer with
      | [] -> acc
      | up -> (peer, List.length up) :: acc)
    t.session_count []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* ---------------- Context ---------------- *)

let make_ctx t env prefix : Rib_policy.ctx =
  {
    Rib_policy.device = id t;
    prefix;
    now = env.now;
    peer_layer = env.peer_layer;
    live_peers_in_layer =
      (fun layer ->
        List.length
          (List.filter
             (fun (peer, _) ->
               match env.peer_layer peer with
               | Some l -> Topology.Node.layer_equal l layer
               | None -> false)
             (peers t)));
  }

(* ---------------- Candidate gathering ---------------- *)

(* Keys are unique per Adj-RIB-In table, so sorting by the (peer, session)
   key alone is the same total order the old polymorphic sort on whole
   (peer, session, attr) triples produced — without ever walking (or, now
   that attributes carry interned state, miscomparing) the attributes. *)
let raw_routes_pid t p =
  match Hashtbl.find_opt t.rib_in p with
  | None -> []
  | Some table ->
    Hashtbl.fold (fun (peer, session) attr acc -> (peer, session, attr) :: acc)
      table []
    |> List.sort (fun (p1, s1, _) (p2, s2, _) ->
           let c = Int.compare p1 p2 in
           if c <> 0 then c else Int.compare s1 s2)

let raw_routes t prefix = raw_routes_pid t (pid prefix)

let is_stale t prefix ~peer ~session =
  Hashtbl.mem t.stale (pid prefix, peer, session)

let post_policy_candidates t env p ~use_hooks =
  let prefix = prefix_of p in
  let ctx = make_ctx t env prefix in
  let own_asn = asn t in
  List.filter_map
    (fun (peer, session, raw_attr) ->
      (* A stale route (graceful restart) remains a forwarding candidate
         while its session is down: the whole point of RFC 4724 is to keep
         forwarding on last-known-good state until resync or sweep. *)
      if
        (not (session_up t ~peer ~session))
        && not (Hashtbl.mem t.stale (p, peer, session))
      then None
      else if Net.As_path.mem own_asn raw_attr.Net.Attr.as_path then
        None (* standard AS-path loop prevention *)
      else
        let policy =
          Option.value (Hashtbl.find_opt t.ingress peer) ~default:Policy.empty
        in
        match Policy.apply policy ~self:own_asn prefix raw_attr with
        | None -> None
        | Some attr ->
          if use_hooks && not (t.hooks.Rib_policy.ingress_accept ctx ~peer attr)
          then None
          else Some (Path.make ~peer ~session ~attr))
    (raw_routes_pid t p)

let candidates ?env t prefix =
  let env =
    match env with
    | Some env -> env
    | None -> { now = 0.0; peer_layer = (fun _ -> None) }
  in
  post_policy_candidates t env (pid prefix) ~use_hooks:false

(* ---------------- Weights ---------------- *)

let native_weight t (path : Path.t) =
  if t.config.wcmp then
    max 1 (Option.value path.attr.Net.Attr.link_bandwidth ~default:1)
  else 1

let weighted_entries t ctx selected =
  let weighted =
    match t.hooks.Rib_policy.weights ctx ~selected with
    | Some pairs -> pairs
    | None -> List.map (fun p -> (p, native_weight t p)) selected
  in
  List.map
    (fun ((p : Path.t), w) ->
      { next_hop = p.peer; session = p.session; weight = max 1 w })
    weighted

(* ---------------- Advertisement ---------------- *)

let prepare_advert t attr ~total_weight =
  let attr = Net.Attr.with_prepended (asn t) attr in
  let attr = Net.Attr.set_local_pref t.config.default_local_pref attr in
  let attr =
    if t.config.wcmp then Net.Attr.set_link_bandwidth (Some total_weight) attr
    else Net.Attr.set_link_bandwidth None attr
  in
  (* Interned so the change-detection [equal] below is a pointer check. *)
  Net.Attr.intern attr

let rib_out_for t peer =
  match Hashtbl.find_opt t.rib_out peer with
  | Some table -> table
  | None ->
    let table = Hashtbl.create 16 in
    Hashtbl.replace t.rib_out peer table;
    table

(* Computes the desired advertisement toward [peer] and emits messages if it
   differs from what was last sent. *)
let advertise_to t p ~peer ~desired : outbox =
  let table = rib_out_for t peer in
  let previous = Hashtbl.find_opt table p in
  let changed =
    match (previous, desired) with
    | None, None -> false
    | Some a, Some b -> not (Net.Attr.equal a b)
    | None, Some _ | Some _, None -> true
  in
  if not changed then []
  else begin
    (match desired with
     | Some attr -> Hashtbl.replace table p attr
     | None -> Hashtbl.remove table p);
    let msg =
      match desired with
      | Some attr ->
        Obs.Metrics.incr m_adverts;
        Msg.Update { prefix = prefix_of p; attr }
      | None ->
        Obs.Metrics.incr m_withdraws;
        Msg.Withdraw { prefix = prefix_of p }
    in
    List.map (fun session -> (peer, session, msg)) (up_sessions t peer)
  end

let all_peer_ids t =
  Hashtbl.fold (fun peer _ acc -> peer :: acc) t.session_count []
  |> List.sort Int.compare

let desired_advert t ctx prefix ~peer ~(adv : Path.t option) ~total_weight =
  match adv with
  | None -> None
  | Some path ->
    if path.Path.peer = peer then None (* split horizon *)
    else begin
      let own_asn = asn t in
      let peer_policy =
        Option.value (Hashtbl.find_opt t.egress peer) ~default:Policy.empty
      in
      match Policy.apply peer_policy ~self:own_asn prefix path.Path.attr with
      | None -> None
      | Some attr ->
        (match Policy.apply t.egress_all ~self:own_asn prefix attr with
         | None -> None
         | Some attr ->
           if not (t.hooks.Rib_policy.egress_accept ctx ~peer attr) then None
           else Some (prepare_advert t attr ~total_weight))
    end

(* ---------------- Evaluation ---------------- *)

let total_weight_of_fib = function
  | Some (Entries entries) ->
    List.fold_left (fun acc e -> acc + e.weight) 0 entries
  | Some Local | None -> 1

(* The full desired state for one prefix: what the FIB should hold and what
   each peer should have been told. Computed without mutating the speaker,
   so it serves both the state transition (via [commit]) and the runtime
   invariant checker (via [divergences], which compares it against the
   installed state). *)
type desired = {
  d_fib : fib_state option;
  d_adverts : (int * Net.Attr.t option) list;
}

let compute t env p : desired =
  let prefix = prefix_of p in
  let ctx = make_ctx t env prefix in
  match Hashtbl.find_opt t.origin_table p with
  | Some origin_attr ->
    (* Locally originated: FIB is Local; advertise to every peer. *)
    let self_path = Path.make ~peer:(id t) ~session:(-1) ~attr:origin_attr in
    {
      d_fib = Some Local;
      d_adverts =
        List.map
          (fun peer ->
            ( peer,
              desired_advert t ctx prefix ~peer ~adv:(Some self_path)
                ~total_weight:1 ))
          (all_peer_ids t);
    }
  | None ->
    let cands = post_policy_candidates t env p ~use_hooks:true in
    let native = Decision.select ~multipath:t.config.multipath cands in
    let sel = t.hooks.Rib_policy.select ctx ~candidates:cands ~native in
    let d_fib =
      match sel.Rib_policy.selected with
      | [] -> None
      | selected -> Some (Entries (weighted_entries t ctx selected))
    in
    let total_weight = total_weight_of_fib d_fib in
    {
      d_fib;
      d_adverts =
        List.map
          (fun peer ->
            ( peer,
              desired_advert t ctx prefix ~peer ~adv:sel.Rib_policy.advertise
                ~total_weight ))
          (all_peer_ids t);
    }

let commit t p desired : outbox =
  (match desired.d_fib with
   | Some state ->
     Hashtbl.replace t.fib_table p state;
     (* Fresh routing state supersedes any preserved-across-restart entry. *)
     Hashtbl.remove t.fib_stale p
   | None ->
     (* After our own graceful restart the FIB entry outlives its RIBs:
        keep forwarding on the preserved entry until it is either
        re-learned (Some above) or expired by the stale-path sweep. *)
     if not (Hashtbl.mem t.fib_stale p) then Hashtbl.remove t.fib_table p);
  List.concat_map
    (fun (peer, d) -> advertise_to t p ~peer ~desired:d)
    desired.d_adverts

(* The decision-process instrumentation lives here, on the state-driving
   path, so the [divergences] oracle checker (which recomputes every prefix
   without committing) does not inflate the decision count or spans. *)
let evaluate t env p : outbox =
  Obs.Metrics.incr m_decisions;
  if Obs.Causal.on () then
    ignore (Obs.Causal.decide ~time:env.now ~device:(id t) ~prefix:p);
  Obs.Span.with_span "speaker.decision"
    ~attrs:(fun () ->
      [
        ("device", string_of_int (id t));
        ("prefix", Net.Prefix.to_string (prefix_of p));
      ])
  @@ fun () -> commit t p (compute t env p)

let known_pids t =
  let set = Hashtbl.create 64 in
  Hashtbl.iter (fun p _ -> Hashtbl.replace set p ()) t.rib_in;
  Hashtbl.iter (fun p _ -> Hashtbl.replace set p ()) t.origin_table;
  Hashtbl.iter (fun p _ -> Hashtbl.replace set p ()) t.fib_table;
  Hashtbl.iter
    (fun _ table -> Hashtbl.iter (fun p _ -> Hashtbl.replace set p ()) table)
    t.rib_out;
  Hashtbl.fold (fun p () acc -> p :: acc) set [] |> sort_pids

let known_prefixes t = List.map prefix_of (known_pids t)

(* ---------------- Dirty-set bookkeeping ---------------- *)

let mark_dirty t p = Hashtbl.replace t.dirty p ()

let mark_all_dirty t =
  Hashtbl.iter (fun p _ -> Hashtbl.replace t.dirty p ()) t.rib_in;
  Hashtbl.iter (fun p _ -> Hashtbl.replace t.dirty p ()) t.origin_table;
  Hashtbl.iter (fun p _ -> Hashtbl.replace t.dirty p ()) t.fib_table;
  Hashtbl.iter
    (fun _ table -> Hashtbl.iter (fun p _ -> Hashtbl.replace t.dirty p ()) table)
    t.rib_out

(* Non-native hooks get a context whose answers (time, live peers per
   layer) can feed into any prefix's decision, so a transition that changes
   that context conservatively invalidates everything — exactly the old
   full-table sweep. Native BGP ignores the context, which is what makes
   precise per-prefix invalidation sound. *)
let batch_invalidate t =
  if not (Rib_policy.is_native t.hooks) then mark_all_dirty t

let drain_dirty t env : outbox =
  if Hashtbl.length t.dirty = 0 then []
  else begin
    let pids = Hashtbl.fold (fun p () acc -> p :: acc) t.dirty [] |> sort_pids in
    Hashtbl.reset t.dirty;
    List.concat_map (evaluate t env) pids
  end

(* A batch transition: drain the dirty set (incremental), or re-decide the
   whole known-prefix table (the full-table oracle). A clean (non-dirty)
   prefix is converged by construction — re-deciding it emits nothing and
   changes nothing — so both modes produce bit-identical outboxes, FIBs,
   and Adj-RIB-Outs; they differ only in how many decisions they run. *)
let evaluate_batch t env : outbox =
  match t.mode with
  | Incremental -> drain_dirty t env
  | Full_table ->
    Hashtbl.reset t.dirty;
    List.concat_map (evaluate t env) (known_pids t)

(* A per-prefix transition: the mutated prefix is the only dirty one. *)
let evaluate_pids t env pids : outbox =
  match t.mode with
  | Incremental ->
    List.iter (mark_dirty t) pids;
    drain_dirty t env
  | Full_table -> List.concat_map (evaluate t env) pids

(* ---------------- Divergence (invariant support) ---------------- *)

type divergence =
  | Stale_fib of { prefix : Net.Prefix.t }
  | Stale_advert of { prefix : Net.Prefix.t; peer : int }

(* Always the full-table walk, never the dirty set: the checker's job is to
   catch incremental-invalidation bugs, so it must not share the machinery
   it audits. [compute] mutates nothing. *)
let divergences t env =
  List.concat_map
    (fun p ->
      let d = compute t env p in
      let fib_ok =
        match (d.d_fib, Hashtbl.find_opt t.fib_table p) with
        | None, None -> true
        | Some a, Some b -> fib_state_equal a b
        (* A FIB entry preserved across our own graceful restart is
           deliberately not derivable from the (empty) RIBs yet. *)
        | None, Some _ -> Hashtbl.mem t.fib_stale p
        | Some _, None -> false
      in
      let prefix = prefix_of p in
      let fib_div = if fib_ok then [] else [ Stale_fib { prefix } ] in
      let advert_divs =
        List.filter_map
          (fun (peer, want) ->
            (* Nothing can be advertised to a peer with no open session, so
               its mirrored Adj-RIB-Out cannot be stale. *)
            if up_sessions t peer = [] then None
            else
              let sent =
                Option.bind (Hashtbl.find_opt t.rib_out peer) (fun table ->
                    Hashtbl.find_opt table p)
              in
              let ok =
                match (sent, want) with
                | None, None -> true
                | Some a, Some b -> Net.Attr.equal a b
                | None, Some _ | Some _, None -> false
              in
              if ok then None else Some (Stale_advert { prefix; peer }))
          d.d_adverts
      in
      fib_div @ advert_divs)
    (known_pids t)

(* ---------------- Transitions ---------------- *)

let originate t env prefix attr =
  let p = pid prefix in
  Hashtbl.replace t.origin_table p (Net.Attr.intern attr);
  evaluate_pids t env [ p ]

let withdraw_origin t env prefix =
  let p = pid prefix in
  Hashtbl.remove t.origin_table p;
  Hashtbl.remove t.fib_table p;
  evaluate_pids t env [ p ]

(* Removes routes from (peer, session) whose stale mark is at or before
   [before], then re-evaluates the affected prefixes. This is the RFC 4724
   stale-path sweep; [before = infinity] sweeps everything still marked
   (End-of-RIB), a finite bound lets the timer sweep only marks from the
   session loss that scheduled it, not routes re-marked by a later flap. *)
let sweep_stale t env ~peer ~session ~before : outbox =
  let victims =
    Hashtbl.fold
      (fun (p, pr, s) marked_at acc ->
        if pr = peer && s = session && marked_at <= before then p :: acc
        else acc)
      t.stale []
    |> List.sort_uniq pid_compare
  in
  List.iter
    (fun p ->
      Hashtbl.remove t.stale (p, peer, session);
      Obs.Metrics.incr m_stale_swept;
      match Hashtbl.find_opt t.rib_in p with
      | None -> ()
      | Some table -> Hashtbl.remove table (peer, session))
    victims;
  evaluate_pids t env victims

(* ---------------- Incremental receive skips ----------------

   Every skip below must be a *proof* that re-running the decision would
   change nothing — no FIB update, no Adj-RIB-Out change, no message — so
   that Incremental mode stays bit-identical to the Full_table oracle
   (which re-decides unconditionally, as the seed implementation did).
   All skips require native hooks: an RPA hook may consult simulated time
   or live-peer counts, so for it no two decision runs are provably equal
   even on identical RIBs. *)

(* Under native hooks, a locally-originated prefix's outputs (FIB = Local,
   adverts derived from the origin attributes) never read the Adj-RIB-In,
   so learned-route churn on it cannot change anything. *)
let origin_shadows t p =
  Rib_policy.is_native t.hooks && Hashtbl.mem t.origin_table p

let selected_entries t p =
  match Hashtbl.find_opt t.fib_table p with
  | Some (Entries entries) when not (Hashtbl.mem t.fib_stale p) -> Some entries
  | Some (Entries _ | Local) | None -> None

let in_selection entries ~peer ~session =
  List.exists (fun e -> e.next_hop = peer && e.session = session) entries

(* The post-policy candidate attributes of one currently-selected entry:
   the reference point for "does this new path displace the selection?". *)
let selected_member_path t p (m : entry) =
  match Hashtbl.find_opt t.rib_in p with
  | None -> None
  | Some table ->
    (match Hashtbl.find_opt table (m.next_hop, m.session) with
     | None -> None
     | Some raw ->
       let policy =
         Option.value (Hashtbl.find_opt t.ingress m.next_hop)
           ~default:Policy.empty
       in
       Option.map
         (fun attr -> Path.make ~peer:m.next_hop ~session:m.session ~attr)
         (Policy.apply policy ~self:(asn t) (prefix_of p) raw))

(* A changed (or new) route that is not currently selected and strictly
   loses to the selection — without tying into the equal-cost set — leaves
   best path, selected set, weights, and every advert untouched. This is
   the classic incremental-BGP "worse path for a non-best route" rule. *)
let update_cannot_affect t p ~peer ~session attr =
  origin_shadows t p
  || (Rib_policy.is_native t.hooks
     &&
     match selected_entries t p with
     | None -> false
     | Some ([] as _entries) -> false
     | Some (m :: _ as entries) ->
       (not (in_selection entries ~peer ~session))
       &&
       let own_asn = asn t in
       if Net.As_path.mem own_asn attr.Net.Attr.as_path then
         true (* loop-rejected: not a candidate, and was not selected *)
       else
         let policy =
           Option.value (Hashtbl.find_opt t.ingress peer) ~default:Policy.empty
         in
         (match Policy.apply policy ~self:own_asn (prefix_of p) attr with
          | None -> true (* policy-rejected: not a candidate *)
          | Some cand_attr ->
            (match selected_member_path t p m with
             | None -> false (* selection not re-derivable: decide *)
             | Some sel_path ->
               let cand = Path.make ~peer ~session ~attr:cand_attr in
               Decision.preference_compare cand sel_path > 0
               && not (Decision.equal_cost cand sel_path))))

(* Removing a route that is not in the selected set (or any route while
   nothing is selected — candidates can only shrink) changes nothing. *)
let withdraw_cannot_affect t p ~peer ~session =
  origin_shadows t p
  || (Rib_policy.is_native t.hooks
     &&
     match Hashtbl.find_opt t.fib_table p with
     | None -> true
     | Some Local -> false (* unreachable without an origin entry; decide *)
     | Some (Entries entries) ->
       (not (Hashtbl.mem t.fib_stale p))
       && not (in_selection entries ~peer ~session))

let receive t env ~peer ~session msg =
  match msg with
  | Msg.Keepalive -> [] (* liveness only; the network layer tracks arrival *)
  | Msg.Eor ->
    (* End-of-RIB: the peer has resent its full table; any route still
       marked stale was not refreshed and is gone for good. *)
    Obs.Metrics.incr m_eor_received;
    sweep_stale t env ~peer ~session ~before:infinity
  | Msg.Update { prefix; attr } ->
    let p = pid prefix in
    let attr = Net.Attr.intern attr in
    let table =
      match Hashtbl.find_opt t.rib_in p with
      | Some table -> table
      | None ->
        let table = Hashtbl.create 8 in
        Hashtbl.replace t.rib_in p table;
        table
    in
    (* Two skip proofs, both Incremental-only (the oracle re-decides):
       - unchanged attributes: the route was a candidate before (live, or
         stale over a down session) and is the same candidate after.
         Session re-establishments resend whole unchanged tables, making
         this the single biggest decision-count saving. The one case where
         clearing the stale mark itself changes candidacy is a refresh over
         a still-down session (stale = candidate, refreshed-but-down =
         filtered out), so that combination re-decides.
       - changed attributes that provably cannot displace the current
         selection ([update_cannot_affect]). Only consulted with the
         session up — down-session refreshes interact with staleness. *)
    let skip =
      t.mode = Incremental
      && Rib_policy.is_native t.hooks
      && (match Hashtbl.find_opt table (peer, session) with
          | Some previous when Net.Attr.equal previous attr ->
            session_up t ~peer ~session
            || not (Hashtbl.mem t.stale (p, peer, session))
          | Some _ | None ->
            session_up t ~peer ~session
            && update_cannot_affect t p ~peer ~session attr)
    in
    Hashtbl.replace table (peer, session) attr;
    Hashtbl.remove t.stale (p, peer, session);
    if skip then [] else evaluate_pids t env [ p ]
  | Msg.Withdraw { prefix } ->
    let p = pid prefix in
    let had_route =
      match Hashtbl.find_opt t.rib_in p with
      | Some table ->
        let had = Hashtbl.mem table (peer, session) in
        Hashtbl.remove table (peer, session);
        had
      | None -> false
    in
    let had_mark = Hashtbl.mem t.stale (p, peer, session) in
    Hashtbl.remove t.stale (p, peer, session);
    let skip =
      t.mode = Incremental
      && (((not had_route) && not had_mark)
         || (session_up t ~peer ~session
            && (not had_mark)
            && withdraw_cannot_affect t p ~peer ~session))
    in
    if skip then [] else evaluate_pids t env [ p ]

let set_session ?(stale = false) t env ~peer ~session ~up =
  let new_peer = not (Hashtbl.mem t.session_count peer) in
  if new_peer then add_peer t ~peer ~sessions:0;
  let count = Hashtbl.find t.session_count peer in
  if session >= count then Hashtbl.replace t.session_count peer (session + 1);
  let was = session_up t ~peer ~session in
  Hashtbl.replace t.session_state (peer, session) up;
  if up = was then []
  else begin
    if not up then begin
      if stale then
        (* Graceful restart, receiver side: keep the routes as forwarding
           candidates but mark them stale (timestamped, so a later sweep
           only collects marks from this loss). The candidate set is
           unchanged — stale routes select exactly as live ones — so no
           native decision can change and nothing needs to go dirty. *)
        Hashtbl.iter
          (fun p table ->
            if Hashtbl.mem table (peer, session) then begin
              Hashtbl.replace t.stale (p, peer, session) env.now;
              Obs.Metrics.incr m_stale_marked
            end)
          t.rib_in
      else
        (* Hard session reset flushes routes learned over it; each flushed
           prefix must be re-decided. *)
        Hashtbl.iter
          (fun p table ->
            if Hashtbl.mem table (peer, session) then begin
              Hashtbl.remove table (peer, session);
              Hashtbl.remove t.stale (p, peer, session);
              mark_dirty t p
            end)
          t.rib_in
    end;
    (* A peer first seen here widens every prefix's advertisement fan-out. *)
    if new_peer then mark_all_dirty t;
    batch_invalidate t;
    let outbox = evaluate_batch t env in
    if up then begin
      (* Refresh: resend the mirrored Adj-RIB-Out over the new session, in
         canonical prefix order (the mirror is current — see [rib_out]). *)
      let resend =
        match Hashtbl.find_opt t.rib_out peer with
        | None -> []
        | Some table ->
          Hashtbl.fold (fun p attr acc -> (p, attr) :: acc) table []
          |> List.sort (fun (a, _) (b, _) -> pid_compare a b)
          |> List.map (fun (p, attr) ->
                 (peer, session, Msg.Update { prefix = prefix_of p; attr }))
      in
      (* Duplicates with messages already in [outbox] are harmless: updates
         are idempotent on the receiver. After the full resend, a
         graceful-restart speaker signals End-of-RIB so the receiver can
         sweep routes that were not refreshed. *)
      let eor = if t.graceful_restart then [ (peer, session, Msg.Eor) ] else [] in
      outbox @ resend @ eor
    end
    else outbox
  end

let reset t =
  Hashtbl.reset t.rib_in;
  Hashtbl.reset t.rib_out;
  Hashtbl.reset t.stale;
  Hashtbl.reset t.dirty;
  (* Locally originated prefixes are configuration, not learned state; they
     survive the crash (and are re-advertised once sessions come back). *)
  let learned =
    Hashtbl.fold
      (fun p state acc ->
        match state with Local -> acc | Entries _ -> p :: acc)
      t.fib_table []
  in
  if t.graceful_restart then
    (* Restarting-speaker side of RFC 4724: the forwarding plane is
       preserved across the control-plane restart. Learned entries stay
       installed, marked stale until re-derived from fresh RIBs or swept. *)
    List.iter (fun p -> Hashtbl.replace t.fib_stale p ()) learned
  else begin
    Hashtbl.reset t.fib_stale;
    List.iter (Hashtbl.remove t.fib_table) learned
  end;
  let sessions = Hashtbl.fold (fun k _ acc -> k :: acc) t.session_state [] in
  List.iter (fun k -> Hashtbl.replace t.session_state k false) sessions;
  (* Everything the speaker still knows must be re-decided when sessions
     come back: origins re-advertised into the (now empty) Adj-RIB-Out
     mirror, preserved FIB entries re-derived or swept. *)
  mark_all_dirty t

(* Expires FIB entries preserved across our own restart that were never
   re-learned (stale-path timer on the restarting speaker). *)
let sweep_own_stale t env : outbox =
  let victims =
    Hashtbl.fold (fun p () acc -> p :: acc) t.fib_stale [] |> sort_pids
  in
  Hashtbl.reset t.fib_stale;
  List.iter (fun _ -> Obs.Metrics.incr m_stale_swept) victims;
  evaluate_pids t env victims

let set_ingress_policy t env ~peer policy =
  Hashtbl.replace t.ingress peer policy;
  (* Only routes learned from [peer] pass through this policy: prefixes
     without an Adj-RIB-In entry from it cannot change. *)
  Hashtbl.iter
    (fun p table ->
      if Hashtbl.fold (fun (pr, _) _ acc -> acc || pr = peer) table false then
        mark_dirty t p)
    t.rib_in;
  batch_invalidate t;
  evaluate_batch t env

let set_egress_policy t env ~peer policy =
  Hashtbl.replace t.egress peer policy;
  (* An export policy can newly admit or suppress any prefix's advert. *)
  mark_all_dirty t;
  evaluate_batch t env

let set_egress_policy_all t env policy =
  t.egress_all <- policy;
  mark_all_dirty t;
  evaluate_batch t env

let set_hooks t env hooks =
  t.hooks <- hooks;
  mark_all_dirty t;
  evaluate_batch t env

(* ---------------- Inspection ---------------- *)

let fib t =
  Hashtbl.fold (fun p state acc -> (prefix_of p, state) :: acc) t.fib_table []
  |> List.sort (fun (a, _) (b, _) -> Net.Prefix.compare a b)

let fib_lookup t prefix = Hashtbl.find_opt t.fib_table (pid prefix)

let fib_longest_match t destination =
  Hashtbl.fold
    (fun p state best ->
      let prefix = prefix_of p in
      if Net.Prefix.contains prefix destination then
        match best with
        | Some (bp, _)
          when Net.Prefix.mask_length bp >= Net.Prefix.mask_length prefix ->
          best
        | Some _ | None -> Some (prefix, state)
      else best)
    t.fib_table None

let adj_rib_in = raw_routes

let ingress_policy t ~peer = Hashtbl.find_opt t.ingress peer

let rib_in_size t =
  Hashtbl.fold (fun _ table acc -> acc + Hashtbl.length table) t.rib_in 0

let advertised_to t ~peer =
  match Hashtbl.find_opt t.rib_out peer with
  | None -> []
  | Some table ->
    Hashtbl.fold (fun p attr acc -> (prefix_of p, attr) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> Net.Prefix.compare a b)

let originated t =
  Hashtbl.fold (fun p attr acc -> (prefix_of p, attr) :: acc) t.origin_table []
  |> List.sort (fun (a, _) (b, _) -> Net.Prefix.compare a b)

let stale_routes t =
  Hashtbl.fold
    (fun (p, peer, session) marked_at acc ->
      (prefix_of p, peer, session, marked_at) :: acc)
    t.stale []
  |> List.sort (fun (p1, pe1, s1, _) (p2, pe2, s2, _) ->
         let c = Net.Prefix.compare p1 p2 in
         if c <> 0 then c
         else
           let c = Int.compare pe1 pe2 in
           if c <> 0 then c else Int.compare s1 s2)

let fib_stale_prefixes t =
  Hashtbl.fold (fun p () acc -> p :: acc) t.fib_stale []
  |> sort_pids |> List.map prefix_of

let routes_from t ~peer ~session =
  Hashtbl.fold
    (fun p table acc ->
      match Hashtbl.find_opt table (peer, session) with
      | Some attr -> (prefix_of p, attr) :: acc
      | None -> acc)
    t.rib_in []
  |> List.sort (fun (a, _) (b, _) -> Net.Prefix.compare a b)
