(* Observability instruments (shared registry; no-ops until enabled). *)
let m_decisions = Obs.Metrics.counter "bgp.speaker.decisions"
let m_adverts = Obs.Metrics.counter "bgp.speaker.advertisements"
let m_withdraws = Obs.Metrics.counter "bgp.speaker.withdrawals"
let m_stale_marked = Obs.Metrics.counter "bgp.gr.routes_marked_stale"
let m_stale_swept = Obs.Metrics.counter "bgp.gr.routes_swept"
let m_eor_received = Obs.Metrics.counter "bgp.gr.eor_received"

type config = {
  multipath : bool;
  wcmp : bool;
  default_local_pref : int;
}

let default_config = { multipath = true; wcmp = false; default_local_pref = 100 }

type fib_state =
  | Local
  | Entries of entry list

and entry = { next_hop : int; session : int; weight : int }

type env = { now : float; peer_layer : int -> Topology.Node.layer option }

type t = {
  node : Topology.Node.t;
  config : config;
  mutable hooks : Rib_policy.hooks;
  (* prefix -> (peer, session) -> raw received attributes *)
  rib_in : (Net.Prefix.t, (int * int, Net.Attr.t) Hashtbl.t) Hashtbl.t;
  origin_table : (Net.Prefix.t, Net.Attr.t) Hashtbl.t;
  ingress : (int, Policy.t) Hashtbl.t;
  egress : (int, Policy.t) Hashtbl.t;
  mutable egress_all : Policy.t;
  fib_table : (Net.Prefix.t, fib_state) Hashtbl.t;
  (* peer -> prefix -> last advertised attributes *)
  rib_out : (int, (Net.Prefix.t, Net.Attr.t) Hashtbl.t) Hashtbl.t;
  session_count : (int, int) Hashtbl.t;
  session_state : (int * int, bool) Hashtbl.t;
  mutable graceful_restart : bool;
  (* (prefix, peer, session) -> time the route was marked stale. A stale
     route stays a forwarding candidate (RFC 4724 receiver side) until it is
     refreshed by an Update, swept by an End-of-RIB, or expired by the
     stale-path timer. *)
  stale : (Net.Prefix.t * int * int, float) Hashtbl.t;
  (* Learned FIB prefixes preserved across our own restart (restarting
     speaker side of graceful restart): forwarding state survives the crash
     even though the RIBs that justified it are gone, until re-learned or
     swept. *)
  fib_stale : (Net.Prefix.t, unit) Hashtbl.t;
}

type outbox = (int * int * Msg.t) list

let create ?(config = default_config) ?(hooks = Rib_policy.native) node =
  {
    node;
    config;
    hooks;
    rib_in = Hashtbl.create 64;
    origin_table = Hashtbl.create 8;
    ingress = Hashtbl.create 8;
    egress = Hashtbl.create 8;
    egress_all = Policy.empty;
    fib_table = Hashtbl.create 64;
    rib_out = Hashtbl.create 8;
    session_count = Hashtbl.create 8;
    session_state = Hashtbl.create 16;
    graceful_restart = false;
    stale = Hashtbl.create 16;
    fib_stale = Hashtbl.create 8;
  }

let set_graceful_restart t enabled = t.graceful_restart <- enabled
let graceful_restart t = t.graceful_restart

let node t = t.node
let id t = t.node.Topology.Node.id
let asn t = t.node.Topology.Node.asn
let hooks t = t.hooks

(* ---------------- Peering ---------------- *)

let add_peer t ~peer ~sessions =
  Hashtbl.replace t.session_count peer sessions;
  for s = 0 to sessions - 1 do
    Hashtbl.replace t.session_state (peer, s) true
  done

let session_up t ~peer ~session =
  match Hashtbl.find_opt t.session_state (peer, session) with
  | Some up -> up
  | None -> false

let up_sessions t peer =
  match Hashtbl.find_opt t.session_count peer with
  | None -> []
  | Some n ->
    List.filter (fun s -> session_up t ~peer ~session:s) (List.init n Fun.id)

let peers t =
  Hashtbl.fold
    (fun peer _count acc ->
      match up_sessions t peer with
      | [] -> acc
      | up -> (peer, List.length up) :: acc)
    t.session_count []
  |> List.sort compare

(* ---------------- Context ---------------- *)

let make_ctx t env prefix : Rib_policy.ctx =
  {
    Rib_policy.device = id t;
    prefix;
    now = env.now;
    peer_layer = env.peer_layer;
    live_peers_in_layer =
      (fun layer ->
        List.length
          (List.filter
             (fun (peer, _) ->
               match env.peer_layer peer with
               | Some l -> Topology.Node.layer_equal l layer
               | None -> false)
             (peers t)));
  }

(* ---------------- Candidate gathering ---------------- *)

let raw_routes t prefix =
  match Hashtbl.find_opt t.rib_in prefix with
  | None -> []
  | Some table ->
    Hashtbl.fold (fun (peer, session) attr acc -> (peer, session, attr) :: acc)
      table []
    |> List.sort compare

let is_stale t prefix ~peer ~session = Hashtbl.mem t.stale (prefix, peer, session)

let post_policy_candidates t env prefix ~use_hooks =
  let ctx = make_ctx t env prefix in
  let own_asn = asn t in
  List.filter_map
    (fun (peer, session, raw_attr) ->
      (* A stale route (graceful restart) remains a forwarding candidate
         while its session is down: the whole point of RFC 4724 is to keep
         forwarding on last-known-good state until resync or sweep. *)
      if
        (not (session_up t ~peer ~session))
        && not (is_stale t prefix ~peer ~session)
      then None
      else if Net.As_path.mem own_asn raw_attr.Net.Attr.as_path then
        None (* standard AS-path loop prevention *)
      else
        let policy =
          Option.value (Hashtbl.find_opt t.ingress peer) ~default:Policy.empty
        in
        match Policy.apply policy ~self:own_asn prefix raw_attr with
        | None -> None
        | Some attr ->
          if use_hooks && not (t.hooks.Rib_policy.ingress_accept ctx ~peer attr)
          then None
          else Some (Path.make ~peer ~session ~attr))
    (raw_routes t prefix)

let candidates t prefix =
  let env = { now = 0.0; peer_layer = (fun _ -> None) } in
  post_policy_candidates t env prefix ~use_hooks:false

(* ---------------- Weights ---------------- *)

let native_weight t (path : Path.t) =
  if t.config.wcmp then
    max 1 (Option.value path.attr.Net.Attr.link_bandwidth ~default:1)
  else 1

let weighted_entries t ctx selected =
  let weighted =
    match t.hooks.Rib_policy.weights ctx ~selected with
    | Some pairs -> pairs
    | None -> List.map (fun p -> (p, native_weight t p)) selected
  in
  List.map
    (fun ((p : Path.t), w) ->
      { next_hop = p.peer; session = p.session; weight = max 1 w })
    weighted

(* ---------------- Advertisement ---------------- *)

let prepare_advert t attr ~total_weight =
  let attr = Net.Attr.with_prepended (asn t) attr in
  let attr = Net.Attr.set_local_pref t.config.default_local_pref attr in
  if t.config.wcmp then Net.Attr.set_link_bandwidth (Some total_weight) attr
  else Net.Attr.set_link_bandwidth None attr

let rib_out_for t peer =
  match Hashtbl.find_opt t.rib_out peer with
  | Some table -> table
  | None ->
    let table = Hashtbl.create 16 in
    Hashtbl.replace t.rib_out peer table;
    table

(* Computes the desired advertisement toward [peer] and emits messages if it
   differs from what was last sent. *)
let advertise_to t prefix ~peer ~desired : outbox =
  let table = rib_out_for t peer in
  let previous = Hashtbl.find_opt table prefix in
  let changed =
    match (previous, desired) with
    | None, None -> false
    | Some a, Some b -> not (Net.Attr.equal a b)
    | None, Some _ | Some _, None -> true
  in
  if not changed then []
  else begin
    (match desired with
     | Some attr -> Hashtbl.replace table prefix attr
     | None -> Hashtbl.remove table prefix);
    let msg =
      match desired with
      | Some attr ->
        Obs.Metrics.incr m_adverts;
        Msg.Update { prefix; attr }
      | None ->
        Obs.Metrics.incr m_withdraws;
        Msg.Withdraw { prefix }
    in
    List.map (fun session -> (peer, session, msg)) (up_sessions t peer)
  end

let all_peer_ids t =
  Hashtbl.fold (fun peer _ acc -> peer :: acc) t.session_count []
  |> List.sort compare

let desired_advert t ctx prefix ~peer ~(adv : Path.t option) ~total_weight =
  match adv with
  | None -> None
  | Some path ->
    if path.Path.peer = peer then None (* split horizon *)
    else begin
      let own_asn = asn t in
      let peer_policy =
        Option.value (Hashtbl.find_opt t.egress peer) ~default:Policy.empty
      in
      match Policy.apply peer_policy ~self:own_asn prefix path.Path.attr with
      | None -> None
      | Some attr ->
        (match Policy.apply t.egress_all ~self:own_asn prefix attr with
         | None -> None
         | Some attr ->
           if not (t.hooks.Rib_policy.egress_accept ctx ~peer attr) then None
           else Some (prepare_advert t attr ~total_weight))
    end

(* ---------------- Evaluation ---------------- *)

let total_weight_of_fib = function
  | Some (Entries entries) ->
    List.fold_left (fun acc e -> acc + e.weight) 0 entries
  | Some Local | None -> 1

(* The full desired state for one prefix: what the FIB should hold and what
   each peer should have been told. Computed without mutating the speaker,
   so it serves both the state transition (via [commit]) and the runtime
   invariant checker (via [divergences], which compares it against the
   installed state). *)
type desired = {
  d_fib : fib_state option;
  d_adverts : (int * Net.Attr.t option) list;
}

let compute t env prefix : desired =
  Obs.Metrics.incr m_decisions;
  Obs.Span.with_span "speaker.decision"
    ~attrs:(fun () ->
      [
        ("device", string_of_int (id t));
        ("prefix", Net.Prefix.to_string prefix);
      ])
  @@ fun () ->
  let ctx = make_ctx t env prefix in
  match Hashtbl.find_opt t.origin_table prefix with
  | Some origin_attr ->
    (* Locally originated: FIB is Local; advertise to every peer. *)
    let self_path = Path.make ~peer:(id t) ~session:(-1) ~attr:origin_attr in
    {
      d_fib = Some Local;
      d_adverts =
        List.map
          (fun peer ->
            ( peer,
              desired_advert t ctx prefix ~peer ~adv:(Some self_path)
                ~total_weight:1 ))
          (all_peer_ids t);
    }
  | None ->
    let cands = post_policy_candidates t env prefix ~use_hooks:true in
    let native = Decision.select ~multipath:t.config.multipath cands in
    let sel = t.hooks.Rib_policy.select ctx ~candidates:cands ~native in
    let d_fib =
      match sel.Rib_policy.selected with
      | [] -> None
      | selected -> Some (Entries (weighted_entries t ctx selected))
    in
    let total_weight = total_weight_of_fib d_fib in
    {
      d_fib;
      d_adverts =
        List.map
          (fun peer ->
            ( peer,
              desired_advert t ctx prefix ~peer ~adv:sel.Rib_policy.advertise
                ~total_weight ))
          (all_peer_ids t);
    }

let commit t prefix desired : outbox =
  (match desired.d_fib with
   | Some state ->
     Hashtbl.replace t.fib_table prefix state;
     (* Fresh routing state supersedes any preserved-across-restart entry. *)
     Hashtbl.remove t.fib_stale prefix
   | None ->
     (* After our own graceful restart the FIB entry outlives its RIBs:
        keep forwarding on the preserved entry until it is either
        re-learned (Some above) or expired by the stale-path sweep. *)
     if not (Hashtbl.mem t.fib_stale prefix) then
       Hashtbl.remove t.fib_table prefix);
  List.concat_map
    (fun (peer, d) -> advertise_to t prefix ~peer ~desired:d)
    desired.d_adverts

let evaluate t env prefix : outbox = commit t prefix (compute t env prefix)

let known_prefixes t =
  let set = Hashtbl.create 64 in
  Hashtbl.iter (fun p _ -> Hashtbl.replace set p ()) t.rib_in;
  Hashtbl.iter (fun p _ -> Hashtbl.replace set p ()) t.origin_table;
  Hashtbl.iter (fun p _ -> Hashtbl.replace set p ()) t.fib_table;
  Hashtbl.iter
    (fun _ table -> Hashtbl.iter (fun p _ -> Hashtbl.replace set p ()) table)
    t.rib_out;
  Hashtbl.fold (fun p () acc -> p :: acc) set []
  |> List.sort Net.Prefix.compare

let evaluate_all t env : outbox =
  List.concat_map (evaluate t env) (known_prefixes t)

(* ---------------- Divergence (invariant support) ---------------- *)

type divergence =
  | Stale_fib of { prefix : Net.Prefix.t }
  | Stale_advert of { prefix : Net.Prefix.t; peer : int }

let fib_state_equal a b =
  match (a, b) with
  | Local, Local -> true
  | Entries xs, Entries ys -> xs = ys
  | Local, Entries _ | Entries _, Local -> false

let divergences t env =
  List.concat_map
    (fun prefix ->
      let d = compute t env prefix in
      let fib_ok =
        match (d.d_fib, Hashtbl.find_opt t.fib_table prefix) with
        | None, None -> true
        | Some a, Some b -> fib_state_equal a b
        (* A FIB entry preserved across our own graceful restart is
           deliberately not derivable from the (empty) RIBs yet. *)
        | None, Some _ -> Hashtbl.mem t.fib_stale prefix
        | Some _, None -> false
      in
      let fib_div = if fib_ok then [] else [ Stale_fib { prefix } ] in
      let advert_divs =
        List.filter_map
          (fun (peer, want) ->
            (* A peer with no open session has had its rib_out forgotten;
               nothing can be advertised to it, so it cannot be stale. *)
            if up_sessions t peer = [] then None
            else
              let sent =
                Option.bind (Hashtbl.find_opt t.rib_out peer) (fun table ->
                    Hashtbl.find_opt table prefix)
              in
              let ok =
                match (sent, want) with
                | None, None -> true
                | Some a, Some b -> Net.Attr.equal a b
                | None, Some _ | Some _, None -> false
              in
              if ok then None else Some (Stale_advert { prefix; peer }))
          d.d_adverts
      in
      fib_div @ advert_divs)
    (known_prefixes t)

(* ---------------- Transitions ---------------- *)

let originate t env prefix attr =
  Hashtbl.replace t.origin_table prefix attr;
  evaluate t env prefix

let withdraw_origin t env prefix =
  Hashtbl.remove t.origin_table prefix;
  Hashtbl.remove t.fib_table prefix;
  evaluate t env prefix

(* Removes routes from (peer, session) whose stale mark is at or before
   [before], then re-evaluates the affected prefixes. This is the RFC 4724
   stale-path sweep; [before = infinity] sweeps everything still marked
   (End-of-RIB), a finite bound lets the timer sweep only marks from the
   session loss that scheduled it, not routes re-marked by a later flap. *)
let sweep_stale t env ~peer ~session ~before : outbox =
  let victims =
    Hashtbl.fold
      (fun (prefix, p, s) marked_at acc ->
        if p = peer && s = session && marked_at <= before then prefix :: acc
        else acc)
      t.stale []
    |> List.sort_uniq Net.Prefix.compare
  in
  List.iter
    (fun prefix ->
      Hashtbl.remove t.stale (prefix, peer, session);
      Obs.Metrics.incr m_stale_swept;
      match Hashtbl.find_opt t.rib_in prefix with
      | None -> ()
      | Some table -> Hashtbl.remove table (peer, session))
    victims;
  List.concat_map (evaluate t env) victims

let receive t env ~peer ~session msg =
  match msg with
  | Msg.Keepalive -> [] (* liveness only; the network layer tracks arrival *)
  | Msg.Eor ->
    (* End-of-RIB: the peer has resent its full table; any route still
       marked stale was not refreshed and is gone for good. *)
    Obs.Metrics.incr m_eor_received;
    sweep_stale t env ~peer ~session ~before:infinity
  | Msg.Update { prefix; attr } ->
    let table =
      match Hashtbl.find_opt t.rib_in prefix with
      | Some table -> table
      | None ->
        let table = Hashtbl.create 8 in
        Hashtbl.replace t.rib_in prefix table;
        table
    in
    Hashtbl.replace table (peer, session) attr;
    Hashtbl.remove t.stale (prefix, peer, session);
    evaluate t env prefix
  | Msg.Withdraw { prefix } ->
    (match Hashtbl.find_opt t.rib_in prefix with
     | Some table -> Hashtbl.remove table (peer, session)
     | None -> ());
    Hashtbl.remove t.stale (prefix, peer, session);
    evaluate t env prefix

let set_session ?(stale = false) t env ~peer ~session ~up =
  if not (Hashtbl.mem t.session_count peer) then add_peer t ~peer ~sessions:0;
  let count = Hashtbl.find t.session_count peer in
  if session >= count then Hashtbl.replace t.session_count peer (session + 1);
  let was = session_up t ~peer ~session in
  Hashtbl.replace t.session_state (peer, session) up;
  if up = was then []
  else begin
    if not up then begin
      if stale then
        (* Graceful restart, receiver side: keep the routes as forwarding
           candidates but mark them stale (timestamped, so a later sweep
           only collects marks from this loss). *)
        Hashtbl.iter
          (fun prefix table ->
            if Hashtbl.mem table (peer, session) then begin
              Hashtbl.replace t.stale (prefix, peer, session) env.now;
              Obs.Metrics.incr m_stale_marked
            end)
          t.rib_in
      else begin
        (* Hard session reset flushes routes learned over it. *)
        Hashtbl.iter
          (fun prefix table ->
            Hashtbl.remove table (peer, session);
            Hashtbl.remove t.stale (prefix, peer, session))
          t.rib_in
      end;
      (* If the peer has no remaining sessions, forget advertised state so a
         later re-establishment resends the table. *)
      if up_sessions t peer = [] then Hashtbl.remove t.rib_out peer
    end;
    let outbox = evaluate_all t env in
    if up then begin
      (* Refresh: resend the current table over the new session. *)
      let resend =
        match Hashtbl.find_opt t.rib_out peer with
        | None -> []
        | Some table ->
          Hashtbl.fold
            (fun prefix attr acc ->
              (peer, session, Msg.Update { prefix; attr }) :: acc)
            table []
      in
      (* Duplicates with messages already in [outbox] are harmless: updates
         are idempotent on the receiver. After the full resend, a
         graceful-restart speaker signals End-of-RIB so the receiver can
         sweep routes that were not refreshed. *)
      let eor = if t.graceful_restart then [ (peer, session, Msg.Eor) ] else [] in
      outbox @ resend @ eor
    end
    else outbox
  end

let reset t =
  Hashtbl.reset t.rib_in;
  Hashtbl.reset t.rib_out;
  Hashtbl.reset t.stale;
  (* Locally originated prefixes are configuration, not learned state; they
     survive the crash (and are re-advertised once sessions come back). *)
  let learned =
    Hashtbl.fold
      (fun prefix state acc ->
        match state with Local -> acc | Entries _ -> prefix :: acc)
      t.fib_table []
  in
  if t.graceful_restart then
    (* Restarting-speaker side of RFC 4724: the forwarding plane is
       preserved across the control-plane restart. Learned entries stay
       installed, marked stale until re-derived from fresh RIBs or swept. *)
    List.iter (fun prefix -> Hashtbl.replace t.fib_stale prefix ()) learned
  else begin
    Hashtbl.reset t.fib_stale;
    List.iter (Hashtbl.remove t.fib_table) learned
  end;
  let sessions = Hashtbl.fold (fun k _ acc -> k :: acc) t.session_state [] in
  List.iter (fun k -> Hashtbl.replace t.session_state k false) sessions

(* Expires FIB entries preserved across our own restart that were never
   re-learned (stale-path timer on the restarting speaker). *)
let sweep_own_stale t env : outbox =
  let victims =
    Hashtbl.fold (fun prefix () acc -> prefix :: acc) t.fib_stale []
    |> List.sort Net.Prefix.compare
  in
  Hashtbl.reset t.fib_stale;
  List.iter (fun _ -> Obs.Metrics.incr m_stale_swept) victims;
  List.concat_map (evaluate t env) victims

let set_ingress_policy t env ~peer policy =
  Hashtbl.replace t.ingress peer policy;
  evaluate_all t env

let set_egress_policy t env ~peer policy =
  Hashtbl.replace t.egress peer policy;
  evaluate_all t env

let set_egress_policy_all t env policy =
  t.egress_all <- policy;
  evaluate_all t env

let set_hooks t env hooks =
  t.hooks <- hooks;
  evaluate_all t env

(* ---------------- Inspection ---------------- *)

let fib t =
  Hashtbl.fold (fun prefix state acc -> (prefix, state) :: acc) t.fib_table []
  |> List.sort (fun (a, _) (b, _) -> Net.Prefix.compare a b)

let fib_lookup t prefix = Hashtbl.find_opt t.fib_table prefix

let fib_longest_match t destination =
  Hashtbl.fold
    (fun prefix state best ->
      if Net.Prefix.contains prefix destination then
        match best with
        | Some (bp, _) when Net.Prefix.mask_length bp >= Net.Prefix.mask_length prefix
          ->
          best
        | Some _ | None -> Some (prefix, state)
      else best)
    t.fib_table None

let adj_rib_in = raw_routes

let ingress_policy t ~peer = Hashtbl.find_opt t.ingress peer

let rib_in_size t =
  Hashtbl.fold (fun _ table acc -> acc + Hashtbl.length table) t.rib_in 0

let advertised_to t ~peer =
  match Hashtbl.find_opt t.rib_out peer with
  | None -> []
  | Some table ->
    Hashtbl.fold (fun prefix attr acc -> (prefix, attr) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> Net.Prefix.compare a b)

let originated t =
  Hashtbl.fold (fun prefix attr acc -> (prefix, attr) :: acc) t.origin_table []
  |> List.sort (fun (a, _) (b, _) -> Net.Prefix.compare a b)

let stale_routes t =
  Hashtbl.fold
    (fun (prefix, peer, session) marked_at acc ->
      (prefix, peer, session, marked_at) :: acc)
    t.stale []
  |> List.sort compare

let fib_stale_prefixes t =
  Hashtbl.fold (fun prefix () acc -> prefix :: acc) t.fib_stale []
  |> List.sort Net.Prefix.compare

let routes_from t ~peer ~session =
  Hashtbl.fold
    (fun prefix table acc ->
      match Hashtbl.find_opt table (peer, session) with
      | Some attr -> (prefix, attr) :: acc
      | None -> acc)
    t.rib_in []
  |> List.sort (fun (a, _) (b, _) -> Net.Prefix.compare a b)
