(** A single BGP speaker: RIBs, decision process, FIB, advertisement.

    The speaker is a deterministic state machine: feeding it a message (or a
    local event such as an origination, a session flap, a policy or RPA
    change) returns the set of messages it wants to send. Scheduling and
    delivery of those messages is the job of {!Network}; keeping transport
    out of the speaker makes unit testing the protocol logic trivial. *)

type config = {
  multipath : bool;  (** ECMP across equal-cost paths (default true) *)
  wcmp : bool;
      (** derive weights from the link-bandwidth community and re-advertise
          aggregate capacity downstream (default false) *)
  default_local_pref : int;
}

val default_config : config

(** What the FIB holds for a prefix. *)
type fib_state =
  | Local  (** the prefix is originated here *)
  | Entries of entry list
      (** weighted next hops; an empty list never appears — a prefix with no
          entries is simply absent from the FIB *)

and entry = { next_hop : int; session : int; weight : int }

val fib_state_equal : fib_state -> fib_state -> bool
(** Typed structural equality (no polymorphic compare). *)

type t

val create : ?config:config -> ?hooks:Rib_policy.hooks -> Topology.Node.t -> t

val node : t -> Topology.Node.t
val id : t -> int
val asn : t -> Net.Asn.t
val hooks : t -> Rib_policy.hooks

(** {1 Peering} *)

val add_peer : t -> peer:int -> sessions:int -> unit
val peers : t -> (int * int) list
(** (peer id, session count) for peers with at least one open session. *)

val session_up : t -> peer:int -> session:int -> bool
(** Is this session established? *)

(** A batch of messages to transmit, produced by every state transition. *)
type outbox = (int * int * Msg.t) list
(** (peer, session, message) *)

(** {1 State transitions}

    Each returns the messages to send. [ctx_of] is supplied by the network
    layer (it knows topology and virtual time). *)

type env = { now : float; peer_layer : int -> Topology.Node.layer option }

(** How batch transitions (session resets, policy pushes, resyncs) decide
    which prefixes to re-run the decision process on. *)
type eval_mode =
  | Incremental
      (** Mutations mark their prefix dirty; a transition drains the dirty
          set. Duplicate updates and no-op withdraws skip the re-decide
          entirely. The default. *)
  | Full_table
      (** Re-decide every known prefix on every transition — the original
          behavior, kept as the debug oracle. Both modes are bit-identical
          in FIBs, Adj-RIB-Outs, and emitted messages; they differ only in
          decision count. *)

val set_eval_mode : t -> eval_mode -> unit
val eval_mode : t -> eval_mode

val originate : t -> env -> Net.Prefix.t -> Net.Attr.t -> outbox
val withdraw_origin : t -> env -> Net.Prefix.t -> outbox

val receive : t -> env -> peer:int -> session:int -> Msg.t -> outbox
(** [Keepalive] is a no-op at this layer (the network tracks liveness);
    [Eor] sweeps all routes from the session still marked stale; an
    [Update] refreshes (and un-stales) the route; a [Withdraw] removes it
    and clears any stale mark. *)

val set_session :
  ?stale:bool -> t -> env -> peer:int -> session:int -> up:bool -> outbox
(** Session reset. On down, routes learned over the session are flushed —
    unless [~stale:true] (graceful restart, receiver side), in which case
    they are kept as forwarding candidates and marked stale until refreshed,
    swept by {!Msg.Eor}, or expired via {!sweep_stale}. On up, the speaker
    re-advertises its full table over the session, followed by an
    End-of-RIB marker when graceful restart is enabled. *)

val set_graceful_restart : t -> bool -> unit
(** Enables RFC 4724 semantics on this speaker: {!reset} preserves learned
    FIB entries (marked stale) instead of flushing them, and session
    re-establishment ends its resync with {!Msg.Eor}. Off by default. *)

val graceful_restart : t -> bool

val sweep_stale :
  t -> env -> peer:int -> session:int -> before:float -> outbox
(** Stale-path timer: removes routes from the session whose stale mark is at
    or before [before] and re-evaluates the affected prefixes. A finite
    [before] confines the sweep to marks from the session loss that
    scheduled it (routes re-marked by a later flap survive). *)

val sweep_own_stale : t -> env -> outbox
(** Expires FIB entries preserved across this speaker's own graceful
    restart that were never re-derived from fresh RIBs. *)

val reset : t -> unit
(** Crash the speaker: Adj-RIB-Ins, Adj-RIB-Outs, and learned FIB entries
    are cleared and every session is marked down, without emitting any
    message (a crash sends no goodbye). Configuration — originated
    prefixes, policies, hooks — survives, as does the learned FIB when
    {!set_graceful_restart} is on (preserved entries are marked stale; see
    {!sweep_own_stale}). The network layer is responsible for telling the
    peers their sessions dropped and, later, for re-establishing them. *)

val set_ingress_policy : t -> env -> peer:int -> Policy.t -> outbox
val set_egress_policy : t -> env -> peer:int -> Policy.t -> outbox
val set_egress_policy_all : t -> env -> Policy.t -> outbox
(** Applies to all current and future peers (used for drains). *)

val set_hooks : t -> env -> Rib_policy.hooks -> outbox
(** Deploying or removing an RPA re-evaluates every prefix. *)

(** {1 Inspection} *)

val fib : t -> (Net.Prefix.t * fib_state) list
val fib_lookup : t -> Net.Prefix.t -> fib_state option
(** Exact-match lookup. *)

val fib_longest_match : t -> Net.Prefix.t -> (Net.Prefix.t * fib_state) option
(** Longest-prefix match for a destination (given as a host prefix). *)

val rib_in_size : t -> int
val advertised_to : t -> peer:int -> (Net.Prefix.t * Net.Attr.t) list
val candidates : ?env:env -> t -> Net.Prefix.t -> Path.t list
(** Post-policy paths currently admitted for the prefix (before selection),
    as used by the decision process. Pass the live [env] when inspecting a
    running network so session-dependent filtering reflects simulated time;
    without it a zero-time placeholder environment is used. *)

val originated : t -> (Net.Prefix.t * Net.Attr.t) list

val is_stale : t -> Net.Prefix.t -> peer:int -> session:int -> bool
(** Is this Adj-RIB-In route currently marked stale (graceful restart)? *)

val stale_routes : t -> (Net.Prefix.t * int * int * float) list
(** Every stale-marked route as (prefix, peer, session, marked_at), sorted.
    Non-empty only transiently: at quiescence a remaining mark is a leak
    (see {!Centralium.Invariant}). *)

val fib_stale_prefixes : t -> Net.Prefix.t list
(** Prefixes whose FIB entry is preserved from before this speaker's own
    restart and not yet re-derived from fresh RIBs. *)

val routes_from : t -> peer:int -> session:int -> (Net.Prefix.t * Net.Attr.t) list
(** Raw Adj-RIB-In contents learned from one (peer, session), sorted by
    prefix — the receiver-side view that should mirror the peer's
    Adj-RIB-Out when the session is healthy. *)

val adj_rib_in : t -> Net.Prefix.t -> (int * int * Net.Attr.t) list
(** Raw routes held in the Adj-RIB-In for the prefix, as (peer, session,
    attributes) before any ingress policy, sorted. *)

val ingress_policy : t -> peer:int -> Policy.t option
(** The ingress policy installed for the peer, if any. *)

val known_prefixes : t -> Net.Prefix.t list
(** Every prefix present in any RIB (in, origin, FIB, or out), sorted. *)

(** {1 Invariant support}

    A divergence is a prefix whose installed FIB entry or advertised state
    differs from what the decision process would produce right now — i.e.
    the speaker has not (yet) converged on its own inputs. *)

type divergence =
  | Stale_fib of { prefix : Net.Prefix.t }
  | Stale_advert of { prefix : Net.Prefix.t; peer : int }

val divergences : t -> env -> divergence list
(** Recomputes the decision process for every known prefix {e without
    mutating any state} and reports mismatches against the installed FIB
    and Adj-RIB-Out. An empty list means the speaker is internally
    converged. *)
