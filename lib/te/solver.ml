(* Observability instruments (shared registry; no-ops until enabled). *)
let m_solver_runs = Obs.Metrics.counter "te.solver.runs"
let m_maxflow_checks = Obs.Metrics.counter "te.maxflow.checks"

type instance = {
  node_count : int;
  edges : (int * int * float) list;
  demands : (int * float) list;
  destination : int;
}

let total_demand instance =
  List.fold_left (fun acc (_, d) -> acc +. d) 0.0 instance.demands

type weights = int -> (int * float) list

let out_edges instance =
  let table = Hashtbl.create 64 in
  List.iter
    (fun (src, dst, cap) ->
      let cur = Option.value (Hashtbl.find_opt table src) ~default:[] in
      Hashtbl.replace table src ((dst, cap) :: cur))
    instance.edges;
  table

let ecmp_weights instance =
  let table = out_edges instance in
  fun device ->
    if device = instance.destination then []
    else
      Option.value (Hashtbl.find_opt table device) ~default:[]
      |> List.map (fun (dst, _) -> (dst, 1.0))

(* Propagates demand along weights in topological order of the weighted
   forwarding graph; cycles raise (instances are DAGs by contract). *)
let edge_loads instance weights =
  let inflow = Hashtbl.create 64 in
  let add table key v =
    Hashtbl.replace table key
      (Option.value (Hashtbl.find_opt table key) ~default:0.0 +. v)
  in
  List.iter (fun (device, demand) -> add inflow device demand) instance.demands;
  let loads = Hashtbl.create 64 in
  (* Round-based propagation bounded by node count: the graph is a DAG so
     every unit of volume advances at least one hop per round. *)
  let rounds = ref 0 in
  while Hashtbl.length inflow > 0 && !rounds <= instance.node_count + 1 do
    incr rounds;
    let next = Hashtbl.create 64 in
    Hashtbl.iter
      (fun device volume ->
        if device <> instance.destination && volume > 0.0 then begin
          match weights device with
          | [] ->
            failwith
              (Printf.sprintf
                 "Te.Solver: device %d carries traffic but has no next hops"
                 device)
          | out ->
            let weight_sum = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 out in
            List.iter
              (fun (dst, w) ->
                let share = volume *. w /. weight_sum in
                if share > 0.0 then begin
                  add loads (device, dst) share;
                  add next dst share
                end)
              out
        end)
      inflow;
    Hashtbl.reset inflow;
    Hashtbl.iter (fun device v -> Hashtbl.replace inflow device v) next
  done;
  if Hashtbl.length inflow > 0 then
    failwith "Te.Solver: propagation did not terminate (cycle in weights?)";
  loads

let max_utilization instance weights =
  let loads = edge_loads instance weights in
  List.fold_left
    (fun acc (src, dst, cap) ->
      if cap <= 0.0 then acc
      else
        let load =
          Option.value (Hashtbl.find_opt loads (src, dst)) ~default:0.0
        in
        Float.max acc (load /. cap))
    0.0 instance.edges

(* Builds the max-flow network for a utilization bound [theta]: each edge
   gets capacity [theta * cap]; a super source feeds each demand. *)
let flow_network instance theta =
  let super = instance.node_count in
  let mf = Maxflow.create ~nodes:(instance.node_count + 1) in
  List.iter
    (fun (src, dst, cap) -> Maxflow.add_edge mf ~src ~dst ~capacity:(theta *. cap))
    instance.edges;
  List.iter
    (fun (device, demand) ->
      Maxflow.add_edge mf ~src:super ~dst:device ~capacity:demand)
    instance.demands;
  (mf, super)

let feasible instance theta =
  Obs.Metrics.incr m_maxflow_checks;
  let mf, super = flow_network instance theta in
  let flow = Maxflow.max_flow mf ~source:super ~sink:instance.destination in
  (flow >= total_demand instance -. 1e-7, mf)

let optimal ?(tolerance = 1e-4) instance =
  Obs.Metrics.incr m_solver_runs;
  Obs.Span.with_span "te.solve"
    ~attrs:(fun () ->
      [
        ("nodes", string_of_int instance.node_count);
        ("edges", string_of_int (List.length instance.edges));
      ])
  @@ fun () ->
  let demand = total_demand instance in
  if demand <= 0.0 then (0.0, fun _ -> [])
  else begin
    (* Find a feasible upper bound first. *)
    let rec find_hi theta =
      if theta > 1e9 then
        failwith "Te.Solver.optimal: destination unreachable from demands"
      else
        let ok, _ = feasible instance theta in
        if ok then theta else find_hi (theta *. 2.0)
    in
    let hi = ref (find_hi 1.0) in
    let lo = ref 0.0 in
    while !hi -. !lo > tolerance *. !hi do
      let mid = (!hi +. !lo) /. 2.0 in
      let ok, _ = feasible instance mid in
      if ok then hi := mid else lo := mid
    done;
    let _, mf = feasible instance !hi in
    let ecmp = ecmp_weights instance in
    let weights device =
      if device = instance.destination then []
      else
        match Maxflow.out_flows mf device with
        | [] -> ecmp device (* no flow crossed it: any split will do *)
        | flows -> flows
    in
    (* The extracted utilization can be marginally better than the bound. *)
    let u = max_utilization instance weights in
    (u, weights)
  end

let quantize ?(levels = 64) weights device =
  match weights device with
  | [] -> []
  | out ->
    let largest = List.fold_left (fun acc (_, w) -> Float.max acc w) 0.0 out in
    if largest <= 0.0 then List.map (fun (dst, _) -> (dst, 1.0)) out
    else
      List.filter_map
        (fun (dst, w) ->
          let q = Float.round (w /. largest *. float_of_int levels) in
          (* Weights that round to zero are dropped: the hardware cannot
             express a share below 1/levels of the largest. *)
          if q < 1.0 then None else Some (dst, q))
        out

let effective_capacity instance ~max_util =
  if max_util <= 0.0 then 0.0 else total_demand instance /. max_util
