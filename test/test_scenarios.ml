(* Integration tests: every scenario figure of the paper, asserting the
   qualitative claim (native BGP exhibits the pathology; RPA removes it). *)

open Experiments

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_fig2_first_router () =
  let r = Scenarios.Fig2.run () in
  (* Native BGP: the first activated FAv2 attracts (essentially) all
     traffic. *)
  check_bool "native funnels everything" true
    (r.Scenarios.Fig2.native_fav2_share > 0.99);
  (* RPA: the new switch takes a balanced share. *)
  check_bool "rpa balances" true
    (r.Scenarios.Fig2.rpa_fav2_share
     < r.Scenarios.Fig2.balanced_share +. 0.05);
  check_bool "rpa share positive" true (r.Scenarios.Fig2.rpa_fav2_share > 0.01);
  check_bool "no loss under rpa" true (r.Scenarios.Fig2.rpa_loss < 1e-9);
  check_bool "baseline was balanced" true (r.Scenarios.Fig2.baseline_funnel < 0.3)

let test_fig4_last_router () =
  let r = Scenarios.Fig4.run () in
  (* Native: the last live FADU-1 transiently absorbs the whole group's
     traffic - several times its steady share. *)
  check_bool "native transient funnel" true
    (r.Scenarios.Fig4.native_worst_funnel
     > 3.0 *. r.Scenarios.Fig4.steady_share);
  (* The guard caps the transient well below native. *)
  check_bool "rpa caps funnel" true
    (r.Scenarios.Fig4.rpa_worst_funnel
     < r.Scenarios.Fig4.native_worst_funnel /. 2.0)

let test_fig5_nhg_explosion () =
  let r = Scenarios.Fig5.run () in
  check_bool "native explodes" true (r.Scenarios.Fig5.du_nhg_native > 4);
  check_bool "rpa stays flat" true
    (r.Scenarios.Fig5.du_nhg_rpa >= 1 && r.Scenarios.Fig5.du_nhg_rpa <= 2);
  check_int "bound is 4^8" 65536 r.Scenarios.Fig5.theoretical_bound;
  check_bool "native below bound" true
    (r.Scenarios.Fig5.du_nhg_native < r.Scenarios.Fig5.theoretical_bound)

let test_fig9_dissemination_rule () =
  let r = Scenarios.Fig9.run () in
  check_bool "best-path advertisement loops" true
    (List.length r.Scenarios.Fig9.loops_with_best_advertised > 0);
  check_bool "traffic circulates R5<->R6" true
    (r.Scenarios.Fig9.circulating_bad > 0.05);
  check_int "rule is loop-free" 0 (List.length r.Scenarios.Fig9.loops_with_rule);
  check_bool "no circulating traffic" true
    (r.Scenarios.Fig9.circulating_good < 1e-9);
  check_bool "flows actually die in the loop" true
    (r.Scenarios.Fig9.ttl_loss_bad > 0.05);
  check_bool "no ttl loss with the rule" true
    (r.Scenarios.Fig9.ttl_loss_good < 1e-9)

let test_fig10_deployment_sequencing () =
  let r = Scenarios.Fig10.run () in
  check_bool "top-down funnels" true (r.Scenarios.Fig10.funnel_top_down > 0.99);
  check_bool "bottom-up stays balanced" true
    (r.Scenarios.Fig10.funnel_bottom_up < r.Scenarios.Fig10.balanced +. 0.05)

let test_fig14_sev () =
  let r = Scenarios.Fig14.run () in
  check_bool "knob blackholes traffic" true
    (r.Scenarios.Fig14.blackholed_with_knob > 0.99);
  check_bool "without knob traffic survives" true
    (r.Scenarios.Fig14.blackholed_without_knob < 1e-9);
  check_bool "guard withheld advertisement" false
    r.Scenarios.Fig14.propagated_past_ssw

let test_fig13_te_ordering () =
  let r = Scenarios.Fig13.run ~events:20 () in
  check_bool "rpa close to ideal" true (r.Scenarios.Fig13.mean_rpa_over_ideal > 0.95);
  check_bool "ecmp clearly worse" true
    (r.Scenarios.Fig13.mean_ecmp_over_ideal
     < r.Scenarios.Fig13.mean_rpa_over_ideal -. 0.05);
  List.iter
    (fun e ->
      (* Relative slack: the ideal comes from a 1e-4-tolerance binary
         search, so coinciding comparators may cross by that margin. *)
      check_bool "per-event ordering" true
        (e.Scenarios.Fig13.ideal_capacity
         >= (e.Scenarios.Fig13.rpa_capacity *. 0.999) -. 1e-9
        && e.Scenarios.Fig13.rpa_capacity
           >= (e.Scenarios.Fig13.ecmp_capacity *. 0.999) -. 1e-9))
    r.Scenarios.Fig13.events;
  check_bool "te unblocks maintenance" true
    (r.Scenarios.Fig13.unblocked_fraction > 0.0)

let test_fig4_threshold_sweep_monotone () =
  (* Stronger guards cap the transient funnel harder (weakly monotone). *)
  let sweep =
    Scenarios.Fig4.sweep
      ~thresholds:[ None; Some 0.25; Some 0.75; Some 1.0 ] ()
  in
  let worsts = List.map snd sweep in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && non_increasing rest
    | [ _ ] | [] -> true
  in
  check_bool "monotone in threshold" true (non_increasing worsts);
  (match (worsts, List.rev worsts) with
   | first :: _, last :: _ ->
     check_bool "guard helps overall" true (last < first /. 2.0)
   | _ -> Alcotest.fail "empty sweep")

let test_fig13_quantization_sweep () =
  (* Finer link-bandwidth granularity tracks the ideal more closely. *)
  let quality levels =
    (Scenarios.Fig13.run ~events:10 ~levels ()).Scenarios.Fig13.mean_rpa_over_ideal
  in
  let coarse = quality 2 and fine = quality 64 in
  check_bool "fine beats coarse" true (fine > coarse +. 0.05);
  check_bool "fine is near-ideal" true (fine > 0.95)

let test_scenarios_deterministic () =
  let a = Scenarios.Fig2.run ~seed:7 () and b = Scenarios.Fig2.run ~seed:7 () in
  check_bool "same seed same result" true (a = b)

let test_faulted_deterministic () =
  (* Bit-determinism of the fault schedule: two runs from the same seed
     produce identical results down to the full event trace (every message,
     drop, restart, FIB change and violation, with timestamps). *)
  let a = Scenarios.Faulted.run ~seed:11 ~profile:Dsim.Fault.heavy () in
  let b = Scenarios.Faulted.run ~seed:11 ~profile:Dsim.Fault.heavy () in
  check_bool "same schedule" true
    (a.Scenarios.Faulted.schedule = b.Scenarios.Faulted.schedule);
  check_int "same event count" a.Scenarios.Faulted.events_executed
    b.Scenarios.Faulted.events_executed;
  check_bool "identical trace" true
    (a.Scenarios.Faulted.trace = b.Scenarios.Faulted.trace);
  check_bool "identical result" true (a = b);
  (* And the seed actually matters: a different seed gives a different
     history. *)
  let c = Scenarios.Faulted.run ~seed:12 ~profile:Dsim.Fault.heavy () in
  check_bool "different seed, different trace" false
    (a.Scenarios.Faulted.trace = c.Scenarios.Faulted.trace)

let test_faulted_exercises_faults () =
  let r = Scenarios.Faulted.run ~seed:3 ~profile:Dsim.Fault.heavy () in
  check_bool "schedule nonempty" true (r.Scenarios.Faulted.schedule <> []);
  check_bool "speaker restarted" true (r.Scenarios.Faulted.speaker_restarts >= 1);
  check_bool "messages were dropped" true
    (r.Scenarios.Faulted.messages_dropped > 0)

let test_faulted_clean_profile_no_violations () =
  (* With a transparent fault profile and no scheduled faults the run is an
     ordinary convergence; the monitor must observe nothing and the final
     check must come back clean. *)
  let r =
    Scenarios.Faulted.run ~seed:5 ~profile:Dsim.Fault.none ~flaps:0
      ~restarts:0 ()
  in
  check_int "no drops" 0 r.Scenarios.Faulted.messages_dropped;
  (* Mid-convergence blackholes are expected transients (routes are still
     propagating); what must never appear, even transiently, is internal
     inconsistency of a speaker. *)
  check_int "no inconsistency transients" 0
    (List.length
       (List.filter
          (fun (_, kind) ->
            kind = "unstable" || kind = "rib-inconsistency"
            || kind = "dead-next-hop")
          r.Scenarios.Faulted.transient_violations));
  check_int "no final violations" 0
    (List.length r.Scenarios.Faulted.final_violations)

let () =
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "scenarios"
    [
      ( "paper-figures",
        [
          slow "fig2 first router" test_fig2_first_router;
          slow "fig4 last router" test_fig4_last_router;
          slow "fig5 nhg explosion" test_fig5_nhg_explosion;
          slow "fig9 dissemination rule" test_fig9_dissemination_rule;
          slow "fig10 deployment sequencing" test_fig10_deployment_sequencing;
          slow "fig14 sev" test_fig14_sev;
          slow "fig13 te ordering" test_fig13_te_ordering;
          slow "fig4 threshold sweep" test_fig4_threshold_sweep_monotone;
          slow "fig13 quantization sweep" test_fig13_quantization_sweep;
          slow "deterministic" test_scenarios_deterministic;
        ] );
      ( "fault-injection",
        [
          slow "bit-deterministic from seed" test_faulted_deterministic;
          slow "faults actually fire" test_faulted_exercises_faults;
          slow "clean profile, zero violations"
            test_faulted_clean_profile_no_violations;
        ] );
    ]
