(* Cross-cutting property tests (qcheck): invariants of the decision
   process, the RPA engine, network convergence, deployment sequencing and
   the TE solver that must hold for arbitrary inputs, not just the paper's
   scenarios. *)

let asn = Net.Asn.of_int

(* ---------------- generators ---------------- *)

let path_gen =
  QCheck.Gen.(
    let* peer = int_range 1 6 in
    let* session = int_range 0 1 in
    let* local_pref = oneofl [ 50; 100; 100; 100; 200 ] in
    let* med = int_range 0 3 in
    let* len = int_range 1 5 in
    let* asns = list_repeat len (int_range 60000 60010) in
    return
      (Bgp.Path.make ~peer ~session
         ~attr:
           (Net.Attr.make ~local_pref ~med
              ~as_path:(Net.As_path.of_asns (List.map asn asns))
              ())))

let print_path p = Format.asprintf "%a" Bgp.Path.pp p

let paths_arb n =
  QCheck.make
    ~print:(fun l -> String.concat " | " (List.map print_path l))
    QCheck.Gen.(list_size (int_range 1 n) path_gen)

(* ---------------- decision process ---------------- *)

let preference_total_order =
  QCheck.Test.make ~name:"preference_compare is a total order" ~count:300
    (QCheck.pair (paths_arb 4) (paths_arb 4))
    (fun (xs, ys) ->
      let all = xs @ ys in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              let ab = Bgp.Decision.preference_compare a b in
              let ba = Bgp.Decision.preference_compare b a in
              (* antisymmetry *)
              (ab <= 0 || ba <= 0)
              && ((ab <> 0 || ba = 0)
                  &&
                  (* transitivity over every c *)
                  List.for_all
                    (fun c ->
                      let bc = Bgp.Decision.preference_compare b c in
                      let ac = Bgp.Decision.preference_compare a c in
                      not (ab <= 0 && bc <= 0) || ac <= 0)
                    all))
            all)
        all)

let select_invariants =
  QCheck.Test.make ~name:"select: subset, best membership, equal cost"
    ~count:500 (paths_arb 8) (fun candidates ->
      let selected, best = Bgp.Decision.select ~multipath:true candidates in
      match best with
      | None -> candidates = []
      | Some b ->
        List.memq b selected
        && List.for_all (fun p -> List.memq p candidates) selected
        && List.for_all (Bgp.Decision.equal_cost b) selected
        && List.for_all
             (fun p ->
               List.memq p selected || not (Bgp.Decision.equal_cost b p))
             candidates)

let least_favorable_is_maximum =
  QCheck.Test.make ~name:"least_favorable is the preference maximum" ~count:500
    (paths_arb 8) (fun paths ->
      match Bgp.Decision.least_favorable paths with
      | None -> paths = []
      | Some worst ->
        List.memq worst paths
        && List.for_all
             (fun p -> Bgp.Decision.preference_compare p worst <= 0)
             paths)

(* ---------------- path regex vs reference matcher ---------------- *)

(* A brute-force reference for the anchored subset ^(lit | .)* with
   optional star on each atom: tiny recursive matcher, obviously correct. *)
type ref_atom = R_lit of int | R_any
type ref_item = { atom : ref_atom; starred : bool }

let ref_matches items tokens =
  let atom_ok atom token =
    match atom with R_lit n -> token = n | R_any -> true
  in
  let rec go items tokens =
    match (items, tokens) with
    | [], [] -> true
    | [], _ :: _ -> false
    | { atom; starred = false } :: rest_items, token :: rest_tokens ->
      atom_ok atom token && go rest_items rest_tokens
    | { starred = false; _ } :: _, [] -> false
    | ({ atom; starred = true } :: rest_items as all), tokens ->
      go rest_items tokens
      || (match tokens with
          | token :: rest_tokens -> atom_ok atom token && go all rest_tokens
          | [] -> false)
  in
  go items tokens

let ref_to_source items =
  "^"
  ^ String.concat " "
      (List.map
         (fun { atom; starred } ->
           (match atom with R_lit n -> string_of_int n | R_any -> ".")
           ^ if starred then "*" else "")
         items)
  ^ "$"

let regex_differential =
  let item_gen =
    QCheck.Gen.(
      let* starred = bool in
      let* atom =
        oneof [ return R_any; map (fun n -> R_lit n) (int_range 1 4) ]
      in
      return { atom; starred })
  in
  let arb =
    QCheck.make
      ~print:(fun (items, tokens) ->
        Printf.sprintf "%s vs [%s]" (ref_to_source items)
          (String.concat " " (List.map string_of_int tokens)))
      QCheck.Gen.(
        pair
          (list_size (int_range 0 5) item_gen)
          (list_size (int_range 0 6) (int_range 1 4)))
  in
  QCheck.Test.make ~name:"NFA engine agrees with reference matcher" ~count:2000
    arb
    (fun (items, tokens) ->
      let re = Net.Path_regex.compile_exn (ref_to_source items) in
      Net.Path_regex.matches_asns re (List.map asn tokens)
      = ref_matches items tokens)

(* ---------------- engine ---------------- *)

let bb = Net.Community.Well_known.backbone_default_route

let tagged p =
  { p with
    Bgp.Path.attr =
      Net.Attr.add_community bb p.Bgp.Path.attr }

let engine_ctx =
  {
    Bgp.Rib_policy.device = 0;
    prefix = Net.Prefix.default_v4;
    now = 0.0;
    peer_layer = (fun _ -> Some (Topology.Node.Other "R"));
    live_peers_in_layer = (fun _ -> 6);
  }

let random_engine_gen =
  (* A random path-selection RPA: 1-2 path sets with assorted signatures. *)
  QCheck.Gen.(
    let* use_regex = bool in
    let* mnh = oneofl [ None; Some (Centralium.Path_selection.Count 2) ] in
    let signature =
      if use_regex then Centralium.Signature.make ~as_path_regex:".* 60005" ()
      else Centralium.Signature.make ~neighbor_asns:[ asn 60001; asn 60002 ] ()
    in
    (* A catch-all final set guarantees some path set matches, so the
       dissemination rule (advertise the least favorable selected path)
       always applies — native fallback would advertise the best instead. *)
    let sets =
      [
        Centralium.Path_selection.path_set ~name:"first" ?min_next_hop:mnh
          signature;
        Centralium.Path_selection.path_set ~name:"catch-all"
          Centralium.Signature.any;
      ]
    in
    return
      (Centralium.Engine.create
         (Centralium.Rpa.make
            ~path_selection:
              [
                Centralium.Path_selection.make
                  [
                    Centralium.Path_selection.statement ~path_sets:sets
                      (Centralium.Destination.Tagged bb);
                  ];
              ]
            ())))

let engine_paths_arb =
  QCheck.make
    ~print:(fun (_, l) -> String.concat " | " (List.map print_path l))
    QCheck.Gen.(
      pair random_engine_gen
        (map (List.map tagged) (list_size (int_range 1 8) path_gen)))

let engine_selection_invariants =
  QCheck.Test.make ~name:"engine: selected subset, advertise in selected"
    ~count:500 engine_paths_arb (fun (engine, candidates) ->
      let native = Bgp.Decision.select ~multipath:true candidates in
      let sel =
        Centralium.Engine.evaluate_selection engine ~ctx:engine_ctx ~candidates
          ~native
      in
      List.for_all (fun p -> List.memq p candidates) sel.Bgp.Rib_policy.selected
      &&
      match sel.Bgp.Rib_policy.advertise with
      | None -> true
      | Some adv -> List.memq adv sel.Bgp.Rib_policy.selected)

let engine_advertises_least_favorable =
  QCheck.Test.make
    ~name:"engine: advertised path is least favorable of selected" ~count:500
    engine_paths_arb (fun (engine, candidates) ->
      let native = Bgp.Decision.select ~multipath:true candidates in
      let sel =
        Centralium.Engine.evaluate_selection engine ~ctx:engine_ctx ~candidates
          ~native
      in
      match (sel.Bgp.Rib_policy.advertise, sel.Bgp.Rib_policy.selected) with
      | Some adv, (_ :: _ as selected) ->
        List.for_all
          (fun p -> Bgp.Decision.preference_compare p adv <= 0)
          selected
      | Some _, [] -> false
      | None, _ -> true)

let engine_cache_transparent =
  QCheck.Test.make ~name:"engine: cache does not change decisions" ~count:300
    engine_paths_arb (fun (engine, candidates) ->
      let uncached =
        Centralium.Engine.create ~cache:false (Centralium.Engine.rpa engine)
      in
      let native = Bgp.Decision.select ~multipath:true candidates in
      let a =
        Centralium.Engine.evaluate_selection engine ~ctx:engine_ctx ~candidates
          ~native
      in
      let a' =
        Centralium.Engine.evaluate_selection engine ~ctx:engine_ctx ~candidates
          ~native
      in
      let b =
        Centralium.Engine.evaluate_selection uncached ~ctx:engine_ctx
          ~candidates ~native
      in
      a = a' && a = b)

(* ---------------- network convergence ---------------- *)

let fabric_arb =
  QCheck.make
    ~print:(fun (pods, seed) -> Printf.sprintf "pods=%d seed=%d" pods seed)
    QCheck.Gen.(pair (int_range 1 3) (int_range 0 1000))

let convergence_loop_free =
  QCheck.Test.make ~name:"converged fabric is loop-free with full reachability"
    ~count:20 fabric_arb (fun (pods, seed) ->
      let f = Topology.Clos.fabric ~pods ~rsws_per_pod:2 ~grids:2 () in
      let net = Bgp.Network.create ~seed f.Topology.Clos.graph in
      List.iter
        (fun eb ->
          Bgp.Network.originate net eb Net.Prefix.default_v4 (Net.Attr.make ()))
        f.Topology.Clos.ebs;
      ignore (Bgp.Network.converge net);
      let devices =
        List.map (fun n -> n.Topology.Node.id) (Topology.Graph.nodes f.Topology.Clos.graph)
      in
      let loops =
        Dataplane.Metrics.find_forwarding_loops
          ~lookup:(fun d -> Bgp.Network.fib net d Net.Prefix.default_v4)
          ~devices
      in
      loops = []
      && List.for_all
           (fun d -> Bgp.Network.fib net d Net.Prefix.default_v4 <> None)
           devices)

let convergence_deterministic =
  QCheck.Test.make ~name:"same seed, same converged state" ~count:10 fabric_arb
    (fun (pods, seed) ->
      let run () =
        let f = Topology.Clos.fabric ~pods ~rsws_per_pod:2 () in
        let net = Bgp.Network.create ~seed f.Topology.Clos.graph in
        List.iter
          (fun eb ->
            Bgp.Network.originate net eb Net.Prefix.default_v4 (Net.Attr.make ()))
          f.Topology.Clos.ebs;
        ignore (Bgp.Network.converge net);
        Bgp.Network.fib_snapshot net Net.Prefix.default_v4
      in
      run () = run ())

let churn_consistency =
  (* Failure injection: a random sequence of link flaps and drains, with
     events landing mid-convergence. After quiescence, the forwarding state
     must be loop-free and every device physically connected to the origin
     must hold a route. *)
  QCheck.Test.make ~name:"random churn converges to consistent state" ~count:15
    (QCheck.make
       ~print:(fun (seed, flips) ->
         Printf.sprintf "seed=%d flips=%d" seed flips)
       QCheck.Gen.(pair (int_range 0 1000) (int_range 1 8)))
    (fun (seed, flips) ->
      let f = Topology.Clos.fabric ~pods:2 ~rsws_per_pod:2 () in
      let g = f.Topology.Clos.graph in
      let net = Bgp.Network.create ~seed g in
      let origin = List.nth f.Topology.Clos.ebs 0 in
      Bgp.Network.originate net origin Net.Prefix.default_v4 (Net.Attr.make ());
      let rng = Dsim.Rng.create (seed + 7) in
      let links = Topology.Graph.links g in
      (* Schedule overlapping flaps: down then up while other updates are
         still in flight. *)
      for k = 1 to flips do
        let link = Dsim.Rng.pick rng links in
        let delay = Dsim.Rng.float rng 0.01 in
        Bgp.Network.set_link ~delay net link.Topology.Graph.a
          link.Topology.Graph.b ~up:false;
        Bgp.Network.set_link ~delay:(delay +. Dsim.Rng.float rng 0.01) net
          link.Topology.Graph.a link.Topology.Graph.b ~up:true;
        if k mod 3 = 0 then begin
          let victim = Dsim.Rng.pick rng f.Topology.Clos.fadus in
          Bgp.Network.drain_device ~delay net victim;
          Bgp.Network.undrain_device ~delay:(delay +. 0.02) net victim
        end
      done;
      ignore (Bgp.Network.converge net);
      let devices =
        List.map (fun n -> n.Topology.Node.id) (Topology.Graph.nodes g)
      in
      let loops =
        Dataplane.Metrics.find_forwarding_loops
          ~lookup:(fun d -> Bgp.Network.fib net d Net.Prefix.default_v4)
          ~devices
      in
      loops = []
      && List.for_all
           (fun d -> Bgp.Network.fib net d Net.Prefix.default_v4 <> None)
           devices)

(* ---------------- deployment ---------------- *)

let deployment_phases_partition =
  QCheck.Test.make ~name:"phases partition targets and are safe" ~count:50
    (QCheck.make
       ~print:(fun n -> string_of_int n)
       QCheck.Gen.(int_range 1 3))
    (fun pods ->
      let f = Topology.Clos.fabric ~pods ~rsws_per_pod:2 () in
      let targets = f.Topology.Clos.fsws @ f.Topology.Clos.ssws @ f.Topology.Clos.fadus in
      let phases =
        Centralium.Deployment.phases f.Topology.Clos.graph ~targets
          ~origination_layer:Topology.Node.Eb Centralium.Deployment.Install
      in
      List.sort Int.compare (List.concat phases)
      = List.sort Int.compare targets
      && Centralium.Deployment.is_safe_order f.Topology.Clos.graph
           ~origination_layer:Topology.Node.Eb Centralium.Deployment.Install
           phases)

(* ---------------- invariant checker ---------------- *)

let has_kind kind vs =
  List.exists (fun v -> v.Centralium.Invariant.kind = kind) vs

let test_invariant_seeded_loop () =
  (* A two-node forwarding loop fed straight into the checker. *)
  let entry nh =
    Bgp.Speaker.Entries [ { Bgp.Speaker.next_hop = nh; session = 0; weight = 1 } ]
  in
  let lookup = function
    | 0 -> Some (entry 1)
    | 1 -> Some (entry 0)
    | _ -> None
  in
  let vs =
    Centralium.Invariant.check_forwarding ~lookup ~devices:[ 0; 1; 2 ] ()
  in
  Alcotest.(check bool)
    "loop flagged" true
    (has_kind Centralium.Invariant.Forwarding_loop vs);
  (* Loop-free forwarding over the same devices is not flagged. *)
  let chain = function 0 -> Some (entry 1) | 1 -> Some (entry 2) | _ -> None in
  Alcotest.(check int)
    "chain is clean" 0
    (List.length
       (Centralium.Invariant.check_forwarding ~lookup:chain
          ~devices:[ 0; 1; 2 ] ()))

let test_invariant_catches_network_loop () =
  (* The Figure 9 ablation: an RPA that advertises its most preferred path
     (instead of the least favorable, Section 5.3.1) seeds a persistent
     R5-R6 forwarding loop. The network-level checker must flag it. *)
  let prefix_d = Net.Prefix.of_string_exn "203.0.113.0/24" in
  let m = Topology.Clos.mixed_dissemination () in
  let net = Bgp.Network.create ~seed:42 m.Topology.Clos.mgraph in
  let r = m.Topology.Clos.r in
  let asn_of d = (Topology.Graph.node m.mgraph d).Topology.Node.asn in
  let rpa =
    Centralium.Rpa.make ~advertise_least_favorable:false
      ~path_selection:
        [
          Centralium.Path_selection.make
            [
              Centralium.Path_selection.statement
                ~path_sets:
                  [
                    Centralium.Path_selection.path_set ~name:"r2-r5"
                      (Centralium.Signature.make
                         ~neighbor_asns:[ asn_of r.(2); asn_of r.(5) ]
                         ());
                  ]
                (Centralium.Destination.Prefixes [ prefix_d ]);
            ];
        ]
      ()
  in
  Bgp.Network.set_hooks net r.(6)
    (Centralium.Engine.hooks (Centralium.Engine.create rpa));
  Bgp.Network.originate net m.origin prefix_d (Net.Attr.make ());
  ignore (Bgp.Network.converge net);
  let vs = Centralium.Invariant.check ~prefixes:[ prefix_d ] net in
  Alcotest.(check bool)
    "network loop flagged" true
    (has_kind Centralium.Invariant.Forwarding_loop vs);
  (* The violations land in the trace with the current queue time. *)
  let trace = Bgp.Network.trace net in
  let before = Bgp.Trace.violation_count trace in
  Centralium.Invariant.record net vs;
  Alcotest.(check int)
    "violations recorded" (before + List.length vs)
    (Bgp.Trace.violation_count trace)

let test_invariant_clean_fabric () =
  (* A converged fabric with no faults satisfies every invariant. *)
  let f = Topology.Clos.fabric ~pods:2 ~rsws_per_pod:2 () in
  let net = Bgp.Network.create ~seed:7 f.Topology.Clos.graph in
  List.iter
    (fun eb ->
      Bgp.Network.originate net eb Net.Prefix.default_v4 (Net.Attr.make ()))
    f.Topology.Clos.ebs;
  ignore (Bgp.Network.converge net);
  Alcotest.(check int)
    "zero violations" 0
    (List.length (Centralium.Invariant.check net))

let test_invariant_flags_dead_next_hop () =
  (* Cutting a link under the FIB without letting BGP react leaves entries
     pointing at a dead next hop; the checker must notice both the dead
     member and (at quiescence re-evaluation) the staleness. *)
  let f = Topology.Clos.fabric ~pods:2 ~rsws_per_pod:2 () in
  let g = f.Topology.Clos.graph in
  let net = Bgp.Network.create ~seed:7 g in
  List.iter
    (fun eb ->
      Bgp.Network.originate net eb Net.Prefix.default_v4 (Net.Attr.make ()))
    f.Topology.Clos.ebs;
  ignore (Bgp.Network.converge net);
  (* Find a link some FIB entry actually uses, and kill it graph-side only
     (bypassing Network.set_link, so no session events fire). *)
  let devices = List.map (fun n -> n.Topology.Node.id) (Topology.Graph.nodes g) in
  let used =
    List.find_map
      (fun d ->
        match Bgp.Network.fib net d Net.Prefix.default_v4 with
        | Some (Bgp.Speaker.Entries (e :: _)) -> Some (d, e.Bgp.Speaker.next_hop)
        | _ -> None)
      devices
  in
  match used with
  | None -> Alcotest.fail "no multihop FIB entry found"
  | Some (a, b) ->
    Topology.Graph.set_link_up g a b false;
    Alcotest.(check bool)
      "dead next hop flagged" true
      (has_kind Centralium.Invariant.Dead_next_hop
         (Centralium.Invariant.check ~prefixes:[ Net.Prefix.default_v4 ] net))

(* ---------------- TE solver ---------------- *)

let te_instance_arb =
  QCheck.make
    ~print:(fun (caps, demand) ->
      Printf.sprintf "caps=[%s] demand=%.1f"
        (String.concat ";" (List.map string_of_float caps))
        demand)
    QCheck.Gen.(
      pair
        (list_size (int_range 2 5) (map float_of_int (int_range 1 9)))
        (map (fun d -> float_of_int d /. 2.0) (int_range 1 10)))

let te_optimal_beats_ecmp =
  QCheck.Test.make ~name:"optimal max-util <= ecmp max-util" ~count:100
    te_instance_arb (fun (caps, demand) ->
      (* A star: source 0, uplink i to node i+1, all draining to sink. *)
      let n = List.length caps in
      let sink = n + 1 in
      let edges =
        List.concat (List.mapi (fun i c -> [ (0, i + 1, c); (i + 1, sink, c) ]) caps)
      in
      let instance =
        { Te.Solver.node_count = n + 2; edges; demands = [ (0, demand) ];
          destination = sink }
      in
      let u_opt, weights = Te.Solver.optimal instance in
      let u_ecmp =
        Te.Solver.max_utilization instance (Te.Solver.ecmp_weights instance)
      in
      (* The binary search stops within 1e-4 relative tolerance, so the
         extracted optimum may exceed a coinciding ECMP optimum by that
         margin. *)
      u_opt <= (u_ecmp *. 1.001) +. 1e-9
      && Te.Solver.max_utilization instance weights <= u_opt +. 1e-9)

(* ---------------- suite ---------------- *)

let () =
  Alcotest.run "properties"
    [
      ( "decision",
        List.map (QCheck_alcotest.to_alcotest ~long:false)
          [ preference_total_order; select_invariants; least_favorable_is_maximum ] );
      ( "regex",
        List.map (QCheck_alcotest.to_alcotest ~long:false) [ regex_differential ] );
      ( "engine",
        List.map (QCheck_alcotest.to_alcotest ~long:false)
          [
            engine_selection_invariants;
            engine_advertises_least_favorable;
            engine_cache_transparent;
          ] );
      ( "network",
        List.map (QCheck_alcotest.to_alcotest ~long:false)
          [ convergence_loop_free; convergence_deterministic; churn_consistency ] );
      ( "deployment",
        List.map (QCheck_alcotest.to_alcotest ~long:false)
          [ deployment_phases_partition ] );
      ( "invariant",
        [
          Alcotest.test_case "seeded loop is flagged" `Quick
            test_invariant_seeded_loop;
          Alcotest.test_case "network loop is flagged" `Quick
            test_invariant_catches_network_loop;
          Alcotest.test_case "clean fabric has zero violations" `Quick
            test_invariant_clean_fabric;
          Alcotest.test_case "dead next hop is flagged" `Quick
            test_invariant_flags_dead_next_hop;
        ] );
      ( "te",
        List.map (QCheck_alcotest.to_alcotest ~long:false)
          [ te_optimal_beats_ecmp ] );
    ]
