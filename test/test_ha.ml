(* Tests for controller high availability: the NSDB compare-and-set
   primitive, journal GC, fencing-epoch semantics at the switch agent,
   lease-based leader election, and the failover scenario's deterministic
   takeover (killing the leader mid-deployment must yield forwarding
   state bit-identical to the uninterrupted run). *)

open Centralium

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---------------- Nsdb.Replicated.compare_and_set ---------------- *)

let test_cas_basics () =
  let db = Nsdb.Replicated.create ~replicas:3 in
  let cas expected v =
    Nsdb.Replicated.compare_and_set db ~path:"k" ~expected v
  in
  check_bool "absent + None expectation succeeds" true
    (cas None (Nsdb.Int 1));
  check_bool "write landed" true
    (Nsdb.Replicated.get_one db ~path:"k" = Some (Nsdb.Int 1));
  check_bool "absent expectation now fails" false (cas None (Nsdb.Int 2));
  check_bool "mismatched expectation fails" false
    (cas (Some (Nsdb.Int 9)) (Nsdb.Int 2));
  check_bool "failed CAS left the value alone" true
    (Nsdb.Replicated.get_one db ~path:"k" = Some (Nsdb.Int 1));
  check_bool "matching expectation succeeds" true
    (cas (Some (Nsdb.Int 1)) (Nsdb.Int 2));
  check_bool "value advanced" true
    (Nsdb.Replicated.get_one db ~path:"k" = Some (Nsdb.Int 2))

let test_cas_survives_replica_failover () =
  let db = Nsdb.Replicated.create ~replicas:3 in
  check_bool "seed" true
    (Nsdb.Replicated.compare_and_set db ~path:"k" ~expected:None
       (Nsdb.Int 1));
  (* A successful CAS fans out like set: the value survives the leader
     replica dying, and CAS keeps linearizing on the new leader. *)
  Nsdb.Replicated.fail_replica db 0;
  check_bool "value on the new leader" true
    (Nsdb.Replicated.get_one db ~path:"k" = Some (Nsdb.Int 1));
  check_bool "CAS against the new leader" true
    (Nsdb.Replicated.compare_and_set db ~path:"k"
       ~expected:(Some (Nsdb.Int 1))
       (Nsdb.Int 2))

let test_cas_closes_read_modify_write_race () =
  (* Two writers that both read the same value: only the first CAS wins;
     the loser observes the conflict instead of silently clobbering. *)
  let db = Nsdb.Replicated.create ~replicas:2 in
  Nsdb.Replicated.set db ~path:"status" (Nsdb.String "in-progress");
  let seen = Nsdb.Replicated.get_one db ~path:"status" in
  check_bool "writer A wins" true
    (Nsdb.Replicated.compare_and_set db ~path:"status" ~expected:seen
       (Nsdb.String "completed"));
  check_bool "writer B with the stale read loses" false
    (Nsdb.Replicated.compare_and_set db ~path:"status" ~expected:seen
       (Nsdb.String "rolled-back"));
  check_bool "terminal status intact" true
    (Nsdb.Replicated.get_one db ~path:"status"
    = Some (Nsdb.String "completed"))

(* ---------------- Journal GC ---------------- *)

let gc_fixture () =
  let x = Topology.Clos.expansion () in
  let net = Bgp.Network.create ~seed:1 x.Topology.Clos.xgraph in
  let nsdb = Nsdb.Replicated.create ~replicas:2 in
  let controller = Controller.create ~nsdb net in
  (nsdb, controller)

let test_journal_gc_prunes_oldest_completed () =
  let nsdb, controller = gc_fixture () in
  for i = 1 to 5 do
    Nsdb.Replicated.set nsdb
      ~path:(Printf.sprintf "journal/p%d/status" i)
      (Nsdb.String "completed");
    Nsdb.Replicated.set nsdb
      ~path:(Printf.sprintf "journal/p%d/completed_seq" i)
      (Nsdb.Int i)
  done;
  Nsdb.Replicated.set nsdb ~path:"journal/live/status"
    (Nsdb.String "in-progress");
  Nsdb.Replicated.set nsdb ~path:"journal/audit/status"
    (Nsdb.String "rolled-back");
  check_int "pruned the oldest three" 3
    (Controller.journal_gc ~retain:2 controller);
  check_bool "oldest completed gone" true
    (Nsdb.Replicated.get_one nsdb ~path:"journal/p1/status" = None);
  check_bool "subtree gone with it" true
    (Nsdb.Replicated.get_one nsdb ~path:"journal/p1/completed_seq" = None);
  check_bool "newest two kept" true
    (Nsdb.Replicated.get_one nsdb ~path:"journal/p4/status"
     = Some (Nsdb.String "completed")
    && Nsdb.Replicated.get_one nsdb ~path:"journal/p5/status"
       = Some (Nsdb.String "completed"));
  check_bool "in-progress never pruned" true
    (Nsdb.Replicated.get_one nsdb ~path:"journal/live/status"
    = Some (Nsdb.String "in-progress"));
  check_bool "rolled-back never pruned" true
    (Nsdb.Replicated.get_one nsdb ~path:"journal/audit/status"
    = Some (Nsdb.String "rolled-back"));
  check_int "within retention: no-op" 0 (Controller.journal_gc ~retain:2 controller)

let test_journal_retention_knob () =
  let nsdb, controller = gc_fixture () in
  for i = 1 to 3 do
    Nsdb.Replicated.set nsdb
      ~path:(Printf.sprintf "journal/p%d/status" i)
      (Nsdb.String "completed");
    Nsdb.Replicated.set nsdb
      ~path:(Printf.sprintf "journal/p%d/completed_seq" i)
      (Nsdb.Int i)
  done;
  Controller.set_journal_retention controller 1;
  check_int "default retain comes from the knob" 2
    (Controller.journal_gc controller);
  check_bool "most recent survives" true
    (Nsdb.Replicated.get_one nsdb ~path:"journal/p3/status"
    = Some (Nsdb.String "completed"))

(* ---------------- Fencing at the switch agent ---------------- *)

let agent_fixture () =
  let x = Topology.Clos.expansion () in
  let net = Bgp.Network.create ~seed:3 x.Topology.Clos.xgraph in
  Bgp.Network.originate net x.Topology.Clos.backbone Net.Prefix.default_v4
    (Net.Attr.make
       ~as_path:(Net.As_path.of_asns [ Net.Asn.of_int 65000 ])
       ());
  ignore (Bgp.Network.converge net);
  let agent = Switch_agent.create ~seed:11 net in
  let plan = Apps.Expansion_equalizer.plan x in
  let device, rpa = List.hd plan.Controller.rpas in
  Switch_agent.set_intended agent ~device rpa;
  (agent, device)

let test_agent_epoch_ratchet () =
  let agent, device = agent_fixture () in
  check_bool "apply under epoch 2" true
    (Switch_agent.reconcile_device ~epoch:2 agent device = `Applied);
  check_int "ratchet at 2" 2 (Switch_agent.accepted_epoch agent);
  check_bool "stale epoch 1 is fenced" true
    (Switch_agent.reconcile_device ~epoch:1 agent device = `Fenced);
  check_int "ratchet unmoved by the stale RPC" 2
    (Switch_agent.accepted_epoch agent);
  check_bool "equal epoch still served" true
    (Switch_agent.reconcile_device ~epoch:2 agent device = `In_sync);
  check_bool "unstamped RPC still served (legacy single controller)" true
    (Switch_agent.reconcile_device agent device = `In_sync)

let test_cross_epoch_idempotent_retry () =
  (* The split-brain-shaped retry: leader at epoch 1 applies an RPA but
     the ack times out and the leader dies believing the device dirty.
     The next leader (epoch 2) retries the same device — it must observe
     In_sync, not double-apply. *)
  let agent, device = agent_fixture () in
  Switch_agent.set_mgmt_fault agent
    (Some
       (Dsim.Mgmt_fault.create ~seed:1
          { Dsim.Mgmt_fault.none with rpc_timeout_prob = 1.0 }));
  check_bool "epoch-1 apply times out (but installed the RPA)" true
    (Switch_agent.reconcile_device ~epoch:1 agent device = `Rpc_timeout);
  Switch_agent.set_mgmt_fault agent None;
  check_bool "epoch-2 retry observes in-sync" true
    (Switch_agent.reconcile_device ~epoch:2 agent device = `In_sync);
  check_int "ratchet followed the new leader" 2
    (Switch_agent.accepted_epoch agent);
  (match Switch_agent.epoch_commits agent with
   | [ (_, 1) ] -> ()
   | commits ->
     Alcotest.failf "expected exactly one commit under epoch 1, got %d"
       (List.length commits));
  check_bool "the deposed leader's own retry is fenced" true
    (Switch_agent.reconcile_device ~epoch:1 agent device = `Fenced)

(* ---------------- Invariant.check_ha ---------------- *)

let kinds vs =
  List.map (fun (v : Invariant.violation) -> Invariant.kind_name v.kind) vs

let test_check_ha_clean () =
  check_bool "disjoint epochs, fenced commits: clean" true
    (Invariant.check_ha
       ~grants:[ (0, 1, 0.0, 0.1); (1, 2, 0.12, 0.2) ]
       ~commits:[ (0.05, 1); (0.15, 2) ]
    = [])

let test_check_ha_dual_leader () =
  check_bool "overlapping epochs flagged" true
    (kinds
       (Invariant.check_ha
          ~grants:[ (0, 1, 0.0, 0.1); (1, 2, 0.05, 0.2) ]
          ~commits:[])
    = [ "dual-leader" ]);
  check_bool "one epoch, two holders flagged" true
    (kinds
       (Invariant.check_ha
          ~grants:[ (0, 1, 0.0, 0.1); (1, 1, 0.2, 0.3) ]
          ~commits:[])
    = [ "dual-leader" ])

let test_check_ha_stale_epoch_write () =
  check_bool "commit under a superseded epoch flagged" true
    (kinds
       (Invariant.check_ha
          ~grants:[ (0, 1, 0.0, 0.1); (1, 2, 0.12, 0.2) ]
          ~commits:[ (0.15, 1) ])
    = [ "stale-epoch-write" ]);
  check_bool "epoch 0 (unfenced operation) exempt" true
    (Invariant.check_ha
       ~grants:[ (0, 1, 0.0, 0.1) ]
       ~commits:[ (0.5, 0) ]
    = [])

(* ---------------- Leases and elections ---------------- *)

let cluster_fixture ?(members = 3) () =
  let x = Topology.Clos.expansion () in
  let net = Bgp.Network.create ~seed:3 x.Topology.Clos.xgraph in
  let agent = Switch_agent.create ~seed:11 net in
  let nsdb = Nsdb.Replicated.create ~replicas:2 in
  let ha = Ha.create ~members net agent nsdb in
  Ha.start ha;
  ha

let test_election_deterministic () =
  let ha = cluster_fixture () in
  (* Member 0's timer is staggered earliest, so it always wins the first
     election — the deterministic tie-break. *)
  check_bool "member 0 elected first" true (Ha.wait_for_leader ha = Some 0);
  check_bool "epoch 1" true (Ha.current_leader_epoch ha = Some (0, 1));
  check_int "one election" 1 (Ha.elections ha);
  Ha.stop ha

let test_takeover_after_kill () =
  let ha = cluster_fixture () in
  check_bool "leader up" true (Ha.wait_for_leader ha = Some 0);
  Ha.kill ha 0;
  check_bool "dead leader no longer counts" true (Ha.leader_id ha = None);
  check_bool "member 1 takes over" true (Ha.wait_for_leader ha = Some 1);
  check_bool "epoch advanced" true (Ha.current_leader_epoch ha = Some (1, 2));
  check_int "two elections" 2 (Ha.elections ha);
  (match Ha.takeover_ms ha with
   | [ ms ] -> check_bool "takeover latency positive" true (ms > 0.0)
   | l -> Alcotest.failf "expected one takeover sample, got %d" (List.length l));
  check_bool "grant audit clean" true
    (Invariant.check_ha ~grants:(Ha.grants ha) ~commits:(Ha.epoch_commits ha)
    = []);
  Ha.stop ha

(* ---------------- Failover scenario (the CI ha-smoke core) -------- *)

let test_failover_bit_identical_to_uninterrupted () =
  let c = Experiments.Scenarios.Failover.crash_vs_uninterrupted ~seed:21 () in
  let i = c.Experiments.Scenarios.Failover.interrupted in
  let u = c.Experiments.Scenarios.Failover.uninterrupted in
  check_string "interrupted completed" "completed" i.outcome;
  check_string "uninterrupted completed" "completed" u.outcome;
  check_bool "the kill forced a real takeover" true (i.elections >= 2);
  check_int "exactly the killed member died" 1 i.dead_members;
  check_bool "takeover latency recorded" true (i.takeover_ms <> []);
  check_bool "no dual-leader / stale-epoch violations" true
    (i.ha_violations = [] && u.ha_violations = []);
  check_bool "forwarding invariants clean" true
    (i.final_violations = [] && i.phase_violations = []);
  check_bool "journal closed" true (i.journal_status = Some "completed");
  check_bool "forwarding state bit-identical" true
    c.Experiments.Scenarios.Failover.digests_match

let test_failover_bit_reproducible () =
  let run () =
    let r =
      Experiments.Scenarios.Failover.run ~seed:9
        ~leader_crash_offsets:[ 0.025 ] ()
    in
    ( r.outcome,
      r.attempts,
      r.elections,
      r.takeover_ms,
      r.grants,
      r.fib_digest )
  in
  check_bool "scenario is bit-reproducible" true (run () = run ())

let test_fenced_failstop_under_lease_partition () =
  (* No crash at all: a long lease-store partition expires the leader's
     lease mid-rollout. The fence must fail-stop the deployment (Fenced,
     not Crashed), the member survives as a standby, and once the store
     heals a re-election resumes and completes the plan. *)
  let r =
    Experiments.Scenarios.Failover.run ~seed:4
      ~lease_partition_offsets:[ (0.015, 0.7) ]
      ()
  in
  check_string "rollout still completes" "completed" r.outcome;
  check_bool "at least one attempt was fenced" true (r.fenced_attempts >= 1);
  check_int "nobody died" 0 r.dead_members;
  check_bool "fencing kept the audit clean" true
    (r.ha_violations = [] && r.final_violations = [])

let test_ops_queue_survives_takeover () =
  (* The admission queue under a mid-queue leader crash: the standby
     rebuilds the queue from the opsq journal and the simulated day ends
     with exactly the queue order, shed set and forwarding state of the
     uninterrupted run. *)
  let open Experiments.Scenarios.Continuous in
  let interrupted =
    run ~seed:42 ~hours:2 ~leader_crash_offsets:[ 0.12 ] ()
  in
  let uninterrupted = run ~seed:42 ~hours:2 () in
  check_bool "the crash forced a real takeover" true
    (interrupted.elections >= 2);
  check_bool "the new leader rebuilt the queue from the journal" true
    (interrupted.queue_recoveries >= 1);
  check_bool "queue order identical" true
    (interrupted.queue_order = uninterrupted.queue_order);
  check_bool "shed set identical" true
    (interrupted.shed_set = uninterrupted.shed_set);
  check_string "forwarding state bit-identical" uninterrupted.fib_digest
    interrupted.fib_digest;
  check_int "no violation escaped remediation" 0
    interrupted.unremediated_violations

let test_ops_takeover_bit_reproducible () =
  let open Experiments.Scenarios.Continuous in
  let run () =
    let r = run ~seed:7 ~hours:2 ~leader_crash_offsets:[ 0.12 ] () in
    (r.queue_order, r.shed_set, r.completed, r.rolled_back, r.fib_digest)
  in
  check_bool "interrupted day is bit-reproducible" true (run () = run ())

let () =
  Alcotest.run "ha"
    [
      ( "cas",
        [
          Alcotest.test_case "basics" `Quick test_cas_basics;
          Alcotest.test_case "replica failover" `Quick
            test_cas_survives_replica_failover;
          Alcotest.test_case "read-modify-write race" `Quick
            test_cas_closes_read_modify_write_race;
        ] );
      ( "journal-gc",
        [
          Alcotest.test_case "prunes oldest completed" `Quick
            test_journal_gc_prunes_oldest_completed;
          Alcotest.test_case "retention knob" `Quick
            test_journal_retention_knob;
        ] );
      ( "fencing",
        [
          Alcotest.test_case "epoch ratchet" `Quick test_agent_epoch_ratchet;
          Alcotest.test_case "cross-epoch idempotent retry" `Quick
            test_cross_epoch_idempotent_retry;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "clean audit" `Quick test_check_ha_clean;
          Alcotest.test_case "dual leader" `Quick test_check_ha_dual_leader;
          Alcotest.test_case "stale epoch write" `Quick
            test_check_ha_stale_epoch_write;
        ] );
      ( "election",
        [
          Alcotest.test_case "deterministic first leader" `Quick
            test_election_deterministic;
          Alcotest.test_case "takeover after kill" `Quick
            test_takeover_after_kill;
        ] );
      ( "failover",
        [
          Alcotest.test_case "bit-identical to uninterrupted" `Slow
            test_failover_bit_identical_to_uninterrupted;
          Alcotest.test_case "bit-reproducible" `Slow
            test_failover_bit_reproducible;
          Alcotest.test_case "fenced fail-stop under lease partition" `Slow
            test_fenced_failstop_under_lease_partition;
        ] );
      ( "ops-takeover",
        [
          Alcotest.test_case "queue survives takeover" `Slow
            test_ops_queue_survives_takeover;
          Alcotest.test_case "interrupted day bit-reproducible" `Slow
            test_ops_takeover_bit_reproducible;
        ] );
    ]
