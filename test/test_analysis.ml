(* Tests for the static RPA analyzer (lib/analysis): the seeded defect
   corpus, the language algebra and prefix trie underneath it, diagnostic
   determinism, and the lint wiring into the controller and the
   verification suite. *)

open Centralium
module D = Analysis.Diagnostic
module Lint = Analysis.Lint
module Corpus = Analysis.Corpus
module Ra = Analysis.Regex_algebra
module Trie = Analysis.Prefix_trie

let quick name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.(check bool) msg
let check_int msg = Alcotest.(check int) msg

let string_starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* ---------------- seeded defect corpus ---------------- *)

let test_corpus_all_detected () =
  let results = Corpus.run () in
  check_int "corpus size" (List.length Corpus.cases) (List.length results);
  List.iter
    (fun r ->
      check_bool
        (Printf.sprintf "%s detects %s" r.Corpus.r_case
           (D.code_to_string r.Corpus.r_expect))
        true r.Corpus.r_detected)
    results;
  check_bool "all_detected agrees" true (Corpus.all_detected results)

let test_corpus_expected_severity () =
  (* Every corpus defect that makes a plan wrong on any network must come
     back at error severity, so the [`Enforce] gate actually stops it. *)
  let errors =
    [
      "empty-signature-regex-vs-neighbor";
      "empty-signature-community-contradiction";
      "empty-signature-no-neighbors";
      "signature-overlap-same-destination";
      "filter-blackhole-steered-prefix";
      "unsafe-phase-order";
      "duplicate-target";
      "plan-coverage-mismatch";
      "community-collision";
    ]
  in
  List.iter
    (fun r ->
      if List.mem r.Corpus.r_case errors then
        check_bool (r.Corpus.r_case ^ " is an error") true
          (List.exists
             (fun d ->
               d.D.code = r.Corpus.r_expect && d.D.severity = D.Error)
             r.Corpus.r_findings))
    (Corpus.run ())

(* ---------------- regex algebra ---------------- *)

let rx = Net.Path_regex.compile_exn
let m s = Ra.of_regex (rx s)

let test_algebra_emptiness () =
  check_bool "empty list is universal" true (Ra.intersection_nonempty []);
  check_bool "universal alone" true (Ra.intersection_nonempty [ Ra.universal ]);
  check_bool "never alone" false (Ra.intersection_nonempty [ Ra.never ]);
  check_bool "never poisons" false
    (Ra.intersection_nonempty [ Ra.universal; Ra.never ]);
  check_bool "starts_with_any [] is never" false
    (Ra.intersection_nonempty [ Ra.starts_with_any [] ])

let test_algebra_conjuncts () =
  (* neighbor constraint vs regex first-hop anchor *)
  check_bool "agreeing first hop" true
    (Ra.intersection_nonempty [ m "^100"; Ra.starts_with_any [ 100; 300 ] ]);
  check_bool "contradicting first hop" false
    (Ra.intersection_nonempty [ m "^100"; Ra.starts_with_any [ 200 ] ]);
  (* origin constraint vs regex last-hop anchor *)
  check_bool "agreeing origin" true
    (Ra.intersection_nonempty [ m "100 200$"; Ra.ends_with 200 ]);
  check_bool "contradicting origin" false
    (Ra.intersection_nonempty [ m "100 200$"; Ra.ends_with 300 ]);
  (* range overlap *)
  check_bool "ranges overlap" true
    (Ra.intersection_nonempty [ m "^[100-200]"; m "^[150-300]" ]);
  check_bool "ranges disjoint" false
    (Ra.intersection_nonempty [ m "^[100-200]"; m "^[300-400]" ])

let test_algebra_subsumption () =
  check_bool "universal subsumes" true (Ra.subsumes [] [ m "^100 200" ]);
  check_bool "prefix subsumes refinement" true
    (Ra.subsumes [ m "^100" ] [ m "^100 200" ]);
  check_bool "refinement does not subsume prefix" false
    (Ra.subsumes [ m "^100 200" ] [ m "^100" ]);
  check_bool "range subsumes point" true
    (Ra.subsumes [ m "^[100-200]" ] [ m "^150" ]);
  check_bool "point does not subsume range" false
    (Ra.subsumes [ m "^150" ] [ m "^[100-200]" ]);
  check_bool "everything subsumes never" true
    (Ra.subsumes [ m "^100" ] [ Ra.never ])

(* ---------------- prefix trie ---------------- *)

let p4 = Net.Prefix.v4

let test_trie_containment () =
  let t = Trie.create () in
  Trie.add t (p4 10 0 0 0 8) "a";
  Trie.add t (p4 10 1 0 0 16) "b";
  Trie.add t (p4 192 168 0 0 16) "c";
  let values l = List.map snd l in
  Alcotest.(check (list string))
    "covering walks root to leaf" [ "a"; "b" ]
    (values (Trie.covering t (p4 10 1 2 0 24)));
  Alcotest.(check (list string))
    "covered_by collects the subtree" [ "a"; "b" ]
    (values (Trie.covered_by t (p4 10 0 0 0 8)));
  Alcotest.(check (list string))
    "overlapping is both directions, query once" [ "a"; "b" ]
    (values (Trie.overlapping t (p4 10 1 0 0 16)));
  Alcotest.(check (list string))
    "disjoint query finds nothing" []
    (values (Trie.overlapping t (p4 172 16 0 0 12)));
  (* duplicates accumulate *)
  Trie.add t (p4 10 1 0 0 16) "b2";
  check_int "both values kept" 2
    (List.length (Trie.covered_by t (p4 10 1 0 0 16)))

let test_trie_families_separate () =
  let t = Trie.create () in
  Trie.add t Net.Prefix.default_v4 "v4";
  Trie.add t Net.Prefix.default_v6 "v6";
  Trie.add t (Net.Prefix.v6 ~hi:0x20010DB800000000L ~lo:0L 32) "doc";
  Alcotest.(check (list string))
    "v4 query sees only v4" [ "v4" ]
    (List.map snd (Trie.covering t (p4 10 0 0 0 8)));
  Alcotest.(check (list string))
    "v6 query walks the v6 root" [ "v6"; "doc" ]
    (List.map snd
       (Trie.covering t (Net.Prefix.v6 ~hi:0x20010DB800010000L ~lo:0L 48)))

(* ---------------- diagnostics ---------------- *)

let unsafe_order_case () =
  match
    List.find_opt (fun c -> c.Corpus.case_name = "unsafe-phase-order") Corpus.cases
  with
  | Some c -> c
  | None -> Alcotest.fail "unsafe-phase-order case missing from corpus"

let test_json_deterministic () =
  let c = unsafe_order_case () in
  let render () = Obs.Json.to_string (D.report_json (c.Corpus.findings ())) in
  let a = render () and b = render () in
  Alcotest.(check string) "byte-identical across runs" a b;
  (match Obs.Json.of_string a with
   | Error e -> Alcotest.failf "report is not valid JSON: %s" e
   | Ok j ->
     check_bool "errors counted" true
       (match Obs.Json.member "errors" j with
        | Some (Obs.Json.Int n) -> n >= 1
        | _ -> false))

let test_diagnostic_sort_and_dedup () =
  let d sev code msg = D.make sev code msg in
  let err = d D.Error D.Unsafe_phase_order "x" in
  let warn = d D.Warning D.Prefix_shadowed "y" in
  (match D.sort [ warn; err; warn ] with
   | [ a; b ] ->
     check_bool "errors sort first" true (a.D.severity = D.Error);
     check_bool "duplicates collapse" true (b.D.severity = D.Warning)
   | l -> Alcotest.failf "expected 2 diagnostics, got %d" (List.length l));
  check_bool "has_errors" true (D.has_errors [ warn; err ]);
  check_bool "no errors" false (D.has_errors [ warn ])

let test_positions_attached () =
  let src =
    "PathSelectionRpa demo {\n\
     Statement steer {\n\
     destination = tagged(65000:1)\n\
     PathSetList = [ PathSet impossible {\n\
     neighbor_asns = []\n\
     } ]\n\
     }\n\
     }"
  in
  match Rpa_parser.parse_located src with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok (rpa, index) ->
    let diags = Lint.check_rpa ~positions:index rpa in
    (match List.find_opt (fun d -> d.D.code = D.Empty_signature) diags with
     | None -> Alcotest.fail "expected an empty-signature finding"
     | Some d ->
       check_bool "line attached" true (d.D.line = Some 2);
       check_bool "human line mentions position" true
         (let h = D.to_human d in
          let needle = "line 2:" in
          let n = String.length h and m = String.length needle in
          let rec go i = i + m <= n && (String.sub h i m = needle || go (i + 1)) in
          go 0))

(* ---------------- suite cleanliness + wiring ---------------- *)

let test_standard_suite_clean () =
  List.iter
    (fun spec ->
      let net, plan, _checks = spec.Verification.build () in
      let diags = Lint.check_plan (Bgp.Network.graph net) plan in
      check_int (spec.Verification.spec_name ^ " has no findings") 0
        (List.length diags))
    (Verification.standard_suite ())

let reversed_equalizer_fixture () =
  let x = Topology.Clos.expansion () in
  let net = Bgp.Network.create ~seed:3 x.Topology.Clos.xgraph in
  Bgp.Network.originate net x.Topology.Clos.backbone Net.Prefix.default_v4
    (Net.Attr.make
       ~communities:
         (Net.Community.Set.singleton
            Net.Community.Well_known.backbone_default_route)
       ());
  ignore (Bgp.Network.converge net);
  let plan = Apps.Expansion_equalizer.plan x in
  (* Reversing the phases violates the Section 5.3.2 install rule but
     still passes the controller's structural validation — exactly the
     defect class only the analyzer catches. *)
  (net, { plan with Controller.phases = List.rev plan.Controller.phases })

let test_controller_enforce_gate () =
  let net, bad = reversed_equalizer_fixture () in
  let controller = Controller.create ~seed:11 net in
  check_bool "still validates" true
    (Controller.validate_plan controller bad = Ok ());
  (match Controller.deploy ~lint:`Enforce controller bad with
   | Ok _ -> Alcotest.fail "enforce gate let an unsafe plan through"
   | Error reasons ->
     check_bool "reason names the lint code" true
       (List.exists
          (string_starts_with ~prefix:"lint unsafe-phase-order:")
          reasons));
  (* `Off skips the analyzer entirely. *)
  match Controller.deploy ~lint:`Off controller bad with
  | Ok _ -> ()
  | Error reasons ->
    check_bool "no lint reasons with lint off" false
      (List.exists (string_starts_with ~prefix:"lint ") reasons)

let test_verification_lint_pass () =
  let spec =
    {
      Verification.spec_name = "seeded-unsafe-order";
      build =
        (fun () ->
          let net, bad = reversed_equalizer_fixture () in
          (net, bad, []));
    }
  in
  let o = Verification.qualify spec in
  check_bool "qualification fails" false (Verification.passed o);
  check_bool "nothing deployed" false o.Verification.deployed;
  check_bool "lint error surfaced" true
    (List.exists
       (string_starts_with ~prefix:"lint unsafe-phase-order:")
       o.Verification.errors)

let () =
  Alcotest.run "analysis"
    [
      ( "corpus",
        [
          quick "all defects detected" test_corpus_all_detected;
          quick "expected severities" test_corpus_expected_severity;
        ] );
      ( "regex-algebra",
        [
          quick "emptiness" test_algebra_emptiness;
          quick "conjuncts" test_algebra_conjuncts;
          quick "subsumption" test_algebra_subsumption;
        ] );
      ( "prefix-trie",
        [
          quick "containment" test_trie_containment;
          quick "families separate" test_trie_families_separate;
        ] );
      ( "diagnostics",
        [
          quick "json deterministic" test_json_deterministic;
          quick "sort and dedup" test_diagnostic_sort_and_dedup;
          quick "positions attached" test_positions_attached;
        ] );
      ( "wiring",
        [
          quick "standard suite clean" test_standard_suite_clean;
          quick "controller enforce gate" test_controller_enforce_gate;
          quick "verification lint pass" test_verification_lint_pass;
        ] );
    ]
