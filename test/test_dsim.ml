(* Tests for lib/dsim: RNG determinism, event queue semantics, statistics. *)

open Dsim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ---------------- Rng ---------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let seq rng = List.init 20 (fun _ -> Rng.int rng 1000) in
  Alcotest.(check (list int)) "same seed same stream" (seq a) (seq b)

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let seq rng = List.init 20 (fun _ -> Rng.int rng 1000000) in
  check_bool "different seeds differ" false (seq a = seq b)

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    if x < 0 || x >= 10 then Alcotest.fail "int out of bounds";
    let f = Rng.float rng 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.fail "float out of bounds"
  done

let test_rng_split_independent () =
  let parent = Rng.create 9 in
  let child = Rng.split parent in
  let a = List.init 10 (fun _ -> Rng.int parent 1000) in
  let b = List.init 10 (fun _ -> Rng.int child 1000) in
  check_bool "streams differ" false (a = b)

let test_rng_exponential_mean () =
  let rng = Rng.create 3 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:2.0
  done;
  let mean = !sum /. float_of_int n in
  check_bool "mean close to 2" true (Float.abs (mean -. 2.0) < 0.1)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 5 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_sample_without_replacement () =
  let rng = Rng.create 11 in
  let sample = Rng.sample_without_replacement rng 5 (List.init 20 Fun.id) in
  check_int "size" 5 (List.length sample);
  check_int "distinct" 5 (List.length (List.sort_uniq Int.compare sample));
  let all = Rng.sample_without_replacement rng 100 [ 1; 2; 3 ] in
  check_int "clamped" 3 (List.length all)

let test_rng_int_uniform () =
  (* Uniformity smoke test: with rejection sampling every residue class is
     hit an even number of times (3 sigma of binomial fluctuation). *)
  let rng = Rng.create 17 in
  let bound = 7 in
  let draws = 70_000 in
  let counts = Array.make bound 0 in
  for _ = 1 to draws do
    let x = Rng.int rng bound in
    counts.(x) <- counts.(x) + 1
  done;
  let expected = float_of_int draws /. float_of_int bound in
  let sigma = sqrt (expected *. (1.0 -. (1.0 /. float_of_int bound))) in
  Array.iteri
    (fun i c ->
      if Float.abs (float_of_int c -. expected) > 4.0 *. sigma then
        Alcotest.failf "residue %d count %d too far from %.0f" i c expected)
    counts

let test_rng_int_large_bound () =
  (* Bounds near max_int exercise the rejection path; results must stay in
     range. *)
  let rng = Rng.create 23 in
  let bound = (max_int / 2) + 1 in
  for _ = 1 to 1000 do
    let x = Rng.int rng bound in
    if x < 0 || x >= bound then Alcotest.fail "out of range"
  done

(* ---------------- Event_queue ---------------- *)

let test_queue_time_order () =
  let q = Event_queue.create () in
  let log = ref [] in
  Event_queue.schedule q ~delay:3.0 (fun () -> log := 3 :: !log);
  Event_queue.schedule q ~delay:1.0 (fun () -> log := 1 :: !log);
  Event_queue.schedule q ~delay:2.0 (fun () -> log := 2 :: !log);
  ignore (Event_queue.run q);
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  check_float "clock at last event" 3.0 (Event_queue.now q)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Event_queue.schedule q ~delay:1.0 (fun () -> log := i :: !log)
  done;
  ignore (Event_queue.run q);
  Alcotest.(check (list int)) "fifo among ties" (List.init 10 Fun.id)
    (List.rev !log)

let test_queue_nested_scheduling () =
  let q = Event_queue.create () in
  let log = ref [] in
  Event_queue.schedule q ~delay:1.0 (fun () ->
      log := "a" :: !log;
      Event_queue.schedule q ~delay:1.0 (fun () -> log := "c" :: !log));
  Event_queue.schedule q ~delay:1.5 (fun () -> log := "b" :: !log);
  ignore (Event_queue.run q);
  Alcotest.(check (list string)) "nested" [ "a"; "b"; "c" ] (List.rev !log)

let test_queue_negative_delay_clamped () =
  let q = Event_queue.create () in
  let fired = ref false in
  Event_queue.schedule q ~delay:5.0 (fun () ->
      Event_queue.schedule q ~delay:(-3.0) (fun () -> fired := true));
  ignore (Event_queue.run q);
  check_bool "fired" true !fired;
  check_float "clock not rewound" 5.0 (Event_queue.now q)

let test_queue_run_until () =
  let q = Event_queue.create () in
  let count = ref 0 in
  List.iter
    (fun d -> Event_queue.schedule q ~delay:d (fun () -> incr count))
    [ 1.0; 2.0; 3.0; 4.0 ];
  let executed = Event_queue.run_until q ~time:2.5 in
  check_int "ran two" 2 executed;
  check_float "clock advanced to time" 2.5 (Event_queue.now q);
  check_int "pending" 2 (Event_queue.pending q);
  ignore (Event_queue.run q);
  check_int "all ran" 4 !count

let test_queue_max_events () =
  let q = Event_queue.create () in
  (* Self-perpetuating event chain. *)
  let rec reschedule () = Event_queue.schedule q ~delay:1.0 reschedule in
  reschedule ();
  let executed = Event_queue.run ~max_events:50 q in
  check_int "bounded" 50 executed;
  check_bool "still pending" false (Event_queue.is_empty q)

let test_queue_heap_stress () =
  (* Many random-ordered events must come out sorted. *)
  let q = Event_queue.create () in
  let rng = Rng.create 123 in
  let times = ref [] in
  for _ = 1 to 500 do
    let d = Rng.float rng 100.0 in
    Event_queue.schedule q ~delay:d (fun () -> times := Event_queue.now q :: !times)
  done;
  ignore (Event_queue.run q);
  let observed = List.rev !times in
  let sorted = List.sort Float.compare observed in
  check_bool "monotone" true (observed = sorted);
  check_int "count" 500 (List.length observed)

(* ---------------- Stats ---------------- *)

let test_stats_percentiles () =
  let samples = List.init 100 (fun i -> float_of_int (i + 1)) in
  let s = Stats.summarize samples in
  check_int "count" 100 s.Stats.count;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 100.0 s.Stats.max;
  check_bool "p50 near middle" true (Float.abs (s.Stats.p50 -. 50.5) < 1.0);
  check_bool "p99 high" true (s.Stats.p99 > 98.0);
  check_bool "ordered" true
    (s.Stats.p50 <= s.Stats.p90 && s.Stats.p90 <= s.Stats.p95
     && s.Stats.p95 <= s.Stats.p99)

let test_stats_single_sample () =
  let s = Stats.summarize [ 7.0 ] in
  check_float "all equal" 7.0 s.Stats.p50;
  check_float "mean" 7.0 s.Stats.mean

let test_stats_cdf () =
  let samples = List.init 1000 (fun i -> float_of_int i) in
  let cdf = Stats.cdf ~points:10 samples in
  check_int "points" 10 (List.length cdf);
  (match List.rev cdf with
   | (v, f) :: _ ->
     check_float "last fraction" 1.0 f;
     check_float "last value" 999.0 v
   | [] -> Alcotest.fail "empty cdf");
  let fracs = List.map snd cdf in
  check_bool "monotone fractions" true
    (List.sort Float.compare fracs = fracs)

let test_stats_cdf_empty () = Alcotest.(check int) "empty" 0 (List.length (Stats.cdf []))

let test_stats_histogram () =
  let counts, overflow =
    Stats.histogram ~buckets:[ 1.0; 2.0; 5.0 ] [ 0.5; 1.5; 1.7; 3.0; 99.0 ]
  in
  Alcotest.(check (list (pair (float 1e-9) int)))
    "buckets"
    [ (1.0, 1); (2.0, 2); (5.0, 1) ]
    counts;
  check_int "overflow" 1 overflow

let test_stats_histogram_overflow () =
  (* Samples above the largest bound land in the explicit overflow count,
     never in an in-range bucket. *)
  let counts, overflow =
    Stats.histogram ~buckets:[ 10.0; 20.0 ] [ 20.0; 20.1; 1e9; 5.0 ]
  in
  Alcotest.(check (list (pair (float 1e-9) int)))
    "in-range counts"
    [ (10.0, 1); (20.0, 1) ]
    counts;
  check_int "overflow" 2 overflow;
  (* Binary-search bucketing agrees with a linear reference over many
     samples and duplicate/unsorted bounds. *)
  let samples = List.init 500 (fun i -> float_of_int (i mod 37) /. 3.0) in
  let bounds = [ 5.0; 1.0; 9.0; 1.0; 3.5 ] in
  let counts, overflow = Stats.histogram ~buckets:bounds samples in
  let sorted = List.sort_uniq Float.compare bounds in
  let reference =
    List.map
      (fun upper ->
        ( upper,
          List.length
            (List.filter
               (fun x ->
                 x <= upper
                 && not
                      (List.exists (fun u -> u < upper && x <= u) sorted))
               samples) ))
      sorted
  in
  let ref_overflow =
    List.length (List.filter (fun x -> x > 9.0) samples)
  in
  Alcotest.(check (list (pair (float 1e-9) int))) "vs reference" reference counts;
  check_int "reference overflow" ref_overflow overflow

let test_stats_stddev () =
  check_float "constant" 0.0 (Stats.stddev [ 4.0; 4.0; 4.0 ]);
  check_bool "spread" true (Stats.stddev [ 0.0; 10.0 ] > 4.9)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "dsim"
    [
      ( "rng",
        [
          quick "deterministic" test_rng_deterministic;
          quick "seeds differ" test_rng_seeds_differ;
          quick "bounds" test_rng_bounds;
          quick "split independent" test_rng_split_independent;
          quick "exponential mean" test_rng_exponential_mean;
          quick "shuffle permutation" test_rng_shuffle_permutation;
          quick "sample without replacement" test_rng_sample_without_replacement;
          quick "int uniform" test_rng_int_uniform;
          quick "int large bound" test_rng_int_large_bound;
        ] );
      ( "event_queue",
        [
          quick "time order" test_queue_time_order;
          quick "fifo ties" test_queue_fifo_ties;
          quick "nested scheduling" test_queue_nested_scheduling;
          quick "negative delay clamped" test_queue_negative_delay_clamped;
          quick "run_until" test_queue_run_until;
          quick "max events" test_queue_max_events;
          quick "heap stress" test_queue_heap_stress;
        ] );
      ( "stats",
        [
          quick "percentiles" test_stats_percentiles;
          quick "single sample" test_stats_single_sample;
          quick "histogram overflow" test_stats_histogram_overflow;
          quick "cdf" test_stats_cdf;
          quick "cdf empty" test_stats_cdf_empty;
          quick "histogram" test_stats_histogram;
          quick "stddev" test_stats_stddev;
        ] );
    ]
