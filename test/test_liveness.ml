(* Session liveness, graceful restart, and chaos accounting: keepalive/hold
   timers over the event queue, RFC 4724 stale retention and sweeps,
   in-flight loss on connection teardown, and the GR-on vs GR-off
   blackhole-seconds comparison. Everything is seeded and asserted
   bit-reproducible. *)

open Net

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let p10 = Prefix.of_string_exn "10.0.0.0/8"

(* Chain 0 - 1 - ... - (n-1). *)
let line n =
  let g = Topology.Graph.create () in
  for i = 0 to n - 1 do
    Topology.Graph.add_node g
      (Topology.Node.make ~id:i ~name:(Printf.sprintf "r%d" i)
         ~layer:(Topology.Node.Other "R") ())
  done;
  for i = 0 to n - 2 do
    Topology.Graph.add_link g i (i + 1)
  done;
  g

let count_session_events net event =
  Bgp.Trace.count
    (function
      | Bgp.Trace.Session_event { event = e; _ } -> e = event
      | _ -> false)
    (Bgp.Network.trace net)

let blackout = { Dsim.Fault.none with drop_prob = 1.0 }

(* ---------------- hold-timer expiry ---------------- *)

let test_hold_expiry_tears_down_session () =
  (* A 100% drop fault starves both ends of keepalives; the hold timer must
     fire and tear the session down, flushing the learned route (legacy
     liveness, no graceful restart). *)
  let net = Bgp.Network.create ~seed:11 (line 2) in
  Bgp.Network.originate net 0 p10 (Attr.make ());
  ignore (Bgp.Network.converge net);
  let t0 = Bgp.Network.now net in
  check_bool "route learned" true (Bgp.Network.fib net 1 p10 <> None);
  Bgp.Trace.clear (Bgp.Network.trace net);
  Bgp.Network.set_fault net (Some (Dsim.Fault.create ~seed:12 blackout));
  Bgp.Network.enable_liveness ~until:(t0 +. 0.05) net;
  (* Just past the first hold firing: checks run every keepalive interval
     (2 ms), so the 6 ms hold time first trips at the 8 ms check. The
     reconnect loop bounces the session at the same instant, but its
     full-table resend is eaten by the blackout too — the route stays
     gone. *)
  ignore (Bgp.Network.run_until net ~time:(t0 +. 0.009));
  check_bool "hold timer fired" true
    (count_session_events net "hold-expired" >= 1);
  check_bool "route flushed on expiry" true (Bgp.Network.fib net 1 p10 = None);
  (* Keepalives are real messages through the fault model: the blackout
     must be dropping them. *)
  check_bool "keepalives were sent" true
    (Bgp.Trace.count
       (function
         | Bgp.Trace.Message_sent { msg = Bgp.Msg.Keepalive; _ } -> true
         | _ -> false)
       (Bgp.Network.trace net)
    >= 2);
  (* Heal: the transport recovers and every session is force-resynced
     ([~all]: the last reconnect bounce left the session nominally up at
     both ends, but its resend was eaten — a blinded session a plain
     re-establishment would skip). *)
  ignore (Bgp.Network.run_until net ~time:(t0 +. 0.05));
  Bgp.Network.set_fault net None;
  Bgp.Network.reestablish_sessions ~all:true net;
  ignore (Bgp.Network.converge net);
  check_bool "route restored after heal" true (Bgp.Network.fib net 1 p10 <> None);
  check_int "clean quiescence" 0
    (List.length (Centralium.Invariant.check net))

let test_hold_expiry_deterministic () =
  let run () =
    let net = Bgp.Network.create ~seed:11 (line 3) in
    Bgp.Network.originate net 0 p10 (Attr.make ());
    ignore (Bgp.Network.converge net);
    let t0 = Bgp.Network.now net in
    Bgp.Trace.clear (Bgp.Network.trace net);
    Bgp.Network.set_fault net (Some (Dsim.Fault.create ~seed:12 blackout));
    Bgp.Network.enable_liveness ~until:(t0 +. 0.05) net;
    ignore (Bgp.Network.run_until net ~time:(t0 +. 0.05));
    Bgp.Network.set_fault net None;
    Bgp.Network.reestablish_sessions net;
    ignore (Bgp.Network.converge net);
    ( count_session_events net "hold-expired",
      count_session_events net "reconnected",
      Bgp.Trace.events (Bgp.Network.trace net) )
  in
  let h1, r1, e1 = run () in
  let h2, r2, e2 = run () in
  check_bool "some expiries" true (h1 >= 1);
  check_int "expiries reproducible" h1 h2;
  check_int "reconnects reproducible" r1 r2;
  check_bool "trace bit-identical" true (e1 = e2)

(* ---------------- stale-path sweep ---------------- *)

let test_stale_path_sweep () =
  (* Graceful restart: hold expiry marks the learned route stale but keeps
     forwarding on it (fail-static); if the peer never refreshes it, the
     stale-path timer sweeps it. *)
  let net = Bgp.Network.create ~seed:11 (line 2) in
  Bgp.Network.originate net 0 p10 (Attr.make ());
  ignore (Bgp.Network.converge net);
  let t0 = Bgp.Network.now net in
  Bgp.Trace.clear (Bgp.Network.trace net);
  Bgp.Network.set_fault net (Some (Dsim.Fault.create ~seed:12 blackout));
  let config = Bgp.Liveness.with_gr Bgp.Liveness.default in
  Bgp.Network.enable_liveness ~config ~until:(t0 +. 0.03) net;
  ignore (Bgp.Network.run_until net ~time:(t0 +. 0.009));
  (* Hold expired, but under GR the route is stale-retained, not flushed. *)
  check_bool "hold timer fired" true
    (count_session_events net "hold-expired" >= 1);
  check_bool "still forwarding on stale route" true
    (Bgp.Network.fib net 1 p10 <> None);
  check_bool "marked stale" true
    (Bgp.Speaker.is_stale (Bgp.Network.speaker net 1) p10 ~peer:0 ~session:0);
  (* Let the liveness window close and the pending stale-path timers
     (stale_path_time after each loss) drain: the peer stayed silent, so
     the sweep must remove the route. *)
  ignore (Bgp.Network.converge net);
  check_bool "sweep happened" true
    (count_session_events net "stale-swept" >= 1);
  check_bool "stale route swept" true (Bgp.Network.fib net 1 p10 = None);
  check_int "no marks leaked" 0
    (List.length (Bgp.Speaker.stale_routes (Bgp.Network.speaker net 1)));
  (* Heal and verify clean quiescence. *)
  Bgp.Network.set_fault net None;
  Bgp.Network.reestablish_sessions ~all:true net;
  ignore (Bgp.Network.converge net);
  check_bool "route restored" true (Bgp.Network.fib net 1 p10 <> None);
  check_int "clean quiescence" 0
    (List.length (Centralium.Invariant.check net))

(* ---------------- blinded session (legacy-mode bugfix) ---------------- *)

let test_blinded_session_detected_without_timers () =
  (* Without liveness timers a 100% drop fault leaves the session nominally
     up at both ends while their RIBs silently diverge. Only the cross-end
     session-staleness check can see it. *)
  let net = Bgp.Network.create ~seed:11 (line 2) in
  Bgp.Network.originate net 0 p10 (Attr.make ());
  ignore (Bgp.Network.converge net);
  Bgp.Network.set_fault net (Some (Dsim.Fault.create ~seed:12 blackout));
  Bgp.Network.withdraw_origin net 0 p10;
  ignore (Bgp.Network.converge net);
  (* The withdraw was eaten: node 1 still forwards to a route the origin
     no longer advertises, and both ends still consider the session up. *)
  check_bool "ghost route held" true (Bgp.Network.fib net 1 p10 <> None);
  check_bool "session nominally up" true
    (Bgp.Speaker.session_up (Bgp.Network.speaker net 1) ~peer:0 ~session:0);
  let vs = Centralium.Invariant.check_session_staleness net in
  check_bool "divergence detected" true (vs <> []);
  List.iter
    (fun (v : Centralium.Invariant.violation) ->
      check_bool "kind is session-stale" true
        (v.kind = Centralium.Invariant.Session_stale))
    vs;
  check_bool "full check reports it too" true
    (List.exists
       (fun (v : Centralium.Invariant.violation) ->
         v.kind = Centralium.Invariant.Session_stale)
       (Centralium.Invariant.check net));
  (* Repair: heal the transport and force a full resync of every session —
     the blinded session cannot be found by looking at session state, which
     is exactly why [~all:true] exists. *)
  Bgp.Network.set_fault net None;
  Bgp.Network.reestablish_sessions ~all:true net;
  ignore (Bgp.Network.converge net);
  check_bool "ghost gone after resync" true (Bgp.Network.fib net 1 p10 = None);
  check_int "clean quiescence" 0
    (List.length (Centralium.Invariant.check net))

(* ---------------- in-flight loss on connection teardown ---------------- *)

let test_inflight_message_dies_with_connection () =
  (* A message in flight when its session drops must not be delivered into
     the re-established session: here a delayed Update would resurrect a
     route whose origin was withdrawn while the link was down, leaving a
     permanently divergent ghost. *)
  let slow _rng = 0.5 in
  let net = Bgp.Network.create ~seed:11 ~latency:slow (line 2) in
  (* t=2.0: originate — the Update is in flight until t=2.5. *)
  Bgp.Network.originate ~delay:2.0 net 0 p10 (Attr.make ());
  (* t=2.2: the link flaps; t=2.3: the origin is withdrawn while down
     (nothing to send — the session is down); t=2.4: link back up, the
     resync finds no route to resend. *)
  Bgp.Network.set_link ~delay:2.2 net 0 1 ~up:false;
  Bgp.Network.withdraw_origin ~delay:2.3 net 0 p10;
  Bgp.Network.set_link ~delay:2.4 net 0 1 ~up:true;
  ignore (Bgp.Network.converge net);
  (* The t=2.5 delivery belongs to the dead connection. *)
  check_bool "no ghost from the dead connection" true
    (Bgp.Network.fib net 1 p10 = None);
  check_int "clean quiescence" 0
    (List.length (Centralium.Invariant.check net))

(* ---------------- GR on vs off: the acceptance comparison ------------- *)

let test_chaos_gr_strictly_reduces_blackhole_seconds () =
  let r = Experiments.Scenarios.Chaos.run ~seed:7 () in
  let on = r.Experiments.Scenarios.Chaos.gr_on
  and off = r.Experiments.Scenarios.Chaos.gr_off in
  check_bool "identical windows" true (on.window = off.window);
  check_bool "gr strictly reduces blackhole-seconds" true
    (on.blackhole_seconds < off.blackhole_seconds);
  check_bool "gr_wins agrees" true r.Experiments.Scenarios.Chaos.gr_wins;
  check_int "gr-on quiesces violation-free" 0
    (List.length on.final_violations);
  check_int "gr-off quiesces violation-free" 0
    (List.length off.final_violations);
  check_bool "stale machinery exercised" true (on.stale_sweeps > 0);
  check_bool "hold timers exercised" true
    (on.hold_expiries > 0 && off.hold_expiries > 0)

let test_chaos_bit_reproducible () =
  let r1 = Experiments.Scenarios.Chaos.run ~seed:7 () in
  let r2 = Experiments.Scenarios.Chaos.run ~seed:7 () in
  check_bool "identical results across runs" true (r1 = r2);
  check_bool "fib digests equal" true
    (r1.Experiments.Scenarios.Chaos.gr_on.fib_digest
    = r2.Experiments.Scenarios.Chaos.gr_on.fib_digest)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "liveness"
    [
      ( "hold-timer",
        [
          quick "expiry tears down session" test_hold_expiry_tears_down_session;
          quick "deterministic" test_hold_expiry_deterministic;
        ] );
      ("graceful-restart", [ quick "stale-path sweep" test_stale_path_sweep ]);
      ( "blinded-session",
        [
          quick "detected without timers"
            test_blinded_session_detected_without_timers;
        ] );
      ( "connection",
        [
          quick "in-flight dies with session"
            test_inflight_message_dies_with_connection;
        ] );
      ( "chaos",
        [
          quick "gr strictly reduces blackhole-seconds"
            test_chaos_gr_strictly_reduces_blackhole_seconds;
          quick "bit-reproducible" test_chaos_bit_reproducible;
        ] );
    ]
