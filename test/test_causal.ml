(* Causal provenance DAG: hand-checked critical path on a line topology,
   byte-identical logs across runs at the same seed (chaos, both GR
   modes), blackhole attribution accounting for 100% of the loss
   integral's blackhole-seconds, and instrumentation neutrality (tracing
   changes no simulation outcome). *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let default_pid = Net.Intern.Prefix_id.id Net.Prefix.default_v4

(* A chain 0 - 1 - ... - (n-1) of plain routers. *)
let line n =
  let g = Topology.Graph.create () in
  for i = 0 to n - 1 do
    Topology.Graph.add_node g
      (Topology.Node.make ~id:i ~name:(Printf.sprintf "r%d" i)
         ~layer:(Topology.Node.Other "R") ())
  done;
  for i = 0 to n - 2 do
    Topology.Graph.add_link g i (i + 1)
  done;
  g

(* ---------------- Hand-checked critical path ---------------- *)

(* 0 - 1 - 2, constant 1 ms links, one origin announce at node 0. The
   critical path must be the literal hop chain, its wire edges exactly
   1 ms each, and the per-edge delays must telescope to the convergence
   time (terminal FIB time - origin time = 2 ms). *)
let test_line_hand_check () =
  let causal = Obs.Causal.create () in
  Obs.Causal.with_recorder causal (fun () ->
      let net =
        Bgp.Network.create ~seed:1 ~latency:(fun _ -> 0.001) (line 3)
      in
      Bgp.Network.originate net 0 Net.Prefix.default_v4 (Net.Attr.make ());
      ignore (Bgp.Network.converge net));
  match Obs.Causal.critical_path causal ~prefix:default_pid with
  | None -> Alcotest.fail "no critical path recorded"
  | Some chain ->
    let kinds = List.map (fun (e : Obs.Causal.event) -> e.kind) chain.c_events in
    checkb "chain is the literal hop chain" true
      (kinds
       = [
           Obs.Causal.Origin; Decide; Send; Recv; Decide; Send; Recv; Decide;
           Fib;
         ]);
    (match (List.hd chain.c_events, List.rev chain.c_events) with
     | root, terminal :: _ ->
       checki "rooted at the originator" 0 root.device;
       checki "terminates at the far end" 2 terminal.device;
       checkb "total = terminal - root" true
         (chain.c_total = terminal.time -. root.time)
     | _ -> Alcotest.fail "empty chain");
    Alcotest.(check (float 1e-12)) "convergence time is two 1 ms hops" 0.002
      chain.c_total;
    let edge_sum =
      List.fold_left
        (fun acc (e : Obs.Causal.edge) -> acc +. e.e_delay)
        0.0 chain.c_edges
    in
    checkb "per-edge delays telescope exactly to the total" true
      (edge_sum = chain.c_total);
    let wires =
      List.filter (fun (e : Obs.Causal.edge) -> e.e_label = "wire") chain.c_edges
    in
    checki "two wire hops" 2 (List.length wires);
    List.iter
      (fun (e : Obs.Causal.edge) ->
        Alcotest.(check (float 1e-12)) "wire edge is the drawn latency" 0.001
          e.e_delay;
        checkb "wire delay decomposes into prop/fault/queue" true
          (List.fold_left (fun a (_, v) -> a +. v) 0.0 e.e_parts = e.e_delay))
      wires;
    checkb "rendering works" true
      (Obs.Causal.chain_lines chain <> [])

(* ---------------- Determinism across runs ---------------- *)

let chaos_traced ~seed ~gr =
  let causal = Obs.Causal.create () in
  let m =
    Obs.Causal.with_recorder causal (fun () ->
        Experiments.Scenarios.Chaos.run_mode ~seed ~gr ())
  in
  (causal, m)

let render causal =
  let json = Obs.Json.to_string (Obs.Causal.to_json causal) in
  let chain =
    match Obs.Causal.critical_path causal ~prefix:default_pid with
    | Some c -> String.concat "\n" (Obs.Causal.chain_lines c)
    | None -> ""
  in
  (json, chain)

(* Chaos scenario (severe message faults, liveness timers, mid-window
   restarts), both GR modes: two runs at the same seed must produce
   byte-identical causal DAGs and critical-path renderings. *)
let test_chaos_determinism () =
  List.iter
    (fun gr ->
      let c1, _ = chaos_traced ~seed:42 ~gr in
      let c2, _ = chaos_traced ~seed:42 ~gr in
      let j1, r1 = render c1 and j2, r2 = render c2 in
      checkb "log non-empty" true (Obs.Causal.length c1 > 0)
      ;
      checkb
        (Printf.sprintf "causal DAG byte-identical (gr=%b)" gr)
        true (j1 = j2);
      checkb "critical path found" true (r1 <> "");
      checkb
        (Printf.sprintf "critical path byte-identical (gr=%b)" gr)
        true (r1 = r2))
    [ true; false ]

(* ---------------- Blackhole attribution ---------------- *)

let test_blackhole_attribution () =
  let causal, m = chaos_traced ~seed:42 ~gr:false in
  let segments =
    List.map
      (fun (s : Dataplane.Metrics.loss_segment) ->
        (s.seg_from, s.seg_until, s.seg_blackholed))
      m.Experiments.Scenarios.Chaos.loss_segments
  in
  let attribution =
    Obs.Causal.attribute causal ~prefix:default_pid ~segments
  in
  checkb "chaos run blackholes traffic" true
    (m.Experiments.Scenarios.Chaos.blackhole_seconds > 0.0);
  checkb "attribution non-empty" true (attribution <> []);
  let sum =
    List.fold_left
      (fun acc (a : Obs.Causal.attributed) -> acc +. a.a_seconds)
      0.0 attribution
  in
  (* Bit-exact, not approximate: the attribution folds the same clamped
     segments in the same order as the loss integral. *)
  checkb "accounts for 100% of blackhole-seconds" true
    (sum = m.Experiments.Scenarios.Chaos.blackhole_seconds);
  checkb "intervals cite causal FIB events" true
    (List.exists
       (fun (a : Obs.Causal.attributed) -> a.a_opened_by <> [])
       attribution);
  List.iter
    (fun (a : Obs.Causal.attributed) ->
      List.iter
        (fun id ->
          match Obs.Causal.event causal id with
          | Some ev -> checkb "cited event is a FIB change" true (ev.kind = Fib)
          | None -> Alcotest.failf "dangling event id %d" id)
        (a.a_opened_by @ a.a_closed_by))
    attribution

(* ---------------- Instrumentation neutrality ---------------- *)

(* Recording draws no RNG and schedules nothing: the simulation outcome
   with a recorder installed is bit-identical to the outcome without. *)
let test_instrumentation_neutral () =
  let bare = Experiments.Scenarios.Chaos.run_mode ~seed:7 ~gr:true () in
  let causal, traced = chaos_traced ~seed:7 ~gr:true in
  checkb "events were recorded" true (Obs.Causal.length causal > 0);
  checkb "fib digest identical with tracing on" true
    (bare.Experiments.Scenarios.Chaos.fib_digest
     = traced.Experiments.Scenarios.Chaos.fib_digest);
  checkb "blackhole-seconds identical with tracing on" true
    (bare.Experiments.Scenarios.Chaos.blackhole_seconds
     = traced.Experiments.Scenarios.Chaos.blackhole_seconds)

let () =
  Alcotest.run "causal"
    [
      ( "critical-path",
        [ Alcotest.test_case "hand-checked line" `Quick test_line_hand_check ]
      );
      ( "determinism",
        [
          Alcotest.test_case "chaos, both GR modes" `Quick
            test_chaos_determinism;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "100% of blackhole-seconds" `Quick
            test_blackhole_attribution;
        ] );
      ( "neutrality",
        [
          Alcotest.test_case "tracing changes nothing" `Quick
            test_instrumentation_neutral;
        ] );
    ]
