(* Tests for the management-plane fault model and the resilient
   deployment loop: journaled resume after a controller crash, rollback on
   failure budget, fail-static behaviour under a partitioned management
   network, and backoff determinism. *)

open Centralium

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---------------- Mgmt_fault fate model ---------------- *)

let test_fate_determinism () =
  let draw seed =
    let f = Dsim.Mgmt_fault.create ~seed Dsim.Mgmt_fault.hostile in
    List.init 200 (fun _ -> Dsim.Mgmt_fault.rpc_fate f)
  in
  check_bool "same seed, same fates" true (draw 5 = draw 5);
  check_bool "different seed, different fates" true (draw 5 <> draw 6)

let test_fate_none_profile () =
  let f = Dsim.Mgmt_fault.create ~seed:1 Dsim.Mgmt_fault.none in
  check_bool "ideal plane always delivers" true
    (List.init 100 (fun _ -> Dsim.Mgmt_fault.rpc_fate f)
    |> List.for_all (( = ) Dsim.Mgmt_fault.Deliver));
  check_bool "ideal writes land" true (Dsim.Mgmt_fault.nsdb_write_ok f)

let test_scheduled_crash () =
  let f =
    Dsim.Mgmt_fault.create ~crash_after_ops:3 ~seed:1 Dsim.Mgmt_fault.none
  in
  check_bool "alive before" false (Dsim.Mgmt_fault.crashed f);
  ignore (Dsim.Mgmt_fault.rpc_fate f);
  ignore (Dsim.Mgmt_fault.nsdb_write_ok f);
  check_bool "alive at 2 ops" false (Dsim.Mgmt_fault.crashed f);
  ignore (Dsim.Mgmt_fault.rpc_fate f);
  check_bool "crashed at 3 ops" true (Dsim.Mgmt_fault.crashed f);
  check_int "ops counted" 3 (Dsim.Mgmt_fault.ops f)

(* ---------------- Fixtures ---------------- *)

let expansion_fixture ?(seed = 3) () =
  let x = Topology.Clos.expansion () in
  let net = Bgp.Network.create ~seed x.Topology.Clos.xgraph in
  Bgp.Network.originate net x.backbone Net.Prefix.default_v4
    (Net.Attr.make
       ~as_path:(Net.As_path.of_asns [ Net.Asn.of_int 65000 ])
       ());
  ignore (Bgp.Network.converge net);
  let controller = Controller.create ~seed:11 net in
  let plan = Apps.Expansion_equalizer.plan x in
  (x, net, controller, plan)

let all_native net =
  Topology.Graph.nodes (Bgp.Network.graph net)
  |> List.for_all (fun (n : Topology.Node.t) ->
         Bgp.Rib_policy.is_native
           (Bgp.Speaker.hooks (Bgp.Network.speaker net n.Topology.Node.id)))

(* ---------------- Typed RPC failures ---------------- *)

let test_reconcile_typed_failures () =
  let _, _, controller, plan = expansion_fixture () in
  let agent = Controller.agent controller in
  let device, rpa = List.hd plan.Controller.rpas in
  Switch_agent.set_intended agent ~device rpa;
  (* Probability-1 profiles force each fate deterministically. *)
  let forced prob =
    Switch_agent.set_mgmt_fault agent
      (Some (Dsim.Mgmt_fault.create ~seed:1 prob));
    Switch_agent.reconcile_device agent device
  in
  check_bool "lost" true
    (forced { Dsim.Mgmt_fault.none with rpc_loss_prob = 1.0 } = `Rpc_lost);
  (match forced { Dsim.Mgmt_fault.none with rpc_transient_prob = 1.0 } with
   | `Transient _ -> ()
   | _ -> Alcotest.fail "expected `Transient");
  check_bool "still a straggler" true
    (List.mem device (Switch_agent.stragglers agent));
  (* A timeout applies the RPA but reports failure; the retry is a no-op. *)
  check_bool "timeout" true
    (forced { Dsim.Mgmt_fault.none with rpc_timeout_prob = 1.0 }
     = `Rpc_timeout);
  check_bool "timeout applied the RPA" true
    (Switch_agent.reconcile_device agent device = `In_sync)

let test_deploy_times_deterministic () =
  let run () =
    let _, _, controller, plan = expansion_fixture () in
    match Controller.deploy controller plan with
    | Ok report -> report.Controller.deploy_seconds
    | Error es -> Alcotest.fail (String.concat "; " es)
  in
  let a = run () and b = run () in
  check_bool "non-empty samples" true (a <> []);
  check_bool "bit-identical deploy times across runs" true (a = b)

(* ---------------- Journaled resume after a crash ---------------- *)

let test_crash_then_resume_converges_identically () =
  let c =
    Experiments.Scenarios.Faulted_deploy.crash_vs_uninterrupted ~seed:5 ()
  in
  let i = c.Experiments.Scenarios.Faulted_deploy.interrupted in
  let u = c.Experiments.Scenarios.Faulted_deploy.uninterrupted in
  check_bool "initial deploy hit the scheduled crash" true i.crashed;
  check_bool "resumed from the journal" true i.resumed;
  check_string "resume completed" "completed" i.outcome;
  check_string "journal closed" "completed"
    (Option.value i.journal_status ~default:"<none>");
  check_string "uninterrupted completed" "completed" u.outcome;
  (* The acceptance criterion: bit-identical forwarding state, and no
     invariant violation while the controller was down. *)
  check_bool "bit-identical FIBs" true
    c.Experiments.Scenarios.Faulted_deploy.digests_match;
  check_int "no transient violations during the outage" 0
    (List.length i.transient_violations);
  check_int "no violations at phase boundaries" 0
    (List.length i.phase_violations);
  check_int "no final violations" 0 (List.length i.final_violations)

let test_resume_without_journal_aborts () =
  let _, _, controller, plan = expansion_fixture () in
  match Controller.resume controller plan with
  | Controller.Aborted _ -> ()
  | _ -> Alcotest.fail "expected Aborted without a journal"

(* ---------------- Rollback on failure budget ---------------- *)

let test_rollback_on_failure_budget () =
  let _, net, controller, plan = expansion_fixture () in
  let agent = Controller.agent controller in
  (* Every RPC fails with a retryable error: the first phase must exhaust
     its budget and the deployment must undo itself. *)
  let fault =
    Dsim.Mgmt_fault.create ~seed:2
      { Dsim.Mgmt_fault.none with rpc_transient_prob = 1.0 }
  in
  Switch_agent.set_mgmt_fault agent (Some fault);
  (match Controller.deploy_resilient ~fault controller plan with
   | Controller.Rolled_back { partial; reasons } ->
     check_bool "gave up on devices" true (partial.Controller.gave_up <> []);
     check_bool "budget named in reasons" true
       (List.exists
          (fun r ->
            (* matches "...exceeded its failure budget..." *)
            String.length r > 0 && String.contains r 'b')
          reasons);
     check_bool "retried before giving up" true (partial.Controller.retries > 0)
   | _ -> Alcotest.fail "expected Rolled_back");
  Switch_agent.set_mgmt_fault agent None;
  check_string "journal says rolled-back" "rolled-back"
    (Option.value (Controller.journal_status controller plan)
       ~default:"<none>");
  check_bool "all devices back to native BGP" true (all_native net);
  (* NSDB intent matches device state: the recorded plan is cleared. *)
  check_bool "plan record cleared" true
    (Controller.nsdb controller
    |> fun db ->
    Nsdb.Replicated.get db
      ~path:
        (Printf.sprintf "plans/%s/devices/*" plan.Controller.plan_name)
    |> List.for_all (function
         | _, Nsdb.Rpa rpa -> Rpa.is_empty rpa
         | _ -> false))

let test_post_check_failure_rolls_back () =
  let _, net, controller, plan = expansion_fixture () in
  let failing =
    {
      Health.check_name = "always-red";
      run = (fun () -> Error "synthetic failure");
    }
  in
  let plan = { plan with Controller.post_checks = [ failing ] } in
  (match Controller.deploy controller plan with
   | Error reasons ->
     check_bool "post-check named" true
       (List.exists
          (fun r -> String.length r >= 10 && String.sub r 0 10 = "post-check")
          reasons)
   | Ok _ -> Alcotest.fail "expected Error from failing post-check");
  (* The satellite bugfix: the device state and the NSDB record are no
     longer left claiming the plan is deployed. *)
  check_bool "devices rolled back to native" true (all_native net);
  check_string "journal says rolled-back" "rolled-back"
    (Option.value (Controller.journal_status controller plan)
       ~default:"<none>")

(* ---------------- Fail-static under a management partition -------- *)

let test_partitioned_management_fail_static () =
  let r =
    Experiments.Scenarios.Faulted_deploy.run ~seed:9
      ~profile:Dsim.Mgmt_fault.none ~resume:false ~partition_devices:2 ()
  in
  check_string "deploy completes around the partition" "completed" r.outcome;
  check_int "both cut-off devices unreachable" 2 (List.length r.unreachable);
  check_int "they are stragglers while cut off" 2
    (List.length r.stragglers_during_outage);
  check_int "and alerts fire: not in maintenance" 2
    (List.length r.unexpected_unreachable);
  check_bool "same devices" true
    (r.unreachable = r.stragglers_during_outage
    && r.unreachable = r.unexpected_unreachable);
  (* Fail static: the degraded fleet never looped or blackholed. *)
  check_int "no transient violations" 0 (List.length r.transient_violations);
  check_int "no final violations" 0 (List.length r.final_violations)

(* ---------------- Backoff determinism ---------------- *)

let test_backoff_determinism () =
  let run seed =
    let r =
      Experiments.Scenarios.Faulted_deploy.run ~seed
        ~profile:Dsim.Mgmt_fault.hostile ~resume:false ()
    in
    (r.retries, r.backoff_seconds)
  in
  let retries, schedule = run 21 in
  check_bool "hostile profile forces retries" true (retries > 0);
  check_bool "identical seeds, identical retry schedule" true
    ((retries, schedule) = run 21);
  check_bool "different seed, different schedule" true (schedule <> snd (run 22))

(* ---------------- Remove honors health checks ---------------- *)

let test_remove_honors_checks () =
  let _, net, controller, plan = expansion_fixture () in
  (match Controller.deploy controller plan with
   | Ok _ -> ()
   | Error es -> Alcotest.fail (String.concat "; " es));
  let failing name =
    { Health.check_name = name; run = (fun () -> Error "synthetic") }
  in
  (* Pre-check failure aborts: the RPAs stay installed. *)
  (match
     Controller.remove controller
       { plan with Controller.pre_checks = [ failing "gate" ] }
   with
   | Error reasons ->
     check_bool "pre-check named" true
       (List.exists
          (fun r -> String.length r >= 9 && String.sub r 0 9 = "pre-check")
          reasons)
   | Ok _ -> Alcotest.fail "expected Error from failing pre-check");
  check_bool "removal did not proceed" true (not (all_native net));
  (* Post-check failure reports but keeps the removal. *)
  (match
     Controller.remove controller
       { plan with Controller.post_checks = [ failing "verify" ] }
   with
   | Error reasons ->
     check_bool "post-check named" true
       (List.exists
          (fun r -> String.length r >= 10 && String.sub r 0 10 = "post-check")
          reasons)
   | Ok _ -> Alcotest.fail "expected Error from failing post-check");
  check_bool "removal kept despite red post-check" true (all_native net)

(* ---------------- Scenario smoke (the CI chaos job's core) -------- *)

let test_faulted_deploy_scenario_deterministic () =
  let run () =
    let r =
      Experiments.Scenarios.Faulted_deploy.run ~seed:33 ~resume:true
        ~crash_after_ops:20 ()
    in
    (r.outcome, r.applied, r.retries, r.backoff_seconds, r.fib_digest)
  in
  check_bool "scenario is bit-reproducible" true (run () = run ())

let () =
  Alcotest.run "chaos"
    [
      ( "mgmt-fault",
        [
          Alcotest.test_case "fate determinism" `Quick test_fate_determinism;
          Alcotest.test_case "none profile" `Quick test_fate_none_profile;
          Alcotest.test_case "scheduled crash" `Quick test_scheduled_crash;
        ] );
      ( "agent",
        [
          Alcotest.test_case "typed RPC failures" `Quick
            test_reconcile_typed_failures;
          Alcotest.test_case "deterministic deploy times" `Quick
            test_deploy_times_deterministic;
        ] );
      ( "resume",
        [
          Alcotest.test_case "crash+resume converges identically" `Quick
            test_crash_then_resume_converges_identically;
          Alcotest.test_case "resume without journal aborts" `Quick
            test_resume_without_journal_aborts;
        ] );
      ( "rollback",
        [
          Alcotest.test_case "failure budget triggers rollback" `Quick
            test_rollback_on_failure_budget;
          Alcotest.test_case "post-check failure rolls back" `Quick
            test_post_check_failure_rolls_back;
        ] );
      ( "fail-static",
        [
          Alcotest.test_case "partitioned management network" `Quick
            test_partitioned_management_fail_static;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "backoff schedule" `Quick test_backoff_determinism;
          Alcotest.test_case "scenario reproducible" `Quick
            test_faulted_deploy_scenario_deterministic;
        ] );
      ( "remove",
        [
          Alcotest.test_case "remove honors checks" `Quick
            test_remove_honors_checks;
        ] );
    ]
