(* Tests for lib/bgp: decision process, policies, speaker transitions, and
   event-driven network convergence. *)

open Net

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let asn = Asn.of_int
let p10 = Prefix.of_string_exn "10.0.0.0/8"

let path ?(peer = 1) ?(session = 0) ?(local_pref = 100) ?(med = 0)
    ?(origin = Attr.Igp) ?link_bandwidth asns =
  Bgp.Path.make ~peer ~session
    ~attr:
      (Attr.make ~origin ~as_path:(As_path.of_asns (List.map asn asns))
         ~local_pref ~med ?link_bandwidth ())

(* ---------------- Decision ---------------- *)

let test_decision_local_pref_wins () =
  let a = path ~peer:1 ~local_pref:200 [ 1; 2; 3 ] in
  let b = path ~peer:2 ~local_pref:100 [ 1 ] in
  check_bool "higher local pref preferred despite longer path" true
    (Bgp.Decision.preference_compare a b < 0)

let test_decision_shorter_path_wins () =
  let a = path ~peer:1 [ 1 ] in
  let b = path ~peer:2 [ 1; 2 ] in
  check_bool "shorter wins" true (Bgp.Decision.preference_compare a b < 0)

let test_decision_origin_then_med () =
  let igp = path ~peer:1 ~origin:Attr.Igp [ 1 ] in
  let egp = path ~peer:2 ~origin:Attr.Egp [ 1 ] in
  check_bool "igp beats egp" true (Bgp.Decision.preference_compare igp egp < 0);
  let low_med = path ~peer:1 ~med:5 [ 1 ] in
  let high_med = path ~peer:2 ~med:10 [ 1 ] in
  check_bool "lower med wins" true
    (Bgp.Decision.preference_compare low_med high_med < 0)

let test_decision_multipath_set () =
  let candidates =
    [ path ~peer:1 [ 1; 9 ]; path ~peer:2 [ 2; 9 ]; path ~peer:3 [ 3; 4; 9 ] ]
  in
  let selected, best = Bgp.Decision.select ~multipath:true candidates in
  check_int "two equal-cost" 2 (List.length selected);
  (match best with
   | Some b -> check_int "best is lowest peer" 1 b.Bgp.Path.peer
   | None -> Alcotest.fail "no best");
  let single, _ = Bgp.Decision.select ~multipath:false candidates in
  check_int "no multipath" 1 (List.length single)

let test_decision_empty () =
  let selected, best = Bgp.Decision.select ~multipath:true [] in
  check_int "empty" 0 (List.length selected);
  check_bool "no best" true (best = None)

let test_decision_least_favorable () =
  let a = path ~peer:1 [ 1 ] in
  let b = path ~peer:2 [ 1; 2; 3 ] in
  (match Bgp.Decision.least_favorable [ a; b ] with
   | Some worst -> check_int "longest advertised" 2 worst.Bgp.Path.peer
   | None -> Alcotest.fail "none");
  check_bool "empty none" true (Bgp.Decision.least_favorable [] = None)

let test_decision_deterministic_total_order () =
  let candidates =
    [ path ~peer:3 [ 1 ]; path ~peer:1 [ 1 ]; path ~peer:2 [ 1 ] ]
  in
  let sorted = List.sort Bgp.Decision.preference_compare candidates in
  Alcotest.(check (list int))
    "peer tie-break" [ 1; 2; 3 ]
    (List.map (fun p -> p.Bgp.Path.peer) sorted)

(* ---------------- Policy ---------------- *)

let attr_with ?(communities = []) asns =
  List.fold_left
    (fun a c -> Attr.add_community c a)
    (Attr.make ~as_path:(As_path.of_asns (List.map asn asns)) ())
    communities

let test_policy_default_accepts () =
  check_bool "empty accepts" true
    (Bgp.Policy.apply Bgp.Policy.empty ~self:(asn 9) p10 (attr_with [ 1 ]) <> None)

let test_policy_reject () =
  check_bool "reject_all rejects" true
    (Bgp.Policy.apply Bgp.Policy.reject_all ~self:(asn 9) p10 (attr_with [ 1 ]) = None)

let test_policy_first_match_wins () =
  let c = Community.make 65100 1 in
  let policy =
    [
      Bgp.Policy.rule ~communities:[ c ] [ Bgp.Policy.Set_local_pref 200 ];
      Bgp.Policy.rule [ Bgp.Policy.Set_local_pref 50 ];
    ]
  in
  (match Bgp.Policy.apply policy ~self:(asn 9) p10 (attr_with ~communities:[ c ] [ 1 ]) with
   | Some a -> check_int "tagged gets 200" 200 a.Attr.local_pref
   | None -> Alcotest.fail "rejected");
  (match Bgp.Policy.apply policy ~self:(asn 9) p10 (attr_with [ 1 ]) with
   | Some a -> check_int "untagged gets 50" 50 a.Attr.local_pref
   | None -> Alcotest.fail "rejected")

let test_policy_prepend_self () =
  let policy = [ Bgp.Policy.rule [ Bgp.Policy.Prepend_self 2 ] ] in
  match Bgp.Policy.apply policy ~self:(asn 9) p10 (attr_with [ 1 ]) with
  | Some a ->
    check_int "padded" 3 (As_path.length a.Attr.as_path);
    check_bool "self first" true
      (As_path.first_asn a.Attr.as_path = Some (asn 9))
  | None -> Alcotest.fail "rejected"

let test_policy_prefix_match () =
  let policy =
    [
      Bgp.Policy.rule ~prefixes:[ Prefix.of_string_exn "10.0.0.0/8" ]
        [ Bgp.Policy.Reject ];
    ]
  in
  check_bool "in range rejected" true
    (Bgp.Policy.apply policy ~self:(asn 9)
       (Prefix.of_string_exn "10.1.0.0/16")
       (attr_with [ 1 ])
     = None);
  check_bool "out of range accepted" true
    (Bgp.Policy.apply policy ~self:(asn 9)
       (Prefix.of_string_exn "11.0.0.0/16")
       (attr_with [ 1 ])
     <> None)

let test_policy_as_path_regex_match () =
  let policy =
    [ Bgp.Policy.rule ~as_path:"^7" [ Bgp.Policy.Set_med 99 ] ]
  in
  (match Bgp.Policy.apply policy ~self:(asn 9) p10 (attr_with [ 7; 1 ]) with
   | Some a -> check_int "matched med" 99 a.Attr.med
   | None -> Alcotest.fail "rejected");
  match Bgp.Policy.apply policy ~self:(asn 9) p10 (attr_with [ 1; 7 ]) with
  | Some a -> check_int "unmatched med" 0 a.Attr.med
  | None -> Alcotest.fail "rejected"

let test_policy_drain_makes_less_preferred () =
  match Bgp.Policy.apply Bgp.Policy.drain ~self:(asn 9) p10 (attr_with [ 1 ]) with
  | Some drained ->
    check_bool "longer" true (As_path.length drained.Attr.as_path > 1);
    check_bool "tagged" true
      (Attr.has_community Community.Well_known.drained drained)
  | None -> Alcotest.fail "drain must not reject"

(* ---------------- Network: line and diamond convergence ---------------- *)

(* Builds a chain 0 - 1 - ... - (n-1); returns (graph). *)
let line n =
  let g = Topology.Graph.create () in
  for i = 0 to n - 1 do
    Topology.Graph.add_node g
      (Topology.Node.make ~id:i ~name:(Printf.sprintf "r%d" i)
         ~layer:(Topology.Node.Other "R") ())
  done;
  for i = 0 to n - 2 do
    Topology.Graph.add_link g i (i + 1)
  done;
  g

let diamond () =
  (* 0 -(1,2)- 3 : two equal paths. *)
  let g = Topology.Graph.create () in
  List.iter
    (fun i ->
      Topology.Graph.add_node g
        (Topology.Node.make ~id:i ~name:(Printf.sprintf "d%d" i)
           ~layer:(Topology.Node.Other "R") ()))
    [ 0; 1; 2; 3 ];
  Topology.Graph.add_link g 0 1;
  Topology.Graph.add_link g 0 2;
  Topology.Graph.add_link g 1 3;
  Topology.Graph.add_link g 2 3;
  g

let originate_default net device =
  Bgp.Network.originate net device p10 (Attr.make ())

let test_line_propagation () =
  let g = line 4 in
  let net = Bgp.Network.create ~seed:5 g in
  originate_default net 0;
  ignore (Bgp.Network.converge net);
  (* Every node has a route; AS-path grows along the line. *)
  for i = 1 to 3 do
    match Bgp.Network.fib net i p10 with
    | Some (Bgp.Speaker.Entries [ e ]) ->
      check_int (Printf.sprintf "node %d next hop" i) (i - 1)
        e.Bgp.Speaker.next_hop
    | Some (Bgp.Speaker.Entries _) -> Alcotest.fail "expected one entry"
    | Some Bgp.Speaker.Local -> Alcotest.fail "not local"
    | None -> Alcotest.fail (Printf.sprintf "node %d missing route" i)
  done;
  match Bgp.Network.fib net 0 p10 with
  | Some Bgp.Speaker.Local -> ()
  | Some (Bgp.Speaker.Entries _) | None -> Alcotest.fail "origin not local"

let test_line_as_path_length () =
  let g = line 4 in
  let net = Bgp.Network.create ~seed:5 g in
  originate_default net 0;
  ignore (Bgp.Network.converge net);
  let sp = Bgp.Network.speaker net 3 in
  match Bgp.Speaker.candidates sp p10 with
  | [ c ] -> check_int "3 hops" 3 (As_path.length c.Bgp.Path.attr.Attr.as_path)
  | _ -> Alcotest.fail "expected one candidate"

let test_diamond_multipath () =
  let net = Bgp.Network.create ~seed:5 (diamond ()) in
  originate_default net 0;
  ignore (Bgp.Network.converge net);
  match Bgp.Network.fib net 3 p10 with
  | Some (Bgp.Speaker.Entries entries) ->
    check_int "ecmp over both" 2 (List.length entries);
    List.iter (fun e -> check_int "weight 1" 1 e.Bgp.Speaker.weight) entries
  | Some Bgp.Speaker.Local | None -> Alcotest.fail "missing multipath"

let test_withdraw_propagates () =
  let g = line 3 in
  let net = Bgp.Network.create ~seed:5 g in
  originate_default net 0;
  ignore (Bgp.Network.converge net);
  Bgp.Network.withdraw_origin net 0 p10;
  ignore (Bgp.Network.converge net);
  check_bool "withdrawn everywhere" true
    (Bgp.Network.fib net 1 p10 = None && Bgp.Network.fib net 2 p10 = None)

let test_link_failure_reroutes () =
  let net = Bgp.Network.create ~seed:5 (diamond ()) in
  originate_default net 0;
  ignore (Bgp.Network.converge net);
  Bgp.Network.set_link net 1 3 ~up:false;
  ignore (Bgp.Network.converge net);
  (match Bgp.Network.fib net 3 p10 with
   | Some (Bgp.Speaker.Entries [ e ]) ->
     check_int "only via 2" 2 e.Bgp.Speaker.next_hop
   | Some (Bgp.Speaker.Entries _) | Some Bgp.Speaker.Local | None ->
     Alcotest.fail "expected single path via 2");
  Bgp.Network.set_link net 1 3 ~up:true;
  ignore (Bgp.Network.converge net);
  match Bgp.Network.fib net 3 p10 with
  | Some (Bgp.Speaker.Entries entries) ->
    check_int "restored ecmp" 2 (List.length entries)
  | Some Bgp.Speaker.Local | None -> Alcotest.fail "route lost after recovery"

let test_loop_prevention () =
  (* A triangle: routes must not loop; every node ends with a route and no
     candidate contains its own ASN. *)
  let g = Topology.Graph.create () in
  List.iter
    (fun i ->
      Topology.Graph.add_node g
        (Topology.Node.make ~id:i ~name:(Printf.sprintf "t%d" i)
           ~layer:(Topology.Node.Other "R") ()))
    [ 0; 1; 2 ];
  Topology.Graph.add_link g 0 1;
  Topology.Graph.add_link g 1 2;
  Topology.Graph.add_link g 2 0;
  let net = Bgp.Network.create ~seed:9 g in
  originate_default net 0;
  ignore (Bgp.Network.converge net);
  List.iter
    (fun i ->
      let sp = Bgp.Network.speaker net i in
      let own = Bgp.Speaker.asn sp in
      List.iter
        (fun c ->
          check_bool "no own asn in candidate" false
            (As_path.mem own c.Bgp.Path.attr.Attr.as_path))
        (Bgp.Speaker.candidates sp p10))
    [ 1; 2 ];
  (* No forwarding loop. *)
  let loops =
    Dataplane.Metrics.find_forwarding_loops
      ~lookup:(fun d -> Bgp.Network.fib net d p10)
      ~devices:[ 0; 1; 2 ]
  in
  check_int "loop free" 0 (List.length loops)

let test_drain_shifts_traffic () =
  let net = Bgp.Network.create ~seed:5 (diamond ()) in
  originate_default net 0;
  ignore (Bgp.Network.converge net);
  Bgp.Network.drain_device net 1;
  ignore (Bgp.Network.converge net);
  (match Bgp.Network.fib net 3 p10 with
   | Some (Bgp.Speaker.Entries [ e ]) ->
     check_int "drained path avoided" 2 e.Bgp.Speaker.next_hop
   | Some (Bgp.Speaker.Entries _) | Some Bgp.Speaker.Local | None ->
     Alcotest.fail "expected single live path");
  Bgp.Network.undrain_device net 1;
  ignore (Bgp.Network.converge net);
  match Bgp.Network.fib net 3 p10 with
  | Some (Bgp.Speaker.Entries entries) ->
    check_int "restored" 2 (List.length entries)
  | Some Bgp.Speaker.Local | None -> Alcotest.fail "route lost after undrain"

let test_wcmp_link_bandwidth () =
  (* Diamond with wcmp: node 3 weighs paths by advertised capacity. Nodes 1
     and 2 aggregate different fan-ins: give node 1 two upstream links by
     adding an extra origin-adjacent node. Here we simply set an ingress
     policy on 3 that overrides the link bandwidth per peer. *)
  let config = { Bgp.Speaker.default_config with wcmp = true } in
  let net = Bgp.Network.create ~seed:5 ~config (diamond ()) in
  Bgp.Network.set_ingress_policy net ~node:3 ~peer:1
    [ Bgp.Policy.rule [ Bgp.Policy.Set_link_bandwidth (Some 3) ] ];
  Bgp.Network.set_ingress_policy net ~node:3 ~peer:2
    [ Bgp.Policy.rule [ Bgp.Policy.Set_link_bandwidth (Some 1) ] ];
  originate_default net 0;
  ignore (Bgp.Network.converge net);
  match Bgp.Network.fib net 3 p10 with
  | Some (Bgp.Speaker.Entries entries) ->
    let weight_of peer =
      match List.find_opt (fun e -> e.Bgp.Speaker.next_hop = peer) entries with
      | Some e -> e.Bgp.Speaker.weight
      | None -> 0
    in
    check_int "peer 1 weight" 3 (weight_of 1);
    check_int "peer 2 weight" 1 (weight_of 2)
  | Some Bgp.Speaker.Local | None -> Alcotest.fail "missing wcmp entries"

let test_session_multiplicity () =
  (* Two parallel sessions between 0 and 1: receiver sees both in the
     multipath set. *)
  let g = Topology.Graph.create () in
  List.iter
    (fun i ->
      Topology.Graph.add_node g
        (Topology.Node.make ~id:i ~name:(Printf.sprintf "s%d" i)
           ~layer:(Topology.Node.Other "R") ()))
    [ 0; 1 ];
  Topology.Graph.add_link ~sessions:2 g 0 1;
  let net = Bgp.Network.create ~seed:5 g in
  originate_default net 0;
  ignore (Bgp.Network.converge net);
  match Bgp.Network.fib net 1 p10 with
  | Some (Bgp.Speaker.Entries entries) ->
    check_int "both sessions" 2 (List.length entries);
    Alcotest.(check (list int))
      "sessions 0 and 1" [ 0; 1 ]
      (List.sort Int.compare (List.map (fun e -> e.Bgp.Speaker.session) entries))
  | Some Bgp.Speaker.Local | None -> Alcotest.fail "missing entries"

let test_dual_stack () =
  (* v4 and v6 defaults are distinct routes end to end. *)
  let g = line 3 in
  let net = Bgp.Network.create ~seed:5 g in
  Bgp.Network.originate net 0 Prefix.default_v4 (Attr.make ());
  Bgp.Network.originate net 2 Prefix.default_v6 (Attr.make ());
  ignore (Bgp.Network.converge net);
  (match Bgp.Network.fib net 1 Prefix.default_v4 with
   | Some (Bgp.Speaker.Entries [ e ]) -> check_int "v4 via 0" 0 e.Bgp.Speaker.next_hop
   | _ -> Alcotest.fail "v4 default missing");
  (match Bgp.Network.fib net 1 Prefix.default_v6 with
   | Some (Bgp.Speaker.Entries [ e ]) -> check_int "v6 via 2" 2 e.Bgp.Speaker.next_hop
   | _ -> Alcotest.fail "v6 default missing");
  (* LPM never crosses families. *)
  let v6_host = Prefix.of_string_exn "2001:db8::1/128" in
  match Bgp.Speaker.fib_longest_match (Bgp.Network.speaker net 1) v6_host with
  | Some (matched, _) ->
    check_bool "v6 host matches v6 default" true
      (Prefix.equal matched Prefix.default_v6)
  | None -> Alcotest.fail "no v6 match"

let test_route_attribute_expiration_live () =
  (* A Route-Attribute RPA with an expiration: before expiry the prescribed
     weights hold; a re-evaluation after expiry reverts to native. *)
  let net = Bgp.Network.create ~seed:5 (diamond ()) in
  let rpa =
    Centralium.Rpa.make
      ~route_attribute:
        [
          Centralium.Route_attribute.make
            [
              Centralium.Route_attribute.statement ~expires_at:100.0
                (Centralium.Destination.Prefixes [ p10 ])
                [
                  Centralium.Route_attribute.next_hop_weight
                    (Centralium.Signature.make
                       ~neighbor_asn:(Net.Asn.of_int 64513) ())
                    ~weight:7;
                ];
            ];
        ]
      ()
  in
  Bgp.Network.set_hooks net 3
    (Centralium.Engine.hooks (Centralium.Engine.create rpa));
  originate_default net 0;
  ignore (Bgp.Network.converge net);
  let weight_via peer =
    match Bgp.Network.fib net 3 p10 with
    | Some (Bgp.Speaker.Entries entries) ->
      (match List.find_opt (fun e -> e.Bgp.Speaker.next_hop = peer) entries with
       | Some e -> e.Bgp.Speaker.weight
       | None -> -1)
    | Some Bgp.Speaker.Local | None -> -1
  in
  check_int "prescribed weight before expiry" 7 (weight_via 1);
  (* Jump virtual time past the expiration, then force a re-evaluation by
     flapping the other uplink. *)
  ignore (Bgp.Network.run_until net ~time:200.0);
  Bgp.Network.set_link net 2 3 ~up:false;
  ignore (Bgp.Network.converge net);
  Bgp.Network.set_link net 2 3 ~up:true;
  ignore (Bgp.Network.converge net);
  check_int "native weight after expiry" 1 (weight_via 1)

let test_trace_records_fib_changes () =
  let g = line 3 in
  let net = Bgp.Network.create ~seed:5 g in
  originate_default net 0;
  ignore (Bgp.Network.converge net);
  let trace = Bgp.Network.trace net in
  check_bool "fib changes recorded" true (Bgp.Trace.fib_change_count trace >= 3);
  check_bool "messages recorded" true (Bgp.Trace.messages_sent trace >= 2)

let test_fib_timeline_simultaneous () =
  let tr = Bgp.Trace.create () in
  let p20 = Prefix.of_string_exn "20.0.0.0/8" in
  let entry nh =
    Bgp.Speaker.Entries [ { Bgp.Speaker.next_hop = nh; session = 0; weight = 1 } ]
  in
  let change ~time ~device ?(prefix = p10) state =
    Bgp.Trace.record tr (Bgp.Trace.Fib_change { time; device; prefix; state })
  in
  change ~time:1.0 ~device:1 (Some (entry 10));
  (* Three changes at the same instant, one device changing twice: the
     timeline must collapse them into a single snapshot reflecting all of
     them, not emit intermediate states. *)
  change ~time:2.0 ~device:1 (Some (entry 20));
  change ~time:2.0 ~device:2 (Some (entry 30));
  change ~time:2.0 ~device:1 None;
  change ~time:2.0 ~device:9 ~prefix:p20 (Some (entry 99));
  change ~time:3.0 ~device:3 (Some Bgp.Speaker.Local);
  let timeline =
    Bgp.Trace.fib_timeline tr ~prefix:p10 ~initial:[ (0, entry 7) ]
  in
  check_int "one snapshot per distinct instant" 3 (List.length timeline);
  let rec increasing = function
    | (t1, _) :: ((t2, _) :: _ as rest) -> t1 < t2 && increasing rest
    | [ _ ] | [] -> true
  in
  check_bool "times strictly increasing" true (increasing timeline);
  (match timeline with
   | [ (t1, s1); (t2, s2); (t3, s3) ] ->
     check_bool "instants" true (t1 = 1.0 && t2 = 2.0 && t3 = 3.0);
     check_bool "initial state carried" true (Hashtbl.find_opt s1 0 = Some (entry 7));
     check_bool "first change applied" true (Hashtbl.find_opt s1 1 = Some (entry 10));
     (* t=2 snapshot: device 1's two changes net out to a removal, device 2's
        change is present, the other prefix never leaks in. *)
     check_bool "same-instant removal wins" true (Hashtbl.find_opt s2 1 = None);
     check_bool "same-instant sibling applied" true
       (Hashtbl.find_opt s2 2 = Some (entry 30));
     check_bool "other prefix filtered" true (Hashtbl.find_opt s2 9 = None);
     check_bool "later change applied" true
       (Hashtbl.find_opt s3 3 = Some Bgp.Speaker.Local)
   | _ -> Alcotest.fail "expected exactly three snapshots")

let test_convergence_deterministic () =
  let run seed =
    let net = Bgp.Network.create ~seed (diamond ()) in
    originate_default net 0;
    let events = Bgp.Network.converge net in
    (events, Bgp.Network.fib_snapshot net p10)
  in
  let e1, s1 = run 42 and e2, s2 = run 42 in
  check_int "same events" e1 e2;
  check_bool "same fibs" true (s1 = s2)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "bgp"
    [
      ( "decision",
        [
          quick "local pref wins" test_decision_local_pref_wins;
          quick "shorter path wins" test_decision_shorter_path_wins;
          quick "origin then med" test_decision_origin_then_med;
          quick "multipath set" test_decision_multipath_set;
          quick "empty" test_decision_empty;
          quick "least favorable" test_decision_least_favorable;
          quick "deterministic order" test_decision_deterministic_total_order;
        ] );
      ( "policy",
        [
          quick "default accepts" test_policy_default_accepts;
          quick "reject" test_policy_reject;
          quick "first match wins" test_policy_first_match_wins;
          quick "prepend self" test_policy_prepend_self;
          quick "prefix match" test_policy_prefix_match;
          quick "as-path regex" test_policy_as_path_regex_match;
          quick "drain less preferred" test_policy_drain_makes_less_preferred;
        ] );
      ( "network",
        [
          quick "line propagation" test_line_propagation;
          quick "as-path length" test_line_as_path_length;
          quick "diamond multipath" test_diamond_multipath;
          quick "withdraw propagates" test_withdraw_propagates;
          quick "link failure reroutes" test_link_failure_reroutes;
          quick "loop prevention" test_loop_prevention;
          quick "drain shifts traffic" test_drain_shifts_traffic;
          quick "wcmp link bandwidth" test_wcmp_link_bandwidth;
          quick "session multiplicity" test_session_multiplicity;
          quick "dual stack" test_dual_stack;
          quick "rpa expiration live" test_route_attribute_expiration_live;
          quick "trace records" test_trace_records_fib_changes;
          quick "fib timeline simultaneous" test_fib_timeline_simultaneous;
          quick "deterministic" test_convergence_deterministic;
        ] );
    ]
