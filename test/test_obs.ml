(* Tests for the observability subsystem: the hand-rolled JSON codec, the
   metrics registry, span recording, trace memoization, the JSONL run
   export, and — most load-bearing — that enabling instrumentation cannot
   change a simulation's outcome. *)

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------------- JSON ---------------- *)

let json_roundtrip () =
  let j =
    Obs.Json.Obj
      [
        ("null", Obs.Json.Null);
        ("true", Obs.Json.Bool true);
        ("int", Obs.Json.Int (-42));
        ("float", Obs.Json.Float 1.5);
        ("string", Obs.Json.String "a \"quoted\"\nline\twith\\controls\x01");
        ( "list",
          Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Obj []; Obs.Json.List [] ] );
      ]
  in
  let s = Obs.Json.to_string j in
  match Obs.Json.of_string s with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok parsed -> checkb "round-trips" true (parsed = j)

let json_escapes () =
  check Alcotest.string "control chars escaped" "\"\\u0001\\n\\t\\\\\""
    (Obs.Json.to_string (Obs.Json.String "\x01\n\t\\"));
  check Alcotest.string "non-finite floats become null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.nan));
  check Alcotest.string "infinity becomes null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.infinity))

let json_float_roundtrip () =
  (* Finite floats must survive to_string -> of_string bit-exactly: the
     emitter prefers the short %.12g form but falls back to %.17g when the
     short form does not re-parse to the same value. *)
  List.iter
    (fun f ->
      let s = Obs.Json.to_string (Obs.Json.Float f) in
      match float_of_string_opt s with
      | Some f' ->
        checkb (Printf.sprintf "%s round-trips bit-exactly" s) true (f' = f)
      | None -> Alcotest.failf "emitted unparseable float %S" s)
    [
      0.1 +. 0.2; 1.0 /. 3.0; 0.001; 1e-300; 123456.789; max_float;
      -0.152123; 4.9e-324 (* smallest subnormal *);
    ]

let json_parse_errors () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ] in
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %S" s)
    bad

let json_accessors () =
  match Obs.Json.of_string {|{"a": 1, "b": [2.5], "c": "x"}|} with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j ->
    checki "int member" 1
      (match Obs.Json.member "a" j with
       | Some v -> Option.get (Obs.Json.to_int v)
       | None -> -1);
    checkb "missing member" true (Obs.Json.member "zzz" j = None);
    check (Alcotest.float 1e-9) "float in list" 2.5
      (match Obs.Json.member "b" j with
       | Some (Obs.Json.List [ v ]) -> Option.get (Obs.Json.to_float v)
       | _ -> Float.nan)

(* ---------------- Metrics ---------------- *)

let metrics_disabled_is_noop () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter ~registry:r "test.counter" in
  let h = Obs.Metrics.histogram ~registry:r "test.histogram" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:10 c;
  Obs.Metrics.observe h 1.0;
  checki "counter untouched while disabled" 0 (Obs.Metrics.value c);
  checkb "histogram untouched while disabled" true
    (Obs.Metrics.summary h = None)

let metrics_enabled_counts () =
  let r = Obs.Metrics.create ~enabled:true () in
  let c = Obs.Metrics.counter ~registry:r "test.counter" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:4 c;
  checki "counter counts" 5 (Obs.Metrics.value c);
  let g = Obs.Metrics.gauge ~registry:r "test.gauge" in
  Obs.Metrics.set_gauge g 2.0;
  Obs.Metrics.add_gauge g 0.5;
  check (Alcotest.float 1e-9) "gauge value" 2.5 (Obs.Metrics.gauge_value g);
  (* Interning: same (name, labels) -> same instrument. *)
  let c' = Obs.Metrics.counter ~registry:r "test.counter" in
  Obs.Metrics.incr c';
  checki "interned counter shares state" 6 (Obs.Metrics.value c);
  (* Distinct labels -> distinct instrument. *)
  let c2 =
    Obs.Metrics.counter ~registry:r ~labels:[ ("k", "v") ] "test.counter"
  in
  Obs.Metrics.incr c2;
  checki "labelled counter independent" 6 (Obs.Metrics.value c);
  checki "labelled counter counts" 1 (Obs.Metrics.value c2)

let metrics_histogram_percentiles () =
  let r = Obs.Metrics.create ~enabled:true () in
  let h = Obs.Metrics.histogram ~registry:r "test.h" in
  (* 1..100: enough samples that the growable array doubles several times. *)
  for i = 1 to 100 do
    Obs.Metrics.observe h (float_of_int i)
  done;
  match Obs.Metrics.summary h with
  | None -> Alcotest.fail "expected a summary"
  | Some s ->
    checki "count" 100 s.Dsim.Stats.count;
    check (Alcotest.float 1e-9) "min" 1.0 s.Dsim.Stats.min;
    check (Alcotest.float 1e-9) "max" 100.0 s.Dsim.Stats.max;
    checkb "p50 mid-range" true
      (s.Dsim.Stats.p50 >= 49.0 && s.Dsim.Stats.p50 <= 52.0);
    checkb "p99 high" true (s.Dsim.Stats.p99 >= 98.0)

let metrics_reset_keeps_instruments () =
  let r = Obs.Metrics.create ~enabled:true () in
  let c = Obs.Metrics.counter ~registry:r "test.c" in
  let h = Obs.Metrics.histogram ~registry:r "test.h" in
  Obs.Metrics.incr c;
  Obs.Metrics.observe h 3.0;
  Obs.Metrics.reset r;
  checki "counter zeroed" 0 (Obs.Metrics.value c);
  checkb "histogram cleared" true (Obs.Metrics.summary h = None);
  (* The same instrument object keeps working after reset. *)
  Obs.Metrics.incr c;
  checki "counter alive after reset" 1 (Obs.Metrics.value c)

let metrics_snapshot_parses () =
  let r = Obs.Metrics.create ~enabled:true () in
  let c = Obs.Metrics.counter ~registry:r "snap.counter" in
  let h = Obs.Metrics.histogram ~registry:r "snap.histogram" in
  Obs.Metrics.incr ~by:7 c;
  List.iter (Obs.Metrics.observe h) [ 1.0; 2.0; 3.0 ];
  let s = Obs.Json.to_string (Obs.Metrics.snapshot r) in
  match Obs.Json.of_string s with
  | Error e -> Alcotest.failf "snapshot does not parse: %s" e
  | Ok j ->
    (match Obs.Json.member "counters" j with
     | Some (Obs.Json.List [ entry ]) ->
       checki "counter value exported" 7
         (match Obs.Json.member "value" entry with
          | Some v -> Option.get (Obs.Json.to_int v)
          | None -> -1)
     | _ -> Alcotest.fail "expected one counter");
    (match Obs.Json.member "histograms" j with
     | Some (Obs.Json.List [ entry ]) ->
       checki "histogram count exported" 3
         (match Obs.Json.member "count" entry with
          | Some v -> Option.get (Obs.Json.to_int v)
          | None -> -1)
     | _ -> Alcotest.fail "expected one histogram")

(* ---------------- Spans ---------------- *)

let spans_nest () =
  let r = Obs.Span.create () in
  let result =
    Obs.Span.with_recorder r (fun () ->
        Obs.Span.with_span "outer" (fun () ->
            Obs.Span.with_span "inner"
              ~attrs:(fun () -> [ ("k", "v") ])
              (fun () -> 42)))
  in
  checki "value flows through" 42 result;
  match Obs.Span.spans r with
  | [ outer; inner ] ->
    check Alcotest.string "outer name" "outer" outer.Obs.Span.name;
    check Alcotest.string "inner name" "inner" inner.Obs.Span.name;
    checkb "outer has no parent" true (outer.Obs.Span.parent = None);
    checkb "inner's parent is outer" true
      (inner.Obs.Span.parent = Some outer.Obs.Span.id);
    checkb "inner attrs recorded" true
      (inner.Obs.Span.attrs = [ ("k", "v") ]);
    checkb "inner nested in outer wall time" true
      (inner.Obs.Span.wall_start_s >= outer.Obs.Span.wall_start_s)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let spans_without_recorder () =
  (* No recorder installed: with_span is just function application, and the
     attrs thunk is never evaluated. *)
  let evaluated = ref false in
  let result =
    Obs.Span.with_span "free"
      ~attrs:(fun () ->
        evaluated := true;
        [])
      (fun () -> 7)
  in
  checki "runs the body" 7 result;
  checkb "attrs thunk not evaluated" false !evaluated

let spans_survive_exceptions () =
  let r = Obs.Span.create () in
  (try
     Obs.Span.with_recorder r (fun () ->
         Obs.Span.with_span "will-raise" (fun () -> failwith "boom"))
   with Failure _ -> ());
  match Obs.Span.spans r with
  | [ s ] -> check Alcotest.string "span closed on raise" "will-raise" s.Obs.Span.name
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let spans_cap () =
  let r = Obs.Span.create ~max_spans:3 () in
  Obs.Span.with_recorder r (fun () ->
      for _ = 1 to 5 do
        Obs.Span.with_span "s" (fun () -> ())
      done);
  checki "capped at max_spans" 3 (List.length (Obs.Span.spans r));
  checki "overflow counted" 2 (Obs.Span.dropped r)

let spans_sim_clock () =
  let r = Obs.Span.create () in
  Obs.Span.with_recorder r (fun () ->
      let clock = ref 1.0 in
      Obs.Span.set_sim_clock (fun () -> !clock);
      Obs.Span.with_span "timed" (fun () -> clock := 2.5));
  match Obs.Span.spans r with
  | [ s ] ->
    checkb "sim_start stamped" true (s.Obs.Span.sim_start = Some 1.0);
    checkb "sim_stop stamped" true (s.Obs.Span.sim_stop = Some 2.5)
  | _ -> Alcotest.fail "expected 1 span"

let spans_close_open () =
  (* A crash (or chaos schedule) can leave scopes open at export time;
     close_open records them once — with a truncated marker — and the
     normal unwind afterwards must not record them again. *)
  let r = Obs.Span.create () in
  Obs.Span.with_recorder r (fun () ->
      Obs.Span.with_span "outer" (fun () ->
          Obs.Span.with_span "inner" (fun () ->
              checki "two scopes open" 2 (Obs.Span.open_scopes r);
              Obs.Span.close_open r;
              checki "none open after force-close" 0 (Obs.Span.open_scopes r))));
  let spans = Obs.Span.spans r in
  checki "each scope recorded exactly once" 2 (List.length spans);
  let ids = List.map (fun (s : Obs.Span.span) -> s.Obs.Span.id) spans in
  checkb "ids distinct" true
    (List.length (List.sort_uniq compare ids) = List.length ids);
  checkb "force-closed spans are marked truncated" true
    (List.for_all
       (fun (s : Obs.Span.span) ->
         List.assoc_opt "truncated" s.Obs.Span.attrs = Some "true")
       spans);
  (* Parents still form a tree over recorded ids. *)
  checkb "parents resolve" true
    (List.for_all
       (fun (s : Obs.Span.span) ->
         match s.Obs.Span.parent with
         | None -> true
         | Some p -> List.mem p ids)
       spans)

(* ---------------- Trace memoization ---------------- *)

let trace_events_memoized () =
  let t = Bgp.Trace.create () in
  let ev i =
    Bgp.Trace.Fib_change
      {
        time = float_of_int i;
        device = i;
        prefix = Net.Prefix.default_v4;
        state = None;
      }
  in
  for i = 0 to 9 do
    Bgp.Trace.record t (ev i)
  done;
  let l1 = Bgp.Trace.events t in
  let l2 = Bgp.Trace.events t in
  checkb "unchanged trace returns the same list" true (l1 == l2);
  checki "length agrees" 10 (Bgp.Trace.length t);
  Bgp.Trace.record t (ev 10);
  let l3 = Bgp.Trace.events t in
  checkb "append invalidates the memo" true (not (l3 == l1));
  checki "new length" 11 (List.length l3);
  (* Recording order is preserved. *)
  checkb "forward order" true
    (List.mapi (fun i _ -> i) l3
     |> List.for_all2
          (fun e i ->
            match e with
            | Bgp.Trace.Fib_change { device; _ } -> device = i
            | _ -> false)
          l3)

(* ---------------- Determinism (the guarded invariant) ---------------- *)

let run_faulted () =
  let r = Experiments.Scenarios.Faulted.run ~seed:2024 () in
  r.Experiments.Scenarios.Faulted.trace

let determinism_under_instrumentation () =
  (* Baseline: everything off (the registry must be off on entry; restore
     whatever state we found). *)
  let registry = Obs.Metrics.default in
  let was = Obs.Metrics.is_enabled registry in
  Obs.Metrics.set_enabled registry false;
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.set_enabled registry was)
    (fun () ->
      let bare = run_faulted () in
      (* Instrumented: metrics on and a span recorder installed. *)
      Obs.Metrics.reset registry;
      Obs.Metrics.set_enabled registry true;
      let recorder = Obs.Span.create () in
      let instrumented =
        Obs.Span.with_recorder recorder (fun () -> run_faulted ())
      in
      Obs.Metrics.set_enabled registry false;
      checkb "trace is bit-identical with instrumentation on" true
        (bare = instrumented);
      checkb "the instrumented run recorded spans" true
        (Obs.Span.spans recorder <> []);
      (* And the metrics agree with the trace they observed. *)
      let dropped =
        List.length
          (List.filter
             (function Bgp.Trace.Message_dropped _ -> true | _ -> false)
             instrumented)
      in
      let counter_value name =
        match
          Obs.Json.member "counters" (Obs.Metrics.snapshot registry)
        with
        | Some (Obs.Json.List entries) ->
          List.fold_left
            (fun acc e ->
              match (Obs.Json.member "name" e, Obs.Json.member "value" e) with
              | Some (Obs.Json.String n), Some v when n = name ->
                Option.value (Obs.Json.to_int v) ~default:acc
              | _ -> acc)
            (-1) entries
        | _ -> -1
      in
      checki "bgp.messages.dropped matches the trace" dropped
        (counter_value "bgp.messages.dropped"))

(* ---------------- Observe export ---------------- *)

let observe_jsonl () =
  let lines = ref [] in
  match
    Experiments.Observe.run ~seed:5 ~scenario:"faulted"
      ~write:(fun l -> lines := l :: !lines)
      ()
  with
  | Error e -> Alcotest.failf "observe failed: %s" e
  | Ok s ->
    let lines = List.rev !lines in
    checki "line count matches summary" s.Experiments.Observe.lines
      (List.length lines);
    let parsed =
      List.map
        (fun l ->
          match Obs.Json.of_string l with
          | Ok j -> j
          | Error e -> Alcotest.failf "line does not parse: %s (%s)" l e)
        lines
    in
    let type_of j =
      match Obs.Json.member "type" j with
      | Some (Obs.Json.String t) -> t
      | _ -> Alcotest.failf "line without type: %s" (Obs.Json.to_string j)
    in
    (* First line is the manifest with the run coordinates. *)
    (match parsed with
     | first :: _ ->
       check Alcotest.string "first line is the manifest" "manifest"
         (type_of first);
       checki "manifest seed" 5
         (match Obs.Json.member "seed" first with
          | Some v -> Option.get (Obs.Json.to_int v)
          | None -> -1);
       checkb "manifest names the scenario" true
         (Obs.Json.member "scenario" first
          = Some (Obs.Json.String "faulted"));
       checkb "manifest carries a git_rev" true
         (Obs.Json.member "git_rev" first <> None)
     | [] -> Alcotest.fail "no lines");
    (* Last line is the summary; exactly one metrics line precedes it. *)
    (match List.rev parsed with
     | last :: _ ->
       check Alcotest.string "last line is the summary" "summary" (type_of last)
     | [] -> ());
    checki "one metrics line" 1
      (List.length (List.filter (fun j -> type_of j = "metrics") parsed));
    checki "span lines match summary" s.spans
      (List.length (List.filter (fun j -> type_of j = "span") parsed));
    checki "event lines match summary" s.events
      (List.length
         (List.filter
            (fun j ->
              match type_of j with
              | "fib_change" | "message_sent" | "message_dropped"
              | "speaker_restarted" | "violation" ->
                true
              | _ -> false)
            parsed))

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let observe_span_tree_well_formed_under_chaos () =
  (* Speaker crashes/restarts and the chaos schedule must not leave the
     exported span tree dangling: every span line's parent must reference
     an exported span id. *)
  let lines = ref [] in
  match
    Experiments.Observe.run ~seed:42 ~scenario:"chaos_gr"
      ~write:(fun l -> lines := l :: !lines)
      ()
  with
  | Error e -> Alcotest.failf "observe failed: %s" e
  | Ok s ->
    checkb "spans exported" true (s.Experiments.Observe.spans > 0);
    let spans =
      List.filter_map
        (fun l ->
          match Obs.Json.of_string l with
          | Ok j when Obs.Json.member "type" j = Some (Obs.Json.String "span")
            ->
            Some j
          | Ok _ -> None
          | Error e -> Alcotest.failf "span line does not parse: %s" e)
        !lines
    in
    checki "span lines match summary" s.spans (List.length spans);
    let id_of j =
      match Obs.Json.member "id" j with
      | Some v -> Option.get (Obs.Json.to_int v)
      | None -> Alcotest.fail "span without id"
    in
    let ids = List.map id_of spans in
    checkb "span ids unique" true
      (List.length (List.sort_uniq compare ids) = List.length ids);
    checkb "every parent references an exported span" true
      (List.for_all
         (fun j ->
           match Obs.Json.member "parent" j with
           | None | Some Obs.Json.Null -> true
           | Some v -> List.mem (Option.get (Obs.Json.to_int v)) ids)
         spans)

let observe_unknown_scenario () =
  match
    Experiments.Observe.run ~scenario:"nonexistent" ~write:(fun _ -> ()) ()
  with
  | Error e ->
    checkb "error lists every valid name" true
      (List.for_all
         (fun n -> contains ~needle:n e)
         Experiments.Observe.scenario_names)
  | Ok _ -> Alcotest.fail "expected an error"

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick json_roundtrip;
          Alcotest.test_case "escapes" `Quick json_escapes;
          Alcotest.test_case "parse errors" `Quick json_parse_errors;
          Alcotest.test_case "float precision round-trip" `Quick
            json_float_roundtrip;
          Alcotest.test_case "accessors" `Quick json_accessors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            metrics_disabled_is_noop;
          Alcotest.test_case "enabled counts" `Quick metrics_enabled_counts;
          Alcotest.test_case "histogram percentiles" `Quick
            metrics_histogram_percentiles;
          Alcotest.test_case "reset keeps instruments" `Quick
            metrics_reset_keeps_instruments;
          Alcotest.test_case "snapshot parses" `Quick metrics_snapshot_parses;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick spans_nest;
          Alcotest.test_case "no recorder" `Quick spans_without_recorder;
          Alcotest.test_case "exception safety" `Quick spans_survive_exceptions;
          Alcotest.test_case "cap" `Quick spans_cap;
          Alcotest.test_case "sim clock" `Quick spans_sim_clock;
          Alcotest.test_case "force-close open scopes" `Quick spans_close_open;
        ] );
      ( "trace",
        [ Alcotest.test_case "events memoized" `Quick trace_events_memoized ] );
      ( "determinism",
        [
          Alcotest.test_case "instrumentation changes nothing" `Slow
            determinism_under_instrumentation;
        ] );
      ( "observe",
        [
          Alcotest.test_case "JSONL export" `Slow observe_jsonl;
          Alcotest.test_case "unknown scenario" `Quick observe_unknown_scenario;
          Alcotest.test_case "span tree well-formed under chaos" `Slow
            observe_span_tree_well_formed_under_chaos;
        ] );
    ]
