(* Oracle-parity tests for the incremental decision pipeline.

   [Bgp.Speaker.Incremental] (dirty-set decisions, duplicate-update skip)
   must be bit-identical to [Full_table] (the original re-decide-everything
   behavior, kept as the debug oracle) in everything observable — traces,
   FIB digests, advertised state — at every quiescent point; the two may
   differ only in how many decisions they run. Also covers the opt-in
   per-instant advertisement batching in [Bgp.Network]. *)

open Net

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---------------- fixtures ---------------- *)

let node id =
  Topology.Node.make ~id ~name:(Printf.sprintf "r%d" id)
    ~layer:(Topology.Node.Other "R") ()

(* 4 leaves (0-3) x 2 spines (4-5), two sessions per link: enough path
   multiplicity for ECMP churn, session resends, and flap cascades. *)
let fabric () =
  let g = Topology.Graph.create () in
  List.iter (fun i -> Topology.Graph.add_node g (node i)) [ 0; 1; 2; 3; 4; 5 ];
  for leaf = 0 to 3 do
    Topology.Graph.add_link ~sessions:2 g leaf 4;
    Topology.Graph.add_link ~sessions:2 g leaf 5
  done;
  g

let pool =
  Array.map Prefix.of_string_exn
    [| "10.0.0.0/8"; "10.1.0.0/16"; "10.2.0.0/16"; "172.16.0.0/12";
       "192.168.0.0/24"; "0.0.0.0/0" |]

(* FIB forwarding state of the whole network, digestible: next hops and
   weights are plain ints, so Marshal is representation-stable. *)
let fib_digest net =
  let prefixes = List.sort Prefix.compare (Bgp.Network.known_prefixes net) in
  let snapshot = List.map (fun p -> (p, Bgp.Network.fib_snapshot net p)) prefixes in
  Digest.to_hex (Digest.string (Marshal.to_string snapshot []))

(* Advertised (Adj-RIB-Out mirror) state of every (device, peer) pair. *)
let advertised_state net devices =
  List.map
    (fun d ->
      let sp = Bgp.Network.speaker net d in
      List.map (fun peer -> Bgp.Speaker.advertised_to sp ~peer) devices)
    devices

(* ---------------- randomized oracle ---------------- *)

type op =
  | Originate of int * int * int (* device, prefix index, med *)
  | Withdraw of int * int (* device, prefix index *)
  | Flap of int * int (* leaf, spine *)

let gen_ops seed n =
  let rng = Dsim.Rng.create seed in
  List.init n (fun _ ->
      match Dsim.Rng.int rng 10 with
      | 0 | 1 | 2 | 3 ->
        Originate
          (Dsim.Rng.int rng 6, Dsim.Rng.int rng (Array.length pool),
           Dsim.Rng.int rng 4)
      | 4 | 5 | 6 ->
        Withdraw (Dsim.Rng.int rng 6, Dsim.Rng.int rng (Array.length pool))
      | _ -> Flap (Dsim.Rng.int rng 4, 4 + Dsim.Rng.int rng 2))

let apply_op net = function
  | Originate (device, pi, med) ->
    Bgp.Network.originate net device pool.(pi) (Attr.make ~med ())
  | Withdraw (device, pi) -> Bgp.Network.withdraw_origin net device pool.(pi)
  | Flap (a, b) ->
    Bgp.Network.set_link net a b ~up:false;
    Bgp.Network.set_link ~delay:0.002 net a b ~up:true

(* Splits [ops] into chunks of [k]: each chunk ends at a quiescent point. *)
let chunks k ops =
  let rec go acc current n = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
      if n = k then go (List.rev current :: acc) [ x ] 1 rest
      else go acc (x :: current) (n + 1) rest
  in
  go [] [] 0 ops

let run_oracle_sequence seed =
  let make mode =
    let net = Bgp.Network.create ~seed (fabric ()) in
    Bgp.Network.set_eval_mode net mode;
    net
  in
  let incr = make Bgp.Speaker.Incremental in
  let full = make Bgp.Speaker.Full_table in
  let devices = [ 0; 1; 2; 3; 4; 5 ] in
  List.iteri
    (fun i chunk ->
      List.iter
        (fun op ->
          apply_op incr op;
          apply_op full op)
        chunk;
      ignore (Bgp.Network.converge incr);
      ignore (Bgp.Network.converge full);
      let tag = Printf.sprintf "seed %d, quiescent point %d" seed i in
      (* Bit-identical message/FIB-change streams... *)
      check_bool (tag ^ ": traces identical") true
        (Bgp.Trace.events (Bgp.Network.trace incr)
        = Bgp.Trace.events (Bgp.Network.trace full));
      (* ...forwarding state... *)
      check_string (tag ^ ": fib digests") (fib_digest full) (fib_digest incr);
      (* ...and advertised (Adj-RIB-Out) state. *)
      check_bool (tag ^ ": advertised state") true
        (advertised_state incr devices = advertised_state full devices))
    (chunks 4 (gen_ops seed 32))

let test_randomized_oracle () = List.iter run_oracle_sequence [ 7; 21; 1234 ]

(* ---------------- chaos parity ---------------- *)

(* The full chaos gauntlet — message-level faults, hold timers, graceful
   restart, speaker crashes, stale sweeps — produces the identical result
   record (trace counts, violation lists, loss integrals, FIB digest) in
   both evaluation modes at the same seed. *)
let test_chaos_parity () =
  List.iter
    (fun gr ->
      let incr =
        Experiments.Scenarios.Chaos.run_mode ~seed:11 ~eval_mode:Bgp.Speaker.Incremental
          ~gr ()
      in
      let full =
        Experiments.Scenarios.Chaos.run_mode ~seed:11 ~eval_mode:Bgp.Speaker.Full_table ~gr
          ()
      in
      let tag = Printf.sprintf "gr=%b" gr in
      check_string (tag ^ ": fib digest")
        full.Experiments.Scenarios.Chaos.fib_digest incr.Experiments.Scenarios.Chaos.fib_digest;
      check_int (tag ^ ": trace events")
        full.Experiments.Scenarios.Chaos.trace_events incr.Experiments.Scenarios.Chaos.trace_events;
      check_bool (tag ^ ": whole result record") true (incr = full))
    [ true; false ]

(* ---------------- decision-count reduction ---------------- *)

(* The point of the incremental pipeline: on the chaos scenario (dominated
   by full-table resyncs whose updates change nothing) the number of
   decision-process runs drops by at least 5x. Counted via the shared
   metrics registry, which by contract cannot perturb the simulation. *)
let test_decision_count_reduction () =
  let registry = Obs.Metrics.default in
  let decisions = Obs.Metrics.counter "bgp.speaker.decisions" in
  let count_for mode =
    Obs.Metrics.reset registry;
    ignore (Experiments.Scenarios.Chaos.run_mode ~seed:42 ~eval_mode:mode ~gr:true ());
    Obs.Metrics.value decisions
  in
  Obs.Metrics.set_enabled registry true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled registry false;
      Obs.Metrics.reset registry)
    (fun () ->
      let incremental = count_for Bgp.Speaker.Incremental in
      let full = count_for Bgp.Speaker.Full_table in
      check_bool "incremental ran some decisions" true (incremental > 0);
      check_bool
        (Printf.sprintf "full-table (%d) >= 5x incremental (%d)" full
           incremental)
        true
        (full >= 5 * incremental))

(* ---------------- advertisement batching ---------------- *)

(* Two same-instant updates for one prefix over one session: unbatched, both
   hit the wire; batched, only the final content is ever sent. The
   receiver's converged state is identical either way. *)
let test_batching_coalesces_same_instant () =
  let line2 () =
    let g = Topology.Graph.create () in
    List.iter (fun i -> Topology.Graph.add_node g (node i)) [ 0; 1 ];
    Topology.Graph.add_link g 0 1;
    g
  in
  let run ~batched =
    let net = Bgp.Network.create ~seed:3 (line2 ()) in
    Bgp.Network.set_advert_batching net batched;
    Bgp.Network.originate net 0 pool.(0) (Attr.make ~med:1 ());
    Bgp.Network.originate net 0 pool.(0) (Attr.make ~med:2 ());
    ignore (Bgp.Network.converge net);
    let sent = Bgp.Trace.messages_sent (Bgp.Network.trace net) in
    let learned =
      Bgp.Speaker.routes_from (Bgp.Network.speaker net 1) ~peer:0 ~session:0
    in
    (sent, learned, fib_digest net)
  in
  let sent_u, learned_u, digest_u = run ~batched:false in
  let sent_b, learned_b, digest_b = run ~batched:true in
  check_int "unbatched sends both updates" 2 sent_u;
  check_int "batched sends only the final update" 1 sent_b;
  check_string "same forwarding state" digest_u digest_b;
  check_bool "receiver holds the final attributes" true (learned_u = learned_b);
  (match learned_b with
   | [ (_, attr) ] -> check_int "last write wins" 2 attr.Attr.med
   | _ -> Alcotest.fail "expected exactly one learned route")

(* Batching on a multi-path fabric under a burst of work: converged
   forwarding state matches the unbatched run, with no more messages. *)
let test_batching_converges_identically () =
  let run ~batched =
    let net = Bgp.Network.create ~seed:17 (fabric ()) in
    Bgp.Network.set_advert_batching net batched;
    List.iter (apply_op net) (gen_ops 99 16);
    ignore (Bgp.Network.converge net);
    (fib_digest net, Bgp.Trace.messages_sent (Bgp.Network.trace net))
  in
  let digest_u, sent_u = run ~batched:false in
  let digest_b, sent_b = run ~batched:true in
  check_string "same converged forwarding state" digest_u digest_b;
  check_bool
    (Printf.sprintf "batched sent no more messages (%d vs %d)" sent_b sent_u)
    true (sent_b <= sent_u)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "incremental"
    [
      ( "oracle",
        [
          quick "randomized sequences, 3 seeds" test_randomized_oracle;
          quick "chaos parity" test_chaos_parity;
        ] );
      ( "performance",
        [ quick "chaos decisions drop 5x" test_decision_count_reduction ] );
      ( "batching",
        [
          quick "same-instant coalescing" test_batching_coalesces_same_instant;
          quick "fabric convergence parity" test_batching_converges_identically;
        ] );
    ]
