(* Tests for the symbolic phase verifier (lib/analysis): planted-defect
   detection with counterexample paths, zero false positives on the
   standard qualification suite, agreement with the runtime invariant
   checker, deterministic JSON, delta-net incrementality, and the wiring
   into the controller gate, the qualification suite and Ops admission. *)

open Centralium
module D = Analysis.Diagnostic
module PV = Analysis.Phase_verifier
module Eq = Analysis.Eq_class
module FM = Analysis.Fwd_model

let quick name f = Alcotest.test_case name `Quick f
let check_bool msg = Alcotest.(check bool) msg
let check_int msg = Alcotest.(check int) msg

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let asn = Net.Asn.of_int
let p4 = Net.Prefix.v4

let tagged_attr () =
  Net.Attr.make
    ~communities:
      (Net.Community.Set.singleton
         Net.Community.Well_known.backbone_default_route)
    ()

(* The corpus plants, rebuilt here so the tests can inspect the raw
   violations (the corpus only exposes diagnostics). *)

let add_nodes g specs =
  List.iter
    (fun (id, name, layer) ->
      Topology.Graph.add_node g (Topology.Node.make ~id ~name ~layer ()))
    specs

let diamond_graph ~feeder () =
  let g = Topology.Graph.create () in
  add_nodes g
    ([
       (0, "eb0", Topology.Node.Eb);
       (1, "fa1", Topology.Node.Fa);
       (2, "fa2", Topology.Node.Fa);
     ]
    @ if feeder then [ (3, "fsw3", Topology.Node.Fsw) ] else []);
  Topology.Graph.add_link g 0 1;
  Topology.Graph.add_link g 0 2;
  Topology.Graph.add_link g 1 2;
  if feeder then begin
    Topology.Graph.add_link g 1 3;
    Topology.Graph.add_link g 2 3
  end;
  g

let slice_graph () =
  let g = Topology.Graph.create () in
  add_nodes g
    [
      (0, "eb0", Topology.Node.Eb);
      (1, "fa1", Topology.Node.Fa);
      (2, "fa2", Topology.Node.Fa);
      (3, "fsw3", Topology.Node.Fsw);
    ];
  Topology.Graph.add_link g 0 1;
  Topology.Graph.add_link g 0 2;
  Topology.Graph.add_link g 1 3;
  Topology.Graph.add_link g 2 3;
  g

let mutual_steer_rpa ~via =
  Rpa.make ~advertise_least_favorable:false
    ~path_selection:
      [
        Path_selection.make
          [
            Path_selection.statement ~name:"steer-via-peer"
              ~path_sets:
                [
                  Path_selection.path_set ~name:"peer"
                    (Signature.make ~neighbor_asns:[ asn via ] ());
                ]
              Destination.backbone_default;
          ];
      ]
    ()

let mnh_guard_rpa () =
  Rpa.make
    ~path_selection:
      [
        Path_selection.make
          [
            Path_selection.statement ~name:"native-guard"
              ~bgp_native_min_next_hop:(Path_selection.Count 2)
              Destination.backbone_default;
          ];
      ]
    ()

let deny_default_egress_rpa () =
  Rpa.make
    ~route_filter:
      [
        Route_filter.make
          [
            Route_filter.statement ~name:"deny-default-egress"
              ~egress:
                (Route_filter.Allow_list
                   [ Route_filter.prefix_rule (p4 192 168 0 0 16) ])
              Route_filter.any_peer;
          ];
      ]
    ()

let benign_rpa () =
  Rpa.make
    ~path_selection:
      [
        Path_selection.make
          [
            Path_selection.statement ~name:"steer"
              ~path_sets:
                [
                  Path_selection.path_set ~name:"via-upstream"
                    (Signature.make ~neighbor_asns:[ asn 64512 ] ());
                ]
              (Destination.Tagged (Net.Community.make 65000 1));
          ];
      ]
    ()

let plan ~name ~rpas ~phases =
  { Controller.plan_name = name; rpas; phases; pre_checks = [];
    post_checks = [] }

let loop_plan () =
  plan ~name:"loop-plant"
    ~rpas:[ (1, mutual_steer_rpa ~via:64514); (2, mutual_steer_rpa ~via:64513) ]
    ~phases:[ [ 1; 2 ] ]

let blackhole_plan () =
  plan ~name:"blackhole-plant"
    ~rpas:
      [ (3, mnh_guard_rpa ()); (1, benign_rpa ());
        (2, deny_default_egress_rpa ()) ]
    ~phases:[ [ 3 ]; [ 1; 2 ] ]

(* ---------------- planted defects ---------------- *)

let test_plants_all_detected () =
  let results = Analysis.Corpus.run_verifier () in
  check_int "three plants" 3 (List.length results);
  check_bool "all detected" true (Analysis.Corpus.all_detected results);
  List.iter
    (fun r ->
      check_bool (r.Analysis.Corpus.r_case ^ " is an error") true
        (List.exists
           (fun d ->
             d.D.code = r.Analysis.Corpus.r_expect && d.D.severity = D.Error)
           r.Analysis.Corpus.r_findings))
    results

let test_loop_counterexample () =
  let r = PV.verify (diamond_graph ~feeder:false ()) (loop_plan ()) in
  let loops =
    List.filter (fun v -> v.PV.v_code = D.Forwarding_loop_static)
      r.PV.vr_violations
  in
  check_bool "loop found" true (loops <> []);
  List.iter
    (fun v ->
      check_bool "cycle path closes" true
        (List.length v.PV.v_path >= 3
        && List.hd v.PV.v_path = List.nth v.PV.v_path
             (List.length v.PV.v_path - 1)))
    loops;
  check_bool "loop is at the phase boundary" true
    (List.exists (fun v -> v.PV.v_state = "phase 1") loops);
  check_bool "mutual steer oscillates" false r.PV.vr_converged

let test_blackhole_at_frontier () =
  let r = PV.verify (slice_graph ()) (blackhole_plan ()) in
  let holes =
    List.filter (fun v -> v.PV.v_code = D.Blackhole_static) r.PV.vr_violations
  in
  check_bool "blackhole found" true (holes <> []);
  check_bool "anchored at the guarded device" true
    (List.for_all (fun v -> v.PV.v_device = 3) holes);
  (* the defect is live before the phase completes: the verifier must see
     it on the single-device frontier where only the deny filter is in *)
  check_bool "caught on a mixed frontier" true
    (List.exists
       (fun v -> contains_sub ~sub:"frontier device 2" v.PV.v_state)
       holes);
  (* counterexample: a surviving physical path from the hole to the origin *)
  List.iter
    (fun v ->
      check_bool "path starts at the hole" true (List.hd v.PV.v_path = 3);
      check_bool "path ends at the origin" true
        (List.nth v.PV.v_path (List.length v.PV.v_path - 1) = 0))
    holes

let test_reachability_loss_feeder () =
  let r = PV.verify (diamond_graph ~feeder:true ()) (loop_plan ()) in
  let losses =
    List.filter (fun v -> v.PV.v_code = D.Reachability_loss) r.PV.vr_violations
  in
  check_bool "loss found" true (losses <> []);
  check_bool "at the feeder, not the looping pair" true
    (List.exists (fun v -> v.PV.v_device = 3) losses);
  List.iter
    (fun v -> check_bool "walk recorded" true (List.length v.PV.v_path >= 2))
    losses

(* ---------------- zero false positives ---------------- *)

let test_standard_suite_clean () =
  List.iter
    (fun spec ->
      let net, plan_v, _ = spec.Verification.build () in
      let r = PV.verify_network net plan_v in
      check_bool
        (spec.Verification.spec_name ^ " verifies clean")
        true
        (not (List.exists (fun d -> d.D.severity = D.Error) r.PV.vr_diagnostics));
      check_bool (spec.Verification.spec_name ^ " converges") true
        r.PV.vr_converged)
    (Verification.standard_suite ())

(* ---------------- runtime agreement ---------------- *)

let test_runtime_invariant_agreement () =
  (* Static verdict: blackhole at device 3 in the final state. *)
  let r = PV.verify (slice_graph ()) (blackhole_plan ()) in
  check_bool "static blackhole in the end state" true
    (List.exists
       (fun v -> v.PV.v_code = D.Blackhole_static && v.PV.v_state = "phase 2")
       r.PV.vr_violations);
  (* Runtime verdict at the same end state: deploy the plan for real (gates
     off) and sweep the converged network with the invariant checker. *)
  let net = Bgp.Network.create ~seed:7 (slice_graph ()) in
  Bgp.Network.originate net 0 Net.Prefix.default_v4 (tagged_attr ());
  ignore (Bgp.Network.converge net);
  let controller = Controller.create net in
  (match Controller.deploy ~lint:`Off ~verify:`Off controller (blackhole_plan ()) with
   | Ok _ -> ()
   | Error es -> Alcotest.failf "deploy failed: %s" (String.concat "; " es));
  ignore (Bgp.Network.converge net);
  let violations = Invariant.check ~prefixes:[ Net.Prefix.default_v4 ] net in
  check_bool "runtime sweep agrees: blackhole at device 3" true
    (List.exists
       (fun (v : Invariant.violation) ->
         v.Invariant.kind = Invariant.Blackhole && v.Invariant.device = Some 3)
       violations)

(* ---------------- determinism ---------------- *)

let test_json_byte_identical () =
  let render () =
    Obs.Json.to_string
      (PV.report_json (PV.verify (slice_graph ()) (blackhole_plan ())))
  in
  let a = render () and b = render () in
  Alcotest.(check string) "byte-identical reports" a b

(* ---------------- incrementality ---------------- *)

let test_incremental_reuse () =
  let g = diamond_graph ~feeder:false () in
  let origins =
    [
      { PV.org_device = 0; org_prefix = Net.Prefix.default_v4;
        org_attr = tagged_attr () };
      { PV.org_device = 0; org_prefix = p4 10 0 0 0 8;
        org_attr = Net.Attr.make () };
    ]
  in
  let steer_10 =
    Rpa.make
      ~path_selection:
        [
          Path_selection.make
            [
              Path_selection.statement ~name:"steer-10"
                ~path_sets:
                  [
                    Path_selection.path_set ~name:"via-eb"
                      (Signature.make ~neighbor_asns:[ asn 64512 ] ());
                  ]
                (Destination.Prefixes [ p4 10 0 0 0 8 ]);
            ];
        ]
      ()
  in
  let plan_v =
    plan ~name:"inc" ~rpas:[ (1, steer_10); (2, steer_10) ]
      ~phases:[ [ 1 ]; [ 2 ] ]
  in
  let r = PV.verify ~origins g plan_v in
  check_int "two classes" 2 r.PV.vr_classes;
  check_bool "clean" true (r.PV.vr_violations = []);
  (* only the 10/8 class recompiles per phase; the default class carries *)
  check_int "compiled" 4 r.PV.vr_compiled;
  check_int "reused" 2 r.PV.vr_reused;
  (* reuse is sound: recompiling the untouched class under the deployed
     engines yields the identical forwarding model *)
  let clss =
    Eq.classes
      (List.map (fun o -> (o.PV.org_device, o.PV.org_prefix, o.PV.org_attr))
         origins)
  in
  let dflt =
    List.find (fun c -> Net.Prefix.is_default c.Eq.cls_prefix) clss
  in
  check_bool "delta does not touch the default class" true
    (Eq.touched_by clss ~rpas:[ (1, steer_10) ]
    |> List.for_all (fun c -> not (Net.Prefix.is_default c.Eq.cls_prefix)));
  let eng = Engine.create steer_10 in
  let base = FM.compile g ~engine_of:(fun _ -> None) ~cls:dflt in
  let after =
    FM.compile g
      ~engine_of:(fun d -> if d = 1 || d = 2 then Some eng else None)
      ~cls:dflt
  in
  check_bool "untouched model identical" true (FM.equal base after)

(* ---------------- prefix-trie properties vs a naive oracle ------------ *)

module Trie = Analysis.Prefix_trie
module Prefix = Net.Prefix

(* Mixed-family generator biased toward collisions: octets from a small
   alphabet, masks 0..24 — /0 and the v6 root are reachable outcomes, not
   corner cases bolted on. *)
let prefix_gen =
  QCheck.Gen.(
    let oct = oneofl [ 0; 10; 128; 192; 255 ] in
    let v4 =
      map3 (fun a b len -> Prefix.v4 a b 0 0 len) oct oct (int_bound 24)
    in
    let v6 =
      map2
        (fun x len -> Prefix.v6 ~hi:(Int64.shift_left (Int64.of_int x) 48) ~lo:0L len)
        (oneofl [ 0; 1; 0x20; 0xfe ])
        (int_bound 16)
    in
    frequency [ (3, v4); (1, v6) ])

let universe_gen = QCheck.Gen.(list_size (int_range 1 20) prefix_gen)

let universe_arb =
  QCheck.make
    ~print:(fun ps -> String.concat " " (List.map Prefix.to_string ps))
    universe_gen

(* Entries tagged with their insertion index so the oracle can reproduce
   the trie's value ordering exactly. *)
let build ps =
  let t = Trie.create () in
  List.iteri (fun i p -> Trie.add t p i) ps;
  t

let indexed ps = List.mapi (fun i p -> (p, i)) ps

let sort_entries l =
  List.sort
    (fun (p, i) (q, j) ->
      match Prefix.compare p q with 0 -> Int.compare i j | c -> c)
    l

let same_entries a b = sort_entries a = sort_entries b

let queries ps = Prefix.default_v4 :: Prefix.default_v6 :: ps

let trie_qcheck =
  let mk name prop =
    QCheck.Test.make ~name ~count:300 universe_arb (fun ps ->
        List.for_all (fun q -> prop (build ps) (indexed ps) q) (queries ps))
  in
  [
    mk "covering = linear scan" (fun t entries q ->
        let oracle = List.filter (fun (p, _) -> Prefix.contains p q) entries in
        let got = Trie.covering t q in
        let masks = List.map (fun (p, _) -> Prefix.mask_length p) got in
        same_entries got oracle
        (* and the documented order: shortest mask first *)
        && List.sort Int.compare masks = masks);
    mk "covered_by = linear scan" (fun t entries q ->
        same_entries (Trie.covered_by t q)
          (List.filter (fun (p, _) -> Prefix.contains q p) entries));
    mk "overlapping = linear scan" (fun t entries q ->
        same_entries (Trie.overlapping t q)
          (List.filter
             (fun (p, _) -> Prefix.contains p q || Prefix.contains q p)
             entries));
    mk "longest_match = linear scan" (fun t entries q ->
        let covers = List.filter (fun (p, _) -> Prefix.contains p q) entries in
        match Trie.longest_match t q with
        | None -> covers = []
        | Some (p, vs) ->
          List.exists (fun (c, _) -> Prefix.equal c p) covers
          && List.for_all
               (fun (c, _) -> Prefix.mask_length c <= Prefix.mask_length p)
               covers
          && vs
             = List.filter_map
                 (fun (c, i) -> if Prefix.equal c p then Some i else None)
                 entries);
  ]

(* ---------------- wiring ---------------- *)

let test_controller_enforce_gate () =
  let net = Bgp.Network.create ~seed:11 (diamond_graph ~feeder:false ()) in
  Bgp.Network.originate net 0 Net.Prefix.default_v4 (tagged_attr ());
  ignore (Bgp.Network.converge net);
  let controller = Controller.create net in
  (match Controller.deploy ~lint:`Off ~verify:`Enforce controller (loop_plan ()) with
   | Ok _ -> Alcotest.fail "enforce gate let a looping plan through"
   | Error reasons ->
     check_bool "names the loop" true
       (List.exists (contains_sub ~sub:"verify forwarding-loop") reasons));
  (* a safe plan clears the same gate: Enforce blocks defects, not deploys *)
  match
    Controller.deploy ~lint:`Off ~verify:`Enforce controller
      (plan ~name:"benign" ~rpas:[ (1, benign_rpa ()) ] ~phases:[ [ 1 ] ])
  with
  | Ok _ -> ()
  | Error es -> Alcotest.failf "benign deploy blocked: %s" (String.concat "; " es)

let test_qualification_verify_pass () =
  let spec =
    {
      Verification.spec_name = "planted loop";
      build =
        (fun () ->
          let net = Bgp.Network.create ~seed:13 (diamond_graph ~feeder:false ()) in
          Bgp.Network.originate net 0 Net.Prefix.default_v4 (tagged_attr ());
          ignore (Bgp.Network.converge net);
          (net, loop_plan (), []));
    }
  in
  let o = Verification.qualify spec in
  check_bool "qualification fails" false (Verification.passed o);
  check_bool "nothing deployed" false o.Verification.deployed;
  check_bool "verifier error surfaced" true
    (List.exists (contains_sub ~sub:"verify forwarding-loop")
       o.Verification.errors)

let test_ops_admission_rejects_unsafe () =
  let net = Bgp.Network.create ~seed:17 (diamond_graph ~feeder:false ()) in
  Bgp.Network.originate net 0 Net.Prefix.default_v4 (tagged_attr ());
  ignore (Bgp.Network.converge net);
  Ops.set_admission_verifier (fun plan_v ->
      match Controller.verifier () with
      | None -> []
      | Some engine ->
        List.filter_map
          (fun f ->
            if f.Controller.lint_error then
              Some
                (Printf.sprintf "%s: %s" f.Controller.lint_code
                   f.Controller.lint_message)
            else None)
          (engine net plan_v));
  Fun.protect ~finally:Ops.clear_admission_verifier @@ fun () ->
  let q = Ops.create (Nsdb.Replicated.create ~replicas:2) in
  (match Ops.submit q ~tenant:"mig" ~cls:Ops.Standard (loop_plan ()) with
   | Ops.Overloaded (Ops.Unsafe_plan { errors }) ->
     check_bool "reasons recorded" true (errors <> []);
     check_bool "loop named" true
       (List.exists (contains_sub ~sub:"forwarding-loop") errors)
   | Ops.Overloaded _ -> Alcotest.fail "shed for the wrong reason"
   | Ops.Admitted _ -> Alcotest.fail "unsafe plan admitted");
  check_bool "rejected before consuming a slot" true (Ops.depth q = 0);
  check_bool "shed audit recorded" true
    (List.exists
       (fun (_, _, name, detail) ->
         name = "loop-plant" && contains_sub ~sub:"unsafe-plan" detail)
       (Ops.shed_log q));
  (* a safe plan from the same queue still admits *)
  match
    Ops.submit q ~tenant:"mig" ~cls:Ops.Standard
      (plan ~name:"benign" ~rpas:[ (1, benign_rpa ()) ] ~phases:[ [ 1 ] ])
  with
  | Ops.Admitted _ -> ()
  | Ops.Overloaded r ->
    Alcotest.failf "benign plan shed: %s" (Ops.overload_reason_to_string r)

let () =
  Alcotest.run "verifier"
    [
      ( "plants",
        [
          quick "all detected as errors" test_plants_all_detected;
          quick "loop counterexample" test_loop_counterexample;
          quick "blackhole at frontier" test_blackhole_at_frontier;
          quick "reachability loss at feeder" test_reachability_loss_feeder;
        ] );
      ( "soundness",
        [
          quick "standard suite clean" test_standard_suite_clean;
          quick "runtime invariant agreement" test_runtime_invariant_agreement;
        ] );
      ( "determinism", [ quick "json byte-identical" test_json_byte_identical ] );
      ( "prefix-trie",
        List.map (QCheck_alcotest.to_alcotest ~long:false) trie_qcheck );
      ( "incremental", [ quick "delta-net reuse" test_incremental_reuse ] );
      ( "wiring",
        [
          quick "controller enforce gate" test_controller_enforce_gate;
          quick "qualification verify pass" test_qualification_verify_pass;
          quick "ops admission rejects unsafe" test_ops_admission_rejects_unsafe;
        ] );
    ]
