(* Tests for lib/core (centralium): RPA primitives, the evaluation engine,
   NSDB, services, deployment sequencing, switch agent, and controller. *)

open Centralium

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let asn = Net.Asn.of_int
let attr ?(communities = []) ?(local_pref = 100) asns =
  List.fold_left
    (fun a c -> Net.Attr.add_community c a)
    (Net.Attr.make ~local_pref
       ~as_path:(Net.As_path.of_asns (List.map asn asns))
       ())
    communities

let path ?(peer = 1) ?(session = 0) a = Bgp.Path.make ~peer ~session ~attr:a

let basic_ctx ?(prefix = Net.Prefix.default_v4) ?(now = 0.0)
    ?(live = fun _ -> 4) () =
  {
    Bgp.Rib_policy.device = 0;
    prefix;
    now;
    peer_layer = (fun _ -> Some (Topology.Node.Other "R"));
    live_peers_in_layer = (fun _ -> live (Topology.Node.Other "R"));
  }

(* ---------------- Signature ---------------- *)

let test_signature_any () =
  check_bool "any matches" true (Signature.matches Signature.any (attr [ 1; 2 ]))

let test_signature_regex () =
  let s = Signature.make ~as_path_regex:"^65001" () in
  check_bool "hit" true (Signature.matches s (attr [ 65001; 65002 ]));
  check_bool "miss" false (Signature.matches s (attr [ 65002; 65001 ]))

let test_signature_communities_conjunctive () =
  let c1 = Net.Community.make 65100 1 and c2 = Net.Community.make 65100 2 in
  let s = Signature.make ~communities:[ c1; c2 ] () in
  check_bool "both present" true
    (Signature.matches s (attr ~communities:[ c1; c2 ] [ 1 ]));
  check_bool "one missing" false
    (Signature.matches s (attr ~communities:[ c1 ] [ 1 ]))

let test_signature_origin_neighbor () =
  let s = Signature.make ~origin_asn:(asn 9) () in
  check_bool "origin hit" true (Signature.matches s (attr [ 1; 9 ]));
  check_bool "origin miss" false (Signature.matches s (attr [ 9; 1 ]));
  let n = Signature.make ~neighbor_asns:[ asn 1; asn 2 ] () in
  check_bool "neighbor hit" true (Signature.matches n (attr [ 2; 9 ]));
  check_bool "neighbor miss" false (Signature.matches n (attr [ 3; 9 ]));
  check_bool "neighbor empty path" false (Signature.matches n (attr []))

let test_signature_bad_regex () =
  check_bool "raises" true
    (try
       ignore (Signature.make ~as_path_regex:"(" ());
       false
     with Invalid_argument _ -> true)

(* ---------------- Destination ---------------- *)

let test_destination_prefixes () =
  let d = Destination.Prefixes [ Net.Prefix.of_string_exn "10.0.0.0/8" ] in
  check_bool "covered" true
    (Destination.matches d (Net.Prefix.of_string_exn "10.1.0.0/16") ~route_attrs:[]);
  check_bool "uncovered" false
    (Destination.matches d (Net.Prefix.of_string_exn "11.0.0.0/16") ~route_attrs:[])

let test_destination_tagged () =
  let c = Net.Community.Well_known.backbone_default_route in
  let d = Destination.Tagged c in
  check_bool "tagged route" true
    (Destination.matches d Net.Prefix.default_v4
       ~route_attrs:[ attr ~communities:[ c ] [ 1 ] ]);
  check_bool "untagged route" false
    (Destination.matches d Net.Prefix.default_v4 ~route_attrs:[ attr [ 1 ] ]);
  check_bool "no routes" false
    (Destination.matches d Net.Prefix.default_v4 ~route_attrs:[])

(* ---------------- Rpa rendering ---------------- *)

let sample_path_selection_rpa () =
  Apps.Path_equalize.rpa ~destination:Destination.backbone_default
    ~origin_asn:(asn 65000) ~via:[ asn 1; asn 2 ]

let test_rpa_config_and_loc () =
  let rpa = sample_path_selection_rpa () in
  let lines = Rpa.config_lines rpa in
  check_bool "has header" true
    (List.exists (fun l -> String.length l > 0 && String.sub l 0 16 = "PathSelectionRpa") lines);
  check_int "loc = line count" (List.length lines) (Rpa.loc rpa);
  check_bool "loc positive" true (Rpa.loc rpa > 5);
  check_int "one statement" 1 (Rpa.statement_count rpa)

let test_rpa_merge () =
  let a = sample_path_selection_rpa () in
  let b =
    Apps.Min_next_hop_guard.rpa ~destination:Destination.backbone_default
      ~threshold:(Path_selection.Fraction 0.75) ~keep_fib_warm:true
  in
  let merged = Rpa.merge a b in
  check_int "statements add" 2 (Rpa.statement_count merged);
  check_bool "empty is empty" true (Rpa.is_empty Rpa.empty);
  check_bool "merged not empty" false (Rpa.is_empty merged)

let test_rpa_merge_dedupes () =
  (* Merging the same RPA twice used to concatenate its blocks verbatim,
     doubling statement_count and the Table 3 RPA-LOC metric. *)
  let a = sample_path_selection_rpa () in
  let twice = Rpa.merge a a in
  check_int "self-merge is idempotent" (Rpa.statement_count a)
    (Rpa.statement_count twice);
  check_int "loc unchanged" (Rpa.loc a) (Rpa.loc twice);
  let b =
    Apps.Min_next_hop_guard.rpa ~destination:Destination.backbone_default
      ~threshold:(Path_selection.Fraction 0.75) ~keep_fib_warm:true
  in
  let ab = Rpa.merge a b in
  (* Re-merging an already-present RPA adds nothing... *)
  check_int "re-merge adds nothing" (Rpa.statement_count ab)
    (Rpa.statement_count (Rpa.merge ab b));
  check_int "re-merge left arg" (Rpa.statement_count ab)
    (Rpa.statement_count (Rpa.merge ab a));
  (* ...while genuinely different blocks still accumulate. *)
  check_bool "distinct blocks kept" true
    (Rpa.statement_count ab > Rpa.statement_count a)

(* ---------------- Engine: selection ---------------- *)

let bb = Net.Community.Well_known.backbone_default_route

let equalize_engine () =
  Engine.create
    (Apps.Path_equalize.rpa ~destination:(Destination.Tagged bb)
       ~origin_asn:(asn 9) ~via:[ asn 1; asn 2; asn 3 ])

let test_engine_equalizes_lengths () =
  let engine = equalize_engine () in
  let short = path ~peer:1 (attr ~communities:[ bb ] [ 1; 9 ]) in
  let long = path ~peer:2 (attr ~communities:[ bb ] [ 2; 7; 8; 9 ]) in
  let native = Bgp.Decision.select ~multipath:true [ short; long ] in
  let sel =
    Engine.evaluate_selection engine ~ctx:(basic_ctx ())
      ~candidates:[ short; long ] ~native
  in
  check_int "both selected despite lengths" 2
    (List.length sel.Bgp.Rib_policy.selected);
  (* Dissemination rule: advertise the least favorable (longest). *)
  (match sel.Bgp.Rib_policy.advertise with
   | Some p -> check_int "advertise longest" 2 p.Bgp.Path.peer
   | None -> Alcotest.fail "must advertise")

let test_engine_untagged_falls_back_native () =
  let engine = equalize_engine () in
  let short = path ~peer:1 (attr [ 1; 9 ]) in
  let long = path ~peer:2 (attr [ 2; 7; 8; 9 ]) in
  let native = Bgp.Decision.select ~multipath:true [ short; long ] in
  let sel =
    Engine.evaluate_selection engine ~ctx:(basic_ctx ())
      ~candidates:[ short; long ] ~native
  in
  check_int "native picks short only" 1 (List.length sel.Bgp.Rib_policy.selected)

let test_engine_pathset_priority () =
  (* Primary path set preferred; backup only when primary has too few. *)
  let rpa =
    Apps.Backup_preference.rpa ~destination:(Destination.Tagged bb)
      ~primary:(Signature.make ~neighbor_asn:(asn 1) ())
      ~primary_min_next_hop:(Path_selection.Count 1)
      ~backup:(Signature.make ~neighbor_asn:(asn 2) ())
      ()
  in
  let engine = Engine.create rpa in
  let primary = path ~peer:1 (attr ~communities:[ bb ] [ 1; 9 ]) in
  let backup = path ~peer:2 (attr ~communities:[ bb ] [ 2; 9 ]) in
  let native = Bgp.Decision.select ~multipath:true [ primary; backup ] in
  let sel =
    Engine.evaluate_selection engine ~ctx:(basic_ctx ())
      ~candidates:[ primary; backup ] ~native
  in
  Alcotest.(check (list int))
    "primary only" [ 1 ]
    (List.map (fun p -> p.Bgp.Path.peer) sel.Bgp.Rib_policy.selected);
  (* Primary gone -> backup set. *)
  let native = Bgp.Decision.select ~multipath:true [ backup ] in
  let sel =
    Engine.evaluate_selection engine ~ctx:(basic_ctx ()) ~candidates:[ backup ]
      ~native
  in
  Alcotest.(check (list int))
    "backup" [ 2 ]
    (List.map (fun p -> p.Bgp.Path.peer) sel.Bgp.Rib_policy.selected)

let test_engine_min_next_hop_count () =
  let rpa =
    Rpa.make
      ~path_selection:
        [
          Path_selection.make
            [
              Path_selection.statement
                ~path_sets:
                  [
                    Path_selection.path_set ~name:"set"
                      ~min_next_hop:(Path_selection.Count 2) Signature.any;
                  ]
                (Destination.Tagged bb);
            ];
        ]
      ()
  in
  let engine = Engine.create rpa in
  let one = [ path ~peer:1 (attr ~communities:[ bb ] [ 1; 9 ]) ] in
  let native = Bgp.Decision.select ~multipath:true one in
  let sel =
    Engine.evaluate_selection engine ~ctx:(basic_ctx ()) ~candidates:one ~native
  in
  (* Path set unmatched (only 1 < 2) -> falls back to native. *)
  check_int "native fallback" 1 (List.length sel.Bgp.Rib_policy.selected);
  let two =
    [
      path ~peer:1 (attr ~communities:[ bb ] [ 1; 9 ]);
      path ~peer:2 (attr ~communities:[ bb ] [ 2; 8; 9 ]);
    ]
  in
  let native = Bgp.Decision.select ~multipath:true two in
  let sel =
    Engine.evaluate_selection engine ~ctx:(basic_ctx ()) ~candidates:two ~native
  in
  check_int "matched with 2" 2 (List.length sel.Bgp.Rib_policy.selected)

let guard_engine ~keep_fib_warm =
  Engine.create
    (Apps.Min_next_hop_guard.rpa ~destination:(Destination.Tagged bb)
       ~threshold:(Path_selection.Fraction 0.75) ~keep_fib_warm)

let test_engine_native_min_next_hop_violation () =
  let engine = guard_engine ~keep_fib_warm:false in
  (* 4 live peers in layer, fraction 0.75 -> need 3; only 1 candidate. *)
  let one = [ path ~peer:1 (attr ~communities:[ bb ] [ 1; 9 ]) ] in
  let native = Bgp.Decision.select ~multipath:true one in
  let sel =
    Engine.evaluate_selection engine ~ctx:(basic_ctx ()) ~candidates:one ~native
  in
  check_bool "withdrawn" true (sel.Bgp.Rib_policy.advertise = None);
  check_int "fib emptied" 0 (List.length sel.Bgp.Rib_policy.selected)

let test_engine_keep_fib_warm () =
  let engine = guard_engine ~keep_fib_warm:true in
  let one = [ path ~peer:1 (attr ~communities:[ bb ] [ 1; 9 ]) ] in
  let native = Bgp.Decision.select ~multipath:true one in
  let sel =
    Engine.evaluate_selection engine ~ctx:(basic_ctx ()) ~candidates:one ~native
  in
  check_bool "withdrawn" true (sel.Bgp.Rib_policy.advertise = None);
  check_int "fib kept warm" 1 (List.length sel.Bgp.Rib_policy.selected);
  check_bool "flag set" true sel.Bgp.Rib_policy.keep_fib_warm

let test_engine_native_min_next_hop_satisfied () =
  let engine = guard_engine ~keep_fib_warm:false in
  let three =
    List.map
      (fun i -> path ~peer:i (attr ~communities:[ bb ] [ i; 9 ]))
      [ 1; 2; 3 ]
  in
  let native = Bgp.Decision.select ~multipath:true three in
  let sel =
    Engine.evaluate_selection engine ~ctx:(basic_ctx ()) ~candidates:three
      ~native
  in
  check_int "all kept" 3 (List.length sel.Bgp.Rib_policy.selected);
  check_bool "advertised" true (sel.Bgp.Rib_policy.advertise <> None)

let test_engine_ablation_advertises_best () =
  let rpa =
    Rpa.make ~advertise_least_favorable:false
      ~path_selection:
        [
          Path_selection.make
            [
              Path_selection.statement
                ~path_sets:[ Path_selection.path_set ~name:"all" Signature.any ]
                (Destination.Tagged bb);
            ];
        ]
      ()
  in
  let engine = Engine.create rpa in
  let short = path ~peer:1 (attr ~communities:[ bb ] [ 1; 9 ]) in
  let long = path ~peer:2 (attr ~communities:[ bb ] [ 2; 7; 9 ]) in
  let native = Bgp.Decision.select ~multipath:true [ short; long ] in
  let sel =
    Engine.evaluate_selection engine ~ctx:(basic_ctx ())
      ~candidates:[ short; long ] ~native
  in
  match sel.Bgp.Rib_policy.advertise with
  | Some p -> check_int "best advertised (unsafe)" 1 p.Bgp.Path.peer
  | None -> Alcotest.fail "must advertise"

let test_engine_orthogonal_rpas_coexist () =
  (* The Section 5.3 footnote: multiple orthogonal RPAs on one switch
     influence exclusive prefix sets. One statement pins an anycast group,
     another guards the default route; each fires only for its own
     destination. *)
  let anycast = Net.Community.Well_known.anycast_load_bearing in
  let merged =
    Rpa.merge
      (Apps.Min_next_hop_guard.rpa ~destination:(Destination.Tagged bb)
         ~threshold:(Path_selection.Fraction 0.75) ~keep_fib_warm:false)
      (Rpa.make
         ~path_selection:
           [
             Path_selection.make
               [
                 Path_selection.statement ~name:"anycast"
                   ~path_sets:
                     [ Path_selection.path_set ~name:"pin" Signature.any ]
                   (Destination.Tagged anycast);
               ];
           ]
         ())
  in
  let engine = Engine.create merged in
  (* A default route with 1 of 4 uplinks: guarded -> withdrawn. *)
  let default_candidate = [ path ~peer:1 (attr ~communities:[ bb ] [ 1; 9 ]) ] in
  let native = Bgp.Decision.select ~multipath:true default_candidate in
  let sel =
    Engine.evaluate_selection engine ~ctx:(basic_ctx ())
      ~candidates:default_candidate ~native
  in
  check_bool "guard fires on default" true (sel.Bgp.Rib_policy.advertise = None);
  (* An anycast route with a single path: the anycast statement (not the
     guard) applies, so it survives. *)
  let anycast_candidate =
    [ path ~peer:1 (attr ~communities:[ anycast ] [ 1; 8 ]) ]
  in
  let native = Bgp.Decision.select ~multipath:true anycast_candidate in
  let sel =
    Engine.evaluate_selection engine
      ~ctx:(basic_ctx ~prefix:(Net.Prefix.of_string_exn "198.51.100.0/24") ())
      ~candidates:anycast_candidate ~native
  in
  check_bool "anycast unaffected by guard" true
    (sel.Bgp.Rib_policy.advertise <> None);
  check_int "anycast selected" 1 (List.length sel.Bgp.Rib_policy.selected)

let test_engine_no_candidates () =
  let engine = equalize_engine () in
  let sel =
    Engine.evaluate_selection engine ~ctx:(basic_ctx ()) ~candidates:[]
      ~native:([], None)
  in
  check_int "nothing selected" 0 (List.length sel.Bgp.Rib_policy.selected);
  check_bool "nothing advertised" true (sel.Bgp.Rib_policy.advertise = None)

let test_engine_default_weight_for_unmatched () =
  let rpa =
    Rpa.make
      ~route_attribute:
        [
          Route_attribute.make
            [
              Route_attribute.statement ~default_weight:3
                (Destination.Tagged bb)
                [
                  Route_attribute.next_hop_weight
                    (Signature.make ~neighbor_asn:(asn 1) ())
                    ~weight:9;
                ];
            ];
        ]
      ()
  in
  let engine = Engine.create rpa in
  let matched = path ~peer:1 (attr ~communities:[ bb ] [ 1; 5 ]) in
  let unmatched = path ~peer:2 (attr ~communities:[ bb ] [ 2; 5 ]) in
  match
    Engine.evaluate_weights engine ~ctx:(basic_ctx ())
      ~selected:[ matched; unmatched ]
  with
  | Some [ (_, w1); (_, w2) ] ->
    check_int "matched weight" 9 w1;
    check_int "default weight" 3 w2
  | Some _ | None -> Alcotest.fail "expected weights"

let test_engine_separate_ingress_egress_filters () =
  let rpa =
    Rpa.make
      ~route_filter:
        [
          Route_filter.make
            [
              Route_filter.statement
                ~ingress:Route_filter.Allow_all
                ~egress:(Route_filter.Allow_list []) (* deny all egress *)
                Route_filter.any_peer;
            ];
        ]
      ()
  in
  let hooks = Engine.hooks (Engine.create rpa) in
  let ctx = basic_ctx () in
  let a = Net.Attr.make () in
  check_bool "ingress open" true (hooks.Bgp.Rib_policy.ingress_accept ctx ~peer:1 a);
  check_bool "egress closed" false (hooks.Bgp.Rib_policy.egress_accept ctx ~peer:1 a)

(* ---------------- Engine: weights ---------------- *)

let test_engine_weights () =
  let rpa =
    Apps.Te_weights.rpa_for_device
      (let g = Topology.Graph.create () in
       List.iter
         (fun i ->
           Topology.Graph.add_node g
             (Topology.Node.make ~id:i ~name:(Printf.sprintf "n%d" i)
                ~layer:(Topology.Node.Other "R") ()))
         [ 0; 1; 2 ];
       g)
      ~destination:(Destination.Tagged bb) ~device:0
      ~weights:[ (1, 3); (2, 1) ] ()
  in
  let engine = Engine.create rpa in
  (* Neighbor ASNs are 64512 + id. *)
  let via1 = path ~peer:1 (attr ~communities:[ bb ] [ 64513; 9 ]) in
  let via2 = path ~peer:2 (attr ~communities:[ bb ] [ 64514; 9 ]) in
  match
    Engine.evaluate_weights engine ~ctx:(basic_ctx ()) ~selected:[ via1; via2 ]
  with
  | Some [ (_, w1); (_, w2) ] ->
    check_int "w1" 3 w1;
    check_int "w2" 1 w2
  | Some _ | None -> Alcotest.fail "expected prescribed weights"

let test_engine_weights_expiration () =
  let rpa =
    Rpa.make
      ~route_attribute:
        [
          Route_attribute.make
            [
              Route_attribute.statement ~expires_at:10.0
                (Destination.Tagged bb)
                [ Route_attribute.next_hop_weight Signature.any ~weight:5 ];
            ];
        ]
      ()
  in
  let engine = Engine.create rpa in
  let p = path ~peer:1 (attr ~communities:[ bb ] [ 1; 9 ]) in
  check_bool "live before expiry" true
    (Engine.evaluate_weights engine ~ctx:(basic_ctx ~now:5.0 ()) ~selected:[ p ]
     <> None);
  check_bool "expired after" true
    (Engine.evaluate_weights engine ~ctx:(basic_ctx ~now:11.0 ()) ~selected:[ p ]
     = None)

let test_engine_cache_stats () =
  let engine = equalize_engine () in
  let p = path ~peer:1 (attr ~communities:[ bb ] [ 1; 9 ]) in
  let native = Bgp.Decision.select ~multipath:true [ p ] in
  let eval () =
    ignore
      (Engine.evaluate_selection engine ~ctx:(basic_ctx ()) ~candidates:[ p ]
         ~native)
  in
  eval ();
  let first = Engine.stats engine in
  check_bool "first run misses" true (first.Engine.misses > 0);
  check_int "no hits yet" 0 first.Engine.hits;
  eval ();
  eval ();
  let later = Engine.stats engine in
  check_bool "subsequent runs hit" true (later.Engine.hits > 0);
  check_int "no extra misses" first.Engine.misses later.Engine.misses;
  Engine.clear_cache engine;
  Engine.reset_stats engine;
  eval ();
  let reset = Engine.stats engine in
  check_bool "cache cleared -> miss again" true (reset.Engine.misses > 0)

let test_engine_cache_disabled () =
  let rpa =
    Apps.Path_equalize.rpa ~destination:(Destination.Tagged bb)
      ~origin_asn:(asn 9) ~via:[ asn 1 ]
  in
  let engine = Engine.create ~cache:false rpa in
  let p = path ~peer:1 (attr ~communities:[ bb ] [ 1; 9 ]) in
  let native = Bgp.Decision.select ~multipath:true [ p ] in
  for _ = 1 to 3 do
    ignore
      (Engine.evaluate_selection engine ~ctx:(basic_ctx ()) ~candidates:[ p ]
         ~native)
  done;
  check_int "never hits" 0 (Engine.stats engine).Engine.hits

(* ---------------- Engine: route filter ---------------- *)

let test_engine_route_filter () =
  let rpa =
    Apps.Boundary_filter.rpa ~peer_layers:[ Topology.Node.Eb ]
      ~allowed:
        [
          Route_filter.prefix_rule ~max_mask_length:16
            (Net.Prefix.of_string_exn "10.0.0.0/8");
        ]
  in
  let engine = Engine.create rpa in
  let hooks = Engine.hooks engine in
  let ctx_for prefix layer =
    {
      Bgp.Rib_policy.device = 0;
      prefix;
      now = 0.0;
      peer_layer = (fun _ -> Some layer);
      live_peers_in_layer = (fun _ -> 4);
    }
  in
  let a = Net.Attr.make () in
  let allowed = Net.Prefix.of_string_exn "10.1.0.0/16" in
  let too_specific = Net.Prefix.of_string_exn "10.1.2.0/24" in
  let outside = Net.Prefix.of_string_exn "11.0.0.0/16" in
  check_bool "aggregate allowed" true
    (hooks.Bgp.Rib_policy.ingress_accept (ctx_for allowed Topology.Node.Eb) ~peer:5 a);
  check_bool "too specific blocked" false
    (hooks.Bgp.Rib_policy.ingress_accept
       (ctx_for too_specific Topology.Node.Eb) ~peer:5 a);
  check_bool "outside blocked" false
    (hooks.Bgp.Rib_policy.ingress_accept (ctx_for outside Topology.Node.Eb) ~peer:5 a);
  (* Non-boundary peers unrestricted. *)
  check_bool "fsw peer unrestricted" true
    (hooks.Bgp.Rib_policy.ingress_accept
       (ctx_for too_specific Topology.Node.Fsw) ~peer:5 a)

(* ---------------- Rpa parser ---------------- *)

let render rpa = String.concat "\n" (Rpa.config_lines rpa)

let roundtrips rpa =
  match Rpa_parser.parse (render rpa) with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok reparsed -> Rpa.config_lines reparsed = Rpa.config_lines rpa

let test_parser_roundtrip_apps () =
  let samples =
    [
      Apps.Path_equalize.rpa ~destination:Destination.backbone_default
        ~origin_asn:(asn 65000) ~via:[ asn 1; asn 2 ];
      Apps.Min_next_hop_guard.rpa ~destination:Destination.backbone_default
        ~threshold:(Path_selection.Fraction 0.75) ~keep_fib_warm:true;
      Apps.Min_next_hop_guard.rpa
        ~destination:(Destination.Prefixes [ Net.Prefix.of_string_exn "10.0.0.0/8" ])
        ~threshold:(Path_selection.Count 3) ~keep_fib_warm:false;
      Apps.Backup_preference.rpa ~destination:Destination.backbone_default
        ~primary:(Signature.make ~neighbor_asn:(asn 64513) ())
        ~primary_min_next_hop:(Path_selection.Count 2)
        ~backup:(Signature.make ~as_path_regex:".* 65000$" ())
        ();
      Apps.Wcmp_freeze.rpa ~destination:Destination.backbone_default
        ~live_weight:8
        ~drained_signature:
          (Signature.make ~communities:[ Net.Community.Well_known.drained ] ())
        ~expires_at:3600.0 ();
      Apps.Boundary_filter.rpa ~peer_layers:[ Topology.Node.Eb ]
        ~allowed:
          [
            Route_filter.prefix_rule ~min_mask_length:8 ~max_mask_length:16
              (Net.Prefix.of_string_exn "10.0.0.0/8");
          ];
      Apps.Prefix_limit_guard.rpa ~covering:Net.Prefix.default_v4
        ~max_mask_length:20;
    ]
  in
  List.iteri
    (fun i rpa ->
      check_bool (Printf.sprintf "sample %d roundtrips" i) true (roundtrips rpa))
    samples

let test_parser_roundtrip_merged () =
  let merged =
    Rpa.merge
      (Apps.Path_equalize.rpa ~destination:Destination.backbone_default
         ~origin_asn:(asn 65000) ~via:[ asn 1 ])
      (Apps.Wcmp_freeze.rpa ~destination:Destination.backbone_default
         ~live_weight:4
         ~drained_signature:
           (Signature.make ~communities:[ Net.Community.Well_known.drained ] ())
         ())
  in
  check_bool "merged roundtrips" true (roundtrips merged)

let test_parser_roundtrip_planner_representatives () =
  List.iter
    (fun category ->
      check_bool
        (Topology.Migration.category_label category)
        true
        (roundtrips (Planner.representative_rpa category)))
    Topology.Migration.all_categories

let test_parser_errors () =
  List.iter
    (fun src ->
      check_bool src true (Result.is_error (Rpa_parser.parse src)))
    [
      "PathSelectionRpa x {";  (* unterminated *)
      "Nonsense y { }";
      "PathSelectionRpa x { Statement s { PathSetList = [] } }";
      (* destination missing *)
      "PathSelectionRpa x { Statement s { destination = tagged(99999999:1) \
       PathSetList = [] } }";
    ]

let test_parser_whitespace_insensitive () =
  let src =
    "PathSelectionRpa    n   {   Statement s{destination=tagged(65100:1)\n\
     PathSetList=[]BgpNativeMinNextHop=75%}}"
  in
  match Rpa_parser.parse src with
  | Ok rpa -> check_int "one statement" 1 (Rpa.statement_count rpa)
  | Error e -> Alcotest.failf "parse error: %s" e

let test_parser_empty_input () =
  match Rpa_parser.parse "" with
  | Ok rpa -> check_bool "empty rpa" true (Rpa.is_empty rpa)
  | Error e -> Alcotest.failf "parse error: %s" e

let test_parser_error_positions () =
  (* Errors carry "line L, column C:" pointing at the offending token. *)
  let expect_prefix prefix src =
    match Rpa_parser.parse src with
    | Ok _ -> Alcotest.failf "expected a parse error for %S" src
    | Error e ->
      check_bool
        (Printf.sprintf "%S starts with %S (got %S)" src prefix e)
        true
        (String.length e >= String.length prefix
         && String.sub e 0 (String.length prefix) = prefix)
  in
  expect_prefix "line 1, column 1:" "Nonsense y { }";
  expect_prefix "line 2, column 3:"
    "PathSelectionRpa x {\n  oops s { } }";
  expect_prefix "line 3, column 17:"
    "PathSelectionRpa x {\n Statement s {\n  destination = nope\n } }";
  (* Unterminated input points past the last token. *)
  (match Rpa_parser.parse "PathSelectionRpa x {" with
   | Ok _ -> Alcotest.fail "expected a parse error"
   | Error e ->
     check_bool "mentions end of input" true
       (String.length e > 0
        &&
        let re = "unexpected end of input" in
        let n = String.length e and m = String.length re in
        let rec found i = i + m <= n && (String.sub e i m = re || found (i + 1)) in
        found 0))

let test_parser_located_statements () =
  let src =
    "PathSelectionRpa steer {\n\
     Statement first {\n\
    \ destination = tagged(65100:1)\n\
    \ PathSetList = []\n\
     }\n\
     Statement second {\n\
    \ destination = tagged(65100:2)\n\
    \ PathSetList = []\n\
     }\n\
     }\n\
     RouteAttributeRpa weights {\n\
     Statement w {\n\
    \ destination = tagged(65100:3)\n\
     NextHopWeightList = []\n\
     }\n\
     }"
  in
  match Rpa_parser.parse_located src with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok (rpa, index) ->
    check_int "three located statements" 3 (List.length index);
    check_int "rpa statements" 3 (Rpa.statement_count rpa);
    (match
       Rpa_parser.find_statement index ~kind:`Path_selection ~statement:"second"
     with
     | None -> Alcotest.fail "statement 'second' not in index"
     | Some ls ->
       check_int "second line" 6 ls.Rpa_parser.ls_pos.Rpa_parser.line;
       check_int "second col" 11 ls.Rpa_parser.ls_pos.Rpa_parser.col;
       check_bool "rpa name" true (ls.Rpa_parser.ls_rpa = "steer"));
    (match
       Rpa_parser.find_statement index ~kind:`Route_attribute ~statement:"w"
     with
     | None -> Alcotest.fail "statement 'w' not in index"
     | Some ls -> check_int "weights line" 12 ls.Rpa_parser.ls_pos.Rpa_parser.line);
    check_bool "kind mismatch misses" true
      (Rpa_parser.find_statement index ~kind:`Route_filter ~statement:"w"
       = None)

(* ---------------- Nsdb ---------------- *)

let test_nsdb_set_get () =
  let db = Nsdb.create () in
  Nsdb.set db ~path:"devices/1/state" (Nsdb.String "live");
  Nsdb.set db ~path:"devices/2/state" (Nsdb.String "drained");
  check_bool "get one" true
    (Nsdb.get_one db ~path:"devices/1/state" = Some (Nsdb.String "live"));
  check_bool "missing" true (Nsdb.get_one db ~path:"devices/9/state" = None);
  check_int "wildcard" 2 (List.length (Nsdb.get db ~path:"devices/*/state"));
  check_int "size" 2 (Nsdb.size db)

let test_nsdb_overwrite () =
  let db = Nsdb.create () in
  Nsdb.set db ~path:"a/b" (Nsdb.Int 1);
  Nsdb.set db ~path:"a/b" (Nsdb.Int 2);
  check_bool "overwritten" true (Nsdb.get_one db ~path:"a/b" = Some (Nsdb.Int 2));
  check_int "still one" 1 (Nsdb.size db)

let test_nsdb_subtree_and_delete () =
  let db = Nsdb.create () in
  Nsdb.set db ~path:"devices/1/rpa" (Nsdb.Int 1);
  Nsdb.set db ~path:"devices/1/health" (Nsdb.Bool true);
  Nsdb.set db ~path:"devices/2/rpa" (Nsdb.Int 2);
  check_int "subtree" 2 (List.length (Nsdb.get_subtree db ~path:"devices/1"));
  Nsdb.delete db ~path:"devices/1";
  check_int "after delete" 0 (List.length (Nsdb.get_subtree db ~path:"devices/1"));
  check_int "others intact" 1 (List.length (Nsdb.get_subtree db ~path:"devices/2"))

let test_nsdb_subscribe () =
  let db = Nsdb.create () in
  let events = ref [] in
  let _id =
    Nsdb.subscribe db ~path:"devices/*/rpa" (fun path v ->
        events := (path, v) :: !events)
  in
  Nsdb.set db ~path:"devices/1/rpa" (Nsdb.Int 1);
  Nsdb.set db ~path:"devices/1/other" (Nsdb.Int 9);
  Nsdb.set db ~path:"devices/2/rpa" (Nsdb.Int 2);
  check_int "two matched" 2 (List.length !events);
  Nsdb.delete db ~path:"devices/1";
  check_int "deletion notified" 3 (List.length !events);
  (match !events with
   | (path, None) :: _ -> Alcotest.(check string) "del path" "devices/1/rpa" path
   | _ -> Alcotest.fail "expected deletion event")

let test_nsdb_unsubscribe () =
  let db = Nsdb.create () in
  let count = ref 0 in
  let id = Nsdb.subscribe db ~path:"x" (fun _ _ -> incr count) in
  Nsdb.set db ~path:"x" (Nsdb.Int 1);
  Nsdb.unsubscribe db id;
  Nsdb.set db ~path:"x" (Nsdb.Int 2);
  check_int "one event" 1 !count

let test_nsdb_invalid_paths () =
  let db = Nsdb.create () in
  check_bool "empty" true
    (try
       Nsdb.set db ~path:"" (Nsdb.Int 1);
       false
     with Invalid_argument _ -> true);
  check_bool "wildcard set" true
    (try
       Nsdb.set db ~path:"a/*/b" (Nsdb.Int 1);
       false
     with Invalid_argument _ -> true)

let test_nsdb_deep_wildcard () =
  let db = Nsdb.create () in
  Nsdb.set db ~path:"plans/a/devices/1" (Nsdb.Int 1);
  Nsdb.set db ~path:"plans/a/devices/2" (Nsdb.Int 2);
  Nsdb.set db ~path:"plans/b/meta" (Nsdb.Int 3);
  Nsdb.set db ~path:"other/x" (Nsdb.Int 4);
  check_int "all under plans" 3 (List.length (Nsdb.get db ~path:"plans/**"));
  check_int "devices anywhere" 2
    (List.length (Nsdb.get db ~path:"**/devices/*"));
  check_int "everything" 4 (List.length (Nsdb.get db ~path:"**"));
  (* ** also matches zero segments. *)
  Nsdb.set db ~path:"plans/direct" (Nsdb.Int 5);
  check_int "zero-or-more" 4 (List.length (Nsdb.get db ~path:"plans/**"));
  (* Deep subscription fires across depths. *)
  let count = ref 0 in
  let _ = Nsdb.subscribe db ~path:"plans/**" (fun _ _ -> incr count) in
  Nsdb.set db ~path:"plans/c/deep/leaf" (Nsdb.Int 6);
  Nsdb.set db ~path:"other/y" (Nsdb.Int 7);
  check_int "subscription depth" 1 !count

let test_nsdb_snapshot_restore () =
  let db = Nsdb.create () in
  Nsdb.set db ~path:"devices/1/rpa" (Nsdb.Int 1);
  Nsdb.set db ~path:"devices/2/state" (Nsdb.String "live");
  let snap = Nsdb.snapshot db in
  check_int "two entries" 2 (List.length snap);
  let fresh = Nsdb.create () in
  Nsdb.restore fresh snap;
  check_bool "identical content" true (Nsdb.snapshot fresh = snap);
  (* Restore replaces, not merges. *)
  Nsdb.set fresh ~path:"junk/x" (Nsdb.Int 9);
  Nsdb.restore fresh snap;
  check_bool "junk gone" true (Nsdb.get_one fresh ~path:"junk/x" = None);
  check_int "size restored" 2 (Nsdb.size fresh)

(* ---------------- Route_filter (module level) ---------------- *)

let test_route_filter_semantics () =
  let open Route_filter in
  let st =
    statement ~name:"boundary"
      ~ingress:
        (Allow_list
           [
             prefix_rule ~min_mask_length:8 ~max_mask_length:16
               (Net.Prefix.of_string_exn "10.0.0.0/8");
             prefix_rule (Net.Prefix.of_string_exn "192.168.0.0/16");
           ])
      ~egress:Allow_all
      { peer_layers = [ Topology.Node.Eb ]; peer_devices = [] }
  in
  let rf = make [ st ] in
  let allows_in p =
    allows rf Ingress ~peer:9 ~layer:(Some Topology.Node.Eb)
      (Net.Prefix.of_string_exn p)
  in
  check_bool "in range" true (allows_in "10.1.0.0/16");
  check_bool "too specific" false (allows_in "10.1.2.0/24");
  check_bool "too short" false (allows_in "10.0.0.0/7" = true);
  check_bool "second rule" true (allows_in "192.168.4.0/24");
  check_bool "outside" false (allows_in "172.16.0.0/16");
  (* Egress unrestricted; other layers unmatched -> unrestricted. *)
  check_bool "egress allow-all" true
    (allows rf Egress ~peer:9 ~layer:(Some Topology.Node.Eb)
       (Net.Prefix.of_string_exn "172.16.0.0/24"));
  check_bool "other layer unrestricted" true
    (allows rf Ingress ~peer:9 ~layer:(Some Topology.Node.Fsw)
       (Net.Prefix.of_string_exn "172.16.0.0/24"));
  (* Unknown layer never matches a layer-scoped signature. *)
  check_bool "unknown layer unrestricted" true
    (allows rf Ingress ~peer:9 ~layer:None
       (Net.Prefix.of_string_exn "172.16.0.0/24"))

let test_route_filter_device_scoped () =
  let open Route_filter in
  let rf =
    make
      [
        statement ~ingress:(Allow_list []) (* deny everything *)
          { peer_layers = []; peer_devices = [ 7 ] };
      ]
  in
  let p = Net.Prefix.of_string_exn "10.0.0.0/8" in
  check_bool "scoped device denied" false (allows rf Ingress ~peer:7 ~layer:None p);
  check_bool "other devices fine" true (allows rf Ingress ~peer:8 ~layer:None p)

let test_nsdb_replication () =
  let r = Nsdb.Replicated.create ~replicas:3 in
  Nsdb.Replicated.set r ~path:"k" (Nsdb.Int 1);
  check_bool "leader is 0" true (Nsdb.Replicated.leader r = Some 0);
  check_int "read" 1 (List.length (Nsdb.Replicated.get r ~path:"k"));
  Nsdb.Replicated.fail_replica r 0;
  check_bool "leader moves" true (Nsdb.Replicated.leader r = Some 1);
  check_int "reads survive" 1 (List.length (Nsdb.Replicated.get r ~path:"k"));
  (* Writes while replica 0 is down... *)
  Nsdb.Replicated.set r ~path:"k2" (Nsdb.Int 2);
  Nsdb.Replicated.recover_replica r 0;
  (* ...are re-synced on recovery (eventual consistency). *)
  check_bool "resynced" true
    (Nsdb.get_one (Nsdb.Replicated.replica r 0) ~path:"k2" = Some (Nsdb.Int 2))

(* ---------------- Service ---------------- *)

let test_service_sync_tracking () =
  let s = Service.create ~name:"test" ~role:(Service.Application "x") in
  check_bool "empty in sync" true (Service.sync_fraction s = 1.0);
  Nsdb.set (Service.intended s) ~path:"devices/1/rpa" (Nsdb.Int 1);
  Nsdb.set (Service.intended s) ~path:"devices/2/rpa" (Nsdb.Int 2);
  check_bool "nothing reconciled" true (Service.sync_fraction s = 0.0);
  Nsdb.set (Service.current s) ~path:"devices/1/rpa" (Nsdb.Int 1);
  check_bool "half" true (Float.abs (Service.sync_fraction s -. 0.5) < 1e-9);
  Alcotest.(check (list string))
    "straggler" [ "devices/2/rpa" ] (Service.out_of_sync s);
  check_bool "degraded" true (Service.health s <> Service.Healthy);
  Nsdb.set (Service.current s) ~path:"devices/2/rpa" (Nsdb.Int 2);
  check_bool "healthy" true (Service.health s = Service.Healthy)

let test_service_accounting () =
  let s = Service.create ~name:"t" ~role:Service.Storage in
  let x = Service.with_work s (fun () -> List.init 1000 Fun.id |> List.length) in
  check_int "thunk result" 1000 x;
  check_bool "busy accumulates" true (Service.busy_seconds s >= 0.0);
  check_bool "memory positive" true (Service.memory_bytes s > 0)

(* ---------------- Deployment ---------------- *)

let test_deployment_phases_bottom_up () =
  let x = Topology.Clos.expansion () in
  let targets = x.Topology.Clos.xfsws @ x.Topology.Clos.xssws in
  let phases =
    Deployment.phases x.Topology.Clos.xgraph ~targets
      ~origination_layer:Topology.Node.Eb Deployment.Install
  in
  check_int "two phases" 2 (List.length phases);
  (* FSWs (further from EB) first. *)
  (match phases with
   | first :: _ ->
     check_bool "fsws first" true
       (List.for_all (fun d -> List.mem d x.Topology.Clos.xfsws) first)
   | [] -> Alcotest.fail "no phases");
  check_bool "safe" true
    (Deployment.is_safe_order x.Topology.Clos.xgraph
       ~origination_layer:Topology.Node.Eb Deployment.Install phases);
  check_bool "reverse unsafe" false
    (Deployment.is_safe_order x.Topology.Clos.xgraph
       ~origination_layer:Topology.Node.Eb Deployment.Install (List.rev phases));
  (* Removal is the reverse order. *)
  let removal =
    Deployment.phases x.Topology.Clos.xgraph ~targets
      ~origination_layer:Topology.Node.Eb Deployment.Remove
  in
  check_bool "remove reverses" true (removal = List.rev phases)

(* ---------------- Switch agent + controller ---------------- *)

let controller_fixture () =
  let x = Topology.Clos.expansion () in
  let net = Bgp.Network.create ~seed:3 x.Topology.Clos.xgraph in
  Bgp.Network.originate net x.Topology.Clos.backbone Net.Prefix.default_v4
    (Net.Attr.make
       ~communities:
         (Net.Community.Set.singleton Net.Community.Well_known.backbone_default_route)
       ());
  ignore (Bgp.Network.converge net);
  (x, net, Controller.create ~seed:11 net)

let test_agent_reconcile_and_stragglers () =
  let x, net, controller = controller_fixture () in
  let agent = Controller.agent controller in
  let device = List.nth x.Topology.Clos.xssws 0 in
  let rpa =
    Apps.Min_next_hop_guard.rpa ~destination:Destination.backbone_default
      ~threshold:(Path_selection.Count 1) ~keep_fib_warm:false
  in
  Switch_agent.set_intended agent ~device rpa;
  Alcotest.(check (list int)) "straggler listed" [ device ] (Switch_agent.stragglers agent);
  check_bool "applied" true (Switch_agent.reconcile_device agent device = `Applied);
  Alcotest.(check (list int)) "no stragglers" [] (Switch_agent.stragglers agent);
  check_bool "second is in sync" true
    (Switch_agent.reconcile_device agent device = `In_sync);
  check_int "one deploy time" 1 (List.length (Switch_agent.deploy_time_samples agent));
  (* The speaker actually got the hooks. *)
  ignore (Bgp.Network.converge net);
  check_bool "hooks installed" false
    (Bgp.Rib_policy.is_native (Bgp.Speaker.hooks (Bgp.Network.speaker net device)))

let test_agent_unreachable_devices () =
  let x, _net, controller = controller_fixture () in
  let agent = Controller.agent controller in
  let device = List.nth x.Topology.Clos.xssws 1 in
  Switch_agent.set_reachable agent ~device false;
  Switch_agent.set_intended agent ~device
    (Apps.Min_next_hop_guard.rpa ~destination:Destination.backbone_default
       ~threshold:(Path_selection.Count 1) ~keep_fib_warm:false);
  check_bool "unreachable" true
    (Switch_agent.reconcile_device agent device = `Unreachable);
  Alcotest.(check (list int))
    "alert raised" [ device ]
    (Switch_agent.unexpected_unreachable agent);
  Switch_agent.set_maintenance agent ~device true;
  Alcotest.(check (list int))
    "maintenance suppresses alert" []
    (Switch_agent.unexpected_unreachable agent)

(* ---------------- Debug tooling (Section 7.2) ---------------- *)

let string_contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_debug_explain_route () =
  let x, net, controller = controller_fixture () in
  let agent = Controller.agent controller in
  let device = List.nth x.Topology.Clos.xssws 0 in
  (* Native BGP: nothing to explain. *)
  check_bool "no RPA -> no explanation" true
    (Debug.explain_route net agent ~device Net.Prefix.default_v4 = None);
  Switch_agent.set_intended agent ~device
    (Apps.Min_next_hop_guard.rpa ~destination:Destination.backbone_default
       ~threshold:(Path_selection.Count 1) ~keep_fib_warm:false);
  check_bool "applied" true
    (Switch_agent.reconcile_device agent device = `Applied);
  ignore (Bgp.Network.converge net);
  match Debug.explain_route net agent ~device Net.Prefix.default_v4 with
  | None -> Alcotest.fail "expected an explanation once the RPA is installed"
  | Some e ->
    (match e.Debug.verdict with
     | Debug.Native_fallback { statement; trials } ->
       Alcotest.(check string) "statement named" "guard" statement;
       check_int "guard has no path sets" 0 (List.length trials)
     | Debug.No_matching_statement | Debug.Path_set_chosen _
     | Debug.Withdrawn_min_next_hop _ ->
       Alcotest.fail "expected Native_fallback for the satisfied guard");
    check_bool "routes selected" true (e.Debug.selected_count >= 1);
    check_bool "still advertising" true (e.Debug.advertised <> None)

let test_debug_explain_withdrawn_and_pp () =
  let x, net, controller = controller_fixture () in
  let agent = Controller.agent controller in
  let device = List.nth x.Topology.Clos.xssws 0 in
  (* A threshold no SSW can meet forces the MNH withdrawal path. *)
  Switch_agent.set_intended agent ~device
    (Apps.Min_next_hop_guard.rpa ~destination:Destination.backbone_default
       ~threshold:(Path_selection.Count 99) ~keep_fib_warm:true);
  check_bool "applied" true
    (Switch_agent.reconcile_device agent device = `Applied);
  ignore (Bgp.Network.converge net);
  match Debug.explain_route net agent ~device Net.Prefix.default_v4 with
  | None -> Alcotest.fail "expected an explanation"
  | Some e ->
    (match e.Debug.verdict with
     | Debug.Withdrawn_min_next_hop { required; fib_kept_warm; _ } ->
       check_int "required surfaces the threshold" 99 required;
       check_bool "keep-warm knob surfaces" true fib_kept_warm
     | Debug.No_matching_statement | Debug.Path_set_chosen _
     | Debug.Native_fallback _ ->
       Alcotest.fail "expected Withdrawn_min_next_hop");
    check_bool "withdrawn" true (e.Debug.advertised = None);
    let rendered = Format.asprintf "%a" Debug.pp_explanation e in
    check_bool "pp names the statement" true
      (string_contains ~needle:"guard" rendered);
    check_bool "pp flags the withdrawal" true
      (string_contains ~needle:"WITHDRAWN" rendered);
    check_bool "pp flags the warm FIB" true
      (string_contains ~needle:"FIB kept warm" rendered)

let test_controller_deploy_and_remove () =
  let x, net, controller = controller_fixture () in
  let plan = Apps.Expansion_equalizer.plan x in
  check_bool "plan validates" true (Controller.validate_plan controller plan = Ok ());
  (match Controller.deploy controller plan with
   | Ok report ->
     check_int "all applied" (List.length plan.Controller.rpas)
       report.Controller.applied;
     check_int "deploy times collected" report.Controller.applied
       (List.length report.Controller.deploy_seconds)
   | Error es -> Alcotest.fail (String.concat "; " es));
  (* RPAs active on targets. *)
  List.iter
    (fun (device, _) ->
      check_bool "active" false
        (Bgp.Rib_policy.is_native (Bgp.Speaker.hooks (Bgp.Network.speaker net device))))
    plan.Controller.rpas;
  (match Controller.remove controller plan with
   | Ok _ -> ()
   | Error es -> Alcotest.fail (String.concat "; " es));
  List.iter
    (fun (device, _) ->
      check_bool "restored native" true
        (Bgp.Rib_policy.is_native (Bgp.Speaker.hooks (Bgp.Network.speaker net device))))
    plan.Controller.rpas

let test_controller_pre_check_aborts () =
  let x, net, controller = controller_fixture () in
  let failing =
    {
      Health.check_name = "always-fails";
      run = (fun () -> Error "nope");
    }
  in
  let plan = { (Apps.Expansion_equalizer.plan x) with Controller.pre_checks = [ failing ] } in
  (match Controller.deploy controller plan with
   | Error (msg :: _) ->
     check_bool "mentions check" true
       (String.length msg > 0 && String.sub msg 0 9 = "pre-check")
   | Error [] | Ok _ -> Alcotest.fail "expected pre-check failure");
  (* Nothing was deployed. *)
  List.iter
    (fun (device, _) ->
      check_bool "untouched" true
        (Bgp.Rib_policy.is_native (Bgp.Speaker.hooks (Bgp.Network.speaker net device))))
    plan.Controller.rpas

let test_controller_invalid_plan () =
  let x, _net, controller = controller_fixture () in
  let plan = Apps.Expansion_equalizer.plan x in
  let broken = { plan with Controller.phases = [] } in
  check_bool "rejected" true (Controller.validate_plan controller broken <> Ok ())

let test_health_checks () =
  let x, net, _controller = controller_fixture () in
  let prefix = Net.Prefix.default_v4 in
  let device = List.nth x.Topology.Clos.xssws 0 in
  check_bool "route present" true
    (Health.all_pass [ Health.route_present net ~device prefix ]);
  check_bool "path count" true
    (Health.all_pass [ Health.path_count_at_least net ~device prefix ~count:2 ]);
  check_bool "excessive count fails" false
    (Health.all_pass [ Health.path_count_at_least net ~device prefix ~count:99 ]);
  let demands = List.map (fun f -> (f, 1.0)) x.Topology.Clos.xfsws in
  check_bool "no loss" true (Health.all_pass [ Health.no_loss net prefix ~demands ]);
  check_bool "loop free" true
    (Health.all_pass
       [
         Health.loop_free net prefix
           ~devices:(List.map (fun n -> n.Topology.Node.id)
                       (Topology.Graph.nodes x.Topology.Clos.xgraph));
       ])

let test_controller_survives_nsdb_replica_failure () =
  (* Failure injection: an NSDB replica dies mid-operation; deployments and
     reads continue, and the recovered replica re-syncs the writes it
     missed. *)
  let x, _net, controller = controller_fixture () in
  let db = Controller.nsdb controller in
  let plan = Apps.Expansion_equalizer.plan x in
  Nsdb.Replicated.fail_replica db 0;
  (match Controller.deploy controller plan with
   | Ok report -> check_bool "deployed despite failure" true (report.Controller.applied > 0)
   | Error es -> Alcotest.fail (String.concat "; " es));
  check_bool "reads served by surviving replica" true
    (Nsdb.Replicated.get db ~path:"plans/path-equalize/devices/*" <> []);
  Nsdb.Replicated.recover_replica db 0;
  check_bool "recovered replica has the plan" true
    (Nsdb.get (Nsdb.Replicated.replica db 0)
       ~path:"plans/path-equalize/devices/*"
     <> [])

let test_trace_timeline_reflects_drain () =
  (* The transient-analysis machinery itself: fib_timeline replays a drain
     into per-instant snapshots whose final state matches the live FIBs. *)
  let x, net, _controller = controller_fixture () in
  let prefix = Net.Prefix.default_v4 in
  let initial = Bgp.Network.fib_snapshot net prefix in
  Bgp.Trace.clear (Bgp.Network.trace net);
  (match x.Topology.Clos.fav1 with
   | fa :: _ -> Bgp.Network.drain_device net fa
   | [] -> Alcotest.fail "no FAs");
  ignore (Bgp.Network.converge net);
  let timeline = Bgp.Trace.fib_timeline (Bgp.Network.trace net) ~prefix ~initial in
  check_bool "drain produced transitions" true (List.length timeline >= 1);
  (match List.rev timeline with
   | (_, final) :: _ ->
     let live = Bgp.Network.fib_snapshot net prefix in
     let final_list =
       Hashtbl.fold (fun d s acc -> (d, s) :: acc) final [] |> List.sort compare
     in
     check_bool "final snapshot = live FIBs" true (final_list = live)
   | [] -> Alcotest.fail "empty timeline");
  (* Timestamps are non-decreasing. *)
  let times = List.map fst timeline in
  check_bool "monotone timestamps" true (List.sort Float.compare times = times)

let test_plan_loc_counts_distinct () =
  let x, _net, _controller = controller_fixture () in
  let plan = Apps.Expansion_equalizer.plan x in
  let loc = Controller.plan_loc plan in
  check_bool "positive" true (loc > 0);
  (* Many devices share the SSW-template and FSW-template RPAs; LOC counts
     distinct templates, so it is far below devices x per-device LOC. *)
  let naive =
    List.fold_left (fun acc (_, rpa) -> acc + Rpa.loc rpa) 0 plan.Controller.rpas
  in
  check_bool "dedup" true (loc < naive)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "core"
    [
      ( "signature",
        [
          quick "any" test_signature_any;
          quick "regex" test_signature_regex;
          quick "communities conjunctive" test_signature_communities_conjunctive;
          quick "origin and neighbor" test_signature_origin_neighbor;
          quick "bad regex" test_signature_bad_regex;
        ] );
      ( "destination",
        [
          quick "prefixes" test_destination_prefixes;
          quick "tagged" test_destination_tagged;
        ] );
      ( "rpa",
        [
          quick "config and loc" test_rpa_config_and_loc;
          quick "merge" test_rpa_merge;
          quick "merge dedupes" test_rpa_merge_dedupes;
        ] );
      ( "engine",
        [
          quick "equalizes lengths" test_engine_equalizes_lengths;
          quick "untagged native" test_engine_untagged_falls_back_native;
          quick "pathset priority" test_engine_pathset_priority;
          quick "min next hop count" test_engine_min_next_hop_count;
          quick "native mnh violation" test_engine_native_min_next_hop_violation;
          quick "keep fib warm" test_engine_keep_fib_warm;
          quick "native mnh satisfied" test_engine_native_min_next_hop_satisfied;
          quick "ablation advertises best" test_engine_ablation_advertises_best;
          quick "orthogonal rpas coexist" test_engine_orthogonal_rpas_coexist;
          quick "no candidates" test_engine_no_candidates;
          quick "default weight" test_engine_default_weight_for_unmatched;
          quick "split direction filters" test_engine_separate_ingress_egress_filters;
          quick "weights" test_engine_weights;
          quick "weights expiration" test_engine_weights_expiration;
          quick "cache stats" test_engine_cache_stats;
          quick "cache disabled" test_engine_cache_disabled;
          quick "route filter" test_engine_route_filter;
        ] );
      ( "rpa-parser",
        [
          quick "roundtrip apps" test_parser_roundtrip_apps;
          quick "roundtrip merged" test_parser_roundtrip_merged;
          quick "roundtrip planner" test_parser_roundtrip_planner_representatives;
          quick "errors" test_parser_errors;
          quick "whitespace insensitive" test_parser_whitespace_insensitive;
          quick "empty input" test_parser_empty_input;
          quick "error positions" test_parser_error_positions;
          quick "located statements" test_parser_located_statements;
        ] );
      ( "nsdb",
        [
          quick "set get" test_nsdb_set_get;
          quick "overwrite" test_nsdb_overwrite;
          quick "subtree delete" test_nsdb_subtree_and_delete;
          quick "subscribe" test_nsdb_subscribe;
          quick "unsubscribe" test_nsdb_unsubscribe;
          quick "invalid paths" test_nsdb_invalid_paths;
          quick "deep wildcard" test_nsdb_deep_wildcard;
          quick "snapshot restore" test_nsdb_snapshot_restore;
          quick "replication" test_nsdb_replication;
        ] );
      ( "route-filter",
        [
          quick "semantics" test_route_filter_semantics;
          quick "device scoped" test_route_filter_device_scoped;
        ] );
      ( "service",
        [
          quick "sync tracking" test_service_sync_tracking;
          quick "accounting" test_service_accounting;
        ] );
      ("deployment", [ quick "phases bottom up" test_deployment_phases_bottom_up ]);
      ( "controller",
        [
          quick "agent reconcile" test_agent_reconcile_and_stragglers;
          quick "agent unreachable" test_agent_unreachable_devices;
          quick "debug explain route" test_debug_explain_route;
          quick "debug explain withdrawn + pp" test_debug_explain_withdrawn_and_pp;
          quick "deploy and remove" test_controller_deploy_and_remove;
          quick "pre-check aborts" test_controller_pre_check_aborts;
          quick "invalid plan" test_controller_invalid_plan;
          quick "health checks" test_health_checks;
          quick "nsdb replica failure" test_controller_survives_nsdb_replica_failure;
          quick "trace timeline" test_trace_timeline_reflects_drain;
          quick "plan loc" test_plan_loc_counts_distinct;
        ] );
    ]
